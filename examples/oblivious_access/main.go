// Oblivious access: the paper's ORAM extension (§5.2.2) — "security
// mechanisms against address metadata attacks, such as ORAM, can simply be
// added by adopting open-source modules on top of Shield engines due to
// their generic interface."
//
// The example stacks a Path ORAM controller on a shielded memory region.
// The Shield hides *what* is stored; the ORAM hides *which* block a query
// touches, so even an adversary watching every DRAM address (the Shell,
// a bus probe) learns nothing about the access pattern. The controller is
// configured the way the serving tier runs it: bucket stride padded to the
// Shield chunk size so every path moves as one batched scatter-gather
// stream, and the position map recursing into a smaller ORAM so on-chip
// state stays bounded as the tree scales. The price is a measured
// bandwidth amplification, printed at the end.
//
//	go run ./examples/oblivious_access
package main

import (
	"bytes"
	"fmt"
	"log"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/oram"
	"shef/internal/perf"
	"shef/internal/shield"
)

func main() {
	const blocks, blockSize, chunk = 512, 64, 512
	ocfg := oram.Config{
		Blocks:          blocks,
		BlockSize:       blockSize,
		Seed:            1,
		ChunkAlign:      chunk,      // chunk-aligned buckets: full-chunk stores, no RMW
		PosMapThreshold: blocks / 8, // recurse the block→leaf table off-chip
	}
	foot := ocfg.FootprintBytes()
	regionSize := (foot + chunk - 1) / chunk * chunk

	// A shielded region sized for the ORAM tree plus its position maps.
	cfg := shield.Config{Regions: []shield.RegionConfig{{
		Name: "tree", Base: 0, Size: regionSize, ChunkSize: chunk,
		AESEngines: 8, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		MAC: shield.PMAC, BufferBytes: 8 << 10, Freshness: true,
	}}}
	dram := mem.NewDRAM(regionSize*2+1<<16, perf.Default())
	ocm := mem.NewOCM(1 << 30)
	priv, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	sh, err := shield.New(cfg, priv, dram, ocm, perf.Default())
	if err != nil {
		log.Fatal(err)
	}
	dek := bytes.Repeat([]byte{0x42}, 32)
	lk, _ := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err := sh.ProvisionLoadKey(lk); err != nil {
		log.Fatal(err)
	}

	// Path ORAM over the shielded region.
	o, err := oram.NewWithConfig(sh, ocfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ORAM: %d blocks × %d B over a %d-bucket tree (%d KB shielded), position map depth %d\n",
		blocks, blockSize, o.TreeBuckets(), regionSize>>10, o.Depth())

	// A tiny patient-record store with secret lookup indices.
	record := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, blockSize)
	}
	for i := 0; i < blocks; i++ {
		if err := o.Write(i, record(i)); err != nil {
			log.Fatal(err)
		}
	}
	// Query a few records; which ones is invisible to the memory system.
	for _, q := range []int{17, 17, 99, 3, 17} {
		got, err := o.Read(q)
		if err != nil {
			log.Fatal(err)
		}
		if !bytes.Equal(got, record(q)) {
			log.Fatalf("record %d corrupted", q)
		}
	}
	fmt.Println("queries served; repeated access to record 17 touched fresh random paths each time")

	acc, moved, maxStash := o.Stats()
	params := perf.Default()
	fmt.Printf("accesses: %d, backend bytes: %d, stash high-water: %d blocks\n", acc, moved, maxStash)
	fmt.Printf("path cost: %.0f cycles/access (%.1f µs at %.0f MHz, batched gather I/O)\n",
		float64(o.Cycles())/float64(acc),
		params.Seconds(o.Cycles())/float64(acc)*1e6, params.ClockHz/1e6)
	fmt.Printf("bandwidth amplification: %.1fx (the price of hiding addresses)\n", o.Amplification())
}
