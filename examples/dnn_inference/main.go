// DNN inference: the paper's DNNWeaver workload (§6.2.4) with the
// customisation story that motivates the Shield — start with the default
// HMAC authentication engine, observe that the long serial MACs over 4 KB
// weight chunks dominate, then swap the weight engine set to PMAC and
// watch the overhead drop (paper: 3.20x -> 2.31x for AES-128/16x).
//
//	go run ./examples/dnn_inference
package main

import (
	"fmt"
	"log"

	"shef/internal/accel"
	"shef/internal/hostapp"
	"shef/internal/perf"
)

func main() {
	params := map[string]string{"batch": "24"}
	pp := perf.Default()

	// Baseline: the same accelerator with no Shield.
	w, err := accel.New("dnnweaver", params)
	if err != nil {
		log.Fatal(err)
	}
	bare, err := accel.RunBare(w, pp, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unshielded inference: %d cycles (%.2f ms)\n",
		bare.Cycles, 1000*pp.Seconds(bare.Cycles))

	run := func(v accel.Variant) accel.RunResult {
		p, err := hostapp.Build(hostapp.Options{
			Design: "dnnweaver", Params: params, Variant: v,
		})
		if err != nil {
			log.Fatalf("%s: %v", v, err)
		}
		res, err := p.Run(7)
		if err != nil {
			log.Fatalf("%s: %v", v, err)
		}
		return res
	}

	fmt.Println("\nshielded, weights authenticated with HMAC (default):")
	hmac := run(accel.V128x16)
	fmt.Printf("  %d cycles, overhead %.2fx  (paper: 3.20x)\n",
		hmac.Cycles, accel.Overhead(hmac, bare))
	for _, rs := range hmac.Report.Regions {
		fmt.Printf("  region %-8s busy %9d cycles  (misses %d, writebacks %d)\n",
			rs.Name, rs.BusyCycles, rs.Misses, rs.Writebacks)
	}

	fmt.Println("\nshielded, weight engine set swapped to PMAC (one config flag):")
	pmac := run(accel.V128x16PMAC)
	fmt.Printf("  %d cycles, overhead %.2fx  (paper: 2.31x)\n",
		pmac.Cycles, accel.Overhead(pmac, bare))

	fmt.Printf("\ncustomisation win: %.0f%% of the security overhead removed by\n",
		100*(1-float64(pmac.Cycles-bare.Cycles)/float64(hmac.Cycles-bare.Cycles)))
	fmt.Println("matching the MAC engine to the access pattern — no RTL changes.")
}
