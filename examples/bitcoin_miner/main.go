// Bitcoin miner: the paper's register-interface workload (§6.2.4). The
// miner touches no device memory at all — the 76-byte header arrives and
// the winning nonce leaves through the Shield's secured AXI4-Lite register
// file — so a minimal Shield (one AES + one HMAC engine on the register
// path) secures it at almost zero overhead and ~1.4% LUT area.
//
//	go run ./examples/bitcoin_miner
package main

import (
	"fmt"
	"log"

	"shef/internal/accel"
	"shef/internal/fpga"
	"shef/internal/hostapp"
	"shef/internal/perf"
	"shef/internal/shield"
)

func main() {
	params := map[string]string{"difficulty": "16"}

	p, err := hostapp.Build(hostapp.Options{Design: "bitcoin", Params: params})
	if err != nil {
		log.Fatal(err)
	}
	cfg := p.Manifest.Shield
	area := shield.Area(cfg)
	util := shield.UtilizationOn(area, fpga.VU9P)
	fmt.Printf("shield for the miner: %d memory regions, %d registers\n",
		len(cfg.Regions), cfg.Registers)
	fmt.Printf("shield area: %d LUT / %d REG  (%s)\n", area.LUT, area.REG, util)

	res, err := p.Run(3)
	if err != nil {
		log.Fatal(err)
	}
	pp := perf.Default()
	fmt.Printf("mined at difficulty %s: %d cycles (%.2f ms)\n",
		params["difficulty"], res.Cycles, 1000*pp.Seconds(res.Cycles))

	w, _ := accel.New("bitcoin", params)
	bare, err := accel.RunBare(w, pp, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unshielded:  %d cycles\n", bare.Cycles)
	fmt.Printf("overhead:    %.3fx  (paper: \"almost no overheads\")\n", accel.Overhead(res, bare))

	// The secured register file rejects replayed host commands.
	rf := p.Shield.Registers()
	msg := rf.SealWrite(0, 42, 1)
	if err := rf.HostWrite(msg); err != nil {
		log.Fatal(err)
	}
	if err := rf.HostWrite(msg); err != nil {
		fmt.Printf("replayed host command rejected: %v\n", err)
	}
}
