// Secure storage: the paper's SDP case study (§6.2.3) — a GDPR-compliant
// storage node whose FPGA TEE encrypts and authenticates every file byte,
// with per-user keys provisioned by a controller node.
//
// The example stores files for two users, demonstrates the access policy,
// shows that the storage device holds only ciphertext, detects an
// operator tampering with stored data, and sweeps the paper's Table 2
// Shield configurations.
//
//	go run ./examples/secure_storage
package main

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"log"

	"shef/internal/crypto/aesx"
	"shef/internal/sdp"
	"shef/internal/shield"
)

func main() {
	// Controller node: establish the session key (in the full system this
	// rides on remote attestation; see examples/quickstart) and provision
	// the per-user key database.
	dek := make([]byte, 32)
	rand.Read(dek)
	cfg := sdp.NodeConfig{
		Slots: 8, SlotBytes: 64 << 10, AuthBlock: 4096,
		Engines: 8, SBox: aesx.SBox16x, MAC: shield.PMAC,
		BufferBytes: 16 << 10,
	}
	node, err := sdp.NewNode(cfg, dek, sdp.LineRateParams())
	if err != nil {
		log.Fatal(err)
	}
	node.ProvisionUserKeys(map[string][]byte{
		"alice": []byte("alice-master-key"),
		"bob":   []byte("bob-master-key"),
	})
	fmt.Println("storage node provisioned for users alice, bob")

	// Store and retrieve files.
	record := bytes.Repeat([]byte("alice's medical record. "), 512)
	if err := node.Put("alice", "health.rec", record); err != nil {
		log.Fatal(err)
	}
	got, err := node.Get("alice", "health.rec")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("alice round trip: %d bytes OK (%t)\n", len(got), bytes.Equal(got, record))

	// GDPR policy: bob cannot read alice's file.
	if _, err := node.Get("bob", "health.rec"); err != nil {
		fmt.Printf("bob denied: %v\n", err)
	}

	// Encryption at rest: the raw storage device never sees plaintext.
	dump, _ := node.DRAM().RawRead(0, 1<<20)
	fmt.Printf("plaintext visible on storage device: %t\n", bytes.Contains(dump, []byte("medical record")))

	// A malicious operator flips one stored bit; the Shield refuses to
	// serve the file rather than return corrupted data.
	node.Shield().InvalidateClean()
	raw, _ := node.DRAM().RawRead(0, 1)
	raw[0] ^= 1
	node.DRAM().RawWrite(0, raw)
	if _, err := node.Get("alice", "health.rec"); err != nil {
		fmt.Printf("tamper detected: %v\n", err)
	}

	// Tenant zones: the same node in multi-tenant mode places each user's
	// files in their own runtime-created protection zone, so the GDPR
	// right-to-erasure is structural — EraseTenant destroys the zone (key,
	// files, freshness metadata and all) and recycles the space for the
	// next tenant with nothing to resurface. DESIGN.md §11.
	tcfg := cfg
	tcfg.TenantZones = true
	tcfg.TenantSlots = 4
	tnode, err := sdp.NewNode(tcfg, dek, sdp.LineRateParams())
	if err != nil {
		log.Fatal(err)
	}
	tnode.ProvisionUserKeys(map[string][]byte{
		"alice": []byte("alice-master-key"),
		"bob":   []byte("bob-master-key"),
	})
	tnode.Put("alice", "health.rec", record)
	tnode.Put("bob", "notes.txt", []byte("bob's notes"))
	if err := tnode.EraseTenant("alice"); err != nil {
		log.Fatal(err)
	}
	_, aliceErr := tnode.Get("alice", "health.rec")
	bobGot, bobErr := tnode.Get("bob", "notes.txt")
	fmt.Printf("\ntenant zones: alice erased (%v), bob intact (%t)\n",
		aliceErr != nil, bobErr == nil && len(bobGot) > 0)

	// Table 2: the Shield-configuration sweep of §6.2.3.
	fmt.Println("\nTable 2 sweep (1MB file accesses, overhead vs unsecured line rate):")
	rows, err := sdp.Table2()
	if err != nil {
		log.Fatal(err)
	}
	paper := []int{298, 297, 59, 20, 20}
	for i, r := range rows {
		fmt.Printf("  %-26s measured %4.0f%%   paper %3d%%\n", r.Label, r.Overhead*100, paper[i])
	}
}
