// Quickstart: run one accelerator inside a ShEF enclave, end to end.
//
// This example assembles the whole paper-Figure-2 workflow with one call —
// Manufacturer key provisioning, secure boot, Shell load, remote
// attestation against an (in-process) IP Vendor, accelerator loading
// through the Security Kernel, and Shield key provisioning — then runs a
// vector-add workload through the sealed data path and reports the
// simulated cost of security.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"shef/internal/accel"
	"shef/internal/crypto/engine"
	"shef/internal/hostapp"
)

func main() {
	// One line on which functional crypto engines this process selected
	// (detected CPU features, forced vs micro-benchmarked choice). The
	// simulated cycle numbers below are identical either way.
	fmt.Println(engine.Select())

	// The Data Owner picks a design from the vendor's catalogue and the
	// Shield variant it was compiled with.
	platform, err := hostapp.Build(hostapp.Options{
		Design:  "vecadd",
		Params:  map[string]string{"bytes": "1048576"}, // 1 MB per vector
		Variant: accel.V128x16,                         // AES-128, 16x S-box
	})
	if err != nil {
		log.Fatalf("workflow failed: %v", err)
	}
	fmt.Println("attested and provisioned:")
	hash := platform.Enc.Hash()
	fmt.Printf("  device    %s\n", platform.Kernel.Device().Serial)
	fmt.Printf("  bitstream %x\n", hash[:8])

	// Run the workload. Inputs are sealed by the Data Owner, DMAed by the
	// untrusted host, decrypted on access by the Shield, and results are
	// exported and verified on the owner side.
	res, err := platform.Run(1)
	if err != nil {
		log.Fatalf("run failed: %v", err)
	}
	pp := *platform.Options.Perf
	fmt.Printf("shielded run: %d cycles (%.2f ms at %.0f MHz)\n",
		res.Cycles, 1000*res.Seconds(pp), pp.ClockHz/1e6)
	var streamed, windows, batchedWB, prefetched, prefetchHits uint64
	for _, r := range res.Report.Regions {
		streamed += r.Streamed
		windows += r.StreamWindows
		batchedWB += r.BatchedWritebacks
		prefetched += r.Prefetched
		prefetchHits += r.PrefetchHits
	}
	fmt.Printf("streamed data path: %d chunks in %d pipeline windows\n", streamed, windows)
	fmt.Printf("write-back path:    %d chunks stored in batched windows\n", batchedWB)
	fmt.Printf("prefetcher:         %d chunks fetched ahead, %d served demand hits\n", prefetched, prefetchHits)

	// Compare with the unshielded baseline (same accelerator, no Shield).
	w, _ := accel.New("vecadd", map[string]string{"bytes": "1048576"})
	bare, err := accel.RunBare(w, pp, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bare run:     %d cycles\n", bare.Cycles)
	fmt.Printf("cost of security: %.2fx\n", accel.Overhead(res, bare))

	// The regions above came from the design's static manifest, but the
	// Shield's region model is dynamic underneath: tenants can carve
	// quota'd protection zones at runtime with
	// platform.Shield.CreateRegion / DestroyRegion (destroy is erasure),
	// and `shefd -max-tenants/-tenant-quota/-tenant-fair` serves the same
	// lifecycle over the wire. See DESIGN.md §11 and
	// examples/secure_storage for the tenant-zone storage node.
}
