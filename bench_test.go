package shef

// One benchmark per table and figure of the paper's evaluation (§6).
// Run with:
//
//	go test -bench=. -benchmem            # paper-scale workloads
//	go test -bench=. -benchmem -short     # quick-scale
//
// Each benchmark regenerates its experiment through internal/experiments
// and reports the headline numbers as custom metrics; the full rows print
// with -v. cmd/benchtab renders the same tables as text.

import (
	"fmt"
	"testing"
	"time"

	"shef/internal/accel"
	"shef/internal/experiments"
	"shef/internal/perf"
)

func scale(b *testing.B) experiments.Scale {
	if testing.Short() {
		return experiments.Quick
	}
	return experiments.Paper
}

// BenchmarkTable1ShieldArea regenerates Table 1: per-component Shield
// resource utilisation on the F1 device model.
func BenchmarkTable1ShieldArea(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	for _, r := range rows {
		b.Logf("%-16s BRAM %d (%.2f%%)  LUT %d (%.2f%%)  REG %d (%.2f%%)",
			r.Component, r.Res.BRAM, r.Util.BRAM, r.Res.LUT, r.Util.LUT, r.Res.REG, r.Util.REG)
	}
	b.ReportMetric(float64(len(rows)), "components")
}

// BenchmarkFigure5VecAdd regenerates Figure 5: vecadd throughput overhead
// across input sizes for the AES/4x and AES/16x Shield configurations.
func BenchmarkFigure5VecAdd(b *testing.B) {
	var rows []experiments.Fig5Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure5(scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	var max4, max16 float64
	for _, r := range rows {
		b.Logf("vecadd %8dKB %-14s %.2fx", r.InputKB, r.Variant, r.Overhead)
		if r.Variant == accel.V128x4 && r.Overhead > max4 {
			max4 = r.Overhead
		}
		if r.Variant == accel.V128x16 && r.Overhead > max16 {
			max16 = r.Overhead
		}
	}
	b.ReportMetric(max4, "max-overhead-4x")
	b.ReportMetric(max16, "max-overhead-16x")
}

// BenchmarkFigure5MatMul regenerates the §6.2.2 matmul remark (paper:
// max 1.26x for AES/4x).
func BenchmarkFigure5MatMul(b *testing.B) {
	var ov float64
	var err error
	for i := 0; i < b.N; i++ {
		ov, err = experiments.MatMulOverhead(scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("matmul AES-128/4x overhead %.2fx (paper: 1.26x)", ov)
	b.ReportMetric(ov, "overhead")
}

// BenchmarkTable2SDP regenerates Table 2: the SDP storage-node Shield
// configuration sweep (paper: 298/297/59/20/20%% overheads).
func BenchmarkTable2SDP(b *testing.B) {
	var rows []struct {
		Label    string
		Overhead float64
	}
	for i := 0; i < b.N; i++ {
		rs, err := experiments.Table2()
		if err != nil {
			b.Fatal(err)
		}
		rows = rows[:0]
		for _, r := range rs {
			rows = append(rows, struct {
				Label    string
				Overhead float64
			}{r.Label, r.Overhead})
		}
	}
	paper := []int{298, 297, 59, 20, 20}
	for i, r := range rows {
		b.Logf("%-26s measured %4.0f%%  paper %3d%%", r.Label, r.Overhead*100, paper[i])
		b.ReportMetric(r.Overhead*100, fmt.Sprintf("pct-cfg%d", i))
	}
}

// BenchmarkFigure6Workloads regenerates Figure 6: the five accelerators
// across Shield engine configurations.
func BenchmarkFigure6Workloads(b *testing.B) {
	var rows []experiments.Fig6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Figure6(scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%-10s %-16s %.2fx", r.Workload, r.Variant, r.Overhead)
		if r.Variant == accel.V128x16 || r.Variant == accel.V128x16PMAC {
			name := r.Workload
			if r.Variant.PMAC {
				name += "-pmac"
			}
			b.ReportMetric(r.Overhead, name+"-x")
		}
	}
}

// BenchmarkTable3Area regenerates Table 3: inclusive resource utilisation
// of each accelerator's largest Shield configuration.
func BenchmarkTable3Area(b *testing.B) {
	var rows []experiments.Table3Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Table3(scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%-10s BRAM %.2f%%  LUT %.2f%%  REG %.2f%%", r.Workload, r.Util.BRAM, r.Util.LUT, r.Util.REG)
		b.ReportMetric(r.Util.LUT, r.Workload+"-lut-pct")
	}
}

// BenchmarkSection61Boot regenerates the §6.1 boot-time measurement
// (paper: 5.1 s power-on to bitstream loaded on the Ultra96).
func BenchmarkSection61Boot(b *testing.B) {
	var total float64
	for i := 0; i < b.N; i++ {
		_, t, _, _ := experiments.BootTimeline()
		total = t
	}
	stages, _, vm, f1 := experiments.BootTimeline()
	for _, s := range stages {
		b.Logf("%-28s %5.2f s", s.Stage, s.Seconds)
	}
	b.Logf("total %.2f s (paper: 5.1 s; VM boot ~%.0f s; F1 load %.1f s)", total, vm, f1)
	b.ReportMetric(total, "boot-seconds")
}

// BenchmarkAblationChunkSize quantifies the §5.2.1 Cmem trade-off for
// streaming vs random access (DESIGN.md ablations).
func BenchmarkAblationChunkSize(b *testing.B) {
	var streaming, random []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		streaming, random, err = experiments.AblationChunkSize()
		if err != nil {
			b.Fatal(err)
		}
	}
	for i := range streaming {
		b.Logf("%-10s streaming %8.0f cyc/KB   random %8.0f cyc/KB",
			streaming[i].Label, streaming[i].CyclesPerKB, random[i].CyclesPerKB)
	}
}

// BenchmarkAblationBuffer sweeps the on-chip buffer against a fixed
// working set.
func BenchmarkAblationBuffer(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationBufferSize()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%-14s %8.0f cyc/KB (misses %d)", r.Label, r.CyclesPerKB, r.Misses)
	}
}

// BenchmarkAblationFreshness prices the replay-protection counters.
func BenchmarkAblationFreshness(b *testing.B) {
	var rows []experiments.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.AblationFreshness()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%-26s %8.0f cyc/KB, %d OCM bits", r.Label, r.CyclesPerKB, r.OCMBits)
	}
}

// BenchmarkClusterThroughput measures the sharded SDP cluster's aggregate
// ops/sec as the fleet grows (fixed offered load of eight client
// goroutines) — the serving-tier scaling story grown from the paper's
// §6.2.3 case study. cmd/benchtab renders the same sweep with -cluster.
func BenchmarkClusterThroughput(b *testing.B) {
	var rows []experiments.ClusterRow
	var err error
	for i := 0; i < b.N; i++ {
		// The sweep stops the timer around cluster construction, sealed
		// key-DB provisioning, and warm-up, so real ops/sec measures
		// steady-state serving only.
		rows, err = experiments.ClusterThroughput(b, scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	byShards := make(map[int]experiments.ClusterRow)
	for _, r := range rows {
		byShards[r.Shards] = r
		b.Logf("shards=%d workers=%d  %6d ops in %8s  %9.0f ops/sec  sim %9.0f ops/sec (max-busy %d cyc)",
			r.Shards, r.Workers, r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec, r.SimOpsPerSec, r.SimMaxBusy)
		b.ReportMetric(r.OpsPerSec, fmt.Sprintf("ops/sec-%dshard", r.Shards))
		b.ReportMetric(r.SimOpsPerSec, fmt.Sprintf("sim-ops/sec-%dshard", r.Shards))
	}
	// The headline scaling gate: real (wall-clock) throughput ratio from
	// one shard to eight. benchtab -check fails the PR if this flattens.
	if r1, r8 := byShards[1], byShards[8]; r1.OpsPerSec > 0 && r8.OpsPerSec > 0 {
		b.ReportMetric(r8.OpsPerSec/r1.OpsPerSec, "real-cluster-scale-x")
	}
}

// BenchmarkClusterDegraded measures the replicated serving fleet's
// throughput healthy and with one of four shards crashed — the
// resilience counterpart of the scaling sweep. The gated headline is
// real-degraded-retain-x (degraded/healthy, absolute floor 0.25 in
// benchtab -check): a single-node failure must leave a serving cluster,
// not a dead one. real-degraded-ops/sec gates against the baseline with
// the real-family budget so the degraded rate never silently collapses.
func BenchmarkClusterDegraded(b *testing.B) {
	var row experiments.DegradedRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.DegradedThroughput(b, scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("shards=%d replicas=%d workers=%d  healthy %9.0f ops/sec  degraded %9.0f ops/sec  retain %.2fx",
		row.Shards, row.Replicas, row.Workers, row.HealthyOpsPerSec, row.DegradedOpsPerSec, row.RetainX)
	b.Logf("degraded window: %d quorum (degraded) writes, %d fallback reads; %d anti-entropy repairs after restart",
		row.DegradedWrites, row.FallbackReads, row.Repairs)
	b.ReportMetric(row.DegradedOpsPerSec, "real-degraded-ops/sec")
	b.ReportMetric(row.RetainX, "real-degraded-retain-x")
}

// BenchmarkClusterGoroutines sweeps offered load over a fixed four-shard
// fleet: ops/sec vs client goroutine count.
func BenchmarkClusterGoroutines(b *testing.B) {
	var rows []experiments.ClusterRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.ClusterWorkerSweep(b, scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("shards=%d workers=%2d  %6d ops in %8s  %9.0f ops/sec",
			r.Shards, r.Workers, r.Ops, r.Elapsed.Round(time.Millisecond), r.OpsPerSec)
		b.ReportMetric(r.OpsPerSec, fmt.Sprintf("ops/sec-%dworker", r.Workers))
	}
}

// BenchmarkORAMPath prices the oblivious data path on the serving-tier
// Shield configuration: simulated path latency and bandwidth efficiency of
// the batched scatter-gather controller, and its speedup over the serial
// per-bucket baseline. The sim-* metrics are deterministic (the eviction
// order is sorted, the seeds fixed), so benchtab -check gates them.
func BenchmarkORAMPath(b *testing.B) {
	var serial, batched experiments.ORAMPoint
	var err error
	for i := 0; i < b.N; i++ {
		serial, batched, err = experiments.ORAMPathSweep(scale(b))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Logf("serial  %8.0f cyc/access  %5.1fx amplification", serial.CyclesPerAccess, serial.Amplification)
	b.Logf("batched %8.0f cyc/access  %5.1fx amplification", batched.CyclesPerAccess, batched.Amplification)
	// All gated metrics are higher-is-better: accesses/sec for path
	// latency, logical bytes per backend byte for amplification.
	b.ReportMetric(serial.CyclesPerAccess/batched.CyclesPerAccess, "sim-oram-speedup-x")
	b.ReportMetric(perf.Default().ClockHz/batched.CyclesPerAccess, "sim-oram-access/sec")
	b.ReportMetric(1000/batched.Amplification, "sim-oram-kB-per-MB-moved")
}

// BenchmarkORAMAmplification prices the §5.2.2 ORAM extension: the
// bandwidth blow-up of hiding addresses on top of the Shield's
// content protection.
func BenchmarkORAMAmplification(b *testing.B) {
	var amp float64
	for i := 0; i < b.N; i++ {
		a, err := experiments.ORAMAmplification()
		if err != nil {
			b.Fatal(err)
		}
		amp = a
	}
	b.Logf("Path ORAM bandwidth amplification: %.1fx per logical access", amp)
	b.ReportMetric(amp, "amplification-x")
}
