package oram

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sync"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
	"shef/internal/shield"
)

// oramShield builds a provisioned one-region Shield big enough for the
// configuration: the streaming-headline engine set (16 AES engines, PMAC,
// 512 B chunks) so the batched path has a pipeline to ride.
func oramShield(t testing.TB, cfg Config) *shield.Shield {
	t.Helper()
	foot := cfg.FootprintBytes()
	if foot == 0 {
		t.Fatal("invalid ORAM config")
	}
	regionSize := (foot + 511) / 512 * 512
	scfg := shield.Config{Regions: []shield.RegionConfig{{
		Name: "oram", Base: 0, Size: regionSize, ChunkSize: 512,
		AESEngines: 16, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		MAC: shield.PMAC, BufferBytes: 8 << 10, Freshness: true,
	}}}
	dram := mem.NewDRAM(regionSize*2+1<<20, perf.Default())
	ocm := mem.NewOCM(1 << 31)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := shield.New(scfg, priv, dram, ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	dek := bytes.Repeat([]byte{9}, 32)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		t.Fatal(err)
	}
	return sh
}

// driveMixed runs a deterministic read/write mix and returns the cycle
// total the controller accumulated.
func driveMixed(t testing.TB, o *ORAM, blocks, bs, ops int, seed int64) uint64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	data := make([]byte, bs)
	for i := 0; i < ops; i++ {
		b := rng.Intn(blocks)
		if i%2 == 0 {
			rng.Read(data)
			if err := o.Write(b, data); err != nil {
				t.Fatal(err)
			}
		} else if _, err := o.Read(b); err != nil {
			t.Fatal(err)
		}
	}
	return o.Cycles()
}

// TestORAMBatchedSpeedup is the acceptance gate: at 4096 blocks × 512 B
// over a Shield region, gathering the path into batched stream
// transactions must beat the serial per-bucket chunked path by ≥1.5x in
// deterministic simulated cycles.
func TestORAMBatchedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("builds two 4096-block trees over Shields")
	}
	const blocks, bs, ops = 4096, 512, 40
	serialCfg := Config{Blocks: blocks, BlockSize: bs, Seed: 5, Serial: true}
	batchedCfg := Config{Blocks: blocks, BlockSize: bs, Seed: 5, ChunkAlign: 512}

	serial, err := NewWithConfig(oramShield(t, serialCfg), serialCfg)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewWithConfig(oramShield(t, batchedCfg), batchedCfg)
	if err != nil {
		t.Fatal(err)
	}
	serialCycles := driveMixed(t, serial, blocks, bs, ops, 23)
	batchedCycles := driveMixed(t, batched, blocks, bs, ops, 23)
	speedup := float64(serialCycles) / float64(batchedCycles)
	t.Logf("serial %d cyc, batched %d cyc: %.2fx (%.0f cyc/access batched)",
		serialCycles, batchedCycles, speedup, float64(batchedCycles)/ops)
	if speedup < 1.5 {
		t.Fatalf("batched path %.2fx over serial, want ≥1.5x", speedup)
	}
}

// TestORAMDeterministic mirrors the Shield's TestFlushDeterministic: with
// the same seed and access sequence, two fresh controllers produce
// byte-identical backend write traffic and identical simulated cycle
// counts. This is what the sorted-order eviction buys — a map-order walk
// made layout and cycle counts differ run to run.
func TestORAMDeterministic(t *testing.T) {
	const blocks, bs, ops = 128, 64, 400
	run := func() (string, uint64) {
		dram := mem.NewDRAM(FootprintBytes(blocks, bs)+1<<16, perf.Default())
		rec := &hashingRecorder{inner: dram, h: fnv.New64a()}
		o, err := New(rec, 0, blocks, bs, 99)
		if err != nil {
			t.Fatal(err)
		}
		cycles := driveMixed(t, o, blocks, bs, ops, 7)
		return fmt.Sprintf("%x", rec.h.Sum64()), cycles
	}
	trace1, cycles1 := run()
	trace2, cycles2 := run()
	if trace1 != trace2 {
		t.Fatalf("backend write traces differ across identical runs: %s vs %s", trace1, trace2)
	}
	if cycles1 != cycles2 {
		t.Fatalf("cycle counts differ across identical runs: %d vs %d", cycles1, cycles2)
	}
}

// hashingRecorder folds every backend write (address, length, payload)
// into one hash, so whole-trace comparison is cheap.
type hashingRecorder struct {
	inner *mem.DRAM
	h     interface {
		Write([]byte) (int, error)
		Sum64() uint64
	}
}

func (r *hashingRecorder) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	return r.inner.ReadBurst(addr, buf)
}

func (r *hashingRecorder) WriteBurst(addr uint64, data []byte) (uint64, error) {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[:], addr)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(data)))
	r.h.Write(hdr[:])
	r.h.Write(data)
	return r.inner.WriteBurst(addr, data)
}

// TestORAMTypedErrors covers the Access misuse contract: reads must not
// carry data, writes must match the block size, and out-of-range blocks
// are rejected — all as *Error values wrapping the sentinel causes.
func TestORAMTypedErrors(t *testing.T) {
	dram := mem.NewDRAM(1<<20, perf.Default())
	o, err := New(dram, 0, 8, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		call func() error
		want error
	}{
		{"read with data", func() error { _, err := o.Access(0, false, make([]byte, 64)); return err }, ErrDataOnRead},
		{"short write", func() error { return o.Write(0, make([]byte, 32)) }, ErrDataLength},
		{"long write", func() error { return o.Write(0, make([]byte, 128)) }, ErrDataLength},
		{"negative block", func() error { _, err := o.Read(-1); return err }, ErrBlockRange},
		{"block past end", func() error { _, err := o.Read(8); return err }, ErrBlockRange},
	}
	for _, tc := range cases {
		err := tc.call()
		if !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		var oe *Error
		if !errors.As(err, &oe) {
			t.Fatalf("%s: error %v is not a typed *oram.Error", tc.name, err)
		}
	}
	// A corrupt stash entry (impossible through the public API) fails the
	// access instead of being silently dropped or mis-sized. Block 3 has
	// never been written, so the forged entry is what the access serves.
	o.mu.Lock()
	o.stash[3] = &stashEntry{data: make([]byte, 32)}
	o.mu.Unlock()
	if _, err := o.Read(3); !errors.Is(err, ErrStashEntry) {
		t.Fatalf("corrupt stash entry: got %v, want %v", err, ErrStashEntry)
	}
}

// TestORAMBucketCorruption: a spoofed backend bucket naming an impossible
// block surfaces as a typed error, never as silent stash state.
func TestORAMBucketCorruption(t *testing.T) {
	const blocks, bs = 16, 64
	dram := mem.NewDRAM(FootprintBytes(blocks, bs)+1<<16, perf.Default())
	o, err := New(dram, 0, blocks, bs, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Forge slot 0 of the root bucket (on every path) to name a block that
	// cannot exist.
	var hdr [slotHeaderBytes]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(blocks)+5)
	if err := dram.RawWrite(0, hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(0); !errors.Is(err, ErrBucketEntry) {
		t.Fatalf("corrupt bucket: got %v, want %v", err, ErrBucketEntry)
	}
}

// TestORAMGeometryLimit: geometries whose footprint cannot be addressed in
// 64 bits are rejected in New, not wrapped into colliding bucket
// addresses at runtime (the old bucket*int multiply overflowed).
func TestORAMGeometryLimit(t *testing.T) {
	dram := mem.NewDRAM(1<<20, perf.Default())
	if _, err := New(dram, 0, 1<<45, 64, 1); !errors.Is(err, ErrGeometry) {
		t.Fatalf("2^45-block tree accepted: %v", err)
	}
	if _, err := New(dram, ^uint64(0)-4096, 64, 64, 1); !errors.Is(err, ErrGeometry) {
		t.Fatalf("tree wrapping the address space accepted: %v", err)
	}
}

// TestORAMRandomGeometries is the property test: ORAM equals flat memory
// over random geometries — non-power-of-two block counts, odd block
// sizes, serial and batched I/O, padded strides, and recursive position
// maps — while the stash high-water mark stays bounded.
func TestORAMRandomGeometries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		blocks := 2 + rng.Intn(250)
		bs := 8 * (1 + rng.Intn(13)) // 8..104 bytes, odd multiples included
		cfg := Config{
			Blocks:    blocks,
			BlockSize: bs,
			Seed:      int64(trial),
			Serial:    rng.Intn(3) == 0,
		}
		if rng.Intn(2) == 0 {
			cfg.ChunkAlign = 512
		}
		if rng.Intn(2) == 0 {
			cfg.PosMapThreshold = 16 + rng.Intn(32)
		}
		name := fmt.Sprintf("trial%d-b%d-s%d-serial%v-align%d-pos%d",
			trial, blocks, bs, cfg.Serial, cfg.ChunkAlign, cfg.PosMapThreshold)
		t.Run(name, func(t *testing.T) {
			dram := mem.NewDRAM(cfg.FootprintBytes()+1<<16, perf.Default())
			o, err := NewWithConfig(dram, cfg)
			if err != nil {
				t.Fatal(err)
			}
			ref := make(map[int][]byte)
			for op := 0; op < 600; op++ {
				b := rng.Intn(blocks)
				if rng.Intn(2) == 0 {
					data := make([]byte, bs)
					rng.Read(data)
					if err := o.Write(b, data); err != nil {
						t.Fatal(err)
					}
					ref[b] = data
				} else {
					got, err := o.Read(b)
					if err != nil {
						t.Fatal(err)
					}
					want := ref[b]
					if want == nil {
						want = make([]byte, bs)
					}
					if !bytes.Equal(got, want) {
						t.Fatalf("op %d: block %d mismatch", op, b)
					}
				}
			}
			if _, _, maxStash := o.Stats(); maxStash > 80 {
				t.Fatalf("stash high-water mark %d breaches the Z=4 bound", maxStash)
			}
		})
	}
}

// TestORAMRecursivePositionMap pins the recursion contract: the table
// recurses until it fits the threshold, the footprint covers every level,
// and correctness and determinism hold through the chain.
func TestORAMRecursivePositionMap(t *testing.T) {
	const blocks, bs = 300, 64
	cfg := Config{Blocks: blocks, BlockSize: bs, Seed: 12, PosMapThreshold: 16}
	dram := mem.NewDRAM(cfg.FootprintBytes()+1<<16, perf.Default())
	o, err := NewWithConfig(dram, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 300 entries → 19 position-map blocks → 2 → on-chip: depth 3.
	if got := o.Depth(); got != 3 {
		t.Fatalf("recursion depth %d, want 3", got)
	}
	ref := make(map[int][]byte)
	rng := rand.New(rand.NewSource(8))
	for op := 0; op < 1200; op++ {
		b := rng.Intn(blocks)
		if rng.Intn(2) == 0 {
			data := make([]byte, bs)
			rng.Read(data)
			if err := o.Write(b, data); err != nil {
				t.Fatal(err)
			}
			ref[b] = data
		} else {
			got, err := o.Read(b)
			if err != nil {
				t.Fatal(err)
			}
			want := ref[b]
			if want == nil {
				want = make([]byte, bs)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d mismatch", op, b)
			}
		}
	}
	// Position-map traffic is visible in the aggregate stats: more bytes
	// than the top tree alone would move.
	accesses, moved, _ := o.Stats()
	topOnly := uint64(2*(o.levels+1)*o.bucketBytes()) * accesses
	if moved <= topOnly {
		t.Fatalf("aggregate bytes %d do not include recursion traffic (top tree alone %d)", moved, topOnly)
	}
}

// TestORAMConcurrentAccess shares one controller across goroutines under
// -race: the mutex-guarded Access plus atomic stats must hold with
// disjoint per-goroutine block ranges round-tripping correctly.
func TestORAMConcurrentAccess(t *testing.T) {
	const workers, perWorker, bs = 8, 8, 64
	blocks := workers * perWorker
	dram := mem.NewDRAM(FootprintBytes(blocks, bs)+1<<16, perf.Default())
	o, err := New(dram, 0, blocks, bs, 17)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				for i := 0; i < perWorker; i++ {
					b := w*perWorker + i
					data := bytes.Repeat([]byte{byte(w), byte(round), byte(i)}, bs/3+1)[:bs]
					if err := o.Write(b, data); err != nil {
						errs[w] = err
						return
					}
					got, err := o.Read(b)
					if err != nil {
						errs[w] = err
						return
					}
					if !bytes.Equal(got, data) {
						errs[w] = fmt.Errorf("worker %d round %d: block %d corrupted", w, round, b)
						return
					}
				}
				o.Stats() // lock-free stats race against the data path
				o.Amplification()
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	accesses, _, _ := o.Stats()
	if want := uint64(workers * 20 * perWorker * 2); accesses != want {
		t.Fatalf("access count %d, want %d", accesses, want)
	}
}
