// Package oram implements Path ORAM (Stefanov et al., CCS'13) on top of an
// axi.MemoryPort — the address-metadata countermeasure the paper names as
// a drop-in extension: "Further security mechanisms against address
// metadata attacks, such as ORAM, can simply be added by adopting
// open-source modules on top of Shield engines due to their generic
// interface" (§5.2.2).
//
// Stacked on a Shield region, the combination hides both *contents* (the
// Shield's authenticated encryption) and *addresses* (every logical access
// touches exactly one uniformly random root-to-leaf path of the ORAM
// tree). The position map and stash live in on-chip memory, as the cited
// FPGA ORAM controller keeps them.
package oram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"

	"shef/internal/axi"
)

// BucketSlots is Z, the number of block slots per tree bucket. Z = 4 is
// the standard Path ORAM parameter with negligible stash overflow.
const BucketSlots = 4

// slotHeader is the per-slot metadata: 8 bytes holding the resident block
// ID (or invalidID).
const slotHeaderBytes = 8

const invalidID = ^uint64(0)

// ORAM is a Path ORAM controller over numBlocks logical blocks of
// blockSize bytes each.
type ORAM struct {
	port      axi.MemoryPort
	base      uint64
	blockSize int
	numBlocks int
	levels    int // tree height; leaves = 1<<levels
	rng       *rand.Rand

	// Client (on-chip) state.
	position []uint32          // block -> leaf
	stash    map[uint64][]byte // block -> data
	maxStash int

	// Statistics.
	accesses   uint64
	bytesMoved uint64
}

// TreeBuckets returns the bucket count for the configured geometry.
func (o *ORAM) TreeBuckets() int { return 1<<(o.levels+1) - 1 }

// FootprintBytes is the backend space the tree occupies.
func FootprintBytes(numBlocks, blockSize int) uint64 {
	levels := heightFor(numBlocks)
	buckets := uint64(1<<(levels+1) - 1)
	return buckets * uint64(BucketSlots) * uint64(slotHeaderBytes+blockSize)
}

func heightFor(numBlocks int) int {
	levels := 0
	for 1<<levels < numBlocks {
		levels++
	}
	// One leaf per block is the textbook setting; the tree has levels+1
	// levels including the root.
	return levels
}

// New builds an ORAM of numBlocks blocks of blockSize bytes over port,
// placing the tree at base. The backend window must cover
// FootprintBytes(numBlocks, blockSize). seed drives the (simulated)
// hardware RNG that draws fresh leaves.
func New(port axi.MemoryPort, base uint64, numBlocks, blockSize int, seed int64) (*ORAM, error) {
	if numBlocks < 2 {
		return nil, errors.New("oram: need at least 2 blocks")
	}
	if blockSize <= 0 || blockSize%8 != 0 {
		return nil, fmt.Errorf("oram: block size %d must be a positive multiple of 8", blockSize)
	}
	o := &ORAM{
		port:      port,
		base:      base,
		blockSize: blockSize,
		numBlocks: numBlocks,
		levels:    heightFor(numBlocks),
		rng:       rand.New(rand.NewSource(seed)),
		position:  make([]uint32, numBlocks),
		stash:     make(map[uint64][]byte),
	}
	for i := range o.position {
		o.position[i] = uint32(o.rng.Intn(1 << o.levels))
	}
	// Initialise every bucket slot as empty.
	empty := make([]byte, o.bucketBytes())
	for s := 0; s < BucketSlots; s++ {
		binary.LittleEndian.PutUint64(empty[s*o.slotBytes():], invalidID)
	}
	for b := 0; b < o.TreeBuckets(); b++ {
		if _, err := port.WriteBurst(o.bucketAddr(b), empty); err != nil {
			return nil, fmt.Errorf("oram: initialising bucket %d: %w", b, err)
		}
	}
	return o, nil
}

func (o *ORAM) slotBytes() int   { return slotHeaderBytes + o.blockSize }
func (o *ORAM) bucketBytes() int { return BucketSlots * o.slotBytes() }

func (o *ORAM) bucketAddr(bucket int) uint64 {
	return o.base + uint64(bucket*o.bucketBytes())
}

// pathBuckets returns the bucket indices from the root to the given leaf.
// Bucket numbering is heap order: root = 0, children of i are 2i+1, 2i+2.
func (o *ORAM) pathBuckets(leaf uint32) []int {
	path := make([]int, o.levels+1)
	node := int(leaf) + (1 << o.levels) - 1 // leaf bucket index
	for l := o.levels; l >= 0; l-- {
		path[l] = node
		node = (node - 1) / 2
	}
	return path
}

// onPath reports whether bucket sits on the path to leaf at some level.
func (o *ORAM) bucketAtLevel(leaf uint32, level int) int {
	node := int(leaf) + (1 << o.levels) - 1
	for l := o.levels; l > level; l-- {
		node = (node - 1) / 2
	}
	return node
}

// Access performs one oblivious operation. If write is true, data replaces
// the block's contents; the previous contents are returned either way.
func (o *ORAM) Access(block int, write bool, data []byte) ([]byte, error) {
	if block < 0 || block >= o.numBlocks {
		return nil, fmt.Errorf("oram: block %d out of range", block)
	}
	if write && len(data) != o.blockSize {
		return nil, fmt.Errorf("oram: write of %d bytes, want %d", len(data), o.blockSize)
	}
	o.accesses++
	id := uint64(block)
	leaf := o.position[block]
	// Remap before anything touches the backend: the old position must
	// not influence future accesses.
	o.position[block] = uint32(o.rng.Intn(1 << o.levels))

	// Read the whole path into the stash.
	path := o.pathBuckets(leaf)
	buf := make([]byte, o.bucketBytes())
	for _, b := range path {
		if _, err := o.port.ReadBurst(o.bucketAddr(b), buf); err != nil {
			return nil, err
		}
		o.bytesMoved += uint64(len(buf))
		for s := 0; s < BucketSlots; s++ {
			slot := buf[s*o.slotBytes() : (s+1)*o.slotBytes()]
			sid := binary.LittleEndian.Uint64(slot)
			if sid == invalidID {
				continue
			}
			blk := make([]byte, o.blockSize)
			copy(blk, slot[slotHeaderBytes:])
			o.stash[sid] = blk
		}
	}

	// Serve the request from the stash.
	old, ok := o.stash[id]
	if !ok {
		old = make([]byte, o.blockSize) // first touch: zeros
	}
	result := append([]byte(nil), old...)
	if write {
		o.stash[id] = append([]byte(nil), data...)
	} else {
		o.stash[id] = old
	}

	// Evict: refill the path greedily from leaf level upward with stash
	// blocks whose (new) position still passes through each bucket.
	for l := o.levels; l >= 0; l-- {
		bucket := path[l]
		out := make([]byte, o.bucketBytes())
		filled := 0
		for sid, blk := range o.stash {
			if filled == BucketSlots {
				break
			}
			if o.bucketAtLevel(o.position[sid], l) != bucket {
				continue
			}
			slot := out[filled*o.slotBytes():]
			binary.LittleEndian.PutUint64(slot, sid)
			copy(slot[slotHeaderBytes:], blk)
			delete(o.stash, sid)
			filled++
		}
		for s := filled; s < BucketSlots; s++ {
			binary.LittleEndian.PutUint64(out[s*o.slotBytes():], invalidID)
		}
		if _, err := o.port.WriteBurst(o.bucketAddr(bucket), out); err != nil {
			return nil, err
		}
		o.bytesMoved += uint64(len(out))
	}
	if len(o.stash) > o.maxStash {
		o.maxStash = len(o.stash)
	}
	return result, nil
}

// Read returns a block's contents obliviously.
func (o *ORAM) Read(block int) ([]byte, error) { return o.Access(block, false, nil) }

// Write stores a block obliviously.
func (o *ORAM) Write(block int, data []byte) error {
	_, err := o.Access(block, true, data)
	return err
}

// Stats reports access count, backend bytes moved, and the stash
// high-water mark (which must stay small for Path ORAM to be sound).
func (o *ORAM) Stats() (accesses, bytesMoved uint64, maxStash int) {
	return o.accesses, o.bytesMoved, o.maxStash
}

// Amplification is the bandwidth blow-up per logical byte: the price of
// hiding addresses.
func (o *ORAM) Amplification() float64 {
	if o.accesses == 0 {
		return 0
	}
	return float64(o.bytesMoved) / float64(o.accesses*uint64(o.blockSize))
}
