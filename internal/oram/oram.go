// Package oram implements Path ORAM (Stefanov et al., CCS'13) on top of an
// axi.MemoryPort — the address-metadata countermeasure the paper names as
// a drop-in extension: "Further security mechanisms against address
// metadata attacks, such as ORAM, can simply be added by adopting
// open-source modules on top of Shield engines due to their generic
// interface" (§5.2.2).
//
// Stacked on a Shield region, the combination hides both *contents* (the
// Shield's authenticated encryption) and *addresses* (every logical access
// touches exactly one uniformly random root-to-leaf path of the ORAM
// tree). The stash and the top of the position map live in on-chip memory,
// as the cited FPGA ORAM controller keeps them; with Config.PosMapThreshold
// the block→leaf table recurses into smaller ORAMs so on-chip state stays
// bounded while the tree scales to millions of blocks.
//
// The controller is safe for concurrent use (a mutex serialises Access the
// way the hardware controller serialises its path state machine; stats are
// atomics) and moves path buckets in batched transactions: the root-to-leaf
// buckets are gathered into contiguous runs and each run travels through
// axi.ReadAuto/WriteAuto, so over a Shield the path rides the pipelined
// stream engine (perf.StreamWindowTime accounting) instead of one serial
// chunked burst per bucket.
package oram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"shef/internal/axi"
	"shef/internal/perf"
)

// BucketSlots is Z, the number of block slots per tree bucket. Z = 4 is
// the standard Path ORAM parameter with negligible stash overflow.
const BucketSlots = 4

// slotHeader is the per-slot metadata: 8 bytes of resident block ID (or
// invalidID), 4 bytes of the block's current leaf label (so the recursive
// position map never has to be consulted during eviction), 4 bytes
// reserved for alignment.
const slotHeaderBytes = 16

const invalidID = ^uint64(0)

// posMapBlockBytes is the block size of the recursive position-map ORAMs:
// 16 packed uint32 leaf labels per block.
const posMapBlockBytes = 64

// posMapEntries is the number of leaf labels one position-map block packs.
const posMapEntries = posMapBlockBytes / 4

// maxLevels bounds the tree height so bucket addresses can never overflow
// 64-bit arithmetic regardless of the block size (2^41 buckets is already
// far beyond any realistic backend window).
const maxLevels = 40

// initSlabBuckets is how many buckets one initialisation write moves when
// the batched path is enabled.
const initSlabBuckets = 64

// Sentinel causes for the typed *Error.
var (
	// ErrBlockRange reports a logical block index outside [0, Blocks).
	ErrBlockRange = errors.New("block index out of range")
	// ErrDataOnRead reports a read access that carried a data buffer.
	ErrDataOnRead = errors.New("non-nil data on a read access")
	// ErrDataLength reports a write whose data length is not the block size.
	ErrDataLength = errors.New("data length does not match the block size")
	// ErrStashEntry reports an on-chip stash entry with a corrupt length.
	ErrStashEntry = errors.New("stash entry length corrupt")
	// ErrBucketEntry reports a backend bucket slot naming an impossible
	// block or leaf (backend corruption beneath the ORAM layer).
	ErrBucketEntry = errors.New("backend bucket entry corrupt")
	// ErrGeometry reports a tree that cannot be addressed in 64 bits.
	ErrGeometry = errors.New("geometry exceeds the addressable window")
)

// Error is the typed failure Access returns for misuse and corrupt state;
// errors.Is sees through it to the sentinel cause.
type Error struct {
	Op    string // "read", "write", "access", "new"
	Block int
	Err   error
}

func (e *Error) Error() string {
	return fmt.Sprintf("oram: %s block %d: %v", e.Op, e.Block, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Config describes an ORAM controller. The zero value of the optional
// fields reproduces the classic geometry: unpadded buckets, batched path
// I/O with the perf-default run cap, and a fully on-chip position map.
type Config struct {
	// Base is where the tree starts in the backend window.
	Base uint64
	// Blocks is the logical block count (at least 2).
	Blocks int
	// BlockSize is the logical block size in bytes (positive multiple of 8).
	BlockSize int
	// Seed drives the (simulated) hardware RNG that draws fresh leaves.
	Seed int64
	// Serial disables batched path I/O: every bucket moves in its own
	// ReadBurst/WriteBurst, the pre-batching controller's behaviour. Kept
	// for the speedup baseline and for accounting comparisons.
	Serial bool
	// ChunkAlign pads the bucket stride up to a multiple of this (the
	// Shield chunk size): buckets then start chunk-aligned and cover whole
	// chunks, so bucket stores stream as full-chunk writes instead of
	// read-modify-writing the chunks they straddle. Zero keeps the packed
	// layout.
	ChunkAlign int
	// BatchBuckets caps how many buckets one batched transaction carries;
	// zero uses perf.Default().ORAMBatchBuckets.
	BatchBuckets int
	// PosMapThreshold bounds the on-chip position map: while the table has
	// more entries than this (and more than one position-map block's
	// worth), it recurses into a smaller ORAM placed after the tree in the
	// same window. Zero keeps the whole table on-chip.
	PosMapThreshold int
}

// stashEntry is one on-chip stash block: its current leaf label and data.
type stashEntry struct {
	leaf uint32
	data []byte
}

// ORAM is a Path ORAM controller over Config.Blocks logical blocks.
type ORAM struct {
	port   axi.MemoryPort
	cfg    Config
	base   uint64
	stride int // bucket pitch in bytes (bucketBytes padded to ChunkAlign)
	levels int // tree height; leaves = 1<<levels
	batch  int // bucket cap per batched transaction

	// mu serialises accesses: the controller is one path state machine, so
	// concurrent Access calls queue exactly as they would on the hardware
	// request port. Everything below mu is guarded by it.
	mu       sync.Mutex
	rng      *rand.Rand
	position []uint32 // on-chip block -> leaf (nil when recursing)
	posORAM  *ORAM    // recursive position map (leaf+1 encoding)
	stash    map[uint64]*stashEntry
	maxStash atomic.Int64 // written under mu, read lock-free by Stats

	// Scratch so the access hot path allocates (almost) nothing: staging
	// slabs, run/key lists, and a free list recycling stash entries that
	// eviction just placed back into the tree. The one per-access
	// allocation left is the returned copy of the block's old contents.
	path      []int
	pathBuf   []byte // (levels+1)*stride read staging
	writeBuf  []byte // (levels+1)*stride eviction staging
	runs      []axi.Burst
	stashKeys []uint64
	free      []*stashEntry

	// Statistics (atomics: Stats and Amplification read without blocking
	// in-flight accesses).
	accesses   atomic.Uint64
	bytesMoved atomic.Uint64
	cycles     atomic.Uint64
}

// New builds an ORAM of numBlocks blocks of blockSize bytes over port,
// placing the tree at base, with the default configuration (batched path
// I/O, packed buckets, on-chip position map). The backend window must
// cover FootprintBytes(numBlocks, blockSize).
func New(port axi.MemoryPort, base uint64, numBlocks, blockSize int, seed int64) (*ORAM, error) {
	return NewWithConfig(port, Config{Base: base, Blocks: numBlocks, BlockSize: blockSize, Seed: seed})
}

// NewWithConfig builds an ORAM from a full Config. The backend window must
// cover cfg.FootprintBytes() from cfg.Base (tree plus any recursive
// position-map trees).
func NewWithConfig(port axi.MemoryPort, cfg Config) (*ORAM, error) {
	levels, stride, foot, err := cfg.geometry()
	if err != nil {
		return nil, err
	}
	batch := cfg.BatchBuckets
	if batch <= 0 {
		batch = perf.Default().ORAMBatchBuckets
	}
	o := &ORAM{
		port:     port,
		cfg:      cfg,
		base:     cfg.Base,
		stride:   stride,
		levels:   levels,
		batch:    batch,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		stash:    make(map[uint64]*stashEntry),
		path:     make([]int, levels+1),
		pathBuf:  make([]byte, (levels+1)*stride),
		writeBuf: make([]byte, (levels+1)*stride),
	}
	if child, ok := cfg.childConfig(foot); ok {
		o.posORAM, err = NewWithConfig(port, child)
		if err != nil {
			return nil, err
		}
	} else {
		o.position = make([]uint32, cfg.Blocks)
		for i := range o.position {
			o.position[i] = uint32(o.rng.Intn(1 << o.levels))
		}
	}
	if err := o.initBuckets(); err != nil {
		return nil, err
	}
	return o, nil
}

// geometry validates the configuration and derives the tree shape. All
// address arithmetic is uint64 with explicit overflow checks, so a huge
// geometry fails in New instead of wrapping bucket addresses at runtime.
func (cfg Config) geometry() (levels, stride int, footprint uint64, err error) {
	if cfg.Blocks < 2 {
		return 0, 0, 0, fmt.Errorf("oram: need at least 2 blocks: %w", ErrGeometry)
	}
	if cfg.BlockSize <= 0 || cfg.BlockSize%8 != 0 {
		return 0, 0, 0, fmt.Errorf("oram: block size %d must be a positive multiple of 8: %w", cfg.BlockSize, ErrGeometry)
	}
	if cfg.ChunkAlign < 0 {
		return 0, 0, 0, fmt.Errorf("oram: negative chunk alignment %d: %w", cfg.ChunkAlign, ErrGeometry)
	}
	if cfg.ChunkAlign > 0 && cfg.Base%uint64(cfg.ChunkAlign) != 0 {
		return 0, 0, 0, fmt.Errorf("oram: base %#x not aligned to chunk size %d: %w", cfg.Base, cfg.ChunkAlign, ErrGeometry)
	}
	levels = heightFor(cfg.Blocks)
	if levels > maxLevels {
		return 0, 0, 0, &Error{Op: "new", Err: ErrGeometry}
	}
	stride = BucketSlots * (slotHeaderBytes + cfg.BlockSize)
	if cfg.ChunkAlign > 0 {
		stride = (stride + cfg.ChunkAlign - 1) / cfg.ChunkAlign * cfg.ChunkAlign
	}
	buckets := uint64(1)<<(levels+1) - 1
	if uint64(stride) != 0 && buckets > (^uint64(0))/uint64(stride) {
		return 0, 0, 0, &Error{Op: "new", Err: ErrGeometry}
	}
	footprint = buckets * uint64(stride)
	if cfg.Base+footprint < cfg.Base {
		return 0, 0, 0, &Error{Op: "new", Err: ErrGeometry}
	}
	return levels, stride, footprint, nil
}

// childConfig returns the next recursion level's configuration, placed
// right after this level's tree, or ok=false when the position map stays
// on-chip. Recursion stops once the table fits the threshold or a single
// position-map block's packing can no longer shrink it.
func (cfg Config) childConfig(footprint uint64) (Config, bool) {
	if cfg.PosMapThreshold <= 0 || cfg.Blocks <= cfg.PosMapThreshold || cfg.Blocks <= posMapEntries {
		return Config{}, false
	}
	child := cfg
	child.Blocks = (cfg.Blocks + posMapEntries - 1) / posMapEntries
	if child.Blocks < 2 {
		child.Blocks = 2
	}
	child.BlockSize = posMapBlockBytes
	child.Base = cfg.Base + footprint
	if cfg.ChunkAlign > 0 {
		a := uint64(cfg.ChunkAlign)
		child.Base = (child.Base + a - 1) / a * a
	}
	child.Seed = cfg.Seed + 0x9e3779b9 // decorrelate the child's leaf draws
	return child, true
}

// FootprintBytes is the backend space a default-configuration tree
// occupies (no stride padding, no recursion).
func FootprintBytes(numBlocks, blockSize int) uint64 {
	f := Config{Blocks: numBlocks, BlockSize: blockSize}.FootprintBytes()
	return f
}

// FootprintBytes is the backend space the configuration occupies from
// Base: the tree plus every recursive position-map tree. Returns 0 for an
// invalid configuration (New reports the error).
func (cfg Config) FootprintBytes() uint64 {
	end := cfg.Base
	for c, ok := cfg, true; ok; {
		_, _, foot, err := c.geometry()
		if err != nil {
			return 0
		}
		end = c.Base + foot
		c, ok = c.childConfig(foot)
	}
	return end - cfg.Base
}

func heightFor(numBlocks int) int {
	levels := 0
	for 1<<levels < numBlocks {
		levels++
	}
	// One leaf per block is the textbook setting; the tree has levels+1
	// levels including the root.
	return levels
}

// TreeBuckets returns the bucket count for the configured geometry.
func (o *ORAM) TreeBuckets() int { return 1<<(o.levels+1) - 1 }

// Levels returns the tree height (leaves = 1<<Levels()).
func (o *ORAM) Levels() int { return o.levels }

// Depth reports the recursion depth: 1 for an on-chip position map, plus
// one per recursive position-map ORAM.
func (o *ORAM) Depth() int {
	d := 1
	for c := o.posORAM; c != nil; c = c.posORAM {
		d++
	}
	return d
}

func (o *ORAM) slotBytes() int   { return slotHeaderBytes + o.cfg.BlockSize }
func (o *ORAM) bucketBytes() int { return BucketSlots * o.slotBytes() }

func (o *ORAM) bucketAddr(bucket int) uint64 {
	return o.base + uint64(bucket)*uint64(o.stride)
}

// initBuckets writes every bucket as empty. The batched mode moves slabs
// of buckets through WriteAuto (over a Shield: full-chunk stream windows);
// the serial mode reproduces the per-bucket bring-up.
func (o *ORAM) initBuckets() error {
	empty := make([]byte, o.bucketBytes())
	for s := 0; s < BucketSlots; s++ {
		binary.LittleEndian.PutUint64(empty[s*o.slotBytes():], invalidID)
	}
	buckets := o.TreeBuckets()
	if o.cfg.Serial {
		for b := 0; b < buckets; b++ {
			if _, err := o.port.WriteBurst(o.bucketAddr(b), empty); err != nil {
				return fmt.Errorf("oram: initialising bucket %d: %w", b, err)
			}
		}
		return nil
	}
	slab := make([]byte, initSlabBuckets*o.stride)
	for j := 0; j < initSlabBuckets; j++ {
		copy(slab[j*o.stride:], empty)
	}
	for b := 0; b < buckets; b += initSlabBuckets {
		n := buckets - b
		if n > initSlabBuckets {
			n = initSlabBuckets
		}
		if _, err := axi.WriteAuto(o.port, o.bucketAddr(b), slab[:n*o.stride]); err != nil {
			return fmt.Errorf("oram: initialising buckets %d..%d: %w", b, b+n-1, err)
		}
	}
	return nil
}

// pathInto fills o.path with the bucket indices from the root to leaf.
// Bucket numbering is heap order: root = 0, children of i are 2i+1, 2i+2 —
// so the slice is strictly ascending, which is what lets the batched path
// hand it straight to axi.ForEachRunCapped.
func (o *ORAM) pathInto(leaf uint32) []int {
	node := int(leaf) + (1 << o.levels) - 1 // leaf bucket index
	for l := o.levels; l >= 0; l-- {
		o.path[l] = node
		node = (node - 1) / 2
	}
	return o.path
}

// bucketAtLevel returns the bucket on the path to leaf at the given level.
func (o *ORAM) bucketAtLevel(leaf uint32, level int) int {
	node := int(leaf) + (1 << o.levels) - 1
	for l := o.levels; l > level; l-- {
		node = (node - 1) / 2
	}
	return node
}

// remap returns the block's current leaf and installs a freshly drawn one,
// through the on-chip map or the recursive position-map ORAM. The old
// position must be retired before anything touches the backend so it can
// never influence future accesses.
func (o *ORAM) remap(block int) (oldLeaf, newLeaf uint32, err error) {
	newLeaf = uint32(o.rng.Intn(1 << o.levels))
	if o.posORAM == nil {
		oldLeaf = o.position[block]
		o.position[block] = newLeaf
		return oldLeaf, newLeaf, nil
	}
	// One oblivious access of the child ORAM reads the packed entry and
	// installs the new label in the same path (leaf+1 encoding; 0 means
	// the block has never been assigned).
	var enc uint32
	off := (block % posMapEntries) * 4
	_, err = o.posORAM.accessLocked("access", block/posMapEntries, func(cur []byte) {
		enc = binary.LittleEndian.Uint32(cur[off:])
		binary.LittleEndian.PutUint32(cur[off:], newLeaf+1)
	}, false)
	if err != nil {
		return 0, 0, err
	}
	if enc == 0 {
		// Unassigned block: the read path must still be uniformly random.
		oldLeaf = uint32(o.rng.Intn(1 << o.levels))
	} else {
		oldLeaf = enc - 1
	}
	return oldLeaf, newLeaf, nil
}

// Access performs one oblivious operation. If write is true, data replaces
// the block's contents; the previous contents are returned either way.
// Reads must pass nil data. Safe for concurrent use.
//
//shef:deterministic
func (o *ORAM) Access(block int, write bool, data []byte) ([]byte, error) {
	op := "read"
	if write {
		op = "write"
	}
	if block < 0 || block >= o.cfg.Blocks {
		return nil, &Error{Op: op, Block: block, Err: ErrBlockRange}
	}
	if !write && data != nil {
		return nil, &Error{Op: op, Block: block, Err: ErrDataOnRead}
	}
	if write && len(data) != o.cfg.BlockSize {
		return nil, &Error{Op: op, Block: block,
			Err: fmt.Errorf("%w: %d bytes, want %d", ErrDataLength, len(data), o.cfg.BlockSize)}
	}
	var mutate func([]byte)
	if write {
		mutate = func(cur []byte) { copy(cur, data) }
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.accessLocked(op, block, mutate, true)
}

// accessLocked is the path state machine: remap, read the old path into
// the stash, serve (and optionally mutate) the block, evict the path.
// mutate edits the block's contents in place; with needOld set the
// pre-mutation contents are copied out and returned (position-map
// accesses read their entry inside mutate instead, skipping the copy).
// Callers hold o.mu (recursive position-map ORAMs are only ever driven
// under their parent's lock).
func (o *ORAM) accessLocked(op string, block int, mutate func([]byte), needOld bool) ([]byte, error) {
	o.accesses.Add(1)
	id := uint64(block)
	oldLeaf, newLeaf, err := o.remap(block)
	if err != nil {
		return nil, err
	}
	path := o.pathInto(oldLeaf)
	if err := o.readPath(op, path); err != nil {
		return nil, err
	}
	e, ok := o.stash[id]
	if !ok {
		e = o.getEntry()
		clear(e.data) // first touch: zeros
		o.stash[id] = e
	} else if len(e.data) != o.cfg.BlockSize {
		return nil, &Error{Op: op, Block: block,
			Err: fmt.Errorf("%w: %d bytes, want %d", ErrStashEntry, len(e.data), o.cfg.BlockSize)}
	}
	e.leaf = newLeaf
	var old []byte
	if needOld {
		old = append([]byte(nil), e.data...)
	}
	if mutate != nil {
		mutate(e.data)
	}
	if err := o.evictPath(op, path); err != nil {
		return nil, err
	}
	if n := int64(len(o.stash)); n > o.maxStash.Load() {
		o.maxStash.Store(n)
	}
	return old, nil
}

// pathRuns gathers the (ascending) path bucket indices into contiguous
// runs of at most o.batch buckets, as byte ranges.
func (o *ORAM) pathRuns(path []int) []axi.Burst {
	runs := o.runs[:0]
	axi.ForEachRunCapped(path, o.batch, func(b0, n int) error {
		runs = append(runs, axi.Burst{Addr: o.bucketAddr(b0), Len: n * o.stride})
		return nil
	})
	o.runs = runs[:0]
	return runs
}

// gatherable reports whether the whole path can move as one scatter-gather
// stream: the port has a gather engine and the bucket stride is
// chunk-aligned (full chunks, so stores never read-modify-write).
func (o *ORAM) gatherable() bool {
	if o.cfg.Serial || o.cfg.ChunkAlign <= 0 {
		return false
	}
	_, ok := o.port.(axi.Gatherer)
	return ok
}

// readPath moves the whole path into the stash. Batched mode gathers the
// (ascending) bucket indices into contiguous runs: over a gather-capable
// port (the Shield) the runs travel as ONE pipelined stream — fill/drain
// once per path, one batched AXI transaction per run — otherwise each run
// moves in its own ReadAuto. Serial mode is the per-bucket baseline.
func (o *ORAM) readPath(op string, path []int) error {
	if o.cfg.Serial {
		buf := o.pathBuf[:o.bucketBytes()]
		for _, b := range path {
			c, err := o.port.ReadBurst(o.bucketAddr(b), buf)
			o.cycles.Add(c)
			if err != nil {
				return err
			}
			o.bytesMoved.Add(uint64(len(buf)))
			if err := o.unpackBucket(op, buf); err != nil {
				return err
			}
		}
		return nil
	}
	if o.gatherable() {
		buf := o.pathBuf[:len(path)*o.stride]
		c, err := axi.ReadGatherAuto(o.port, o.pathRuns(path), buf)
		o.cycles.Add(c)
		if err != nil {
			return err
		}
		o.bytesMoved.Add(uint64(len(buf)))
		for j := range path {
			if err := o.unpackBucket(op, buf[j*o.stride:j*o.stride+o.bucketBytes()]); err != nil {
				return err
			}
		}
		return nil
	}
	return axi.ForEachRunCapped(path, o.batch, func(b0, n int) error {
		buf := o.pathBuf[:n*o.stride]
		c, err := axi.ReadAuto(o.port, o.bucketAddr(b0), buf)
		o.cycles.Add(c)
		if err != nil {
			return err
		}
		o.bytesMoved.Add(uint64(len(buf)))
		for j := 0; j < n; j++ {
			if err := o.unpackBucket(op, buf[j*o.stride:j*o.stride+o.bucketBytes()]); err != nil {
				return err
			}
		}
		return nil
	})
}

// unpackBucket pulls every occupied slot of one bucket image into the
// stash, validating the header against the geometry (a corrupt backend
// beneath the ORAM surfaces as a typed error, never as silent state).
func (o *ORAM) unpackBucket(op string, img []byte) error {
	for s := 0; s < BucketSlots; s++ {
		slot := img[s*o.slotBytes() : (s+1)*o.slotBytes()]
		sid := binary.LittleEndian.Uint64(slot)
		if sid == invalidID {
			continue
		}
		leaf := binary.LittleEndian.Uint32(slot[8:])
		if sid >= uint64(o.cfg.Blocks) || leaf >= uint32(1)<<o.levels {
			return &Error{Op: op, Block: int(sid), Err: ErrBucketEntry}
		}
		e, ok := o.stash[sid]
		if !ok {
			e = o.getEntry()
			o.stash[sid] = e
		}
		e.leaf = leaf
		copy(e.data, slot[slotHeaderBytes:])
	}
	return nil
}

// getEntry recycles a stash entry eviction freed, or allocates one.
func (o *ORAM) getEntry() *stashEntry {
	if n := len(o.free); n > 0 {
		e := o.free[n-1]
		o.free = o.free[:n-1]
		return e
	}
	return &stashEntry{data: make([]byte, o.cfg.BlockSize)}
}

// evictPath refills the path greedily from the leaf level upward with
// stash blocks whose leaf still passes through each bucket, then writes
// the buckets back. Candidates are visited in sorted block order so the
// resulting backend layout — and therefore the simulated cycle count — is
// a pure function of the seed and the access sequence. Batched mode
// composes the images into stride-pitched slabs and stores each contiguous
// run in one WriteAuto; serial mode writes leaf→root per bucket.
func (o *ORAM) evictPath(op string, path []int) error {
	keys := o.stashKeys[:0]
	//shef:ignore stash ids collected into stashKeys and sorted before eviction
	for id := range o.stash {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	o.stashKeys = keys[:0]

	wb := o.writeBuf[:(len(path))*o.stride]
	clear(wb) // deterministic pad and free-slot bytes
	for l := len(path) - 1; l >= 0; l-- {
		bucket := path[l]
		img := wb[l*o.stride : l*o.stride+o.bucketBytes()]
		filled := 0
		for _, id := range keys {
			if filled == BucketSlots {
				break
			}
			e, ok := o.stash[id]
			if !ok {
				continue // already placed deeper on the path
			}
			if o.bucketAtLevel(e.leaf, l) != bucket {
				continue
			}
			slot := img[filled*o.slotBytes():]
			binary.LittleEndian.PutUint64(slot, id)
			binary.LittleEndian.PutUint32(slot[8:], e.leaf)
			copy(slot[slotHeaderBytes:], e.data)
			delete(o.stash, id)
			o.free = append(o.free, e)
			filled++
		}
		for s := filled; s < BucketSlots; s++ {
			binary.LittleEndian.PutUint64(img[s*o.slotBytes():], invalidID)
		}
	}

	if o.cfg.Serial {
		for l := len(path) - 1; l >= 0; l-- {
			img := wb[l*o.stride : l*o.stride+o.bucketBytes()]
			c, err := o.port.WriteBurst(o.bucketAddr(path[l]), img)
			o.cycles.Add(c)
			if err != nil {
				return err
			}
			o.bytesMoved.Add(uint64(len(img)))
		}
		return nil
	}
	if o.gatherable() {
		c, err := axi.WriteGatherAuto(o.port, o.pathRuns(path), wb)
		o.cycles.Add(c)
		if err != nil {
			return err
		}
		o.bytesMoved.Add(uint64(len(wb)))
		return nil
	}
	return axi.ForEachRunCapped(path, o.batch, func(b0, n int) error {
		l := sort.SearchInts(path, b0)
		slab := wb[l*o.stride : (l+n)*o.stride]
		c, err := axi.WriteAuto(o.port, o.bucketAddr(b0), slab)
		o.cycles.Add(c)
		if err != nil {
			return err
		}
		o.bytesMoved.Add(uint64(len(slab)))
		return nil
	})
}

// Read returns a block's contents obliviously.
func (o *ORAM) Read(block int) ([]byte, error) { return o.Access(block, false, nil) }

// Write stores a block obliviously.
func (o *ORAM) Write(block int, data []byte) error {
	_, err := o.Access(block, true, data)
	return err
}

// Stats reports logical access count, backend bytes moved, and the stash
// high-water mark (which must stay small for Path ORAM to be sound).
// Bytes and the stash bound aggregate over the recursive position-map
// ORAMs; accesses count logical operations only.
func (o *ORAM) Stats() (accesses, bytesMoved uint64, maxStash int) {
	accesses = o.accesses.Load()
	for c := o; c != nil; c = c.posORAM {
		bytesMoved += c.bytesMoved.Load()
		if m := int(c.maxStash.Load()); m > maxStash {
			maxStash = m
		}
	}
	return accesses, bytesMoved, maxStash
}

// Cycles is the simulated backend busy time the controller's traffic has
// cost so far (summed over the recursion), as reported by the port.
func (o *ORAM) Cycles() uint64 {
	var total uint64
	for c := o; c != nil; c = c.posORAM {
		total += c.cycles.Load()
	}
	return total
}

// Amplification is the bandwidth blow-up per logical byte — the price of
// hiding addresses, including the recursive position-map traffic.
func (o *ORAM) Amplification() float64 {
	accesses, moved, _ := o.Stats()
	if accesses == 0 {
		return 0
	}
	return float64(moved) / float64(accesses*uint64(o.cfg.BlockSize))
}
