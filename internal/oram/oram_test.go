package oram

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
	"shef/internal/shield"
)

func newORAM(t *testing.T, blocks, blockSize int) (*ORAM, *recorder) {
	t.Helper()
	dram := mem.NewDRAM(FootprintBytes(blocks, blockSize)+1<<16, perf.Default())
	rec := &recorder{inner: dram}
	o, err := New(rec, 0, blocks, blockSize, 42)
	if err != nil {
		t.Fatal(err)
	}
	rec.reset() // drop initialisation traffic
	return o, rec
}

// recorder logs every backend access for obliviousness checks.
type span struct {
	addr uint64
	n    int
}

type recorder struct {
	inner  *mem.DRAM
	reads  []span
	writes []span
}

func (r *recorder) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	r.reads = append(r.reads, span{addr, len(buf)})
	return r.inner.ReadBurst(addr, buf)
}

func (r *recorder) WriteBurst(addr uint64, data []byte) (uint64, error) {
	r.writes = append(r.writes, span{addr, len(data)})
	return r.inner.WriteBurst(addr, data)
}

func (r *recorder) reset() { r.reads, r.writes = nil, nil }

// buckets decomposes recorded spans into the bucket indices they cover,
// given the controller's stride.
func bucketsOf(spans []span, stride int, t *testing.T) []int {
	t.Helper()
	set := map[int]bool{}
	for _, s := range spans {
		if s.addr%uint64(stride) != 0 {
			t.Fatalf("span at %#x not bucket-aligned (stride %d)", s.addr, stride)
		}
		first := int(s.addr / uint64(stride))
		n := (s.n + stride - 1) / stride
		for j := 0; j < n; j++ {
			set[first+j] = true
		}
	}
	out := make([]int, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Ints(out)
	return out
}

func TestORAMMatchesFlatMemory(t *testing.T) {
	const blocks, bs = 64, 64
	o, _ := newORAM(t, blocks, bs)
	ref := make(map[int][]byte)
	rng := rand.New(rand.NewSource(7))
	for op := 0; op < 2000; op++ {
		b := rng.Intn(blocks)
		if rng.Intn(2) == 0 {
			data := make([]byte, bs)
			rng.Read(data)
			if err := o.Write(b, data); err != nil {
				t.Fatal(err)
			}
			ref[b] = data
		} else {
			got, err := o.Read(b)
			if err != nil {
				t.Fatal(err)
			}
			want := ref[b]
			if want == nil {
				want = make([]byte, bs)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("op %d: block %d mismatch", op, b)
			}
		}
	}
}

// TestORAMAccessPatternIsPathShaped: every access touches exactly one
// root-to-leaf path of backend traffic — levels+1 buckets, read and
// written in full, regardless of which logical block is requested. This is
// Path ORAM's obliviousness invariant at the structural level, and it must
// hold on the batched path too: runs merge transactions, but the bucket
// set they cover is still exactly the path.
func TestORAMAccessPatternIsPathShaped(t *testing.T) {
	const blocks, bs = 32, 64
	o, rec := newORAM(t, blocks, bs)
	want := o.levels + 1
	for i := 0; i < 200; i++ {
		rec.reset()
		if _, err := o.Read(i % blocks); err != nil {
			t.Fatal(err)
		}
		reads := bucketsOf(rec.reads, o.stride, t)
		writes := bucketsOf(rec.writes, o.stride, t)
		if len(reads) != want || len(writes) != want {
			t.Fatalf("access %d: %d buckets read / %d written, want %d each",
				i, len(reads), len(writes), want)
		}
		for j := range reads {
			if reads[j] != writes[j] {
				t.Fatalf("access %d: read/write bucket sets differ", i)
			}
		}
		// The buckets form one valid root-to-leaf path: ascending heap
		// indices chained by the parent relation.
		if reads[0] != 0 {
			t.Fatalf("access %d: path does not start at the root", i)
		}
		for j := 1; j < len(reads); j++ {
			if (reads[j]-1)/2 != reads[j-1] {
				t.Fatalf("access %d: bucket %d is not a child of %d", i, reads[j], reads[j-1])
			}
		}
	}
}

// TestORAMAddressDistributionUniform: repeated accesses to the SAME block
// touch leaves spread across the tree (the remap hides temporal locality).
func TestORAMAddressDistributionUniform(t *testing.T) {
	const blocks, bs = 64, 64
	o, rec := newORAM(t, blocks, bs)
	leafCount := map[int]int{}
	const trials = 600
	for i := 0; i < trials; i++ {
		rec.reset()
		if _, err := o.Read(5); err != nil { // always the same block
			t.Fatal(err)
		}
		bks := bucketsOf(rec.reads, o.stride, t)
		leafCount[bks[len(bks)-1]]++
	}
	leaves := 1 << o.levels
	if len(leafCount) < leaves/2 {
		t.Fatalf("only %d of %d leaves touched across %d same-block accesses", len(leafCount), leaves, trials)
	}
	for leaf, n := range leafCount {
		if n > trials/4 {
			t.Fatalf("leaf bucket %d hit %d/%d times: distribution far from uniform", leaf, n, trials)
		}
	}
}

// TestORAMStashBounded: the stash high-water mark stays small across a
// long random workload (Path ORAM's key empirical property with Z=4).
func TestORAMStashBounded(t *testing.T) {
	const blocks, bs = 256, 32
	o, _ := newORAM(t, blocks, bs)
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, bs)
	for op := 0; op < 5000; op++ {
		b := rng.Intn(blocks)
		if rng.Intn(2) == 0 {
			o.Write(b, data)
		} else {
			o.Read(b)
		}
	}
	_, _, maxStash := o.Stats()
	if maxStash > 60 {
		t.Fatalf("stash high-water mark %d too large for Z=4", maxStash)
	}
}

func TestORAMAmplification(t *testing.T) {
	const blocks, bs = 64, 64
	o, _ := newORAM(t, blocks, bs)
	for i := 0; i < 100; i++ {
		o.Read(i % blocks)
	}
	amp := o.Amplification()
	// 2 * (levels+1) buckets * Z slots of (header+block): tens of x.
	expected := float64(2 * (o.levels + 1) * BucketSlots * (slotHeaderBytes + bs) / bs)
	if amp < expected*0.9 || amp > expected*1.1 {
		t.Fatalf("amplification %.1fx, want ≈%.1fx", amp, expected)
	}
}

func TestORAMParameterValidation(t *testing.T) {
	dram := mem.NewDRAM(1<<20, perf.Default())
	if _, err := New(dram, 0, 1, 64, 1); err == nil {
		t.Fatal("single-block ORAM accepted")
	}
	if _, err := New(dram, 0, 8, 60, 1); err == nil {
		t.Fatal("unaligned block size accepted")
	}
	o, err := New(dram, 0, 8, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := o.Read(-1); err == nil {
		t.Fatal("negative block read accepted")
	}
	if _, err := o.Read(8); err == nil {
		t.Fatal("out-of-range block read accepted")
	}
	if err := o.Write(0, make([]byte, 32)); err == nil {
		t.Fatal("short write accepted")
	}
}

// TestORAMOverShield stacks ORAM on a provisioned Shield region: contents
// are encrypted+authenticated by the Shield, addresses hidden by ORAM —
// the full §5.2.2 composition.
func TestORAMOverShield(t *testing.T) {
	const blocks, bs = 32, 64
	foot := FootprintBytes(blocks, bs)
	regionSize := (foot + 511) / 512 * 512
	cfg := shield.Config{Regions: []shield.RegionConfig{{
		Name: "oram", Base: 0, Size: regionSize, ChunkSize: 512,
		AESEngines: 2, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		MAC: shield.HMAC, BufferBytes: 4096, Freshness: true,
	}}}
	dram := mem.NewDRAM(regionSize*2+1<<16, perf.Default())
	ocm := mem.NewOCM(1 << 30)
	priv, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	sh, err := shield.New(cfg, priv, dram, ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	dek := bytes.Repeat([]byte{6}, 32)
	lk, _ := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err := sh.ProvisionLoadKey(lk); err != nil {
		t.Fatal(err)
	}
	o, err := New(sh, 0, blocks, bs, 11)
	if err != nil {
		t.Fatal(err)
	}
	secret := bytes.Repeat([]byte("ORAM+SHIELD!"), bs/12+1)[:bs]
	if err := o.Write(3, secret); err != nil {
		t.Fatal(err)
	}
	got, err := o.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("round trip through ORAM-over-Shield failed")
	}
	// Contents are invisible off-chip even though ORAM wrote them.
	sh.Flush()
	dump, _ := dram.RawRead(0, int(regionSize))
	if bytes.Contains(dump, []byte("ORAM+SHIELD!")) {
		t.Fatal("plaintext leaked beneath the ORAM layer")
	}
}
