// Package perf holds the cycle-accounting model shared by the simulated
// FPGA substrate and the Shield.
//
// All simulated time is measured in Shield-clock cycles. The default
// parameters model an AWS F1 deployment: a 250 MHz user clock and DDR4
// device memory behind the Shell's AXI4 interface. Absolute times are not
// expected to match the authors' testbed; the calibration tests assert that
// the *shape* of the paper's results (who wins, by what factor, where the
// crossovers fall) is preserved. See DESIGN.md §4.
package perf

// Params are the tunable constants of the performance model.
type Params struct {
	// ClockHz is the Shield/accelerator clock frequency.
	ClockHz float64

	// DRAMBytesPerCycle is the effective off-chip bandwidth available to the
	// accelerator's AXI4 interface, in bytes per Shield cycle, across all
	// engine sets. 16 B/cycle at 250 MHz is 4 GB/s of sustained user
	// bandwidth, in line with a single DDR4 channel behind the F1 Shell.
	DRAMBytesPerCycle float64

	// DRAMRequestCycles is the fixed latency charged per AXI burst request
	// (row activation, Shell arbitration, and the return trip).
	DRAMRequestCycles uint64

	// OverlapAlpha models the imperfect pipelining between an engine set's
	// DRAM stage and crypto stage: chunk time = max(Td, Tc) + alpha*min(Td,
	// Tc). The Shield keeps a single outstanding burst per engine set and
	// releases data only after the MAC check, so the stages overlap only
	// partially. alpha = 0.5 is fitted so the SDP sweep lands on the
	// paper's Table 2 (298/297/59/20/20% overheads).
	OverlapAlpha float64

	// ChunkIssueCycles is a fixed per-chunk cost in the engine set: burst
	// decode, IV/counter fetch, buffer-line management, and pipeline
	// drain. It sets the overhead floor the SDP sweep saturates at
	// (paper Table 2's 20% plateau).
	ChunkIssueCycles uint64

	// InitCycles is the fixed per-invocation cost of host signalling, DMA
	// setup, and (for shielded runs) Load Key decryption and IV setup. It
	// dominates Figure 5's small-input regime.
	InitCycles uint64

	// ShieldInitCycles is added on top of InitCycles for shielded
	// executions (Load Key unwrap, key schedule, counter reset).
	ShieldInitCycles uint64

	// WritebackBatchChunks is the write-side pipeline window: how many
	// contiguous dirty chunks a flush or bulk eviction seals and stores
	// per batched AXI transaction. Windows of two or more chunks are
	// charged with the overlapped StreamWindowTime accounting; a value of
	// 1 disables batching, so every write-back pays the chunked
	// ChunkTime — which is also what singleton runs always pay.
	WritebackBatchChunks int

	// PrefetchMinMisses is the sequential-stride detector's trigger: after
	// this many consecutive ascending chunk misses in a region with
	// SeqPrefetch enabled, the engine set services the run through stream
	// windows transparently. Zero disables the prefetcher everywhere.
	PrefetchMinMisses int

	// PrefetchWindowChunks is how many chunks one prefetch window moves
	// (capped by the engine set's staging window and buffer capacity).
	PrefetchWindowChunks int

	// RegionLookupEntries is the slot count of the Shield's region-lookup
	// cache (the burst decoder's TLB): direct-mapped entries resolving an
	// accelerator address to its protection zone in O(1) regardless of
	// how many tenant zones exist. Zero selects the default geometry.
	RegionLookupEntries int

	// RegionLookupPageBytes is the coverage granule of one lookup-cache
	// entry. Addresses are hashed to a slot by page number, so zones
	// smaller than a page share slots and streaming access within a zone
	// reuses one entry. Must be a power of two; zero selects the default.
	RegionLookupPageBytes int

	// RegionLookupHitCycles is the burst-decode cost of resolving an
	// address through a valid lookup-cache entry (a CAM/BRAM probe,
	// pipelined with decode).
	RegionLookupHitCycles uint64

	// RegionLookupMissCycles is the cost of a lookup-cache miss: walking
	// the region table (a binary search over base-sorted zone descriptors
	// held in on-chip RAM) and refilling the entry.
	RegionLookupMissCycles uint64

	// ORAMBatchBuckets caps how many tree buckets one batched ORAM path
	// transaction carries (the oram controller's analogue of
	// WritebackBatchChunks): contiguous runs of path buckets longer than
	// this are split into separate ReadAuto/WriteAuto transfers.
	ORAMBatchBuckets int

	// CryptoEngine picks the functional crypto implementation the Shield's
	// real data path runs on: "auto" (or empty — runtime detection plus a
	// first-use micro-benchmark), "scalar" (the from-scratch reference
	// engines), or "hardware" (the stdlib AES-NI/SHA-NI backed engines).
	// It changes real MB/s only: ciphertext, tags, and simulated cycles
	// are bit-identical either way (the cycle model always charges the
	// paper's FPGA engine costs). Tests pin it to cover both paths.
	CryptoEngine string
}

// Default returns the calibrated F1 parameter set.
func Default() Params {
	return Params{
		ClockHz:           250e6,
		DRAMBytesPerCycle: 16,
		DRAMRequestCycles: 20,
		OverlapAlpha:      0.35,
		ChunkIssueCycles:  20,
		InitCycles:        220_000, // ~0.9 ms of host/DMA signalling
		ShieldInitCycles:  40_000,

		WritebackBatchChunks: 16,
		PrefetchMinMisses:    4,
		PrefetchWindowChunks: 16,
		ORAMBatchBuckets:     8,

		RegionLookupEntries:    1024,
		RegionLookupPageBytes:  4096,
		RegionLookupHitCycles:  1,
		RegionLookupMissCycles: 40,
	}
}

// RegionLookupCycles is the simulated burst-decode cost of region
// resolution: hits probe the lookup cache, misses walk the region table.
func (p Params) RegionLookupCycles(hits, misses uint64) uint64 {
	return hits*p.RegionLookupHitCycles + misses*p.RegionLookupMissCycles
}

// DRAMCycles returns the cycle cost of moving n bytes in a single burst,
// including the fixed request latency.
func (p Params) DRAMCycles(n int) uint64 {
	if n <= 0 {
		return 0
	}
	return p.DRAMRequestCycles + uint64(float64(n)/p.DRAMBytesPerCycle+0.999999)
}

// DRAMCyclesShared is the burst cost seen by one of `share` engine sets
// contending for the same channel: each set sees 1/share of the channel
// bandwidth (the request latency is not divided; request queues overlap).
func (p Params) DRAMCyclesShared(n, share int) uint64 {
	if n <= 0 {
		return 0
	}
	if share < 1 {
		share = 1
	}
	return p.DRAMRequestCycles + uint64(float64(n)*float64(share)/p.DRAMBytesPerCycle+0.999999)
}

// ChunkTime combines an engine set's DRAM-stage and crypto-stage times for
// one chunk under the partial-overlap model.
func (p Params) ChunkTime(dram, crypto uint64) uint64 {
	hi, lo := dram, crypto
	if crypto > dram {
		hi, lo = crypto, dram
	}
	return hi + uint64(p.OverlapAlpha*float64(lo))
}

// StreamWindowTime is the steady-state busy time of one window of a
// streamed burst (the paper's §5.2.2 pipelining claim made explicit):
// with windows in flight back to back, the DRAM fetch of window k+1, the
// engine pool's work, and the serial MAC core all overlap, so a window is
// paced by its slowest stage rather than their sum. Contrast ChunkTime,
// where the Shield holds a single outstanding burst and releases data only
// after the MAC check, leaving only partial (OverlapAlpha) overlap.
func (p Params) StreamWindowTime(stages ...uint64) uint64 {
	var hi uint64
	for _, s := range stages {
		if s > hi {
			hi = s
		}
	}
	return hi
}

// StreamFillDrain is the one-time cost of priming and draining the stream
// pipeline: before the first window is resident the stages run
// back-to-back, so a stream is charged sum(stages) once and
// max(stages) for every window thereafter — the "max(dram, crypto) +
// fill/drain" composition.
func (p Params) StreamFillDrain(stages ...uint64) uint64 {
	var hi, sum uint64
	for _, s := range stages {
		if s > hi {
			hi = s
		}
		sum += s
	}
	return sum - hi
}

// Seconds converts cycles to wall-clock seconds at the configured clock.
func (p Params) Seconds(cycles uint64) float64 {
	return float64(cycles) / p.ClockHz
}

// Clock is a monotonically advancing cycle counter used by simulated
// components to account elapsed time.
type Clock struct {
	cycles uint64
}

// Advance adds n cycles.
func (c *Clock) Advance(n uint64) { c.cycles += n }

// Cycles reports the elapsed cycle count.
func (c *Clock) Cycles() uint64 { return c.cycles }

// Reset zeroes the clock.
func (c *Clock) Reset() { c.cycles = 0 }
