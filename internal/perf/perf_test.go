package perf

import (
	"testing"
	"testing/quick"
)

func TestDRAMCycles(t *testing.T) {
	p := Default()
	if got := p.DRAMCycles(0); got != 0 {
		t.Errorf("DRAMCycles(0) = %d, want 0", got)
	}
	// 16 bytes at 16 B/cycle = 1 cycle + request overhead.
	if got := p.DRAMCycles(16); got != p.DRAMRequestCycles+1 {
		t.Errorf("DRAMCycles(16) = %d, want %d", got, p.DRAMRequestCycles+1)
	}
	// 4KB burst: 256 data cycles + overhead.
	if got := p.DRAMCycles(4096); got != p.DRAMRequestCycles+256 {
		t.Errorf("DRAMCycles(4096) = %d", got)
	}
}

func TestDRAMCyclesMonotone(t *testing.T) {
	p := Default()
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.DRAMCycles(x) <= p.DRAMCycles(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChunkTime(t *testing.T) {
	p := Default() // alpha = 0.35
	if got := p.ChunkTime(100, 100); got != 135 {
		t.Errorf("ChunkTime(100,100) = %d, want 135", got)
	}
	if got := p.ChunkTime(100, 0); got != 100 {
		t.Errorf("ChunkTime(100,0) = %d, want 100", got)
	}
	if p.ChunkTime(10, 400) != p.ChunkTime(400, 10) {
		t.Error("ChunkTime not symmetric")
	}
	// Bounded by max and sum of the stages.
	f := func(a, b uint32) bool {
		d, c := uint64(a), uint64(b)
		ct := p.ChunkTime(d, c)
		hi := d
		if c > hi {
			hi = c
		}
		return ct >= hi && ct <= d+c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeconds(t *testing.T) {
	p := Default()
	if got := p.Seconds(uint64(p.ClockHz)); got != 1.0 {
		t.Errorf("Seconds(clockHz) = %v, want 1.0", got)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Advance(5)
	if c.Cycles() != 15 {
		t.Errorf("clock = %d, want 15", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 {
		t.Error("reset failed")
	}
}

func TestStreamWindowTimePacedBySlowestStage(t *testing.T) {
	p := Default()
	if got := p.StreamWindowTime(100, 700, 300, 50); got != 700 {
		t.Errorf("StreamWindowTime = %d, want 700 (slowest stage)", got)
	}
	if got := p.StreamWindowTime(); got != 0 {
		t.Errorf("empty window = %d, want 0", got)
	}
}

func TestStreamFillDrainIsNonBottleneckSum(t *testing.T) {
	p := Default()
	if got := p.StreamFillDrain(100, 700, 300, 50); got != 450 {
		t.Errorf("StreamFillDrain = %d, want 450 (sum minus bottleneck)", got)
	}
	// A uniform stream of n windows composes to n*max + fill/drain, always
	// at most the fully serial sum and at least the bottleneck alone.
	n := uint64(10)
	a, b := uint64(600), uint64(400)
	total := n*p.StreamWindowTime(a, b) + p.StreamFillDrain(a, b)
	if total >= n*(a+b) {
		t.Errorf("pipelined total %d not better than serial %d", total, n*(a+b))
	}
	if total < n*a {
		t.Errorf("pipelined total %d beats the bottleneck stage %d", total, n*a)
	}
}
