package profiling

// The merged on/off-CPU attribution table: where the process spent its
// CPU time and where its goroutines spent their time blocked, in one
// report. The idea follows the blocked-samples observation that on-CPU
// profiles and off-CPU (block/mutex) profiles answer different halves of
// "why is throughput flat" — a serving tier can look idle to a CPU
// profile while every worker queues on one lock.

import (
	"fmt"
	"sort"
	"strings"
)

// AttrRow is one function's share of a time dimension.
type AttrRow struct {
	Function string
	Nanos    int64
	Percent  float64
}

// LabelRow is one pprof label's share of CPU time — the per-shard /
// per-session / per-engine-set breakdown.
type LabelRow struct {
	Label   string // "key=value"
	Nanos   int64
	Percent float64
}

// Table is the merged attribution report.
type Table struct {
	TopN int
	// OnCPU ranks functions by CPU self time; OffCPU by blocked time
	// (block profile delay + mutex profile delay).
	OnCPU  []AttrRow
	OffCPU []AttrRow
	// CPUByLabel breaks total CPU time down by label pair. Only the CPU
	// profile carries labels (the runtime does not label block/mutex
	// samples), so the off-CPU side has no per-label view.
	CPUByLabel []LabelRow
	// CPUTotal and OffTotal are the dimensions' grand totals in
	// nanoseconds (off-CPU totals are sampled; see Config.BlockRate).
	CPUTotal int64
	OffTotal int64
}

// selfFrame picks the frame a sample's time is attributed to. For off-CPU
// samples the literal leaf is always the runtime's parking internals
// (sync.(*Mutex).Lock, runtime.chanrecv, ...), so attribution walks up to
// the first frame outside the runtime/sync machinery — the function that
// decided to block — and falls back to the leaf when the whole stack is
// runtime-internal.
func selfFrame(stack []string, skipRuntime bool) string {
	if len(stack) == 0 {
		return "(unknown)"
	}
	if !skipRuntime {
		return stack[0]
	}
	for _, fr := range stack {
		if !strings.HasPrefix(fr, "runtime.") && !strings.HasPrefix(fr, "sync.") &&
			!strings.HasPrefix(fr, "runtime/") && !strings.HasPrefix(fr, "internal/") {
			return fr
		}
	}
	// A stack that never leaves the runtime is scheduler/profiler
	// housekeeping (trace readers, GC workers); tag it so readers can
	// discount it against workload blocking.
	return "(runtime) " + stack[0]
}

// accumulate sums a profile's nanosecond dimension per self frame.
func accumulate(into map[string]int64, p *Profile, skipRuntime bool) int64 {
	idx := p.ValueIndex("nanoseconds")
	if idx < 0 {
		return 0
	}
	var total int64
	for _, s := range p.Samples {
		if idx >= len(s.Values) {
			continue
		}
		v := s.Values[idx]
		into[selfFrame(s.Stack, skipRuntime)] += v
		total += v
	}
	return total
}

func topRows(m map[string]int64, total int64, n int) []AttrRow {
	rows := make([]AttrRow, 0, len(m))
	for fn, ns := range m {
		rows = append(rows, AttrRow{Function: fn, Nanos: ns})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Nanos != rows[j].Nanos {
			return rows[i].Nanos > rows[j].Nanos
		}
		return rows[i].Function < rows[j].Function
	})
	if len(rows) > n {
		rows = rows[:n]
	}
	for i := range rows {
		if total > 0 {
			rows[i].Percent = 100 * float64(rows[i].Nanos) / float64(total)
		}
	}
	return rows
}

// Attribution builds the merged table from a CPU profile and the two
// off-CPU profiles. Any profile may be empty (e.g. no contention events
// sampled); nil profiles are treated as empty.
func Attribution(cpu, block, mutex *Profile, topN int) *Table {
	if topN <= 0 {
		topN = 10
	}
	t := &Table{TopN: topN}

	onCPU := map[string]int64{}
	if cpu != nil {
		t.CPUTotal = accumulate(onCPU, cpu, false)
	}
	t.OnCPU = topRows(onCPU, t.CPUTotal, topN)

	offCPU := map[string]int64{}
	for _, p := range []*Profile{block, mutex} {
		if p != nil {
			t.OffTotal += accumulate(offCPU, p, true)
		}
	}
	t.OffCPU = topRows(offCPU, t.OffTotal, topN)

	if cpu != nil {
		if idx := cpu.ValueIndex("nanoseconds"); idx >= 0 {
			byLabel := map[string]int64{}
			for _, s := range cpu.Samples {
				if idx >= len(s.Values) {
					continue
				}
				for k, v := range s.Labels {
					byLabel[k+"="+v] += s.Values[idx]
				}
			}
			rows := make([]LabelRow, 0, len(byLabel))
			for l, ns := range byLabel {
				pct := 0.0
				if t.CPUTotal > 0 {
					pct = 100 * float64(ns) / float64(t.CPUTotal)
				}
				rows = append(rows, LabelRow{Label: l, Nanos: ns, Percent: pct})
			}
			sort.Slice(rows, func(i, j int) bool {
				if rows[i].Nanos != rows[j].Nanos {
					return rows[i].Nanos > rows[j].Nanos
				}
				return rows[i].Label < rows[j].Label
			})
			t.CPUByLabel = rows
		}
	}
	return t
}

func fmtMs(ns int64) string { return fmt.Sprintf("%8.1fms", float64(ns)/1e6) }

// String renders the table for terminals and CI logs.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== on-CPU: top %d functions by CPU self time (total %s) ==\n", t.TopN, strings.TrimSpace(fmtMs(t.CPUTotal)))
	for _, r := range t.OnCPU {
		fmt.Fprintf(&b, "  %s %5.1f%%  %s\n", fmtMs(r.Nanos), r.Percent, r.Function)
	}
	if len(t.OnCPU) == 0 {
		b.WriteString("  (no CPU samples)\n")
	}
	fmt.Fprintf(&b, "== off-CPU: top %d functions by blocked time (block+mutex, sampled total %s) ==\n",
		t.TopN, strings.TrimSpace(fmtMs(t.OffTotal)))
	for _, r := range t.OffCPU {
		fmt.Fprintf(&b, "  %s %5.1f%%  %s\n", fmtMs(r.Nanos), r.Percent, r.Function)
	}
	if len(t.OffCPU) == 0 {
		b.WriteString("  (no blocked samples — nothing waited long enough to be sampled)\n")
	}
	if len(t.CPUByLabel) > 0 {
		b.WriteString("== CPU time by label ==\n")
		for _, r := range t.CPUByLabel {
			fmt.Fprintf(&b, "  %s %5.1f%%  %s\n", fmtMs(r.Nanos), r.Percent, r.Label)
		}
	}
	return b.String()
}
