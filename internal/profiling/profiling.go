// Package profiling is the repo's on/off-CPU attribution harness: it
// wraps any benchmark or serving run with CPU, mutex, and block profiles
// plus optional runtime/trace capture, labels the hot paths (shard,
// session, engine set) through pprof.Do, and renders a merged attribution
// table — top-N functions by CPU time and by blocked time, with the CPU
// column broken down per label.
//
// The package is also the instrumentation switchboard: the serving-path
// packages (sdp, hostapp, shield, attest) call Do/Region on their hot
// paths, and those calls compile down to a single atomic load when no
// harness is active, so the zero-alloc steady-state loops stay zero-alloc
// and label plumbing costs nothing in production.
//
// Operationally the harness surfaces in two places: `benchtab -profile`
// runs it over the cluster sweeps and prints the table, and
// `shefd -debug addr` serves the live net/http/pprof endpoints the same
// profiles come from.
package profiling

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"sync/atomic"
)

// enabled gates every instrumentation site. It is package-global —
// profiling a process, not an object — and flipped only by Start/Stop.
var enabled atomic.Bool

// Enabled reports whether a harness is active. Instrumented hot paths
// check it before building labels so the disabled cost is one atomic
// load and a predicted branch.
//
//shef:hotpath
func Enabled() bool { return enabled.Load() }

// Do runs f under the given pprof label pairs (key, value, key, value...)
// when a harness is active, attributing f's CPU samples to the labels;
// with no harness it calls f directly. The label set is built only on the
// enabled path, so callers may pass freshly formatted values without
// imposing allocations on production traffic.
func Do(ctx context.Context, f func(), kv ...string) {
	if !enabled.Load() {
		f()
		return
	}
	pprof.Do(ctx, pprof.Labels(kv...), func(context.Context) { f() })
}

// Region runs f inside a runtime/trace region when tracing is active,
// so the execution trace shows the serving phases by name. Without an
// active trace it calls f directly.
func Region(ctx context.Context, name string, f func()) {
	if !trace.IsEnabled() {
		f()
		return
	}
	trace.WithRegion(ctx, name, f)
}

// Config shapes a harness run.
type Config struct {
	// Dir receives the profile files (created if missing).
	Dir string
	// MutexFraction samples 1/MutexFraction of mutex contention events
	// (default 5; runtime.SetMutexProfileFraction semantics).
	MutexFraction int
	// BlockRate samples blocking events lasting at least BlockRate
	// nanoseconds (default 10µs; runtime.SetBlockProfileRate semantics —
	// shorter events are sampled proportionally).
	BlockRate int
	// Trace additionally captures a runtime/trace to trace.out.
	Trace bool
	// TopN bounds each attribution table section (default 10).
	TopN int
}

func (c *Config) fill() {
	if c.MutexFraction == 0 {
		c.MutexFraction = 5
	}
	if c.BlockRate == 0 {
		c.BlockRate = 10_000
	}
	if c.TopN == 0 {
		c.TopN = 10
	}
}

// Harness is one active profiling window. Exactly one may run at a time
// (CPU profiling is process-global).
type Harness struct {
	cfg       Config
	cpuF      *os.File
	traceF    *os.File
	prevMutex int
	stopped   bool
}

// Start opens a profiling window: mutex and block sampling on, CPU
// profile streaming to Dir/cpu.pprof, optional trace to Dir/trace.out,
// and every Do site in the process now labelling its samples.
func Start(cfg Config) (*Harness, error) {
	cfg.fill()
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	h := &Harness{cfg: cfg}
	h.prevMutex = runtime.SetMutexProfileFraction(cfg.MutexFraction)
	runtime.SetBlockProfileRate(cfg.BlockRate)
	var err error
	if h.cpuF, err = os.Create(h.CPUPath()); err != nil {
		h.restoreRates()
		return nil, err
	}
	if err := pprof.StartCPUProfile(h.cpuF); err != nil {
		h.cpuF.Close()
		h.restoreRates()
		return nil, fmt.Errorf("profiling: %w (another profile running?)", err)
	}
	if cfg.Trace {
		if h.traceF, err = os.Create(h.TracePath()); err == nil {
			if err = trace.Start(h.traceF); err != nil {
				h.traceF.Close()
				h.traceF = nil
			}
		}
		if err != nil {
			pprof.StopCPUProfile()
			h.cpuF.Close()
			h.restoreRates()
			return nil, err
		}
	}
	enabled.Store(true)
	return h, nil
}

// CPUPath, MutexPath, BlockPath, and TracePath name the harness's output
// files inside Config.Dir.
func (h *Harness) CPUPath() string   { return filepath.Join(h.cfg.Dir, "cpu.pprof") }
func (h *Harness) MutexPath() string { return filepath.Join(h.cfg.Dir, "mutex.pprof") }
func (h *Harness) BlockPath() string { return filepath.Join(h.cfg.Dir, "block.pprof") }
func (h *Harness) TracePath() string { return filepath.Join(h.cfg.Dir, "trace.out") }

func (h *Harness) restoreRates() {
	runtime.SetMutexProfileFraction(h.prevMutex)
	runtime.SetBlockProfileRate(0)
}

// Stop closes the window: CPU profile finalised, mutex/block profiles
// snapshotted to their files, trace stopped, sampling rates restored,
// labels off. Safe to call once; the profile files survive for Table.
func (h *Harness) Stop() error {
	if h.stopped {
		return nil
	}
	h.stopped = true
	enabled.Store(false)
	pprof.StopCPUProfile()
	err := h.cpuF.Close()
	if h.traceF != nil {
		trace.Stop()
		if e := h.traceF.Close(); err == nil {
			err = e
		}
	}
	// The mutex/block snapshots are cumulative since Start set the rates
	// (they were off before), so the files cover exactly this window.
	for _, p := range []struct{ name, path string }{
		{"mutex", h.MutexPath()},
		{"block", h.BlockPath()},
	} {
		f, e := os.Create(p.path)
		if e == nil {
			e = pprof.Lookup(p.name).WriteTo(f, 0)
			if ce := f.Close(); e == nil {
				e = ce
			}
		}
		if err == nil {
			err = e
		}
	}
	h.restoreRates()
	return err
}

// Table parses the window's profile files and builds the merged on/off-CPU
// attribution table. Call after Stop.
func (h *Harness) Table() (*Table, error) {
	if !h.stopped {
		return nil, fmt.Errorf("profiling: Table before Stop")
	}
	load := func(path string) (*Profile, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return ParseProfile(data)
	}
	cpu, err := load(h.CPUPath())
	if err != nil {
		return nil, fmt.Errorf("profiling: cpu profile: %w", err)
	}
	block, err := load(h.BlockPath())
	if err != nil {
		return nil, fmt.Errorf("profiling: block profile: %w", err)
	}
	mutex, err := load(h.MutexPath())
	if err != nil {
		return nil, fmt.Errorf("profiling: mutex profile: %w", err)
	}
	return Attribution(cpu, block, mutex, h.cfg.TopN), nil
}

// Run wraps a workload in a complete harness window and returns its
// attribution table — the one-call form benchmarks use.
func Run(cfg Config, workload func() error) (*Table, error) {
	h, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	werr := workload()
	if err := h.Stop(); err != nil && werr == nil {
		werr = err
	}
	if werr != nil {
		return nil, werr
	}
	return h.Table()
}
