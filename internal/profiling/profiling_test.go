package profiling

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// burn spins real CPU work so the 100 Hz profiler collects samples; the
// returned value defeats dead-code elimination.
func burn(d time.Duration) uint64 {
	var acc uint64 = 0x9e3779b97f4a7c15
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		for i := 0; i < 1<<14; i++ {
			acc ^= acc<<13 ^ acc>>7 ^ uint64(i)
			acc *= 0x2545f4914f6cdd1d
		}
	}
	return acc
}

// TestHarnessEndToEnd drives the full loop: start, labelled CPU work,
// mutex contention, stop, parse, attribute.
func TestHarnessEndToEnd(t *testing.T) {
	if Enabled() {
		t.Fatal("profiling enabled before any harness started")
	}
	dir := t.TempDir()
	h, err := Start(Config{Dir: dir, MutexFraction: 1, BlockRate: 1, Trace: true, TopN: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !Enabled() {
		t.Fatal("harness active but Enabled() == false")
	}

	var sink uint64
	Do(context.Background(), func() {
		Region(context.Background(), "test.burn", func() {
			sink = burn(400 * time.Millisecond)
		})
	}, "test-label", "hot")

	// Manufactured contention: hold a mutex while others queue on it.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				mu.Lock()
				time.Sleep(time.Millisecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if err := h.Stop(); err != nil {
		t.Fatal(err)
	}
	if Enabled() {
		t.Fatal("Enabled() still true after Stop")
	}
	for _, p := range []string{h.CPUPath(), h.MutexPath(), h.BlockPath(), h.TracePath()} {
		if fi, err := os.Stat(p); err != nil || fi.Size() == 0 {
			t.Fatalf("harness output %s missing or empty (err=%v)", filepath.Base(p), err)
		}
	}

	tbl, err := h.Table()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.OnCPU) == 0 || tbl.CPUTotal == 0 {
		t.Fatalf("no CPU attribution despite %v of spinning (sink=%d)", 400*time.Millisecond, sink)
	}
	if len(tbl.OffCPU) == 0 || tbl.OffTotal == 0 {
		t.Fatal("no off-CPU attribution despite manufactured mutex contention")
	}
	var labelled bool
	for _, r := range tbl.CPUByLabel {
		if r.Label == "test-label=hot" {
			labelled = true
			if r.Nanos == 0 {
				t.Fatal("label present but credited no CPU time")
			}
		}
	}
	if !labelled {
		t.Fatalf("pprof label test-label=hot missing from table:\n%s", tbl)
	}
	// The rendered table is what benchtab -profile prints; smoke its shape.
	s := tbl.String()
	for _, want := range []string{"on-CPU", "off-CPU", "CPU time by label", "test-label=hot"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
}

// TestDoDisabledIsDirect checks the production fast path: with no harness,
// Do must run f synchronously and attach no labels.
func TestDoDisabledIsDirect(t *testing.T) {
	ran := false
	Do(context.Background(), func() { ran = true }, "k", "v")
	if !ran {
		t.Fatal("Do did not run f")
	}
	// Region with no active trace likewise passes straight through.
	ran = false
	Region(context.Background(), "r", func() { ran = true })
	if !ran {
		t.Fatal("Region did not run f")
	}
}

func mkProfile(samples ...*Sample) *Profile {
	return &Profile{
		SampleTypes: []ValueType{{"samples", "count"}, {"cpu", "nanoseconds"}},
		Samples:     samples,
	}
}

// TestMerge sums matching (stack, labels) samples and rejects shape
// mismatches.
func TestMerge(t *testing.T) {
	a := mkProfile(
		&Sample{Stack: []string{"f", "main"}, Values: []int64{1, 100}},
		&Sample{Stack: []string{"g", "main"}, Values: []int64{1, 50}, Labels: map[string]string{"op": "put"}},
	)
	b := mkProfile(
		&Sample{Stack: []string{"f", "main"}, Values: []int64{2, 300}},
		&Sample{Stack: []string{"g", "main"}, Values: []int64{1, 70}}, // no label: distinct sample
	)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Samples) != 3 {
		t.Fatalf("merged into %d samples, want 3", len(m.Samples))
	}
	byStack := map[string]int64{}
	for _, s := range m.Samples {
		byStack[stackKey(s.Stack)+s.labelKey()] += s.Values[1]
	}
	if got := byStack[stackKey([]string{"f", "main"})]; got != 400 {
		t.Fatalf("f summed to %d, want 400", got)
	}
	if got := byStack[stackKey([]string{"g", "main"})+"op=put;"]; got != 50 {
		t.Fatalf("labelled g = %d, want 50", got)
	}

	bad := &Profile{SampleTypes: []ValueType{{"cpu", "nanoseconds"}}}
	if _, err := Merge(a, bad); err == nil {
		t.Fatal("merge of mismatched sample types did not fail")
	}
}

// TestAttribution checks self-frame selection: CPU attributes to the
// leaf, off-CPU walks past the runtime's parking frames.
func TestAttribution(t *testing.T) {
	cpu := mkProfile(
		&Sample{Stack: []string{"crypto.work", "serve", "main"}, Values: []int64{3, 300},
			Labels: map[string]string{"sdp-shard": "3"}},
		&Sample{Stack: []string{"other.work", "main"}, Values: []int64{1, 100}},
	)
	block := &Profile{
		SampleTypes: []ValueType{{"contentions", "count"}, {"delay", "nanoseconds"}},
		Samples: []*Sample{
			{Stack: []string{"sync.(*Mutex).Lock", "sdp.(*Node).Put", "main"}, Values: []int64{5, 500}},
		},
	}
	tbl := Attribution(cpu, block, nil, 1)
	if tbl.OnCPU[0].Function != "crypto.work" || tbl.OnCPU[0].Nanos != 300 {
		t.Fatalf("on-CPU leader = %+v, want crypto.work/300", tbl.OnCPU[0])
	}
	if len(tbl.OnCPU) != 1 {
		t.Fatalf("topN=1 not applied: %d rows", len(tbl.OnCPU))
	}
	if tbl.OffCPU[0].Function != "sdp.(*Node).Put" {
		t.Fatalf("off-CPU attribution did not skip the runtime frame: %+v", tbl.OffCPU[0])
	}
	if tbl.CPUByLabel[0].Label != "sdp-shard=3" || tbl.CPUByLabel[0].Percent != 75 {
		t.Fatalf("label row = %+v, want sdp-shard=3 at 75%%", tbl.CPUByLabel[0])
	}
}

// TestParseProfileRejectsGarbage keeps the hand-rolled decoder honest on
// malformed input.
func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := ParseProfile([]byte{0x0a}); err == nil {
		t.Fatal("truncated field accepted")
	}
	// Valid empty message parses to an empty profile.
	p, err := ParseProfile(nil)
	if err != nil || len(p.Samples) != 0 {
		t.Fatalf("empty profile: %v %+v", err, p)
	}
}
