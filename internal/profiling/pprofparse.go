package profiling

// A minimal decoder for the pprof profile.proto wire format — just enough
// of the protobuf encoding to read the profiles the Go runtime writes
// (CPU, mutex, block), resolve stacks to function names, and carry sample
// labels. Hand-rolled because the repo takes no dependencies: the profile
// format is a stable protobuf (github.com/google/pprof/proto/profile.proto)
// and the runtime always writes it gzip-compressed.

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// ValueType is one sample dimension: ("cpu", "nanoseconds"),
// ("contentions", "count"), ...
type ValueType struct {
	Type string
	Unit string
}

// Sample is one resolved profile sample: a leaf-first stack of function
// names, one value per Profile.SampleTypes entry, and the pprof labels
// attached by pprof.Do (string labels; numeric labels are formatted).
type Sample struct {
	Stack  []string
	Values []int64
	Labels map[string]string
}

// Profile is a resolved pprof document.
type Profile struct {
	SampleTypes   []ValueType
	PeriodType    ValueType
	Period        int64
	DurationNanos int64
	Samples       []*Sample
}

// ValueIndex finds the sample dimension with the given unit (the
// attribution table wants "nanoseconds"); -1 when absent.
func (p *Profile) ValueIndex(unit string) int {
	for i, st := range p.SampleTypes {
		if st.Unit == unit {
			return i
		}
	}
	return -1
}

// --- protobuf wire primitives -----------------------------------------

func readVarint(b []byte) (uint64, int, error) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1, nil
		}
	}
	return 0, 0, fmt.Errorf("profiling: truncated varint")
}

// zigzag is not used by profile.proto (all ints are plain varints), so
// int64 fields reinterpret the varint bits directly.
func asInt64(v uint64) int64 { return int64(v) }

// field is one decoded protobuf field: varint value for wire type 0/1/5,
// payload bytes for wire type 2.
type field struct {
	num     int
	varint  uint64
	payload []byte
}

// walkFields iterates a protobuf message's fields.
func walkFields(b []byte, fn func(f field) error) error {
	for len(b) > 0 {
		tag, n, err := readVarint(b)
		if err != nil {
			return err
		}
		b = b[n:]
		f := field{num: int(tag >> 3)}
		switch tag & 7 {
		case 0: // varint
			f.varint, n, err = readVarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
		case 1: // fixed64
			if len(b) < 8 {
				return fmt.Errorf("profiling: truncated fixed64")
			}
			for i := 7; i >= 0; i-- {
				f.varint = f.varint<<8 | uint64(b[i])
			}
			b = b[8:]
		case 2: // length-delimited
			l, n, err := readVarint(b)
			if err != nil {
				return err
			}
			b = b[n:]
			if uint64(len(b)) < l {
				return fmt.Errorf("profiling: truncated field payload")
			}
			f.payload = b[:l]
			b = b[l:]
		case 5: // fixed32
			if len(b) < 4 {
				return fmt.Errorf("profiling: truncated fixed32")
			}
			for i := 3; i >= 0; i-- {
				f.varint = f.varint<<8 | uint64(b[i])
			}
			b = b[4:]
		default:
			return fmt.Errorf("profiling: unsupported wire type %d", tag&7)
		}
		if err := fn(f); err != nil {
			return err
		}
	}
	return nil
}

// packedOrSingle appends a repeated varint field's values: wire type 2
// carries a packed run, wire type 0 a single value.
func packedOrSingle(f field, out []uint64) ([]uint64, error) {
	if f.payload == nil {
		return append(out, f.varint), nil
	}
	b := f.payload
	for len(b) > 0 {
		v, n, err := readVarint(b)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
		b = b[n:]
	}
	return out, nil
}

// --- profile.proto field numbers ---------------------------------------

// Raw intermediate structures, resolved against the string table after
// the single decoding pass.
type rawSample struct {
	locIDs []uint64
	values []int64
	labels map[string]string // resolved inline (needs strtab, patched later)
	labs   []rawLabel
}

type rawLabel struct {
	key, str int64 // string table indexes
	num      int64
	hasNum   bool
}

type rawLocation struct {
	id      uint64
	address uint64
	funcIDs []uint64 // innermost first (Line[0] is the leaf inline frame)
}

// ParseProfile decodes a (possibly gzipped) pprof profile document.
func ParseProfile(data []byte) (*Profile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		if data, err = io.ReadAll(zr); err != nil {
			return nil, err
		}
		if err := zr.Close(); err != nil {
			return nil, err
		}
	}

	var (
		strtab    []string
		valueType []struct{ typ, unit int64 }
		period    struct{ typ, unit int64 }
		prof      = &Profile{}
		samples   []rawSample
		locs      = map[uint64]rawLocation{}
		funcs     = map[uint64]int64{} // id -> name strtab index
	)

	parseValueType := func(b []byte) (vt struct{ typ, unit int64 }, err error) {
		err = walkFields(b, func(f field) error {
			switch f.num {
			case 1:
				vt.typ = asInt64(f.varint)
			case 2:
				vt.unit = asInt64(f.varint)
			}
			return nil
		})
		return vt, err
	}

	err := walkFields(data, func(f field) error {
		switch f.num {
		case 1: // sample_type
			vt, err := parseValueType(f.payload)
			if err != nil {
				return err
			}
			valueType = append(valueType, vt)
		case 2: // sample
			var rs rawSample
			err := walkFields(f.payload, func(sf field) error {
				var err error
				switch sf.num {
				case 1: // location_id
					rs.locIDs, err = packedOrSingle(sf, rs.locIDs)
				case 2: // value
					var vs []uint64
					vs, err = packedOrSingle(sf, nil)
					for _, v := range vs {
						rs.values = append(rs.values, asInt64(v))
					}
				case 3: // label
					var rl rawLabel
					err = walkFields(sf.payload, func(lf field) error {
						switch lf.num {
						case 1:
							rl.key = asInt64(lf.varint)
						case 2:
							rl.str = asInt64(lf.varint)
						case 3:
							rl.num = asInt64(lf.varint)
							rl.hasNum = true
						}
						return nil
					})
					rs.labs = append(rs.labs, rl)
				}
				return err
			})
			if err != nil {
				return err
			}
			samples = append(samples, rs)
		case 4: // location
			var rl rawLocation
			err := walkFields(f.payload, func(lf field) error {
				switch lf.num {
				case 1:
					rl.id = lf.varint
				case 3:
					rl.address = lf.varint
				case 4: // line
					return walkFields(lf.payload, func(ln field) error {
						if ln.num == 1 {
							rl.funcIDs = append(rl.funcIDs, ln.varint)
						}
						return nil
					})
				}
				return nil
			})
			if err != nil {
				return err
			}
			locs[rl.id] = rl
		case 5: // function
			var id uint64
			var name int64
			err := walkFields(f.payload, func(ff field) error {
				switch ff.num {
				case 1:
					id = ff.varint
				case 2:
					name = asInt64(ff.varint)
				}
				return nil
			})
			if err != nil {
				return err
			}
			funcs[id] = name
		case 6: // string_table
			strtab = append(strtab, string(f.payload))
		case 10: // duration_nanos
			prof.DurationNanos = asInt64(f.varint)
		case 11: // period_type
			vt, err := parseValueType(f.payload)
			if err != nil {
				return err
			}
			period = vt
		case 12: // period
			prof.Period = asInt64(f.varint)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	str := func(i int64) string {
		if i < 0 || int(i) >= len(strtab) {
			return ""
		}
		return strtab[i]
	}
	for _, vt := range valueType {
		prof.SampleTypes = append(prof.SampleTypes, ValueType{Type: str(vt.typ), Unit: str(vt.unit)})
	}
	prof.PeriodType = ValueType{Type: str(period.typ), Unit: str(period.unit)}

	locName := func(id uint64) string {
		l, ok := locs[id]
		if !ok {
			return fmt.Sprintf("loc#%d", id)
		}
		if len(l.funcIDs) > 0 {
			if name := str(funcs[l.funcIDs[0]]); name != "" {
				return name
			}
		}
		return fmt.Sprintf("0x%x", l.address)
	}

	for _, rs := range samples {
		s := &Sample{Values: rs.values}
		for _, id := range rs.locIDs {
			s.Stack = append(s.Stack, locName(id))
		}
		if len(rs.labs) > 0 {
			s.Labels = make(map[string]string, len(rs.labs))
			for _, rl := range rs.labs {
				if rl.hasNum {
					s.Labels[str(rl.key)] = strconv.FormatInt(rl.num, 10)
				} else {
					s.Labels[str(rl.key)] = str(rl.str)
				}
			}
		}
		prof.Samples = append(prof.Samples, s)
	}
	return prof, nil
}

// labelKey renders a sample's labels canonically for merging.
func (s *Sample) labelKey() string {
	if len(s.Labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b bytes.Buffer
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
		b.WriteByte(';')
	}
	return b.String()
}

// Merge sums profiles of identical sample-type shape: samples with the
// same stack and label set add their values. The pgo job merges per-suite
// CPU profiles the same way before committing default.pgo; here the merge
// feeds the attribution table.
func Merge(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("profiling: nothing to merge")
	}
	out := &Profile{
		SampleTypes: profiles[0].SampleTypes,
		PeriodType:  profiles[0].PeriodType,
		Period:      profiles[0].Period,
	}
	type aggKey struct{ stack, labels string }
	agg := map[aggKey]*Sample{}
	var order []aggKey
	for _, p := range profiles {
		if len(p.SampleTypes) != len(out.SampleTypes) {
			return nil, fmt.Errorf("profiling: merging profiles with different sample types")
		}
		for i, st := range p.SampleTypes {
			if st != out.SampleTypes[i] {
				return nil, fmt.Errorf("profiling: merging profiles with different sample types")
			}
		}
		out.DurationNanos += p.DurationNanos
		for _, s := range p.Samples {
			k := aggKey{stack: stackKey(s.Stack), labels: s.labelKey()}
			dst, ok := agg[k]
			if !ok {
				dst = &Sample{Stack: s.Stack, Values: make([]int64, len(s.Values)), Labels: s.Labels}
				agg[k] = dst
				order = append(order, k)
			}
			for i, v := range s.Values {
				dst.Values[i] += v
			}
		}
	}
	for _, k := range order {
		out.Samples = append(out.Samples, agg[k])
	}
	return out, nil
}

func stackKey(stack []string) string {
	var b bytes.Buffer
	for _, fr := range stack {
		b.WriteString(fr)
		b.WriteByte('\n')
	}
	return b.String()
}
