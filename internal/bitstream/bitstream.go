// Package bitstream models the partial-bitstream toolchain: the IP Vendor
// compiles an accelerator design plus its Shield configuration (and the
// embedded private Shield Encryption Key) into a bitstream, encrypts it
// under the Bitstream Encryption Key, and signs it (paper §3, Accelerator
// Development).
//
// A real bitstream is an opaque FPGA configuration image; here the payload
// is a manifest naming a registered accelerator design and carrying the
// Shield configuration. What matters for ShEF is preserved exactly: the
// encrypted image hides the design and the embedded Shield key, its hash
// is what remote attestation reports, and only a Security Kernel holding
// the Bitstream Encryption Key can load it.
package bitstream

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/big"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/rsax"
	"shef/internal/crypto/schnorr"
	"shef/internal/crypto/sha256x"
	"shef/internal/fpga"
	"shef/internal/shield"
)

// Manifest is the plaintext content of a partial bitstream.
type Manifest struct {
	// Design names the accelerator in the design registry (accel package).
	Design string `json:"design"`
	// Version is the IP Vendor's release tag.
	Version string `json:"version"`
	// Params carries design-specific knobs (sizes, difficulty, ...).
	Params map[string]string `json:"params,omitempty"`
	// Shield is the complete Shield configuration for this accelerator.
	Shield shield.Config `json:"shield"`
	// ShieldPrivKey is the private Shield Encryption Key scalar, embedded
	// in the design exactly as the paper embeds it in Shield RTL.
	ShieldPrivKey []byte `json:"shield_priv_key"`
	// Group names the discrete-log group of the Shield key (modp.ByName);
	// empty selects the simulation default.
	Group string `json:"group,omitempty"`
	// Resources is the compiled design's area (accelerator + Shield).
	Resources fpga.Resources `json:"resources"`
}

// ShieldKey reconstructs the embedded Shield Encryption Key pair.
func (m *Manifest) ShieldKey() (*schnorr.PrivateKey, error) {
	if len(m.ShieldPrivKey) == 0 {
		return nil, errors.New("bitstream: manifest carries no shield key")
	}
	group, err := modp.ByName(m.Group)
	if err != nil {
		return nil, err
	}
	x := new(big.Int).SetBytes(m.ShieldPrivKey)
	return schnorr.KeyFromScalar(group, x), nil
}

// Encrypted is a distributable encrypted partial bitstream.
type Encrypted struct {
	// Name identifies the bitstream (marketplace listing, AFI id, ...).
	Name string `json:"name"`
	// Blob is AES-CTR ciphertext followed by a 16-byte HMAC tag, sealed
	// under the Bitstream Encryption Key.
	Blob []byte `json:"blob"`
	// Signature is the IP Vendor's RSA signature over SHA-256(Blob),
	// so marketplaces and Data Owners can check provenance.
	Signature []byte `json:"signature,omitempty"`
}

// Hash is the value remote attestation reports:
// H(Enc_BitstrKey(Accelerator)) in Figure 3.
func (e *Encrypted) Hash() [sha256x.Size]byte {
	h := sha256x.New()
	h.Write([]byte(e.Name))
	h.Write(e.Blob)
	return h.Sum()
}

// Compile serialises and encrypts a manifest under the Bitstream
// Encryption Key, optionally signing it with the IP Vendor's RSA key.
func Compile(name string, m *Manifest, bitstreamKey []byte, vendor *rsax.PrivateKey) (*Encrypted, error) {
	if err := m.Shield.Validate(); err != nil {
		return nil, fmt.Errorf("bitstream: shield config invalid: %w", err)
	}
	plain, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("bitstream: encoding manifest: %w", err)
	}
	blob, err := seal(bitstreamKey, plain)
	if err != nil {
		return nil, err
	}
	e := &Encrypted{Name: name, Blob: blob}
	if vendor != nil {
		sum := e.Hash()
		sig, err := vendor.Sign(sum[:])
		if err != nil {
			return nil, err
		}
		e.Signature = sig
	}
	return e, nil
}

// Decrypt authenticates and opens an encrypted bitstream with the
// Bitstream Encryption Key. This runs inside the Security Kernel, in
// on-chip memory, after attestation delivered the key (paper §4).
func Decrypt(e *Encrypted, bitstreamKey []byte) (*Manifest, error) {
	plain, err := open(bitstreamKey, e.Blob)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(plain, &m); err != nil {
		return nil, fmt.Errorf("bitstream: decoding manifest: %w", err)
	}
	if err := m.Shield.Validate(); err != nil {
		return nil, fmt.Errorf("bitstream: decrypted manifest invalid: %w", err)
	}
	return &m, nil
}

// VerifySignature checks the IP Vendor's signature.
func VerifySignature(e *Encrypted, vendorPub *rsax.PublicKey) bool {
	if len(e.Signature) == 0 {
		return false
	}
	sum := e.Hash()
	return rsax.Verify(vendorPub, sum[:], e.Signature)
}

func seal(key, plain []byte) ([]byte, error) {
	c, err := aesx.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("bitstream: bad bitstream key: %w", err)
	}
	ct := make([]byte, len(plain))
	var iv [aesx.IVSize]byte
	aesx.CTR(c, iv, ct, plain)
	tag := hmacx.Tag(key, ct)
	return append(ct, tag[:]...), nil
}

func open(key, blob []byte) ([]byte, error) {
	if len(blob) < hmacx.TagSize {
		return nil, errors.New("bitstream: blob too short")
	}
	ct := blob[:len(blob)-hmacx.TagSize]
	var tag [hmacx.TagSize]byte
	copy(tag[:], blob[len(blob)-hmacx.TagSize:])
	if !hmacx.Verify(key, ct, tag) {
		return nil, errors.New("bitstream: authentication failed (wrong key or tampered image)")
	}
	c, err := aesx.NewCipher(key)
	if err != nil {
		return nil, err
	}
	plain := make([]byte, len(ct))
	var iv [aesx.IVSize]byte
	aesx.CTR(c, iv, plain, ct)
	return plain, nil
}
