package bitstream

import (
	"bytes"
	"sync"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/rsax"
	"shef/internal/crypto/schnorr"
	"shef/internal/fpga"
	"shef/internal/shield"
)

var (
	vendorOnce sync.Once
	vendorKey  *rsax.PrivateKey
)

func vendor(t *testing.T) *rsax.PrivateKey {
	t.Helper()
	vendorOnce.Do(func() {
		k, err := rsax.GenerateKey(nil, 1024)
		if err != nil {
			t.Fatal(err)
		}
		vendorKey = k
	})
	return vendorKey
}

func testManifest(t *testing.T) *Manifest {
	t.Helper()
	sk, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Manifest{
		Design:  "vecadd",
		Version: "1.2.0",
		Params:  map[string]string{"lanes": "4"},
		Shield: shield.Config{
			Regions: []shield.RegionConfig{{
				Name: "io", Base: 0, Size: 1 << 16, ChunkSize: 512,
				AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128,
				MAC: shield.HMAC, BufferBytes: 2048,
			}},
			Registers: 8,
		},
		ShieldPrivKey: sk.X.Bytes(),
		Resources:     fpga.Resources{LUT: 30000, REG: 20000, BRAM: 10},
	}
}

func key32() []byte { return bytes.Repeat([]byte{0x77}, 32) }

func TestCompileDecryptRoundTrip(t *testing.T) {
	m := testManifest(t)
	enc, err := Compile("vecadd-afi", m, key32(), vendor(t))
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(enc, key32())
	if err != nil {
		t.Fatal(err)
	}
	if got.Design != m.Design || got.Version != m.Version {
		t.Fatal("manifest fields lost")
	}
	if got.Params["lanes"] != "4" {
		t.Fatal("params lost")
	}
	if len(got.Shield.Regions) != 1 || got.Shield.Regions[0].ChunkSize != 512 {
		t.Fatal("shield config lost")
	}
	if !bytes.Equal(got.ShieldPrivKey, m.ShieldPrivKey) {
		t.Fatal("shield key lost")
	}
}

func TestDecryptWrongKey(t *testing.T) {
	enc, _ := Compile("x", testManifest(t), key32(), nil)
	bad := bytes.Repeat([]byte{0x88}, 32)
	if _, err := Decrypt(enc, bad); err == nil {
		t.Fatal("decryption with wrong bitstream key succeeded")
	}
}

func TestBlobHidesDesign(t *testing.T) {
	m := testManifest(t)
	enc, _ := Compile("x", m, key32(), nil)
	if bytes.Contains(enc.Blob, []byte("vecadd")) {
		t.Fatal("design name visible in encrypted bitstream")
	}
	if bytes.Contains(enc.Blob, m.ShieldPrivKey) {
		t.Fatal("shield private key visible in encrypted bitstream")
	}
}

func TestTamperedBlobRejected(t *testing.T) {
	enc, _ := Compile("x", testManifest(t), key32(), nil)
	enc.Blob[10] ^= 1
	if _, err := Decrypt(enc, key32()); err == nil {
		t.Fatal("tampered bitstream accepted")
	}
}

func TestSignature(t *testing.T) {
	v := vendor(t)
	enc, err := Compile("x", testManifest(t), key32(), v)
	if err != nil {
		t.Fatal(err)
	}
	if !VerifySignature(enc, &v.PublicKey) {
		t.Fatal("valid signature rejected")
	}
	other, _ := rsax.GenerateKey(nil, 1024)
	if VerifySignature(enc, &other.PublicKey) {
		t.Fatal("signature verified under wrong vendor key")
	}
	enc.Blob[0] ^= 1
	if VerifySignature(enc, &v.PublicKey) {
		t.Fatal("signature verified over tampered blob")
	}
	unsigned, _ := Compile("x", testManifest(t), key32(), nil)
	if VerifySignature(unsigned, &v.PublicKey) {
		t.Fatal("missing signature verified")
	}
}

func TestHashStableAndBinding(t *testing.T) {
	enc, _ := Compile("x", testManifest(t), key32(), nil)
	h1 := enc.Hash()
	h2 := enc.Hash()
	if h1 != h2 {
		t.Fatal("hash unstable")
	}
	renamed := *enc
	renamed.Name = "y"
	if renamed.Hash() == h1 {
		t.Fatal("hash does not bind the name")
	}
}

func TestCompileRejectsInvalidShieldConfig(t *testing.T) {
	m := testManifest(t)
	m.Shield.Regions[0].ChunkSize = 100 // not a multiple of the AES block
	if _, err := Compile("x", m, key32(), nil); err == nil {
		t.Fatal("invalid shield config compiled")
	}
}

func TestManifestShieldKey(t *testing.T) {
	m := testManifest(t)
	key, err := m.ShieldKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("probe")
	if !schnorr.Verify(&key.PublicKey, msg, key.Sign(msg)) {
		t.Fatal("reconstructed shield key broken")
	}
	m.ShieldPrivKey = nil
	if _, err := m.ShieldKey(); err == nil {
		t.Fatal("empty shield key accepted")
	}
}
