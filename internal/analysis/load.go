package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// LoadedPackage is one parsed, type-checked package ready for analysis.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// LoadPackages lists the packages matching patterns (relative to dir),
// parses their non-test sources, and type-checks them against the
// compiler's export data — the same artifacts the build cache already
// holds, so loading is fast and works fully offline. Dependencies are
// resolved through `go list -export -deps`, never re-typechecked from
// source.
func LoadPackages(dir string, patterns ...string) ([]*LoadedPackage, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	var targets []*listPackage
	exports := make(map[string]string)
	importMaps := make(map[string]map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if len(p.ImportMap) > 0 {
			importMaps[p.ImportPath] = p.ImportMap
		}
		if !p.DepOnly && !p.Standard {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})

	var loaded []*LoadedPackage
	for _, p := range targets {
		lp, err := typecheckPackage(fset, gc, p, importMaps[p.ImportPath])
		if err != nil {
			return nil, err
		}
		loaded = append(loaded, lp)
	}
	return loaded, nil
}

// mappedImporter applies one package's vendor/test import remapping
// before delegating to the shared export-data importer.
type mappedImporter struct {
	base      types.Importer
	importMap map[string]string
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if canon, ok := m.importMap[path]; ok {
		path = canon
	}
	return m.base.Import(path)
}

func typecheckPackage(fset *token.FileSet, gc types.Importer, p *listPackage,
	importMap map[string]string) (*LoadedPackage, error) {

	var files []*ast.File
	for _, name := range p.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: mappedImporter{base: gc, importMap: importMap},
		Error:    func(error) {}, // collect everything; first error returned below
	}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", p.ImportPath, err)
	}
	return &LoadedPackage{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      pkg,
		Info:       info,
	}, nil
}

// TypeCheckVetPackage type-checks one compilation unit as described by
// the go command's vet.cfg: sources from goFiles (resolved against dir
// when relative), dependencies through the build's own export files
// (packageFile, keyed by canonical import path), and import paths
// canonicalized through importMap. It backs cmd/shefvet's -vettool
// mode, where the go command — not `go list` — owns package loading.
func TypeCheckVetPackage(importPath, dir string, goFiles []string,
	importMap, packageFile map[string]string) (*LoadedPackage, error) {

	fset := token.NewFileSet()
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := packageFile[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
	p := &listPackage{ImportPath: importPath, Dir: dir, GoFiles: goFiles}
	return typecheckPackage(fset, gc, p, importMap)
}

// NewInfo allocates the full types.Info every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
