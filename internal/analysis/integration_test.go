package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

// TestTreeIsClean runs the full analyzer suite over every package in
// the module and asserts zero findings. This is the same gate CI
// enforces via cmd/shefvet: if an invariant regresses — an unguarded
// instrumentation site, a map walk on a deterministic path, a lock
// inversion, an unclassified error crossing the sdp/oram boundary —
// this test names the exact file:line, so the failure is actionable
// without rerunning anything.
//
// Suppressions are part of the contract: a site silenced with a
// reasoned //shef:ignore passes; a bare marker is itself a finding.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module; skipped in -short")
	}
	root := moduleRoot(t)
	pkgs, err := LoadPackages(root, "./...")
	if err != nil {
		t.Fatalf("LoadPackages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("LoadPackages returned no packages")
	}
	var total int
	for _, p := range pkgs {
		diags := RunAnalyzers(p.Fset, p.Files, p.Types, p.Info, All())
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
		}
		total += len(diags)
	}
	if total > 0 {
		t.Logf("%d finding(s); fix the site or add a reasoned //shef:ignore (see DESIGN.md §10)", total)
	}
}

// moduleRoot resolves the repository's module directory so the test
// passes regardless of the package dir the harness runs it from.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		t.Fatalf("go list -m: %v", err)
	}
	dir := strings.TrimSpace(string(out))
	if dir == "" {
		t.Fatal("go list -m returned an empty module dir")
	}
	return dir
}
