package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField enforces the DESIGN.md §5 atomics rule: once any access to
// a struct field goes through sync/atomic functions, every access must.
// A mixed regime — atomic.AddUint64 on the write side, a plain read in a
// stats snapshot — is a data race the -race detector only catches under
// a lucky schedule, and a torn read the memory model never promises to
// rule out. (Fields of the typed atomic.X wrappers are immune by
// construction: the type system already forbids plain access, which is
// why the repo prefers them; this analyzer catches the function-style
// remainder and any future backsliding.)
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic must never be read or written plainly",
	Run:  runAtomicField,
}

// atomicOpPrefixes are the sync/atomic function families that take the
// address of the value they operate on as their first argument.
var atomicOpPrefixes = []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"}

func isAtomicOp(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	for _, p := range atomicOpPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			return true
		}
	}
	return false
}

func runAtomicField(pass *Pass) {
	files := pass.prodFiles()

	// Pass 1: collect every struct field whose address feeds a
	// sync/atomic operation.
	atomicFields := make(map[*types.Var]bool)
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicOp(pass.calleeFunc(call)) || len(call.Args) == 0 {
				return true
			}
			if v := addressedField(pass, call.Args[0]); v != nil {
				atomicFields[v] = true
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return
	}

	// Pass 2: flag every other use of those fields that is not itself
	// an operand of a sync/atomic call.
	for _, f := range files {
		withAncestors(f, func(n ast.Node, ancestors []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := selectedField(pass, sel)
			if v == nil || !atomicFields[v] {
				return true
			}
			if underAtomicCall(pass, ancestors) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"field %s is accessed with sync/atomic elsewhere; this plain access races (use atomic.Load/Store or the typed atomic wrappers)",
				v.Name())
			return true
		})
	}
}

// addressedField resolves &x.f (possibly through parens/indexing) to the
// struct field f, or nil.
func addressedField(pass *Pass, e ast.Expr) *types.Var {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "&" {
		return nil
	}
	inner := ast.Unparen(u.X)
	if idx, ok := inner.(*ast.IndexExpr); ok {
		inner = ast.Unparen(idx.X)
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return selectedField(pass, sel)
}

// selectedField resolves a selector to the struct field it names, or nil
// for methods, package selectors, and locals.
func selectedField(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	if v, ok := pass.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// underAtomicCall reports whether some enclosing expression is an
// argument list of a sync/atomic call (the legitimate access form).
func underAtomicCall(pass *Pass, ancestors []ast.Node) bool {
	for i := len(ancestors) - 1; i >= 0; i-- {
		if call, ok := ancestors[i].(*ast.CallExpr); ok && isAtomicOp(pass.calleeFunc(call)) {
			return true
		}
	}
	return false
}
