package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc enforces DESIGN.md §6: functions marked //shef:hotpath —
// the engine-set stream/gather/flush span work, sealer seal/open cores,
// the faultinject/profiling Enabled fast paths — must not contain
// allocating constructs. The check is syntactic and deliberately
// stricter than the escape analyzer: a hot path that *looks*
// allocation-free stays allocation-free under inlining changes, whereas
// one that leans on escape analysis regresses silently when a function
// grows past the inlining budget.
//
// Flagged constructs: new/make, composite literals that escape (&T{...},
// slice and map literals), explicit conversions to interface types,
// implicit interface conversions at call argument positions,
// string<->[]byte conversions, closures that capture outer variables,
// go/defer statements, and any call into fmt. Cold error branches inside
// a hot function carry //shef:ignore with a reason.
var HotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "//shef:hotpath functions must not contain allocating constructs",
	Run:  runHotpathAlloc,
}

func runHotpathAlloc(pass *Pass) {
	for _, f := range pass.prodFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !funcHasMark(fn, MarkHotpath) {
				continue
			}
			checkHotFunc(pass, fn)
		}
	}
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	withAncestors(fn.Body, func(n ast.Node, ancestors []ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "%s: go statement in a hot path spawns a goroutine per call", fn.Name.Name)
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "%s: defer in a hot path allocates a defer record on some paths", fn.Name.Name)
		case *ast.FuncLit:
			if captures(pass, n) {
				pass.Reportf(n.Pos(), "%s: closure captures outer variables and escapes to the heap", fn.Name.Name)
			}
		case *ast.CompositeLit:
			checkHotComposite(pass, fn, n, ancestors)
		case *ast.CallExpr:
			checkHotCall(pass, fn, n)
		}
		return true
	})
}

// checkHotComposite flags composite literals whose usual lowering
// allocates: slice and map literals always do; struct literals only when
// their address is taken (the &T{...} form).
func checkHotComposite(pass *Pass, fn *ast.FuncDecl, lit *ast.CompositeLit, ancestors []ast.Node) {
	t := pass.Info.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		pass.Reportf(lit.Pos(), "%s: slice literal allocates", fn.Name.Name)
		return
	case *types.Map:
		pass.Reportf(lit.Pos(), "%s: map literal allocates", fn.Name.Name)
		return
	}
	if len(ancestors) > 0 {
		if u, ok := ancestors[len(ancestors)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
			pass.Reportf(lit.Pos(), "%s: &composite literal escapes to the heap", fn.Name.Name)
		}
	}
}

func checkHotCall(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) {
	// Builtins and conversions first: new/make always allocate;
	// string<->[]byte conversions copy.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch obj.Name() {
			case "new", "make":
				pass.Reportf(call.Pos(), "%s: %s allocates", fn.Name.Name, obj.Name())
			}
			return
		}
	}
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		// Explicit conversion T(x).
		dst := tv.Type
		if types.IsInterface(dst.Underlying()) {
			if len(call.Args) == 1 && !isInterfaceExpr(pass, call.Args[0]) {
				pass.Reportf(call.Pos(), "%s: conversion to interface %s allocates", fn.Name.Name, dst)
			}
			return
		}
		if len(call.Args) == 1 && isStringBytesConv(pass, dst, call.Args[0]) {
			pass.Reportf(call.Pos(), "%s: string<->[]byte conversion copies and allocates", fn.Name.Name)
		}
		return
	}

	if pkg, _ := pass.calleePkgFunc(call); pkg == "fmt" {
		pass.Reportf(call.Pos(), "%s: fmt call allocates (format state and boxed operands)", fn.Name.Name)
		return
	}

	// Implicit interface conversions at argument positions: a concrete
	// value passed where the callee wants an interface is boxed.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := pass.Info.TypeOf(arg)
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if isNilOrConstLike(pass, arg) || isSmallWordLike(at) {
			continue
		}
		pass.Reportf(arg.Pos(), "%s: concrete %s boxed into interface %s argument", fn.Name.Name, at, pt)
	}
}

func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.Info.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.Underlying().(*types.Signature)
	return sig
}

func isInterfaceExpr(pass *Pass, e ast.Expr) bool {
	t := pass.Info.TypeOf(e)
	return t != nil && types.IsInterface(t.Underlying())
}

func isStringBytesConv(pass *Pass, dst types.Type, arg ast.Expr) bool {
	src := pass.Info.TypeOf(arg)
	if src == nil {
		return false
	}
	return (isString(dst) && isByteSlice(src)) || (isByteSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.String
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isNilOrConstLike skips untyped nils and constants: boxing a constant
// into an interface does not allocate at runtime (the compiler interns
// it) and nil never does.
func isNilOrConstLike(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	if !ok {
		return false
	}
	return tv.IsNil() || tv.Value != nil
}

// isSmallWordLike reports types the runtime boxes without allocating
// (pointers, channels, maps, funcs: the value fits the iface data word).
func isSmallWordLike(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	return false
}

// captures reports whether a function literal references variables
// declared outside its own body (a capturing closure is heap-allocated
// together with its captured variables).
func captures(pass *Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return !found
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() {
			return true
		}
		// Package-level variables are not captures.
		if obj.Parent() == pass.Pkg.Scope() || obj.Parent() == types.Universe {
			return true
		}
		if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
			found = true
		}
		return true
	})
	return found
}
