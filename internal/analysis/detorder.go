package analysis

import (
	"go/ast"
)

// DetOrder enforces the DESIGN.md §4 determinism contract: functions
// reachable from a //shef:deterministic root — flush, eviction, ORAM
// Access, witness repair — must not let scheduler or map-iteration
// nondeterminism leak into their observable order. The property is
// spot-checked dynamically by TestFlushDeterministic and
// TestORAMDeterministic, but those only see the seeds they run; this
// check covers every path, every time.
//
// Flagged inside the reachable set:
//   - `range` over a map (iteration order is randomized). Collect-then-
//     sort sites carry //shef:ignore with the reason "sorted before use".
//   - `select` with two or more ready communication cases (the runtime
//     picks uniformly at random).
//   - goroutine closures appending to variables captured from the
//     enclosing function (completion order decides element order).
//
// Reachability is the static intra-package call graph; calls through
// function values and interfaces are invisible, so determinism roots
// annotate the concrete entry points.
var DetOrder = &Analyzer{
	Name: "detorder",
	Doc:  "no map ranges, multi-ready selects, or goroutine-ordered appends under //shef:deterministic roots",
	Run:  runDetOrder,
}

func runDetOrder(pass *Pass) {
	funcs := pass.packageFuncs()
	var roots []string
	for key, fn := range funcs {
		if funcHasMark(fn, MarkDeterministic) {
			roots = append(roots, key)
		}
	}
	if len(roots) == 0 {
		return
	}
	reach := reachable(roots, pass.callGraph(funcs))
	for key, fn := range funcs {
		if reach[key] {
			checkDetFunc(pass, fn)
		}
	}
}

func checkDetFunc(pass *Pass, fn *ast.FuncDecl) {
	withAncestors(fn.Body, func(n ast.Node, ancestors []ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if isMapType(pass.Info.TypeOf(n.X)) {
				pass.Reportf(n.Pos(),
					"%s: range over a map in a deterministic path; iteration order is randomized (collect and sort, or //shef:ignore with why order cannot matter)",
					fn.Name.Name)
			}
		case *ast.SelectStmt:
			comms := 0
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					comms++
				}
			}
			if comms >= 2 {
				pass.Reportf(n.Pos(),
					"%s: select with %d communication cases in a deterministic path; the runtime picks ready cases at random",
					fn.Name.Name, comms)
			}
		case *ast.GoStmt:
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				checkGoroutineAppends(pass, fn, lit)
			}
		}
		return true
	})
}

// checkGoroutineAppends flags `x = append(x, ...)` inside a spawned
// closure when x is declared outside it: the goroutines' completion
// order, not the program order, decides the slice's element order.
func checkGoroutineAppends(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.FuncLit); ok && inner != lit {
			return true // nested closures inspected via their own go stmts
		}
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		hasAppend := false
		for _, rhs := range assign.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
					hasAppend = true
				}
			}
		}
		if !hasAppend {
			return true
		}
		for _, lhs := range assign.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Info.Uses[id]
			if obj == nil {
				obj = pass.Info.Defs[id]
			}
			if obj == nil {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				pass.Reportf(assign.Pos(),
					"%s: goroutine appends to %s captured from the enclosing function; completion order decides element order",
					fn.Name.Name, id.Name)
			}
		}
		return true
	})
}
