package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockOrder enforces the DESIGN.md §5 lock hierarchy: acquisitions are
// strictly outer→inner, and no lock is held while acquiring one that
// sits further out. The documented partial order is encoded below as
// ranks on (package, type, field) lock classes — lower rank is further
// out — and the analyzer flags any function that, while holding a lock,
// acquires one of lower or equal rank, either directly or through a
// same-package call whose (transitive) acquisition summary contains one.
//
// The check is intra-package: cross-package edges of the hierarchy
// (Cluster → Node → Shield session → engine set → DRAM stripe) are safe
// by layering — no package calls back up a layer while holding its own
// locks — and each package's internal slice of the order is what this
// analyzer pins down.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "lock acquisitions must respect the DESIGN.md §5 partial order (outer→inner)",
	Run:  runLockOrder,
}

// lockRanks is the machine-readable form of the DESIGN.md §5 order. The
// class key is "package.Type.field"; lower rank = outer lock, and a
// function holding rank r may only acquire ranks strictly greater than
// r. Locks absent from the table are unclassified and ignored (local
// mutexes, leaf locks with no nesting).
var lockRanks = map[string]int{
	// shield: provisioning serialization → session state → engine set →
	// register file. DRAM striping is a mem-package leaf below all of
	// these.
	"shield.Shield.provMu":   10,
	"shield.Shield.mu":       20,
	"shield.RegionTable.mu":  24,
	"shield.engineSet.mu":    30,
	"shield.RegisterFile.mu": 40,
	// mem: the quota accountant is a leaf — the shield region table holds
	// its own mu while charging it, and it calls out to nothing.
	"mem.Accountant.mu": 50,
	// sdp: controller key DB and the cluster's striped per-file write
	// locks are outermost; then the witness registry, then node state,
	// with the per-shard health FSM as the leaf.
	"sdp.Controller.mu":     10,
	"sdp.Cluster.fileLocks": 20,
	"sdp.Cluster.regMu":     30,
	"sdp.Node.mu":           40,
	"sdp.healthFSM.mu":      50,
	// hostapp: the server session table above the CA registry (attest
	// package) and the platform pool's own lock.
	"hostapp.VendorServer.mu": 10,
	"hostapp.Pool.mu":         20,
	// The tenant registry is self-contained: the server calls it with no
	// lock held, and registry methods never call back out.
	"hostapp.TenantRegistry.mu": 30,
	// faultinject: plan counters are a leaf.
	"faultinject.Plan.mu": 50,
	// fixtures (testdata models of the real hierarchy)
	"lockorder.Cluster.mu":   10,
	"lockorder.Cluster.file": 20,
	"lockorder.Node.mu":      30,
}

// lockAcq is one acquisition site inside a function.
type lockAcq struct {
	class string
	rank  int
	read  bool // RLock/RUnlock
	pos   token.Pos
}

func runLockOrder(pass *Pass) {
	funcs := pass.packageFuncs()
	getters := lockGetterClasses(pass, funcs)

	// Transitive acquisition summaries: which classes can each function
	// acquire, directly or through same-package callees?
	direct := make(map[string]map[string]token.Pos)
	locals := make(map[string]map[types.Object]string)
	for key, fn := range funcs {
		vars := localLockVars(pass, fn, getters)
		locals[key] = vars
		acqs := make(map[string]token.Pos)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if acq, ok := lockCallClass(pass, call, vars); ok && acq.acquire {
				if _, seen := acqs[acq.class]; !seen {
					acqs[acq.class] = call.Pos()
				}
			}
			return true
		})
		direct[key] = acqs
	}
	edges := pass.callGraph(funcs)
	summary := make(map[string]map[string]bool)
	for key := range funcs {
		closure := make(map[string]bool)
		for k := range reachable([]string{key}, edges) {
			for class := range direct[k] {
				closure[class] = true
			}
		}
		summary[key] = closure
	}

	for key, fn := range funcs {
		checkLockFunc(pass, fn, key, summary, locals[key])
	}
}

// lockGetterClasses finds same-package helpers that hand out a pointer
// to a classified lock — e.g. Cluster.fileLock returning
// &c.fileLocks[h%N] — and maps each to the class it returns. Locals
// assigned from such a helper acquire that class when Lock is called on
// them.
func lockGetterClasses(pass *Pass, funcs map[string]*ast.FuncDecl) map[string]string {
	getters := make(map[string]string)
	for key, fn := range funcs {
		if fn.Type.Results == nil || len(fn.Type.Results.List) != 1 {
			continue
		}
		var class string
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok || len(ret.Results) != 1 {
				return true
			}
			e := ast.Unparen(ret.Results[0])
			if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
				e = ast.Unparen(u.X)
			}
			if c, ok := lockExprClass(pass, e); ok {
				class = c
			}
			return true
		})
		if class != "" {
			getters[key] = class
		}
	}
	return getters
}

// localLockVars maps a function's local variables that were assigned
// from a lock getter to the class the getter returns.
func localLockVars(pass *Pass, fn *ast.FuncDecl, getters map[string]string) map[types.Object]string {
	vars := make(map[types.Object]string)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			callee := pass.calleeFunc(call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				continue
			}
			class, ok := getters[funcKey(callee)]
			if !ok {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pass.Info.Defs[id]; obj != nil {
				vars[obj] = class
			} else if obj := pass.Info.Uses[id]; obj != nil {
				vars[obj] = class
			}
		}
		return true
	})
	return vars
}

type lockCall struct {
	class   string
	rank    int
	acquire bool
	read    bool
}

// lockCallClass recognizes x.Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex/RWMutex-typed struct fields listed in lockRanks, either
// selected directly (s.mu.Lock) or through a local assigned from a
// lock getter (mu := c.fileLock(name); mu.Lock()).
func lockCallClass(pass *Pass, call *ast.CallExpr, vars map[types.Object]string) (lockCall, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockCall{}, false
	}
	var acquire, read bool
	switch sel.Sel.Name {
	case "Lock":
		acquire = true
	case "RLock":
		acquire, read = true, true
	case "Unlock":
	case "RUnlock":
		read = true
	default:
		return lockCall{}, false
	}
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockCall{}, false
	}
	class, ok := lockOperandClass(pass, sel.X, vars)
	if !ok {
		return lockCall{}, false
	}
	rank, ok := lockRanks[class]
	if !ok {
		return lockCall{}, false
	}
	return lockCall{class: class, rank: rank, acquire: acquire, read: read}, true
}

// lockOperandClass resolves the receiver expression of a Lock call —
// s.mu, c.fileLocks[i], or a getter-derived local — to its
// "pkg.Type.field" class.
func lockOperandClass(pass *Pass, e ast.Expr, vars map[types.Object]string) (string, bool) {
	inner := ast.Unparen(e)
	if id, ok := inner.(*ast.Ident); ok {
		if obj := pass.Info.Uses[id]; obj != nil {
			if class, ok := vars[obj]; ok {
				return class, true
			}
		}
		return "", false
	}
	return lockExprClass(pass, inner)
}

// lockExprClass resolves a direct field expression — s.mu,
// c.fileLocks[i] — to its "pkg.Type.field" class.
func lockExprClass(pass *Pass, e ast.Expr) (string, bool) {
	inner := ast.Unparen(e)
	if idx, ok := inner.(*ast.IndexExpr); ok { // striped lock arrays
		inner = ast.Unparen(idx.X)
	}
	sel, ok := inner.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	field := selectedField(pass, sel)
	if field == nil || field.Pkg() == nil {
		return "", false
	}
	owner := fieldOwner(pass, sel)
	if owner == "" {
		return "", false
	}
	return field.Pkg().Name() + "." + owner + "." + field.Name(), true
}

// fieldOwner names the struct type a selector's field belongs to.
func fieldOwner(pass *Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.Info.Selections[sel]
	if !ok {
		return ""
	}
	t := s.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return named.Obj().Name()
		}
	}
	return ""
}

// checkLockFunc walks one function body in source order, tracking the
// multiset of held classified locks, and reports inversions of the
// documented order — both direct acquisitions and calls into functions
// whose summaries acquire.
func checkLockFunc(pass *Pass, fn *ast.FuncDecl, key string, summary map[string]map[string]bool, vars map[types.Object]string) {
	held := make(map[string]int) // class -> depth
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			// Deferred unlocks release at return; the lock stays held
			// for the rest of the body. Deferred acquisitions do not
			// exist in this codebase; skip the subtree.
			return false
		case *ast.FuncLit:
			return false // closures run later, under their own discipline
		case *ast.CallExpr:
			if acq, ok := lockCallClass(pass, n, vars); ok {
				if acq.acquire {
					reportInversion(pass, fn, held, acq.class, acq.rank, n.Pos(), "")
					held[acq.class]++
				} else if held[acq.class] > 0 {
					held[acq.class]--
				}
				return true
			}
			callee := pass.calleeFunc(n)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			for class := range summary[funcKey(callee)] {
				reportInversion(pass, fn, held, class, lockRanks[class], n.Pos(), callee.Name())
			}
		}
		return true
	})
}

func reportInversion(pass *Pass, fn *ast.FuncDecl, held map[string]int,
	class string, rank int, pos token.Pos, via string) {

	for h, depth := range held {
		if depth <= 0 || h == class && via != "" {
			continue
		}
		hr := lockRanks[h]
		if rank < hr || (rank == hr && h == class && via == "") {
			how := "acquires"
			if via != "" {
				how = "calls " + via + " which acquires"
			}
			pass.Reportf(pos,
				"%s: %s %s (rank %d) while holding %s (rank %d); DESIGN.md §5 orders acquisitions outer→inner",
				fn.Name.Name, how, class, rank, h, hr)
			return
		}
	}
}
