package analysis

import (
	"go/ast"
)

// GuardedSite enforces the instrumentation-switchboard rule from
// DESIGN.md §7/§9: every profiling.Do/Region and faultinject.Check/
// WrapRW call site must sit behind the corresponding Enabled() branch,
// so the disabled cost of the entire observability and fault-injection
// layer stays one atomic load and a predicted branch. An unguarded site
// is a silent hot-path tax: arguments (closures, label slices) are
// evaluated and allocated before the callee can decide nothing is
// active.
//
// Two forms are accepted:
//   - lexically guarded: the call is inside an if statement whose
//     condition mentions the same package's Enabled();
//   - a //shef:guarded helper: a function marked //shef:guarded may call
//     the instrumentation directly, and the analyzer instead checks that
//     every same-package call of the helper is itself guarded.
var GuardedSite = &Analyzer{
	Name: "guardedsite",
	Doc:  "profiling/faultinject sites must sit behind the matching Enabled() branch",
	Run:  runGuardedSite,
}

// guardedFuncs maps instrumentation package name -> function names that
// need an Enabled() guard at (or above) the call site.
var guardedFuncs = map[string]map[string]bool{
	"profiling":   {"Do": true, "Region": true},
	"faultinject": {"Check": true, "WrapRW": true},
}

func runGuardedSite(pass *Pass) {
	// The packages' //shef:guarded helpers, by declKey, with the set of
	// instrumentation packages they front.
	helpers := make(map[string]map[string]bool)
	funcs := pass.packageFuncs()
	for key, fn := range funcs {
		if !funcHasMark(fn, MarkGuarded) {
			continue
		}
		pkgs := make(map[string]bool)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if pkg, name := pass.calleePkgFunc(call); guardedFuncs[pkg][name] {
					pkgs[pkg] = true
				}
			}
			return true
		})
		helpers[key] = pkgs
	}

	for key, fn := range funcs {
		inGuardedHelper := helpers[key] != nil
		withAncestors(fn.Body, func(n ast.Node, ancestors []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Direct instrumentation sites.
			if pkg, name := pass.calleePkgFunc(call); guardedFuncs[pkg][name] {
				if inGuardedHelper || underEnabledIf(pass, ancestors, pkg) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s: %s.%s call site is not behind %s.Enabled(); the disabled path pays its argument evaluation (mark the wrapper //shef:guarded or add the branch)",
					fn.Name.Name, pkg, name, pkg)
				return true
			}
			// Calls of //shef:guarded helpers must themselves be guarded.
			callee := pass.calleeFunc(call)
			if callee == nil || callee.Pkg() != pass.Pkg {
				return true
			}
			pkgs, isHelper := helpers[funcKey(callee)]
			if !isHelper || inGuardedHelper {
				return true
			}
			for pkg := range pkgs {
				if !underEnabledIf(pass, ancestors, pkg) {
					pass.Reportf(call.Pos(),
						"%s: call of //shef:guarded helper %s is not behind %s.Enabled()",
						fn.Name.Name, callee.Name(), pkg)
				}
			}
			return true
		})
	}
}

// underEnabledIf reports whether some enclosing if statement's condition
// contains a call to <pkg>.Enabled().
func underEnabledIf(pass *Pass, ancestors []ast.Node, pkg string) bool {
	for _, anc := range ancestors {
		ifStmt, ok := anc.(*ast.IfStmt)
		if !ok {
			continue
		}
		found := false
		ast.Inspect(ifStmt.Cond, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if p, name := pass.calleePkgFunc(call); p == pkg && name == "Enabled" {
					found = true
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
