// Package analysis is the repo's invariant-enforcement suite: a set of
// custom static analyzers that mechanically check the load-bearing rules
// DESIGN.md states in prose — zero-alloc hot paths (§6), the lock/atomics
// concurrency model (§5), deterministic flush/eviction/ORAM ordering
// (§4), typed-error discipline at the sdp/oram boundaries, and guarded
// profiling/faultinject instrumentation sites.
//
// The suite is deliberately built on the standard library alone (go/ast,
// go/types, go/importer) rather than golang.org/x/tools, so the module
// keeps its zero-dependency property; the Analyzer/Pass/Diagnostic shape
// mirrors x/tools/go/analysis closely enough that porting onto it later
// is mechanical.
//
// Analyzers communicate with the source through a tiny annotation
// vocabulary (DESIGN.md §10):
//
//	//shef:hotpath        this function is a zero-alloc hot path
//	//shef:deterministic  this function is a determinism root
//	//shef:guarded        every caller gates this helper on Enabled()
//	//shef:ignore reason  suppress findings on this (or the next) line
//
// The driver is cmd/shefvet, runnable standalone (`shefvet ./...`) and as
// a `go vet -vettool` backend; CI runs it as a blocking lint job.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Version identifies the invariant suite; it is recorded in benchtab's
// JSON header so bench artifacts say which suite validated the run, and
// printed by the -V=full build-ID handshake with the go command. Bump it
// whenever an analyzer's verdict on unchanged source can change.
const Version = "shefvet-1.0.0"

// An Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name is the analyzer's identifier (lower-case, no spaces); findings
	// are prefixed with it and fixtures live in testdata/src/<Name>.
	Name string
	// Doc is the one-paragraph description `shefvet -list` prints.
	Doc string
	// Run reports the analyzer's findings through pass.Report.
	Run func(pass *Pass)
}

// A Pass carries one package's parsed and type-checked state through an
// analyzer run. The same Pass value is shared by every analyzer run on
// the package; analyzers must not mutate it.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// report receives the analyzer's findings (already filtered through
	// the //shef:ignore suppression map by Reportf).
	report func(Diagnostic)
	// ignored maps "file:line" to the suppression state for the package.
	ignored map[string]bool
}

// Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos unless the line (or the line above
// it) carries a //shef:ignore suppression.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.ignored[ignoreKey(position.Filename, position.Line)] {
		return
	}
	p.report(Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func ignoreKey(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}

// The annotation vocabulary. Annotations live in a function's doc
// comment (hotpath, deterministic, guarded) or on/above an offending
// line (ignore).
const (
	MarkHotpath       = "//shef:hotpath"
	MarkDeterministic = "//shef:deterministic"
	MarkGuarded       = "//shef:guarded"
	MarkIgnore        = "//shef:ignore"
)

// buildIgnoreMap scans every comment in the files for //shef:ignore
// markers. A marker suppresses findings on its own line and on the line
// directly below it (so both trailing comments and standalone
// comment-above style work). A marker with no reason is itself a
// finding: the vocabulary requires saying why.
func buildIgnoreMap(fset *token.FileSet, files []*ast.File, report func(Diagnostic)) map[string]bool {
	ignored := make(map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, strings.TrimPrefix(MarkIgnore, "//")) &&
					!strings.HasPrefix(text, MarkIgnore) {
					continue
				}
				rest := strings.TrimPrefix(text, MarkIgnore)
				if rest == text {
					continue // some other comment mentioning the marker
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(rest) == "" {
					report(Diagnostic{
						Pos:      pos,
						Analyzer: "shefvet",
						Message:  "//shef:ignore needs a reason (\"//shef:ignore why this is safe\")",
					})
					continue
				}
				ignored[ignoreKey(pos.Filename, pos.Line)] = true
				ignored[ignoreKey(pos.Filename, pos.Line+1)] = true
			}
		}
	}
	return ignored
}

// funcHasMark reports whether a function declaration's doc comment
// carries the given //shef: marker.
func funcHasMark(fn *ast.FuncDecl, mark string) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.HasPrefix(strings.TrimSpace(c.Text), mark) {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in reporting order. benchtab
// records the names in its JSON header; cmd/shefvet runs them.
func All() []*Analyzer {
	return []*Analyzer{
		HotpathAlloc,
		AtomicField,
		DetOrder,
		LockOrder,
		GuardedSite,
		ErrWrapCheck,
	}
}

// Names returns the suite's analyzer names, sorted.
func Names() []string {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

// RunAnalyzers runs the given analyzers over one type-checked package
// and returns the findings sorted by position.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) []Diagnostic {

	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	ignored := buildIgnoreMap(fset, files, report)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    files,
			Pkg:      pkg,
			Info:     info,
			report:   report,
			ignored:  ignored,
		}
		a.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}
