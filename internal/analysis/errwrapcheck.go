package analysis

import (
	"go/ast"
	"strings"
)

// ErrWrapCheck enforces typed-error discipline at the sdp and oram
// package boundaries: errors these packages return are classified by
// callers with errors.Is against the exported sentinels (ErrShardDown,
// ErrQuorumLost, ErrRejected, ErrGeometry, ...), so a raw errors.New or
// a fmt.Errorf without %w inside a function body creates an error no
// caller can classify — it silently falls out of the retry/fallback and
// health-accounting logic.
//
// Allowed forms:
//   - package-level `var ErrX = errors.New(...)`: the sentinel
//     definitions themselves;
//   - fmt.Errorf with a %w verb: wraps its cause;
//   - raw constructors passed directly to a same-package function
//     (reject(...), rejectf(...)): the package's own typed-error
//     constructors do the wrapping;
//   - fmt.Errorf with a non-literal format string (the constructor
//     helpers' pass-through; the helper's callers are still checked).
var ErrWrapCheck = &Analyzer{
	Name: "errwrapcheck",
	Doc:  "errors crossing the sdp/oram boundaries must wrap the typed sentinels",
	Run:  runErrWrapCheck,
}

// errwrapPackages names the packages under typed-error discipline.
var errwrapPackages = map[string]bool{"sdp": true, "oram": true}

func runErrWrapCheck(pass *Pass) {
	if !errwrapPackages[pass.Pkg.Name()] {
		return
	}
	for _, f := range pass.prodFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			withAncestors(fn.Body, func(n ast.Node, ancestors []ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				bad, what := rawErrorCtor(pass, call)
				if !bad || wrappedByLocalCtor(pass, ancestors) {
					return true
				}
				pass.Reportf(call.Pos(),
					"%s: %s crosses the %s boundary unclassified; wrap a typed sentinel (fmt.Errorf(\"...: %%w\", Err...)) or build it through the package's error constructors",
					fn.Name.Name, what, pass.Pkg.Name())
				return true
			})
		}
	}
}

// rawErrorCtor reports errors.New calls and fmt.Errorf calls whose
// literal format string has no %w verb.
func rawErrorCtor(pass *Pass, call *ast.CallExpr) (bad bool, what string) {
	fn := pass.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return false, ""
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		return true, "errors.New"
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if len(call.Args) == 0 {
			return false, ""
		}
		lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
		if !ok {
			return false, "" // non-literal format: a pass-through helper
		}
		if strings.Contains(lit.Value, "%w") {
			return false, ""
		}
		return true, "fmt.Errorf without %w"
	}
	return false, ""
}

// wrappedByLocalCtor reports whether the raw constructor is a direct
// argument of a same-package call — the package's own typed-error
// constructors (reject, rejectf, typed wrappers) are where wrapping is
// supposed to happen.
func wrappedByLocalCtor(pass *Pass, ancestors []ast.Node) bool {
	for i := len(ancestors) - 1; i >= 0; i-- {
		call, ok := ancestors[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		callee := pass.calleeFunc(call)
		if callee != nil && callee.Pkg() == pass.Pkg {
			return true
		}
	}
	return false
}
