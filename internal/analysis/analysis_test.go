package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestIgnoreNeedsReason checks the vocabulary rule the fixtures cannot
// express inline (a want comment after //shef:ignore would read as its
// reason): a bare suppression marker is itself a finding.
func TestIgnoreNeedsReason(t *testing.T) {
	src := `package p

func f(m map[string]int) int {
	total := 0
	//shef:ignore
	for _, v := range m {
		total += v
	}
	return total
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	ignored := buildIgnoreMap(fset, []*ast.File{f}, func(d Diagnostic) { diags = append(diags, d) })
	_ = ignored
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "shefvet" || !strings.Contains(diags[0].Message, "needs a reason") {
		t.Fatalf("unexpected diagnostic: %v", diags[0])
	}
	if diags[0].Pos.Line != 5 {
		t.Fatalf("diagnostic at line %d, want 5", diags[0].Pos.Line)
	}
}

// TestIgnoreWithReasonSuppresses checks that a reasoned marker covers
// its own line and the one below it, and nothing else.
func TestIgnoreWithReasonSuppresses(t *testing.T) {
	src := `package p

func f() {
	//shef:ignore collected then sorted
	_ = 1
	_ = 2
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	ignored := buildIgnoreMap(fset, []*ast.File{f}, func(d Diagnostic) { diags = append(diags, d) })
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	for line, want := range map[int]bool{4: true, 5: true, 6: false} {
		if got := ignored[ignoreKey("p.go", line)]; got != want {
			t.Errorf("line %d suppressed = %v, want %v", line, got, want)
		}
	}
}

func TestSuiteShape(t *testing.T) {
	if len(All()) < 6 {
		t.Fatalf("suite has %d analyzers, want at least 6", len(All()))
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("Names() not sorted/unique: %v", names)
		}
	}
	if !strings.HasPrefix(Version, "shefvet-") {
		t.Fatalf("Version %q does not identify the tool", Version)
	}
}
