package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// prodFiles returns the pass's non-test files. The invariants shefvet
// enforces are production-path properties; test files range over maps,
// build ad-hoc errors, and call instrumentation directly on purpose, so
// every analyzer scopes itself to the shipped code.
func (p *Pass) prodFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// calleeFunc resolves a call expression to the *types.Func it invokes,
// or nil for calls through function values, built-ins, and conversions.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := p.Info.Uses[id].(*types.Func)
	return fn
}

// calleePkgFunc returns (package name, function name) for a call that
// statically resolves to a named function, matching by the *package
// name* rather than import path so fixtures can model the real packages
// with local stand-ins.
func (p *Pass) calleePkgFunc(call *ast.CallExpr) (pkg, name string) {
	fn := p.calleeFunc(call)
	if fn == nil || fn.Pkg() == nil {
		return "", ""
	}
	return fn.Pkg().Name(), fn.Name()
}

// declKey names a function declaration uniquely within its package:
// "Func" for package functions, "Type.Method" for methods (pointer and
// value receivers collapse onto the type name).
func declKey(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers ("T[E]") index on the base type name.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name + "." + fn.Name.Name
	}
	return fn.Name.Name
}

// funcKey is declKey for a resolved *types.Func in the pass's package.
func funcKey(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// packageFuncs collects the production FuncDecls of the package, keyed
// by declKey.
func (p *Pass) packageFuncs() map[string]*ast.FuncDecl {
	funcs := make(map[string]*ast.FuncDecl)
	for _, f := range p.prodFiles() {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				funcs[declKey(fn)] = fn
			}
		}
	}
	return funcs
}

// callGraph builds the static intra-package call graph over funcs:
// edges[caller] lists the declKeys of same-package functions the caller
// invokes directly (calls through interfaces and function values are
// invisible, which is why determinism roots annotate the concrete
// entry points).
func (p *Pass) callGraph(funcs map[string]*ast.FuncDecl) map[string][]string {
	edges := make(map[string][]string)
	for key, fn := range funcs {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := p.calleeFunc(call)
			if callee == nil || callee.Pkg() != p.Pkg {
				return true
			}
			if k := funcKey(callee); k != key {
				edges[key] = append(edges[key], k)
			}
			return true
		})
	}
	return edges
}

// reachable returns the set of declKeys reachable from the given roots
// in the intra-package call graph (roots included).
func reachable(roots []string, edges map[string][]string) map[string]bool {
	seen := make(map[string]bool)
	stack := append([]string(nil), roots...)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[k] {
			continue
		}
		seen[k] = true
		stack = append(stack, edges[k]...)
	}
	return seen
}

// withAncestors walks root keeping the ancestor chain of each visited
// node; fn receives the node and its ancestors (outermost first).
func withAncestors(root ast.Node, fn func(n ast.Node, ancestors []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		stack = append(stack, n)
		if !descend {
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// isMapType reports whether t (after unaliasing) is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosingFuncLit returns the innermost *ast.FuncLit in ancestors, or
// nil if n is not inside a function literal.
func enclosingFuncLit(ancestors []ast.Node) *ast.FuncLit {
	for i := len(ancestors) - 1; i >= 0; i-- {
		if fl, ok := ancestors[i].(*ast.FuncLit); ok {
			return fl
		}
	}
	return nil
}
