package analysis

// This file is the suite's fixture harness: a small reimplementation of
// x/tools' analysistest on top of the standard library. Each analyzer
// has a fixture package under testdata/src/<name>/ whose sources carry
// `// want `<regex>`` comments on the lines where diagnostics are
// expected; the harness type-checks the fixture, runs the analyzer, and
// requires an exact bidirectional match — every diagnostic needs a
// want, every want needs a diagnostic.
//
// Fixture packages resolve imports GOPATH-style against testdata/src
// (so a fixture can model the real profiling/faultinject packages with
// local stand-ins — the analyzers match by package name, not import
// path) and fall back to the compiler's export data for the standard
// library, located once via `go list -export`.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestHotpathAllocFixture(t *testing.T) { runFixture(t, HotpathAlloc) }
func TestAtomicFieldFixture(t *testing.T)  { runFixture(t, AtomicField) }
func TestDetOrderFixture(t *testing.T)     { runFixture(t, DetOrder) }
func TestLockOrderFixture(t *testing.T)    { runFixture(t, LockOrder) }
func TestGuardedSiteFixture(t *testing.T)  { runFixture(t, GuardedSite) }
func TestErrWrapCheckFixture(t *testing.T) { runFixture(t, ErrWrapCheck) }

// stdFixtureImports are the standard-library packages fixtures may
// import; their (transitive) export data is located once per test run.
var stdFixtureImports = []string{
	"context", "errors", "fmt", "sort", "strings", "sync", "sync/atomic",
}

var stdExports = sync.OnceValues(func() (map[string]string, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, stdFixtureImports...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list for std export data: %v\n%s", err, stderr.String())
	}
	exports := make(map[string]string)
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
})

// fixtureImporter resolves fixture-local packages from source under
// srcRoot and everything else through the std export data.
type fixtureImporter struct {
	fset    *token.FileSet
	srcRoot string
	std     types.Importer
	cache   map[string]*types.Package
}

func newFixtureImporter(t *testing.T, fset *token.FileSet, srcRoot string) *fixtureImporter {
	t.Helper()
	exports, err := stdExports()
	if err != nil {
		t.Fatal(err)
	}
	std := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("fixture imports %q, which is not in stdFixtureImports", path)
		}
		return os.Open(file)
	})
	return &fixtureImporter{fset: fset, srcRoot: srcRoot, std: std, cache: make(map[string]*types.Package)}
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.cache[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(fi.srcRoot, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err == nil && st.IsDir() {
		files, err := parseFixtureDir(fi.fset, dir)
		if err != nil {
			return nil, err
		}
		conf := types.Config{Importer: fi}
		pkg, err := conf.Check(path, fi.fset, files, nil)
		if err != nil {
			return nil, fmt.Errorf("type-checking fixture dep %s: %v", path, err)
		}
		fi.cache[path] = pkg
		return pkg, nil
	}
	return fi.std.Import(path)
}

func parseFixtureDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		abs, err := filepath.Abs(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, abs, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no fixture sources in %s", dir)
	}
	return files, nil
}

// runFixture type-checks testdata/src/<name> and requires the
// analyzer's diagnostics to match the fixture's want comments exactly.
func runFixture(t *testing.T, a *Analyzer) {
	t.Helper()
	srcRoot := filepath.Join("testdata", "src")
	dir := filepath.Join(srcRoot, a.Name)
	fset := token.NewFileSet()
	files, err := parseFixtureDir(fset, dir)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{Importer: newFixtureImporter(t, fset, srcRoot)}
	pkg, err := conf.Check(a.Name, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", a.Name, err)
	}

	wants := collectWants(t, fset, files)
	diags := RunAnalyzers(fset, files, pkg, info, []*Analyzer{a})

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.used || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: no diagnostic matched want %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

type wantExpectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// collectWants parses `// want `<regex>` [`<regex>` ...]` comments; the
// expectation applies to diagnostics on the comment's own line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*wantExpectation {
	t.Helper()
	var wants []*wantExpectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(body, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(body, "want"))
				for rest != "" {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
					}
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s:%d: unquoting %q: %v", pos.Filename, pos.Line, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &wantExpectation{file: pos.Filename, line: pos.Line, re: re})
					rest = strings.TrimSpace(rest[len(q):])
				}
			}
		}
	}
	return wants
}
