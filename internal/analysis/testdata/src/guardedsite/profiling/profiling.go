// Package profiling is a fixture stand-in for the repo's
// internal/profiling switchboard; the analyzer matches instrumentation
// packages by name, so this local model exercises the same rules.
package profiling

import "context"

var enabled bool

func Enabled() bool { return enabled }

func Do(ctx context.Context, fn func(), labels ...string) { fn() }

func Region(labels ...string) func() { return func() {} }
