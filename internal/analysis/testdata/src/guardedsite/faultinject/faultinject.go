// Package faultinject is a fixture stand-in for the repo's
// internal/faultinject switchboard.
package faultinject

var on bool

func Enabled() bool { return on }

func Check(site string) error { return nil }

func WrapRW(site string, op func() error) error { return op() }
