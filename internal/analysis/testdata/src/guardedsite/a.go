package guardedsite

import (
	"context"

	"guardedsite/faultinject"
	"guardedsite/profiling"
)

func work() {}

func unguardedDo(ctx context.Context) {
	profiling.Do(ctx, work, "sdp", "seal") // want `unguardedDo: profiling\.Do call site is not behind profiling\.Enabled\(\)`
}

func unguardedRegion() {
	done := profiling.Region("cluster", "open") // want `unguardedRegion: profiling\.Region call site is not behind profiling\.Enabled\(\)`
	done()
}

func unguardedCheck() error {
	return faultinject.Check("sdp.read") // want `unguardedCheck: faultinject\.Check call site is not behind faultinject\.Enabled\(\)`
}

func guardedDo(ctx context.Context) {
	if profiling.Enabled() {
		profiling.Do(ctx, work, "sdp", "seal")
	}
}

func guardedCompound(ctx context.Context, deep bool) error {
	if deep && faultinject.Enabled() {
		if err := faultinject.Check("sdp.read"); err != nil {
			return err
		}
		return faultinject.WrapRW("sdp.write", func() error { return nil })
	}
	return nil
}

// wrongGuard gates a faultinject site on the *profiling* switch: the
// wrong switchboard is no guard at all.
func wrongGuard() error {
	if profiling.Enabled() {
		return faultinject.Check("sdp.read") // want `wrongGuard: faultinject\.Check call site is not behind faultinject\.Enabled\(\)`
	}
	return nil
}

// doOp fronts the per-op profiling span; every caller gates it on
// profiling.Enabled(), which is what the annotation promises.
//
//shef:guarded
func doOp(ctx context.Context, name string) {
	done := profiling.Region("cluster", name)
	defer done()
	profiling.Do(ctx, work, "cluster", name)
}

func callsHelperGuarded(ctx context.Context) {
	if profiling.Enabled() {
		doOp(ctx, "seal")
	}
}

func callsHelperUnguarded(ctx context.Context) {
	doOp(ctx, "open") // want `callsHelperUnguarded: call of //shef:guarded helper doOp is not behind profiling\.Enabled\(\)`
}
