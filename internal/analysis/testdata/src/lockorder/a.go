package lockorder

// The fixture models the repo's documented hierarchy with three ranked
// classes (see lockRanks in lockorder.go):
//
//	Cluster.mu (10) → Cluster.file (20) → Node.mu (30)

import "sync"

type Node struct {
	mu    sync.Mutex
	state int
}

type Cluster struct {
	mu    sync.RWMutex
	file  [4]sync.Mutex
	nodes []*Node
}

// goodOrder follows the documented outer→inner order, striped locks
// included.
func (c *Cluster) goodOrder(i int) {
	c.mu.Lock()
	c.file[i].Lock()
	c.nodes[0].mu.Lock()
	c.nodes[0].mu.Unlock()
	c.file[i].Unlock()
	c.mu.Unlock()
}

// goodRead uses the read side of the outer lock; same order, same rules.
func (c *Cluster) goodRead(n *Node) {
	c.mu.RLock()
	n.mu.Lock()
	n.state++
	n.mu.Unlock()
	c.mu.RUnlock()
}

// badDirect acquires the outer cluster lock while holding a node lock.
func (c *Cluster) badDirect(n *Node) {
	n.mu.Lock()
	c.mu.Lock() // want `badDirect: acquires lockorder\.Cluster\.mu \(rank 10\) while holding lockorder\.Node\.mu \(rank 30\)`
	c.mu.Unlock()
	n.mu.Unlock()
}

// badStripe acquires a striped file lock while holding a node lock.
func (c *Cluster) badStripe(n *Node, i int) {
	n.mu.Lock()
	c.file[i].Lock() // want `badStripe: acquires lockorder\.Cluster\.file \(rank 20\) while holding lockorder\.Node\.mu \(rank 30\)`
	c.file[i].Unlock()
	n.mu.Unlock()
}

// adminLock is a helper whose (transitive) summary acquires Cluster.mu.
func (c *Cluster) adminLock() {
	c.mu.Lock()
	c.mu.Unlock()
}

// badViaCall holds a node lock and calls a helper that acquires the
// outer lock: the inversion is indirect but just as real.
func (c *Cluster) badViaCall(n *Node) {
	n.mu.Lock()
	c.adminLock() // want `badViaCall: calls adminLock which acquires lockorder\.Cluster\.mu \(rank 10\) while holding lockorder\.Node\.mu \(rank 30\)`
	n.mu.Unlock()
}

// reLock double-acquires the same class: self-deadlock on a Mutex.
func (c *Cluster) reLock() {
	c.mu.Lock()
	c.mu.Lock() // want `reLock: acquires lockorder\.Cluster\.mu \(rank 10\) while holding lockorder\.Cluster\.mu \(rank 10\)`
	c.mu.Unlock()
	c.mu.Unlock()
}

// lockNode is an inner-lock helper.
func lockNode(n *Node) {
	n.mu.Lock()
	n.state++
	n.mu.Unlock()
}

// goodViaCall holds the outer lock and calls into the inner helper:
// exactly the documented order.
func (c *Cluster) goodViaCall(n *Node) {
	c.mu.Lock()
	lockNode(n)
	c.mu.Unlock()
}

// sequential releases before re-acquiring: never holds two at once.
func (c *Cluster) sequential(n *Node) {
	n.mu.Lock()
	n.state++
	n.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// fileLock is a lock getter: it hands out a pointer to a classified
// striped lock, so locals assigned from it carry the Cluster.file class.
func (c *Cluster) fileLock(i int) *sync.Mutex {
	return &c.file[i%len(c.file)]
}

// goodGetter acquires through the getter in documented order.
func (c *Cluster) goodGetter(n *Node, i int) {
	mu := c.fileLock(i)
	mu.Lock()
	n.mu.Lock()
	n.mu.Unlock()
	mu.Unlock()
}

// badGetter holds a node lock and acquires the striped file lock
// through the getter-derived local: same inversion as badStripe.
func (c *Cluster) badGetter(n *Node, i int) {
	n.mu.Lock()
	mu := c.fileLock(i)
	mu.Lock() // want `badGetter: acquires lockorder\.Cluster\.file \(rank 20\) while holding lockorder\.Node\.mu \(rank 30\)`
	mu.Unlock()
	n.mu.Unlock()
}

// unclassified locks (not in the rank table) are ignored entirely.
type scratch struct {
	mu sync.Mutex
}

func (s *scratch) local(c *Cluster) {
	s.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	s.mu.Unlock()
}
