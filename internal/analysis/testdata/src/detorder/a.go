package detorder

import (
	"sort"
	"sync"
)

type table struct {
	rows map[string]int
	out  []string
}

// Flush is a determinism root: its observable output order is part of
// the contract.
//
//shef:deterministic
func (t *table) Flush() []string {
	t.out = t.out[:0]
	for name := range t.rows { // want `Flush: range over a map in a deterministic path`
		t.out = append(t.out, name)
	}
	t.gather()
	return t.out
}

// gather is reachable from Flush, so it is checked too; the collect-
// then-sort idiom carries the suppression with its reason.
func (t *table) gather() []string {
	names := make([]string, 0, len(t.rows))
	//shef:ignore keys are collected then sorted before any ordered use
	for name := range t.rows {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

//shef:deterministic
func drain(a, b chan int) int {
	select { // want `drain: select with 2 communication cases in a deterministic path`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// tryRecv is fine: one communication case plus default never races two
// ready channels against each other.
//
//shef:deterministic
func tryRecv(a chan int) (int, bool) {
	select {
	case v := <-a:
		return v, true
	default:
		return 0, false
	}
}

//shef:deterministic
func scatter(inputs []int) []int {
	var out []int
	var wg sync.WaitGroup
	for _, v := range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, v*2) // want `scatter: goroutine appends to out captured from the enclosing function`
		}()
	}
	wg.Wait()
	return out
}

// gatherInto is fine: the append target is indexed per goroutine, and
// local appends inside the closure stay inside it.
//
//shef:deterministic
func gatherInto(inputs []int) []int {
	out := make([]int, len(inputs))
	var wg sync.WaitGroup
	for i, v := range inputs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var local []int
			local = append(local, v*2)
			out[i] = local[0]
		}()
	}
	wg.Wait()
	return out
}

// unrooted is not reachable from any //shef:deterministic root: map
// ranges are fine here.
func unrooted(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
