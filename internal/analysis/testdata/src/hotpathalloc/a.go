package hotpathalloc

import "fmt"

type state struct {
	buf [64]byte
	n   int
}

type coldErr struct{ n int }

func (e *coldErr) Error() string { return "bad state" }

type sink interface{ Put(int) }

func work(s *state)    {}
func release(s *state) {}
func consume(w sink, v any) {
	_ = v
}

//shef:hotpath
func hotBad(s *state, w sink, name string) {
	go work(s)            // want `hotBad: go statement in a hot path`
	defer release(s)      // want `hotBad: defer in a hot path allocates`
	f := func() { s.n++ } // want `hotBad: closure captures outer variables`
	f()
	_ = []int{1, 2}            // want `hotBad: slice literal allocates`
	_ = map[string]int{"x": 1} // want `hotBad: map literal allocates`
	p := &state{n: 1}          // want `hotBad: &composite literal escapes to the heap`
	_ = p
	q := new(state) // want `hotBad: new allocates`
	_ = q
	b := make([]byte, 8) // want `hotBad: make allocates`
	_ = b
	_ = any(s.n)      // want `hotBad: conversion to interface`
	c := []byte(name) // want `hotBad: string<->\[\]byte conversion copies`
	_ = c
	_ = fmt.Sprintf("%d", s.n) // want `hotBad: fmt call allocates`
	consume(w, s.n)            // want `hotBad: concrete int boxed into interface`
}

//shef:hotpath
func hotGood(s *state, w sink) int {
	// Value struct literals, arithmetic, array indexing, non-capturing
	// closures, pointer/constant interface arguments: all allocation-free.
	v := state{n: s.n}
	v.n += int(s.buf[0])
	double := func(x int) int { return x * 2 }
	consume(w, 42) // constants are interned, not boxed at runtime
	consume(w, s)  // pointers fit the iface data word
	return double(v.n)
}

//shef:hotpath
func hotColdBranch(s *state) error {
	if s.n < 0 {
		return &coldErr{n: s.n} //shef:ignore cold validation branch, never taken per-op
	}
	return nil
}

// notHot is unmarked: the same constructs are fine outside a hot path.
func notHot(s *state) []byte {
	defer release(s)
	out := make([]byte, 0, s.n)
	return append(out, s.buf[:]...)
}
