package atomicfield

import "sync/atomic"

type counters struct {
	hits  uint64
	cold  uint64
	lanes [4]uint64
}

func (c *counters) bump(i int) {
	atomic.AddUint64(&c.hits, 1)
	atomic.AddUint64(&c.lanes[i], 1)
}

// snapshot reads a field the write side touches atomically: a race.
func (c *counters) snapshot() uint64 {
	return c.hits // want `field hits is accessed with sync/atomic elsewhere`
}

// store writes a field the other side loads atomically: same race.
func (c *counters) reset() {
	c.hits = 0 // want `field hits is accessed with sync/atomic elsewhere`
}

// lane hits the striped-array form of the same mistake.
func (c *counters) lane(i int) uint64 {
	return c.lanes[i] // want `field lanes is accessed with sync/atomic elsewhere`
}

// coldTouch is fine: cold is never accessed atomically anywhere.
func (c *counters) coldTouch() uint64 {
	c.cold++
	return c.cold
}

// atomicRead is the legitimate access form.
func (c *counters) atomicRead() uint64 {
	return atomic.LoadUint64(&c.hits)
}
