// The fixture package is named sdp: errwrapcheck keys its applicability
// off the package name so the testdata model is under the same
// discipline as the real boundary package.
package sdp

import (
	"errors"
	"fmt"
)

// Package-level sentinels are the allowed definition form.
var (
	ErrShardDown  = errors.New("sdp: shard down")
	ErrQuorumLost = errors.New("sdp: quorum lost")
)

// reject is the package's typed-error constructor: raw constructors
// passed directly into it are where wrapping happens.
func reject(op string, err error) error {
	return fmt.Errorf("sdp: %s: %w", op, err)
}

// passthrough forwards a caller-supplied format: non-literal formats
// are not checkable here, the helper's callers are checked instead.
func passthrough(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}

func openShard(name string) error {
	return errors.New("no such shard: " + name) // want `openShard: errors\.New crosses the sdp boundary unclassified`
}

func sealFile(name string) error {
	return fmt.Errorf("seal %q failed", name) // want `sealFile: fmt\.Errorf without %w crosses the sdp boundary unclassified`
}

func wrapOK(name string) error {
	return fmt.Errorf("open %q: %w", name, ErrShardDown)
}

func ctorOK(name string) error {
	return reject("open", errors.New("no quorum for "+name))
}

func suppressedOK(name string) error {
	return errors.New("scratch diagnostics for " + name) //shef:ignore debug-only helper, never crosses the API boundary
}
