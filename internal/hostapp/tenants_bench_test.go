package hostapp

import (
	"errors"
	"net"
	"sort"
	"sync"
	"testing"
	"time"

	"shef/internal/attest"
)

// BenchmarkTenantFairness measures how much throughput a well-behaved
// tenant keeps when a noisy neighbour floods a saturated server:
// real-tenant-fairness-x = victim ops/sec under flood / victim ops/sec
// alone. Both ends run on the same host in the same process, so the
// ratio is host-relative; benchtab -check floors it at 0.25 — below
// that, the weighted-fair admission gate is no longer protecting
// victims from noisy neighbours.
func BenchmarkTenantFairness(b *testing.B) {
	srv, _ := overloadServer(b, ServerConfig{
		MaxSessions: 4,
		MaxQueue:    4,
		TenantFair:  true,
		RetryAfter:  time.Millisecond,
	})
	defer srv.Shutdown(5 * time.Second)
	srv.vendor.Zones = &slowZones{ZoneHandler: srv.Tenants(), delay: time.Millisecond}
	addr := srv.Addr().String()

	victimOp := func() error {
		for try := 0; try < 100; try++ {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return err
			}
			err = attest.CreateZone(conn, "victim", 0)
			conn.Close()
			if !errors.Is(err, attest.ErrBusy) {
				return err
			}
			time.Sleep(time.Millisecond)
		}
		return errors.New("victim starved: every retry came back busy")
	}

	// One trial is 30 sequential victim ops; a rate is the median of
	// three trials, which damps scheduler noise enough that the 0.25
	// floor gates fairness rather than host jitter.
	const ops = 30
	trial := func() float64 {
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := victimOp(); err != nil {
				b.Fatal(err)
			}
		}
		return float64(ops) / time.Since(start).Seconds()
	}
	measure := func() float64 {
		rates := []float64{trial(), trial(), trial()}
		sort.Float64s(rates)
		return rates[1]
	}

	rateAlone := measure()

	stop := make(chan struct{})
	var flood sync.WaitGroup
	for i := 0; i < 4; i++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				_ = attest.CreateZone(conn, "hog", 0)
				conn.Close()
			}
		}()
	}
	rateFlooded := measure()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := victimOp(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	flood.Wait()

	fairness := rateFlooded / rateAlone
	b.ReportMetric(fairness, "real-tenant-fairness-x")
	b.Logf("victim: %.0f ops/sec alone, %.0f ops/sec under flood → %.2fx retained", rateAlone, rateFlooded, fairness)
}
