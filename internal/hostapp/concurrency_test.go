package hostapp

import (
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"shef/internal/accel"
)

// TestTwoSimultaneousOwnerSessions runs two complete Data Owner builds —
// registration, bitstream fetch, host-proxied attestation, provisioning,
// and a shielded execution — against one VendorServer at the same time:
// the shefd serving topology under -race.
func TestTwoSimultaneousOwnerSessions(t *testing.T) {
	opts := Options{Design: "bitcoin", Params: map[string]string{"difficulty": "8"}}
	vendor, product, err := BuildVendor(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewVendorServer(vendor, ln)
	go srv.Serve(nil)
	defer srv.Shutdown(time.Second)

	dial := DialFunc(func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", srv.Addr().String())
	})

	const owners = 2
	var wg sync.WaitGroup
	errs := make([]error, owners)
	for i := 0; i < owners; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opts
			o.Serial = "f1-sim-owner" + string(rune('A'+i))
			p, err := BuildAgainstVendor(o, product, dial, nil)
			if err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = p.Run(int64(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("owner %d: %v", i, err)
		}
	}
	if st := srv.Stats(); st.Served == 0 || st.Failed != 0 {
		t.Fatalf("server stats = %+v", st)
	}
}

// TestPoolConcurrentRuns multiplexes more simultaneous workloads than the
// pool has platforms: runs beyond the fleet size must queue, none may
// interleave on one device.
func TestPoolConcurrentRuns(t *testing.T) {
	pool, err := NewPool(Options{
		Design: "vecadd",
		Params: map[string]string{"bytes": "16384"},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 2 {
		t.Fatalf("pool size = %d", pool.Size())
	}
	const runs = 6
	var wg sync.WaitGroup
	errs := make([]error, runs)
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pool.Run(int64(i))
			if err == nil && res.Cycles == 0 {
				err = errors.New("run accounted no simulated time")
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}
}

// TestServerGracefulShutdownDrains starts a session, shuts the server
// down, and checks the in-flight session still completes inside the drain
// window.
func TestServerGracefulShutdownDrains(t *testing.T) {
	opts := Options{Design: "bitcoin", Params: map[string]string{"difficulty": "8"}}
	vendor, product, err := BuildVendor(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewVendorServer(vendor, ln)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(nil) }()

	dial := DialFunc(func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", srv.Addr().String())
	})
	buildDone := make(chan error, 1)
	go func() {
		_, err := BuildAgainstVendor(opts, product, dial, nil)
		buildDone <- err
	}()
	// Let the build open its first connection, then begin shutdown.
	time.Sleep(50 * time.Millisecond)
	if err := srv.Shutdown(10 * time.Second); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	// The build may have lost its *next* dial (listener closed) — that is
	// expected during shutdown — but it must not hang.
	select {
	case <-buildDone:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight build hung across shutdown")
	}
}

// TestAccelVariantsStillRegistered guards the designs the pool tests rely
// on (a rename would fail the tests above confusingly).
func TestAccelVariantsStillRegistered(t *testing.T) {
	found := map[string]bool{}
	for _, d := range accel.Designs() {
		found[d] = true
	}
	for _, want := range []string{"vecadd", "bitcoin"} {
		if !found[want] {
			t.Fatalf("design %q missing from registry", want)
		}
	}
}

// TestPoolRunsUseStreamingDataPath asserts the serving tier's workloads
// actually ride the Shield's pipelined burst engine: a pooled vecadd run
// must report streamed chunks and stream windows in every vector region.
func TestPoolRunsUseStreamingDataPath(t *testing.T) {
	pool, err := NewPool(Options{
		Design: "vecadd",
		Params: map[string]string{"bytes": "65536"},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.Run(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Report.Regions) == 0 {
		t.Fatal("no region report")
	}
	var streamed, windows uint64
	for _, r := range res.Report.Regions {
		streamed += r.Streamed
		windows += r.StreamWindows
	}
	if streamed == 0 || windows == 0 {
		t.Fatalf("pool run moved no streamed chunks (streamed=%d windows=%d)", streamed, windows)
	}
	if windows >= streamed {
		t.Fatalf("windows (%d) should batch multiple chunks (%d)", windows, streamed)
	}
}
