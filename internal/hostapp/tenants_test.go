package hostapp

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"shef/internal/attest"
)

// dialZone runs one zone RPC on a fresh connection (each owner connection
// carries exactly one request).
func dialZone(t testing.TB, addr string, op func(net.Conn) error) error {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	return op(conn)
}

// TestZoneRPCRoundtrip drives the tenant zone lifecycle over the wire:
// creates within quota succeed, the over-quota create comes back with the
// server's typed error text, the distinct-tenant cap refuses a third
// tenant, and destroy releases the budget for reuse.
func TestZoneRPCRoundtrip(t *testing.T) {
	srv, _ := overloadServer(t, ServerConfig{
		MaxTenants:       2,
		TenantQuotaBytes: 1 << 20,
	})
	defer srv.Shutdown(time.Second)
	addr := srv.Addr().String()

	if err := dialZone(t, addr, func(c net.Conn) error {
		return attest.CreateZone(c, "acme", 512<<10)
	}); err != nil {
		t.Fatalf("first zone: %v", err)
	}
	// Over quota: the server's *TenantQuotaError text crosses the wire.
	err := dialZone(t, addr, func(c net.Conn) error {
		return attest.CreateZone(c, "acme", 768<<10)
	})
	if err == nil || !strings.Contains(err.Error(), `tenant "acme" quota exceeded`) {
		t.Fatalf("over-quota create: got %v, want tenant quota error text", err)
	}
	// Second tenant fits; a third distinct tenant hits the cap.
	if err := dialZone(t, addr, func(c net.Conn) error {
		return attest.CreateZone(c, "globex", 1<<10)
	}); err != nil {
		t.Fatalf("second tenant: %v", err)
	}
	err = dialZone(t, addr, func(c net.Conn) error {
		return attest.CreateZone(c, "initech", 1<<10)
	})
	if err == nil || !strings.Contains(err.Error(), "tenant limit") {
		t.Fatalf("third tenant: got %v, want tenant limit error", err)
	}
	// The stats endpoint sees the zone rows.
	waitFor(t, "tenant rows", func() bool { return len(srv.Stats().Tenants) >= 2 })
	rows := srv.Stats().Tenants
	byName := map[string]TenantStats{}
	for _, r := range rows {
		byName[r.Tenant] = r
	}
	if byName["acme"].Zones != 1 || byName["acme"].ZoneBytes != 512<<10 {
		t.Fatalf("acme row = %+v", byName["acme"])
	}
	if byName["acme"].QuotaBytes != 1<<20 {
		t.Fatalf("acme quota = %d, want %d", byName["acme"].QuotaBytes, 1<<20)
	}
	// Destroy frees the budget: the once-refused create now fits.
	if err := dialZone(t, addr, func(c net.Conn) error {
		return attest.DestroyZone(c, "acme")
	}); err != nil {
		t.Fatalf("destroy: %v", err)
	}
	if err := dialZone(t, addr, func(c net.Conn) error {
		return attest.CreateZone(c, "acme", 768<<10)
	}); err != nil {
		t.Fatalf("create after destroy: %v", err)
	}
}

// TestTenantRegistryTypedErrors pins the errors.Is/As contracts callers
// branch on.
func TestTenantRegistryTypedErrors(t *testing.T) {
	r := NewTenantRegistry(1, 100)
	if err := r.CreateZone("a", 60); err != nil {
		t.Fatal(err)
	}
	err := r.CreateZone("a", 60)
	if !errors.Is(err, ErrTenantQuota) {
		t.Fatalf("over-quota: got %v, want ErrTenantQuota", err)
	}
	var qe *TenantQuotaError
	if !errors.As(err, &qe) || qe.Tenant != "a" || qe.Need != 60 || qe.Used != 60 || qe.Limit != 100 {
		t.Fatalf("quota error detail = %+v", qe)
	}
	if err := r.CreateZone("b", 1); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("over-limit: got %v, want ErrTenantLimit", err)
	}
	if err := r.DestroyZone("b"); err == nil {
		t.Fatal("destroying a zoneless tenant must fail")
	}
}

// slowZones delays zone creates so each RPC pins a session slot long
// enough for admission pressure to build.
type slowZones struct {
	attest.ZoneHandler
	delay time.Duration
}

func (s *slowZones) CreateZone(tenant string, bytes uint64) error {
	time.Sleep(s.delay)
	return s.ZoneHandler.CreateZone(tenant, bytes)
}

// TestNoisyNeighborFairness floods the server from one tenant while
// well-behaved tenants issue sequential requests, and asserts the
// weighted-fair gate keeps the victims' tail latency bounded: every
// victim request completes (with bounded busy-retries) and the shed
// count lands on the flooder, not the victims.
func TestNoisyNeighborFairness(t *testing.T) {
	srv, _ := overloadServer(t, ServerConfig{
		MaxSessions: 4,
		MaxQueue:    4,
		TenantFair:  true,
		RetryAfter:  time.Millisecond,
	})
	defer srv.Shutdown(5 * time.Second)
	// Each zone create holds its slot ~2ms so the flood saturates.
	srv.vendor.Zones = &slowZones{ZoneHandler: srv.Tenants(), delay: 2 * time.Millisecond}
	addr := srv.Addr().String()

	stop := make(chan struct{})
	var flood sync.WaitGroup
	// The hog: 8 connections' worth of continuous zone traffic against a
	// 4-slot server.
	for i := 0; i < 8; i++ {
		flood.Add(1)
		go func() {
			defer flood.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				conn, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				_ = attest.CreateZone(conn, "hog", 0)
				conn.Close()
			}
		}()
	}

	// Victims: three tenants, sequential requests, retrying on busy.
	const victims, opsPerVictim, maxRetries = 3, 20, 50
	latencies := make([][]time.Duration, victims)
	var victimErr atomic.Value
	var wg sync.WaitGroup
	for v := 0; v < victims; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			tenant := fmt.Sprintf("victim-%d", v)
			for op := 0; op < opsPerVictim; op++ {
				start := time.Now()
				var err error
				for try := 0; try < maxRetries; try++ {
					err = dialZone(t, addr, func(c net.Conn) error {
						return attest.CreateZone(c, tenant, 0)
					})
					if !errors.Is(err, attest.ErrBusy) {
						break
					}
					time.Sleep(time.Millisecond)
				}
				if err != nil {
					victimErr.Store(fmt.Errorf("%s op %d: %w", tenant, op, err))
					return
				}
				latencies[v] = append(latencies[v], time.Since(start))
			}
		}(v)
	}
	wg.Wait()
	close(stop)
	flood.Wait()
	if err, _ := victimErr.Load().(error); err != nil {
		t.Fatalf("victim starved under flood: %v", err)
	}

	var all []time.Duration
	for _, ls := range latencies {
		all = append(all, ls...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	// Bounded, not tight: CI boxes are noisy, but an unfair gate leaves
	// victims queue-starved for the flood's whole duration (seconds).
	if p99 > 2*time.Second {
		t.Fatalf("victim p99 latency %v under flood, want bounded", p99)
	}

	rows := srv.Stats().Tenants
	byName := map[string]TenantStats{}
	for _, r := range rows {
		byName[r.Tenant] = r
	}
	if byName["hog"].Shed == 0 {
		t.Fatalf("flooder was never shed: %+v", rows)
	}
	for v := 0; v < victims; v++ {
		name := fmt.Sprintf("victim-%d", v)
		if byName[name].Served != opsPerVictim {
			t.Fatalf("%s served = %d, want %d", name, byName[name].Served, opsPerVictim)
		}
	}
}
