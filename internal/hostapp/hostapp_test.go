package hostapp

import (
	"bytes"
	"io"
	mrand "math/rand"
	"net"
	"testing"

	"shef/internal/accel"
	"shef/internal/attest"
	"shef/internal/crypto/keywrap"
	"shef/internal/fpga"
)

// TestEndToEndWorkflow assembles the complete ShEF deployment for a real
// accelerator and runs it: manufacturing, secure boot, Shell load,
// bitstream fetch, remote attestation (host-proxied), accelerator load,
// Shield provisioning, and a verified shielded execution.
func TestEndToEndWorkflow(t *testing.T) {
	p, err := Build(Options{
		Design:  "vecadd",
		Params:  map[string]string{"bytes": "65536"},
		Variant: accel.V128x16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Kernel.Device().PartialLoaded() {
		t.Fatal("accelerator not programmed")
	}
	if !p.Shield.Provisioned() {
		t.Fatal("shield not provisioned")
	}
	res, err := p.Run(1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 {
		t.Fatal("no simulated time accounted")
	}
	// The Shell saw traffic, all of it ciphertext (checked elsewhere); the
	// device fabric holds the design.
	if p.Shell.SnoopedBytes() == 0 {
		t.Fatal("no traffic crossed the shell")
	}
}

// TestEndToEndOverTCP runs the Data Owner / vendor split across a real TCP
// loopback connection — the two-process topology of cmd/shefd + cmd/shefctl.
func TestEndToEndOverTCP(t *testing.T) {
	opts := Options{
		Design: "bitcoin",
		Params: map[string]string{"difficulty": "8"},
	}
	vendor, product, err := BuildVendor(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				vendor.HandleOwner(c)
				c.Close()
			}()
		}
	}()
	dial := DialFunc(func() (io.ReadWriteCloser, error) {
		return net.Dial("tcp", ln.Addr().String())
	})
	p, err := BuildAgainstVendor(opts, product, dial, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(2); err != nil {
		t.Fatal(err)
	}
}

// TestWorkflowRejectsUnregisteredDevice: if the manufacturer never
// registered the device key, attestation must fail and the build abort.
func TestWorkflowRejectsUnregisteredDevice(t *testing.T) {
	opts := Options{Design: "bitcoin", Params: map[string]string{"difficulty": "8"}}
	vendor, product, err := BuildVendor(opts)
	if err != nil {
		t.Fatal(err)
	}
	// Empty the CA so the device registration never lands.
	vendor.CA = attest.NewCA()
	dial := LocalDial(vendor)
	// Pass registerWith as a *different* vendor so the real one never
	// learns the key.
	decoy := &attest.Vendor{CA: attest.NewCA()}
	if _, err := BuildAgainstVendor(opts, product, dial, decoy); err == nil {
		t.Fatal("build succeeded with an unregistered device")
	}
}

// TestWorkflowMonitoring: tamper after deployment clears the fabric.
func TestWorkflowMonitoring(t *testing.T) {
	p, err := Build(Options{Design: "bitcoin", Params: map[string]string{"difficulty": "8"}})
	if err != nil {
		t.Fatal(err)
	}
	if ev := p.MonitorOnce(); len(ev) != 0 {
		t.Fatal("clean platform reported tamper")
	}
	p.Kernel.Device().OpenPort(fpga.PortJTAG)
	if ev := p.MonitorOnce(); len(ev) != 1 {
		t.Fatalf("tamper not detected: %v", ev)
	}
	if p.Kernel.Device().PartialLoaded() {
		t.Fatal("fabric not cleared after tamper")
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Build(Options{}); err == nil {
		t.Fatal("build without a design succeeded")
	}
	if _, err := Build(Options{Design: "unknown-thing"}); err == nil {
		t.Fatal("build with unknown design succeeded")
	}
}

// TestAllDesignsThroughFullWorkflow builds and runs every registered
// design through the complete workflow (small parameters).
func TestAllDesignsThroughFullWorkflow(t *testing.T) {
	paramsFor := map[string]map[string]string{
		"vecadd":    {"bytes": "32768"},
		"matmul":    {"n": "128"},
		"conv":      {"cin": "8", "cout": "16"},
		"digitrec":  {"train": "2048", "tests": "32"},
		"affine":    {"dim": "64"},
		"dnnweaver": {"batch": "4"},
		"bitcoin":   {"difficulty": "8"},
	}
	for _, design := range accel.Designs() {
		design := design
		t.Run(design, func(t *testing.T) {
			t.Parallel()
			p, err := Build(Options{Design: design, Params: paramsFor[design]})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(3); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPlatformShellSeesOnlyCiphertext is the platform-level secrecy check:
// a marker planted in the workload inputs never crosses the Shell or lands
// in DRAM in the clear.
func TestPlatformShellSeesOnlyCiphertext(t *testing.T) {
	p, err := Build(Options{
		Design: "vecadd",
		Params: map[string]string{"bytes": "32768"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(4); err != nil {
		t.Fatal(err)
	}
	// Reproduce the exact input bytes the harness generated for seed 4 and
	// look for any 64-byte window of them in device memory.
	inputs := p.Workload.Inputs(newSeededRand(4))
	dump, err := p.Shell.Device().DRAM.RawRead(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	for name, img := range inputs {
		if len(img) < 64 {
			continue
		}
		if bytesContains(dump, img[:64]) {
			t.Fatalf("plaintext of region %q found in device DRAM", name)
		}
	}
}

func newSeededRand(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

func bytesContains(hay, needle []byte) bool { return bytes.Contains(hay, needle) }

// TestPlatformPMACVariant exercises the full workflow with the PMAC
// engine variant end to end.
func TestPlatformPMACVariant(t *testing.T) {
	p, err := Build(Options{
		Design:  "dnnweaver",
		Params:  map[string]string{"batch": "4"},
		Variant: accel.V128x16PMAC,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Manifest.Shield.Regions[0].MAC.String() != "PMAC" {
		t.Fatal("PMAC variant not reflected in the compiled bitstream")
	}
	if _, err := p.Run(5); err != nil {
		t.Fatal(err)
	}
}

// TestPlatformReprovisionRotatesKeys: a second Load Key provisioning (new
// Data Owner session) replaces the session state and still serves traffic.
func TestPlatformReprovisionRotatesKeys(t *testing.T) {
	p, err := Build(Options{Design: "vecadd", Params: map[string]string{"bytes": "16384"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(6); err != nil {
		t.Fatal(err)
	}
	// New session: fresh DEK wrapped to the same shield key.
	newDEK := bytes.Repeat([]byte{0x99}, 32)
	shieldPriv, _ := p.Manifest.ShieldKey()
	lk, err := keywrap.Wrap(&shieldPriv.PublicKey, newDEK, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Shield.ProvisionLoadKey(lk); err != nil {
		t.Fatal(err)
	}
	p.DEK = newDEK
	if _, err := p.Run(7); err != nil {
		t.Fatalf("run after key rotation failed: %v", err)
	}
}
