package hostapp

import (
	"errors"
	"fmt"
	"sync"

	"shef/internal/accel"
	"shef/internal/attest"
)

// Pool is a fleet of fully provisioned Platforms multiplexing concurrent
// end-to-end runs over many simulated devices — the "millions of users"
// deployment shape: one vendor offering, N attested FPGA instances, each
// with its own Shield session, serving Data Owner workloads in parallel.
type Pool struct {
	vendor  *attest.Vendor
	product string

	free chan *Platform
	all  []*Platform
}

// NewPool stands up one vendor and builds n independent platforms against
// it, each on its own device (distinct serials, separately attested and
// provisioned). Platforms build on separate goroutines: device
// provisioning does real RSA keygen, so fleet bring-up is the first place
// the pool's parallelism pays off.
func NewPool(opts Options, n int) (*Pool, error) {
	if n < 1 {
		return nil, errors.New("hostapp: pool needs at least one platform")
	}
	if err := opts.fill(); err != nil {
		return nil, err
	}
	vendor, product, err := BuildVendor(opts)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		vendor:  vendor,
		product: product,
		free:    make(chan *Platform, n),
		all:     make([]*Platform, n),
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opts
			o.Serial = fmt.Sprintf("%s-pool%02d", opts.Serial, i)
			plat, err := BuildAgainstVendor(o, product, LocalDial(vendor), vendor)
			if err != nil {
				errs[i] = fmt.Errorf("hostapp: pool platform %d: %w", i, err)
				return
			}
			p.all[i] = plat
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for _, plat := range p.all {
		p.free <- plat
	}
	return p, nil
}

// Size reports the fleet size.
func (p *Pool) Size() int { return len(p.all) }

// Acquire checks a platform out of the pool, blocking until one is free.
// Callers must Release it.
func (p *Pool) Acquire() *Platform { return <-p.free }

// Release returns a platform to the pool.
func (p *Pool) Release(plat *Platform) { p.free <- plat }

// Run executes the workload on the next free platform — the serving path a
// request-per-goroutine frontend would use. Concurrent Run calls proceed
// on distinct devices in parallel up to the pool size, then queue.
func (p *Pool) Run(seed int64) (accel.RunResult, error) {
	plat := p.Acquire()
	defer p.Release(plat)
	return plat.Run(seed)
}

// Vendor exposes the shared vendor (e.g. to serve it over TCP as well).
func (p *Pool) Vendor() (*attest.Vendor, string) { return p.vendor, p.product }
