package hostapp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Typed tenant-lifecycle errors. Callers branch with errors.Is; the
// concrete *TenantQuotaError carries the tenant identity for logs.
var (
	// ErrTenantQuota marks a zone request that would exceed the tenant's
	// byte quota.
	ErrTenantQuota = errors.New("hostapp: tenant quota exceeded")
	// ErrTenantLimit marks a zone request that would exceed the server's
	// distinct-tenant cap.
	ErrTenantLimit = errors.New("hostapp: tenant limit reached")
)

// TenantQuotaError reports which tenant asked for how much.
type TenantQuotaError struct {
	Tenant string
	Need   uint64
	Used   uint64
	Limit  uint64
}

func (e *TenantQuotaError) Error() string {
	return fmt.Sprintf("hostapp: tenant %q quota exceeded: need %d bytes, %d of %d in use",
		e.Tenant, e.Need, e.Used, e.Limit)
}

func (e *TenantQuotaError) Unwrap() error { return ErrTenantQuota }

// tenantState is one tenant's serving-tier bookkeeping.
type tenantState struct {
	zoneBytes uint64
	zones     int
	weight    int
	active    int // sessions in flight
	served    uint64
	shed      uint64
}

// TenantRegistry is the serving tier's tenant table: zone footprints
// against per-tenant quotas, live-session counts for the weighted-fair
// admission gate, and per-tenant served/shed counters. It implements
// attest.ZoneHandler so zone-create/zone-destroy RPCs land on the same
// bookkeeping the admission gate reads. Safe for concurrent use.
type TenantRegistry struct {
	mu         sync.Mutex
	maxTenants int
	quotaBytes uint64
	tenants    map[string]*tenantState
}

// NewTenantRegistry builds a registry capping distinct tenants at
// maxTenants and each tenant's zone footprint at quotaBytes (0 = either
// bound unlimited).
func NewTenantRegistry(maxTenants int, quotaBytes uint64) *TenantRegistry {
	return &TenantRegistry{
		maxTenants: maxTenants,
		quotaBytes: quotaBytes,
		tenants:    make(map[string]*tenantState),
	}
}

// state returns (creating if needed) a tenant's row. Callers hold r.mu;
// the distinct-tenant cap is the caller's concern (only zone creation
// enforces it — sessions from unknown tenants still serve).
func (r *TenantRegistry) state(tenant string) *tenantState {
	s, ok := r.tenants[tenant]
	if !ok {
		s = &tenantState{weight: 1}
		r.tenants[tenant] = s
	}
	return s
}

// CreateZone admits a zone of the given footprint for tenant, enforcing
// the distinct-tenant cap (ErrTenantLimit) and the per-tenant byte quota
// (*TenantQuotaError, errors.Is ErrTenantQuota).
func (r *TenantRegistry) CreateZone(tenant string, bytes uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.state(tenant)
	if s.zones == 0 && r.maxTenants > 0 {
		// The cap counts zone-holders, not sessions: a tenant whose
		// sessions have been seen but who holds no zones is still "new"
		// for admission purposes.
		holders := 0
		for _, t := range r.tenants {
			if t.zones > 0 {
				holders++
			}
		}
		if holders >= r.maxTenants {
			return fmt.Errorf("hostapp: tenant %q refused: %d tenants already hold zones: %w",
				tenant, holders, ErrTenantLimit)
		}
	}
	if r.quotaBytes > 0 && s.zoneBytes+bytes > r.quotaBytes {
		return &TenantQuotaError{Tenant: tenant, Need: bytes, Used: s.zoneBytes, Limit: r.quotaBytes}
	}
	s.zoneBytes += bytes
	s.zones++
	return nil
}

// DestroyZone releases all of tenant's zones and their budget.
func (r *TenantRegistry) DestroyZone(tenant string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.tenants[tenant]
	if !ok || s.zones == 0 {
		return fmt.Errorf("hostapp: tenant %q holds no zones", tenant)
	}
	s.zoneBytes = 0
	s.zones = 0
	return nil
}

// SetWeight adjusts a tenant's fair-share weight (default 1; higher
// weight, larger share of a saturated server).
func (r *TenantRegistry) SetWeight(tenant string, w int) {
	if w < 1 {
		w = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state(tenant).weight = w
}

// SessionStart records a tenant's session entering service.
func (r *TenantRegistry) SessionStart(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state(tenant).active++
}

// SessionEnd records a tenant's session leaving service.
func (r *TenantRegistry) SessionEnd(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if s := r.state(tenant); s.active > 0 {
		s.active--
	}
}

// RecordServed counts a successfully served session for tenant.
func (r *TenantRegistry) RecordServed(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state(tenant).served++
}

// RecordShed counts an admission shed against tenant.
func (r *TenantRegistry) RecordShed(tenant string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.state(tenant).shed++
}

// OverFairShare reports whether tenant is at or above its weighted fair
// share of a saturated server: share = maxSessions * weight /
// total-active-weight (at least 1, so every tenant can always run one
// session). The gate is work-conserving — it is consulted only when no
// free slot exists, so an under-subscribed server admits anyone.
func (r *TenantRegistry) OverFairShare(tenant string, maxSessions int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.state(tenant)
	totalWeight := s.weight // the asking tenant counts even when idle
	for t, ts := range r.tenants {
		if t != tenant && ts.active > 0 {
			totalWeight += ts.weight
		}
	}
	share := maxSessions * s.weight / totalWeight
	if share < 1 {
		share = 1
	}
	return s.active >= share
}

// TenantStats is one tenant's row in ServerStats and /debug/stats.
type TenantStats struct {
	Tenant    string `json:"tenant"`
	Active    int    `json:"active"`
	Served    uint64 `json:"served"`
	Shed      uint64 `json:"shed"`
	Zones     int    `json:"zones"`
	ZoneBytes uint64 `json:"zone_bytes"`
	// QuotaBytes echoes the per-tenant quota (0 = unlimited).
	QuotaBytes uint64 `json:"quota_bytes"`
	Weight     int    `json:"weight"`
}

// Stats snapshots every tenant row, sorted by tenant for deterministic
// reporting.
func (r *TenantRegistry) Stats() []TenantStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TenantStats, 0, len(r.tenants))
	for name, s := range r.tenants {
		out = append(out, TenantStats{
			Tenant:     name,
			Active:     s.active,
			Served:     s.served,
			Shed:       s.shed,
			Zones:      s.zones,
			ZoneBytes:  s.zoneBytes,
			QuotaBytes: r.quotaBytes,
			Weight:     s.weight,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
