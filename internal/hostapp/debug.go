package hostapp

// The shefd debug/observability listener: live net/http/pprof endpoints
// (CPU, heap, mutex, block, goroutine profiles on demand) plus a JSON
// stats endpoint for per-tenant/per-shard serving state. Strictly opt-in:
// nothing listens unless the operator passes `shefd -debug addr`, and the
// debug mux is its own — the profile handlers are registered explicitly,
// never on http.DefaultServeMux, so importing this package does not leak
// debug surface into any other server the process runs.

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// StatsFunc supplies the /debug/stats document. It is called per request;
// return a JSON-serialisable snapshot (server counters, session list,
// per-shard rows — whatever the deployment has).
type StatsFunc func() any

// DebugServer is a live debug listener. Build one with NewDebugServer
// only when debugging is requested; there is no ambient default.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// NewDebugServer starts serving pprof and stats endpoints on addr
// (e.g. "localhost:6060"; ":0" picks a free port — see Addr). The mutex
// and block profilers are sampled at a low rate while the server runs so
// the off-CPU endpoints have data; the rates are restored on Close.
func NewDebugServer(addr string, stats StatsFunc) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/debug/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		var doc any
		if stats != nil {
			doc = stats()
		}
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}}
	runtime.SetMutexProfileFraction(5)
	runtime.SetBlockProfileRate(10_000)
	go d.srv.Serve(ln)
	return d, nil
}

// Addr reports the bound address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.ln.Addr() }

// Close drains in-flight debug requests briefly and stops the listener,
// restoring the profiler sampling rates.
func (d *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	runtime.SetMutexProfileFraction(0)
	runtime.SetBlockProfileRate(0)
	return err
}
