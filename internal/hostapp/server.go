package hostapp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shef/internal/attest"
	"shef/internal/profiling"
)

// OwnerSession is one Data Owner connection being served. Each session is
// fully isolated: it owns its connection and its protocol scratch state,
// and touches the vendor only through attest.Vendor's concurrent-safe
// surfaces (the CA registry and the read-only bitstream catalogue). No
// mutable vendor state is shared between sessions, so a slow or malicious
// owner cannot corrupt a neighbour's attestation.
type OwnerSession struct {
	ID     uint64
	Remote string

	conn net.Conn
}

// VendorServer multiplexes Data Owner sessions over one attestation
// vendor: the serving tier of shefd. Connections are accepted on a
// listener and served one goroutine per session, with bounded-time
// graceful shutdown.
type VendorServer struct {
	vendor *attest.Vendor
	ln     net.Listener

	mu       sync.Mutex
	sessions map[uint64]*OwnerSession
	nextID   uint64
	closed   bool

	wg     sync.WaitGroup
	served atomic.Uint64
	failed atomic.Uint64
}

// NewVendorServer wraps a vendor and a listener. Call Serve to start
// accepting.
func NewVendorServer(vendor *attest.Vendor, ln net.Listener) *VendorServer {
	return &VendorServer{
		vendor:   vendor,
		ln:       ln,
		sessions: make(map[uint64]*OwnerSession),
	}
}

// Addr reports the listen address.
func (s *VendorServer) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts and serves owner sessions until Shutdown (or a fatal
// listener error). It blocks; run it on its own goroutine when the caller
// has other work.
func (s *VendorServer) Serve(onError func(error)) error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		sess, ok := s.admit(conn)
		if !ok {
			conn.Close()
			return ErrServerClosed
		}
		go func() {
			defer s.wg.Done()
			defer s.release(sess)
			// Each session goroutine carries its session ID as a profiling
			// label and runs inside a trace region, so a harness attributes
			// serving CPU per session and the execution trace shows session
			// lifetimes. Sessions are connection-rate, not op-rate, so the
			// label formatting is off the hot path.
			var err error
			profiling.Do(context.Background(), func() {
				profiling.Region(context.Background(), "hostapp.session", func() {
					err = s.vendor.HandleOwner(conn)
				})
			}, "subsystem", "hostapp", "session", strconv.FormatUint(sess.ID, 10))
			if err != nil {
				s.failed.Add(1)
				if onError != nil {
					onError(fmt.Errorf("session %d from %s: %w", sess.ID, sess.Remote, err))
				}
				return
			}
			s.served.Add(1)
		}()
	}
}

// admit registers a new session unless the server is shutting down. The
// wg.Add happens here, under the same lock as the closed check, so a
// session can never slip in between Shutdown's closed=true and its
// wg.Wait (the classic Add-vs-Wait race).
func (s *VendorServer) admit(conn net.Conn) (*OwnerSession, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	s.nextID++
	sess := &OwnerSession{ID: s.nextID, Remote: conn.RemoteAddr().String(), conn: conn}
	s.sessions[sess.ID] = sess
	s.wg.Add(1)
	return sess, true
}

func (s *VendorServer) release(sess *OwnerSession) {
	sess.conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess.ID)
	s.mu.Unlock()
}

// Shutdown stops accepting and waits up to timeout for in-flight sessions
// to drain; sessions still running after that are cut off. It is safe to
// call more than once.
func (s *VendorServer) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
	}
	// Force the stragglers: closing their connections unblocks HandleOwner.
	s.mu.Lock()
	n := len(s.sessions)
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	<-done
	if n == 0 {
		// The last session released in the instant between the timeout and
		// the force pass: that is a clean drain, not a cut-off.
		return nil
	}
	return fmt.Errorf("hostapp: %d session(s) cut off after %s drain", n, timeout)
}

// ServerStats is a point-in-time serving report.
type ServerStats struct {
	Active uint64
	Served uint64
	Failed uint64
}

// Stats snapshots session counters.
func (s *VendorServer) Stats() ServerStats {
	s.mu.Lock()
	active := uint64(len(s.sessions))
	s.mu.Unlock()
	return ServerStats{Active: active, Served: s.served.Load(), Failed: s.failed.Load()}
}

// SessionInfo is one live session as the debug stats endpoint reports it.
type SessionInfo struct {
	ID     uint64 `json:"id"`
	Remote string `json:"remote"`
}

// Sessions snapshots the live sessions (the per-tenant rows of the
// -debug stats endpoint), sorted by admission order via their IDs.
func (s *VendorServer) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, SessionInfo{ID: sess.ID, Remote: sess.Remote})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ErrServerClosed mirrors net/http's sentinel for callers that want to
// distinguish an orderly shutdown from an accept failure.
var ErrServerClosed = errors.New("hostapp: server closed")
