package hostapp

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shef/internal/attest"
	"shef/internal/faultinject"
	"shef/internal/profiling"
)

// OwnerSession is one Data Owner connection being served. Each session is
// fully isolated: it owns its connection and its protocol scratch state,
// and touches the vendor only through attest.Vendor's concurrent-safe
// surfaces (the CA registry and the read-only bitstream catalogue). No
// mutable vendor state is shared between sessions, so a slow or malicious
// owner cannot corrupt a neighbour's attestation.
type OwnerSession struct {
	ID     uint64
	Remote string
	// Tenant is the requesting tenant (empty for legacy single-tenant
	// clients or servers without tenant admission).
	Tenant string

	conn net.Conn
}

// ServerConfig bounds the serving tier. The zero value is the legacy
// unbounded server (accept everything, queue nothing).
type ServerConfig struct {
	// MaxSessions caps concurrently served sessions; 0 means unlimited.
	MaxSessions int
	// MaxQueue is how many connections may wait for a session slot when
	// MaxSessions are busy. Beyond that, new connections are shed with a
	// busy response. 0 means no queue: at capacity, shed immediately.
	MaxQueue int
	// RetryAfter is the backoff hint sent with a shed; default 100ms.
	RetryAfter time.Duration
	// MaxTenants caps how many distinct tenants may hold zones (0 =
	// unlimited). Setting it (or TenantQuotaBytes, or TenantFair) makes
	// the server tenant-aware: requests are read before admission so the
	// gate knows who is asking, zone RPCs are served, and overload sheds
	// per tenant instead of globally.
	MaxTenants int
	// TenantQuotaBytes caps each tenant's zone footprint (0 = unlimited).
	TenantQuotaBytes uint64
	// TenantFair enables weighted-fair admission even with no tenant
	// caps configured.
	TenantFair bool
}

// tenantAware reports whether any multi-tenant feature is configured.
func (c ServerConfig) tenantAware() bool {
	return c.MaxTenants > 0 || c.TenantQuotaBytes > 0 || c.TenantFair
}

// VendorServer multiplexes Data Owner sessions over one attestation
// vendor: the serving tier of shefd. Connections are accepted on a
// listener and served one goroutine per session, with admission control
// (max-sessions plus a bounded wait queue; excess load is shed with a
// retry-after hint rather than accepted unboundedly) and bounded-time
// graceful shutdown.
type VendorServer struct {
	vendor *attest.Vendor
	ln     net.Listener
	cfg    ServerConfig

	mu       sync.Mutex
	sessions map[uint64]*OwnerSession
	nextID   uint64
	closed   bool

	// closedCh is the shutdown gate: closed (under mu) the moment
	// Shutdown begins, before any session is force-closed, so connections
	// waiting in the admission queue abort instead of being admitted into
	// a drain that has already walked the session table.
	closedCh chan struct{}

	// slots is the session-slot semaphore (nil when unlimited); queued
	// tracks connections waiting for a slot.
	slots  chan struct{}
	queued atomic.Int64

	// registry is the tenant table (nil for tenant-oblivious servers):
	// zone quotas, live per-tenant session counts for the fair gate, and
	// per-tenant counters.
	registry *TenantRegistry

	wg     sync.WaitGroup
	served atomic.Uint64
	failed atomic.Uint64
	shed   atomic.Uint64
}

// NewVendorServer wraps a vendor and a listener with no admission bounds.
// Call Serve to start accepting.
func NewVendorServer(vendor *attest.Vendor, ln net.Listener) *VendorServer {
	return NewVendorServerWith(vendor, ln, ServerConfig{})
}

// NewVendorServerWith wraps a vendor and a listener with admission
// control. Call Serve to start accepting.
func NewVendorServerWith(vendor *attest.Vendor, ln net.Listener, cfg ServerConfig) *VendorServer {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 100 * time.Millisecond
	}
	s := &VendorServer{
		vendor:   vendor,
		ln:       ln,
		cfg:      cfg,
		sessions: make(map[uint64]*OwnerSession),
		closedCh: make(chan struct{}),
	}
	if cfg.MaxSessions > 0 {
		s.slots = make(chan struct{}, cfg.MaxSessions)
	}
	if cfg.tenantAware() {
		s.registry = NewTenantRegistry(cfg.MaxTenants, cfg.TenantQuotaBytes)
		if vendor.Zones == nil {
			vendor.Zones = s.registry
		}
	}
	return s
}

// Tenants exposes the tenant registry (nil for tenant-oblivious servers).
func (s *VendorServer) Tenants() *TenantRegistry { return s.registry }

// Addr reports the listen address.
func (s *VendorServer) Addr() net.Addr { return s.ln.Addr() }

// Serve accepts and serves owner sessions until Shutdown (or a fatal
// listener error). It blocks; run it on its own goroutine when the caller
// has other work. Admission (including waiting for a session slot)
// happens on the per-connection goroutine so a full server keeps
// accepting — and shedding — instead of letting the kernel backlog grow.
func (s *VendorServer) Serve(onError func(error)) error {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrServerClosed
			}
			return err
		}
		if !s.track() {
			conn.Close()
			return ErrServerClosed
		}
		go s.serveConn(conn, onError)
	}
}

// track registers one connection goroutine with the drain waitgroup. The
// Add happens under the same lock as the closed check, so a connection
// can never slip in between Shutdown's closed=true and its wg.Wait (the
// classic Add-vs-Wait race).
func (s *VendorServer) track() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	return true
}

// serveConn runs one connection through admission and, if admitted, the
// owner protocol. Tenant-aware servers read the request up front — the
// fair gate needs to know which tenant is asking before it decides who
// overload falls on.
func (s *VendorServer) serveConn(conn net.Conn, onError func(error)) {
	defer s.wg.Done()
	var req *attest.OwnerRequest
	tenant := ""
	if s.registry != nil {
		var rerr error
		req, rerr = attest.ReadOwnerRequest(conn)
		if rerr != nil {
			s.failed.Add(1)
			conn.Close()
			return
		}
		tenant = req.Tenant
	}
	if !s.acquireSlot(conn, tenant) {
		return
	}
	if s.registry != nil {
		s.registry.SessionStart(tenant)
		defer s.registry.SessionEnd(tenant)
	}
	defer s.releaseSlot()
	sess, ok := s.admit(conn, tenant)
	if !ok {
		conn.Close()
		return
	}
	defer s.release(sess)
	// Each session goroutine carries its session ID as a profiling
	// label and runs inside a trace region, so a harness attributes
	// serving CPU per session and the execution trace shows session
	// lifetimes. Sessions are connection-rate, not op-rate, so the
	// label formatting is off the hot path.
	var err error
	serve := func() {
		var rw io.ReadWriter = conn
		if faultinject.Enabled() {
			rw = faultinject.WrapRW(conn, "attest.conn", int(sess.ID))
		}
		if req != nil {
			err = s.vendor.HandleOwnerRequest(rw, req)
		} else {
			err = s.vendor.HandleOwner(rw)
		}
	}
	if profiling.Enabled() {
		profiling.Do(context.Background(), func() {
			profiling.Region(context.Background(), "hostapp.session", serve)
		}, "subsystem", "hostapp", "session", strconv.FormatUint(sess.ID, 10))
	} else {
		serve()
	}
	if err != nil {
		s.failed.Add(1)
		if onError != nil {
			onError(fmt.Errorf("session %d from %s: %w", sess.ID, sess.Remote, err))
		}
		return
	}
	if s.registry != nil {
		s.registry.RecordServed(tenant)
	}
	s.served.Add(1)
}

// acquireSlot is the admission gate. With MaxSessions unset it admits
// immediately. At capacity the connection joins the bounded wait queue;
// past the queue bound it is shed: the server writes the busy response
// with the retry-after hint and closes. A queued connection aborts if
// shutdown begins. Reports whether a slot was acquired.
//
// Tenant-aware servers add a weighted-fair pre-gate: when the server is
// saturated, a tenant already at its fair share is shed immediately —
// before it can occupy queue space — so overload falls on whoever is
// hogging, not on every tenant equally. The gate is work-conserving: a
// free slot admits anyone.
func (s *VendorServer) acquireSlot(conn net.Conn, tenant string) bool {
	if s.slots == nil {
		return true
	}
	select {
	case s.slots <- struct{}{}:
		return true
	default:
	}
	if s.registry != nil && s.registry.OverFairShare(tenant, s.cfg.MaxSessions) {
		s.registry.RecordShed(tenant)
		s.shed.Add(1)
		attest.WriteBusy(conn, s.cfg.RetryAfter)
		conn.Close()
		return false
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.shed.Add(1)
		if s.registry != nil {
			s.registry.RecordShed(tenant)
		}
		attest.WriteBusy(conn, s.cfg.RetryAfter)
		conn.Close()
		return false
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return true
	case <-s.closedCh:
		conn.Close()
		return false
	}
}

func (s *VendorServer) releaseSlot() {
	if s.slots != nil {
		<-s.slots
	}
}

// admit registers a new session unless the server is shutting down.
func (s *VendorServer) admit(conn net.Conn, tenant string) (*OwnerSession, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	s.nextID++
	sess := &OwnerSession{ID: s.nextID, Remote: conn.RemoteAddr().String(), Tenant: tenant, conn: conn}
	s.sessions[sess.ID] = sess
	return sess, true
}

func (s *VendorServer) release(sess *OwnerSession) {
	sess.conn.Close()
	s.mu.Lock()
	delete(s.sessions, sess.ID)
	s.mu.Unlock()
}

// Shutdown stops accepting and waits up to timeout for in-flight sessions
// to drain; sessions still running after that are cut off. The gate
// (closed flag and closedCh) is shut before any session is walked, so a
// connection still in admission when the drain starts either finished
// admitting before the gate closed — and is then visible to the force
// pass — or aborts; nothing is admitted after the force pass and left
// running unreleased. It is safe to call more than once.
func (s *VendorServer) Shutdown(timeout time.Duration) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	if !already {
		close(s.closedCh)
	}
	s.mu.Unlock()
	if !already {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-time.After(timeout):
	}
	// Force the stragglers: closing their connections unblocks HandleOwner.
	s.mu.Lock()
	n := len(s.sessions)
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	<-done
	if n == 0 {
		// The last session released in the instant between the timeout and
		// the force pass: that is a clean drain, not a cut-off.
		return nil
	}
	return fmt.Errorf("hostapp: %d session(s) cut off after %s drain", n, timeout)
}

// ServerStats is a point-in-time serving report.
type ServerStats struct {
	Active uint64
	Queued uint64
	Served uint64
	Failed uint64
	// Shed counts connections refused by admission control (busy
	// response sent, connection closed).
	Shed uint64
	// MaxSessions echoes the configured bound (0 = unlimited) so a stats
	// consumer can tell "quiet" from "unbounded".
	MaxSessions int
	// Tenants is the per-tenant breakdown (nil for tenant-oblivious
	// servers): zones, quota usage, served/shed counts, fairness weight.
	Tenants []TenantStats
}

// Stats snapshots session counters.
func (s *VendorServer) Stats() ServerStats {
	s.mu.Lock()
	active := uint64(len(s.sessions))
	s.mu.Unlock()
	st := ServerStats{
		Active:      active,
		Queued:      uint64(s.queued.Load()),
		Served:      s.served.Load(),
		Failed:      s.failed.Load(),
		Shed:        s.shed.Load(),
		MaxSessions: s.cfg.MaxSessions,
	}
	if s.registry != nil {
		st.Tenants = s.registry.Stats()
	}
	return st
}

// SessionInfo is one live session as the debug stats endpoint reports it.
type SessionInfo struct {
	ID     uint64 `json:"id"`
	Remote string `json:"remote"`
	Tenant string `json:"tenant,omitempty"`
}

// Sessions snapshots the live sessions (the per-tenant rows of the
// -debug stats endpoint), sorted by admission order via their IDs.
func (s *VendorServer) Sessions() []SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SessionInfo, 0, len(s.sessions))
	for _, sess := range s.sessions {
		out = append(out, SessionInfo{ID: sess.ID, Remote: sess.Remote, Tenant: sess.Tenant})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ErrServerClosed mirrors net/http's sentinel for callers that want to
// distinguish an orderly shutdown from an accept failure.
var ErrServerClosed = errors.New("hostapp: server closed")
