// Package hostapp assembles the end-to-end ShEF deployment (paper Figure
// 2): Manufacturer provisioning, secure boot, Shell loading, remote
// attestation against an IP Vendor, accelerator loading through the
// Security Kernel, Shield construction, and Data Owner key provisioning.
//
// The package plays the untrusted host-program role plus all the parties
// around it; the trust boundaries live in the packages it wires together.
// Everything it moves between the Data Owner and the FPGA is ciphertext
// (paper §3 step 11: "the host program forwards the Load Key and the
// encrypted data to the FPGA").
package hostapp

import (
	"crypto/rand"
	"fmt"
	"io"
	"net"

	"shef/internal/accel"
	"shef/internal/attest"
	"shef/internal/bitstream"
	"shef/internal/boot"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/fpga"
	"shef/internal/perf"
	"shef/internal/shell"
	"shef/internal/shield"
)

// Options configure a platform build.
type Options struct {
	// Model is the FPGA device (default fpga.VU9P).
	Model fpga.Model
	// Serial is the device serial (defaults to a fixed demo serial).
	Serial string
	// Group is the attestation group (default modp.TestGroup for speed;
	// production deployments use modp.Group14).
	Group *modp.Group
	// DeviceKeyBits sizes the RSA device key (default 1024 in simulation).
	DeviceKeyBits int
	// Design and Params pick the accelerator from the registry.
	Design string
	Params map[string]string
	// Variant selects the Shield engine configuration.
	Variant accel.Variant
	// Perf are the cycle-model parameters (default perf.Default).
	Perf *perf.Params
	// DRAMSize overrides the device memory size (0 = model default).
	DRAMSize uint64
}

func (o *Options) fill() error {
	if o.Model.Name == "" {
		o.Model = fpga.VU9P
	}
	if o.Serial == "" {
		o.Serial = "f1-sim-0001"
	}
	if o.Group == nil {
		o.Group = modp.TestGroup
	}
	if o.DeviceKeyBits == 0 {
		o.DeviceKeyBits = 1024
	}
	if o.Design == "" {
		return fmt.Errorf("hostapp: no design selected")
	}
	if o.Variant == (accel.Variant{}) {
		o.Variant = accel.V128x16
	}
	if o.Perf == nil {
		p := perf.Default()
		o.Perf = &p
	}
	return nil
}

// Platform is a fully assembled, attested, provisioned deployment ready to
// run its accelerator.
type Platform struct {
	Options  Options
	PD       *boot.ProvisionedDevice
	Kernel   *boot.SecurityKernel
	Shell    *shell.Shell
	Product  string
	Enc      *bitstream.Encrypted
	Manifest *bitstream.Manifest
	Shield   *shield.Shield
	Workload accel.Workload
	// DEK is the Data Owner's session key (owner-side copy).
	DEK []byte
}

// BuildVendor creates the IP Vendor side for a design: it compiles the
// accelerator + Shield into an encrypted bitstream and stands up the
// attestation state. The returned product name keys the offering.
func BuildVendor(opts Options) (*attest.Vendor, string, error) {
	if err := opts.fill(); err != nil {
		return nil, "", err
	}
	w, err := accel.New(opts.Design, opts.Params)
	if err != nil {
		return nil, "", err
	}
	cfg := w.ShieldConfig(opts.Variant)
	shieldKey, err := schnorr.GenerateKey(opts.Group, nil)
	if err != nil {
		return nil, "", err
	}
	bitKey := make([]byte, 32)
	if _, err := rand.Read(bitKey); err != nil {
		return nil, "", err
	}
	man := &bitstream.Manifest{
		Design:        opts.Design,
		Version:       "1.0.0",
		Params:        opts.Params,
		Shield:        cfg,
		ShieldPrivKey: shieldKey.X.Bytes(),
		Group:         opts.Group.Name,
		// Accelerator logic on top of the Shield area.
		Resources: shield.Area(cfg).Add(fpga.Resources{LUT: 20_000, REG: 15_000, BRAM: 8}),
	}
	product := opts.Design
	enc, err := bitstream.Compile(product+"-afi", man, bitKey, nil)
	if err != nil {
		return nil, "", err
	}
	vendor := &attest.Vendor{
		CA:              attest.NewCA(),
		KernelAllowlist: [][32]byte{boot.ReferenceKernel.Hash()},
		Bitstreams: map[string]*attest.Product{
			product: {Encrypted: enc, BitstreamKey: bitKey, ShieldPub: &shieldKey.PublicKey},
		},
	}
	return vendor, product, nil
}

// DialFunc opens a fresh Data Owner connection to the vendor.
type DialFunc func() (io.ReadWriteCloser, error)

// LocalDial serves a vendor in-process over net.Pipe, one request per
// connection — the same message flow shefd serves over TCP.
func LocalDial(vendor *attest.Vendor) DialFunc {
	return func() (io.ReadWriteCloser, error) {
		oc, vc := net.Pipe()
		go func() {
			vendor.HandleOwner(vc)
			vc.Close()
		}()
		return oc, nil
	}
}

// Build assembles the complete workflow in-process: every protocol message
// still flows through real (in-memory) connections.
func Build(opts Options) (*Platform, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	vendor, product, err := BuildVendor(opts)
	if err != nil {
		return nil, err
	}
	return BuildAgainstVendor(opts, product, LocalDial(vendor), vendor)
}

// BuildAgainstVendor assembles the device/host side against a vendor
// reachable through dial (e.g. a remote shefd over TCP). registerWith, if
// non-nil, lets the build register the device key directly in the vendor's
// CA; otherwise the registration request travels over the wire.
func BuildAgainstVendor(opts Options, product string, dial DialFunc, registerWith *attest.Vendor) (*Platform, error) {
	if err := opts.fill(); err != nil {
		return nil, err
	}
	// Manufacturer: provision the device; publish its key via the CA.
	dev := fpga.New(opts.Model, opts.Serial, *opts.Perf, opts.DRAMSize)
	m := &boot.Manufacturer{Group: opts.Group, KeyBits: opts.DeviceKeyBits}
	pd, err := m.Provision(dev)
	if err != nil {
		return nil, err
	}
	if registerWith != nil {
		registerWith.CA.Register(dev.Serial, pd.DevicePublic)
	} else {
		conn, err := dial()
		if err != nil {
			return nil, err
		}
		err = attest.RegisterDevice(conn, dev.Serial, pd.DevicePublic)
		conn.Close()
		if err != nil {
			return nil, err
		}
	}

	// Secure boot and Shell load (paper §3 steps 6-9).
	kernel, err := boot.Boot(pd, boot.ReferenceKernel, opts.Group)
	if err != nil {
		return nil, err
	}
	sh, err := shell.New("aws-shell-v1.4", dev)
	if err != nil {
		return nil, err
	}

	// Data Owner: fetch the (public) encrypted bitstream.
	conn, err := dial()
	if err != nil {
		return nil, err
	}
	enc, err := attest.FetchBitstream(conn, product)
	conn.Close()
	if err != nil {
		return nil, err
	}

	// Remote attestation, proxied by this (untrusted) host program.
	conn, err = dial()
	if err != nil {
		return nil, err
	}
	resp, shieldPub, bitKey, err := attest.ProvisionViaHost(conn, product, opts.Group, kernel, enc)
	conn.Close()
	if err != nil {
		return nil, err
	}
	wantHash := enc.Hash()
	if string(resp.BitstreamHash) != string(wantHash[:]) {
		return nil, fmt.Errorf("hostapp: vendor attested a different bitstream than we fetched")
	}

	// The Security Kernel decrypts and loads the accelerator with the key
	// it received through the attested session (paper §3 step 9).
	man, err := kernel.LoadAccelerator(enc, bitKey)
	if err != nil {
		return nil, err
	}

	// Instantiate the programmed logic: accelerator + Shield with the
	// embedded Shield Encryption Key.
	w, err := accel.New(man.Design, man.Params)
	if err != nil {
		return nil, err
	}
	shieldPriv, err := man.ShieldKey()
	if err != nil {
		return nil, err
	}
	if shieldPriv.Y.Cmp(shieldPub.Y) != 0 {
		return nil, fmt.Errorf("hostapp: vendor's shield key does not match the bitstream")
	}
	sd, err := shield.New(man.Shield, shieldPriv, sh.MemPort(), dev.OCM, *opts.Perf)
	if err != nil {
		return nil, err
	}

	// Data Owner: generate the DEK and provision it via a Load Key
	// (Figure 3 steps 7-8, §3 steps 10-11).
	dek := make([]byte, 32)
	if _, err := rand.Read(dek); err != nil {
		return nil, err
	}
	lk, err := keywrap.Wrap(shieldPub, dek, nil)
	if err != nil {
		return nil, err
	}
	if err := sd.ProvisionLoadKey(lk); err != nil {
		return nil, err
	}

	return &Platform{
		Options: opts, PD: pd, Kernel: kernel, Shell: sh,
		Product: product, Enc: enc, Manifest: man,
		Shield: sd, Workload: w, DEK: dek,
	}, nil
}

// Run executes the platform's workload through the provisioned Shield,
// including the sealed input/output host paths.
func (p *Platform) Run(seed int64) (accel.RunResult, error) {
	return accel.RunOnShield(p.Workload, p.Shield, p.Shell.Device().DRAM, p.DEK, *p.Options.Perf, seed)
}

// MonitorOnce performs one Security Kernel port scan (paper §3 step 9).
func (p *Platform) MonitorOnce() []fpga.TamperEvent {
	return p.Kernel.MonitorPorts()
}
