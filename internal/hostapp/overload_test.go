package hostapp

import (
	"errors"
	"math/big"
	"net"
	"testing"
	"time"

	"shef/internal/attest"
	"shef/internal/crypto/rsax"
)

// overloadServer builds a minimal vendor server (CA only — registration
// is a complete request/response without a bitstream catalogue) with the
// given admission bounds, and returns it serving.
func overloadServer(t testing.TB, cfg ServerConfig) (*VendorServer, chan error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewVendorServerWith(&attest.Vendor{CA: attest.NewCA()}, ln, cfg)
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(nil) }()
	return srv, serveDone
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func testDeviceKey() *rsax.PublicKey {
	return &rsax.PublicKey{N: big.NewInt(0).SetBytes([]byte("overload-test-device-key")), E: 65537}
}

// TestServerOverloadSheds saturates MaxSessions and the wait queue, then
// asserts further connections are shed with the busy/retry-after response
// (surfacing as attest.ErrBusy), that ServerStats counts every shed, and
// that the server serves normally again once the load drains.
func TestServerOverloadSheds(t *testing.T) {
	const maxSessions, maxQueue = 2, 2
	srv, _ := overloadServer(t, ServerConfig{
		MaxSessions: maxSessions,
		MaxQueue:    maxQueue,
		RetryAfter:  5 * time.Millisecond,
	})
	defer srv.Shutdown(time.Second)

	// Occupy every session slot with connections that never send a
	// request — HandleOwner blocks reading, pinning the slot.
	var held []net.Conn
	for i := 0; i < maxSessions; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		held = append(held, conn)
	}
	waitFor(t, "slots to fill", func() bool { return srv.Stats().Active == maxSessions })

	// Fill the wait queue the same way.
	var queued []net.Conn
	for i := 0; i < maxQueue; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, conn)
	}
	waitFor(t, "queue to fill", func() bool { return srv.Stats().Queued == maxQueue })

	// Every further connection must be shed with the busy response.
	const extra = 4
	for i := 0; i < extra; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		err = attest.RegisterDevice(conn, "shed-device", testDeviceKey())
		conn.Close()
		if !errors.Is(err, attest.ErrBusy) {
			t.Fatalf("connection %d past the queue: got %v, want ErrBusy", i, err)
		}
	}
	if st := srv.Stats(); st.Shed != extra {
		t.Fatalf("shed = %d, want %d (stats %+v)", st.Shed, extra, st)
	}

	// Drain the synthetic load; the queued connections get slots, fail
	// their (empty) protocol exchange, and free everything up.
	for _, conn := range append(held, queued...) {
		conn.Close()
	}
	waitFor(t, "load to drain", func() bool {
		st := srv.Stats()
		return st.Active == 0 && st.Queued == 0
	})

	// Back to normal service: a real registration round-trips.
	conn, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := attest.RegisterDevice(conn, "recovered-device", testDeviceKey()); err != nil {
		t.Fatalf("registration after drain: %v", err)
	}
	if st := srv.Stats(); st.Served != 1 {
		t.Fatalf("served = %d, want 1 (stats %+v)", st.Served, st)
	}
}

// TestShutdownReleasesQueuedAdmissions is the drain-race regression test:
// connections waiting in the admission queue when Shutdown begins must
// abort through the shutdown gate — not be admitted behind the drain's
// force pass and leak as running-but-never-released sessions (which would
// deadlock the second wg.Wait forever).
func TestShutdownReleasesQueuedAdmissions(t *testing.T) {
	srv, serveDone := overloadServer(t, ServerConfig{MaxSessions: 1, MaxQueue: 8})

	held, err := net.Dial("tcp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "slot to fill", func() bool { return srv.Stats().Active == 1 })
	for i := 0; i < 8; i++ {
		conn, err := net.Dial("tcp", srv.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
	}
	waitFor(t, "queue to fill", func() bool { return srv.Stats().Queued == 8 })

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- srv.Shutdown(5 * time.Second) }()
	// The in-flight session ends mid-drain; everything queued must abort.
	time.Sleep(50 * time.Millisecond)
	held.Close()

	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung — queued admission leaked past the drain")
	}
	if err := <-serveDone; err != ErrServerClosed {
		t.Fatalf("Serve returned %v, want ErrServerClosed", err)
	}
	if st := srv.Stats(); st.Active != 0 || st.Queued != 0 {
		t.Fatalf("sessions leaked across shutdown: %+v", st)
	}
}
