package faultinject

import "io"

// faultRW interposes the active plan on a transport: each Read/Write
// consults its own site ("<target>.read" / "<target>.write"), so rules
// can fail, stall, or corrupt either direction independently.
type faultRW struct {
	rw          io.ReadWriter
	rsite, wsit string
	shard       int
}

// WrapRW interposes fault injection on a byte stream (the attest wire
// transport). Rules target "<target>.read" and "<target>.write". With no
// plan active the wrapper forwards with one atomic load per call; callers
// that care about the disabled path should gate on Enabled() and skip the
// wrap entirely.
func WrapRW(rw io.ReadWriter, target string, shard int) io.ReadWriter {
	return &faultRW{rw: rw, rsite: target + ".read", wsit: target + ".write", shard: shard}
}

func (f *faultRW) Read(p []byte) (int, error) {
	if Enabled() {
		res := Check(f.rsite, f.shard)
		if res.Err != nil {
			return 0, res.Err
		}
		n, err := f.rw.Read(p)
		if res.Corrupt && n > 0 {
			CorruptBytes(p[:n], res.CorruptSeed)
		}
		return n, err
	}
	return f.rw.Read(p)
}

func (f *faultRW) Write(p []byte) (int, error) {
	if Enabled() {
		res := Check(f.wsit, f.shard)
		if res.Err != nil {
			return 0, res.Err
		}
		if res.Corrupt && len(p) > 0 {
			// Corrupt a copy: the writer's buffer is borrowed and the
			// io.Writer contract forbids mutating it.
			c := make([]byte, len(p))
			copy(c, p)
			CorruptBytes(c, res.CorruptSeed)
			return f.rw.Write(c)
		}
	}
	return f.rw.Write(p)
}
