// Package faultinject is the repo's deterministic fault-injection layer:
// a seed-driven plan of error returns, latency spikes, payload corruption,
// node crashes, and network partitions that the serving-tier packages
// (sdp, hostapp, attest) consult at their trust/transport boundaries.
//
// The package mirrors internal/profiling's switchboard design: every
// instrumentation site is gated behind an atomic Enabled() check, so with
// no plan active the entire layer compiles down to one atomic load and a
// predicted branch — the zero-alloc steady-state hot paths stay zero-alloc
// and production traffic pays nothing for the instrumentation.
//
// Determinism is the point. Every decision is a pure function of
// (plan seed, site name, shard, per-site operation index): the same plan
// over the same operation sequence injects the same faults, so a chaos
// run that finds a bug replays byte-for-byte from its seed
// (SHEF_FAULT_SEED in CI), and the chaos suite's assertions — no lost
// acknowledged write, no plaintext exposure, bounded tail latency — hold
// across reruns instead of flaking.
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable fault classes.
type Kind int

const (
	// KindError makes the operation return a transient error (the model
	// of a dropped request, an I/O error, a timed-out RPC). Retryable.
	KindError Kind = iota
	// KindLatency stalls the operation (a slow disk, a GC pause, a
	// congested link) before letting it proceed.
	KindLatency
	// KindCorrupt flips deterministic bytes in the operation's payload —
	// in-transit corruption the authentication layer must catch.
	KindCorrupt
	// KindCrash fails the operation as a dead node would: the target is
	// gone until the plan's window closes (or the node restarts).
	KindCrash
	// KindPartition fails the operation as an unreachable node would:
	// same caller-visible shape as a crash, but the target keeps its
	// state and returns intact when the partition heals.
	KindPartition
)

// String names the fault class for error text and logs.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindLatency:
		return "latency"
	case KindCorrupt:
		return "corrupt"
	case KindCrash:
		return "crash"
	case KindPartition:
		return "partition"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the sentinel every injected fault unwraps to. Callers
// classify with errors.Is: an injected fault is transient infrastructure
// trouble (retryable, health-relevant), never an application rejection.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault is one injected failure, carrying the site identity so operators
// (and tests) can tell exactly which decision fired.
type Fault struct {
	Kind   Kind
	Target string
	Shard  int
	Op     uint64
}

func (f *Fault) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s shard %d op %d", f.Kind, f.Target, f.Shard, f.Op)
}

// Unwrap ties every Fault to ErrInjected.
func (f *Fault) Unwrap() error { return ErrInjected }

// Rule arms one fault at one site. The zero Shard matches shard 0; use
// AnyShard to match all shards of a target.
type Rule struct {
	// Target selects the instrumentation site ("sdp.put", "sdp.get",
	// "attest.conn", ...). Empty matches every site.
	Target string
	// Shard selects one shard/session index, or AnyShard for all.
	Shard int
	// Kind is the fault class to inject.
	Kind Kind
	// Prob is the per-operation injection probability in [0, 1]. The
	// draw is deterministic in (seed, target, shard, op index).
	Prob float64
	// Latency is the stall for KindLatency faults.
	Latency time.Duration
	// FromOp/ToOp bound the rule to a window of the site's operation
	// counter: the rule is live for ops in [FromOp, ToOp). ToOp == 0
	// means no upper bound. This is how deterministic crash windows and
	// partition episodes are scheduled without wall clocks.
	FromOp, ToOp uint64
}

// AnyShard makes a rule match every shard of its target.
const AnyShard = -1

// Plan is an armed fault schedule. Activate installs it process-wide;
// Deactivate removes it. A Plan may be reused across activations — its
// per-site counters keep advancing, preserving determinism across
// phases of one test.
type Plan struct {
	// Seed drives every probabilistic draw and corruption offset.
	Seed int64
	// Rules are evaluated in order; every matching live rule fires
	// independently (a latency rule may stall an op that then errors).
	Rules []Rule

	mu       sync.Mutex
	counters map[siteKey]*atomic.Uint64
}

type siteKey struct {
	target string
	shard  int
}

// active is the installed plan; nil means fault injection is off. The
// single pointer load is the entire disabled-path cost at every site.
var active atomic.Pointer[Plan]

// Enabled reports whether a plan is installed. Instrumented sites check
// it before doing anything else, so the disabled hot path performs one
// atomic load and a predicted branch — no allocation, no map lookup.
//
//shef:hotpath
func Enabled() bool { return active.Load() != nil }

// Activate installs the plan process-wide. Exactly one plan is active at
// a time; activating a new plan replaces the old.
func Activate(p *Plan) {
	if p != nil {
		p.mu.Lock()
		if p.counters == nil {
			p.counters = make(map[siteKey]*atomic.Uint64)
		}
		p.mu.Unlock()
	}
	active.Store(p)
}

// Deactivate removes the active plan; every site reverts to the
// single-atomic-load disabled path.
func Deactivate() { active.Store(nil) }

// Result is one site consultation: the injected error (nil when the op
// may proceed) and whether the payload should be corrupted, with the
// deterministic seed for the corruption pass.
type Result struct {
	Err         error
	Corrupt     bool
	CorruptSeed uint64
}

// Check consults the active plan at a site. It advances the site's
// operation counter, applies latency stalls inline, and returns the
// fault decision. With no active plan it returns the zero Result (the
// caller should gate on Enabled() first and skip the call entirely).
func Check(target string, shard int) Result {
	p := active.Load()
	if p == nil {
		return Result{}
	}
	return p.check(target, shard)
}

func (p *Plan) check(target string, shard int) Result {
	op := p.counter(target, shard).Add(1) - 1
	var res Result
	for i := range p.Rules {
		r := &p.Rules[i]
		if r.Target != "" && r.Target != target {
			continue
		}
		if r.Shard != AnyShard && r.Shard != shard {
			continue
		}
		if op < r.FromOp || (r.ToOp != 0 && op >= r.ToOp) {
			continue
		}
		if !p.draw(uint64(i), target, shard, op, r.Prob) {
			continue
		}
		switch r.Kind {
		case KindLatency:
			if r.Latency > 0 {
				time.Sleep(r.Latency)
			}
		case KindCorrupt:
			res.Corrupt = true
			res.CorruptSeed = p.mix(uint64(i)^0xc0de, target, shard, op)
		default: // KindError, KindCrash, KindPartition
			if res.Err == nil {
				res.Err = &Fault{Kind: r.Kind, Target: target, Shard: shard, Op: op}
			}
		}
	}
	return res
}

// counter returns the per-(target, shard) operation counter, creating it
// on first use. Only the enabled path pays the map access.
func (p *Plan) counter(target string, shard int) *atomic.Uint64 {
	k := siteKey{target, shard}
	p.mu.Lock()
	c, ok := p.counters[k]
	if !ok {
		c = new(atomic.Uint64)
		p.counters[k] = c
	}
	p.mu.Unlock()
	return c
}

// Ops reports how many operations a site has seen under this plan —
// the counter the FromOp/ToOp windows index. Tests use it to steer
// deterministic schedules.
func (p *Plan) Ops(target string, shard int) uint64 {
	return p.counter(target, shard).Load()
}

// draw is the deterministic probability draw: a splitmix64 hash of the
// rule index, site, and op index against the rule's threshold.
func (p *Plan) draw(rule uint64, target string, shard int, op uint64, prob float64) bool {
	if prob <= 0 {
		return false
	}
	if prob >= 1 {
		return true
	}
	x := p.mix(rule, target, shard, op)
	// Top 53 bits to a float in [0, 1).
	return float64(x>>11)/(1<<53) < prob
}

// mix hashes (seed, rule, target, shard, op) with FNV-1a + splitmix64.
func (p *Plan) mix(rule uint64, target string, shard int, op uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(target); i++ {
		h = (h ^ uint64(target[i])) * 1099511628211
	}
	x := uint64(p.Seed) ^ h ^ rule<<48 ^ uint64(uint32(shard))<<16 ^ op
	return splitmix64(x)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// CorruptBytes deterministically flips bytes in buf from a corruption
// seed (Result.CorruptSeed): one flip per 256 bytes, at least one. The
// flips model in-transit bit errors the MAC layer must catch — never a
// silent no-op, even for one-byte payloads.
func CorruptBytes(buf []byte, seed uint64) {
	if len(buf) == 0 {
		return
	}
	n := len(buf)/256 + 1
	x := seed
	for i := 0; i < n; i++ {
		x = splitmix64(x)
		pos := int(x % uint64(len(buf)))
		bit := byte(1) << ((x >> 32) % 8)
		buf[pos] ^= bit
	}
}
