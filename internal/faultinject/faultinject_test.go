package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// TestDisabledPathZeroAlloc pins the contract the hot paths rely on: with
// no plan active, an Enabled()-gated site costs one atomic load and no
// allocation.
func TestDisabledPathZeroAlloc(t *testing.T) {
	Deactivate()
	allocs := testing.AllocsPerRun(1000, func() {
		if Enabled() {
			_ = Check("sdp.put", 0)
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %.1f/op, want 0", allocs)
	}
}

// TestDeterminism replays the same plan twice and requires identical
// decisions at every op — the property the seeded chaos suite stands on.
func TestDeterminism(t *testing.T) {
	run := func() []bool {
		p := &Plan{Seed: 42, Rules: []Rule{
			{Target: "sdp.get", Shard: AnyShard, Kind: KindError, Prob: 0.3},
		}}
		Activate(p)
		defer Deactivate()
		out := make([]bool, 200)
		for i := range out {
			out[i] = Check("sdp.get", i%4).Err != nil
		}
		return out
	}
	a, b := run(), run()
	fired := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: run1=%v run2=%v", i, a[i], b[i])
		}
		if a[i] {
			fired++
		}
	}
	// Prob 0.3 over 200 draws: some must fire, some must not.
	if fired == 0 || fired == len(a) {
		t.Fatalf("degenerate draw: %d/%d fired", fired, len(a))
	}
}

// TestRuleWindow checks FromOp/ToOp gating: the rule is live only for
// ops in [FromOp, ToOp).
func TestRuleWindow(t *testing.T) {
	p := &Plan{Seed: 1, Rules: []Rule{
		{Target: "sdp.put", Shard: 2, Kind: KindCrash, Prob: 1, FromOp: 3, ToOp: 6},
	}}
	Activate(p)
	defer Deactivate()
	for op := 0; op < 10; op++ {
		err := Check("sdp.put", 2).Err
		want := op >= 3 && op < 6
		if (err != nil) != want {
			t.Fatalf("op %d: err=%v, want fired=%v", op, err, want)
		}
		if err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: error %v does not unwrap to ErrInjected", op, err)
			}
			var f *Fault
			if !errors.As(err, &f) || f.Kind != KindCrash || f.Shard != 2 {
				t.Fatalf("op %d: fault metadata wrong: %+v", op, f)
			}
		}
	}
	// Other shards never match.
	if err := Check("sdp.put", 0).Err; err != nil {
		t.Fatalf("shard 0 matched shard-2 rule: %v", err)
	}
}

// TestTargetFilter checks that rules only hit their named site, and an
// empty target hits every site.
func TestTargetFilter(t *testing.T) {
	p := &Plan{Seed: 9, Rules: []Rule{
		{Target: "sdp.get", Shard: AnyShard, Kind: KindError, Prob: 1},
	}}
	Activate(p)
	defer Deactivate()
	if err := Check("sdp.get", 1).Err; err == nil {
		t.Fatal("targeted site did not fire")
	}
	if err := Check("sdp.put", 1).Err; err != nil {
		t.Fatalf("untargeted site fired: %v", err)
	}

	Activate(&Plan{Seed: 9, Rules: []Rule{{Shard: AnyShard, Kind: KindError, Prob: 1}}})
	if err := Check("anything", 7).Err; err == nil {
		t.Fatal("wildcard-target rule did not fire")
	}
}

// TestLatencyRule checks that latency rules stall without failing the op.
func TestLatencyRule(t *testing.T) {
	p := &Plan{Seed: 3, Rules: []Rule{
		{Target: "sdp.get", Shard: AnyShard, Kind: KindLatency, Prob: 1, Latency: 5 * time.Millisecond},
	}}
	Activate(p)
	defer Deactivate()
	start := time.Now()
	res := Check("sdp.get", 0)
	if res.Err != nil {
		t.Fatalf("latency rule returned error: %v", res.Err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("latency rule stalled only %v, want >= 5ms", d)
	}
}

// TestCorruptBytes checks corruption always changes the buffer and is
// deterministic in the seed.
func TestCorruptBytes(t *testing.T) {
	for _, n := range []int{1, 16, 300, 4096} {
		orig := make([]byte, n)
		for i := range orig {
			orig[i] = byte(i)
		}
		a := append([]byte(nil), orig...)
		b := append([]byte(nil), orig...)
		CorruptBytes(a, 77)
		CorruptBytes(b, 77)
		if bytes.Equal(a, orig) {
			t.Fatalf("n=%d: corruption was a no-op", n)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("n=%d: corruption not deterministic", n)
		}
	}
}

// TestWrapRW exercises the transport wrapper: read-side corruption mangles
// bytes deterministically, error rules fail the call, and with no plan
// active the wrapper is transparent.
func TestWrapRW(t *testing.T) {
	Deactivate()
	var buf bytes.Buffer
	rw := WrapRW(&buf, "attest.conn", 0)
	if _, err := rw.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5)
	if _, err := io.ReadFull(rw, got); err != nil || string(got) != "hello" {
		t.Fatalf("transparent path: %q, %v", got, err)
	}

	Activate(&Plan{Seed: 5, Rules: []Rule{
		{Target: "attest.conn.read", Shard: AnyShard, Kind: KindCorrupt, Prob: 1},
	}})
	defer Deactivate()
	buf.Reset()
	buf.WriteString("payload-payload-payload")
	got = make([]byte, buf.Len())
	if _, err := io.ReadFull(rw, got); err != nil {
		t.Fatal(err)
	}
	if string(got) == "payload-payload-payload" {
		t.Fatal("read-side corruption rule did not mangle bytes")
	}

	Activate(&Plan{Seed: 5, Rules: []Rule{
		{Target: "attest.conn.write", Shard: AnyShard, Kind: KindError, Prob: 1},
	}})
	if _, err := rw.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write error rule: got %v, want ErrInjected", err)
	}
}

// TestWriteCorruptionCopies pins the io.Writer contract: the caller's
// buffer must not be mutated by write-side corruption.
func TestWriteCorruptionCopies(t *testing.T) {
	Activate(&Plan{Seed: 8, Rules: []Rule{
		{Target: "t.write", Shard: AnyShard, Kind: KindCorrupt, Prob: 1},
	}})
	defer Deactivate()
	var buf bytes.Buffer
	rw := WrapRW(&buf, "t", 0)
	p := []byte("immutable-caller-buffer")
	want := append([]byte(nil), p...)
	if _, err := rw.Write(p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, want) {
		t.Fatal("write-side corruption mutated the caller's buffer")
	}
	if bytes.Equal(buf.Bytes(), want) {
		t.Fatal("write-side corruption did not mangle the stream")
	}
}

// TestSchedule checks the derived chaos schedule: deterministic, ordered,
// non-overlapping, every failure healed before totalOps.
func TestSchedule(t *testing.T) {
	a := Schedule(42, 4, 1000, 3)
	b := Schedule(42, 4, 1000, 3)
	if len(a) != 6 || len(b) != 6 {
		t.Fatalf("want 6 events, got %d/%d", len(a), len(b))
	}
	down := -1
	for i, ev := range a {
		if ev != b[i] {
			t.Fatalf("schedule not deterministic at %d: %+v vs %+v", i, ev, b[i])
		}
		if i > 0 && ev.AtOp < a[i-1].AtOp {
			t.Fatalf("events out of order at %d", i)
		}
		if ev.AtOp >= 1000 {
			t.Fatalf("event %d beyond totalOps: %+v", i, ev)
		}
		switch ev.Action {
		case ActCrash, ActPartition:
			if down != -1 {
				t.Fatalf("overlapping failures: shard %d still down at %+v", down, ev)
			}
			down = ev.Shard
		case ActRestart, ActHeal:
			if down != ev.Shard {
				t.Fatalf("heal for shard %d but %d is down", ev.Shard, down)
			}
			down = -1
		}
	}
	if down != -1 {
		t.Fatalf("shard %d left down at end of schedule", down)
	}
	if Schedule(1, 0, 100, 2) != nil || Schedule(1, 4, 0, 2) != nil {
		t.Fatal("degenerate inputs should yield nil schedule")
	}
}
