package faultinject

// Action is one step of a chaos schedule: what the driver should do to a
// shard when the schedule point is reached.
type Action int

const (
	// ActCrash kills the shard: state is lost, a later ActRestart brings
	// up a fresh node that anti-entropy must repopulate.
	ActCrash Action = iota
	// ActRestart brings a crashed shard back with empty storage.
	ActRestart
	// ActPartition makes the shard unreachable; its state survives.
	ActPartition
	// ActHeal ends a partition.
	ActHeal
)

// String names the action for logs and test output.
func (a Action) String() string {
	switch a {
	case ActCrash:
		return "crash"
	case ActRestart:
		return "restart"
	case ActPartition:
		return "partition"
	case ActHeal:
		return "heal"
	}
	return "action(?)"
}

// Event is one scheduled chaos step: at operation AtOp (of whatever
// counter the driver polls), apply Action to Shard.
type Event struct {
	AtOp   uint64
	Shard  int
	Action Action
}

// Schedule derives a deterministic chaos schedule from a seed: episodes
// failure/recovery pairs spread over totalOps, each targeting a
// seed-chosen shard and alternating crash/restart with partition/heal.
// Episodes never overlap — at most one shard is down at a time, matching
// the single-node-failure tolerance the chaos suite asserts — and every
// failure recovers before totalOps so end-of-run repair checks see a
// whole cluster.
func Schedule(seed int64, shards int, totalOps uint64, episodes int) []Event {
	if shards <= 0 || episodes <= 0 || totalOps == 0 {
		return nil
	}
	span := totalOps / uint64(episodes+1)
	if span < 2 {
		span = 2
	}
	evs := make([]Event, 0, 2*episodes)
	x := uint64(seed) ^ 0x5eed
	for i := 0; i < episodes; i++ {
		x = splitmix64(x)
		shard := int(x % uint64(shards))
		start := span * uint64(i+1)
		// Recover midway to the next episode so episodes never overlap.
		end := start + span/2
		fail, heal := ActCrash, ActRestart
		if x&(1<<40) != 0 {
			fail, heal = ActPartition, ActHeal
		}
		evs = append(evs,
			Event{AtOp: start, Shard: shard, Action: fail},
			Event{AtOp: end, Shard: shard, Action: heal},
		)
	}
	return evs
}
