// Package sdp implements the paper's end-to-end case study (§6.2.3):
// SDP-style GDPR-compliant storage built from smart Storage Nodes (SNs)
// with FPGA TEEs and a centralised Controller Node (CN).
//
// Each Storage Node is a key-value store engine over the Shield. Two
// identical engine sets secure its traffic — one facing the storage
// device, one facing the application's TLS session — so every file byte
// crosses the Shield twice: decrypted from storage, re-encrypted for the
// application. The Controller Node attests each SN before provisioning
// the user-key database into it.
package sdp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/engine"
	"shef/internal/crypto/kdf"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/oram"
	"shef/internal/perf"
	"shef/internal/shield"
)

// NodeConfig sizes a Storage Node and selects its Shield engine
// configuration — the dimension swept by the paper's Table 2.
type NodeConfig struct {
	// Slots is the number of fixed-size file slots.
	Slots int
	// SlotBytes is the file slot size (1 MB in the paper's measurement).
	SlotBytes int
	// AuthBlock is the authentication block size (4 KB in the paper).
	AuthBlock int
	// Engines is the AES engine count per engine set.
	Engines int
	// SBox is the per-engine S-box parallelism.
	SBox aesx.SBoxParallelism
	// MAC selects HMAC or PMAC engines.
	MAC shield.MACKind
	// BufferBytes is the per-set buffer (16 KB in the paper).
	BufferBytes int
	// Oblivious fronts the store region with a Path ORAM (§5.2.2): file
	// blocks are placed by oblivious path accesses, so a cloud operator
	// watching the storage device's address bus cannot tell which file —
	// and therefore which user — a request serves. The Shield still hides
	// contents; the ORAM hides the access pattern, at a measured bandwidth
	// amplification.
	Oblivious bool
	// WriteBack is the serving-tier buffer policy: Put leaves the store
	// region's lines dirty on-chip instead of flushing after every
	// operation, so a working set that fits the buffer is served without
	// re-sealing — evictions and Sync write dirty lines back. The
	// durability barrier moves to Sync; the default (write-through)
	// policy keeps every Put sealed to DRAM before returning, which is
	// what the paper's Table 2 measurement models. Oblivious nodes
	// always write through (the ORAM's visibility schedule is part of
	// its obliviousness argument).
	WriteBack bool
	// TenantZones places each user's files in their own runtime-created
	// protection zone instead of one shared static store region: the
	// store arena is carved into per-user zones (TenantSlots slots each),
	// created lazily on a user's first Put via the Shield's virtual
	// region layer and destroyed — counters, valid bits, and all — by
	// EraseTenant, which is the GDPR erasure guarantee made structural:
	// after destruction the zone's ciphertext is unrecoverable even with
	// the device key, because the per-region key material and freshness
	// state died with the zone. The tls region stays static (it is the
	// node's own network endpoint, not tenant data). Incompatible with
	// Oblivious (the ORAM fronts one flat store region).
	TenantZones bool
	// TenantSlots is how many file slots each per-user zone holds
	// (TenantZones mode; default 1). Slots must divide evenly into
	// per-user zones.
	TenantSlots int
	// ResponseCacheBytes sizes the sealed-response cache: the most
	// recently served tls images (ciphertext + tags), kept in the node's
	// on-chip budget next to the network port so a repeat Get of an
	// unmodified file is answered at line rate without another pass
	// through either engine set. Safe because the tls region seals
	// deterministically within a session (no freshness counters on that
	// region) — a cached image is bit-identical to a re-sealed one — and
	// Put invalidates the file's entry. 0 disables the cache, which is
	// the Table 2 configuration (the paper measures the raw data path).
	ResponseCacheBytes int
}

// Table2Configs are the five Shield configurations of the paper's Table 2,
// in order: (engines, S-box, MAC) = (4,4x,HMAC), (4,16x,HMAC),
// (4,16x,PMAC), (8,16x,PMAC), (16,16x,PMAC).
func Table2Configs() []NodeConfig {
	base := NodeConfig{Slots: 4, SlotBytes: 1 << 20, AuthBlock: 4096, BufferBytes: 16 << 10}
	mk := func(eng int, sbox aesx.SBoxParallelism, mac shield.MACKind) NodeConfig {
		c := base
		c.Engines, c.SBox, c.MAC = eng, sbox, mac
		return c
	}
	return []NodeConfig{
		mk(4, aesx.SBox4x, shield.HMAC),
		mk(4, aesx.SBox16x, shield.HMAC),
		mk(4, aesx.SBox16x, shield.PMAC),
		mk(8, aesx.SBox16x, shield.PMAC),
		mk(16, aesx.SBox16x, shield.PMAC),
	}
}

// LineRateParams models the Storage Node's data fabric: a line-rate
// storage/network interface (≈1 GB/s at the 250 MHz Shield clock) rather
// than the F1 DRAM channel.
func LineRateParams() perf.Params {
	p := perf.Default()
	p.DRAMBytesPerCycle = 4
	return p
}

// Region layout of the node's device memory.
const (
	storeBase = 0x0000_0000
	tlsBase   = 0x4000_0000
)

// Node is one SDP Storage Node: a KV engine over a Shield. File metadata
// (directory, sizes) lives in node-internal (on-chip) state; file contents
// live encrypted in the store region; application traffic stages through
// the tls region.
//
// A Node is safe for concurrent use, but serialises its operations: the
// node has a single TLS staging region and a single directory, so requests
// against one node queue the way they would on one physical Storage Node's
// network port. Cluster spreads load over many nodes for real parallelism.
type Node struct {
	cfg    NodeConfig
	sh     *shield.Shield
	dram   *mem.DRAM
	params perf.Params
	dek    []byte
	oram   *oram.ORAM // non-nil in oblivious mode; fronts the store region

	tlsCfg    shield.RegionConfig
	tlsLayout shield.RegionLayout

	mu        sync.Mutex
	userKeys  map[string][]byte
	directory map[string]fileEntry
	nextSlot  int

	// Tenant-zone state (TenantZones mode): live per-user zones and the
	// free-list of zone base addresses in the store arena.
	zones     map[string]*tenantZone
	freeZones []uint64

	// Serving-path state, all under mu. tlsSeal is the node's own TLS
	// endpoint (legacy Put/Get seal and open inline; the staged API
	// moves that work to a client-held TLSSession). The staging buffers
	// grow to the largest payload seen and are reused per operation, so
	// the steady-state serving loop allocates only the bytes it returns.
	tlsSeal                      *shield.RegionSealer
	stageBuf, stageCT, stageTags []byte
	userCiphers                  map[string]*userCipher
	ctr                          aesx.CTRStream

	// Sealed-response cache (nil unless cfg.ResponseCacheBytes > 0),
	// LRU-evicted to stay within its on-chip byte budget. respCycles is
	// the simulated cost of cache-served responses (an on-chip copy),
	// accounted separately because cached hits bypass both engine sets.
	respCache          map[string]*respEntry
	respBytes          int
	respClock          uint64
	respHits, respMiss uint64
	respCycles         uint64
}

// respEntry is one cached sealed response: the file's tls image as the
// Data Owner receives it, plus an LRU stamp.
type respEntry struct {
	size     int
	ct, tags []byte
	last     uint64
}

// userCipher is the cached per-(user, file) GDPR layer state: the
// engine-selected AES block under the derived file key, plus the file IV.
// Deriving these per operation was pure hot-path waste — the key is a
// function of (user key, file name) only — and the cache is invalidated
// wholesale whenever user keys are (re)provisioned.
type userCipher struct {
	block aesx.Block
	iv    [aesx.IVSize]byte
}

// maxUserCiphers bounds the cipher cache; on overflow the cache resets
// (a full sweep is simpler than LRU and provisioning-rare).
const maxUserCiphers = 4096

type fileEntry struct {
	slot int
	size int
	user string
}

// tenantZone is one user's protection zone in the store arena.
type tenantZone struct {
	base     uint64
	nextSlot int // next free slot within the zone
}

// oramConfig shapes the store-region ORAM: one ORAM block per auth block,
// buckets padded to the chunk size so bucket stores stream as full-chunk
// writes, position map recursing once the table outgrows 4K entries.
func (c NodeConfig) oramConfig(seed int64) oram.Config {
	return oram.Config{
		Base:            storeBase,
		Blocks:          c.Slots * c.SlotBytes / c.AuthBlock,
		BlockSize:       c.AuthBlock,
		Seed:            seed,
		ChunkAlign:      c.AuthBlock,
		PosMapThreshold: 4096,
	}
}

func (c NodeConfig) storeSize() uint64 {
	if !c.Oblivious {
		return uint64(c.Slots * c.SlotBytes)
	}
	// The ORAM tree (plus recursive position maps) replaces the flat slot
	// array; the region must cover its footprint in whole chunks.
	f := c.oramConfig(0).FootprintBytes()
	a := uint64(c.AuthBlock)
	return (f + a - 1) / a * a
}

func (c NodeConfig) tlsSize() uint64 { return uint64(c.SlotBytes) }

// ShieldConfig builds the two identical engine sets of §6.2.3. In
// TenantZones mode only the tls region is static; the store arena is
// left to runtime-created per-user zones (ArenaEnd bounds it).
func (c NodeConfig) ShieldConfig() shield.Config {
	mk := func(name string, base uint64, size uint64) shield.RegionConfig {
		return shield.RegionConfig{
			Name: name, Base: base, Size: size, ChunkSize: c.AuthBlock,
			AESEngines: c.Engines, SBox: c.SBox, KeySize: aesx.AES128,
			MAC: c.MAC, BufferBytes: c.BufferBytes,
		}
	}
	tls := mk("tls", tlsBase, c.tlsSize())
	tls.Channel = 1 // the TLS/network port is a separate physical interface
	if c.TenantZones {
		return shield.Config{
			Regions:   []shield.RegionConfig{tls},
			Registers: 16,
			ArenaEnd:  storeBase + uint64(c.Slots*c.SlotBytes),
		}
	}
	store := mk("store", storeBase, c.storeSize())
	// Files are overwritten in place, so the store region carries replay
	// counters: a cloud operator must not be able to roll a record back
	// to a pre-erasure version (the GDPR deletion guarantee).
	store.Freshness = true
	return shield.Config{
		Regions:   []shield.RegionConfig{store, tls},
		Registers: 16,
	}
}

// storeZoneConfig is one user's protection zone: a store-shaped region
// owned by the user's tenant identity, replay-protected like the static
// store (rollback across erasure is the attack GDPR deletion forbids).
func (c NodeConfig) storeZoneConfig(user string, base uint64) shield.RegionConfig {
	return shield.RegionConfig{
		Name: "store", Tenant: user, Base: base,
		Size: uint64(c.TenantSlots * c.SlotBytes), ChunkSize: c.AuthBlock,
		AESEngines: c.Engines, SBox: c.SBox, KeySize: aesx.AES128,
		MAC: c.MAC, BufferBytes: c.BufferBytes,
		Freshness: true,
	}
}

// NewNode boots a Storage Node: Shield construction plus Load Key
// provisioning with the session DEK (which the CN established during
// attestation).
func NewNode(cfg NodeConfig, dek []byte, params perf.Params) (*Node, error) {
	if cfg.Slots <= 0 || cfg.SlotBytes <= 0 {
		return nil, fmt.Errorf("sdp: node needs at least one slot: %w", ErrConfig)
	}
	if cfg.SlotBytes%cfg.AuthBlock != 0 {
		return nil, fmt.Errorf("sdp: slot size must be a multiple of the auth block: %w", ErrConfig)
	}
	if cfg.TenantZones {
		if cfg.Oblivious {
			return nil, fmt.Errorf("sdp: tenant zones and the oblivious store are mutually exclusive: %w", ErrConfig)
		}
		if cfg.TenantSlots <= 0 {
			cfg.TenantSlots = 1
		}
		if cfg.Slots%cfg.TenantSlots != 0 {
			return nil, fmt.Errorf("sdp: %d slots do not divide into zones of %d: %w",
				cfg.Slots, cfg.TenantSlots, ErrConfig)
		}
	}
	if cfg.Oblivious {
		if cfg.Slots*cfg.SlotBytes/cfg.AuthBlock < 2 {
			return nil, fmt.Errorf("sdp: oblivious node needs at least two auth blocks of store: %w", ErrConfig)
		}
		if len(dek) < 8 {
			return nil, fmt.Errorf("sdp: oblivious node needs a session DEK of at least 8 bytes: %w", ErrConfig)
		}
	}
	scfg := cfg.ShieldConfig()
	if err := scfg.Validate(); err != nil {
		return nil, err
	}
	var tagBytes uint64
	for _, r := range scfg.Regions {
		tagBytes += uint64(r.Chunks() * shield.TagSize)
	}
	if cfg.TenantZones {
		// Runtime zones claim tag shadow from the same pool the static
		// regions would have: budget for the whole store arena.
		tagBytes += uint64(cfg.Slots * cfg.SlotBytes / cfg.AuthBlock * shield.TagSize)
	}
	dram := mem.NewDRAM(uint64(tlsBase)+cfg.tlsSize()+tagBytes+1<<20, params)
	ocm := mem.NewOCM(1 << 32)
	// The attestation group is kept small for simulation speed; a real
	// deployment would use modp.Group14.
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		return nil, err
	}
	sh, err := shield.New(scfg, priv, dram, ocm, params)
	if err != nil {
		return nil, err
	}
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		return nil, err
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		sh:        sh,
		dram:      dram,
		params:    params,
		dek:       append([]byte(nil), dek...),
		userKeys:  make(map[string][]byte),
		directory: make(map[string]fileEntry),
	}
	n.tlsCfg = scfg.Regions[len(scfg.Regions)-1] // tls is last (the only static region in tenant-zone mode)
	n.tlsLayout, _ = sh.Layout("tls")
	n.tlsSeal, err = shield.NewRegionSealer(n.tlsCfg, n.tlsLayout.RegionID, n.dek)
	if err != nil {
		return nil, err
	}
	n.userCiphers = make(map[string]*userCipher)
	if cfg.ResponseCacheBytes > 0 {
		n.respCache = make(map[string]*respEntry)
	}
	if cfg.TenantZones {
		n.zones = make(map[string]*tenantZone)
		zoneBytes := uint64(cfg.TenantSlots * cfg.SlotBytes)
		// Pushed high-to-low so zones hand out in ascending address order.
		for base := storeBase + uint64(cfg.Slots*cfg.SlotBytes) - zoneBytes; ; base -= zoneBytes {
			n.freeZones = append(n.freeZones, base)
			if base == storeBase {
				break
			}
		}
	}
	if cfg.Oblivious {
		// The leaf-draw seed derives from the session DEK: deterministic
		// per session, invisible to the host.
		seed := int64(binary.LittleEndian.Uint64(dek[:8]))
		n.oram, err = oram.NewWithConfig(sh, cfg.oramConfig(seed))
		if err != nil {
			return nil, fmt.Errorf("sdp: oblivious store: %w", err)
		}
	}
	return n, nil
}

// ProvisionUserKeys installs the CN's user-key database (paper: "The CN
// securely provisions a database of user keys into the TEE").
func (n *Node) ProvisionUserKeys(keys map[string][]byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for u, k := range keys {
		n.userKeys[u] = append([]byte(nil), k...)
	}
	// A (re)provisioned key invalidates any cached per-file cipher
	// derived from the old key; provisioning is rare, so drop them all,
	// along with any sealed responses whose GDPR layer they produced.
	clear(n.userCiphers)
	clear(n.respCache)
	n.respBytes = 0
}

// respInvalidate drops a file's cached sealed response (its content is
// about to change). Caller holds mu.
func (n *Node) respInvalidate(name string) {
	if r, ok := n.respCache[name]; ok {
		n.respBytes -= len(r.ct) + len(r.tags)
		delete(n.respCache, name)
	}
}

// respInsert caches a file's sealed response, evicting least-recently
// served entries until the image fits the on-chip budget. Entries larger
// than the whole budget are not cached. Caller holds mu.
func (n *Node) respInsert(name string, size int, ct, tags []byte) {
	need := len(ct) + len(tags)
	if n.respCache == nil || need > n.cfg.ResponseCacheBytes {
		return
	}
	n.respInvalidate(name)
	for n.respBytes+need > n.cfg.ResponseCacheBytes {
		victim, oldest := "", ^uint64(0)
		for k, r := range n.respCache {
			if r.last < oldest {
				victim, oldest = k, r.last
			}
		}
		n.respInvalidate(victim)
	}
	n.respClock++
	n.respCache[name] = &respEntry{
		size: size,
		ct:   append([]byte(nil), ct...),
		tags: append([]byte(nil), tags...),
		last: n.respClock,
	}
	n.respBytes += need
}

// respServe answers a Get from the sealed-response cache if the file's
// image is resident, copying it into the caller's buffers. The simulated
// cost is one on-chip copy (the cache sits next to the network port; no
// engine set runs). Caller holds mu and has already authorised the user.
func (n *Node) respServe(name string, ct, tags []byte) (int, bool) {
	r, ok := n.respCache[name]
	if !ok {
		return 0, false
	}
	if len(ct) < len(r.ct) || len(tags) < len(r.tags) {
		return 0, false
	}
	copy(ct, r.ct)
	copy(tags, r.tags)
	n.respClock++
	r.last = n.respClock
	n.respHits++
	n.respCycles += uint64(len(r.ct)+len(r.tags))/64 + n.params.ChunkIssueCycles
	return r.size, true
}

// RespCacheStats reports the sealed-response cache's activity: hits,
// misses (Gets that ran the full data path on a cache-enabled node), and
// the simulated cycles of cache-served responses.
func (n *Node) RespCacheStats() (hits, misses, cycles uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.respHits, n.respMiss, n.respCycles
}

// stage sizes the node's reusable staging buffers for an aligned payload
// of nBytes and returns the plaintext buffer. Caller holds mu.
func (n *Node) stage(nBytes int) []byte {
	if cap(n.stageBuf) < nBytes {
		n.stageBuf = make([]byte, nBytes)
		n.stageCT = make([]byte, nBytes)
		n.stageTags = make([]byte, nBytes/n.cfg.AuthBlock*shield.TagSize)
	}
	return n.stageBuf[:nBytes]
}

// dmaTLSIn lands a sealed payload extent in the tls region: the host DMA
// plus the valid-bit update. Only the extent's chunks are written and
// marked — the rest of the (large) staging region keeps whatever it held,
// and crucially the *store* region's buffer residency is untouched (the
// old path invalidated every clean line in both engine sets per Put,
// which is exactly the aggregate on-chip cache a fleet of shards needs).
// Caller holds mu.
func (n *Node) dmaTLSIn(ct, tags []byte) error {
	// Defensive drain: staged traffic never leaves tls lines dirty, but a
	// clean region costs nothing to flush and a dirty one would otherwise
	// overwrite the DMA on eviction.
	if err := n.sh.FlushRegion("tls"); err != nil {
		return err
	}
	if err := n.dram.RawWrite(n.tlsLayout.DataBase, ct); err != nil {
		return err
	}
	if err := n.dram.RawWrite(n.tlsLayout.TagBase, tags); err != nil {
		return err
	}
	return n.sh.MarkPreloadedRange("tls", 0, uint64(len(ct)))
}

// stageTLSIn is the application→node half of a TLS session on the legacy
// in-process path: the node's own endpoint seals the payload extent and
// the untrusted host DMAs it into device memory. (The staged API's
// TLSSession does the same sealing client-side instead.)
func (n *Node) stageTLSIn(payload []byte) error {
	aligned := alignUp(len(payload), n.cfg.AuthBlock)
	buf := n.stage(aligned)
	copy(buf, payload)
	clear(buf[len(payload):])
	k := aligned / n.cfg.AuthBlock
	if err := n.tlsSeal.SealRange(0, 0, n.stageCT[:aligned], n.stageTags[:k*shield.TagSize], buf); err != nil {
		return err
	}
	return n.dmaTLSIn(n.stageCT[:aligned], n.stageTags[:k*shield.TagSize])
}

// stageTLSOutSealed flushes the tls staging set and DMAs the sealed
// payload extent out into ct/tags (which must hold the aligned extent).
// Caller holds mu.
func (n *Node) stageTLSOutSealed(aligned int, ct, tags []byte) error {
	// In oblivious mode the store region carries the ORAM's deferred path
	// writes; they must land before the host observes the device (the
	// ORAM's visibility schedule is part of its obliviousness argument).
	if n.oram != nil {
		if err := n.sh.FlushRegion("store"); err != nil {
			return err
		}
	}
	if err := n.sh.FlushRegion("tls"); err != nil {
		return err
	}
	if err := n.dram.RawReadInto(n.tlsLayout.DataBase, ct); err != nil {
		return err
	}
	return n.dram.RawReadInto(n.tlsLayout.TagBase, tags)
}

// stageTLSOut is the node→application half on the legacy path: DMA the
// sealed extent out and open it with the node's own endpoint.
func (n *Node) stageTLSOut(size int) ([]byte, error) {
	aligned := alignUp(size, n.cfg.AuthBlock)
	k := aligned / n.cfg.AuthBlock
	ct, tags := n.stageCT[:aligned], n.stageTags[:k*shield.TagSize]
	if err := n.stageTLSOutSealed(aligned, ct, tags); err != nil {
		return nil, err
	}
	out := make([]byte, aligned)
	if err := n.tlsSeal.OpenRange(0, 0, out, ct, tags); err != nil {
		return nil, err
	}
	return out[:size], nil
}

// reserve validates a Put and allocates the file's slot entry. Caller
// holds mu and commits with n.directory[name] = entry on success.
// Failures are application rejections (ErrRejected): authoritative
// verdicts the cluster's resilience layer must not retry or hold against
// the node's health.
func (n *Node) reserve(user, name string, size int) (fileEntry, error) {
	if _, ok := n.userKeys[user]; !ok {
		return fileEntry{}, rejectf("sdp: user %q has no provisioned key", user)
	}
	if size > n.cfg.SlotBytes {
		return fileEntry{}, rejectf("sdp: file of %d bytes exceeds slot size %d", size, n.cfg.SlotBytes)
	}
	if n.cfg.TenantZones {
		return n.reserveInZone(user, name, size)
	}
	entry, ok := n.directory[name]
	if !ok {
		if n.nextSlot >= n.cfg.Slots {
			return fileEntry{}, reject(errors.New("sdp: node full"))
		}
		entry = fileEntry{slot: n.nextSlot}
		n.nextSlot++
	}
	entry.size = size
	entry.user = user
	return entry, nil
}

// reserveInZone allocates a file slot inside the user's own protection
// zone, creating the zone on first use. Slots stay global indices (the
// arena's address math is unchanged); the zone boundary is what the
// Shield's region table enforces. Caller holds mu.
func (n *Node) reserveInZone(user, name string, size int) (fileEntry, error) {
	z, err := n.zoneFor(user)
	if err != nil {
		return fileEntry{}, err
	}
	entry, ok := n.directory[name]
	if ok {
		if entry.user != user {
			return fileEntry{}, rejectf("sdp: user %q may not access %q (GDPR policy)", user, name)
		}
	} else {
		if z.nextSlot >= n.cfg.TenantSlots {
			return fileEntry{}, rejectf("sdp: user %q's zone is full (%d slots)", user, n.cfg.TenantSlots)
		}
		entry = fileEntry{slot: int((z.base-storeBase)/uint64(n.cfg.SlotBytes)) + z.nextSlot}
		z.nextSlot++
	}
	entry.size = size
	entry.user = user
	return entry, nil
}

// zoneFor returns (lazily creating) the user's protection zone. A new
// zone is one CreateRegion call against the Shield's virtual region
// layer; its engine set materialises on the first data access, so an
// idle user costs only directory bytes. Caller holds mu.
func (n *Node) zoneFor(user string) (*tenantZone, error) {
	if z, ok := n.zones[user]; ok {
		return z, nil
	}
	if len(n.freeZones) == 0 {
		return nil, reject(errors.New("sdp: node full (no free tenant zones)"))
	}
	base := n.freeZones[len(n.freeZones)-1]
	if err := n.sh.CreateRegion(n.cfg.storeZoneConfig(user, base)); err != nil {
		return nil, fmt.Errorf("sdp: tenant zone for %q: %w", user, err)
	}
	n.freeZones = n.freeZones[:len(n.freeZones)-1]
	z := &tenantZone{base: base}
	n.zones[user] = z
	return z, nil
}

// EraseTenant is the GDPR "right to be forgotten" made structural: it
// destroys the user's protection zone — per-region key material,
// freshness counters, and valid bits all die with it, so the zone's
// ciphertext in device memory is unrecoverable even by the operator —
// and forgets the user's key and directory entries. The zone's address
// range returns to the free list for the next tenant.
func (n *Node) EraseTenant(user string) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.cfg.TenantZones {
		return rejectf("sdp: node has no tenant zones to erase")
	}
	if z, ok := n.zones[user]; ok {
		if err := n.sh.DestroyRegion(user, "store"); err != nil {
			return err
		}
		n.freeZones = append(n.freeZones, z.base)
		delete(n.zones, user)
	}
	for name, e := range n.directory {
		if e.user == user {
			delete(n.directory, name)
			n.respInvalidate(name)
		}
	}
	delete(n.userKeys, user)
	// The cipher cache keys on (user, file); erasure is rare, so a full
	// sweep beats tracking per-user membership.
	clear(n.userCiphers)
	return nil
}

// putStaged is the node half of a Put once the sealed tls image has been
// DMAed in: pull the extent through the tls engine set (decrypt+verify),
// apply the per-user GDPR layer, push through the store engine set.
// Caller holds mu.
func (n *Node) putStaged(user, name string, entry fileEntry) error {
	aligned := alignUp(entry.size, n.cfg.AuthBlock)
	buf := n.stage(aligned)
	if _, err := n.sh.ReadBurst(tlsBase, buf); err != nil {
		return err
	}
	n.sealForUser(user, name, buf[:entry.size])
	if err := n.storeWrite(entry.slot, buf); err != nil {
		return err
	}
	n.directory[name] = entry
	n.respInvalidate(name)
	return n.flushStore(user)
}

// flushStore is Put's durability barrier: under the default
// write-through policy every operation's store lines are sealed to DRAM
// before it returns; under WriteBack they stay resident and dirty (the
// serving-tier policy), written back by eviction pressure or Sync. In
// tenant-zone mode the barrier covers only the writing user's zone.
func (n *Node) flushStore(user string) error {
	if n.cfg.WriteBack && n.oram == nil {
		return nil
	}
	if n.cfg.TenantZones {
		return n.sh.FlushTenantRegion(user, "store")
	}
	return n.sh.FlushRegion("store")
}

// Sync writes back all dirty store lines — the explicit durability
// barrier of a WriteBack node (a no-op burden under write-through). In
// tenant-zone mode it walks every live zone.
func (n *Node) Sync() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cfg.TenantZones {
		for user := range n.zones {
			if err := n.sh.FlushTenantRegion(user, "store"); err != nil {
				return err
			}
		}
		return nil
	}
	return n.sh.FlushRegion("store")
}

// Put stores a file for a user: application → tls engine set → user-key
// layer → store engine set.
func (n *Node) Put(user, name string, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	entry, err := n.reserve(user, name, len(payload))
	if err != nil {
		return err
	}
	if err := n.stageTLSIn(payload); err != nil {
		return err
	}
	return n.putStaged(user, name, entry)
}

// PutSealed stores a file whose tls image the Data Owner already sealed
// (see TLSSession.Seal): ct and tags are the payload extent, padded to
// whole auth blocks. This is the serving-tier entry point — the
// Data-Owner-side cryptography happens on the client's goroutine, outside
// the node's serialised section.
func (n *Node) PutSealed(user, name string, size int, ct, tags []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	entry, err := n.reserve(user, name, size)
	if err != nil {
		return err
	}
	aligned := alignUp(size, n.cfg.AuthBlock)
	if len(ct) != aligned || len(tags) != aligned/n.cfg.AuthBlock*shield.TagSize {
		return rejectf("sdp: sealed image is %d+%d bytes, want %d+%d", len(ct), len(tags),
			aligned, aligned/n.cfg.AuthBlock*shield.TagSize)
	}
	if err := n.dmaTLSIn(ct, tags); err != nil {
		return err
	}
	return n.putStaged(user, name, entry)
}

// storeWrite places a slot image (whole auth blocks) in the store region:
// directly addressed in the flat layout, or block by block through the
// ORAM in oblivious mode, where each auth block is one oblivious access.
func (n *Node) storeWrite(slot int, buf []byte) error {
	if n.oram == nil {
		addr := uint64(storeBase + slot*n.cfg.SlotBytes)
		_, err := n.sh.WriteBurst(addr, buf)
		return err
	}
	base := slot * (n.cfg.SlotBytes / n.cfg.AuthBlock)
	for i := 0; i < len(buf)/n.cfg.AuthBlock; i++ {
		if err := n.oram.Write(base+i, buf[i*n.cfg.AuthBlock:(i+1)*n.cfg.AuthBlock]); err != nil {
			return err
		}
	}
	return nil
}

// storeRead is the read side of storeWrite.
func (n *Node) storeRead(slot int, buf []byte) error {
	if n.oram == nil {
		addr := uint64(storeBase + slot*n.cfg.SlotBytes)
		_, err := n.sh.ReadBurst(addr, buf)
		return err
	}
	base := slot * (n.cfg.SlotBytes / n.cfg.AuthBlock)
	for i := 0; i < len(buf)/n.cfg.AuthBlock; i++ {
		blk, err := n.oram.Read(base + i)
		if err != nil {
			return err
		}
		copy(buf[i*n.cfg.AuthBlock:], blk)
	}
	return nil
}

// getStaged is the node half of a Get: locate the file, pull it from the
// store engine set, strip the GDPR layer, and push the plaintext into the
// tls engine set ready for staging out. Caller holds mu.
func (n *Node) getStaged(user, name string) (fileEntry, error) {
	if _, ok := n.userKeys[user]; !ok {
		return fileEntry{}, rejectf("sdp: user %q has no provisioned key", user)
	}
	entry, ok := n.directory[name]
	if !ok {
		return fileEntry{}, rejectf("sdp: file %q not found", name)
	}
	if entry.user != user {
		return fileEntry{}, rejectf("sdp: user %q may not access %q (GDPR policy)", user, name)
	}
	buf := n.stage(alignUp(entry.size, n.cfg.AuthBlock))
	if err := n.storeRead(entry.slot, buf); err != nil {
		return fileEntry{}, err
	}
	n.sealForUser(user, name, buf[:entry.size]) // CTR layer is an involution
	if _, err := n.sh.WriteBurst(tlsBase, buf); err != nil {
		return fileEntry{}, err
	}
	return entry, nil
}

// Get retrieves a file for a user and returns the plaintext as the
// application's TLS endpoint would see it.
func (n *Node) Get(user, name string) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	entry, err := n.getStaged(user, name)
	if err != nil {
		return nil, err
	}
	return n.stageTLSOut(entry.size)
}

// GetSealed retrieves a file as its sealed tls image, DMAed into the
// caller's ct/tags buffers (each at least the region's aligned capacity;
// the returned size selects the extent — alignUp(size) ciphertext bytes
// and the matching tags). The Data Owner opens it with TLSSession.Open on
// the client's goroutine, outside the node's serialised section.
func (n *Node) GetSealed(user, name string, ct, tags []byte) (int, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.respCache != nil {
		// The cache is consulted only after the same authorisation the
		// full path enforces: provisioned user, existing file, owner match.
		if _, ok := n.userKeys[user]; ok {
			if e, ok := n.directory[name]; ok && e.user == user {
				if size, ok := n.respServe(name, ct, tags); ok {
					return size, nil
				}
				n.respMiss++
			}
		}
	}
	entry, err := n.getStaged(user, name)
	if err != nil {
		return 0, err
	}
	aligned := alignUp(entry.size, n.cfg.AuthBlock)
	k := aligned / n.cfg.AuthBlock
	if len(ct) < aligned || len(tags) < k*shield.TagSize {
		return 0, rejectf("sdp: sealed-image buffers hold %d+%d bytes, need %d+%d",
			len(ct), len(tags), aligned, k*shield.TagSize)
	}
	if err := n.stageTLSOutSealed(aligned, ct[:aligned], tags[:k*shield.TagSize]); err != nil {
		return 0, err
	}
	n.respInsert(name, entry.size, ct[:aligned], tags[:k*shield.TagSize])
	return entry.size, nil
}

// sealForUser applies the per-user GDPR encryption layer in place: an
// AES-CTR pass under the user's key with a per-file IV. CTR is an
// involution, so the same call encrypts and decrypts. The derived cipher
// is cached per (user, file) and runs on the selected hardware engine.
func (n *Node) sealForUser(user, name string, data []byte) {
	uc, ok := n.userCiphers[user+"\x00"+name]
	if !ok {
		key := kdf.Derive([]byte("sdp/user-file"), n.userKeys[user], []byte(name), 16)
		block, err := engine.NewAES(key, engine.Auto)
		if err != nil {
			panic("sdp: derived key invalid: " + err.Error())
		}
		uc = &userCipher{block: block}
		h := kdf.Derive([]byte("sdp/file-iv"), []byte(name), nil, aesx.IVSize)
		copy(uc.iv[:], h)
		if len(n.userCiphers) >= maxUserCiphers {
			clear(n.userCiphers)
		}
		n.userCiphers[user+"\x00"+name] = uc
	}
	n.ctr.XORKeyStream(uc.block, uc.iv, data, data)
}

// Report exposes the Shield's cycle accounting.
func (n *Node) Report() shield.Report { return n.sh.Report() }

// ResetStats clears the measurement window.
func (n *Node) ResetStats() {
	n.sh.ResetStats()
	n.mu.Lock()
	n.respHits, n.respMiss, n.respCycles = 0, 0, 0
	n.mu.Unlock()
}

// Shield exposes the underlying shield (controller provisioning, tests).
func (n *Node) Shield() *shield.Shield { return n.sh }

// ORAM exposes the oblivious store controller (nil unless the node was
// built with Oblivious set).
func (n *Node) ORAM() *oram.ORAM { return n.oram }

// DRAM exposes the device memory for adversarial tests.
func (n *Node) DRAM() *mem.DRAM { return n.dram }

func alignUp(n, a int) int { return (n + a - 1) / a * a }
