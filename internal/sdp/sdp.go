// Package sdp implements the paper's end-to-end case study (§6.2.3):
// SDP-style GDPR-compliant storage built from smart Storage Nodes (SNs)
// with FPGA TEEs and a centralised Controller Node (CN).
//
// Each Storage Node is a key-value store engine over the Shield. Two
// identical engine sets secure its traffic — one facing the storage
// device, one facing the application's TLS session — so every file byte
// crosses the Shield twice: decrypted from storage, re-encrypted for the
// application. The Controller Node attests each SN before provisioning
// the user-key database into it.
package sdp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/kdf"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/oram"
	"shef/internal/perf"
	"shef/internal/shield"
)

// NodeConfig sizes a Storage Node and selects its Shield engine
// configuration — the dimension swept by the paper's Table 2.
type NodeConfig struct {
	// Slots is the number of fixed-size file slots.
	Slots int
	// SlotBytes is the file slot size (1 MB in the paper's measurement).
	SlotBytes int
	// AuthBlock is the authentication block size (4 KB in the paper).
	AuthBlock int
	// Engines is the AES engine count per engine set.
	Engines int
	// SBox is the per-engine S-box parallelism.
	SBox aesx.SBoxParallelism
	// MAC selects HMAC or PMAC engines.
	MAC shield.MACKind
	// BufferBytes is the per-set buffer (16 KB in the paper).
	BufferBytes int
	// Oblivious fronts the store region with a Path ORAM (§5.2.2): file
	// blocks are placed by oblivious path accesses, so a cloud operator
	// watching the storage device's address bus cannot tell which file —
	// and therefore which user — a request serves. The Shield still hides
	// contents; the ORAM hides the access pattern, at a measured bandwidth
	// amplification.
	Oblivious bool
}

// Table2Configs are the five Shield configurations of the paper's Table 2,
// in order: (engines, S-box, MAC) = (4,4x,HMAC), (4,16x,HMAC),
// (4,16x,PMAC), (8,16x,PMAC), (16,16x,PMAC).
func Table2Configs() []NodeConfig {
	base := NodeConfig{Slots: 4, SlotBytes: 1 << 20, AuthBlock: 4096, BufferBytes: 16 << 10}
	mk := func(eng int, sbox aesx.SBoxParallelism, mac shield.MACKind) NodeConfig {
		c := base
		c.Engines, c.SBox, c.MAC = eng, sbox, mac
		return c
	}
	return []NodeConfig{
		mk(4, aesx.SBox4x, shield.HMAC),
		mk(4, aesx.SBox16x, shield.HMAC),
		mk(4, aesx.SBox16x, shield.PMAC),
		mk(8, aesx.SBox16x, shield.PMAC),
		mk(16, aesx.SBox16x, shield.PMAC),
	}
}

// LineRateParams models the Storage Node's data fabric: a line-rate
// storage/network interface (≈1 GB/s at the 250 MHz Shield clock) rather
// than the F1 DRAM channel.
func LineRateParams() perf.Params {
	p := perf.Default()
	p.DRAMBytesPerCycle = 4
	return p
}

// Region layout of the node's device memory.
const (
	storeBase = 0x0000_0000
	tlsBase   = 0x4000_0000
)

// Node is one SDP Storage Node: a KV engine over a Shield. File metadata
// (directory, sizes) lives in node-internal (on-chip) state; file contents
// live encrypted in the store region; application traffic stages through
// the tls region.
//
// A Node is safe for concurrent use, but serialises its operations: the
// node has a single TLS staging region and a single directory, so requests
// against one node queue the way they would on one physical Storage Node's
// network port. Cluster spreads load over many nodes for real parallelism.
type Node struct {
	cfg    NodeConfig
	sh     *shield.Shield
	dram   *mem.DRAM
	params perf.Params
	dek    []byte
	oram   *oram.ORAM // non-nil in oblivious mode; fronts the store region

	mu        sync.Mutex
	userKeys  map[string][]byte
	directory map[string]fileEntry
	nextSlot  int
}

type fileEntry struct {
	slot int
	size int
	user string
}

// oramConfig shapes the store-region ORAM: one ORAM block per auth block,
// buckets padded to the chunk size so bucket stores stream as full-chunk
// writes, position map recursing once the table outgrows 4K entries.
func (c NodeConfig) oramConfig(seed int64) oram.Config {
	return oram.Config{
		Base:            storeBase,
		Blocks:          c.Slots * c.SlotBytes / c.AuthBlock,
		BlockSize:       c.AuthBlock,
		Seed:            seed,
		ChunkAlign:      c.AuthBlock,
		PosMapThreshold: 4096,
	}
}

func (c NodeConfig) storeSize() uint64 {
	if !c.Oblivious {
		return uint64(c.Slots * c.SlotBytes)
	}
	// The ORAM tree (plus recursive position maps) replaces the flat slot
	// array; the region must cover its footprint in whole chunks.
	f := c.oramConfig(0).FootprintBytes()
	a := uint64(c.AuthBlock)
	return (f + a - 1) / a * a
}

func (c NodeConfig) tlsSize() uint64 { return uint64(c.SlotBytes) }

// ShieldConfig builds the two identical engine sets of §6.2.3.
func (c NodeConfig) ShieldConfig() shield.Config {
	mk := func(name string, base uint64, size uint64) shield.RegionConfig {
		return shield.RegionConfig{
			Name: name, Base: base, Size: size, ChunkSize: c.AuthBlock,
			AESEngines: c.Engines, SBox: c.SBox, KeySize: aesx.AES128,
			MAC: c.MAC, BufferBytes: c.BufferBytes,
		}
	}
	store := mk("store", storeBase, c.storeSize())
	// Files are overwritten in place, so the store region carries replay
	// counters: a cloud operator must not be able to roll a record back
	// to a pre-erasure version (the GDPR deletion guarantee).
	store.Freshness = true
	tls := mk("tls", tlsBase, c.tlsSize())
	tls.Channel = 1 // the TLS/network port is a separate physical interface
	return shield.Config{
		Regions:   []shield.RegionConfig{store, tls},
		Registers: 16,
	}
}

// NewNode boots a Storage Node: Shield construction plus Load Key
// provisioning with the session DEK (which the CN established during
// attestation).
func NewNode(cfg NodeConfig, dek []byte, params perf.Params) (*Node, error) {
	if cfg.Slots <= 0 || cfg.SlotBytes <= 0 {
		return nil, errors.New("sdp: node needs at least one slot")
	}
	if cfg.SlotBytes%cfg.AuthBlock != 0 {
		return nil, errors.New("sdp: slot size must be a multiple of the auth block")
	}
	if cfg.Oblivious {
		if cfg.Slots*cfg.SlotBytes/cfg.AuthBlock < 2 {
			return nil, errors.New("sdp: oblivious node needs at least two auth blocks of store")
		}
		if len(dek) < 8 {
			return nil, errors.New("sdp: oblivious node needs a session DEK of at least 8 bytes")
		}
	}
	scfg := cfg.ShieldConfig()
	if err := scfg.Validate(); err != nil {
		return nil, err
	}
	var tagBytes uint64
	for _, r := range scfg.Regions {
		tagBytes += uint64(r.Chunks() * shield.TagSize)
	}
	dram := mem.NewDRAM(uint64(tlsBase)+cfg.tlsSize()+tagBytes+1<<20, params)
	ocm := mem.NewOCM(1 << 32)
	// The attestation group is kept small for simulation speed; a real
	// deployment would use modp.Group14.
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		return nil, err
	}
	sh, err := shield.New(scfg, priv, dram, ocm, params)
	if err != nil {
		return nil, err
	}
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		return nil, err
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		return nil, err
	}
	n := &Node{
		cfg:       cfg,
		sh:        sh,
		dram:      dram,
		params:    params,
		dek:       append([]byte(nil), dek...),
		userKeys:  make(map[string][]byte),
		directory: make(map[string]fileEntry),
	}
	if cfg.Oblivious {
		// The leaf-draw seed derives from the session DEK: deterministic
		// per session, invisible to the host.
		seed := int64(binary.LittleEndian.Uint64(dek[:8]))
		n.oram, err = oram.NewWithConfig(sh, cfg.oramConfig(seed))
		if err != nil {
			return nil, fmt.Errorf("sdp: oblivious store: %w", err)
		}
	}
	return n, nil
}

// ProvisionUserKeys installs the CN's user-key database (paper: "The CN
// securely provisions a database of user keys into the TEE").
func (n *Node) ProvisionUserKeys(keys map[string][]byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for u, k := range keys {
		n.userKeys[u] = append([]byte(nil), k...)
	}
}

// tlsRegion returns the tls region config and layout.
func (n *Node) tlsRegion() (shield.RegionConfig, shield.RegionLayout) {
	cfg := n.cfg.ShieldConfig().Regions[1]
	layout, _ := n.sh.Layout("tls")
	return cfg, layout
}

// stageTLSIn is the application→node half of a TLS session: the
// application's endpoint seals the payload into the tls region image and
// the untrusted host DMAs it into device memory.
func (n *Node) stageTLSIn(payload []byte) error {
	cfg, layout := n.tlsRegion()
	image := make([]byte, cfg.Size)
	copy(image, payload)
	ct, tags, err := shield.SealRegionData(cfg, layout.RegionID, n.dek, image)
	if err != nil {
		return err
	}
	// Drop stale staging state before the DMA lands.
	if err := n.sh.Flush(); err != nil {
		return err
	}
	n.sh.InvalidateClean()
	if err := n.dram.RawWrite(layout.DataBase, ct); err != nil {
		return err
	}
	if err := n.dram.RawWrite(layout.TagBase, tags); err != nil {
		return err
	}
	return n.sh.MarkPreloaded("tls")
}

// stageTLSOut is the node→application half: the host DMAs the tls region
// ciphertext out and the application endpoint opens it.
func (n *Node) stageTLSOut(size int) ([]byte, error) {
	cfg, layout := n.tlsRegion()
	if err := n.sh.Flush(); err != nil {
		return nil, err
	}
	ct, err := n.dram.RawRead(layout.DataBase, int(layout.DataSize))
	if err != nil {
		return nil, err
	}
	tags, err := n.dram.RawRead(layout.TagBase, int(layout.TagSize))
	if err != nil {
		return nil, err
	}
	img, err := shield.OpenRegionData(cfg, layout.RegionID, n.dek, ct, tags, nil)
	if err != nil {
		return nil, err
	}
	return img[:size], nil
}

// Put stores a file for a user: application → tls engine set → user-key
// layer → store engine set.
func (n *Node) Put(user, name string, payload []byte) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.userKeys[user]; !ok {
		return fmt.Errorf("sdp: user %q has no provisioned key", user)
	}
	if len(payload) > n.cfg.SlotBytes {
		return fmt.Errorf("sdp: file of %d bytes exceeds slot size %d", len(payload), n.cfg.SlotBytes)
	}
	entry, ok := n.directory[name]
	if !ok {
		if n.nextSlot >= n.cfg.Slots {
			return errors.New("sdp: node full")
		}
		entry = fileEntry{slot: n.nextSlot}
		n.nextSlot++
	}
	entry.size = len(payload)
	entry.user = user
	if err := n.stageTLSIn(payload); err != nil {
		return err
	}
	// Node logic: pull through the tls engine set (decrypt), apply the
	// per-user GDPR layer, push through the store engine set (encrypt).
	buf := make([]byte, alignUp(len(payload), n.cfg.AuthBlock))
	if _, err := n.sh.ReadBurst(tlsBase, buf); err != nil {
		return err
	}
	n.sealForUser(user, name, buf[:len(payload)])
	if err := n.storeWrite(entry.slot, buf); err != nil {
		return err
	}
	n.directory[name] = entry
	return n.sh.Flush()
}

// storeWrite places a slot image (whole auth blocks) in the store region:
// directly addressed in the flat layout, or block by block through the
// ORAM in oblivious mode, where each auth block is one oblivious access.
func (n *Node) storeWrite(slot int, buf []byte) error {
	if n.oram == nil {
		addr := uint64(storeBase + slot*n.cfg.SlotBytes)
		_, err := n.sh.WriteBurst(addr, buf)
		return err
	}
	base := slot * (n.cfg.SlotBytes / n.cfg.AuthBlock)
	for i := 0; i < len(buf)/n.cfg.AuthBlock; i++ {
		if err := n.oram.Write(base+i, buf[i*n.cfg.AuthBlock:(i+1)*n.cfg.AuthBlock]); err != nil {
			return err
		}
	}
	return nil
}

// storeRead is the read side of storeWrite.
func (n *Node) storeRead(slot int, buf []byte) error {
	if n.oram == nil {
		addr := uint64(storeBase + slot*n.cfg.SlotBytes)
		_, err := n.sh.ReadBurst(addr, buf)
		return err
	}
	base := slot * (n.cfg.SlotBytes / n.cfg.AuthBlock)
	for i := 0; i < len(buf)/n.cfg.AuthBlock; i++ {
		blk, err := n.oram.Read(base + i)
		if err != nil {
			return err
		}
		copy(buf[i*n.cfg.AuthBlock:], blk)
	}
	return nil
}

// Get retrieves a file for a user and returns the plaintext as the
// application's TLS endpoint would see it.
func (n *Node) Get(user, name string) ([]byte, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.userKeys[user]; !ok {
		return nil, fmt.Errorf("sdp: user %q has no provisioned key", user)
	}
	entry, ok := n.directory[name]
	if !ok {
		return nil, fmt.Errorf("sdp: file %q not found", name)
	}
	if entry.user != user {
		return nil, fmt.Errorf("sdp: user %q may not access %q (GDPR policy)", user, name)
	}
	buf := make([]byte, alignUp(entry.size, n.cfg.AuthBlock))
	if err := n.storeRead(entry.slot, buf); err != nil {
		return nil, err
	}
	n.sealForUser(user, name, buf[:entry.size]) // CTR layer is an involution
	if _, err := n.sh.WriteBurst(tlsBase, buf); err != nil {
		return nil, err
	}
	return n.stageTLSOut(entry.size)
}

// sealForUser applies the per-user GDPR encryption layer in place: an
// AES-CTR pass under the user's key with a per-file IV. CTR is an
// involution, so the same call encrypts and decrypts.
func (n *Node) sealForUser(user, name string, data []byte) {
	key := kdf.Derive([]byte("sdp/user-file"), n.userKeys[user], []byte(name), 16)
	cipher, err := aesx.NewCipher(key)
	if err != nil {
		panic("sdp: derived key invalid: " + err.Error())
	}
	var iv [aesx.IVSize]byte
	h := kdf.Derive([]byte("sdp/file-iv"), []byte(name), nil, aesx.IVSize)
	copy(iv[:], h)
	aesx.CTR(cipher, iv, data, data)
}

// Report exposes the Shield's cycle accounting.
func (n *Node) Report() shield.Report { return n.sh.Report() }

// ResetStats clears the measurement window.
func (n *Node) ResetStats() { n.sh.ResetStats() }

// Shield exposes the underlying shield (controller provisioning, tests).
func (n *Node) Shield() *shield.Shield { return n.sh }

// ORAM exposes the oblivious store controller (nil unless the node was
// built with Oblivious set).
func (n *Node) ORAM() *oram.ORAM { return n.oram }

// DRAM exposes the device memory for adversarial tests.
func (n *Node) DRAM() *mem.DRAM { return n.dram }

func alignUp(n, a int) int { return (n + a - 1) / a * a }
