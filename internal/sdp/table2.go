package sdp

import (
	"crypto/rand"
	"fmt"
)

// Table2Row is one column of the paper's Table 2: a Shield configuration
// and the measured steady-state throughput overhead for 1 MB file accesses.
type Table2Row struct {
	Config   NodeConfig
	Label    string
	Overhead float64 // fractional: 2.98 means +298%
}

// MeasureOverhead runs the steady-state file-access measurement of §6.2.3
// on one node configuration: a 1 MB Get, measured at the Shield, compared
// to the unsecured key-value store streaming the same file at line rate
// (cut-through, one pass over the fabric).
func MeasureOverhead(cfg NodeConfig) (Table2Row, error) {
	params := LineRateParams()
	dek := make([]byte, 32)
	rand.Read(dek)
	node, err := NewNode(cfg, dek, params)
	if err != nil {
		return Table2Row{}, err
	}
	node.ProvisionUserKeys(map[string][]byte{"alice": []byte("alice-key-0123456789abcdef000000")})
	fileBytes := cfg.SlotBytes - cfg.AuthBlock // leave headroom in the slot
	payload := make([]byte, fileBytes)
	rand.Read(payload)
	if err := node.Put("alice", "records.db", payload); err != nil {
		return Table2Row{}, err
	}
	// Steady state: measure the Get path only.
	node.ResetStats()
	got, err := node.Get("alice", "records.db")
	if err != nil {
		return Table2Row{}, err
	}
	for i := range got {
		if got[i] != payload[i] {
			return Table2Row{}, fmt.Errorf("sdp: byte %d corrupted through the node: %w", i, ErrBadResponse)
		}
	}
	secure := node.Report().MemoryCycles()

	// Baseline: the unsecured KV store moves the file once at line rate.
	chunks := (fileBytes + cfg.AuthBlock - 1) / cfg.AuthBlock
	bare := uint64(chunks) * params.DRAMCycles(cfg.AuthBlock)

	row := Table2Row{
		Config:   cfg,
		Label:    fmt.Sprintf("%dx Eng / %s / %s", cfg.Engines, cfg.SBox, cfg.MAC),
		Overhead: float64(secure)/float64(bare) - 1,
	}
	return row, nil
}

// Table2 regenerates the full sweep.
func Table2() ([]Table2Row, error) {
	var rows []Table2Row
	for _, cfg := range Table2Configs() {
		row, err := MeasureOverhead(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
