package sdp

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func clusterConfig(shards int) ClusterConfig {
	// Smaller slots but many more of them than smallConfig: hash routing is
	// uneven, so any one shard may receive well above its fair share.
	node := smallConfig()
	node.Slots = 32
	node.SlotBytes = 16 << 10
	return ClusterConfig{Shards: shards, Node: node}
}

func newCluster(t *testing.T, shards int) *Cluster {
	t.Helper()
	c, err := NewCluster(clusterConfig(shards))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		if err := c.RegisterUser(u, []byte(u+"-key")); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestClusterPutGetRoundTrip(t *testing.T) {
	c := newCluster(t, 4)
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("file-%d", i)
		payload := bytes.Repeat([]byte{byte(i + 1)}, 3000+i*100)
		if err := c.Put("alice", name, payload); err != nil {
			t.Fatal(err)
		}
		got, err := c.Get("alice", name)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("file %q corrupted through the cluster", name)
		}
	}
	st := c.Stats()
	if st.Puts != 8 || st.Gets != 8 || st.Errors != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClusterShardingIsStableAndSpread(t *testing.T) {
	c := newCluster(t, 4)
	seen := make(map[int]int)
	for i := 0; i < 64; i++ {
		name := fmt.Sprintf("file-%d", i)
		s := c.ShardFor(name)
		if s != c.ShardFor(name) {
			t.Fatal("shard routing not deterministic")
		}
		if s < 0 || s >= c.Shards() {
			t.Fatalf("shard %d out of range", s)
		}
		seen[s]++
	}
	if len(seen) < 3 {
		t.Fatalf("64 files landed on only %d of 4 shards: %v", len(seen), seen)
	}
}

func TestClusterPolicyAcrossShards(t *testing.T) {
	c := newCluster(t, 3)
	if err := c.Put("alice", "secret", []byte("alice's record")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("bob", "secret"); err == nil {
		t.Fatal("bob read alice's file through the cluster")
	}
	if _, err := c.Get("mallory", "secret"); err == nil {
		t.Fatal("unregistered user served")
	}
	if c.Stats().Errors != 2 {
		t.Fatalf("errors = %d, want 2", c.Stats().Errors)
	}
}

func TestClusterLateRegistrationReachesAllShards(t *testing.T) {
	c := newCluster(t, 4)
	if err := c.RegisterUser("carol", []byte("carol-key")); err != nil {
		t.Fatal(err)
	}
	// Write one file per shard so every node must know carol.
	for i := 0; i < 16; i++ {
		name := fmt.Sprintf("carol-%d", i)
		if err := c.Put("carol", name, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSealedKeyDBRejectsSplice(t *testing.T) {
	c := newCluster(t, 2)
	// A database sealed for shard 0 must not install on shard 1, even if
	// the operator relays it byte-for-byte.
	db, err := c.ctrl.sealKeyDB(0, c.slots[0].dek)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Node(1).InstallSealedUserKeys(1, db); err == nil {
		t.Fatal("shard 1 accepted a database sealed for shard 0")
	}
	// Bit flips are caught.
	db2, _ := c.ctrl.sealKeyDB(0, c.slots[0].dek)
	db2.Ciphertext[0] ^= 1
	if err := c.Node(0).InstallSealedUserKeys(0, db2); err == nil {
		t.Fatal("tampered key database installed")
	}
}

// TestClusterConcurrentPutGet drives many goroutines against all shards at
// once; run under -race this is the data-path concurrency check for the
// serving tier.
func TestClusterConcurrentPutGet(t *testing.T) {
	c := newCluster(t, 4)
	const workers = 8
	const filesPerWorker = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers*filesPerWorker*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < filesPerWorker; i++ {
				name := fmt.Sprintf("w%d-f%d", w, i)
				payload := bytes.Repeat([]byte{byte(w*16 + i + 1)}, 2048)
				if err := c.Put("alice", name, payload); err != nil {
					errCh <- err
					return
				}
				got, err := c.Get("alice", name)
				if err != nil {
					errCh <- err
					return
				}
				if !bytes.Equal(got, payload) {
					errCh <- fmt.Errorf("file %q corrupted under concurrency", name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Puts != workers*filesPerWorker || st.Gets != workers*filesPerWorker {
		t.Fatalf("stats = %+v", st)
	}
	if st.BusyCycles == 0 || st.MaxBusy == 0 {
		t.Fatal("no simulated busy time accounted")
	}
}

// TestClusterConcurrentMixedUsers mixes users and overwrites under load so
// the per-node directory and user-key paths race-test too.
func TestClusterConcurrentMixedUsers(t *testing.T) {
	c := newCluster(t, 2)
	users := []string{"alice", "bob"}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			u := users[w%2]
			name := fmt.Sprintf("shared-%d", w%4) // collide on purpose
			for i := 0; i < 3; i++ {
				payload := bytes.Repeat([]byte{byte(w + 1)}, 1024)
				// Overwrites by the other user are policy-rejected; both
				// outcomes are fine — the invariant is no race, no torn data.
				if err := c.Put(u, name, payload); err != nil {
					continue
				}
				if got, err := c.Get(u, name); err == nil && len(got) != 1024 {
					panic("torn read")
				}
			}
		}(w)
	}
	wg.Wait()
}

// BenchmarkClusterPutGet drives concurrent Put/Get pairs through a
// four-shard cluster — the storage-tier hot path, with the deterministic
// simulated throughput (ops over the busiest shard's cycles) as the
// CI-gated metric.
func BenchmarkClusterPutGet(b *testing.B) {
	c, err := NewCluster(clusterConfig(4))
	if err != nil {
		b.Fatal(err)
	}
	if err := c.RegisterUser("alice", []byte("alice-key")); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	c.ResetStats()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			name := fmt.Sprintf("bench-%d", i%32)
			if err := c.Put("alice", name, payload); err != nil {
				b.Error(err)
				return
			}
			if _, err := c.Get("alice", name); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	st := c.Stats()
	ops := st.Puts + st.Gets
	if st.MaxBusy > 0 {
		simSec := float64(st.MaxBusy) / 250e6
		b.ReportMetric(float64(ops)/simSec, "sim-ops/sec")
	}
}
