package sdp

import (
	"errors"
	"fmt"
)

// Typed cluster errors. Callers branch with errors.Is: ErrRejected is an
// application-level verdict (retrying cannot change it), everything else
// is infrastructure trouble the resilience layer retries and falls back
// across replicas for.
var (
	// ErrShardDown marks a replica that is crashed, partitioned, or
	// health-gated — unreachable now, possibly back later.
	ErrShardDown = errors.New("sdp: shard down")
	// ErrQuorumLost is a write that could not reach its write quorum: the
	// data may exist on a minority of replicas but is NOT acknowledged.
	ErrQuorumLost = errors.New("sdp: write quorum lost")
	// ErrDegraded is a read that exhausted every replica without an
	// authoritative answer — the cluster is serving in degraded mode and
	// this file is currently unreadable.
	ErrDegraded = errors.New("sdp: cluster degraded")
	// ErrRejected classifies application-level rejections (unknown user,
	// policy violation, file not found, node full): authoritative answers,
	// never retried, never counted against a shard's health.
	ErrRejected = errors.New("sdp: request rejected")
	// ErrBadResponse marks a sealed response whose shape cannot be opened
	// (size out of range, truncated extents): corruption-adjacent
	// infrastructure trouble, failed over like an authentication failure.
	ErrBadResponse = errors.New("sdp: malformed sealed response")
	// ErrConfig classifies constructor and provisioning input that can
	// never work (bad shard counts, malformed key DBs): an authoritative
	// rejection of the configuration, not runtime trouble.
	ErrConfig = errors.New("sdp: invalid configuration")
)

// ShardError carries the shard identity of a failure through the cluster
// API so operators can tell which node misbehaved. Unwrap exposes the
// underlying cause to errors.Is/As.
type ShardError struct {
	Shard int
	Op    string
	Err   error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("sdp: shard %d: %s: %v", e.Shard, e.Op, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// Retryable reports whether an operation error is worth retrying or
// falling back for: anything except an application rejection (and nil).
func Retryable(err error) bool {
	return err != nil && !errors.Is(err, ErrRejected)
}

// rejected tags an error as an application rejection without changing its
// message: Error() is the original text, and the multi-target Unwrap makes
// errors.Is(err, ErrRejected) true while keeping the original chain.
type rejected struct{ err error }

func (r rejected) Error() string   { return r.err.Error() }
func (r rejected) Unwrap() []error { return []error{r.err, ErrRejected} }
func reject(err error) error       { return rejected{err} }
func rejectf(format string, a ...any) error {
	return rejected{fmt.Errorf(format, a...)}
}
