package sdp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"shef/internal/faultinject"
)

// replicatedConfig is the resilience-test geometry: 4 shards, 3-way
// replication (write quorum 2 — tolerates one failed shard for both
// reads and writes), write-through so every acknowledged byte is sealed
// to DRAM before the ack, and fast retry timing so tests stay quick.
func replicatedConfig(shards, replicas int) ClusterConfig {
	cfg := clusterConfig(shards)
	cfg.Replicas = replicas
	cfg.Retry = RetryPolicy{
		MaxAttempts: 3,
		BaseBackoff: 100 * time.Microsecond,
		MaxBackoff:  time.Millisecond,
		Seed:        1,
	}
	cfg.OpTimeout = 5 * time.Second
	return cfg
}

func newReplicatedCluster(t *testing.T, shards, replicas int) *Cluster {
	t.Helper()
	c, err := NewCluster(replicatedConfig(shards, replicas))
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		if err := c.RegisterUser(u, []byte(u+"-key")); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestReplicatedPutLandsOnAllReplicas(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	payload := bytes.Repeat([]byte{0x5A}, 3000)
	if err := c.Put("alice", "doc", payload); err != nil {
		t.Fatal(err)
	}
	for _, shard := range c.replicaSet("doc") {
		got, err := c.Node(shard).Get("alice", "doc")
		if err != nil {
			t.Fatalf("replica %d: %v", shard, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("replica %d holds divergent bytes", shard)
		}
	}
	// Non-replica shards must not hold it.
	reps := map[int]bool{}
	for _, s := range c.replicaSet("doc") {
		reps[s] = true
	}
	for i := 0; i < c.Shards(); i++ {
		if reps[i] {
			continue
		}
		if _, err := c.Node(i).Get("alice", "doc"); err == nil {
			t.Fatalf("non-replica shard %d holds the file", i)
		}
	}
}

func TestReplicaSetPlacement(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	reps := c.replicaSet("doc")
	if len(reps) != 3 {
		t.Fatalf("replica set size %d, want 3", len(reps))
	}
	home := c.ShardFor("doc")
	for k, s := range reps {
		if s != (home+k)%4 {
			t.Fatalf("replica %d = shard %d, want successor %d", k, s, (home+k)%4)
		}
	}
}

// TestDegradedReadAfterCrash: crash the primary; reads must fall back to
// a successor replica and stats must show it.
func TestDegradedReadAfterCrash(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	payload := bytes.Repeat([]byte{0x11}, 2048)
	if err := c.Put("alice", "doc", payload); err != nil {
		t.Fatal(err)
	}
	primary := c.ShardFor("doc")
	c.CrashShard(primary)
	got, err := c.Get("alice", "doc")
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read returned wrong bytes")
	}
	st := c.Stats()
	if st.FallbackReads == 0 {
		t.Fatalf("stats show no fallback reads: %+v", st)
	}
	if st.DownShards != 1 {
		t.Fatalf("DownShards = %d, want 1", st.DownShards)
	}
}

// TestDegradedWriteAtQuorum: with one of three replicas crashed, writes
// still acknowledge (quorum 2) and are counted as degraded.
func TestDegradedWriteAtQuorum(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	reps := c.replicaSet("doc")
	c.CrashShard(reps[1])
	if err := c.Put("alice", "doc", []byte("quorum write")); err != nil {
		t.Fatalf("write with 2/3 replicas up failed: %v", err)
	}
	if st := c.Stats(); st.DegradedWrites == 0 {
		t.Fatalf("degraded write not counted: %+v", st)
	}
	// Both surviving replicas hold it.
	for _, shard := range []int{reps[0], reps[2]} {
		if _, err := c.Node(shard).Get("alice", "doc"); err != nil {
			t.Fatalf("surviving replica %d missing acked write: %v", shard, err)
		}
	}
}

// TestQuorumLost: two of three replicas down kills the write quorum; the
// caller gets the typed error.
func TestQuorumLost(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	reps := c.replicaSet("doc")
	c.CrashShard(reps[0])
	c.PartitionShard(reps[1])
	err := c.Put("alice", "doc", []byte("doomed"))
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
	if !errors.Is(err, ErrShardDown) {
		t.Fatalf("quorum error should carry the shard-down cause: %v", err)
	}
	if st := c.Stats(); st.QuorumFailures == 0 {
		t.Fatalf("quorum failure not counted: %+v", st)
	}
}

// TestRestartAndAntiEntropyRepair: crash a replica, keep writing, restart
// it, Sync — the restarted replica must converge to byte-identical state.
func TestRestartAndAntiEntropyRepair(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	payloadA := bytes.Repeat([]byte{0xA1}, 4096)
	if err := c.Put("alice", "doc", payloadA); err != nil {
		t.Fatal(err)
	}
	reps := c.replicaSet("doc")
	c.CrashShard(reps[1])
	// Overwrite while the replica is dead: the survivors advance.
	payloadB := bytes.Repeat([]byte{0xB2}, 5000)
	if err := c.Put("alice", "doc", payloadB); err != nil {
		t.Fatal(err)
	}
	if err := c.RestartShard(reps[1]); err != nil {
		t.Fatal(err)
	}
	// Fresh node: file is gone until anti-entropy repairs it.
	if _, err := c.Node(reps[1]).Get("alice", "doc"); err == nil {
		t.Fatal("restarted shard should come back empty")
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("sync/repair: %v", err)
	}
	got, err := c.Node(reps[1]).Get("alice", "doc")
	if err != nil {
		t.Fatalf("repaired replica unreadable: %v", err)
	}
	if !bytes.Equal(got, payloadB) {
		t.Fatal("repair converged to the wrong version")
	}
	if st := c.Stats(); st.Repairs == 0 {
		t.Fatalf("repair not counted: %+v", st)
	}
}

// TestPartitionHeal: a partitioned shard keeps its state; after heal plus
// Sync it serves again and converges on writes it missed.
func TestPartitionHeal(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	if err := c.Put("alice", "doc", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	reps := c.replicaSet("doc")
	c.PartitionShard(reps[2])
	if err := c.Put("alice", "doc", []byte("v2-longer")); err != nil {
		t.Fatal(err)
	}
	// Register a user while the shard is unreachable: it must learn the
	// key at heal time.
	if err := c.RegisterUser("carol", []byte("carol-key")); err != nil {
		t.Fatal(err)
	}
	if err := c.HealShard(reps[2]); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := c.Node(reps[2]).Get("alice", "doc")
	if err != nil || string(got) != "v2-longer" {
		t.Fatalf("healed replica = %q, %v; want v2-longer", got, err)
	}
	// The healed shard knows carol (key DB re-pushed at heal).
	if err := c.Node(reps[2]).Put("carol", "carol-file", []byte("x")); err != nil {
		t.Fatalf("healed shard missing late-registered user: %v", err)
	}
}

// TestHealthFSMTransitions drives the detector through its full cycle.
func TestHealthFSMTransitions(t *testing.T) {
	var h healthFSM
	if h.State() != Healthy {
		t.Fatal("zero value should be Healthy")
	}
	h.failure()
	if h.State() != Healthy {
		t.Fatal("one failure should not suspect")
	}
	h.failure()
	if h.State() != Suspect {
		t.Fatalf("state after %d failures = %v, want Suspect", suspectAfter, h.State())
	}
	h.success()
	if h.State() != Healthy {
		t.Fatal("success in Suspect should clear to Healthy")
	}
	for i := 0; i < downAfter; i++ {
		h.failure()
	}
	if h.State() != Down {
		t.Fatalf("state after %d failures = %v, want Down", downAfter, h.State())
	}
	// Down: gated except the periodic probe.
	allowed := 0
	for i := 0; i < probeEvery; i++ {
		if h.allowOp() {
			allowed++
		}
	}
	if allowed != 1 {
		t.Fatalf("Down allowed %d/%d ops, want exactly 1 probe", allowed, probeEvery)
	}
	h.success()
	if h.State() != Recovering {
		t.Fatal("probe success should move Down → Recovering")
	}
	h.failure()
	if h.State() != Down {
		t.Fatal("failure in Recovering should fall straight back Down")
	}
	h.success()
	for i := 1; i < recoverAfter; i++ {
		h.success()
	}
	if h.State() != Healthy {
		t.Fatalf("state after %d recovery successes = %v, want Healthy", recoverAfter, h.State())
	}
}

// TestHealthGateSkipsDownShard: after a crash takes the detector Down,
// reads stop paying for the dead primary (no per-op retry storm) and the
// periodic probe discovers the restart without operator involvement
// beyond RestartShard's own marking — tested here via the raw FSM path by
// NOT using RestartShard's markRecovering.
func TestHealthGateSkipsDownShard(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	if err := c.Put("alice", "doc", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	primary := c.ShardFor("doc")
	c.CrashShard(primary)
	// Drive the detector Down with a few reads.
	for i := 0; i < downAfter+1; i++ {
		if _, err := c.Get("alice", "doc"); err != nil {
			t.Fatalf("degraded read %d failed: %v", i, err)
		}
	}
	if got := c.slots[primary].health.State(); got != Down {
		t.Fatalf("primary health = %v, want Down", got)
	}
	retriesBefore := c.Stats().Retries
	for i := 0; i < 8; i++ {
		if _, err := c.Get("alice", "doc"); err != nil {
			t.Fatal(err)
		}
	}
	// Gated shard: fallbacks continue but no retry budget is burned on it
	// (ErrShardDown short-circuits the retry loop).
	if got := c.Stats().Retries; got != retriesBefore {
		t.Fatalf("down shard still consumed %d retries", got-retriesBefore)
	}
}

// TestInjectedTransientErrorsAreRetried: a fault plan that fails a
// fraction of put attempts must be absorbed by the retry loop.
func TestInjectedTransientErrorsAreRetried(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	faultinject.Activate(&faultinject.Plan{Seed: 11, Rules: []faultinject.Rule{
		{Target: FaultSitePut, Shard: faultinject.AnyShard, Kind: faultinject.KindError, Prob: 0.25},
	}})
	defer faultinject.Deactivate()
	for i := 0; i < 24; i++ {
		name := fmt.Sprintf("file-%d", i)
		if err := c.Put("alice", name, []byte("flaky fabric")); err != nil {
			t.Fatalf("put %d not absorbed: %v", i, err)
		}
	}
	if st := c.Stats(); st.Retries == 0 {
		t.Fatalf("no retries recorded under a 25%% error plan: %+v", st)
	}
}

// TestAppRejectionsAreNotRetried: policy violations must surface
// immediately (no retry, no health penalty) even with replication on.
func TestAppRejectionsAreNotRetried(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	if err := c.Put("alice", "secret", []byte("alice's")); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	_, err := c.Get("mallory", "secret")
	if err == nil {
		t.Fatal("unregistered user served")
	}
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("policy rejection not classed ErrRejected: %v", err)
	}
	if Retryable(err) {
		t.Fatal("policy rejection classed retryable")
	}
	st := c.Stats()
	if st.Retries != 0 {
		t.Fatalf("policy rejection consumed retries: %+v", st)
	}
	for i, slot := range c.slots {
		if got := slot.health.State(); got != Healthy {
			t.Fatalf("shard %d health = %v after pure policy traffic", i, got)
		}
	}
}

// TestShardErrorIdentity: every cluster-level failure names its shard.
func TestShardErrorIdentity(t *testing.T) {
	c := newReplicatedCluster(t, 4, 1)
	primary := c.ShardFor("doc")
	c.CrashShard(primary)
	err := c.Put("alice", "doc", []byte("x"))
	var se *ShardError
	if !errors.As(err, &se) {
		t.Fatalf("cluster error carries no shard identity: %v", err)
	}
	if se.Shard != primary {
		t.Fatalf("shard identity = %d, want %d", se.Shard, primary)
	}
}

// TestContextCancellation: a canceled context stops the operation with
// the context's error.
func TestContextCancellation(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.PutCtx(ctx, "alice", "doc", []byte("x")); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := c.GetCtx(ctx, "alice", "doc"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestBackoffDeterministicAndCapped: the jittered schedule is a pure
// function of the seed, grows with attempts, and respects the cap.
func TestBackoffDeterministicAndCapped(t *testing.T) {
	mk := func() *Cluster {
		c := &Cluster{cfg: ClusterConfig{Retry: RetryPolicy{
			MaxAttempts: 5, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond, Seed: 7,
		}}}
		seed := uint64(7)
		c.rng.Store(seed*0x9e3779b97f4a7c15 + 1)
		return c
	}
	a, b := mk(), mk()
	for attempt := 0; attempt < 8; attempt++ {
		da, db := a.backoff(attempt), b.backoff(attempt)
		if da != db {
			t.Fatalf("attempt %d: %v vs %v — jitter not deterministic", attempt, da, db)
		}
		if da > 20*time.Millisecond {
			t.Fatalf("attempt %d: %v exceeds the cap", attempt, da)
		}
		if da < time.Millisecond {
			t.Fatalf("attempt %d: %v below base/2", attempt, da)
		}
	}
}

// TestClientReplicatedRoundTrip: the sealed client path (per-replica
// sessions) survives a primary crash mid-workload.
func TestClientReplicatedRoundTrip(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x77}, 6000)
	if err := cl.Put("alice", "doc", payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get("alice", "doc", nil)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip before crash: %v", err)
	}
	c.CrashShard(c.ShardFor("doc"))
	got, err = cl.Get("alice", "doc", nil)
	if err != nil {
		t.Fatalf("degraded client read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded client read returned wrong bytes")
	}
	// Writes still land at quorum; the crashed primary is skipped.
	if err := cl.Put("alice", "doc2", payload); err != nil {
		t.Fatalf("degraded client write: %v", err)
	}
}

// TestClientSessionsSurviveRestart: a restarted shard resumes the same
// session DEK, so a client built before the crash keeps working against
// the replacement node.
func TestClientSessionsSurviveRestart(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x3C}, 2048)
	if err := cl.Put("alice", "doc", payload); err != nil {
		t.Fatal(err)
	}
	primary := c.ShardFor("doc")
	c.CrashShard(primary)
	if err := c.RestartShard(primary); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get("alice", "doc", nil)
	if err != nil {
		t.Fatalf("old client against restarted shard: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("old client read wrong bytes from restarted shard")
	}
}

// TestCorruptedReplicaReadFallsBack: injected read-side corruption fails
// authentication at the client session and the read falls back — the
// corrupted bytes are never returned.
func TestCorruptedReplicaReadFallsBack(t *testing.T) {
	c := newReplicatedCluster(t, 4, 3)
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xEE}, 4096)
	if err := cl.Put("alice", "doc", payload); err != nil {
		t.Fatal(err)
	}
	primary := c.ShardFor("doc")
	// Corrupt every response from the primary, in perpetuity.
	faultinject.Activate(&faultinject.Plan{Seed: 3, Rules: []faultinject.Rule{
		{Target: FaultSiteGet, Shard: primary, Kind: faultinject.KindCorrupt, Prob: 1},
	}})
	defer faultinject.Deactivate()
	got, err := cl.Get("alice", "doc", nil)
	if err != nil {
		t.Fatalf("read with corrupted primary: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("corrupted bytes reached the caller")
	}
	if st := c.Stats(); st.FallbackReads == 0 {
		t.Fatalf("corruption did not force a fallback: %+v", st)
	}
}
