package sdp

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"shef/internal/faultinject"
)

// chaosSeed is the deterministic seed for the whole chaos suite. CI
// matrixes SHEF_FAULT_SEED over several values; locally the default
// makes a bare `go test -run Chaos` reproducible.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("SHEF_FAULT_SEED")
	if s == "" {
		return 1
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("SHEF_FAULT_SEED=%q: %v", s, err)
	}
	return v
}

// chaosConfig is the chaos geometry: 4 shards, 3-way replication (write
// quorum 2 — the cluster must survive any single shard failing), small
// auth blocks and write-through so every acknowledged byte is sealed to
// DRAM, and no response cache so reads exercise the store path the
// corruption tests attack.
func chaosConfig(seed int64) ClusterConfig {
	node := smallConfig()
	node.Slots = 48
	node.SlotBytes = 8 << 10
	node.AuthBlock = 1024
	node.BufferBytes = 4 << 10
	return ClusterConfig{
		Shards:   4,
		Node:     node,
		Replicas: 3,
		Retry: RetryPolicy{
			MaxAttempts: 3,
			BaseBackoff: 200 * time.Microsecond,
			MaxBackoff:  2 * time.Millisecond,
			Seed:        seed,
		},
		OpTimeout: 10 * time.Second,
	}
}

// chaosPayload builds one file version's bytes: an 8-byte version header
// plus a fill that is a pure function of (file, version), so a torn or
// cross-wired read is detectable from content alone.
func chaosPayload(file string, version uint64) []byte {
	size := 1024 + int(version%3)*1024
	p := make([]byte, size)
	binary.BigEndian.PutUint64(p, version)
	h := uint64(14695981039346656037)
	for i := 0; i < len(file); i++ {
		h = (h ^ uint64(file[i])) * 1099511628211
	}
	for i := 8; i < size; i++ {
		p[i] = byte(h>>((uint64(i)%8)*8)) + byte(version) + byte(i)
	}
	return p
}

// checkChaosPayload verifies a read against the generator: the header
// names the version, the fill must match it exactly.
func checkChaosPayload(file string, got []byte) (uint64, error) {
	if len(got) < 8 {
		return 0, fmt.Errorf("file %s: short read (%d bytes)", file, len(got))
	}
	version := binary.BigEndian.Uint64(got)
	want := chaosPayload(file, version)
	if !bytes.Equal(got, want) {
		return version, fmt.Errorf("file %s version %d: content does not match its header", file, version)
	}
	return version, nil
}

// TestChaosCrashRestartPartition is the headline chaos run: a seeded
// crash/restart/partition schedule plays out under a concurrent Put/Get
// workload laced with injected transient errors and latency spikes. The
// suite asserts the self-healing contract: no acknowledged write is ever
// lost, reads are served throughout (degraded mode included), per-op
// latency stays bounded, and after recovery plus Sync every replica set
// is byte-identical.
func TestChaosCrashRestartPartition(t *testing.T) {
	seed := chaosSeed(t)
	c, err := NewCluster(chaosConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterUser("alice", []byte("alice-key")); err != nil {
		t.Fatal(err)
	}

	// Background fabric trouble on top of the structural schedule.
	faultinject.Activate(&faultinject.Plan{Seed: seed, Rules: []faultinject.Rule{
		{Target: FaultSitePut, Shard: faultinject.AnyShard, Kind: faultinject.KindError, Prob: 0.05},
		{Target: FaultSiteGet, Shard: faultinject.AnyShard, Kind: faultinject.KindError, Prob: 0.05},
		{Target: FaultSiteGet, Shard: faultinject.AnyShard, Kind: faultinject.KindLatency, Prob: 0.02, Latency: time.Millisecond},
	}})
	defer faultinject.Deactivate()

	const (
		workers       = 4
		filesPerW     = 4
		opsPerWorker  = 60
		scheduleTotal = 360 // milestones within the successful-op count
		episodes      = 3
	)
	schedule := faultinject.Schedule(seed, c.Shards(), scheduleTotal, episodes)
	if len(schedule) != 2*episodes {
		t.Fatalf("schedule has %d events, want %d", len(schedule), 2*episodes)
	}

	// The chaos driver applies the schedule at successful-op milestones
	// and restores the fleet when the workload drains.
	done := make(chan struct{})
	var driverWG sync.WaitGroup
	driverWG.Add(1)
	go func() {
		defer driverWG.Done()
		apply := func(ev faultinject.Event) {
			switch ev.Action {
			case faultinject.ActCrash:
				c.CrashShard(ev.Shard)
			case faultinject.ActRestart:
				if err := c.RestartShard(ev.Shard); err != nil {
					t.Errorf("restart shard %d: %v", ev.Shard, err)
					return
				}
				if err := c.Sync(); err != nil {
					t.Errorf("sync after restart of shard %d: %v", ev.Shard, err)
				}
			case faultinject.ActPartition:
				c.PartitionShard(ev.Shard)
			case faultinject.ActHeal:
				if err := c.HealShard(ev.Shard); err != nil {
					t.Errorf("heal shard %d: %v", ev.Shard, err)
					return
				}
				if err := c.Sync(); err != nil {
					t.Errorf("sync after heal of shard %d: %v", ev.Shard, err)
				}
			}
		}
		next := 0
		for next < len(schedule) {
			select {
			case <-done:
				// Workload drained before the op counter reached the
				// remaining milestones: apply them immediately so every
				// failure is healed before the final checks.
				for ; next < len(schedule); next++ {
					apply(schedule[next])
				}
				return
			default:
			}
			st := c.Stats()
			if st.Puts+st.Gets >= schedule[next].AtOp {
				apply(schedule[next])
				next++
				continue
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Workload: each worker owns its files (single writer per file), so
	// "last acknowledged version" is a well-defined per-file fact.
	type ack struct {
		file    string
		version uint64
	}
	acked := make([]map[string]uint64, workers)
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		acked[w] = make(map[string]uint64)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := c.NewClient()
			if err != nil {
				errCh <- err
				return
			}
			version := uint64(0)
			for i := 0; i < opsPerWorker; i++ {
				file := fmt.Sprintf("w%d-f%d", w, i%filesPerW)
				version++
				start := time.Now()
				err := cl.Put("alice", file, chaosPayload(file, version))
				latencies[w] = append(latencies[w], time.Since(start))
				if err == nil {
					acked[w][file] = version
				}
				last, everAcked := acked[w][file]
				if !everAcked {
					continue
				}
				start = time.Now()
				got, err := cl.Get("alice", file, nil)
				latencies[w] = append(latencies[w], time.Since(start))
				if err != nil {
					errCh <- fmt.Errorf("worker %d: read of acked %s: %w", w, file, err)
					return
				}
				v, err := checkChaosPayload(file, got)
				if err != nil {
					errCh <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if v < last {
					errCh <- fmt.Errorf("worker %d: %s read version %d < acked %d (lost acknowledged write)", w, file, v, last)
					return
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(done)
	driverWG.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Fleet restored (the driver healed every scheduled failure); stop
	// injecting and converge.
	faultinject.Deactivate()
	for i := 0; i < c.Shards(); i++ {
		if c.Node(i) == nil {
			t.Fatalf("shard %d still crashed after the schedule drained", i)
		}
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("final sync: %v", err)
	}

	// No lost acknowledged write, and every replica set byte-identical.
	for w := 0; w < workers; w++ {
		for file, last := range acked[w] {
			got, err := c.Get("alice", file)
			if err != nil {
				t.Fatalf("acked file %s unreadable after recovery: %v", file, err)
			}
			v, err := checkChaosPayload(file, got)
			if err != nil {
				t.Fatal(err)
			}
			if v < last {
				t.Fatalf("file %s: recovered version %d < last acked %d", file, v, last)
			}
			reps := c.replicaSet(file)
			var first []byte
			for k, shard := range reps {
				data, err := c.Node(shard).Get("alice", file)
				if err != nil {
					t.Fatalf("file %s replica on shard %d unreadable after sync: %v", file, shard, err)
				}
				if k == 0 {
					first = data
				} else if !bytes.Equal(first, data) {
					t.Fatalf("file %s: replicas diverge after sync (shard %d vs %d)", file, reps[0], shard)
				}
			}
		}
	}

	// Bounded tail latency: p99 across the run (which includes the
	// single-node-failure windows) stays well under a second.
	var all []time.Duration
	for w := range latencies {
		all = append(all, latencies[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	p99 := all[len(all)*99/100]
	if p99 > time.Second {
		t.Fatalf("p99 op latency %v exceeds 1s during single-node failure", p99)
	}

	// The run must actually have exercised the machinery.
	st := c.Stats()
	if st.Retries == 0 {
		t.Fatalf("chaos run recorded no retries: %+v", st)
	}
	if st.Repairs == 0 {
		t.Fatalf("chaos run recorded no anti-entropy repairs: %+v", st)
	}
	t.Logf("chaos seed %d: puts=%d gets=%d retries=%d fallbacks=%d repairs=%d quorumFails=%d degradedWrites=%d p99=%v",
		seed, st.Puts, st.Gets, st.Retries, st.FallbackReads, st.Repairs, st.QuorumFailures, st.DegradedWrites, p99)
}

// TestChaosCorruptedReplicaNoPlaintext attacks one replica's device
// memory directly and asserts the confidentiality-under-faults contract:
// plaintext never appears in any DRAM (before or after the attack), the
// corrupted replica's tamper latch trips and refuses service, the read
// is served correctly from a healthy replica, and a restart plus Sync
// converges the replica set back to byte-identical.
func TestChaosCorruptedReplicaNoPlaintext(t *testing.T) {
	seed := chaosSeed(t)
	c, err := NewCluster(chaosConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterUser("alice", []byte("alice-key")); err != nil {
		t.Fatal(err)
	}
	cl, err := c.NewClient()
	if err != nil {
		t.Fatal(err)
	}

	// A recognisable plaintext: any 64-byte window is unique to it.
	marker := bytes.Repeat([]byte("SHEF-CHAOS-PLAINTEXT-MARKER/"), 200)[:4096]
	const file = "chaos-secret"
	if err := cl.Put("alice", file, marker); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatal(err)
	}

	scanDRAM := func(stage string) {
		t.Helper()
		for i := 0; i < c.Shards(); i++ {
			n := c.Node(i)
			if n == nil {
				continue
			}
			for _, region := range []string{"store", "tls"} {
				layout, err := n.Shield().Layout(region)
				if err != nil {
					t.Fatal(err)
				}
				buf := make([]byte, layout.DataSize)
				if err := n.DRAM().RawReadInto(layout.DataBase, buf); err != nil {
					t.Fatal(err)
				}
				if bytes.Contains(buf, marker[:64]) {
					t.Fatalf("%s: plaintext visible in shard %d %s region DRAM", stage, i, region)
				}
			}
		}
	}
	scanDRAM("before corruption")

	// Smash the primary replica's entire store data region with
	// deterministic garbage — every block of every file on it.
	primary := c.replicaSet(file)[0]
	pn := c.Node(primary)
	layout, err := pn.Shield().Layout("store")
	if err != nil {
		t.Fatal(err)
	}
	garbage := make([]byte, layout.DataSize)
	faultinject.CorruptBytes(garbage, uint64(seed))
	for i := range garbage {
		garbage[i] ^= byte(i) + 0x5A
	}
	if err := pn.DRAM().RawWrite(layout.DataBase, garbage); err != nil {
		t.Fatal(err)
	}
	// Drop clean buffer lines so the next read must fetch the corrupted
	// ciphertext from DRAM rather than serving cached plaintext.
	pn.Shield().InvalidateClean()

	// The read is served — from a healthy replica — and the bytes are
	// exactly the acknowledged write, never the corruption.
	got, err := cl.Get("alice", file, nil)
	if err != nil {
		t.Fatalf("read with corrupted primary: %v", err)
	}
	if !bytes.Equal(got, marker) {
		t.Fatal("read under corruption returned wrong bytes")
	}
	if st := c.Stats(); st.FallbackReads == 0 {
		t.Fatalf("corrupted primary did not force a fallback: %+v", st)
	}

	// The primary's tamper latch has tripped: it refuses further service
	// rather than serving unauthenticated data.
	if _, err := pn.Get("alice", file); err == nil {
		t.Fatal("corrupted replica still serving (tamper latch did not trip)")
	}

	// Plaintext still nowhere in DRAM after the degraded read.
	scanDRAM("after corruption")

	// Recovery: a latched node cannot be repaired in place — restart it
	// (fresh TEE, same provisioning session) and let anti-entropy refill.
	c.CrashShard(primary)
	if err := c.RestartShard(primary); err != nil {
		t.Fatal(err)
	}
	if err := c.Sync(); err != nil {
		t.Fatalf("sync after restart: %v", err)
	}
	reps := c.replicaSet(file)
	var first []byte
	for k, shard := range reps {
		data, err := c.Node(shard).Get("alice", file)
		if err != nil {
			t.Fatalf("replica on shard %d unreadable after repair: %v", shard, err)
		}
		if k == 0 {
			first = data
		} else if !bytes.Equal(first, data) {
			t.Fatalf("replicas diverge after repair (shard %d vs %d)", reps[0], shard)
		}
	}
	if !bytes.Equal(first, marker) {
		t.Fatal("repair converged to the wrong content")
	}
	scanDRAM("after repair")
}
