package sdp

import "sync"

// HealthState is one shard's position in the failure-detection state
// machine, fed by real operation outcomes (application rejections don't
// count — a "file not found" from a perfectly healthy node is not a
// failure).
type HealthState int32

const (
	// Healthy: serving normally.
	Healthy HealthState = iota
	// Suspect: consecutive failures observed; still served, but one more
	// streak takes it Down. A single success clears the suspicion.
	Suspect
	// Down: the failure detector has given up on the shard. Operations
	// skip it without paying timeouts; every probeEvery-th request is let
	// through as a probe so recovery is discovered without an operator.
	Down
	// Recovering: a probe succeeded (or an operator restarted the shard);
	// it serves again but needs recoverAfter consecutive successes to be
	// Healthy — one failure sends it straight back Down.
	Recovering
)

// String names the state for stats endpoints and logs.
func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return "unknown"
}

// Failure-detector tuning: streaks short enough to react within one
// retry envelope, probes frequent enough that a recovered shard rejoins
// within a few requests.
const (
	suspectAfter = 2 // consecutive failures: Healthy → Suspect
	downAfter    = 4 // consecutive failures: Suspect → Down
	recoverAfter = 2 // consecutive successes: Recovering → Healthy
	probeEvery   = 8 // while Down, let every Nth request through as a probe
)

// healthFSM is one shard's failure detector. All methods are safe for
// concurrent use; the mutex guards a handful of ints so contention is
// negligible next to the node work it gates.
type healthFSM struct {
	mu      sync.Mutex
	state   HealthState
	fails   int // consecutive failures
	succs   int // consecutive successes while Recovering
	skipped int // requests short-circuited since the last probe
}

// State snapshots the current state.
func (h *healthFSM) State() HealthState {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state
}

// allowOp decides whether a request may hit the shard. Down shards are
// skipped except for the periodic probe.
func (h *healthFSM) allowOp() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.state != Down {
		return true
	}
	h.skipped++
	if h.skipped >= probeEvery {
		h.skipped = 0
		return true
	}
	return false
}

// success records a completed operation (or probe).
func (h *healthFSM) success() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.fails = 0
	switch h.state {
	case Suspect:
		h.state = Healthy
	case Down:
		h.state = Recovering
		h.succs = 1
	case Recovering:
		h.succs++
		if h.succs >= recoverAfter {
			h.state = Healthy
		}
	}
}

// failure records a failed operation (infrastructure failures only —
// the caller filters application rejections with Retryable).
func (h *healthFSM) failure() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.succs = 0
	h.fails++
	switch h.state {
	case Healthy:
		if h.fails >= suspectAfter {
			h.state = Suspect
		}
	case Suspect:
		if h.fails >= downAfter {
			h.state = Down
			h.skipped = 0
		}
	case Recovering:
		h.state = Down
		h.skipped = 0
	}
}

// markRecovering is the operator path: a restarted or healed shard is put
// straight into Recovering so traffic returns immediately, with the
// recoverAfter-successes bar still to clear before it counts as Healthy.
func (h *healthFSM) markRecovering() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.state = Recovering
	h.fails, h.succs, h.skipped = 0, 0, 0
}
