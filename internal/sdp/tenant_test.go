package sdp

import (
	"bytes"
	"errors"
	"testing"
)

func tenantZoneConfig() NodeConfig {
	c := smallConfig()
	c.TenantZones = true
	c.TenantSlots = 2
	return c
}

func newTenantNode(t *testing.T) *Node {
	t.Helper()
	dek := bytes.Repeat([]byte{0x21}, 32)
	n, err := NewNode(tenantZoneConfig(), dek, LineRateParams())
	if err != nil {
		t.Fatal(err)
	}
	n.ProvisionUserKeys(map[string][]byte{
		"alice": []byte("alice-key"),
		"bob":   []byte("bob-key"),
		"carol": []byte("carol-key"),
	})
	return n
}

// tenantZoneOwners lists which tenants hold store zones (the static tls
// region is tenant-less and excluded).
func tenantZoneOwners(n *Node) map[string]bool {
	owners := map[string]bool{}
	for _, z := range n.sh.Zones() {
		if z.Tenant != "" {
			owners[z.Tenant] = true
		}
	}
	return owners
}

// TestTenantZonePlacement: each user's files land in their own
// runtime-created protection zone, data round-trips, and the arena's
// zone budget is enforced.
func TestTenantZonePlacement(t *testing.T) {
	n := newTenantNode(t)
	fa := bytes.Repeat([]byte{1}, 5000)
	fb := bytes.Repeat([]byte{2}, 7000)
	if err := n.Put("alice", "a.rec", fa); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("bob", "b.rec", fb); err != nil {
		t.Fatal(err)
	}
	owners := tenantZoneOwners(n)
	if len(owners) != 2 || !owners["alice"] || !owners["bob"] {
		t.Fatalf("tenant zones after two users = %v, want alice+bob", owners)
	}
	got, err := n.Get("alice", "a.rec")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fa) {
		t.Fatal("alice's file corrupted through her zone")
	}
	got, err = n.Get("bob", "b.rec")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fb) {
		t.Fatal("bob's file corrupted through his zone")
	}
	// 4 slots / 2 per zone = 2 zones: a third user finds the arena full,
	// as an application rejection (not a node-health event).
	err = n.Put("carol", "c.rec", fa)
	if !errors.Is(err, ErrRejected) {
		t.Fatalf("third tenant on a full arena: got %v, want ErrRejected", err)
	}
	// A zone's slot budget is enforced per tenant.
	if err := n.Put("alice", "a2.rec", fa); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("alice", "a3.rec", fa); !errors.Is(err, ErrRejected) {
		t.Fatalf("over-budget tenant put: got %v, want ErrRejected", err)
	}
	// Cross-tenant name collision is a policy rejection, not an overwrite.
	if err := n.Put("bob", "a.rec", fb); !errors.Is(err, ErrRejected) {
		t.Fatalf("cross-tenant name steal: got %v, want ErrRejected", err)
	}
}

// TestEraseTenant: GDPR erasure destroys the user's zone, their files,
// and their key; the freed zone serves the next tenant with no data
// resurfacing.
func TestEraseTenant(t *testing.T) {
	n := newTenantNode(t)
	secret := bytes.Repeat([]byte{0xEE}, 6000)
	if err := n.Put("alice", "a.rec", secret); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("bob", "b.rec", secret); err != nil {
		t.Fatal(err)
	}
	if err := n.EraseTenant("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Get("alice", "a.rec"); !errors.Is(err, ErrRejected) {
		t.Fatalf("erased tenant's file still served: %v", err)
	}
	if owners := tenantZoneOwners(n); len(owners) != 1 || !owners["bob"] {
		t.Fatalf("erased zone still in the region table: %v", owners)
	}
	// Bob is untouched.
	got, err := n.Get("bob", "b.rec")
	if err != nil || !bytes.Equal(got, secret) {
		t.Fatalf("neighbour lost data across erasure: %v", err)
	}
	// The freed zone serves a new tenant; alice's old ciphertext must not
	// resurface through the recycled address range.
	n.ProvisionUserKeys(map[string][]byte{"carol": []byte("carol-key")})
	fresh := bytes.Repeat([]byte{0x11}, 6000)
	if err := n.Put("carol", "c.rec", fresh); err != nil {
		t.Fatal(err)
	}
	got, err = n.Get("carol", "c.rec")
	if err != nil || !bytes.Equal(got, fresh) {
		t.Fatalf("recycled zone does not serve: %v", err)
	}
	// Erasing a tenant that only ever held a key (no zone) still forgets
	// the key.
	n.ProvisionUserKeys(map[string][]byte{"dave": []byte("dave-key")})
	if err := n.EraseTenant("dave"); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("dave", "d.rec", fresh); !errors.Is(err, ErrRejected) {
		t.Fatalf("erased keyless tenant can still write: %v", err)
	}
}

// TestTenantZonesConfigGuards: the mode's config invariants reject with
// ErrConfig.
func TestTenantZonesConfigGuards(t *testing.T) {
	dek := bytes.Repeat([]byte{0x21}, 32)
	c := tenantZoneConfig()
	c.Oblivious = true
	if _, err := NewNode(c, dek, LineRateParams()); !errors.Is(err, ErrConfig) {
		t.Fatalf("oblivious+tenant zones: got %v, want ErrConfig", err)
	}
	c = tenantZoneConfig()
	c.TenantSlots = 3 // 4 slots do not divide by 3
	if _, err := NewNode(c, dek, LineRateParams()); !errors.Is(err, ErrConfig) {
		t.Fatalf("indivisible slots: got %v, want ErrConfig", err)
	}
	// TenantSlots defaults to 1.
	c = tenantZoneConfig()
	c.TenantSlots = 0
	n, err := NewNode(c, dek, LineRateParams())
	if err != nil {
		t.Fatal(err)
	}
	if n.cfg.TenantSlots != 1 {
		t.Fatalf("TenantSlots default = %d, want 1", n.cfg.TenantSlots)
	}
}
