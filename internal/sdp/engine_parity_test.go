package sdp

import (
	"bytes"
	"fmt"
	"testing"
)

// TestClusterEngineParity pins the engine layer's contract at the service
// tier: the functional crypto engine (scalar reference vs hardware-backed
// stdlib) is invisible to the SDP. The same workload run on either engine
// returns identical plaintext AND identical simulated cycle accounting —
// the cycle model always charges the paper's FPGA engine costs, so
// swapping the functional implementation changes real MB/s only.
func TestClusterEngineParity(t *testing.T) {
	run := func(eng string) ([][]byte, ClusterStats) {
		cfg := clusterConfig(3)
		cfg.Params = LineRateParams()
		cfg.Params.CryptoEngine = eng
		c, err := NewCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RegisterUser("alice", []byte("alice-key")); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("file-%d", i)
			payload := bytes.Repeat([]byte{byte(i + 1)}, 2000+i*777)
			if err := c.Put("alice", name, payload); err != nil {
				t.Fatal(err)
			}
			data, err := c.Get("alice", name)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, data)
		}
		return got, c.Stats()
	}
	scalarData, scalarStats := run("scalar")
	hwData, hwStats := run("hardware")
	for i := range scalarData {
		if !bytes.Equal(scalarData[i], hwData[i]) {
			t.Errorf("file %d: plaintext differs between engines", i)
		}
	}
	if scalarStats != hwStats {
		t.Errorf("simulated accounting differs between engines:\n scalar  %+v\n hardware %+v",
			scalarStats, hwStats)
	}
}
