package sdp

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/kdf"
	"shef/internal/perf"
	"shef/internal/profiling"
)

// ClusterConfig sizes an SDP cluster: the paper's single Storage Node case
// study (§6.2.3) grown to a serving fleet.
type ClusterConfig struct {
	// Shards is the Storage Node count. Files are distributed over shards
	// by hashed name, so aggregate throughput scales with the fleet.
	Shards int
	// Node configures every Storage Node identically (the homogeneous-rack
	// deployment the paper's SDP sketch assumes).
	Node NodeConfig
	// Params is the per-node cycle model (zero value: LineRateParams).
	Params perf.Params
}

// Controller is the SDP Controller Node (CN). It owns the user-key
// database and is the only party that provisions Storage Nodes: each shard
// is attested (its Shield public key checked against the session it was
// booted with) and then receives the key database sealed under the shard's
// session DEK, so the untrusted fabric between CN and SN carries only
// ciphertext.
type Controller struct {
	mu       sync.RWMutex
	userKeys map[string][]byte
}

// NewController builds a CN with an empty user-key database.
func NewController() *Controller {
	return &Controller{userKeys: make(map[string][]byte)}
}

// RegisterUser records (or rotates) a user's key in the CN database.
func (c *Controller) RegisterUser(user string, key []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.userKeys[user] = append([]byte(nil), key...)
}

// snapshotKeys copies the database for sealing.
func (c *Controller) snapshotKeys() map[string][]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]byte, len(c.userKeys))
	for u, k := range c.userKeys {
		out[u] = append([]byte(nil), k...)
	}
	return out
}

// SealedKeyDB is the user-key database in transit from CN to SN:
// AES-CTR ciphertext plus an HMAC tag, both under keys derived from the
// shard's session DEK. The cloud operator relaying it learns nothing and
// cannot splice databases between shards (the shard index is folded into
// the key derivation). Nonce keeps repeated provisionings of the same
// shard (user registrations rotate the database) from reusing a keystream.
type SealedKeyDB struct {
	Nonce      [aesx.IVSize]byte
	Ciphertext []byte
	Tag        [hmacx.TagSize]byte
}

// ctrXor runs the AES-CTR involution under key/iv.
func ctrXor(key []byte, iv [aesx.IVSize]byte, data []byte) ([]byte, error) {
	cipher, err := aesx.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	aesx.CTR(cipher, iv, out, data)
	return out, nil
}

// sealKeyDB serialises and seals the full database for one shard.
func (c *Controller) sealKeyDB(shard int, dek []byte) (SealedKeyDB, error) {
	return sealKeys(shard, dek, c.snapshotKeys())
}

// sealKeys seals an arbitrary key set — the whole database at shard
// bring-up, or a single-user delta on registration (InstallSealedUserKeys
// merges, so deltas compose).
func sealKeys(shard int, dek []byte, keys map[string][]byte) (SealedKeyDB, error) {
	var plain []byte
	// Wire format: u32 count, then (u32 len, user, u32 len, key) records.
	// Order does not matter to the receiver.
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uint32(len(keys)))
	plain = append(plain, count[:]...)
	appendBlob := func(b []byte) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(b)))
		plain = append(plain, n[:]...)
		plain = append(plain, b...)
	}
	for u, k := range keys {
		appendBlob([]byte(u))
		appendBlob(k)
	}
	info := fmt.Sprintf("sdp/keydb-shard-%d", shard)
	encKey := kdf.Derive([]byte(info+"/enc"), dek, nil, 16)
	macKey := kdf.Derive([]byte(info+"/mac"), dek, nil, 32)
	var db SealedKeyDB
	if _, err := rand.Read(db.Nonce[:]); err != nil {
		return SealedKeyDB{}, err
	}
	ct, err := ctrXor(encKey, db.Nonce, plain)
	if err != nil {
		return SealedKeyDB{}, err
	}
	db.Ciphertext = ct
	db.Tag = hmacx.Tag(macKey, append(db.Nonce[:], ct...))
	return db, nil
}

// InstallSealedUserKeys verifies and opens a CN key-database delivery
// inside the node's trust domain and installs it. shard must match the
// index the CN sealed for — a relayed database for another shard fails
// authentication.
func (n *Node) InstallSealedUserKeys(shard int, db SealedKeyDB) error {
	info := fmt.Sprintf("sdp/keydb-shard-%d", shard)
	encKey := kdf.Derive([]byte(info+"/enc"), n.dek, nil, 16)
	macKey := kdf.Derive([]byte(info+"/mac"), n.dek, nil, 32)
	if !hmacx.Verify(macKey, append(db.Nonce[:], db.Ciphertext...), db.Tag) {
		return errors.New("sdp: sealed key database failed authentication")
	}
	plain, err := ctrXor(encKey, db.Nonce, db.Ciphertext)
	if err != nil {
		return err
	}
	keys, err := parseKeyDB(plain)
	if err != nil {
		return err
	}
	n.ProvisionUserKeys(keys)
	return nil
}

func parseKeyDB(plain []byte) (map[string][]byte, error) {
	bad := errors.New("sdp: sealed key database malformed")
	if len(plain) < 4 {
		return nil, bad
	}
	count := binary.BigEndian.Uint32(plain[:4])
	plain = plain[4:]
	next := func() ([]byte, error) {
		if len(plain) < 4 {
			return nil, bad
		}
		l := int(binary.BigEndian.Uint32(plain[:4]))
		if len(plain) < 4+l {
			return nil, bad
		}
		b := plain[4 : 4+l]
		plain = plain[4+l:]
		return b, nil
	}
	keys := make(map[string][]byte, count)
	for i := uint32(0); i < count; i++ {
		u, err := next()
		if err != nil {
			return nil, err
		}
		k, err := next()
		if err != nil {
			return nil, err
		}
		keys[string(u)] = append([]byte(nil), k...)
	}
	if len(plain) != 0 {
		return nil, bad
	}
	return keys, nil
}

// Cluster is a fleet of Storage Nodes behind one Controller Node. Put/Get
// route by hashed file name; operations against different shards run in
// parallel (each node serialises internally), which is where the
// "millions of users" aggregate throughput comes from.
type Cluster struct {
	cfg    ClusterConfig
	ctrl   *Controller
	shards []*Node
	deks   [][]byte

	puts, gets, errs atomic.Uint64
}

// NewCluster boots the fleet: every shard gets a fresh session DEK, is
// attested/provisioned through the Load Key path inside NewNode, and then
// receives the (empty) user-key database from the CN. Shards boot on
// separate goroutines — NewNode does real schnorr keygen and keywrap, so
// fleet bring-up is itself parallel.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, errors.New("sdp: cluster needs at least one shard")
	}
	if cfg.Params == (perf.Params{}) {
		cfg.Params = LineRateParams()
	}
	c := &Cluster{
		cfg:    cfg,
		ctrl:   NewController(),
		shards: make([]*Node, cfg.Shards),
		deks:   make([][]byte, cfg.Shards),
	}
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dek := make([]byte, 32)
			if _, err := rand.Read(dek); err != nil {
				errs[i] = err
				return
			}
			n, err := NewNode(cfg.Node, dek, cfg.Params)
			if err != nil {
				errs[i] = fmt.Errorf("sdp: shard %d: %w", i, err)
				return
			}
			c.shards[i] = n
			c.deks[i] = dek
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if err := c.reprovision(); err != nil {
		return nil, err
	}
	return c, nil
}

// reprovision pushes the CN's current key database to every shard.
func (c *Cluster) reprovision() error {
	for i, n := range c.shards {
		db, err := c.ctrl.sealKeyDB(i, c.deks[i])
		if err != nil {
			return err
		}
		if err := n.InstallSealedUserKeys(i, db); err != nil {
			return fmt.Errorf("sdp: shard %d: %w", i, err)
		}
	}
	return nil
}

// RegisterUser records the user with the CN and provisions all shards. Any
// shard may be asked for any of the user's files, so the database is
// replicated fleet-wide (the paper's CN "securely provisions a database of
// user keys into the TEE" — here, into every TEE). Only the new user's
// record travels: shards merge deltas, so registering N users costs
// O(N·shards), not O(N²·shards).
func (c *Cluster) RegisterUser(user string, key []byte) error {
	c.ctrl.RegisterUser(user, key)
	delta := map[string][]byte{user: key}
	for i, n := range c.shards {
		db, err := sealKeys(i, c.deks[i], delta)
		if err != nil {
			return err
		}
		if err := n.InstallSealedUserKeys(i, db); err != nil {
			return fmt.Errorf("sdp: shard %d: %w", i, err)
		}
	}
	return nil
}

// ShardIndex is the cluster routing function in the open: FNV-1a over
// the file name modulo the fleet size (computed inline — the stdlib hash
// allocates per call, and routing is on every operation's path).
// Exposed so load generators and capacity planners can reason about
// placement without a cluster in hand.
func ShardIndex(name string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return int(h % uint32(shards))
}

// ShardFor routes a file name to its shard.
func (c *Cluster) ShardFor(name string) int {
	return ShardIndex(name, len(c.shards))
}

// Sync flushes every shard's dirty store lines — the fleet-wide
// durability barrier of a WriteBack cluster.
func (c *Cluster) Sync() error {
	var errs []error
	for i, n := range c.shards {
		if err := n.Sync(); err != nil {
			errs = append(errs, fmt.Errorf("sdp: shard %d: %w", i, err))
		}
	}
	return errors.Join(errs...)
}

// Shards reports the fleet size.
func (c *Cluster) Shards() int { return len(c.shards) }

// Node exposes one shard (tests, per-shard reports).
func (c *Cluster) Node(i int) *Node { return c.shards[i] }

// Put stores a file on its home shard.
func (c *Cluster) Put(user, name string, payload []byte) error {
	i := c.ShardFor(name)
	if profiling.Enabled() {
		return doOp("put", i, func() error { return c.put(i, user, name, payload) })
	}
	return c.put(i, user, name, payload)
}

func (c *Cluster) put(i int, user, name string, payload []byte) error {
	err := c.shards[i].Put(user, name, payload)
	if err != nil {
		c.errs.Add(1)
		return err
	}
	c.puts.Add(1)
	return nil
}

// Get fetches a file from its home shard.
func (c *Cluster) Get(user, name string) ([]byte, error) {
	i := c.ShardFor(name)
	if profiling.Enabled() {
		var data []byte
		err := doOp("get", i, func() error {
			var err error
			data, err = c.get(i, user, name)
			return err
		})
		return data, err
	}
	return c.get(i, user, name)
}

func (c *Cluster) get(i int, user, name string) ([]byte, error) {
	data, err := c.shards[i].Get(user, name)
	if err != nil {
		c.errs.Add(1)
		return nil, err
	}
	c.gets.Add(1)
	return data, nil
}

// ClusterStats aggregates fleet activity.
type ClusterStats struct {
	Shards int
	Puts   uint64
	Gets   uint64
	Errors uint64
	// BusyCycles is the simulated busy time summed over shards; MaxBusy is
	// the busiest shard — the fleet analogue of the Shield's
	// max-across-engine-sets wall-clock model.
	BusyCycles uint64
	MaxBusy    uint64
	// ORAMAccesses/ORAMBytesMoved aggregate the oblivious store traffic
	// across shards (zero unless the fleet runs with NodeConfig.Oblivious):
	// the measured price of hiding the access pattern fleet-wide.
	ORAMAccesses   uint64
	ORAMBytesMoved uint64
}

// Stats snapshots the cluster's counters.
func (c *Cluster) Stats() ClusterStats {
	st := ClusterStats{
		Shards: len(c.shards),
		Puts:   c.puts.Load(),
		Gets:   c.gets.Load(),
		Errors: c.errs.Load(),
	}
	for _, n := range c.shards {
		rep := n.Report()
		var busy uint64
		for _, r := range rep.Regions {
			busy += r.BusyCycles
		}
		// Cache-served responses bypass the engine sets; their on-chip
		// copy cost still occupies the node.
		_, _, respCycles := n.RespCacheStats()
		busy += respCycles
		st.BusyCycles += busy
		if busy > st.MaxBusy {
			st.MaxBusy = busy
		}
		if o := n.ORAM(); o != nil {
			acc, moved, _ := o.Stats()
			st.ORAMAccesses += acc
			st.ORAMBytesMoved += moved
		}
	}
	return st
}

// ShardStats is one shard's live debug snapshot — the per-shard half of
// the -debug stats endpoint (JSON field names are the wire format).
type ShardStats struct {
	Shard           int    `json:"shard"`
	BusyCycles      uint64 `json:"busy_cycles"`
	RespCacheHits   uint64 `json:"resp_cache_hits"`
	RespCacheMisses uint64 `json:"resp_cache_misses"`
	RespCacheCycles uint64 `json:"resp_cache_cycles"`
}

// PerShardStats snapshots every shard for the debug endpoint: where the
// fleet's simulated time is going and how the sealed-response caches are
// doing, one row per Storage Node.
func (c *Cluster) PerShardStats() []ShardStats {
	out := make([]ShardStats, len(c.shards))
	for i, n := range c.shards {
		rep := n.Report()
		var busy uint64
		for _, r := range rep.Regions {
			busy += r.BusyCycles
		}
		hits, misses, cycles := n.RespCacheStats()
		out[i] = ShardStats{
			Shard: i, BusyCycles: busy + cycles,
			RespCacheHits: hits, RespCacheMisses: misses, RespCacheCycles: cycles,
		}
	}
	return out
}

// ResetStats zeroes the op counters and every shard's Shield counters.
func (c *Cluster) ResetStats() {
	c.puts.Store(0)
	c.gets.Store(0)
	c.errs.Store(0)
	for _, n := range c.shards {
		n.ResetStats()
	}
}
