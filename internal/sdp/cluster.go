package sdp

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/kdf"
	"shef/internal/faultinject"
	"shef/internal/perf"
	"shef/internal/profiling"
)

// ClusterConfig sizes an SDP cluster: the paper's single Storage Node case
// study (§6.2.3) grown to a serving fleet.
type ClusterConfig struct {
	// Shards is the Storage Node count. Files are distributed over shards
	// by hashed name, so aggregate throughput scales with the fleet.
	Shards int
	// Node configures every Storage Node identically (the homogeneous-rack
	// deployment the paper's SDP sketch assumes).
	Node NodeConfig
	// Params is the per-node cycle model (zero value: LineRateParams).
	Params perf.Params
	// Replicas places each file on this many successor shards (home shard
	// plus Replicas-1 followers). Writes need a majority write quorum
	// (Replicas/2+1) to acknowledge; reads fall back replica by replica;
	// Sync runs anti-entropy repair across the set. 0 or 1 keeps the
	// original single-copy placement with its unchanged fast path.
	Replicas int
	// Retry tunes the per-replica retry loop (zero value: defaults).
	Retry RetryPolicy
	// OpTimeout bounds one cluster operation across its retries and
	// replica fallbacks. It is checked between attempts (node operations
	// are not preempted mid-flight), so a latency fault can overshoot it
	// by one attempt. 0 means DefaultOpTimeout; negative disables.
	OpTimeout time.Duration
}

// RetryPolicy shapes the capped exponential backoff the cluster applies
// to retryable per-replica failures.
type RetryPolicy struct {
	// MaxAttempts per replica per operation (0: DefaultMaxAttempts).
	MaxAttempts int
	// BaseBackoff before the first retry; doubles per attempt.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling.
	MaxBackoff time.Duration
	// Seed drives the deterministic jitter ([d/2, d) of the capped
	// backoff) so test runs with the same seed sleep the same schedule.
	Seed int64
}

// Retry defaults: three shots per replica, 2ms → 20ms backoff, 2s per
// operation. Small enough that a dead replica costs single-digit
// milliseconds before the read falls back, large enough to ride out the
// transient error bursts fault injection models.
const (
	DefaultMaxAttempts = 3
	DefaultBaseBackoff = 2 * time.Millisecond
	DefaultMaxBackoff  = 20 * time.Millisecond
	DefaultOpTimeout   = 2 * time.Second
)

// Controller is the SDP Controller Node (CN). It owns the user-key
// database and is the only party that provisions Storage Nodes: each shard
// is attested (its Shield public key checked against the session it was
// booted with) and then receives the key database sealed under the shard's
// session DEK, so the untrusted fabric between CN and SN carries only
// ciphertext.
type Controller struct {
	mu       sync.RWMutex
	userKeys map[string][]byte
}

// NewController builds a CN with an empty user-key database.
func NewController() *Controller {
	return &Controller{userKeys: make(map[string][]byte)}
}

// RegisterUser records (or rotates) a user's key in the CN database.
func (c *Controller) RegisterUser(user string, key []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.userKeys[user] = append([]byte(nil), key...)
}

// snapshotKeys copies the database for sealing.
func (c *Controller) snapshotKeys() map[string][]byte {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string][]byte, len(c.userKeys))
	for u, k := range c.userKeys {
		out[u] = append([]byte(nil), k...)
	}
	return out
}

// SealedKeyDB is the user-key database in transit from CN to SN:
// AES-CTR ciphertext plus an HMAC tag, both under keys derived from the
// shard's session DEK. The cloud operator relaying it learns nothing and
// cannot splice databases between shards (the shard index is folded into
// the key derivation). Nonce keeps repeated provisionings of the same
// shard (user registrations rotate the database) from reusing a keystream.
type SealedKeyDB struct {
	Nonce      [aesx.IVSize]byte
	Ciphertext []byte
	Tag        [hmacx.TagSize]byte
}

// ctrXor runs the AES-CTR involution under key/iv.
func ctrXor(key []byte, iv [aesx.IVSize]byte, data []byte) ([]byte, error) {
	cipher, err := aesx.NewCipher(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	aesx.CTR(cipher, iv, out, data)
	return out, nil
}

// sealKeyDB serialises and seals the full database for one shard.
func (c *Controller) sealKeyDB(shard int, dek []byte) (SealedKeyDB, error) {
	return sealKeys(shard, dek, c.snapshotKeys())
}

// sealKeys seals an arbitrary key set — the whole database at shard
// bring-up, or a single-user delta on registration (InstallSealedUserKeys
// merges, so deltas compose).
func sealKeys(shard int, dek []byte, keys map[string][]byte) (SealedKeyDB, error) {
	var plain []byte
	// Wire format: u32 count, then (u32 len, user, u32 len, key) records.
	// Order does not matter to the receiver.
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uint32(len(keys)))
	plain = append(plain, count[:]...)
	appendBlob := func(b []byte) {
		var n [4]byte
		binary.BigEndian.PutUint32(n[:], uint32(len(b)))
		plain = append(plain, n[:]...)
		plain = append(plain, b...)
	}
	for u, k := range keys {
		appendBlob([]byte(u))
		appendBlob(k)
	}
	info := fmt.Sprintf("sdp/keydb-shard-%d", shard)
	encKey := kdf.Derive([]byte(info+"/enc"), dek, nil, 16)
	macKey := kdf.Derive([]byte(info+"/mac"), dek, nil, 32)
	var db SealedKeyDB
	if _, err := rand.Read(db.Nonce[:]); err != nil {
		return SealedKeyDB{}, err
	}
	ct, err := ctrXor(encKey, db.Nonce, plain)
	if err != nil {
		return SealedKeyDB{}, err
	}
	db.Ciphertext = ct
	db.Tag = hmacx.Tag(macKey, append(db.Nonce[:], ct...))
	return db, nil
}

// InstallSealedUserKeys verifies and opens a CN key-database delivery
// inside the node's trust domain and installs it. shard must match the
// index the CN sealed for — a relayed database for another shard fails
// authentication.
func (n *Node) InstallSealedUserKeys(shard int, db SealedKeyDB) error {
	info := fmt.Sprintf("sdp/keydb-shard-%d", shard)
	encKey := kdf.Derive([]byte(info+"/enc"), n.dek, nil, 16)
	macKey := kdf.Derive([]byte(info+"/mac"), n.dek, nil, 32)
	if !hmacx.Verify(macKey, append(db.Nonce[:], db.Ciphertext...), db.Tag) {
		return rejectf("sdp: sealed key database failed authentication")
	}
	plain, err := ctrXor(encKey, db.Nonce, db.Ciphertext)
	if err != nil {
		return err
	}
	keys, err := parseKeyDB(plain)
	if err != nil {
		return err
	}
	n.ProvisionUserKeys(keys)
	return nil
}

func parseKeyDB(plain []byte) (map[string][]byte, error) {
	bad := fmt.Errorf("sdp: sealed key database malformed: %w", ErrConfig)
	if len(plain) < 4 {
		return nil, bad
	}
	count := binary.BigEndian.Uint32(plain[:4])
	plain = plain[4:]
	next := func() ([]byte, error) {
		if len(plain) < 4 {
			return nil, bad
		}
		l := int(binary.BigEndian.Uint32(plain[:4]))
		if len(plain) < 4+l {
			return nil, bad
		}
		b := plain[4 : 4+l]
		plain = plain[4+l:]
		return b, nil
	}
	keys := make(map[string][]byte, count)
	for i := uint32(0); i < count; i++ {
		u, err := next()
		if err != nil {
			return nil, err
		}
		k, err := next()
		if err != nil {
			return nil, err
		}
		keys[string(u)] = append([]byte(nil), k...)
	}
	if len(plain) != 0 {
		return nil, bad
	}
	return keys, nil
}

// shardSlot is one shard's mount point in the cluster: the node pointer
// (atomically swappable so crash/restart never races concurrent ops), the
// shard's session DEK (stable across restarts so client TLS sessions
// survive them), its failure detector, and its partition flag.
type shardSlot struct {
	node        atomic.Pointer[Node]
	dek         []byte
	partitioned atomic.Bool
	health      healthFSM
}

// Cluster is a fleet of Storage Nodes behind one Controller Node. Put/Get
// route by hashed file name; operations against different shards run in
// parallel (each node serialises internally), which is where the
// "millions of users" aggregate throughput comes from. With Replicas > 1
// the cluster is self-healing: reads fall back across a file's replica
// set, writes acknowledge at a majority quorum, and Sync repairs
// divergence.
type Cluster struct {
	cfg   ClusterConfig
	ctrl  *Controller
	slots []*shardSlot

	// rng is the deterministic jitter state for retry backoff.
	rng atomic.Uint64

	// registry maps acknowledged file names to their owning user plus the
	// witness set — the shards that acknowledged the most recent
	// successful write. Reads prefer witnesses (a laggard primary must
	// not serve a stale version of an acknowledged write) and
	// anti-entropy trusts them over a raw majority vote (after a crash, a
	// one-fresh-vs-one-stale tie must not resolve to the stale copy).
	// Maintained only in replicated mode (single-copy clusters have
	// nothing to repair).
	regMu    sync.RWMutex
	registry map[string]fileMeta

	// fileLocks serializes replicated writes and anti-entropy repair on a
	// per-file basis (striped by name hash). Without it a repair pass can
	// read a replica, decide it is stale, lose the race to a concurrent
	// write that acks on that replica, and then roll the fresh bytes back
	// — silently losing an acknowledged write.
	fileLocks [64]sync.Mutex

	puts, gets, errs atomic.Uint64

	// Resilience counters: retries after transient failures, reads served
	// by a non-primary replica, files repaired by anti-entropy, writes
	// that failed their quorum, and writes acknowledged below full
	// replication (the degraded-mode signal).
	retries, fallbacks, repairs, quorumFails, degradedWrites atomic.Uint64
}

// NewCluster boots the fleet: every shard gets a fresh session DEK, is
// attested/provisioned through the Load Key path inside NewNode, and then
// receives the (empty) user-key database from the CN. Shards boot on
// separate goroutines — NewNode does real schnorr keygen and keywrap, so
// fleet bring-up is itself parallel.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("sdp: cluster needs at least one shard: %w", ErrConfig)
	}
	if cfg.Params == (perf.Params{}) {
		cfg.Params = LineRateParams()
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Shards {
		return nil, fmt.Errorf("sdp: %d replicas need at least that many shards (have %d): %w", cfg.Replicas, cfg.Shards, ErrConfig)
	}
	if cfg.Retry.MaxAttempts < 1 {
		cfg.Retry.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.Retry.BaseBackoff <= 0 {
		cfg.Retry.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.Retry.MaxBackoff < cfg.Retry.BaseBackoff {
		cfg.Retry.MaxBackoff = DefaultMaxBackoff
	}
	if cfg.OpTimeout == 0 {
		cfg.OpTimeout = DefaultOpTimeout
	}
	c := &Cluster{
		cfg:   cfg,
		ctrl:  NewController(),
		slots: make([]*shardSlot, cfg.Shards),
	}
	c.rng.Store(uint64(cfg.Retry.Seed)*0x9e3779b97f4a7c15 + 1)
	if cfg.Replicas > 1 {
		c.registry = make(map[string]fileMeta)
	}
	errs := make([]error, cfg.Shards)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Shards; i++ {
		c.slots[i] = &shardSlot{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dek := make([]byte, 32)
			if _, err := rand.Read(dek); err != nil {
				errs[i] = &ShardError{Shard: i, Op: "boot", Err: err}
				return
			}
			n, err := NewNode(cfg.Node, dek, cfg.Params)
			if err != nil {
				errs[i] = &ShardError{Shard: i, Op: "boot", Err: err}
				return
			}
			c.slots[i].node.Store(n)
			c.slots[i].dek = dek
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	if err := c.reprovision(); err != nil {
		return nil, err
	}
	return c, nil
}

// reprovision pushes the CN's current key database to every shard.
func (c *Cluster) reprovision() error {
	for i := range c.slots {
		if err := c.reprovisionShard(i); err != nil {
			return err
		}
	}
	return nil
}

// reprovisionShard seals the CN's full current database for one shard and
// installs it — shard bring-up, restart, and partition-heal all converge
// through here so a recovered shard never serves with a stale key DB.
func (c *Cluster) reprovisionShard(i int) error {
	slot := c.slots[i]
	n := slot.node.Load()
	if n == nil {
		return &ShardError{Shard: i, Op: "provision", Err: ErrShardDown}
	}
	db, err := c.ctrl.sealKeyDB(i, slot.dek)
	if err != nil {
		return &ShardError{Shard: i, Op: "provision", Err: err}
	}
	if err := n.InstallSealedUserKeys(i, db); err != nil {
		return &ShardError{Shard: i, Op: "provision", Err: err}
	}
	return nil
}

// RegisterUser records the user with the CN and provisions all shards. Any
// shard may be asked for any of the user's files, so the database is
// replicated fleet-wide (the paper's CN "securely provisions a database of
// user keys into the TEE" — here, into every TEE). Only the new user's
// record travels: shards merge deltas, so registering N users costs
// O(N·shards), not O(N²·shards). Crashed or partitioned shards are
// skipped — they receive the full current database when they rejoin
// (RestartShard / HealShard reprovision). Every failure carries its shard
// identity; failures on independent shards are joined, not truncated to
// the first.
func (c *Cluster) RegisterUser(user string, key []byte) error {
	c.ctrl.RegisterUser(user, key)
	delta := map[string][]byte{user: key}
	var errs []error
	for i, slot := range c.slots {
		n := slot.node.Load()
		if n == nil || slot.partitioned.Load() {
			continue
		}
		db, err := sealKeys(i, slot.dek, delta)
		if err != nil {
			errs = append(errs, &ShardError{Shard: i, Op: "register", Err: err})
			continue
		}
		if err := n.InstallSealedUserKeys(i, db); err != nil {
			errs = append(errs, &ShardError{Shard: i, Op: "register", Err: err})
		}
	}
	return errors.Join(errs...)
}

// ShardIndex is the cluster routing function in the open: FNV-1a over
// the file name modulo the fleet size (computed inline — the stdlib hash
// allocates per call, and routing is on every operation's path).
// Exposed so load generators and capacity planners can reason about
// placement without a cluster in hand.
func ShardIndex(name string, shards int) int {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return int(h % uint32(shards))
}

// ShardFor routes a file name to its home shard.
func (c *Cluster) ShardFor(name string) int {
	return ShardIndex(name, len(c.slots))
}

// Sync is the fleet-wide durability and convergence barrier: in
// replicated mode it first runs anti-entropy repair over every
// acknowledged file, then flushes every reachable shard's dirty store
// lines. Crashed and partitioned shards are skipped (they repair at the
// Sync after they rejoin).
func (c *Cluster) Sync() error {
	var errs []error
	if c.cfg.Replicas > 1 {
		if err := c.antiEntropy(); err != nil {
			errs = append(errs, err)
		}
	}
	for i, slot := range c.slots {
		n := slot.node.Load()
		if n == nil || slot.partitioned.Load() {
			continue
		}
		if err := n.Sync(); err != nil {
			errs = append(errs, &ShardError{Shard: i, Op: "sync", Err: err})
		}
	}
	return errors.Join(errs...)
}

// Shards reports the fleet size.
func (c *Cluster) Shards() int { return len(c.slots) }

// Node exposes one shard (tests, per-shard reports). A crashed shard is
// nil until RestartShard brings it back.
func (c *Cluster) Node(i int) *Node { return c.slots[i].node.Load() }

// resilient reports whether operations must take the replica-aware
// retry path. Single-copy clusters with no fault plan active keep the
// original direct path — one atomic pointer load over the old code.
func (c *Cluster) resilient() bool {
	return c.cfg.Replicas > 1 || faultinject.Enabled()
}

// Put stores a file on its replica set (write-quorum acknowledged) —
// the home shard alone in single-copy mode.
func (c *Cluster) Put(user, name string, payload []byte) error {
	return c.PutCtx(context.Background(), user, name, payload)
}

// PutCtx is Put with caller-controlled cancellation: the context is
// checked between retries and replica attempts.
func (c *Cluster) PutCtx(ctx context.Context, user, name string, payload []byte) error {
	if c.resilient() {
		if profiling.Enabled() {
			return doOp("put", c.ShardFor(name), func() error {
				return c.putReplicated(ctx, user, name, payload)
			})
		}
		return c.putReplicated(ctx, user, name, payload)
	}
	i := c.ShardFor(name)
	if profiling.Enabled() {
		return doOp("put", i, func() error { return c.put(i, user, name, payload) })
	}
	return c.put(i, user, name, payload)
}

func (c *Cluster) put(i int, user, name string, payload []byte) error {
	n := c.slots[i].node.Load()
	if n == nil {
		c.errs.Add(1)
		return &ShardError{Shard: i, Op: "put", Err: ErrShardDown}
	}
	err := n.Put(user, name, payload)
	if err != nil {
		c.errs.Add(1)
		return err
	}
	c.puts.Add(1)
	return nil
}

func (c *Cluster) putReplicated(ctx context.Context, user, name string, payload []byte) error {
	return c.writeReplicas(ctx, user, name, func(_ int, n *Node, _ faultinject.Result) error {
		return n.Put(user, name, payload)
	})
}

// Get fetches a file, falling back replica by replica when shards are
// down — the home shard alone in single-copy mode.
func (c *Cluster) Get(user, name string) ([]byte, error) {
	return c.GetCtx(context.Background(), user, name)
}

// GetCtx is Get with caller-controlled cancellation.
func (c *Cluster) GetCtx(ctx context.Context, user, name string) ([]byte, error) {
	if c.resilient() {
		var data []byte
		read := func(_ int, n *Node, _ faultinject.Result) error {
			var err error
			data, err = n.Get(user, name)
			return err
		}
		if profiling.Enabled() {
			err := doOp("get", c.ShardFor(name), func() error {
				return c.readReplicas(ctx, name, read)
			})
			return data, err
		}
		return data, c.readReplicas(ctx, name, read)
	}
	i := c.ShardFor(name)
	if profiling.Enabled() {
		var data []byte
		err := doOp("get", i, func() error {
			var err error
			data, err = c.get(i, user, name)
			return err
		})
		return data, err
	}
	return c.get(i, user, name)
}

func (c *Cluster) get(i int, user, name string) ([]byte, error) {
	n := c.slots[i].node.Load()
	if n == nil {
		c.errs.Add(1)
		return nil, &ShardError{Shard: i, Op: "get", Err: ErrShardDown}
	}
	data, err := n.Get(user, name)
	if err != nil {
		c.errs.Add(1)
		return nil, err
	}
	c.gets.Add(1)
	return data, nil
}

// ClusterStats aggregates fleet activity.
type ClusterStats struct {
	Shards int
	Puts   uint64
	Gets   uint64
	Errors uint64
	// Resilience counters. Retries counts per-replica retry attempts
	// after transient failures; FallbackReads counts reads served by a
	// non-primary replica; Repairs counts files rewritten by anti-entropy;
	// QuorumFailures counts writes that lost their quorum; DegradedWrites
	// counts writes acknowledged below full replication. DownShards is
	// the crashed-or-partitioned count right now — nonzero means the
	// cluster is serving in degraded mode.
	Retries        uint64
	FallbackReads  uint64
	Repairs        uint64
	QuorumFailures uint64
	DegradedWrites uint64
	DownShards     int
	// BusyCycles is the simulated busy time summed over shards; MaxBusy is
	// the busiest shard — the fleet analogue of the Shield's
	// max-across-engine-sets wall-clock model.
	BusyCycles uint64
	MaxBusy    uint64
	// ORAMAccesses/ORAMBytesMoved aggregate the oblivious store traffic
	// across shards (zero unless the fleet runs with NodeConfig.Oblivious):
	// the measured price of hiding the access pattern fleet-wide.
	ORAMAccesses   uint64
	ORAMBytesMoved uint64
}

// Stats snapshots the cluster's counters.
func (c *Cluster) Stats() ClusterStats {
	st := ClusterStats{
		Shards:         len(c.slots),
		Puts:           c.puts.Load(),
		Gets:           c.gets.Load(),
		Errors:         c.errs.Load(),
		Retries:        c.retries.Load(),
		FallbackReads:  c.fallbacks.Load(),
		Repairs:        c.repairs.Load(),
		QuorumFailures: c.quorumFails.Load(),
		DegradedWrites: c.degradedWrites.Load(),
	}
	for _, slot := range c.slots {
		n := slot.node.Load()
		if n == nil || slot.partitioned.Load() {
			st.DownShards++
			continue
		}
		rep := n.Report()
		var busy uint64
		for _, r := range rep.Regions {
			busy += r.BusyCycles
		}
		// Cache-served responses bypass the engine sets; their on-chip
		// copy cost still occupies the node.
		_, _, respCycles := n.RespCacheStats()
		busy += respCycles
		st.BusyCycles += busy
		if busy > st.MaxBusy {
			st.MaxBusy = busy
		}
		if o := n.ORAM(); o != nil {
			acc, moved, _ := o.Stats()
			st.ORAMAccesses += acc
			st.ORAMBytesMoved += moved
		}
	}
	return st
}

// ShardStats is one shard's live debug snapshot — the per-shard half of
// the -debug stats endpoint (JSON field names are the wire format).
type ShardStats struct {
	Shard           int    `json:"shard"`
	Health          string `json:"health"`
	Crashed         bool   `json:"crashed,omitempty"`
	Partitioned     bool   `json:"partitioned,omitempty"`
	BusyCycles      uint64 `json:"busy_cycles"`
	RespCacheHits   uint64 `json:"resp_cache_hits"`
	RespCacheMisses uint64 `json:"resp_cache_misses"`
	RespCacheCycles uint64 `json:"resp_cache_cycles"`
}

// PerShardStats snapshots every shard for the debug endpoint: where the
// fleet's simulated time is going, how the sealed-response caches are
// doing, and what the failure detector thinks of each node — one row per
// Storage Node.
func (c *Cluster) PerShardStats() []ShardStats {
	out := make([]ShardStats, len(c.slots))
	for i, slot := range c.slots {
		out[i] = ShardStats{
			Shard:       i,
			Health:      slot.health.State().String(),
			Partitioned: slot.partitioned.Load(),
		}
		n := slot.node.Load()
		if n == nil {
			out[i].Crashed = true
			continue
		}
		rep := n.Report()
		var busy uint64
		for _, r := range rep.Regions {
			busy += r.BusyCycles
		}
		hits, misses, cycles := n.RespCacheStats()
		out[i].BusyCycles = busy + cycles
		out[i].RespCacheHits = hits
		out[i].RespCacheMisses = misses
		out[i].RespCacheCycles = cycles
	}
	return out
}

// ResetStats zeroes the op counters and every shard's Shield counters.
func (c *Cluster) ResetStats() {
	c.puts.Store(0)
	c.gets.Store(0)
	c.errs.Store(0)
	c.retries.Store(0)
	c.fallbacks.Store(0)
	c.repairs.Store(0)
	c.quorumFails.Store(0)
	c.degradedWrites.Store(0)
	for _, slot := range c.slots {
		if n := slot.node.Load(); n != nil {
			n.ResetStats()
		}
	}
}
