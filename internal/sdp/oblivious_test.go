package sdp

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/shield"
)

// obliviousNodeConfig keeps the tree small: 8 slots × 8 KB over 4 KB auth
// blocks is a 16-block ORAM per node.
func obliviousNodeConfig() NodeConfig {
	return NodeConfig{
		Slots: 8, SlotBytes: 8 << 10, AuthBlock: 4096,
		Engines: 4, SBox: aesx.SBox16x, MAC: shield.PMAC,
		BufferBytes: 16 << 10, Oblivious: true,
	}
}

func TestObliviousNodeValidation(t *testing.T) {
	tiny := obliviousNodeConfig()
	tiny.Slots, tiny.SlotBytes = 1, 4096 // one auth block: no tree to build
	if _, err := NewNode(tiny, bytes.Repeat([]byte{1}, 32), LineRateParams()); err == nil ||
		!strings.Contains(err.Error(), "two auth blocks") {
		t.Fatalf("single-block oblivious node accepted: %v", err)
	}
	if _, err := NewNode(obliviousNodeConfig(), []byte("short"), LineRateParams()); err == nil ||
		!strings.Contains(err.Error(), "DEK") {
		t.Fatalf("short-DEK oblivious node accepted: %v", err)
	}
}

func TestObliviousNodeRoundTrip(t *testing.T) {
	n, err := NewNode(obliviousNodeConfig(), bytes.Repeat([]byte{3}, 32), LineRateParams())
	if err != nil {
		t.Fatal(err)
	}
	n.ProvisionUserKeys(map[string][]byte{"alice": []byte("alice-key"), "bob": []byte("bob-key")})
	payload := bytes.Repeat([]byte("oblivious-file-data."), 300) // ~6 KB, 2 auth blocks
	if err := n.Put("alice", "a.dat", payload); err != nil {
		t.Fatal(err)
	}
	small := []byte("tiny")
	if err := n.Put("bob", "b.dat", small); err != nil {
		t.Fatal(err)
	}
	got, err := n.Get("alice", "a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("oblivious Put/Get round trip corrupted the file")
	}
	got, err = n.Get("bob", "b.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, small) {
		t.Fatal("small-file round trip corrupted")
	}
	// GDPR policy still enforced above the ORAM layer.
	if _, err := n.Get("bob", "a.dat"); err == nil {
		t.Fatal("cross-user access allowed in oblivious mode")
	}
	// Overwrite in place.
	payload2 := bytes.Repeat([]byte("ROTATED!"), 512)
	if err := n.Put("alice", "a.dat", payload2); err != nil {
		t.Fatal(err)
	}
	got, err = n.Get("alice", "a.dat")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload2) {
		t.Fatal("overwritten file not returned")
	}
	// The store traffic went through the ORAM: path-shaped accesses and a
	// real amplification factor are visible in the stats.
	acc, moved, maxStash := n.ORAM().Stats()
	if acc == 0 || moved == 0 {
		t.Fatal("oblivious node served traffic without ORAM accesses")
	}
	if amp := n.ORAM().Amplification(); amp < 2 {
		t.Fatalf("amplification %.1fx implausibly low for a path per access", amp)
	}
	if maxStash > 60 {
		t.Fatalf("stash high-water %d breaches the Z=4 bound", maxStash)
	}
	// Plaintext never reaches device memory, even under the ORAM layout.
	dump, err := n.DRAM().RawRead(0, int(obliviousNodeConfig().storeSize()))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(dump, []byte("oblivious-file-data")) || bytes.Contains(dump, []byte("ROTATED!")) {
		t.Fatal("plaintext visible beneath the oblivious store")
	}
}

// TestObliviousCluster drives the Table 2 cluster in oblivious storage-node
// mode: concurrent Put/Get through ORAM-backed regions across shards.
func TestObliviousCluster(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Shards: 2, Node: obliviousNodeConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterUser("u", []byte("u-key")); err != nil {
		t.Fatal(err)
	}
	const workers, files = 4, 3
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for f := 0; f < files; f++ {
				name := fmt.Sprintf("w%d-f%d", w, f)
				payload := bytes.Repeat([]byte{byte(w*16 + f)}, 5000)
				if err := c.Put("u", name, payload); err != nil {
					errs[w] = err
					return
				}
				got, err := c.Get("u", name)
				if err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(got, payload) {
					errs[w] = fmt.Errorf("file %s corrupted", name)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			// A shard can legitimately fill up under hash skew; anything
			// else is a real failure.
			if strings.Contains(err.Error(), "node full") {
				continue
			}
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.ORAMAccesses == 0 || st.ORAMBytesMoved == 0 {
		t.Fatalf("cluster stats carry no ORAM traffic: %+v", st)
	}
}
