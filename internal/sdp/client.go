package sdp

import (
	"context"
	"fmt"
	"strconv"

	"shef/internal/faultinject"
	"shef/internal/profiling"
	"shef/internal/shield"
)

// Interned shard-index labels for the profiling taxonomy: formatting the
// index per operation would put an allocation on the serving hot path
// even though labels only matter while a harness runs.
var shardLabels = [...]string{"0", "1", "2", "3", "4", "5", "6", "7",
	"8", "9", "10", "11", "12", "13", "14", "15"}

func shardLabel(i int) string {
	if i >= 0 && i < len(shardLabels) {
		return shardLabels[i]
	}
	return strconv.Itoa(i)
}

// doOp wraps one client operation in the profiling label taxonomy
// (sdp-op=put|get, sdp-shard=N) when a harness is active. The call is
// explicitly branched at every site rather than funnelled through a
// closure so the disabled path performs the operation directly — no
// closure escapes, no allocations, no label building.
//
//shef:guarded
func doOp(op string, shard int, f func() error) error {
	var err error
	profiling.Do(context.Background(), func() { err = f() },
		"sdp-op", op, "sdp-shard", shardLabel(shard))
	return err
}

// TLSSession is a Data Owner endpoint onto one Storage Node's tls
// region: a persistent region sealer plus staging buffers, built once
// per session instead of per message. It moves the client half of the
// TLS path — sealing requests, opening responses — onto the client's
// own goroutine, so the node's serialised section carries only node
// work (the paper's trust split: the Data Owner's endpoint is not part
// of the Storage Node).
//
// A TLSSession is not safe for concurrent use; hold one per goroutine.
type TLSSession struct {
	rs    *shield.RegionSealer
	chunk int
	ct    []byte
	tags  []byte
	plain []byte
}

// NewTLSSession opens a Data Owner endpoint for this node's tls region.
// (In the full protocol the Data Owner holds the session DEK from
// attestation; here it comes from the node handle, like the legacy
// in-process path.)
func (n *Node) NewTLSSession() (*TLSSession, error) {
	rs, err := shield.NewRegionSealer(n.tlsCfg, n.tlsLayout.RegionID, n.dek)
	if err != nil {
		return nil, err
	}
	size := int(n.tlsCfg.Size)
	return &TLSSession{
		rs:    rs,
		chunk: n.cfg.AuthBlock,
		ct:    make([]byte, size),
		tags:  make([]byte, size/n.cfg.AuthBlock*shield.TagSize),
		plain: make([]byte, size),
	}, nil
}

// Seal encrypts payload into the session's staging buffers in the tls
// region's chunk format and returns the ciphertext and tag extents,
// valid until the next Seal. Feed them to Node.PutSealed.
func (t *TLSSession) Seal(payload []byte) (ct, tags []byte, err error) {
	aligned := alignUp(len(payload), t.chunk)
	if aligned > len(t.plain) || len(payload) == 0 {
		return nil, nil, rejectf("sdp: payload of %d bytes outside the tls region's 1..%d", len(payload), len(t.plain))
	}
	copy(t.plain, payload)
	clear(t.plain[len(payload):aligned])
	k := aligned / t.chunk
	if err := t.rs.SealRange(0, 0, t.ct[:aligned], t.tags[:k*shield.TagSize], t.plain[:aligned]); err != nil {
		return nil, nil, err
	}
	return t.ct[:aligned], t.tags[:k*shield.TagSize], nil
}

// Open verifies and decrypts a sealed response extent (from
// Node.GetSealed) and appends the size payload bytes to dst.
func (t *TLSSession) Open(dst, ct, tags []byte, size int) ([]byte, error) {
	aligned := alignUp(size, t.chunk)
	if aligned > len(t.plain) || size < 0 {
		return nil, fmt.Errorf("sdp: sealed response of %d bytes outside the tls region: %w", size, ErrBadResponse)
	}
	k := aligned / t.chunk
	if len(ct) < aligned || len(tags) < k*shield.TagSize {
		return nil, fmt.Errorf("sdp: sealed response extent truncated: %w", ErrBadResponse)
	}
	if err := t.rs.OpenRange(0, 0, t.plain[:aligned], ct[:aligned], tags[:k*shield.TagSize]); err != nil {
		return nil, err
	}
	return append(dst[:0], t.plain[:size]...), nil
}

// Buffers exposes the session's reusable ciphertext/tag staging buffers,
// sized to the full tls region — the transfer buffers a caller hands to
// Node.GetSealed before opening the result with the same session.
func (t *TLSSession) Buffers() (ct, tags []byte) { return t.ct, t.tags }

// Client is a Data Owner endpoint onto the whole fleet: one TLSSession
// per shard, with Put/Get routed like Cluster.Put/Cluster.Get but with
// the client-side cryptography on the caller's goroutine. Not safe for
// concurrent use; create one Client per worker.
type Client struct {
	c        *Cluster
	sessions []*TLSSession
}

// NewClient opens a Data Owner endpoint with a TLS session to every
// shard. Sessions are keyed by each shard's stable session DEK, so they
// survive shard crashes and restarts.
func (c *Cluster) NewClient() (*Client, error) {
	cl := &Client{c: c, sessions: make([]*TLSSession, len(c.slots))}
	for i, slot := range c.slots {
		n := slot.node.Load()
		if n == nil {
			return nil, &ShardError{Shard: i, Op: "session", Err: ErrShardDown}
		}
		t, err := n.NewTLSSession()
		if err != nil {
			return nil, fmt.Errorf("sdp: shard %d session: %w", i, err)
		}
		cl.sessions[i] = t
	}
	return cl, nil
}

// Put seals the payload on the client's goroutine and stores it on the
// file's replica set (the home shard alone in single-copy mode). Each
// replica gets its own seal — sessions are per-shard — so a corrupted
// copy on one replica can never authenticate on another.
func (cl *Client) Put(user, name string, payload []byte) error {
	return cl.PutCtx(context.Background(), user, name, payload)
}

// PutCtx is Put with caller-controlled cancellation.
func (cl *Client) PutCtx(ctx context.Context, user, name string, payload []byte) error {
	if cl.c.resilient() {
		if profiling.Enabled() {
			return doOp("put", cl.c.ShardFor(name), func() error {
				return cl.putResilient(ctx, user, name, payload)
			})
		}
		return cl.putResilient(ctx, user, name, payload)
	}
	i := cl.c.ShardFor(name)
	if profiling.Enabled() {
		return doOp("put", i, func() error { return cl.put(i, user, name, payload) })
	}
	return cl.put(i, user, name, payload)
}

func (cl *Client) put(i int, user, name string, payload []byte) error {
	ct, tags, err := cl.sessions[i].Seal(payload)
	if err == nil {
		err = cl.c.slots[i].node.Load().PutSealed(user, name, len(payload), ct, tags)
	}
	if err != nil {
		cl.c.errs.Add(1)
		return err
	}
	cl.c.puts.Add(1)
	return nil
}

// putResilient writes through the replica machinery, re-sealing per
// replica on that replica's session. An injected corruption fault mangles
// the sealed image in transit — the node's tls engine set refuses it, the
// attempt fails authenticated-closed, and the retry re-seals cleanly.
func (cl *Client) putResilient(ctx context.Context, user, name string, payload []byte) error {
	return cl.c.writeReplicas(ctx, user, name, func(shard int, n *Node, fi faultinject.Result) error {
		ct, tags, err := cl.sessions[shard].Seal(payload)
		if err != nil {
			return reject(err)
		}
		if fi.Corrupt {
			faultinject.CorruptBytes(ct, fi.CorruptSeed)
		}
		return n.PutSealed(user, name, len(payload), ct, tags)
	})
}

// PutSealed stores a pre-sealed image (from Seal on the file's home
// shard session) — the loadgen path, where one sealed request image is
// replayed many times without resealing. In replicated mode the image is
// opened to recover the payload and re-sealed per replica (each shard
// seals under its own session DEK).
func (cl *Client) PutSealed(user, name string, size int, ct, tags []byte) error {
	i := cl.c.ShardFor(name)
	if cl.c.resilient() {
		plain, err := cl.sessions[i].Open(nil, ct, tags, size)
		if err != nil {
			cl.c.errs.Add(1)
			return err
		}
		return cl.PutCtx(context.Background(), user, name, plain)
	}
	if profiling.Enabled() {
		return doOp("put", i, func() error { return cl.putSealed(i, user, name, size, ct, tags) })
	}
	return cl.putSealed(i, user, name, size, ct, tags)
}

func (cl *Client) putSealed(i int, user, name string, size int, ct, tags []byte) error {
	if err := cl.c.slots[i].node.Load().PutSealed(user, name, size, ct, tags); err != nil {
		cl.c.errs.Add(1)
		return err
	}
	cl.c.puts.Add(1)
	return nil
}

// Session returns the client's TLS session for the shard that owns name.
func (cl *Client) Session(name string) *TLSSession {
	return cl.sessions[cl.c.ShardFor(name)]
}

// Get fetches a file, opening the sealed response on the client's
// goroutine, and appends the payload to dst. In replicated mode the read
// falls back replica by replica: a replica whose sealed response fails
// authentication (corrupted storage or transit) is treated as a failed
// replica and the next one serves.
func (cl *Client) Get(user, name string, dst []byte) ([]byte, error) {
	return cl.GetCtx(context.Background(), user, name, dst)
}

// GetCtx is Get with caller-controlled cancellation.
func (cl *Client) GetCtx(ctx context.Context, user, name string, dst []byte) ([]byte, error) {
	if cl.c.resilient() {
		var out []byte
		read := func(shard int, n *Node, fi faultinject.Result) error {
			t := cl.sessions[shard]
			size, err := n.GetSealed(user, name, t.ct, t.tags)
			if err != nil {
				return err
			}
			if fi.Corrupt {
				faultinject.CorruptBytes(t.ct[:alignUp(size, t.chunk)], fi.CorruptSeed)
			}
			o, err := t.Open(dst, t.ct, t.tags, size)
			if err != nil {
				return err
			}
			out = o
			return nil
		}
		if profiling.Enabled() {
			err := doOp("get", cl.c.ShardFor(name), func() error {
				return cl.c.readReplicas(ctx, name, read)
			})
			return out, err
		}
		return out, cl.c.readReplicas(ctx, name, read)
	}
	i := cl.c.ShardFor(name)
	if profiling.Enabled() {
		var out []byte
		err := doOp("get", i, func() error {
			var err error
			out, err = cl.get(i, user, name, dst)
			return err
		})
		return out, err
	}
	return cl.get(i, user, name, dst)
}

func (cl *Client) get(i int, user, name string, dst []byte) ([]byte, error) {
	t := cl.sessions[i]
	size, err := cl.c.slots[i].node.Load().GetSealed(user, name, t.ct, t.tags)
	if err != nil {
		cl.c.errs.Add(1)
		return nil, err
	}
	out, err := t.Open(dst, t.ct, t.tags, size)
	if err != nil {
		cl.c.errs.Add(1)
		return nil, err
	}
	cl.c.gets.Add(1)
	return out, nil
}

// GetSealed fetches a file's sealed response into the serving shard's
// session staging buffers without opening it — the loadgen path,
// measuring server-side serving with the client-side open sampled
// separately. Returns the payload size and the session holding the
// sealed bytes (the home shard's in single-copy mode; in replicated mode
// whichever replica served the read).
func (cl *Client) GetSealed(user, name string) (int, *TLSSession, error) {
	if cl.c.resilient() {
		var size int
		var t *TLSSession
		err := cl.c.readReplicas(context.Background(), name, func(shard int, n *Node, fi faultinject.Result) error {
			s := cl.sessions[shard]
			sz, err := n.GetSealed(user, name, s.ct, s.tags)
			if err != nil {
				return err
			}
			if fi.Corrupt {
				faultinject.CorruptBytes(s.ct[:alignUp(sz, s.chunk)], fi.CorruptSeed)
			}
			size, t = sz, s
			return nil
		})
		return size, t, err
	}
	i := cl.c.ShardFor(name)
	if profiling.Enabled() {
		var size int
		var t *TLSSession
		err := doOp("get", i, func() error {
			var err error
			size, t, err = cl.getSealed(i, user, name)
			return err
		})
		return size, t, err
	}
	return cl.getSealed(i, user, name)
}

func (cl *Client) getSealed(i int, user, name string) (int, *TLSSession, error) {
	t := cl.sessions[i]
	size, err := cl.c.slots[i].node.Load().GetSealed(user, name, t.ct, t.tags)
	if err != nil {
		cl.c.errs.Add(1)
		return 0, nil, err
	}
	cl.c.gets.Add(1)
	return size, t, nil
}
