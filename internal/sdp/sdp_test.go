package sdp

import (
	"bytes"
	"math/rand"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/shield"
)

func smallConfig() NodeConfig {
	return NodeConfig{
		Slots: 4, SlotBytes: 64 << 10, AuthBlock: 4096,
		Engines: 4, SBox: aesx.SBox16x, MAC: shield.PMAC,
		BufferBytes: 16 << 10,
	}
}

func newNode(t *testing.T) *Node {
	t.Helper()
	dek := bytes.Repeat([]byte{0x21}, 32)
	n, err := NewNode(smallConfig(), dek, LineRateParams())
	if err != nil {
		t.Fatal(err)
	}
	n.ProvisionUserKeys(map[string][]byte{
		"alice": []byte("alice-key"),
		"bob":   []byte("bob-key"),
	})
	return n
}

func TestPutGetRoundTrip(t *testing.T) {
	n := newNode(t)
	payload := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := n.Put("alice", "health.rec", payload); err != nil {
		t.Fatal(err)
	}
	got, err := n.Get("alice", "health.rec")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("file corrupted through the storage node")
	}
}

func TestMultipleFilesAndOverwrite(t *testing.T) {
	n := newNode(t)
	f1 := bytes.Repeat([]byte{1}, 5000)
	f2 := bytes.Repeat([]byte{2}, 7000)
	if err := n.Put("alice", "a", f1); err != nil {
		t.Fatal(err)
	}
	if err := n.Put("bob", "b", f2); err != nil {
		t.Fatal(err)
	}
	got, err := n.Get("bob", "b")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, f2) {
		t.Fatal("bob's file corrupted")
	}
	// Overwrite reuses the slot.
	f1b := bytes.Repeat([]byte{3}, 4000)
	if err := n.Put("alice", "a", f1b); err != nil {
		t.Fatal(err)
	}
	got, _ = n.Get("alice", "a")
	if !bytes.Equal(got, f1b) {
		t.Fatal("overwrite lost data")
	}
}

// TestGDPRAccessPolicy: a user cannot read another user's file, and
// unprovisioned users get nothing.
func TestGDPRAccessPolicy(t *testing.T) {
	n := newNode(t)
	n.Put("alice", "secret", []byte("alice's medical records"))
	if _, err := n.Get("bob", "secret"); err == nil {
		t.Fatal("bob read alice's file")
	}
	if _, err := n.Get("mallory", "secret"); err == nil {
		t.Fatal("unprovisioned user served")
	}
	if err := n.Put("mallory", "x", []byte("data")); err == nil {
		t.Fatal("unprovisioned user stored a file")
	}
}

func TestStorageIsEncryptedAtRest(t *testing.T) {
	n := newNode(t)
	secret := bytes.Repeat([]byte("GDPR-PROTECTED"), 300)
	n.Put("alice", "f", secret)
	dump, err := n.DRAM().RawRead(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(dump, []byte("GDPR-PROTECTED")) {
		t.Fatal("plaintext visible on the storage device")
	}
}

func TestStorageTamperDetected(t *testing.T) {
	n := newNode(t)
	payload := make([]byte, 20_000)
	rand.New(rand.NewSource(2)).Read(payload)
	n.Put("alice", "f", payload)
	// Adversary (cloud operator) flips a bit in the stored ciphertext.
	n.Shield().InvalidateClean()
	raw, _ := n.DRAM().RawRead(storeBase, 1)
	raw[0] ^= 1
	n.DRAM().RawWrite(storeBase, raw)
	if _, err := n.Get("alice", "f"); err == nil {
		t.Fatal("tampered storage served to the application")
	}
}

func TestNodeCapacity(t *testing.T) {
	n := newNode(t)
	for i := 0; i < 4; i++ {
		if err := n.Put("alice", string(rune('a'+i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Put("alice", "overflow", []byte("x")); err == nil {
		t.Fatal("node accepted file beyond capacity")
	}
	big := make([]byte, smallConfig().SlotBytes+1)
	if err := n.Put("alice", "a", big); err == nil {
		t.Fatal("oversized file accepted")
	}
}

func TestNodeConfigValidation(t *testing.T) {
	bad := smallConfig()
	bad.Slots = 0
	if _, err := NewNode(bad, make([]byte, 32), LineRateParams()); err == nil {
		t.Fatal("zero-slot node built")
	}
	bad = smallConfig()
	bad.SlotBytes = 1000 // not a multiple of AuthBlock
	if _, err := NewNode(bad, make([]byte, 32), LineRateParams()); err == nil {
		t.Fatal("misaligned slot size accepted")
	}
}

func TestUserLayerKeySeparation(t *testing.T) {
	n := newNode(t)
	data := []byte("same plaintext")
	buf1 := append([]byte(nil), data...)
	buf2 := append([]byte(nil), data...)
	n.sealForUser("alice", "f", buf1)
	n.sealForUser("bob", "f", buf2)
	if bytes.Equal(buf1, buf2) {
		t.Fatal("different users share the file encryption layer")
	}
	n.sealForUser("alice", "f", buf1)
	if !bytes.Equal(buf1, data) {
		t.Fatal("user layer is not an involution")
	}
}

// TestTable2Shape asserts the paper's Table 2 shape: the two HMAC configs
// are equal and heavy; PMAC cuts the overhead sharply; more engines
// saturate toward a small floor. Bands are centred on the paper's
// 298/297/59/20/20% with model tolerance.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 1MB sweep in -short mode")
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	ov := make([]float64, 5)
	for i, r := range rows {
		ov[i] = r.Overhead
		t.Logf("%-24s %.0f%%", r.Label, r.Overhead*100)
	}
	within := func(i int, lo, hi float64) {
		if ov[i] < lo || ov[i] > hi {
			t.Errorf("config %d overhead %.0f%% outside [%.0f%%, %.0f%%]", i, ov[i]*100, lo*100, hi*100)
		}
	}
	within(0, 2.5, 3.5) // paper: 298%
	within(1, 2.5, 3.5) // paper: 297%
	within(2, 0.45, 0.90)
	within(3, 0.15, 0.45)
	within(4, 0.10, 0.35)
	if diff := ov[0] - ov[1]; diff < -0.05 || diff > 0.05 {
		t.Errorf("HMAC configs should be nearly identical (S-box moot): %.2f vs %.2f", ov[0], ov[1])
	}
	if !(ov[1] > ov[2] && ov[2] > ov[3] && ov[3] >= ov[4]) {
		t.Errorf("overheads not monotone down the sweep: %v", ov)
	}
}

// TestStorageRollbackDetected: a malicious operator restoring a previous
// version of a stored file (e.g. un-deleting a record after a GDPR
// erasure) is caught by the store region's freshness counters.
func TestStorageRollbackDetected(t *testing.T) {
	n := newNode(t)
	v1 := bytes.Repeat([]byte{0xA1}, 8192)
	if err := n.Put("alice", "f", v1); err != nil {
		t.Fatal(err)
	}
	// Snapshot the stored ciphertext and its tags.
	layout, err := n.Shield().Layout("store")
	if err != nil {
		t.Fatal(err)
	}
	snapData, _ := n.DRAM().Snapshot(layout.DataBase, 3*4096)
	snapTags, _ := n.DRAM().Snapshot(layout.TagBase, 3*shield.TagSize)

	// Overwrite (the "erasure").
	v2 := bytes.Repeat([]byte{0xB2}, 8192)
	if err := n.Put("alice", "f", v2); err != nil {
		t.Fatal(err)
	}
	n.Shield().InvalidateClean()

	// Roll back both data and tags.
	n.DRAM().Restore(layout.DataBase, snapData)
	n.DRAM().Restore(layout.TagBase, snapTags)
	if _, err := n.Get("alice", "f"); err == nil {
		t.Fatal("rolled-back file served to the application")
	}
}
