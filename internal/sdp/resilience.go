package sdp

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"shef/internal/faultinject"
)

// Fault-injection site names for the cluster's Storage Node boundary —
// the targets faultinject rules aim at.
const (
	FaultSitePut = "sdp.put"
	FaultSiteGet = "sdp.get"
)

// replicaSet lists the shards holding a file: the home shard plus its
// Replicas-1 successors on the ring, in placement order.
func (c *Cluster) replicaSet(name string) []int {
	home := c.ShardFor(name)
	reps := make([]int, c.cfg.Replicas)
	for k := range reps {
		reps[k] = (home + k) % len(c.slots)
	}
	return reps
}

// fileLock returns the stripe mutex serializing replicated writes and
// repair for one file.
func (c *Cluster) fileLock(name string) *sync.Mutex {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint32(name[i])) * 16777619
	}
	return &c.fileLocks[h%uint32(len(c.fileLocks))]
}

// fileMeta is one registry entry: the file's owner and the witness set —
// the shards that acknowledged its most recent successful write, in
// placement order. A witness is guaranteed to hold (at least) the last
// acknowledged version.
type fileMeta struct {
	user  string
	acked []int
}

// readOrder is the replica order a read walks: witnesses of the last
// acknowledged write first, then the rest of the placement order. Without
// this, a primary that missed an acknowledged write (transient fault,
// crash window) would serve its stale copy to a reader while perfectly
// fresh replicas sat idle behind it.
func (c *Cluster) readOrder(name string) []int {
	reps := c.replicaSet(name)
	c.regMu.RLock()
	meta, ok := c.registry[name]
	c.regMu.RUnlock()
	if !ok || len(meta.acked) == 0 {
		return reps
	}
	witness := make(map[int]bool, len(meta.acked))
	for _, s := range meta.acked {
		witness[s] = true
	}
	order := make([]int, 0, len(reps))
	order = append(order, meta.acked...)
	for _, s := range reps {
		if !witness[s] {
			order = append(order, s)
		}
	}
	return order
}

// opDeadline starts one operation's time budget.
func (c *Cluster) opDeadline() time.Time {
	if c.cfg.OpTimeout <= 0 {
		return time.Time{}
	}
	return time.Now().Add(c.cfg.OpTimeout)
}

// backoff is the capped exponential retry delay with deterministic
// jitter in [d/2, d): doubling per attempt, capped at MaxBackoff, jitter
// drawn from the cluster's seeded generator so a seeded test run sleeps
// the same schedule every time.
func (c *Cluster) backoff(attempt int) time.Duration {
	d := c.cfg.Retry.BaseBackoff
	for i := 0; i < attempt && d < c.cfg.Retry.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.Retry.MaxBackoff {
		d = c.cfg.Retry.MaxBackoff
	}
	x := c.rng.Add(0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(x%uint64(half))
}

// replicaOp is one replica attempt's body. The faultinject.Result carries
// a pending corruption decision for paths that can apply it where a MAC
// will catch it (the sealed client path); plaintext paths ignore it.
type replicaOp func(shard int, n *Node, fi faultinject.Result) error

// attemptOnce runs one attempt against one shard: failure-detector gate,
// availability check, fault-injection consult, then the operation body.
// The second result reports whether the shard was genuinely exercised —
// health-gate skips are synthetic and must not feed the failure detector
// (they would keep resetting a Down shard's recovery progress).
func (c *Cluster) attemptOnce(site string, shard int, slot *shardSlot, do replicaOp) (error, bool) {
	if !slot.health.allowOp() {
		return &ShardError{Shard: shard, Op: site, Err: ErrShardDown}, false
	}
	n := slot.node.Load()
	if n == nil || slot.partitioned.Load() {
		return &ShardError{Shard: shard, Op: site, Err: ErrShardDown}, true
	}
	var fi faultinject.Result
	if faultinject.Enabled() {
		fi = faultinject.Check(site, shard)
		if fi.Err != nil {
			return &ShardError{Shard: shard, Op: site, Err: fi.Err}, true
		}
	}
	if err := do(shard, n, fi); err != nil {
		return &ShardError{Shard: shard, Op: site, Err: err}, true
	}
	return nil, true
}

// tryReplica drives one replica's retry loop: up to MaxAttempts with
// capped jittered backoff for transient failures, stopping immediately on
// application rejections (authoritative), unreachable shards (fall back
// to the next replica instead of burning the budget here), context
// cancellation, and the operation deadline.
func (c *Cluster) tryReplica(ctx context.Context, site string, shard int, deadline time.Time, do replicaOp) error {
	slot := c.slots[shard]
	var firstErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			if firstErr != nil {
				return firstErr
			}
			return &ShardError{Shard: shard, Op: site, Err: ErrShardDown}
		}
		err, attempted := c.attemptOnce(site, shard, slot, do)
		if err == nil {
			slot.health.success()
			return nil
		}
		if !Retryable(err) {
			return err
		}
		if attempted {
			slot.health.failure()
		}
		if firstErr == nil {
			firstErr = err
		}
		if errors.Is(err, ErrShardDown) {
			return firstErr
		}
		if attempt+1 >= c.cfg.Retry.MaxAttempts {
			return firstErr
		}
		c.retries.Add(1)
		time.Sleep(c.backoff(attempt))
	}
}

// readReplicas serves a read from the first replica that answers,
// walking the replica set in witness-first order. An application rejection
// from one replica is remembered but does not stop the walk — a freshly
// restarted replica legitimately answers "not found" for a file its
// peers hold. The outcome ranking: any success wins; all-rejections
// returns the first rejection (the authoritative answer); any
// infrastructure failure in the mix degrades the read.
func (c *Cluster) readReplicas(ctx context.Context, name string, do replicaOp) error {
	reps := c.readOrder(name)
	deadline := c.opDeadline()
	var firstApp, firstInfra error
	for idx, shard := range reps {
		err := c.tryReplica(ctx, FaultSiteGet, shard, deadline, do)
		if err == nil {
			if idx > 0 {
				c.fallbacks.Add(1)
			}
			c.gets.Add(1)
			return nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			c.errs.Add(1)
			return err
		}
		if Retryable(err) {
			if firstInfra == nil {
				firstInfra = err
			}
		} else if firstApp == nil {
			firstApp = err
		}
	}
	c.errs.Add(1)
	if firstInfra == nil {
		return firstApp
	}
	return fmt.Errorf("%w: all %d replica(s) of %q failed: %w", ErrDegraded, len(reps), name, firstInfra)
}

// writeReplicas applies a write to every replica and acknowledges at a
// majority quorum (Replicas/2+1). A quorum met below full replication is
// still acknowledged — that is degraded mode, counted so operators see
// it — and anti-entropy repairs the laggards at the next Sync. Below
// quorum the write fails with ErrQuorumLost (unless every replica
// rejected it at the application level, which is the authoritative
// verdict and surfaces as-is).
func (c *Cluster) writeReplicas(ctx context.Context, user, name string, do replicaOp) error {
	mu := c.fileLock(name)
	mu.Lock()
	defer mu.Unlock()
	reps := c.replicaSet(name)
	quorum := len(reps)/2 + 1
	deadline := c.opDeadline()
	var ackedShards []int
	var firstApp, firstInfra error
	for _, shard := range reps {
		err := c.tryReplica(ctx, FaultSitePut, shard, deadline, do)
		switch {
		case err == nil:
			ackedShards = append(ackedShards, shard)
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if firstInfra == nil {
				firstInfra = err
			}
		case Retryable(err):
			if firstInfra == nil {
				firstInfra = err
			}
		default:
			if firstApp == nil {
				firstApp = err
			}
		}
	}
	if len(ackedShards) >= quorum {
		c.puts.Add(1)
		if len(ackedShards) < len(reps) {
			c.degradedWrites.Add(1)
		}
		if c.cfg.Replicas > 1 {
			c.registerFile(name, user, ackedShards)
		}
		return nil
	}
	c.errs.Add(1)
	if firstInfra == nil {
		return firstApp
	}
	c.quorumFails.Add(1)
	return fmt.Errorf("%w: %d/%d replicas acked %q: %w", ErrQuorumLost, len(ackedShards), quorum, name, firstInfra)
}

// registerFile records an acknowledged write and its witness set in the
// CN-side file index anti-entropy walks.
func (c *Cluster) registerFile(name, user string, acked []int) {
	c.regMu.Lock()
	c.registry[name] = fileMeta{user: user, acked: acked}
	c.regMu.Unlock()
}

// CrashShard kills a shard in place: the node (and all its state — a
// crashed Storage Node's DRAM does not survive) is dropped atomically,
// so in-flight operations against the old node finish against a
// consistent instance and new ones fail with ErrShardDown until
// RestartShard.
func (c *Cluster) CrashShard(i int) {
	c.slots[i].node.Store(nil)
}

// RestartShard boots a replacement node for a crashed shard with the
// SAME session DEK — the CN resumes the provisioning session it
// established at bring-up, so existing client TLS sessions keep working —
// and pushes the full current user-key database. The shard comes back
// empty (Recovering in the failure detector); anti-entropy refills it at
// the next Sync.
func (c *Cluster) RestartShard(i int) error {
	slot := c.slots[i]
	n, err := NewNode(c.cfg.Node, slot.dek, c.cfg.Params)
	if err != nil {
		return &ShardError{Shard: i, Op: "restart", Err: err}
	}
	slot.node.Store(n)
	slot.partitioned.Store(false)
	if err := c.reprovisionShard(i); err != nil {
		return err
	}
	slot.health.markRecovering()
	return nil
}

// PartitionShard makes a shard unreachable without losing its state —
// the network-partition half of the fault model. Heal with HealShard.
func (c *Cluster) PartitionShard(i int) {
	c.slots[i].partitioned.Store(true)
}

// HealShard ends a shard's partition. The key database may have rotated
// while it was unreachable, so the CN re-pushes the full current
// database before traffic returns.
func (c *Cluster) HealShard(i int) error {
	slot := c.slots[i]
	slot.partitioned.Store(false)
	if err := c.reprovisionShard(i); err != nil {
		return err
	}
	slot.health.markRecovering()
	return nil
}

// antiEntropy walks the acknowledged-file index and repairs every
// replica set to the majority version. This is the CN-driven repair
// channel: the CN holds every shard's session DEK, so reading a replica
// for comparison and rewriting a divergent one happens inside the trust
// domain the provisioning session already established.
//
// Repair order is sorted by file name: chaos runs replay fault schedules
// seed-for-seed, and walking the registry in map order would make which
// file hits an injected fault differ run to run.
//
//shef:deterministic
func (c *Cluster) antiEntropy() error {
	c.regMu.RLock()
	names := make([]string, 0, len(c.registry))
	metas := make(map[string]fileMeta, len(c.registry))
	//shef:ignore snapshot collection; the walk below runs in sorted order
	for name, meta := range c.registry {
		names = append(names, name)
		metas[name] = meta
	}
	c.regMu.RUnlock()
	sort.Strings(names)
	var errs []error
	for _, name := range names {
		if err := c.repairFile(name, metas[name]); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// repairFile converges one file's replica set: read every reachable
// replica, pick the canonical version, rewrite everyone else. The
// canonical copy is the first readable witness of the last acknowledged
// write — a witness is guaranteed to hold at least that version, while a
// raw majority vote can lose an acknowledged write (two stale survivors
// outvoting the one fresh replica after a crash). Only when no witness
// is readable does the vote run as a fallback (majority byte-identical;
// ties go to the earliest replica in placement order). Unreachable
// replicas are skipped; they converge at the Sync after they rejoin. A
// replica whose read fails (missing after a restart, or its tamper
// latch tripped on corrupted storage) is treated as divergent and
// rewritten — unless its engine set is latched, in which case the
// rewrite fails too and the error tells the operator to restart that
// node.
func (c *Cluster) repairFile(name string, meta fileMeta) error {
	mu := c.fileLock(name)
	mu.Lock()
	defer mu.Unlock()
	// Re-snapshot under the lock: a write may have advanced the witness
	// set between the anti-entropy walk's snapshot and now.
	c.regMu.RLock()
	if cur, ok := c.registry[name]; ok {
		meta = cur
	}
	c.regMu.RUnlock()
	user := meta.user
	reps := c.replicaSet(name)
	type version struct {
		shard int
		data  []byte
	}
	var have []version
	var stale []int
	for _, shard := range reps {
		slot := c.slots[shard]
		n := slot.node.Load()
		if n == nil || slot.partitioned.Load() {
			continue
		}
		data, err := n.Get(user, name)
		if err != nil {
			stale = append(stale, shard)
			continue
		}
		have = append(have, version{shard, data})
	}
	if len(have) == 0 {
		return &ShardError{Shard: reps[0], Op: "repair",
			Err: fmt.Errorf("file %q unreadable on every reachable replica: %w", name, ErrDegraded)}
	}
	winnerShard := -1
	var winner []byte
	for _, w := range meta.acked {
		for _, v := range have {
			if v.shard == w {
				winnerShard, winner = v.shard, v.data
				break
			}
		}
		if winnerShard >= 0 {
			break
		}
	}
	if winnerShard < 0 {
		best, bestCount := 0, 0
		for i := range have {
			count := 0
			for j := range have {
				if bytes.Equal(have[i].data, have[j].data) {
					count++
				}
			}
			if count > bestCount {
				best, bestCount = i, count
			}
		}
		winnerShard, winner = have[best].shard, have[best].data
	}
	var errs []error
	holds := map[int]bool{winnerShard: true}
	rewrite := func(shard int) {
		n := c.slots[shard].node.Load()
		if n == nil {
			return
		}
		if err := n.Put(user, name, winner); err != nil {
			errs = append(errs, &ShardError{Shard: shard, Op: "repair", Err: err})
			return
		}
		c.repairs.Add(1)
		holds[shard] = true
	}
	for _, v := range have {
		if v.shard == winnerShard {
			continue
		}
		if bytes.Equal(v.data, winner) {
			holds[v.shard] = true
		} else {
			rewrite(v.shard)
		}
	}
	for _, shard := range stale {
		rewrite(shard)
	}
	// Refresh the witness set: every replica now verified (or rewritten)
	// to hold the canonical bytes is a witness, so reads and the next
	// repair pass don't depend on the original witness staying alive.
	var converged []int
	for _, shard := range reps {
		if holds[shard] {
			converged = append(converged, shard)
		}
	}
	c.registerFile(name, user, converged)
	return errors.Join(errs...)
}
