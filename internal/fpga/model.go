// Package fpga models the physical FPGA device that ShEF runs on: key
// storage (e-fuse/BBRAM with optional PUF wrapping), the Security Processor
// Block with its BootROM, tamper and port monitors, partial-reconfiguration
// regions, and per-device resource budgets.
//
// ShEF deliberately relies only on mechanisms that shipping Xilinx
// UltraScale+ and Intel Stratix 10 parts already provide (paper §2.2, §3):
// an AES key in secure non-volatile storage, a hardened security processor
// executing from BootROM and programmable firmware, and active tamper
// monitoring. This package reproduces exactly those interfaces and no more,
// so the boot and attestation code above it cannot cheat.
package fpga

// Resources is a device resource budget (or usage) in the units Vivado
// reports: BRAM36 tiles, LUTs, registers, and URAM tiles.
type Resources struct {
	BRAM uint64
	LUT  uint64
	REG  uint64
	URAM uint64
}

// Add returns the component-wise sum.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		BRAM: r.BRAM + o.BRAM,
		LUT:  r.LUT + o.LUT,
		REG:  r.REG + o.REG,
		URAM: r.URAM + o.URAM,
	}
}

// Scale returns the resources multiplied by n (n instances of a component).
func (r Resources) Scale(n int) Resources {
	m := uint64(n)
	return Resources{BRAM: r.BRAM * m, LUT: r.LUT * m, REG: r.REG * m, URAM: r.URAM * m}
}

// FitsIn reports whether r fits inside budget.
func (r Resources) FitsIn(budget Resources) bool {
	return r.BRAM <= budget.BRAM && r.LUT <= budget.LUT &&
		r.REG <= budget.REG && r.URAM <= budget.URAM
}

// Model describes an FPGA part.
type Model struct {
	Name string
	// Total reconfigurable-fabric resources available to user designs.
	Budget Resources
	// OCMBits is the total on-chip RAM pool (BRAM + URAM) in bits.
	OCMBits uint64
	// DRAMSize is the attached device memory in bytes.
	DRAMSize uint64
	// HardenedCores is the number of reserved hardened CPU cores available
	// to host a Security Kernel (the Ultra96's Cortex-R5); zero means the
	// Security Kernel needs a soft-CPU partial bitstream.
	HardenedCores int
}

// VU9P is the AWS F1 device: a Xilinx Virtex UltraScale+ VU9P with 64 GB of
// DDR4 (paper §2.3). The budget numbers are chosen so that the paper's
// Table 1 utilisation percentages reproduce: e.g. the Controller's 2348
// LUTs are reported as 0.26% of the fabric.
var VU9P = Model{
	Name: "xcvu9p-f1",
	Budget: Resources{
		BRAM: 1680,      // 2 BRAM = 0.12% (Table 1, Engine Set row)
		LUT:  900_000,   // 2348 LUT = 0.26% (Table 1, Controller row)
		REG:  1_790_000, // 2508 REG = 0.14% (Table 1, Engine Set row)
		URAM: 960,
	},
	OCMBits:       382 * 1000 * 1000, // "max available 382Mb" (paper §6.2.1)
	DRAMSize:      64 << 30,
	HardenedCores: 0, // F1 needs a soft Security Kernel Processor
}

// Ultra96 is the local development board used for the end-to-end boot
// prototype (paper §6.1): a Zynq UltraScale+ ZU3EG with a dedicated
// Cortex-R5 core for the Security Kernel.
var Ultra96 = Model{
	Name: "ultra96-zu3eg",
	Budget: Resources{
		BRAM: 216,
		LUT:  70_560,
		REG:  141_120,
		URAM: 0,
	},
	OCMBits:       7.6 * 1000 * 1000,
	DRAMSize:      2 << 30,
	HardenedCores: 2, // PMU-adjacent R5 pair
}
