package fpga

import (
	"errors"
	"fmt"
	"sync"

	"shef/internal/crypto/hmacx"
	"shef/internal/mem"
	"shef/internal/perf"
)

// PortName identifies an external access port that the Security Kernel
// must monitor during runtime (paper §3 step 9: "detect backdoor activity
// (e.g., JTAG and programming ports)").
type PortName string

// The externally reachable ports of an UltraScale+ device.
const (
	PortJTAG PortName = "jtag"
	PortICAP PortName = "icap" // internal configuration access port
	PortDAP  PortName = "dap"  // debug access port
)

// AllPorts lists every monitored port.
var AllPorts = []PortName{PortJTAG, PortICAP, PortDAP}

// TamperEvent records a detected intrusion.
type TamperEvent struct {
	Port   PortName
	Detail string
}

// Device is one physical FPGA: key storage, PUF, ports, fabric regions,
// and attached memory. All secret material lives behind the SPB type; the
// Device only stores the e-fuse payload, mirroring real silicon where the
// fabric cannot read the key fuses directly.
type Device struct {
	Model  Model
	Serial string

	mu sync.Mutex

	// efuse holds either the raw AES device key or the PUF-wrapped key.
	efuse      []byte
	efuseIsPUF bool
	puf        *PUF
	fused      bool

	ports     map[PortName]bool // true = open
	tamperLog []TamperEvent
	zeroized  bool

	// Fabric state: the static (Shell) region and the user partial region.
	staticLoaded  bool
	staticName    string
	partialLoaded bool
	partialName   string
	partialUse    Resources

	DRAM *mem.DRAM
	OCM  *mem.OCM
}

// New manufactures a blank device of the given model with the given
// performance parameters for its DRAM. dramSize overrides the model's
// memory size when nonzero (tests use small memories).
func New(model Model, serial string, params perf.Params, dramSize uint64) *Device {
	if dramSize == 0 {
		dramSize = model.DRAMSize
	}
	d := &Device{
		Model:  model,
		Serial: serial,
		puf:    NewPUF(serial),
		ports:  make(map[PortName]bool),
		DRAM:   mem.NewDRAM(dramSize, params),
		OCM:    mem.NewOCM(model.OCMBits),
	}
	for _, p := range AllPorts {
		d.ports[p] = false
	}
	return d
}

// PUF exposes the device's physically unclonable function.
func (d *Device) PUF() *PUF { return d.puf }

// BurnEFuse provisions the AES device key (optionally PUF-wrapped) into
// one-time-programmable storage. It can be called exactly once, modelling
// real e-fuses (paper §3 step 1).
func (d *Device) BurnEFuse(payload []byte, pufWrapped bool) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.fused {
		return errors.New("fpga: e-fuses already burned")
	}
	d.efuse = append([]byte(nil), payload...)
	d.efuseIsPUF = pufWrapped
	d.fused = true
	return nil
}

// readEFuse is only reachable from the SPB (same package); user logic has
// no access path to the fuses.
func (d *Device) readEFuse() ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.zeroized {
		return nil, false, errors.New("fpga: device zeroized after tamper response")
	}
	if !d.fused {
		return nil, false, errors.New("fpga: e-fuses not provisioned")
	}
	return append([]byte(nil), d.efuse...), d.efuseIsPUF, nil
}

// OpenPort simulates an adversary (or operator) enabling an external port.
func (d *Device) OpenPort(p PortName) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ports[p] = true
}

// ClosePort disables a port.
func (d *Device) ClosePort(p PortName) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ports[p] = false
}

// ScanPorts is the Security Kernel's monitoring primitive: it reports any
// open ports as tamper events, records them, and closes the ports.
func (d *Device) ScanPorts() []TamperEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	var events []TamperEvent
	for _, p := range AllPorts {
		if d.ports[p] {
			ev := TamperEvent{Port: p, Detail: "port found open during runtime scan"}
			events = append(events, ev)
			d.tamperLog = append(d.tamperLog, ev)
			d.ports[p] = false
		}
	}
	return events
}

// TamperLog returns all recorded tamper events.
func (d *Device) TamperLog() []TamperEvent {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]TamperEvent(nil), d.tamperLog...)
}

// Zeroize is the tamper response: it renders the e-fuse key unreadable and
// clears the fabric, as mission-critical deployments configure (paper §2.2).
func (d *Device) Zeroize() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.zeroized = true
	for i := range d.efuse {
		d.efuse[i] = 0
	}
	d.staticLoaded = false
	d.partialLoaded = false
}

// Zeroized reports whether the tamper response has fired.
func (d *Device) Zeroized() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.zeroized
}

// LoadStatic programs the static region with the CSP's Shell logic. Only
// one static image can be resident.
func (d *Device) LoadStatic(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.zeroized {
		return errors.New("fpga: device zeroized")
	}
	d.staticLoaded = true
	d.staticName = name
	return nil
}

// LoadPartial programs the user partial-reconfiguration region. The design
// must fit the device budget; programming without a resident Shell fails
// the way the F1 flow would.
func (d *Device) LoadPartial(name string, use Resources) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.zeroized {
		return errors.New("fpga: device zeroized")
	}
	if !d.staticLoaded {
		return errors.New("fpga: no Shell loaded in static region")
	}
	if !use.FitsIn(d.Model.Budget) {
		return fmt.Errorf("fpga: design %q (%+v) exceeds %s budget %+v",
			name, use, d.Model.Name, d.Model.Budget)
	}
	d.partialLoaded = true
	d.partialName = name
	d.partialUse = use
	return nil
}

// ClearPartial removes the user design (reconfiguration reset).
func (d *Device) ClearPartial() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.partialLoaded = false
	d.partialName = ""
	d.partialUse = Resources{}
}

// FabricState reports what is currently programmed.
func (d *Device) FabricState() (staticName, partialName string, partialUse Resources) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.staticName, d.partialName, d.partialUse
}

// PartialLoaded reports whether a user design is resident.
func (d *Device) PartialLoaded() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.partialLoaded
}

// PUF models a physically unclonable function: a per-device secret
// challenge/response map. Real PUFs derive responses from silicon process
// variation; the model derives them from a hidden per-serial secret that
// no API exposes directly (paper §2.2: the AES key "can be further
// encrypted via a physically-unclonable function").
type PUF struct {
	secret []byte
}

// NewPUF builds the device's PUF from its serial. The serial stands in for
// silicon variation; two devices never share responses.
func NewPUF(serial string) *PUF {
	sum := hmacx.Sum([]byte("shef/puf-silicon"), []byte(serial))
	return &PUF{secret: sum[:]}
}

// Response evaluates the PUF on a challenge, yielding 32 key bytes.
func (p *PUF) Response(challenge []byte) []byte {
	sum := hmacx.Sum(p.secret, challenge)
	return sum[:]
}
