package fpga

import (
	"bytes"
	"testing"

	"shef/internal/perf"
)

func newDev() *Device { return New(VU9P, "serial-001", perf.Default(), 1<<20) }

func TestEFuseSingleBurn(t *testing.T) {
	d := newDev()
	if err := d.BurnEFuse(make([]byte, 32), false); err != nil {
		t.Fatal(err)
	}
	if err := d.BurnEFuse(make([]byte, 32), false); err == nil {
		t.Fatal("second e-fuse burn accepted")
	}
}

func TestSPBDeviceKeyRaw(t *testing.T) {
	d := newDev()
	key := bytes.Repeat([]byte{0x11}, 32)
	d.BurnEFuse(key, false)
	got, err := NewSPB(d).DeviceAESKey()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("SPB recovered wrong key")
	}
}

func TestSPBDeviceKeyPUFWrapped(t *testing.T) {
	d := newDev()
	key := bytes.Repeat([]byte{0x22}, 32)
	wrapped := WrapKeyForEFuse(d.PUF(), key)
	if bytes.Contains(wrapped, key) {
		t.Fatal("wrapped payload contains the key in the clear")
	}
	d.BurnEFuse(wrapped, true)
	got, err := NewSPB(d).DeviceAESKey()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, key) {
		t.Fatal("PUF unwrap produced wrong key")
	}
}

func TestPUFWrappedKeyUnusableOnOtherDevice(t *testing.T) {
	d1 := New(VU9P, "device-A", perf.Default(), 1<<20)
	d2 := New(VU9P, "device-B", perf.Default(), 1<<20)
	key := bytes.Repeat([]byte{0x33}, 32)
	wrapped := WrapKeyForEFuse(d1.PUF(), key)
	d2.BurnEFuse(wrapped, true)
	if _, err := NewSPB(d2).DeviceAESKey(); err == nil {
		t.Fatal("PUF-wrapped key from device A unwrapped on device B")
	}
}

func TestSealOpenBlob(t *testing.T) {
	key := bytes.Repeat([]byte{0x44}, 32)
	fw := []byte("firmware image with embedded private device key")
	blob, err := SealBlob(key, fw)
	if err != nil {
		t.Fatal(err)
	}
	got, err := OpenBlob(key, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fw) {
		t.Fatal("blob round trip failed")
	}
	blob[3] ^= 1
	if _, err := OpenBlob(key, blob); err == nil {
		t.Fatal("tampered blob accepted")
	}
	if _, err := OpenBlob(key, blob[:4]); err == nil {
		t.Fatal("truncated blob accepted")
	}
}

func TestPortScan(t *testing.T) {
	d := newDev()
	if ev := d.ScanPorts(); len(ev) != 0 {
		t.Fatal("clean device reported tamper")
	}
	d.OpenPort(PortJTAG)
	d.OpenPort(PortDAP)
	ev := d.ScanPorts()
	if len(ev) != 2 {
		t.Fatalf("got %d events, want 2", len(ev))
	}
	// Ports are closed by the scan.
	if ev := d.ScanPorts(); len(ev) != 0 {
		t.Fatal("scan did not close ports")
	}
	if len(d.TamperLog()) != 2 {
		t.Fatal("tamper log incomplete")
	}
}

func TestZeroize(t *testing.T) {
	d := newDev()
	d.BurnEFuse(make([]byte, 32), false)
	d.LoadStatic("shell")
	d.LoadPartial("accel", Resources{LUT: 100})
	d.Zeroize()
	if !d.Zeroized() {
		t.Fatal("zeroized flag not set")
	}
	if _, err := NewSPB(d).DeviceAESKey(); err == nil {
		t.Fatal("key readable after zeroize")
	}
	if d.PartialLoaded() {
		t.Fatal("fabric still programmed after zeroize")
	}
	if err := d.LoadStatic("shell"); err == nil {
		t.Fatal("static load accepted after zeroize")
	}
}

func TestPartialRequiresShell(t *testing.T) {
	d := newDev()
	if err := d.LoadPartial("accel", Resources{}); err == nil {
		t.Fatal("partial load accepted with no Shell")
	}
	d.LoadStatic("aws-shell-v1")
	if err := d.LoadPartial("accel", Resources{LUT: 50_000, BRAM: 10}); err != nil {
		t.Fatal(err)
	}
	st, pn, use := d.FabricState()
	if st != "aws-shell-v1" || pn != "accel" || use.LUT != 50_000 {
		t.Fatalf("fabric state wrong: %s %s %+v", st, pn, use)
	}
	d.ClearPartial()
	if d.PartialLoaded() {
		t.Fatal("ClearPartial failed")
	}
}

func TestPartialBudgetEnforced(t *testing.T) {
	d := New(Ultra96, "u96", perf.Default(), 1<<20)
	d.LoadStatic("shell")
	if err := d.LoadPartial("huge", Resources{LUT: 10_000_000}); err == nil {
		t.Fatal("over-budget design accepted")
	}
}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{BRAM: 1, LUT: 2, REG: 3, URAM: 4}
	b := a.Add(a)
	if b != (Resources{BRAM: 2, LUT: 4, REG: 6, URAM: 8}) {
		t.Fatalf("Add = %+v", b)
	}
	if a.Scale(3) != (Resources{BRAM: 3, LUT: 6, REG: 9, URAM: 12}) {
		t.Fatalf("Scale = %+v", a.Scale(3))
	}
	if !a.FitsIn(b) || b.FitsIn(a) {
		t.Fatal("FitsIn wrong")
	}
}

func TestPUFDeterministicPerDevice(t *testing.T) {
	p1 := NewPUF("X")
	p2 := NewPUF("X")
	p3 := NewPUF("Y")
	c := []byte("challenge")
	if !bytes.Equal(p1.Response(c), p2.Response(c)) {
		t.Fatal("same device PUF not deterministic")
	}
	if bytes.Equal(p1.Response(c), p3.Response(c)) {
		t.Fatal("different devices share PUF responses")
	}
}

func TestEFuseUnprovisioned(t *testing.T) {
	d := newDev()
	if _, err := NewSPB(d).DeviceAESKey(); err == nil {
		t.Fatal("read of unprovisioned fuses succeeded")
	}
}
