package fpga

import (
	"errors"
	"fmt"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
)

// SPB is the Security Processor Block: the redundant embedded processor
// complex that executes BootROM and programmable firmware with exclusive
// access to the key fuses and cryptographic hardware (paper §2.2). All
// device-key operations in the boot chain flow through this type; nothing
// else in the repository can reach Device.readEFuse.
type SPB struct {
	dev *Device
}

// NewSPB attaches the security processor to its device.
func NewSPB(dev *Device) *SPB { return &SPB{dev: dev} }

// pufChallenge is the fixed challenge the SPB uses to regenerate the
// key-encryption key for PUF-wrapped fuses.
var pufChallenge = []byte("shef/efuse-kek")

// DeviceAESKey recovers the AES device key, unwrapping through the PUF if
// the Manufacturer burned a wrapped key. This is BootROM-resident logic.
func (s *SPB) DeviceAESKey() ([]byte, error) {
	payload, wrapped, err := s.dev.readEFuse()
	if err != nil {
		return nil, err
	}
	if !wrapped {
		return payload, nil
	}
	kek := s.dev.PUF().Response(pufChallenge)
	if len(payload) <= hmacx.TagSize {
		return nil, errors.New("fpga: PUF-wrapped e-fuse payload too short")
	}
	ct := payload[:len(payload)-hmacx.TagSize]
	var tag [hmacx.TagSize]byte
	copy(tag[:], payload[len(payload)-hmacx.TagSize:])
	if !hmacx.Verify(kek, ct, tag) {
		return nil, errors.New("fpga: PUF unwrap failed (fuses corrupted or wrong device)")
	}
	key := make([]byte, len(ct))
	cipher, err := aesx.NewCipher(kek)
	if err != nil {
		return nil, err
	}
	var iv [aesx.IVSize]byte
	aesx.CTR(cipher, iv, key, ct)
	return key, nil
}

// WrapKeyForEFuse is the Manufacturer-side companion: it produces the
// PUF-wrapped e-fuse payload for key. It must run with physical access to
// the device (in the secure facility), which the model expresses by
// requiring the device's PUF.
func WrapKeyForEFuse(puf *PUF, key []byte) []byte {
	kek := puf.Response(pufChallenge)
	ct := make([]byte, len(key))
	cipher, err := aesx.NewCipher(kek)
	if err != nil {
		panic(fmt.Sprintf("fpga: PUF response not a valid AES key: %v", err))
	}
	var iv [aesx.IVSize]byte
	aesx.CTR(cipher, iv, ct, key)
	tag := hmacx.Tag(kek, ct)
	return append(ct, tag[:]...)
}

// DecryptBlob decrypts and authenticates a firmware-style blob (ciphertext
// followed by a 16-byte HMAC tag) under the AES device key. BootROM uses
// this to load the SPB firmware (paper §4, Secure Boot).
func (s *SPB) DecryptBlob(blob []byte) ([]byte, error) {
	key, err := s.DeviceAESKey()
	if err != nil {
		return nil, err
	}
	return OpenBlob(key, blob)
}

// SealBlob is the offline companion to DecryptBlob: encrypt-then-MAC under
// key. The Manufacturer seals the SPB firmware with the AES device key.
func SealBlob(key, plaintext []byte) ([]byte, error) {
	cipher, err := aesx.NewCipher(key)
	if err != nil {
		return nil, err
	}
	ct := make([]byte, len(plaintext))
	var iv [aesx.IVSize]byte
	aesx.CTR(cipher, iv, ct, plaintext)
	tag := hmacx.Tag(key, ct)
	return append(ct, tag[:]...), nil
}

// OpenBlob reverses SealBlob.
func OpenBlob(key, blob []byte) ([]byte, error) {
	if len(blob) < hmacx.TagSize {
		return nil, errors.New("fpga: sealed blob too short")
	}
	ct := blob[:len(blob)-hmacx.TagSize]
	var tag [hmacx.TagSize]byte
	copy(tag[:], blob[len(blob)-hmacx.TagSize:])
	if !hmacx.Verify(key, ct, tag) {
		return nil, errors.New("fpga: blob authentication failed")
	}
	cipher, err := aesx.NewCipher(key)
	if err != nil {
		return nil, err
	}
	pt := make([]byte, len(ct))
	var iv [aesx.IVSize]byte
	aesx.CTR(cipher, iv, pt, ct)
	return pt, nil
}
