// Package keywrap implements the hybrid encryption ShEF uses for Load Keys:
// the Data Owner encrypts a Data Encryption Key against the IP Vendor's
// public Shield Encryption Key so only the Shield module embedded in the
// bitstream can recover it (paper §3, steps 10-11).
//
// Construction: ephemeral-static Diffie-Hellman to the recipient's public
// element, HKDF to split encryption and MAC keys, AES-256-CTR for
// confidentiality, HMAC-SHA256 (16-byte tag) for integrity in
// encrypt-then-MAC order.
package keywrap

import (
	"errors"
	"io"
	"math/big"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/kdf"
	"shef/internal/crypto/schnorr"
)

// Wrapped is a sealed payload addressed to one Shield key pair.
type Wrapped struct {
	Ephemeral  []byte // sender's ephemeral public element g^r
	Ciphertext []byte
	Tag        [hmacx.TagSize]byte
}

// Wrap seals payload to the recipient public key. rng may be nil for
// crypto/rand.
func Wrap(recipient *schnorr.PublicKey, payload []byte, rng io.Reader) (*Wrapped, error) {
	if recipient == nil {
		return nil, errors.New("keywrap: nil recipient")
	}
	eph, err := schnorr.GenerateKey(recipient.Group, rng)
	if err != nil {
		return nil, err
	}
	shared, err := eph.SharedSecret(recipient)
	if err != nil {
		return nil, err
	}
	encKey, macKey := splitKeys(shared, eph.Y, recipient.Y)
	ct := make([]byte, len(payload))
	cipher, err := aesx.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	var iv [aesx.IVSize]byte // fresh key per wrap, zero IV is safe
	aesx.CTR(cipher, iv, ct, payload)
	return &Wrapped{
		Ephemeral:  eph.PublicKey.Bytes(),
		Ciphertext: ct,
		Tag:        hmacx.Tag(macKey, ct),
	}, nil
}

// Unwrap opens a sealed payload with the recipient's private key. It fails
// if the tag does not verify.
func Unwrap(recipient *schnorr.PrivateKey, w *Wrapped) ([]byte, error) {
	if w == nil {
		return nil, errors.New("keywrap: nil payload")
	}
	ephPub, err := schnorr.PublicKeyFromBytes(recipient.Group, w.Ephemeral)
	if err != nil {
		return nil, err
	}
	shared, err := recipient.SharedSecret(ephPub)
	if err != nil {
		return nil, err
	}
	encKey, macKey := splitKeys(shared, ephPub.Y, recipient.Y)
	if !hmacx.Verify(macKey, w.Ciphertext, w.Tag) {
		return nil, errors.New("keywrap: authentication failed")
	}
	pt := make([]byte, len(w.Ciphertext))
	cipher, err := aesx.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	var iv [aesx.IVSize]byte
	aesx.CTR(cipher, iv, pt, w.Ciphertext)
	return pt, nil
}

func splitKeys(shared *big.Int, ephY, recipientY *big.Int) (encKey, macKey []byte) {
	info := append(ephY.Bytes(), recipientY.Bytes()...)
	okm := kdf.Derive([]byte("shef/keywrap"), shared.Bytes(), info, 64)
	return okm[:32], okm[32:]
}
