package keywrap

import (
	"bytes"
	"testing"
	"testing/quick"

	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
)

func TestWrapUnwrap(t *testing.T) {
	shieldKey, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	dek := []byte("0123456789abcdef0123456789abcdef") // a Data Encryption Key
	w, err := Wrap(&shieldKey.PublicKey, dek, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unwrap(shieldKey, w)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, dek) {
		t.Fatal("unwrapped payload differs")
	}
}

func TestUnwrapWrongKey(t *testing.T) {
	k1, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	k2, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	w, _ := Wrap(&k1.PublicKey, []byte("secret"), nil)
	if _, err := Unwrap(k2, w); err == nil {
		t.Fatal("unwrap succeeded with wrong private key")
	}
}

func TestUnwrapDetectsTamper(t *testing.T) {
	k, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	w, _ := Wrap(&k.PublicKey, []byte("secret data encryption key"), nil)

	ctTampered := *w
	ctTampered.Ciphertext = append([]byte(nil), w.Ciphertext...)
	ctTampered.Ciphertext[0] ^= 1
	if _, err := Unwrap(k, &ctTampered); err == nil {
		t.Fatal("ciphertext tamper not detected")
	}

	tagTampered := *w
	tagTampered.Tag[3] ^= 1
	if _, err := Unwrap(k, &tagTampered); err == nil {
		t.Fatal("tag tamper not detected")
	}

	ephTampered := *w
	ephTampered.Ephemeral = append([]byte(nil), w.Ephemeral...)
	ephTampered.Ephemeral[0] ^= 1
	if _, err := Unwrap(k, &ephTampered); err == nil {
		t.Fatal("ephemeral tamper not detected")
	}
}

func TestWrapFreshEphemeral(t *testing.T) {
	k, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	w1, _ := Wrap(&k.PublicKey, []byte("p"), nil)
	w2, _ := Wrap(&k.PublicKey, []byte("p"), nil)
	if bytes.Equal(w1.Ephemeral, w2.Ephemeral) {
		t.Fatal("ephemeral key reused across wraps")
	}
	if bytes.Equal(w1.Ciphertext, w2.Ciphertext) {
		t.Fatal("ciphertext identical across wraps (keystream reuse)")
	}
}

func TestRoundTripProperty(t *testing.T) {
	k, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	f := func(payload []byte) bool {
		w, err := Wrap(&k.PublicKey, payload, nil)
		if err != nil {
			return false
		}
		got, err := Unwrap(k, w)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNilInputs(t *testing.T) {
	k, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	if _, err := Wrap(nil, []byte("p"), nil); err == nil {
		t.Fatal("Wrap accepted nil recipient")
	}
	if _, err := Unwrap(k, nil); err == nil {
		t.Fatal("Unwrap accepted nil payload")
	}
}
