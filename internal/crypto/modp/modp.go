// Package modp provides the finite-field group used by ShEF's attestation
// cryptography: the 2048-bit MODP group from RFC 3526 (group 14), which is
// a safe-prime group, plus a smaller 512-bit group for fast tests.
//
// ShEF's Figure 3 protocol needs key pairs that support both Diffie-Hellman
// key exchange (SessionKey = DHKE(VerifKey, AttestKey)) and digital
// signatures (Sign_AttestKey). A discrete-log key pair over this group
// provides both: DH via g^xy and Schnorr signatures via package schnorr.
package modp

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"
)

// Group describes a multiplicative group of integers modulo a safe prime P
// with generator G. Exponents are drawn from [1, Q) where Q = (P-1)/2.
type Group struct {
	Name string
	P    *big.Int // safe prime modulus
	Q    *big.Int // subgroup order (P-1)/2
	G    *big.Int // generator
}

// rfc3526Group14P is the 2048-bit MODP prime from RFC 3526 §3.
const rfc3526Group14P = "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1" +
	"29024E088A67CC74020BBEA63B139B22514A08798E3404DD" +
	"EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245" +
	"E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED" +
	"EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3D" +
	"C2007CB8A163BF0598DA48361C55D39A69163FA8FD24CF5F" +
	"83655D23DCA3AD961C62F356208552BB9ED529077096966D" +
	"670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B" +
	"E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9" +
	"DE2BCBF6955817183995497CEA956AE515D2261898FA0510" +
	"15728E5A8AACAA68FFFFFFFFFFFFFFFF"

// test512P is a 512-bit safe prime for fast unit tests, found once by a
// forward safe-prime search and hard-coded so package init is cheap and
// deterministic. Verified by TestTestGroupIsSafePrime.
const test512P = "F6E54D8C1D824DE5C8F5D2BFDEBA91BEF4E3A2E97E9A64C5" +
	"2B3E44B02960AF73E0F66E4E0E3A2A2EAE8B84E0F1A51B6D" +
	"5CC82B43F47E1E3D2B29B8D6E2B95733"

var (
	// Group14 is RFC 3526 MODP group 14 (2048-bit), the production group.
	Group14 = mustGroup("modp2048", rfc3526Group14P)
	// TestGroup is a small group for unit tests. Not for production use.
	TestGroup = mustTestGroup()
)

func mustGroup(name, hexP string) *Group {
	p, ok := new(big.Int).SetString(hexP, 16)
	if !ok {
		panic("modp: bad prime constant")
	}
	q := new(big.Int).Rsh(new(big.Int).Sub(p, big.NewInt(1)), 1)
	return &Group{Name: name, P: p, Q: q, G: big.NewInt(4)}
}

func mustTestGroup() *Group {
	g := mustGroup("modp512-test", test512P)
	return g
}

// ByName resolves a group by its Name (used when reconstructing keys from
// serialised bitstream manifests).
func ByName(name string) (*Group, error) {
	switch name {
	case Group14.Name:
		return Group14, nil
	case TestGroup.Name, "":
		return TestGroup, nil
	}
	return nil, fmt.Errorf("modp: unknown group %q", name)
}

// RandScalar returns a uniformly random exponent in [1, Q).
func (g *Group) RandScalar(r io.Reader) (*big.Int, error) {
	if r == nil {
		r = rand.Reader
	}
	for {
		x, err := rand.Int(r, g.Q)
		if err != nil {
			return nil, fmt.Errorf("modp: sampling scalar: %w", err)
		}
		if x.Sign() > 0 {
			return x, nil
		}
	}
}

// ScalarFromBytes derives a deterministic exponent in [1, Q) from seed
// material. ShEF uses this to derive the Attestation Key from
// Sign_DeviceKey(H(SecKrnl)) so the key is cryptographically bound to the
// device and Security Kernel binary (paper §4, Secure Boot).
func (g *Group) ScalarFromBytes(seed []byte) *big.Int {
	x := new(big.Int).SetBytes(seed)
	x.Mod(x, new(big.Int).Sub(g.Q, big.NewInt(1)))
	return x.Add(x, big.NewInt(1)) // never zero
}

// Exp computes G^x mod P.
func (g *Group) Exp(x *big.Int) *big.Int {
	return new(big.Int).Exp(g.G, x, g.P)
}

// ExpBase computes base^x mod P.
func (g *Group) ExpBase(base, x *big.Int) *big.Int {
	return new(big.Int).Exp(base, x, g.P)
}

// ValidElement reports whether y is a usable public element: 1 < y < P-1.
func (g *Group) ValidElement(y *big.Int) bool {
	if y == nil || y.Cmp(big.NewInt(1)) <= 0 {
		return false
	}
	pm1 := new(big.Int).Sub(g.P, big.NewInt(1))
	return y.Cmp(pm1) < 0
}
