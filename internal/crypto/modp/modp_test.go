package modp

import (
	"math/big"
	"testing"
)

func TestGroup14Parameters(t *testing.T) {
	if Group14.P.BitLen() != 2048 {
		t.Errorf("Group14 P is %d bits, want 2048", Group14.P.BitLen())
	}
	// Q = (P-1)/2 exactly.
	q2 := new(big.Int).Lsh(Group14.Q, 1)
	q2.Add(q2, big.NewInt(1))
	if q2.Cmp(Group14.P) != 0 {
		t.Error("Q != (P-1)/2")
	}
	if Group14.G.Cmp(big.NewInt(4)) != 0 {
		t.Error("generator is not 4 (the order-Q quadratic residue 2^2)")
	}
}

func TestGroup14Primality(t *testing.T) {
	if testing.Short() {
		t.Skip("primality check on 2048-bit prime in -short mode")
	}
	if !Group14.P.ProbablyPrime(16) {
		t.Error("Group14 P not prime")
	}
	if !Group14.Q.ProbablyPrime(16) {
		t.Error("Group14 Q not prime (P not a safe prime)")
	}
}

func TestTestGroupIsSafePrime(t *testing.T) {
	if !TestGroup.P.ProbablyPrime(20) || !TestGroup.Q.ProbablyPrime(20) {
		t.Fatal("TestGroup is not a safe-prime group")
	}
	if TestGroup.P.BitLen() < 500 {
		t.Fatalf("TestGroup only %d bits", TestGroup.P.BitLen())
	}
}

func TestRandScalarRange(t *testing.T) {
	for i := 0; i < 50; i++ {
		x, err := TestGroup.RandScalar(nil)
		if err != nil {
			t.Fatal(err)
		}
		if x.Sign() <= 0 || x.Cmp(TestGroup.Q) >= 0 {
			t.Fatalf("scalar %v out of (0, Q)", x)
		}
	}
}

func TestScalarFromBytesDeterministicAndNonzero(t *testing.T) {
	a := TestGroup.ScalarFromBytes([]byte("seed"))
	b := TestGroup.ScalarFromBytes([]byte("seed"))
	if a.Cmp(b) != 0 {
		t.Fatal("not deterministic")
	}
	zero := TestGroup.ScalarFromBytes(nil)
	if zero.Sign() <= 0 {
		t.Fatal("scalar from empty seed is not positive")
	}
}

func TestExpAgreement(t *testing.T) {
	x, _ := TestGroup.RandScalar(nil)
	y, _ := TestGroup.RandScalar(nil)
	gx := TestGroup.Exp(x)
	gy := TestGroup.Exp(y)
	gxy := TestGroup.ExpBase(gx, y)
	gyx := TestGroup.ExpBase(gy, x)
	if gxy.Cmp(gyx) != 0 {
		t.Fatal("DH agreement failed")
	}
}

func TestValidElement(t *testing.T) {
	if TestGroup.ValidElement(nil) {
		t.Error("nil accepted")
	}
	if TestGroup.ValidElement(big.NewInt(0)) || TestGroup.ValidElement(big.NewInt(1)) {
		t.Error("trivial element accepted")
	}
	pm1 := new(big.Int).Sub(TestGroup.P, big.NewInt(1))
	if TestGroup.ValidElement(pm1) {
		t.Error("P-1 accepted")
	}
	if !TestGroup.ValidElement(big.NewInt(4)) {
		t.Error("4 rejected")
	}
}
