// Package kdf implements an HKDF-style extract-and-expand key derivation
// function over HMAC-SHA256 (RFC 5869 construction).
//
// ShEF derives symmetric session keys from DH shared secrets (Figure 3) and
// expands seed material into attestation-key scalars; both uses route
// through this package.
package kdf

import (
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/sha256x"
)

// Extract condenses input keying material into a pseudorandom key.
func Extract(salt, ikm []byte) [sha256x.Size]byte {
	return hmacx.Sum(salt, ikm)
}

// Expand stretches a pseudorandom key into n bytes bound to info.
func Expand(prk [sha256x.Size]byte, info []byte, n int) []byte {
	out := make([]byte, 0, n)
	var prev []byte
	for counter := byte(1); len(out) < n; counter++ {
		msg := make([]byte, 0, len(prev)+len(info)+1)
		msg = append(msg, prev...)
		msg = append(msg, info...)
		msg = append(msg, counter)
		t := hmacx.Sum(prk[:], msg)
		prev = t[:]
		out = append(out, t[:]...)
	}
	return out[:n]
}

// Derive is the common extract-then-expand path.
func Derive(salt, ikm, info []byte, n int) []byte {
	return Expand(Extract(salt, ikm), info, n)
}

// SessionKey derives the 32-byte SessionKey of Figure 3 from a DH shared
// secret and the transcript nonce.
func SessionKey(shared []byte, nonce []byte) []byte {
	return Derive([]byte("shef/session"), shared, nonce, 32)
}
