package kdf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a := Derive([]byte("salt"), []byte("ikm"), []byte("info"), 48)
	b := Derive([]byte("salt"), []byte("ikm"), []byte("info"), 48)
	if !bytes.Equal(a, b) {
		t.Fatal("KDF not deterministic")
	}
}

func TestDomainSeparation(t *testing.T) {
	base := Derive([]byte("salt"), []byte("ikm"), []byte("info"), 32)
	cases := [][]byte{
		Derive([]byte("salt2"), []byte("ikm"), []byte("info"), 32),
		Derive([]byte("salt"), []byte("ikm2"), []byte("info"), 32),
		Derive([]byte("salt"), []byte("ikm"), []byte("info2"), 32),
	}
	for i, c := range cases {
		if bytes.Equal(base, c) {
			t.Errorf("case %d: outputs collide despite different inputs", i)
		}
	}
}

func TestLengths(t *testing.T) {
	for _, n := range []int{1, 16, 31, 32, 33, 64, 100, 255} {
		out := Derive([]byte("s"), []byte("k"), []byte("i"), n)
		if len(out) != n {
			t.Errorf("Derive(..., %d) returned %d bytes", n, len(out))
		}
	}
}

// Property: a longer output extends a shorter one (prefix consistency, a
// standard HKDF property applications rely on).
func TestPrefixConsistency(t *testing.T) {
	f := func(ikm, info []byte) bool {
		long := Derive([]byte("s"), ikm, info, 64)
		short := Derive([]byte("s"), ikm, info, 20)
		return bytes.Equal(long[:20], short)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSessionKey(t *testing.T) {
	k1 := SessionKey([]byte("shared"), []byte("nonce1"))
	k2 := SessionKey([]byte("shared"), []byte("nonce2"))
	if len(k1) != 32 {
		t.Fatalf("session key length %d", len(k1))
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("different nonces produced same session key")
	}
}
