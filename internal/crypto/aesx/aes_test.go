package aesx

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"encoding/hex"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// FIPS-197 Appendix C known-answer tests.
func TestFIPS197Vectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{
			"000102030405060708090a0b0c0d0e0f",
			"00112233445566778899aabbccddeeff",
			"69c4e0d86a7b0430d8cdb78070b4c55a",
		},
		{
			"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f",
			"00112233445566778899aabbccddeeff",
			"8ea2b7ca516745bfeafc49904b496089",
		},
	}
	for _, c := range cases {
		ci, err := NewCipher(mustHex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		ci.EncryptBlock(got, mustHex(t, c.pt))
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("key %s: got %x want %s", c.key, got, c.ct)
		}
	}
}

func TestInvalidKeyLength(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24, 33} {
		if _, err := NewCipher(make([]byte, n)); err == nil {
			t.Errorf("NewCipher accepted %d-byte key", n)
		}
	}
}

// TestBlockAgainstStdlib cross-checks the block transform against crypto/aes
// over random keys and blocks.
func TestBlockAgainstStdlib(t *testing.T) {
	f := func(key128 [16]byte, key256 [32]byte, block [16]byte) bool {
		for _, key := range [][]byte{key128[:], key256[:]} {
			ours, err := NewCipher(key)
			if err != nil {
				return false
			}
			ref, err := aes.NewCipher(key)
			if err != nil {
				return false
			}
			got := make([]byte, 16)
			want := make([]byte, 16)
			ours.EncryptBlock(got, block[:])
			ref.Encrypt(want, block[:])
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCTRRoundTrip(t *testing.T) {
	f := func(key [16]byte, iv [IVSize]byte, msg []byte) bool {
		c, _ := NewCipher(key[:])
		ct := make([]byte, len(msg))
		CTR(c, iv, ct, msg)
		pt := make([]byte, len(ct))
		CTR(c, iv, pt, ct)
		return bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCTRAgainstStdlib checks the CTR keystream layout (IV || counter)
// matches crypto/cipher's CTR with the same initial counter block.
func TestCTRAgainstStdlib(t *testing.T) {
	f := func(key [32]byte, iv [IVSize]byte, msg []byte) bool {
		c, _ := NewCipher(key[:])
		got := make([]byte, len(msg))
		CTR(c, iv, got, msg)

		ref, _ := aes.NewCipher(key[:])
		var ctrBlock [16]byte
		copy(ctrBlock[:], iv[:])
		want := make([]byte, len(msg))
		cipher.NewCTR(ref, ctrBlock[:]).XORKeyStream(want, msg)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCTRInPlace(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	msg := []byte("in-place CTR must work because the Shield reuses buffers")
	orig := append([]byte(nil), msg...)
	var iv [IVSize]byte
	CTR(c, iv, msg, msg)
	if bytes.Equal(msg, orig) {
		t.Fatal("CTR did not change data")
	}
	CTR(c, iv, msg, msg)
	if !bytes.Equal(msg, orig) {
		t.Fatal("in-place round trip failed")
	}
}

func TestChunkIVDistinct(t *testing.T) {
	seen := map[[IVSize]byte]bool{}
	for region := uint32(0); region < 4; region++ {
		for chunk := uint32(0); chunk < 8; chunk++ {
			for ver := uint32(0); ver < 4; ver++ {
				iv := ChunkIV(region, chunk, ver)
				if seen[iv] {
					t.Fatalf("duplicate IV for region=%d chunk=%d ver=%d", region, chunk, ver)
				}
				seen[iv] = true
			}
		}
	}
}

func TestEngineCycleModel(t *testing.T) {
	key := make([]byte, 16)
	e4, err := NewEngine(key, SBox4x)
	if err != nil {
		t.Fatal(err)
	}
	e16, _ := NewEngine(key, SBox16x)
	// AES-128: 10 rounds. 4x: (16/4)*10 = 40 cycles; 16x: 1*10 = 10.
	if got := e4.CyclesPerBlock(); got != 40 {
		t.Errorf("AES-128/4x cycles per block = %d, want 40", got)
	}
	if got := e16.CyclesPerBlock(); got != 10 {
		t.Errorf("AES-128/16x cycles per block = %d, want 10", got)
	}
	key256 := make([]byte, 32)
	e256, _ := NewEngine(key256, SBox16x)
	if got := e256.CyclesPerBlock(); got != 14 {
		t.Errorf("AES-256/16x cycles per block = %d, want 14", got)
	}
	// More parallelism must never be slower.
	if e16.BytesPerCycle() <= e4.BytesPerCycle() {
		t.Error("16x engine not faster than 4x engine")
	}
	if got := e4.Cycles(17); got != 2*40 {
		t.Errorf("Cycles(17) = %d, want 80 (2 blocks)", got)
	}
}

func TestNewEngineRejectsBadParallelism(t *testing.T) {
	if _, err := NewEngine(make([]byte, 16), SBoxParallelism(3)); err == nil {
		t.Fatal("accepted 3x S-box parallelism")
	}
	if _, err := NewEngine(make([]byte, 11), SBox4x); err == nil {
		t.Fatal("accepted bad key through NewEngine")
	}
}

func BenchmarkEncryptBlock128(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	var blk [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.EncryptBlock(blk[:], blk[:])
	}
}

func BenchmarkCTR4K(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	buf := make([]byte, 4096)
	var iv [IVSize]byte
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CTR(c, iv, buf, buf)
	}
}

// TestTTableMatchesReference cross-checks the T-table fast path against the
// schoolbook round functions.
func TestTTableMatchesReference(t *testing.T) {
	f := func(key [32]byte, block [16]byte) bool {
		c, _ := NewCipher(key[:])
		fast := make([]byte, 16)
		ref := make([]byte, 16)
		c.EncryptBlock(fast, block[:])
		c.encryptBlockReference(ref, block[:])
		return bytes.Equal(fast, ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCTRStreamMatchesCTR checks the reusable-state stream path against
// the one-shot CTR across consecutive chunk IVs, as the Shield's window
// pipeline drives it.
func TestCTRStreamMatchesCTR(t *testing.T) {
	key := bytes.Repeat([]byte{0x3C}, 16)
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	var st CTRStream
	src := make([]byte, 1000)
	for i := range src {
		src[i] = byte(i * 7)
	}
	for chunk := uint32(0); chunk < 8; chunk++ {
		iv := ChunkIV(3, chunk, chunk%2)
		want := make([]byte, len(src))
		got := make([]byte, len(src))
		CTR(c, iv, want, src)
		st.XORKeyStream(c, iv, got, src)
		if !bytes.Equal(got, want) {
			t.Fatalf("chunk %d: stream state diverged from one-shot CTR", chunk)
		}
	}
}

// TestDecryptBlockRoundTrip proves the precomputed decryption schedule
// inverts EncryptBlock for both key sizes, and matches crypto/aes.
func TestDecryptBlockRoundTrip(t *testing.T) {
	f := func(key128 [16]byte, key256 [32]byte, block [16]byte) bool {
		for _, key := range [][]byte{key128[:], key256[:]} {
			c, err := NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			std, err := aes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			ct := make([]byte, 16)
			c.EncryptBlock(ct, block[:])
			back := make([]byte, 16)
			c.DecryptBlock(back, ct)
			if !bytes.Equal(back, block[:]) {
				return false
			}
			stdBack := make([]byte, 16)
			std.Decrypt(stdBack, ct)
			if !bytes.Equal(stdBack, block[:]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Fatal(err)
	}
}

// TestDecryptBlockInPlace checks dst/src aliasing.
func TestDecryptBlockInPlace(t *testing.T) {
	key := mustHex(t, "000102030405060708090a0b0c0d0e0f")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	buf := mustHex(t, "00112233445566778899aabbccddeeff")
	want := append([]byte(nil), buf...)
	c.EncryptBlock(buf, buf)
	c.DecryptBlock(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatalf("in-place decrypt: got %x want %x", buf, want)
	}
}

// TestScheduleCacheReuse pins the key-schedule cache contract: the same
// key yields the same *Cipher (the expansion ran once), and repeated
// NewCipher calls on a cached key allocate nothing.
func TestScheduleCacheReuse(t *testing.T) {
	key := mustHex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	a, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("schedule cache missed: distinct ciphers for the same key")
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := NewCipher(key); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("cached NewCipher: %v allocs/op, want 0", n)
	}
}

// TestScheduleCacheBounded fills the cache past its cap and checks it
// still answers correctly (the wholesale clear must not corrupt lookups).
func TestScheduleCacheBounded(t *testing.T) {
	key := make([]byte, 16)
	pt := mustHex(t, "00112233445566778899aabbccddeeff")
	want := make([]byte, 16)
	first, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	first.EncryptBlock(want, pt)
	for i := 0; i < schedCacheMax+10; i++ {
		k := make([]byte, 16)
		k[0], k[1] = byte(i), byte(i>>8)
		k[15] = 0xa5
		if _, err := NewCipher(k); err != nil {
			t.Fatal(err)
		}
	}
	again, err := NewCipher(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	again.EncryptBlock(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("post-eviction cipher diverged: got %x want %x", got, want)
	}
}
