package aesx

import "encoding/binary"

// IVSize is the Shield's initialisation-vector length: each authenticated
// encryption chunk carries a 12-byte IV, and the low 4 bytes of the counter
// block index the 16-byte blocks within the chunk (paper §5.2.2).
const IVSize = 12

// CTR encrypts or decrypts src into dst using AES-CTR with the given
// 12-byte IV. The counter block is IV || big-endian 32-bit block counter
// starting at 0. dst and src may alias. The operation is its own inverse.
// Any Block implementation works: the reference *Cipher or a
// hardware-backed block from internal/crypto/engine.
func CTR(c Block, iv [IVSize]byte, dst, src []byte) {
	var st CTRStream
	st.XORKeyStream(c, iv, dst, src)
}

// CTRStream holds the counter-block and keystream scratch of a CTR pass
// as addressable state, so the Shield's seal scratch pool can check one
// out per in-flight chunk and drive a window's consecutive chunks
// through it. The counter block is rebuilt from the IV on every call
// (each chunk has its own IV); what persists across calls is only the
// scratch storage.
type CTRStream struct {
	ctrBlock [BlockSize]byte
	ks       [BlockSize]byte
}

// XORKeyStream encrypts or decrypts src into dst under iv, using the
// stream's scratch. Semantics match CTR; dst and src may alias.
func (st *CTRStream) XORKeyStream(c Block, iv [IVSize]byte, dst, src []byte) {
	if len(dst) < len(src) {
		panic("aesx: CTR destination shorter than source")
	}
	copy(st.ctrBlock[:], iv[:])
	off, ctr := 0, uint32(0)
	// Full blocks: XOR eight bytes at a time through the scratch words.
	for ; off+BlockSize <= len(src); off, ctr = off+BlockSize, ctr+1 {
		binary.BigEndian.PutUint32(st.ctrBlock[IVSize:], ctr)
		c.EncryptBlock(st.ks[:], st.ctrBlock[:])
		k0 := binary.LittleEndian.Uint64(st.ks[0:8])
		k1 := binary.LittleEndian.Uint64(st.ks[8:16])
		s0 := binary.LittleEndian.Uint64(src[off : off+8])
		s1 := binary.LittleEndian.Uint64(src[off+8 : off+16])
		binary.LittleEndian.PutUint64(dst[off:off+8], s0^k0)
		binary.LittleEndian.PutUint64(dst[off+8:off+16], s1^k1)
	}
	if off < len(src) {
		binary.BigEndian.PutUint32(st.ctrBlock[IVSize:], ctr)
		c.EncryptBlock(st.ks[:], st.ctrBlock[:])
		for i := 0; off+i < len(src); i++ {
			dst[off+i] = src[off+i] ^ st.ks[i]
		}
	}
}

// ChunkIV derives the per-chunk IV for a Shield memory region. Successive
// chunks increment the IV by one (paper §5.2.2: "incremented by 1 for each
// successive chunk"), and the write version is folded in so that no two
// ciphertexts of the same chunk ever reuse an IV even across rewrites.
//
// Layout: 4-byte region ID || 4-byte chunk index || 4-byte version.
func ChunkIV(regionID uint32, chunkIndex uint32, version uint32) [IVSize]byte {
	var iv [IVSize]byte
	binary.BigEndian.PutUint32(iv[0:], regionID)
	binary.BigEndian.PutUint32(iv[4:], chunkIndex)
	binary.BigEndian.PutUint32(iv[8:], version)
	return iv
}
