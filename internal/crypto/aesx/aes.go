// Package aesx implements the AES block cipher (FIPS 197) for 128- and
// 256-bit keys, the CTR mode the ShEF Shield uses for memory encryption,
// and a cycle-cost model mirroring the Shield's configurable AES engines.
//
// The paper's AES engine (§5.2.2) contains an internal 256-byte S-box
// lookup table that can be duplicated up to 16 times, trading LUTs for
// latency; the key size (128 or 256 bits) is selected at bitstream
// compilation. Engine describes one such engine instance and exposes both
// the functional transform and its simulated cost.
package aesx

import (
	"encoding/binary"
	"fmt"
	"sync"
)

// Block is the forward-direction 16-byte block cipher interface the CTR
// and PMAC layers run over. *Cipher implements it, and so do the
// hardware-backed engines in internal/crypto/engine, which is what lets
// the engine-selection layer swap implementations under an unchanged data
// path.
type Block interface {
	EncryptBlock(dst, src []byte)
}

// KeySize selects the AES key length.
type KeySize int

// Supported key sizes.
const (
	AES128 KeySize = 16
	AES256 KeySize = 32
)

// Rounds returns the number of AES rounds for the key size.
func (k KeySize) Rounds() int {
	if k == AES256 {
		return 14
	}
	return 10
}

func (k KeySize) String() string {
	if k == AES256 {
		return "AES-256"
	}
	return "AES-128"
}

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// sbox is the AES forward S-box.
var sbox = [256]byte{
	0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
	0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
	0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
	0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
	0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
	0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
	0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
	0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
	0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
	0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
	0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
	0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
	0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
	0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
	0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
	0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
}

// rcon holds the key-schedule round constants.
var rcon = [11]byte{0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36}

// Cipher is an expanded AES key: the encryption key schedule plus the
// precomputed decryption (equivalent inverse cipher) schedule. A Cipher is
// immutable after construction, so one instance is safely shared by any
// number of goroutines — which is what lets the schedule cache below hand
// the same expansion to every caller of a key.
type Cipher struct {
	size   KeySize
	rounds int
	rk     []uint32 // encryption round keys, 4 words per round plus initial
	dk     []uint32 // decryption round keys (InvMixColumns-adjusted, reversed)
}

// schedCache caches expanded key schedules per key so that repeated
// NewCipher calls for the same key — host-side SealRegionData/
// OpenRegionData pairs, sealer rebuilds on re-provisioning, PMAC subkey
// setup — reuse the expansion instead of re-running it. The cache is
// bounded: when it reaches schedCacheMax entries it is cleared wholesale
// (key churn across many sessions must not grow the process without
// bound).
var schedCache struct {
	sync.RWMutex
	m map[string]*Cipher
}

const schedCacheMax = 512

// NewCipher expands key (16 or 32 bytes) into a Cipher, consulting the
// per-key schedule cache first. Both the encryption and decryption
// schedules are computed once per key, never per call.
func NewCipher(key []byte) (*Cipher, error) {
	switch len(key) {
	case int(AES128), int(AES256):
	default:
		return nil, fmt.Errorf("aesx: invalid key length %d (want 16 or 32)", len(key))
	}
	schedCache.RLock()
	c := schedCache.m[string(key)]
	schedCache.RUnlock()
	if c != nil {
		return c, nil
	}
	c = expandKey(key)
	schedCache.Lock()
	if schedCache.m == nil || len(schedCache.m) >= schedCacheMax {
		schedCache.m = make(map[string]*Cipher)
	}
	schedCache.m[string(key)] = c
	schedCache.Unlock()
	return c, nil
}

// expandKey runs the FIPS-197 key expansion and derives the equivalent
// inverse cipher schedule from it.
func expandKey(key []byte) *Cipher {
	size := KeySize(len(key))
	c := &Cipher{size: size, rounds: size.Rounds()}
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	c.rk = make([]uint32, n)
	for i := 0; i < nk; i++ {
		c.rk[i] = binary.BigEndian.Uint32(key[i*4:])
	}
	for i := nk; i < n; i++ {
		t := c.rk[i-1]
		switch {
		case i%nk == 0:
			t = subWord(rotWord(t)) ^ uint32(rcon[i/nk])<<24
		case nk > 6 && i%nk == 4:
			t = subWord(t)
		}
		c.rk[i] = c.rk[i-nk] ^ t
	}
	// Decryption schedule (equivalent inverse cipher): the encryption round
	// keys in reverse round order, with InvMixColumns applied to every key
	// except the first and last. td0[sbox[b]] is exactly InvMixColumns of
	// the word with byte b, because td composes InvSubBytes∘InvMixColumns
	// and sbox cancels the InvSubBytes.
	c.dk = make([]uint32, n)
	for i := 0; i < n; i += 4 {
		copy(c.dk[i:i+4], c.rk[n-4-i:n-i])
	}
	for i := 4; i < n-4; i++ {
		w := c.dk[i]
		c.dk[i] = td0[sbox[w>>24]] ^ td1[sbox[w>>16&0xff]] ^ td2[sbox[w>>8&0xff]] ^ td3[sbox[w&0xff]]
	}
	return c
}

// KeySize reports the cipher's key size.
func (c *Cipher) KeySize() KeySize { return c.size }

// te0..te3 are the standard AES encryption T-tables: each entry combines
// SubBytes and MixColumns for one input byte, so a round reduces to 16
// table lookups and XORs. td0..td3 are their decryption duals (InvSubBytes
// combined with InvMixColumns), and sboxInv the inverse S-box for the
// final decryption round. All built once at init from the S-box.
var te0, te1, te2, te3 [256]uint32
var td0, td1, td2, td3 [256]uint32
var sboxInv [256]byte

// gmul multiplies two bytes in GF(2^8) with the AES polynomial.
func gmul(a, b byte) byte {
	var p byte
	for b != 0 {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func init() {
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
		sboxInv[s] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sboxInv[i]
		w := uint32(gmul(s, 0x0e))<<24 | uint32(gmul(s, 0x09))<<16 |
			uint32(gmul(s, 0x0d))<<8 | uint32(gmul(s, 0x0b))
		td0[i] = w
		td1[i] = w>>8 | w<<24
		td2[i] = w>>16 | w<<16
		td3[i] = w>>24 | w<<8
	}
}

// EncryptBlock encrypts one 16-byte block src into dst (may alias).
func (c *Cipher) EncryptBlock(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aesx: short block")
	}
	rk := c.rk
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ rk[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ rk[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ rk[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ rk[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ rk[k]
		t1 := te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ rk[k+1]
		t2 := te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ rk[k+2]
		t3 := te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ rk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: SubBytes + ShiftRows only.
	t0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 | uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	t1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 | uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	t2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 | uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	t3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 | uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	binary.BigEndian.PutUint32(dst[0:4], t0^rk[k])
	binary.BigEndian.PutUint32(dst[4:8], t1^rk[k+1])
	binary.BigEndian.PutUint32(dst[8:12], t2^rk[k+2])
	binary.BigEndian.PutUint32(dst[12:16], t3^rk[k+3])
}

// DecryptBlock decrypts one 16-byte block src into dst (may alias), using
// the decryption key schedule precomputed at expansion time. The Shield's
// CTR data path never needs it (CTR decrypts by re-encrypting the counter
// stream), but ECB-style consumers of the cached schedules do.
func (c *Cipher) DecryptBlock(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aesx: short block")
	}
	dk := c.dk
	s0 := binary.BigEndian.Uint32(src[0:4]) ^ dk[0]
	s1 := binary.BigEndian.Uint32(src[4:8]) ^ dk[1]
	s2 := binary.BigEndian.Uint32(src[8:12]) ^ dk[2]
	s3 := binary.BigEndian.Uint32(src[12:16]) ^ dk[3]
	k := 4
	for r := 1; r < c.rounds; r++ {
		t0 := td0[s0>>24] ^ td1[s3>>16&0xff] ^ td2[s2>>8&0xff] ^ td3[s1&0xff] ^ dk[k]
		t1 := td0[s1>>24] ^ td1[s0>>16&0xff] ^ td2[s3>>8&0xff] ^ td3[s2&0xff] ^ dk[k+1]
		t2 := td0[s2>>24] ^ td1[s1>>16&0xff] ^ td2[s0>>8&0xff] ^ td3[s3&0xff] ^ dk[k+2]
		t3 := td0[s3>>24] ^ td1[s2>>16&0xff] ^ td2[s1>>8&0xff] ^ td3[s0&0xff] ^ dk[k+3]
		s0, s1, s2, s3 = t0, t1, t2, t3
		k += 4
	}
	// Final round: InvSubBytes + InvShiftRows only.
	t0 := uint32(sboxInv[s0>>24])<<24 | uint32(sboxInv[s3>>16&0xff])<<16 | uint32(sboxInv[s2>>8&0xff])<<8 | uint32(sboxInv[s1&0xff])
	t1 := uint32(sboxInv[s1>>24])<<24 | uint32(sboxInv[s0>>16&0xff])<<16 | uint32(sboxInv[s3>>8&0xff])<<8 | uint32(sboxInv[s2&0xff])
	t2 := uint32(sboxInv[s2>>24])<<24 | uint32(sboxInv[s1>>16&0xff])<<16 | uint32(sboxInv[s0>>8&0xff])<<8 | uint32(sboxInv[s3&0xff])
	t3 := uint32(sboxInv[s3>>24])<<24 | uint32(sboxInv[s2>>16&0xff])<<16 | uint32(sboxInv[s1>>8&0xff])<<8 | uint32(sboxInv[s0&0xff])
	binary.BigEndian.PutUint32(dst[0:4], t0^dk[k])
	binary.BigEndian.PutUint32(dst[4:8], t1^dk[k+1])
	binary.BigEndian.PutUint32(dst[8:12], t2^dk[k+2])
	binary.BigEndian.PutUint32(dst[12:16], t3^dk[k+3])
}

// encryptBlockReference is the straightforward FIPS-197 round-function
// implementation. It is kept as the specification the T-table fast path is
// tested against (TestTTableMatchesReference).
func (c *Cipher) encryptBlockReference(dst, src []byte) {
	var s [16]byte
	copy(s[:], src[:16])
	addRoundKey(&s, c.rk[0:4])
	for r := 1; r < c.rounds; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, c.rk[4*r:4*r+4])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, c.rk[4*c.rounds:4*c.rounds+4])
	copy(dst[:16], s[:])
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func addRoundKey(s *[16]byte, rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c+0] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func subBytes(s *[16]byte) {
	for i := range s {
		s[i] = sbox[s[i]]
	}
}

func shiftRows(s *[16]byte) {
	// State is column-major: s[4c+r] is row r, column c.
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3
		s[4*c+1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3
		s[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3)
		s[4*c+3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3)
	}
}
