package aesx

import "fmt"

// SBoxParallelism is the number of duplicated S-box lookup tables inside a
// Shield AES engine. The paper's engine duplicates the 256-byte table up to
// 16 times, reducing latency through parallel lookups at the cost of LUTs
// (§5.2.2); the evaluation uses the 4x and 16x points.
type SBoxParallelism int

// The S-box duplication factors evaluated in the paper.
const (
	SBox1x  SBoxParallelism = 1
	SBox2x  SBoxParallelism = 2
	SBox4x  SBoxParallelism = 4
	SBox8x  SBoxParallelism = 8
	SBox16x SBoxParallelism = 16
)

// Valid reports whether p is a supported duplication factor.
func (p SBoxParallelism) Valid() bool {
	switch p {
	case SBox1x, SBox2x, SBox4x, SBox8x, SBox16x:
		return true
	}
	return false
}

func (p SBoxParallelism) String() string { return fmt.Sprintf("%dx", int(p)) }

// Engine models one Shield AES engine instance: a functional AES cipher
// plus the cycle cost implied by its S-box parallelism. One engine
// processes one 16-byte block at a time; engine sets instantiate several
// engines to scale throughput (paper §6.2).
type Engine struct {
	cipher *Cipher
	sbox   SBoxParallelism
}

// NewEngine builds an engine for key with the given S-box parallelism.
func NewEngine(key []byte, sbox SBoxParallelism) (*Engine, error) {
	if !sbox.Valid() {
		return nil, fmt.Errorf("aesx: unsupported S-box parallelism %d", sbox)
	}
	c, err := NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &Engine{cipher: c, sbox: sbox}, nil
}

// Cipher exposes the engine's expanded key for functional use.
func (e *Engine) Cipher() *Cipher { return e.cipher }

// SBox reports the engine's S-box duplication factor.
func (e *Engine) SBox() SBoxParallelism { return e.sbox }

// KeySize reports the engine's key size.
func (e *Engine) KeySize() KeySize { return e.cipher.size }

// CyclesPerBlock is the simulated cost of one 16-byte block through the
// engine: each round performs 16 S-box substitutions, of which `sbox` can
// proceed in parallel; the linear layers overlap the lookups. AES-128/16x
// therefore costs 10 cycles per block (1.6 B/cycle), AES-128/4x 40 cycles
// (0.4 B/cycle). These rates are calibrated jointly with perf.Params so
// the paper's Table 2 and Figures 5-6 shapes reproduce (DESIGN.md §4).
func (e *Engine) CyclesPerBlock() uint64 {
	perRound := uint64(16 / int(e.sbox))
	return uint64(e.cipher.rounds) * perRound
}

// Cycles returns the engine-cycle cost of processing n bytes of CTR
// keystream (one block per 16 bytes, rounded up).
func (e *Engine) Cycles(n int) uint64 {
	blocks := uint64((n + BlockSize - 1) / BlockSize)
	return blocks * e.CyclesPerBlock()
}

// BytesPerCycle is the engine's steady-state throughput.
func (e *Engine) BytesPerCycle() float64 {
	return float64(BlockSize) / float64(e.CyclesPerBlock())
}
