// Package rsax implements RSA key generation, signing, and verification
// from scratch over math/big.
//
// The FPGA Manufacturer provisions an asymmetric private device key into
// the SPB firmware (paper §3, step 2); Xilinx devices use RSA for bitstream
// authentication, so the device key and the IP Vendor's certificate key are
// RSA here. Signatures are SHA-256 with a PKCS#1 v1.5-style DigestInfo
// prefix and deterministic 0x01 FF.. padding.
package rsax

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"math/big"

	"shef/internal/crypto/sha256x"
)

// PublicKey is an RSA public key (N, E).
type PublicKey struct {
	N *big.Int
	E int
}

// PrivateKey is an RSA private key with CRT-free decryption exponent.
type PrivateKey struct {
	PublicKey
	D *big.Int
	P *big.Int
	Q *big.Int
}

// defaultE is the conventional public exponent.
const defaultE = 65537

// GenerateKey creates an RSA key with the given modulus size in bits.
// Randomness comes from r (crypto/rand if nil). Bits must be >= 512.
func GenerateKey(r io.Reader, bits int) (*PrivateKey, error) {
	if bits < 512 {
		return nil, fmt.Errorf("rsax: modulus too small (%d bits)", bits)
	}
	if r == nil {
		r = rand.Reader
	}
	e := big.NewInt(defaultE)
	one := big.NewInt(1)
	for {
		p, err := genPrime(r, bits/2)
		if err != nil {
			return nil, err
		}
		q, err := genPrime(r, bits-bits/2)
		if err != nil {
			return nil, err
		}
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		if n.BitLen() != bits {
			continue
		}
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e shares a factor with phi; retry
		}
		return &PrivateKey{
			PublicKey: PublicKey{N: n, E: defaultE},
			D:         d, P: p, Q: q,
		}, nil
	}
}

func genPrime(r io.Reader, bits int) (*big.Int, error) {
	bytes := (bits + 7) / 8
	buf := make([]byte, bytes)
	for {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("rsax: reading randomness: %w", err)
		}
		// Force top two bits (so p*q has full length) and the low bit (odd).
		buf[0] |= 0xC0
		buf[bytes-1] |= 1
		p := new(big.Int).SetBytes(buf)
		p.Rsh(p, uint(bytes*8-bits))
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, bits-2, 1)
		p.SetBit(p, 0, 1)
		if p.ProbablyPrime(20) {
			return p, nil
		}
	}
}

// digestInfoPrefix is the DER prefix for a SHA-256 DigestInfo (RFC 8017).
var digestInfoPrefix = []byte{
	0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60, 0x86, 0x48, 0x01,
	0x65, 0x03, 0x04, 0x02, 0x01, 0x05, 0x00, 0x04, 0x20,
}

// pad builds the EMSA-PKCS1-v1_5 encoding of msg's SHA-256 digest for a
// k-byte modulus.
func pad(msg []byte, k int) ([]byte, error) {
	digest := sha256x.Digest(msg)
	tLen := len(digestInfoPrefix) + len(digest)
	if k < tLen+11 {
		return nil, errors.New("rsax: modulus too small for SHA-256 signature")
	}
	em := make([]byte, k)
	em[0] = 0x00
	em[1] = 0x01
	for i := 2; i < k-tLen-1; i++ {
		em[i] = 0xFF
	}
	em[k-tLen-1] = 0x00
	copy(em[k-tLen:], digestInfoPrefix)
	copy(em[k-len(digest):], digest[:])
	return em, nil
}

// Sign produces a signature over msg.
func (k *PrivateKey) Sign(msg []byte) ([]byte, error) {
	kBytes := (k.N.BitLen() + 7) / 8
	em, err := pad(msg, kBytes)
	if err != nil {
		return nil, err
	}
	m := new(big.Int).SetBytes(em)
	sig := new(big.Int).Exp(m, k.D, k.N)
	out := make([]byte, kBytes)
	sig.FillBytes(out)
	return out, nil
}

// Verify reports whether sig is a valid signature over msg for pub.
func Verify(pub *PublicKey, msg, sig []byte) bool {
	if pub == nil || pub.N == nil || pub.N.Sign() <= 0 {
		return false
	}
	kBytes := (pub.N.BitLen() + 7) / 8
	if len(sig) != kBytes {
		return false
	}
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return false
	}
	m := new(big.Int).Exp(s, big.NewInt(int64(pub.E)), pub.N)
	em := make([]byte, kBytes)
	m.FillBytes(em)
	want, err := pad(msg, kBytes)
	if err != nil {
		return false
	}
	// Deterministic padding means direct comparison is sound.
	if len(em) != len(want) {
		return false
	}
	var diff byte
	for i := range em {
		diff |= em[i] ^ want[i]
	}
	return diff == 0
}

// Fingerprint returns a stable identifier for the public key.
func (p *PublicKey) Fingerprint() [sha256x.Size]byte {
	h := sha256x.New()
	h.Write(p.N.Bytes())
	h.Write([]byte{byte(p.E >> 16), byte(p.E >> 8), byte(p.E)})
	return h.Sum()
}
