package rsax

import (
	"math/big"
	"sync"
	"testing"
)

// testKey is generated once; 1024-bit keys keep the suite fast while
// exercising the full code path.
var (
	testKeyOnce sync.Once
	testKey     *PrivateKey
)

func key(t *testing.T) *PrivateKey {
	t.Helper()
	testKeyOnce.Do(func() {
		k, err := GenerateKey(nil, 1024)
		if err != nil {
			t.Fatal(err)
		}
		testKey = k
	})
	return testKey
}

func TestSignVerify(t *testing.T) {
	k := key(t)
	msg := []byte("device certificate body")
	sig, err := k.Sign(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(&k.PublicKey, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(&k.PublicKey, []byte("other"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
}

func TestSignatureTamper(t *testing.T) {
	k := key(t)
	msg := []byte("m")
	sig, _ := k.Sign(msg)
	for _, i := range []int{0, len(sig) / 2, len(sig) - 1} {
		bad := append([]byte(nil), sig...)
		bad[i] ^= 0x40
		if Verify(&k.PublicKey, msg, bad) {
			t.Fatalf("tampered signature (byte %d) accepted", i)
		}
	}
}

func TestVerifyRejectsWrongLength(t *testing.T) {
	k := key(t)
	msg := []byte("m")
	sig, _ := k.Sign(msg)
	if Verify(&k.PublicKey, msg, sig[:len(sig)-1]) {
		t.Fatal("short signature accepted")
	}
	if Verify(&k.PublicKey, msg, append(sig, 0)) {
		t.Fatal("long signature accepted")
	}
}

func TestVerifyRejectsSigGEModulus(t *testing.T) {
	k := key(t)
	n := k.N
	big := make([]byte, (n.BitLen()+7)/8)
	for i := range big {
		big[i] = 0xFF
	}
	if Verify(&k.PublicKey, []byte("m"), big) {
		t.Fatal("signature >= N accepted")
	}
}

func TestKeyProperties(t *testing.T) {
	k := key(t)
	if k.N.BitLen() != 1024 {
		t.Errorf("modulus is %d bits, want 1024", k.N.BitLen())
	}
	pq := new(big.Int).Mul(k.P, k.Q)
	if pq.Cmp(k.N) != 0 {
		t.Error("N != P*Q")
	}
	// d*e == 1 mod phi
	one := big.NewInt(1)
	phi := new(big.Int).Mul(new(big.Int).Sub(k.P, one), new(big.Int).Sub(k.Q, one))
	de := new(big.Int).Mul(k.D, big.NewInt(int64(k.E)))
	de.Mod(de, phi)
	if de.Cmp(one) != 0 {
		t.Error("d*e != 1 mod phi(N)")
	}
}

func TestGenerateKeyRejectsTiny(t *testing.T) {
	if _, err := GenerateKey(nil, 128); err == nil {
		t.Fatal("accepted 128-bit modulus")
	}
}

func TestFingerprintStable(t *testing.T) {
	k := key(t)
	if k.PublicKey.Fingerprint() != k.PublicKey.Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
	other := PublicKey{N: new(big.Int).Add(k.N, big.NewInt(2)), E: k.E}
	if other.Fingerprint() == k.PublicKey.Fingerprint() {
		t.Fatal("distinct keys share fingerprint")
	}
}

func TestVerifyNilSafety(t *testing.T) {
	if Verify(nil, []byte("m"), []byte("sig")) {
		t.Fatal("nil key verified")
	}
	if Verify(&PublicKey{}, []byte("m"), []byte("sig")) {
		t.Fatal("empty key verified")
	}
}
