// Package engine selects between the repository's scalar reference crypto
// (internal/crypto/{aesx,sha256x}) and the hardware-backed stdlib engines
// (crypto/aes, crypto/sha256, which use AES-NI/SHA-NI when the CPU has
// them) for the *functional* data path.
//
// The split matters because the Shield plays two roles at once: it is a
// cycle-accurate model of the paper's FPGA engine sets (where cost comes
// from aesx.Engine and the MAC cycle models, and must stay bit-identical
// across hosts), and it is a real serving data path whose MB/s is limited
// by how fast this process can actually run AES-CTR and HMAC. Engine
// selection swaps only the second role: ciphertext, tags, and simulated
// cycles are identical whichever engine runs, which differential tests
// (FuzzEngineParity) enforce.
//
// Selection follows the runtime-adaptive pattern: detect CPU features,
// then run a sub-millisecond micro-benchmark at first use and keep
// whichever implementation is actually faster on this host. The
// SHEF_CRYPTO_ENGINE environment variable ("scalar", "hardware", "auto")
// overrides the choice, and perf.Params.CryptoEngine forces it per Shield
// so tests pin both paths.
package engine

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"fmt"
	"hash"
	"os"
	"sync"
	"time"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/sha256x"
)

// EnvVar forces the engine choice process-wide: "scalar", "hardware", or
// "auto" (the default micro-benchmark selection). CI's scalar matrix leg
// sets it so the reference path stays green under -race.
const EnvVar = "SHEF_CRYPTO_ENGINE"

// Kind names an engine choice.
type Kind int

const (
	// Auto defers to Select(): environment override if set, otherwise the
	// micro-benchmark winner.
	Auto Kind = iota
	// Scalar forces the repository's from-scratch reference
	// implementations.
	Scalar
	// Hardware forces the stdlib engines (AES-NI/SHA-NI accelerated when
	// the CPU supports them).
	Hardware
)

func (k Kind) String() string {
	switch k {
	case Scalar:
		return "scalar"
	case Hardware:
		return "hardware"
	default:
		return "auto"
	}
}

// ParseKind maps a configuration string to a Kind. The empty string is
// Auto, so an unset perf.Params.CryptoEngine keeps the adaptive default.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "auto":
		return Auto, nil
	case "scalar":
		return Scalar, nil
	case "hardware", "hw":
		return Hardware, nil
	}
	return Auto, fmt.Errorf("engine: unknown crypto engine %q (want auto, scalar, or hardware)", s)
}

// Selection is the outcome of engine choice, kept for log attribution.
type Selection struct {
	Features Features
	// AES and SHA are the resolved kinds (never Auto).
	AES, SHA Kind
	// Forced reports that SHEF_CRYPTO_ENGINE pinned the choice, skipping
	// the micro-benchmark (the *Ns fields are zero in that case).
	Forced bool
	// Micro-benchmark results: nanoseconds per 1KiB of work for each
	// candidate, minimum over repetitions.
	AESScalarNs, AESHardwareNs int64
	SHAScalarNs, SHAHardwareNs int64
}

// String renders the one-line startup log ShEF daemons emit so perf
// reports are attributable to the engine that produced them.
func (s Selection) String() string {
	src := "micro-bench"
	if s.Forced {
		src = "env " + EnvVar
	}
	line := fmt.Sprintf("crypto engines: aes=%s sha=%s (aesni=%v sha_ni=%v, via %s",
		s.AES, s.SHA, s.Features.AESNI, s.Features.SHANI, src)
	if !s.Forced {
		line += fmt.Sprintf("; aes %dns vs %dns, sha %dns vs %dns per KiB scalar/hw",
			s.AESScalarNs, s.AESHardwareNs, s.SHAScalarNs, s.SHAHardwareNs)
	}
	return line + ")"
}

var (
	selectOnce sync.Once
	selection  Selection
)

// Select resolves the process-wide Auto choice. The first call runs the
// detection and micro-benchmark (well under a millisecond); later calls
// return the cached Selection.
func Select() Selection {
	selectOnce.Do(func() { selection = pick(os.Getenv(EnvVar)) })
	return selection
}

// pick computes a Selection for the given environment override. Split out
// of Select so tests can exercise every branch without the cache.
func pick(env string) Selection {
	s := Selection{Features: Detect()}
	if k, err := ParseKind(env); err == nil && k != Auto {
		s.AES, s.SHA, s.Forced = k, k, true
		return s
	}
	s.AESScalarNs, s.AESHardwareNs = benchAES()
	s.SHAScalarNs, s.SHAHardwareNs = benchSHA()
	s.AES = Scalar
	if s.AESHardwareNs < s.AESScalarNs {
		s.AES = Hardware
	}
	s.SHA = Scalar
	if s.SHAHardwareNs < s.SHAScalarNs {
		s.SHA = Hardware
	}
	return s
}

// benchReps and benchKiB size the micro-benchmark: 3 repetitions over
// 1KiB keep the total comfortably under a millisecond even on a machine
// with neither extension, while 64 AES blocks / 16 SHA blocks are enough
// to swamp call overhead.
const (
	benchReps = 3
	benchKiB  = 1024
)

func minNs(f func()) int64 {
	best := int64(1<<63 - 1)
	for r := 0; r < benchReps; r++ {
		t0 := time.Now()
		f()
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
	}
	if best < 1 {
		best = 1
	}
	return best
}

func benchAES() (scalarNs, hwNs int64) {
	var key [16]byte
	for i := range key {
		key[i] = byte(i*7 + 1)
	}
	var buf [benchKiB]byte
	sc, err := aesx.NewCipher(key[:])
	if err != nil {
		return 1, 1
	}
	hw, err := aes.NewCipher(key[:])
	if err != nil {
		return 1, 1
	}
	run := func(b aesx.Block) func() {
		return func() {
			for off := 0; off < benchKiB; off += aesx.BlockSize {
				b.EncryptBlock(buf[off:off+aesx.BlockSize], buf[off:off+aesx.BlockSize])
			}
		}
	}
	return minNs(run(sc)), minNs(run(stdBlock{hw}))
}

func benchSHA() (scalarNs, hwNs int64) {
	var buf [benchKiB]byte
	for i := range buf {
		buf[i] = byte(i)
	}
	var out [sha256x.Size]byte
	scalarNs = minNs(func() {
		var st sha256x.State
		st.Reset()
		st.Write(buf[:])
		st.SumInto(&out)
	})
	hw := sha256.New()
	hwNs = minNs(func() {
		hw.Reset()
		hw.Write(buf[:])
		hw.Sum(out[:0])
	})
	return scalarNs, hwNs
}

// stdBlock adapts the stdlib AES cipher to the aesx.Block contract.
type stdBlock struct{ b cipher.Block }

func (s stdBlock) EncryptBlock(dst, src []byte) { s.b.Encrypt(dst, src) }

// ResolveAES returns the concrete AES engine kind for k. Explicit kinds
// pass through untouched (so forcing a path in tests never consults the
// cached Selection); only Auto triggers Select.
func ResolveAES(k Kind) Kind {
	if k == Auto {
		return Select().AES
	}
	return k
}

// ResolveSHA returns the concrete SHA-256 engine kind for k.
func ResolveSHA(k Kind) Kind {
	if k == Auto {
		return Select().SHA
	}
	return k
}

// NewAES builds a block cipher for the key under the chosen engine. The
// returned Block produces ciphertext bit-identical to aesx.NewCipher
// whichever engine backs it.
func NewAES(key []byte, kind Kind) (aesx.Block, error) {
	if ResolveAES(kind) == Hardware {
		b, err := aes.NewCipher(key)
		if err != nil {
			return nil, err
		}
		return stdBlock{b}, nil
	}
	return aesx.NewCipher(key)
}

// NewSHA returns a constructor of incremental SHA-256 states under the
// chosen engine, in the shape hmacx.NewState consumes. The stdlib-backed
// state finalises via Sum into caller scratch, so tagging through it
// allocates nothing per message.
func NewSHA(kind Kind) func() hmacx.Hash {
	if ResolveSHA(kind) == Hardware {
		return func() hmacx.Hash { return &stdSHA{h: sha256.New()} }
	}
	return func() hmacx.Hash { return sha256x.New() }
}

// stdSHA adapts the stdlib SHA-256 to the hmacx.Hash contract.
type stdSHA struct{ h hash.Hash }

func (s *stdSHA) Reset()                          { s.h.Reset() }
func (s *stdSHA) Write(p []byte) (int, error)     { return s.h.Write(p) }
func (s *stdSHA) SumInto(out *[sha256x.Size]byte) { s.h.Sum(out[:0]) }
