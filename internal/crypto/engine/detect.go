package engine

import (
	"os"
	"runtime"
	"strings"
	"sync"
)

// Features reports the CPU's crypto instruction-set extensions, as far as
// the runtime can tell without cgo or assembly: AES-NI (or the arm64 AES
// extension) and SHA-NI (or the arm64 SHA-2 extension). The stdlib engines
// use these transparently when present; the flags here exist so the
// startup log line can attribute a measured speedup to the hardware that
// produced it.
type Features struct {
	AESNI bool
	SHANI bool
}

var (
	detectOnce sync.Once
	detected   Features
)

// Detect probes the CPU's crypto extensions. The probe runs once; later
// calls return the cached result.
func Detect() Features {
	detectOnce.Do(func() { detected = detect() })
	return detected
}

// detect parses /proc/cpuinfo on Linux (the flags/Features line carries
// "aes" and "sha_ni"/"sha2" when the extensions exist). On other systems
// or when the parse fails it reports no features — selection still works,
// because the micro-benchmark, not the flag, makes the final call.
func detect() Features {
	if runtime.GOOS != "linux" {
		return Features{}
	}
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return Features{}
	}
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, "flags") && !strings.HasPrefix(line, "Features") {
			continue
		}
		f := " " + line + " "
		return Features{
			AESNI: strings.Contains(f, " aes "),
			SHANI: strings.Contains(f, " sha_ni ") || strings.Contains(f, " sha2 "),
		}
	}
	return Features{}
}
