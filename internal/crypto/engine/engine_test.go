package engine

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/pmacx"
	"shef/internal/crypto/sha256x"
)

func TestParseKind(t *testing.T) {
	cases := []struct {
		in   string
		want Kind
		err  bool
	}{
		{"", Auto, false},
		{"auto", Auto, false},
		{"scalar", Scalar, false},
		{"hardware", Hardware, false},
		{"hw", Hardware, false},
		{"simd", Auto, true},
		{"Scalar", Auto, true},
	}
	for _, c := range cases {
		k, err := ParseKind(c.in)
		if (err != nil) != c.err || k != c.want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v, err=%v", c.in, k, err, c.want, c.err)
		}
	}
}

func TestPickForced(t *testing.T) {
	for _, env := range []string{"scalar", "hardware"} {
		s := pick(env)
		if !s.Forced {
			t.Errorf("pick(%q): not marked forced", env)
		}
		want, _ := ParseKind(env)
		if s.AES != want || s.SHA != want {
			t.Errorf("pick(%q): aes=%v sha=%v, want both %v", env, s.AES, s.SHA, want)
		}
	}
}

func TestPickAutoResolves(t *testing.T) {
	start := time.Now()
	s := pick("")
	elapsed := time.Since(start)
	if s.AES == Auto || s.SHA == Auto {
		t.Fatalf("pick(auto) left an unresolved kind: %+v", s)
	}
	if s.Forced {
		t.Fatalf("pick(auto) marked forced")
	}
	if s.AESScalarNs <= 0 || s.AESHardwareNs <= 0 || s.SHAScalarNs <= 0 || s.SHAHardwareNs <= 0 {
		t.Fatalf("micro-bench results missing: %+v", s)
	}
	// The issue requires selection to finish in under a millisecond; give
	// a loaded CI machine 50x headroom while still catching a benchmark
	// that grew into real work.
	if elapsed > 50*time.Millisecond {
		t.Fatalf("selection took %v, want well under 50ms", elapsed)
	}
	line := s.String()
	if !strings.Contains(line, "aes=") || !strings.Contains(line, "micro-bench") {
		t.Errorf("selection log line %q missing fields", line)
	}
}

func TestSelectCached(t *testing.T) {
	a, b := Select(), Select()
	if a != b {
		t.Fatalf("Select() not stable: %+v vs %+v", a, b)
	}
}

// TestAESParity proves the hardware block bit-identical to the scalar
// reference across key sizes, both single-block and through CTR.
func TestAESParity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, ks := range []int{16, 32} {
		key := make([]byte, ks)
		rng.Read(key)
		sc, err := NewAES(key, Scalar)
		if err != nil {
			t.Fatal(err)
		}
		hw, err := NewAES(key, Hardware)
		if err != nil {
			t.Fatal(err)
		}
		var src, a, b [16]byte
		for trial := 0; trial < 64; trial++ {
			rng.Read(src[:])
			sc.EncryptBlock(a[:], src[:])
			hw.EncryptBlock(b[:], src[:])
			if a != b {
				t.Fatalf("key size %d: block mismatch\nscalar  %x\nhardware %x", ks, a, b)
			}
		}
		for _, n := range []int{0, 1, 15, 16, 17, 64, 1000, 4096} {
			msg := make([]byte, n)
			rng.Read(msg)
			iv := aesx.ChunkIV(7, uint32(n), 3)
			ca, cb := make([]byte, n), make([]byte, n)
			aesx.CTR(sc, iv, ca, msg)
			aesx.CTR(hw, iv, cb, msg)
			if !bytes.Equal(ca, cb) {
				t.Fatalf("key size %d, len %d: CTR mismatch", ks, n)
			}
		}
	}
}

// TestSHAParity proves the stdlib-backed hash and HMAC states match the
// scalar reference digests.
func TestSHAParity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	newHW := NewSHA(Hardware)
	newSC := NewSHA(Scalar)
	key := make([]byte, 32)
	rng.Read(key)
	hwState := hmacx.NewState(key, newHW)
	scState := hmacx.NewState(key, newSC)
	for _, n := range []int{0, 1, 55, 56, 63, 64, 65, 1000, 4096} {
		msg := make([]byte, n)
		rng.Read(msg)

		var da, db [sha256x.Size]byte
		h := newHW()
		h.Reset()
		h.Write(msg)
		h.SumInto(&da)
		s := newSC()
		s.Reset()
		s.Write(msg)
		s.SumInto(&db)
		if da != db {
			t.Fatalf("len %d: digest mismatch\nhardware %x\nscalar   %x", n, da, db)
		}
		if want := sha256x.Digest(msg); da != want {
			t.Fatalf("len %d: hardware digest diverges from sha256x.Digest", n)
		}

		var ta, tb [hmacx.TagSize]byte
		hwState.Tag(msg, &ta)
		scState.Tag(msg, &tb)
		if ta != tb {
			t.Fatalf("len %d: HMAC tag mismatch", n)
		}
		if want := hmacx.Tag(key, msg); ta != want {
			t.Fatalf("len %d: HMAC state diverges from package Tag", n)
		}
	}
}

// TestPMACParity proves PMAC over the hardware block matches PMAC over
// the scalar reference cipher.
func TestPMACParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	key := make([]byte, 16)
	rng.Read(key)
	sc, err := NewAES(key, Scalar)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := NewAES(key, Hardware)
	if err != nil {
		t.Fatal(err)
	}
	ma, mb := pmacx.NewWithBlock(sc), pmacx.NewWithBlock(hw)
	for _, n := range []int{0, 1, 15, 16, 17, 32, 100, 4096} {
		msg := make([]byte, n)
		rng.Read(msg)
		if ma.Sum(msg) != mb.Sum(msg) {
			t.Fatalf("len %d: PMAC mismatch", n)
		}
	}
	ref, err := pmacx.New(key)
	if err != nil {
		t.Fatal(err)
	}
	msg := make([]byte, 333)
	rng.Read(msg)
	if ref.Sum(msg) != mb.Sum(msg) {
		t.Fatalf("NewWithBlock(hardware) diverges from pmacx.New")
	}
}

// TestZeroAllocSteadyState pins the pooling contract the Shield's hot
// path relies on: once constructed, CTR and HMAC tagging through either
// engine allocate nothing per chunk.
func TestZeroAllocSteadyState(t *testing.T) {
	key := make([]byte, 16)
	msg := make([]byte, 4096)
	dst := make([]byte, 4096)
	iv := aesx.ChunkIV(1, 2, 3)
	var tag [hmacx.TagSize]byte
	for _, kind := range []Kind{Scalar, Hardware} {
		blk, err := NewAES(key, kind)
		if err != nil {
			t.Fatal(err)
		}
		var st aesx.CTRStream
		if n := testing.AllocsPerRun(100, func() {
			st.XORKeyStream(blk, iv, dst, msg)
		}); n != 0 {
			t.Errorf("%v CTR: %v allocs/op, want 0", kind, n)
		}
		hm := hmacx.NewState(key, NewSHA(kind))
		if n := testing.AllocsPerRun(100, func() {
			hm.Tag(msg, &tag)
		}); n != 0 {
			t.Errorf("%v HMAC tag: %v allocs/op, want 0", kind, n)
		}
	}
	mac, err := pmacx.New(key)
	if err != nil {
		t.Fatal(err)
	}
	var psc pmacx.Scratch
	if n := testing.AllocsPerRun(100, func() {
		tag = mac.SumWith(&psc, msg)
	}); n != 0 {
		t.Errorf("PMAC: %v allocs/op, want 0", n)
	}
}
