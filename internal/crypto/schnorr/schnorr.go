// Package schnorr implements Schnorr signatures and static Diffie-Hellman
// over a modp.Group.
//
// ShEF's Attestation Key and Verification Key (paper Figure 3) must support
// two operations with one key pair: signing (Sign_AttestKey over the
// attestation report and session key) and key agreement (SessionKey =
// DHKE(VerifKey_pub, AttestKey_priv)). A discrete-log key pair does both,
// which is why this package exists instead of reusing RSA.
package schnorr

import (
	"errors"
	"io"
	"math/big"

	"shef/internal/crypto/modp"
	"shef/internal/crypto/sha256x"
)

// PublicKey is a group element Y = g^x.
type PublicKey struct {
	Group *modp.Group
	Y     *big.Int
}

// PrivateKey holds the discrete log x alongside its public half.
type PrivateKey struct {
	PublicKey
	X *big.Int
}

// Signature is a Schnorr signature (e, s) with the challenge e = H(R || Y || msg).
type Signature struct {
	E *big.Int
	S *big.Int
}

// GenerateKey creates a random key pair over group, reading randomness from
// r (crypto/rand if nil).
func GenerateKey(group *modp.Group, r io.Reader) (*PrivateKey, error) {
	x, err := group.RandScalar(r)
	if err != nil {
		return nil, err
	}
	return KeyFromScalar(group, x), nil
}

// KeyFromSeed deterministically derives a key pair from seed material.
// The SPB firmware uses this to produce the Attestation Key pair from the
// device-key signature over the Security Kernel hash.
func KeyFromSeed(group *modp.Group, seed []byte) *PrivateKey {
	return KeyFromScalar(group, group.ScalarFromBytes(seed))
}

// KeyFromScalar wraps an exponent into a key pair.
func KeyFromScalar(group *modp.Group, x *big.Int) *PrivateKey {
	return &PrivateKey{
		PublicKey: PublicKey{Group: group, Y: group.Exp(x)},
		X:         x,
	}
}

// Sign produces a Schnorr signature over msg. Randomness is derived
// deterministically from the key and message (RFC 6979-style) so signing
// never needs an entropy source at attestation time.
func (k *PrivateKey) Sign(msg []byte) Signature {
	group := k.Group
	// Deterministic nonce: H(x || msg) reduced into [1, Q).
	h := sha256x.New()
	h.Write(k.X.Bytes())
	h.Write(msg)
	seed := h.Sum()
	// Widen to 64 bytes to avoid bias against Q.
	h2 := sha256x.New()
	h2.Write(seed[:])
	h2.Write([]byte("widen"))
	seed2 := h2.Sum()
	kn := group.ScalarFromBytes(append(seed[:], seed2[:]...))

	r := group.Exp(kn)
	e := challenge(group, r, k.Y, msg)
	// s = k - x*e mod Q
	s := new(big.Int).Mul(k.X, e)
	s.Sub(kn, s)
	s.Mod(s, group.Q)
	return Signature{E: e, S: s}
}

// Verify checks sig over msg against pub.
func Verify(pub *PublicKey, msg []byte, sig Signature) bool {
	if pub == nil || sig.E == nil || sig.S == nil {
		return false
	}
	group := pub.Group
	if !group.ValidElement(pub.Y) {
		return false
	}
	if sig.S.Sign() < 0 || sig.S.Cmp(group.Q) >= 0 || sig.E.Sign() <= 0 {
		return false
	}
	// R' = g^s * Y^e ; check H(R' || Y || msg) == e
	gs := group.Exp(sig.S)
	ye := group.ExpBase(pub.Y, sig.E)
	r := new(big.Int).Mul(gs, ye)
	r.Mod(r, group.P)
	return challenge(group, r, pub.Y, msg).Cmp(sig.E) == 0
}

func challenge(group *modp.Group, r, y *big.Int, msg []byte) *big.Int {
	h := sha256x.New()
	h.Write(r.Bytes())
	h.Write(y.Bytes())
	h.Write(msg)
	sum := h.Sum()
	e := new(big.Int).SetBytes(sum[:])
	e.Mod(e, group.Q)
	if e.Sign() == 0 {
		e.SetInt64(1)
	}
	return e
}

// SharedSecret computes the static DH secret Y_peer^x. Both sides of
// Figure 3 call this with their private key and the other party's public
// key to derive the same SessionKey input.
func (k *PrivateKey) SharedSecret(peer *PublicKey) (*big.Int, error) {
	if peer == nil || !k.Group.ValidElement(peer.Y) {
		return nil, errors.New("schnorr: invalid peer public element")
	}
	return k.Group.ExpBase(peer.Y, k.X), nil
}

// Fingerprint returns a stable 32-byte identifier for the public key,
// suitable for certificate contents and audit lists.
func (p *PublicKey) Fingerprint() [sha256x.Size]byte {
	h := sha256x.New()
	h.Write([]byte(p.Group.Name))
	h.Write(p.Y.Bytes())
	return h.Sum()
}

// Bytes serialises the public element.
func (p *PublicKey) Bytes() []byte { return p.Y.Bytes() }

// PublicKeyFromBytes reconstructs a public key over group.
func PublicKeyFromBytes(group *modp.Group, b []byte) (*PublicKey, error) {
	y := new(big.Int).SetBytes(b)
	pk := &PublicKey{Group: group, Y: y}
	if !group.ValidElement(y) {
		return nil, errors.New("schnorr: invalid public key encoding")
	}
	return pk, nil
}
