package schnorr

import (
	"math/big"
	"testing"
	"testing/quick"

	"shef/internal/crypto/modp"
)

func TestSignVerify(t *testing.T) {
	key, err := GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("attestation report alpha")
	sig := key.Sign(msg)
	if !Verify(&key.PublicKey, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if Verify(&key.PublicKey, []byte("different"), sig) {
		t.Fatal("signature accepted for wrong message")
	}
}

func TestSignatureTamper(t *testing.T) {
	key, _ := GenerateKey(modp.TestGroup, nil)
	msg := []byte("m")
	sig := key.Sign(msg)
	bad := sig
	bad.S = new(big.Int).Add(sig.S, big.NewInt(1))
	if Verify(&key.PublicKey, msg, bad) {
		t.Fatal("tampered S accepted")
	}
	bad = sig
	bad.E = new(big.Int).Add(sig.E, big.NewInt(1))
	if Verify(&key.PublicKey, msg, bad) {
		t.Fatal("tampered E accepted")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	k1, _ := GenerateKey(modp.TestGroup, nil)
	k2, _ := GenerateKey(modp.TestGroup, nil)
	msg := []byte("m")
	if Verify(&k2.PublicKey, msg, k1.Sign(msg)) {
		t.Fatal("signature verified under wrong key")
	}
}

func TestDeterministicSigning(t *testing.T) {
	key, _ := GenerateKey(modp.TestGroup, nil)
	msg := []byte("nonce-free signing")
	s1 := key.Sign(msg)
	s2 := key.Sign(msg)
	if s1.E.Cmp(s2.E) != 0 || s1.S.Cmp(s2.S) != 0 {
		t.Fatal("signing is not deterministic")
	}
}

func TestKeyFromSeedDeterministic(t *testing.T) {
	a := KeyFromSeed(modp.TestGroup, []byte("seed"))
	b := KeyFromSeed(modp.TestGroup, []byte("seed"))
	c := KeyFromSeed(modp.TestGroup, []byte("seed2"))
	if a.X.Cmp(b.X) != 0 {
		t.Fatal("same seed produced different keys")
	}
	if a.X.Cmp(c.X) == 0 {
		t.Fatal("different seeds produced same key")
	}
	if !Verify(&a.PublicKey, []byte("m"), b.Sign([]byte("m"))) {
		t.Fatal("seed-derived keys not interoperable")
	}
}

func TestSharedSecretAgreement(t *testing.T) {
	alice, _ := GenerateKey(modp.TestGroup, nil)
	bob, _ := GenerateKey(modp.TestGroup, nil)
	s1, err := alice.SharedSecret(&bob.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := bob.SharedSecret(&alice.PublicKey)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Cmp(s2) != 0 {
		t.Fatal("DH shared secrets differ")
	}
	eve, _ := GenerateKey(modp.TestGroup, nil)
	s3, _ := eve.SharedSecret(&bob.PublicKey)
	if s3.Cmp(s1) == 0 {
		t.Fatal("third party derived the same secret")
	}
}

func TestSharedSecretRejectsInvalidElements(t *testing.T) {
	key, _ := GenerateKey(modp.TestGroup, nil)
	for _, y := range []*big.Int{big.NewInt(0), big.NewInt(1),
		new(big.Int).Sub(modp.TestGroup.P, big.NewInt(1)), modp.TestGroup.P} {
		peer := &PublicKey{Group: modp.TestGroup, Y: y}
		if _, err := key.SharedSecret(peer); err == nil {
			t.Errorf("accepted invalid element %v", y)
		}
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	key, _ := GenerateKey(modp.TestGroup, nil)
	b := key.PublicKey.Bytes()
	got, err := PublicKeyFromBytes(modp.TestGroup, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Y.Cmp(key.Y) != 0 {
		t.Fatal("public key round trip changed value")
	}
	if got.Fingerprint() != key.PublicKey.Fingerprint() {
		t.Fatal("fingerprint not stable across serialisation")
	}
}

func TestPublicKeyFromBytesRejectsGarbage(t *testing.T) {
	if _, err := PublicKeyFromBytes(modp.TestGroup, nil); err == nil {
		t.Fatal("accepted empty encoding")
	}
	if _, err := PublicKeyFromBytes(modp.TestGroup, []byte{1}); err == nil {
		t.Fatal("accepted identity element")
	}
}

// Property: signatures over random messages always verify, and never verify
// under a perturbed message.
func TestSignVerifyProperty(t *testing.T) {
	key, _ := GenerateKey(modp.TestGroup, nil)
	f := func(msg []byte) bool {
		sig := key.Sign(msg)
		if !Verify(&key.PublicKey, msg, sig) {
			return false
		}
		return !Verify(&key.PublicKey, append(msg, 1), sig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestProductionGroupSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-bit group in -short mode")
	}
	key, err := GenerateKey(modp.Group14, nil)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("production group")
	if !Verify(&key.PublicKey, msg, key.Sign(msg)) {
		t.Fatal("Group14 sign/verify failed")
	}
}
