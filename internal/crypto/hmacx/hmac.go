// Package hmacx implements HMAC-SHA256 (RFC 2104) from scratch, plus the
// cycle model of the Shield's HMAC engine.
//
// The Shield's default authentication engine is a SHA-256 HMAC core (paper
// Table 1). HMAC chains block-to-block, so a single stream cannot be
// parallelised — this is exactly the bottleneck the paper's SDP case study
// hits before switching to PMAC (§6.2.3).
package hmacx

import (
	"crypto/subtle"

	"shef/internal/crypto/sha256x"
)

// TagSize is the truncated MAC tag the Shield stores per chunk: 16 bytes
// (paper §5.2.2: "each chunk is authenticated via a 16-byte MAC tag").
const TagSize = 16

// Sum computes the full 32-byte HMAC-SHA256 of msg under key.
func Sum(key, msg []byte) [sha256x.Size]byte {
	var kblock [sha256x.BlockSize]byte
	if len(key) > sha256x.BlockSize {
		kh := sha256x.Digest(key)
		copy(kblock[:], kh[:])
	} else {
		copy(kblock[:], key)
	}
	var ipad, opad [sha256x.BlockSize]byte
	for i := range kblock {
		ipad[i] = kblock[i] ^ 0x36
		opad[i] = kblock[i] ^ 0x5c
	}
	inner := sha256x.New()
	inner.Write(ipad[:])
	inner.Write(msg)
	innerSum := inner.Sum()
	outer := sha256x.New()
	outer.Write(opad[:])
	outer.Write(innerSum[:])
	return outer.Sum()
}

// Tag computes the Shield's 16-byte truncated tag over msg.
func Tag(key, msg []byte) [TagSize]byte {
	full := Sum(key, msg)
	var t [TagSize]byte
	copy(t[:], full[:TagSize])
	return t
}

// Verify reports whether tag is the correct truncated tag for msg under
// key, in constant time.
func Verify(key, msg []byte, tag [TagSize]byte) bool {
	want := Tag(key, msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// Hash is the incremental-hash contract the reusable HMAC state needs:
// sha256x.State satisfies it, and so does the stdlib-backed hash from
// internal/crypto/engine. SumInto must finalise a copy, leaving the
// stream usable, and must not allocate.
type Hash interface {
	Reset()
	Write(p []byte) (int, error)
	SumInto(out *[sha256x.Size]byte)
}

// State is a reusable HMAC-SHA256 computation: the key pads and both hash
// streams persist, so the Shield's per-scratch states tag a window of
// chunks with zero per-chunk heap allocations. A State is not safe for
// concurrent use; check one out per in-flight worker.
type State struct {
	inner, outer Hash
	ipad, opad   [sha256x.BlockSize]byte
	// isum and osum live in the State rather than on the stack because
	// they are handed to the Hash interface: escape analysis would heap-
	// allocate a local on every call.
	isum, osum [sha256x.Size]byte
}

// NewState builds a reusable HMAC state for key. newHash constructs the
// underlying SHA-256 streams (two are made); pass nil for the scalar
// reference sha256x implementation.
func NewState(key []byte, newHash func() Hash) *State {
	if newHash == nil {
		newHash = func() Hash { return sha256x.New() }
	}
	st := &State{inner: newHash(), outer: newHash()}
	var kblock [sha256x.BlockSize]byte
	if len(key) > sha256x.BlockSize {
		kh := sha256x.Digest(key)
		copy(kblock[:], kh[:])
	} else {
		copy(kblock[:], key)
	}
	for i := range kblock {
		st.ipad[i] = kblock[i] ^ 0x36
		st.opad[i] = kblock[i] ^ 0x5c
	}
	return st
}

// Sum computes the full 32-byte HMAC-SHA256 of msg into out.
func (st *State) Sum(msg []byte, out *[sha256x.Size]byte) {
	st.inner.Reset()
	st.inner.Write(st.ipad[:])
	st.inner.Write(msg)
	st.inner.SumInto(&st.isum)
	st.outer.Reset()
	st.outer.Write(st.opad[:])
	st.outer.Write(st.isum[:])
	st.outer.SumInto(out)
}

// Tag computes the Shield's 16-byte truncated tag over msg into out.
func (st *State) Tag(msg []byte, out *[TagSize]byte) {
	st.Sum(msg, &st.osum)
	copy(out[:], st.osum[:TagSize])
}

// Verify reports whether tag is the correct truncated tag for msg, in
// constant time.
func (st *State) Verify(msg []byte, tag [TagSize]byte) bool {
	var want [TagSize]byte
	st.Tag(msg, &want)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// Cycles is the simulated cost of MACing n message bytes on one HMAC
// engine: the inner hash absorbs the key pad plus the message, the outer
// hash absorbs two more blocks. The computation is serial; instantiating
// more HMAC engines only helps across independent chunks, never within one.
func Cycles(n int) uint64 {
	innerBlocks := 1 + (n+9+sha256x.BlockSize-1)/sha256x.BlockSize // ipad block + message
	outerBlocks := 2                                               // opad block + inner digest
	return uint64(innerBlocks+outerBlocks) * sha256x.CyclesPerBlock
}
