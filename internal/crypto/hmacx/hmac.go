// Package hmacx implements HMAC-SHA256 (RFC 2104) from scratch, plus the
// cycle model of the Shield's HMAC engine.
//
// The Shield's default authentication engine is a SHA-256 HMAC core (paper
// Table 1). HMAC chains block-to-block, so a single stream cannot be
// parallelised — this is exactly the bottleneck the paper's SDP case study
// hits before switching to PMAC (§6.2.3).
package hmacx

import (
	"crypto/subtle"

	"shef/internal/crypto/sha256x"
)

// TagSize is the truncated MAC tag the Shield stores per chunk: 16 bytes
// (paper §5.2.2: "each chunk is authenticated via a 16-byte MAC tag").
const TagSize = 16

// Sum computes the full 32-byte HMAC-SHA256 of msg under key.
func Sum(key, msg []byte) [sha256x.Size]byte {
	var kblock [sha256x.BlockSize]byte
	if len(key) > sha256x.BlockSize {
		kh := sha256x.Digest(key)
		copy(kblock[:], kh[:])
	} else {
		copy(kblock[:], key)
	}
	var ipad, opad [sha256x.BlockSize]byte
	for i := range kblock {
		ipad[i] = kblock[i] ^ 0x36
		opad[i] = kblock[i] ^ 0x5c
	}
	inner := sha256x.New()
	inner.Write(ipad[:])
	inner.Write(msg)
	innerSum := inner.Sum()
	outer := sha256x.New()
	outer.Write(opad[:])
	outer.Write(innerSum[:])
	return outer.Sum()
}

// Tag computes the Shield's 16-byte truncated tag over msg.
func Tag(key, msg []byte) [TagSize]byte {
	full := Sum(key, msg)
	var t [TagSize]byte
	copy(t[:], full[:TagSize])
	return t
}

// Verify reports whether tag is the correct truncated tag for msg under
// key, in constant time.
func Verify(key, msg []byte, tag [TagSize]byte) bool {
	want := Tag(key, msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// Cycles is the simulated cost of MACing n message bytes on one HMAC
// engine: the inner hash absorbs the key pad plus the message, the outer
// hash absorbs two more blocks. The computation is serial; instantiating
// more HMAC engines only helps across independent chunks, never within one.
func Cycles(n int) uint64 {
	innerBlocks := 1 + (n+9+sha256x.BlockSize-1)/sha256x.BlockSize // ipad block + message
	outerBlocks := 2                                               // opad block + inner digest
	return uint64(innerBlocks+outerBlocks) * sha256x.CyclesPerBlock
}
