package hmacx

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// RFC 4231 test case 2.
func TestRFC4231(t *testing.T) {
	key := []byte("Jefe")
	msg := []byte("what do ya want for nothing?")
	want := "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
	got := Sum(key, msg)
	if hex.EncodeToString(got[:]) != want {
		t.Fatalf("HMAC = %x, want %s", got, want)
	}
}

func TestAgainstStdlib(t *testing.T) {
	f := func(key, msg []byte) bool {
		ref := hmac.New(sha256.New, key)
		ref.Write(msg)
		want := ref.Sum(nil)
		got := Sum(key, msg)
		return hmac.Equal(got[:], want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestLongKeyHashing(t *testing.T) {
	key := make([]byte, 200) // longer than one block: must be pre-hashed
	msg := []byte("m")
	ref := hmac.New(sha256.New, key)
	ref.Write(msg)
	got := Sum(key, msg)
	if !hmac.Equal(got[:], ref.Sum(nil)) {
		t.Fatal("long-key HMAC mismatch")
	}
}

func TestVerify(t *testing.T) {
	key := []byte("k")
	msg := []byte("chunk of shielded memory")
	tag := Tag(key, msg)
	if !Verify(key, msg, tag) {
		t.Fatal("valid tag rejected")
	}
	tag[0] ^= 1
	if Verify(key, msg, tag) {
		t.Fatal("corrupted tag accepted")
	}
	if Verify(key, append(msg, 'x'), Tag(key, msg)) {
		t.Fatal("tag accepted for different message")
	}
}

// Property: any single-bit flip in the message must change the tag.
func TestTagBitFlipSensitivity(t *testing.T) {
	f := func(msg []byte, pos uint16) bool {
		if len(msg) == 0 {
			return true
		}
		key := []byte("bitflip")
		orig := Tag(key, msg)
		i := int(pos) % len(msg)
		msg[i] ^= 0x01
		return Tag(key, msg) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCyclesMonotone(t *testing.T) {
	prev := uint64(0)
	for n := 0; n <= 8192; n += 64 {
		c := Cycles(n)
		if c < prev {
			t.Fatalf("Cycles not monotone at n=%d", n)
		}
		prev = c
	}
	// 4KB chunk: 1 ipad + 65 msg blocks + 2 outer = 68 blocks.
	if got, want := Cycles(4096), uint64(68*68); got != want {
		t.Errorf("Cycles(4096) = %d, want %d", got, want)
	}
}
