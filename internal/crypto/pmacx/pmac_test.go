package pmacx

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	m, err := New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("deterministic MAC over a chunk")
	if m.Sum(msg) != m.Sum(msg) {
		t.Fatal("PMAC not deterministic")
	}
}

func TestKeySeparation(t *testing.T) {
	k1 := make([]byte, 16)
	k2 := make([]byte, 16)
	k2[0] = 1
	m1, _ := New(k1)
	m2, _ := New(k2)
	msg := []byte("same message, different keys")
	if m1.Sum(msg) == m2.Sum(msg) {
		t.Fatal("tags collide across keys")
	}
}

func TestVerify(t *testing.T) {
	m, _ := New(make([]byte, 32))
	msg := bytes.Repeat([]byte{0xAB}, 4096)
	tag := m.Sum(msg)
	if !m.Verify(msg, tag) {
		t.Fatal("valid tag rejected")
	}
	msg[100] ^= 1
	if m.Verify(msg, tag) {
		t.Fatal("tampered message accepted")
	}
}

// Property: messages differing in any byte, or by length, yield different
// tags (no trivial padding/length collisions).
func TestNoLengthExtensionCollision(t *testing.T) {
	m, _ := New([]byte("0123456789abcdef"))
	f := func(msg []byte) bool {
		t1 := m.Sum(msg)
		t2 := m.Sum(append(msg, 0x00))
		return t1 != t2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFullBlockVsPadded(t *testing.T) {
	m, _ := New(make([]byte, 16))
	// A 16-byte message (full final block) vs the same 16 bytes followed by
	// the 10* pad as explicit data must not collide.
	full := bytes.Repeat([]byte{0x42}, 16)
	padded := append(append([]byte{}, full...), 0x80)
	if m.Sum(full) == m.Sum(padded[:17]) {
		t.Fatal("full-block and padded messages collide")
	}
}

func TestEmptyAndSingleByte(t *testing.T) {
	m, _ := New(make([]byte, 16))
	if m.Sum(nil) == m.Sum([]byte{0}) {
		t.Fatal("empty and single-zero-byte messages collide")
	}
}

func TestBitFlipSensitivity(t *testing.T) {
	m, _ := New([]byte("kkkkkkkkkkkkkkkk"))
	f := func(msg []byte, pos uint16) bool {
		if len(msg) == 0 {
			return true
		}
		orig := m.Sum(msg)
		i := int(pos) % len(msg)
		bit := byte(1) << (pos % 8)
		msg[i] ^= bit
		return m.Sum(msg) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDoubleHalveInverse(t *testing.T) {
	f := func(b [16]byte) bool {
		return halve(double(b)) == b && double(halve(b)) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestCyclesScaleWithEngines encodes the paper's reason for PMAC: unlike
// HMAC, adding engines increases single-stream MAC throughput.
func TestCyclesScaleWithEngines(t *testing.T) {
	const aesBlk = 20 // AES-128/16x
	c1 := Cycles(4096, 1, aesBlk)
	c4 := Cycles(4096, 4, aesBlk)
	c8 := Cycles(4096, 8, aesBlk)
	if !(c1 > c4 && c4 > c8) {
		t.Fatalf("PMAC cycles do not scale: 1=%d 4=%d 8=%d", c1, c4, c8)
	}
	// Near-linear scaling in the parallel phase.
	if float64(c1)/float64(c4) < 3.0 {
		t.Errorf("4-engine speedup %.2fx, want close to 4x", float64(c1)/float64(c4))
	}
	if Cycles(0, 0, aesBlk) == 0 {
		t.Error("zero-length message should still cost a tag block")
	}
}

func BenchmarkPMAC4K(b *testing.B) {
	m, _ := New(make([]byte, 16))
	msg := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		m.Sum(msg)
	}
}
