// Package pmacx implements PMAC (a parallelisable message authentication
// code, Black–Rogaway) over AES, plus its cycle model.
//
// The paper replaces the serial HMAC engine with PMAC engines when a
// workload is authentication-bound (§6.2.3, §6.2.4): because PMAC's block
// computations are independent, MAC throughput scales with the number of
// engines, unlike HMAC. The implementation below follows the PMAC1
// construction: Sigma = XOR_i AES(M_i xor Delta_i), tag = AES(Sigma xor
// pad(M_last) xor Delta*), where the offsets Delta derive from L = AES(0)
// by Galois-field doubling.
package pmacx

import (
	"crypto/subtle"
	"encoding/binary"

	"shef/internal/crypto/aesx"
)

// TagSize matches the Shield's 16-byte stored tag.
const TagSize = 16

// MAC is a PMAC instance bound to one AES key. The underlying block
// cipher is any aesx.Block — the scalar reference cipher or a
// hardware-backed block from internal/crypto/engine.
type MAC struct {
	cipher aesx.Block
	l      [16]byte // L = AES_K(0^128)
	lInv   [16]byte // L / x, for final-block offset when the last block is full
	// Word forms of l and lInv (big-endian hi/lo halves) feed the
	// word-wise SumWith loop, which runs the offset doubling and the
	// XOR folds 8 bytes at a time instead of byte by byte.
	lHi, lLo       uint64
	lInvHi, lInvLo uint64
}

// New builds a PMAC instance over the given AES key (16 or 32 bytes),
// using the scalar reference cipher.
func New(key []byte) (*MAC, error) {
	c, err := aesx.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return NewWithBlock(c), nil
}

// NewWithBlock builds a PMAC instance over an already-constructed block
// cipher, letting callers choose the engine implementation.
func NewWithBlock(b aesx.Block) *MAC {
	m := &MAC{cipher: b}
	var zero [16]byte
	b.EncryptBlock(m.l[:], zero[:])
	m.lInv = halve(m.l)
	m.lHi = binary.BigEndian.Uint64(m.l[0:8])
	m.lLo = binary.BigEndian.Uint64(m.l[8:16])
	m.lInvHi = binary.BigEndian.Uint64(m.lInv[0:8])
	m.lInvLo = binary.BigEndian.Uint64(m.lInv[8:16])
	return m
}

// Scratch holds the block buffers of one in-flight PMAC computation.
// They cannot live on SumWith's stack: the buffers cross the aesx.Block
// interface boundary, so escape analysis would heap-allocate them per
// call. Callers on the hot path keep one Scratch per worker (the
// Shield's seal scratch does); a zero Scratch is ready for use.
type Scratch struct {
	sigma, tmp, enc, final, tag [16]byte
}

// Sum computes the 16-byte PMAC tag of msg. It allocates a transient
// scratch; hot paths should hold a Scratch and call SumWith.
func (m *MAC) Sum(msg []byte) [TagSize]byte {
	var sc Scratch
	return m.SumWith(&sc, msg)
}

// SumWith computes the 16-byte PMAC tag of msg using caller scratch,
// allocating nothing. The offset doubling and all XOR folds operate on
// big-endian uint64 halves — bit-identical to the byte-wise reference
// (the property tests against Sum and the committed fuzz corpus pin
// this) but ~4x cheaper per block, which matters because SumWith is the
// single hottest function on the real seal/open path.
func (m *MAC) SumWith(sc *Scratch, msg []byte) [TagSize]byte {
	full := len(msg) / 16
	rem := len(msg) % 16
	lastFull := rem == 0 && full > 0
	n := full
	if lastFull {
		n-- // final full block is folded into the tag computation instead
	}
	deltaHi, deltaLo := m.lHi, m.lLo
	var sigmaHi, sigmaLo uint64
	for i := 0; i < n; i++ {
		deltaHi, deltaLo = doubleWords(deltaHi, deltaLo)
		blk := msg[i*16 : i*16+16]
		binary.BigEndian.PutUint64(sc.tmp[0:8], binary.BigEndian.Uint64(blk[0:8])^deltaHi)
		binary.BigEndian.PutUint64(sc.tmp[8:16], binary.BigEndian.Uint64(blk[8:16])^deltaLo)
		m.cipher.EncryptBlock(sc.enc[:], sc.tmp[:])
		sigmaHi ^= binary.BigEndian.Uint64(sc.enc[0:8])
		sigmaLo ^= binary.BigEndian.Uint64(sc.enc[8:16])
	}
	// Fold in the final block.
	if lastFull {
		blk := msg[len(msg)-16:]
		binary.BigEndian.PutUint64(sc.final[0:8], binary.BigEndian.Uint64(blk[0:8])^sigmaHi^m.lInvHi)
		binary.BigEndian.PutUint64(sc.final[8:16], binary.BigEndian.Uint64(blk[8:16])^sigmaLo^m.lInvLo)
	} else {
		// Pad 10* and do not apply the L/x offset (distinguishes lengths).
		sc.final = [16]byte{}
		copy(sc.final[:], msg[full*16:])
		sc.final[rem] = 0x80
		binary.BigEndian.PutUint64(sc.final[0:8], binary.BigEndian.Uint64(sc.final[0:8])^sigmaHi)
		binary.BigEndian.PutUint64(sc.final[8:16], binary.BigEndian.Uint64(sc.final[8:16])^sigmaLo)
	}
	m.cipher.EncryptBlock(sc.tag[:], sc.final[:])
	return sc.tag
}

// Verify reports whether tag authenticates msg, in constant time.
func (m *MAC) Verify(msg []byte, tag [TagSize]byte) bool {
	want := m.Sum(msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// VerifyWith reports whether tag authenticates msg using caller scratch,
// in constant time and without allocating.
func (m *MAC) VerifyWith(sc *Scratch, msg []byte, tag [TagSize]byte) bool {
	want := m.SumWith(sc, msg)
	return subtle.ConstantTimeCompare(want[:], tag[:]) == 1
}

// double multiplies a 128-bit block by x in GF(2^128) with the standard
// 0x87 reduction.
func double(b [16]byte) [16]byte {
	hi, lo := doubleWords(binary.BigEndian.Uint64(b[0:8]), binary.BigEndian.Uint64(b[8:16]))
	var out [16]byte
	binary.BigEndian.PutUint64(out[0:8], hi)
	binary.BigEndian.PutUint64(out[8:16], lo)
	return out
}

// doubleWords is double on big-endian uint64 halves.
func doubleWords(hi, lo uint64) (uint64, uint64) {
	msb := hi >> 63
	hi = hi<<1 | lo>>63
	lo <<= 1
	if msb != 0 {
		lo ^= 0x87
	}
	return hi, lo
}

// halve multiplies by x^-1 in GF(2^128).
func halve(b [16]byte) [16]byte {
	var out [16]byte
	low := b[15] & 1
	carry := byte(0)
	for i := 0; i < 16; i++ {
		out[i] = b[i]>>1 | carry<<7
		carry = b[i] & 1
	}
	if low != 0 {
		out[0] ^= 0x80
		out[15] ^= 0x43
	}
	return out
}

// Cycles is the cost of MACing n bytes on `engines` parallel PMAC engines,
// each processing one AES block per aesCyclesPerBlock cycles. The block
// computations distribute across engines; the final XOR-fold and tag
// encryption are a small serial tail.
func Cycles(n int, engines int, aesCyclesPerBlock uint64) uint64 {
	if engines < 1 {
		engines = 1
	}
	blocks := (n + 15) / 16
	if blocks == 0 {
		blocks = 1
	}
	waves := uint64((blocks + engines - 1) / engines)
	return waves*aesCyclesPerBlock + aesCyclesPerBlock // parallel phase + final tag block
}
