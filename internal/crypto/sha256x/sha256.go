// Package sha256x implements the SHA-256 hash function (FIPS 180-4) from
// scratch, together with a cycle-cost model for the Shield's hardware hash
// core.
//
// ShEF's Shield authenticates off-chip data with HMAC-SHA256 (paper §5.1);
// the Bitcoin accelerator (paper §6.2.4) performs double-SHA-256 mining.
// Both consume this package. The implementation is self-contained so that
// the repository carries its own substrate, and it is validated against the
// FIPS 180-4 test vectors in sha256_test.go.
package sha256x

import "encoding/binary"

// Size is the length of a SHA-256 digest in bytes.
const Size = 32

// BlockSize is the SHA-256 message block size in bytes.
const BlockSize = 64

// k holds the SHA-256 round constants: the first 32 bits of the fractional
// parts of the cube roots of the first 64 primes.
var k = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// Digest computes the SHA-256 digest of msg.
func Digest(msg []byte) [Size]byte {
	var d State
	d.Reset()
	d.Write(msg)
	return d.Sum()
}

// DoubleDigest computes SHA-256(SHA-256(msg)), the Bitcoin block-header hash.
func DoubleDigest(msg []byte) [Size]byte {
	first := Digest(msg)
	return Digest(first[:])
}

// State is an incremental SHA-256 computation. The zero value is not ready
// for use; call Reset first (or use New).
type State struct {
	h      [8]uint32
	buf    [BlockSize]byte
	nbuf   int
	length uint64 // total message length in bytes
}

// New returns a State initialised to the SHA-256 IV.
func New() *State {
	var s State
	s.Reset()
	return &s
}

// Reset restores the initial hash value H(0).
func (s *State) Reset() {
	s.h = [8]uint32{
		0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
		0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
	}
	s.nbuf = 0
	s.length = 0
}

// Write absorbs p into the hash state. It never fails.
func (s *State) Write(p []byte) (int, error) {
	n := len(p)
	s.length += uint64(n)
	if s.nbuf > 0 {
		c := copy(s.buf[s.nbuf:], p)
		s.nbuf += c
		p = p[c:]
		if s.nbuf == BlockSize {
			s.block(s.buf[:])
			s.nbuf = 0
		}
	}
	for len(p) >= BlockSize {
		s.block(p[:BlockSize])
		p = p[BlockSize:]
	}
	if len(p) > 0 {
		s.nbuf = copy(s.buf[:], p)
	}
	return n, nil
}

// Sum finalises a copy of the state and returns the digest. The receiver
// remains usable for further writes.
func (s *State) Sum() [Size]byte {
	var out [Size]byte
	s.SumInto(&out)
	return out
}

// SumInto finalises a copy of the state into out without allocating,
// for callers (HMAC state pooling) that hold their own digest scratch.
// The receiver remains usable for further writes.
func (s *State) SumInto(out *[Size]byte) {
	d := *s
	var pad [BlockSize + 8]byte
	pad[0] = 0x80
	padLen := BlockSize - int(d.length%BlockSize)
	if padLen < 9 {
		padLen += BlockSize
	}
	binary.BigEndian.PutUint64(pad[padLen-8:padLen], d.length*8)
	d.Write(pad[:padLen])
	for i, v := range d.h {
		binary.BigEndian.PutUint32(out[i*4:], v)
	}
}

// block runs the 64-round compression function over one 64-byte block.
func (s *State) block(p []byte) {
	var w [64]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[i*4:])
	}
	for i := 16; i < 64; i++ {
		s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ (w[i-15] >> 3)
		s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ (w[i-2] >> 10)
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}
	a, b, c, d, e, f, g, h := s.h[0], s.h[1], s.h[2], s.h[3], s.h[4], s.h[5], s.h[6], s.h[7]
	for i := 0; i < 64; i++ {
		S1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := (e & f) ^ (^e & g)
		t1 := h + S1 + ch + k[i] + w[i]
		S0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := (a & b) ^ (a & c) ^ (b & c)
		t2 := S0 + maj
		h, g, f, e, d, c, b, a = g, f, e, d+t1, c, b, a, t1+t2
	}
	s.h[0] += a
	s.h[1] += b
	s.h[2] += c
	s.h[3] += d
	s.h[4] += e
	s.h[5] += f
	s.h[6] += g
	s.h[7] += h
}

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

// CyclesPerBlock is the cycle cost of one 64-byte compression in the
// Shield's SHA-256 core: one round per cycle plus schedule/setup. The core
// is inherently serial: each block's output chains into the next, so a
// single HMAC stream cannot be accelerated by adding engines (paper §6.2.3,
// where HMAC is the SDP bottleneck).
const CyclesPerBlock = 68

// Cycles returns the cycle cost of hashing n message bytes, including the
// padding block(s).
func Cycles(n int) uint64 {
	blocks := (n + 9 + BlockSize - 1) / BlockSize
	return uint64(blocks) * CyclesPerBlock
}
