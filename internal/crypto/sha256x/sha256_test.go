package sha256x

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"testing"
	"testing/quick"
)

// FIPS 180-4 / NIST example vectors.
var vectors = []struct {
	in  string
	out string
}{
	{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
	{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
	{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
		"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	{"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
		"cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"},
}

func TestVectors(t *testing.T) {
	for _, v := range vectors {
		got := Digest([]byte(v.in))
		if hex.EncodeToString(got[:]) != v.out {
			t.Errorf("Digest(%q) = %x, want %s", v.in, got, v.out)
		}
	}
}

func TestMillionA(t *testing.T) {
	msg := bytes.Repeat([]byte{'a'}, 1_000_000)
	got := Digest(msg)
	want := "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("million-a digest = %x, want %s", got, want)
	}
}

// TestAgainstStdlib cross-checks the from-scratch implementation against
// crypto/sha256 on random inputs of every small length.
func TestAgainstStdlib(t *testing.T) {
	f := func(msg []byte) bool {
		got := Digest(msg)
		want := sha256.Sum256(msg)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrementalWrite(t *testing.T) {
	msg := []byte("the quick brown fox jumps over the lazy dog, repeatedly, for a while longer than one block")
	whole := Digest(msg)
	for split := 0; split <= len(msg); split += 7 {
		s := New()
		s.Write(msg[:split])
		s.Write(msg[split:])
		if got := s.Sum(); got != whole {
			t.Fatalf("split at %d: digest mismatch", split)
		}
	}
}

func TestSumDoesNotDisturbStream(t *testing.T) {
	s := New()
	s.Write([]byte("hello "))
	_ = s.Sum()
	s.Write([]byte("world"))
	if got, want := s.Sum(), Digest([]byte("hello world")); got != want {
		t.Fatalf("Sum mid-stream disturbed state: %x != %x", got, want)
	}
}

func TestDoubleDigest(t *testing.T) {
	first := sha256.Sum256([]byte("block"))
	want := sha256.Sum256(first[:])
	if got := DoubleDigest([]byte("block")); got != want {
		t.Fatalf("DoubleDigest mismatch")
	}
}

func TestCycles(t *testing.T) {
	cases := []struct {
		n      int
		blocks uint64
	}{
		{0, 1}, {55, 1}, {56, 2}, {64, 2}, {119, 2}, {120, 3},
	}
	for _, c := range cases {
		if got := Cycles(c.n); got != c.blocks*CyclesPerBlock {
			t.Errorf("Cycles(%d) = %d, want %d blocks", c.n, got, c.blocks)
		}
	}
}

func BenchmarkDigest1K(b *testing.B) {
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Digest(msg)
	}
}
