// Package axi defines the transaction-level model of the AXI4 and
// AXI4-Lite interfaces the Shell exposes to accelerators (paper §5.1).
//
// The Shield is "a wrapper module that transparently secures these
// interfaces": it presents the same MemoryPort/RegisterPort shapes to the
// accelerator that the Shell presents to it, so accelerators are oblivious
// to whether they run shielded or bare.
package axi

import "fmt"

// MemoryPort is the AXI4 full interface at transaction level: burst reads
// and writes against device memory. Implementations return the simulated
// cycle cost of the transaction.
type MemoryPort interface {
	// ReadBurst fills buf from addr.
	ReadBurst(addr uint64, buf []byte) (cycles uint64, err error)
	// WriteBurst stores data at addr.
	WriteBurst(addr uint64, data []byte) (cycles uint64, err error)
}

// RegisterPort is the AXI4-Lite interface: single-beat access to
// memory-mapped registers. Registers are 64-bit.
type RegisterPort interface {
	ReadReg(index int) (value uint64, cycles uint64, err error)
	WriteReg(index int, value uint64) (cycles uint64, err error)
}

// Streamer is an optional MemoryPort extension for bulk multi-chunk
// transfers: implementations pipeline the burst (batched fetch, engine
// fan-out, overlapped stages) instead of serving it beat by beat. The
// Shield's streaming data path implements it; plain DRAM does not need to.
type Streamer interface {
	ReadStream(addr uint64, buf []byte) (cycles uint64, err error)
	WriteStream(addr uint64, data []byte) (cycles uint64, err error)
}

// StreamWindows drives one streamed transfer of n bytes at addr inside a
// region whose chunks are chunkSize bytes and start chunk-aligned at
// base: an unaligned head and tail go through fallback (the chunked
// path), and the chunk-aligned middle is processed in windows of up to
// windowChunks chunks. fallback and window receive the absolute address
// plus the [lo, hi) byte range of the caller's buffer; window's first
// flag marks the first window of the stream (pipeline fill accounting).
// Returns the summed cycle counts.
func StreamWindows(base, addr uint64, n, chunkSize, windowChunks int,
	fallback func(addr uint64, lo, hi int) (uint64, error),
	window func(addr uint64, lo, hi int, first bool) (uint64, error)) (uint64, error) {

	head := 0
	if r := int((addr - base) % uint64(chunkSize)); r != 0 {
		head = chunkSize - r
		if head > n {
			head = n
		}
	}
	mid := (n - head) / chunkSize * chunkSize
	var total uint64
	if head > 0 {
		c, err := fallback(addr, 0, head)
		total += c
		if err != nil {
			return total, err
		}
	}
	windowBytes := windowChunks * chunkSize
	done := head
	for first := true; done < head+mid; first = false {
		w := head + mid - done
		if w > windowBytes {
			w = windowBytes
		}
		c, err := window(addr+uint64(done), done, done+w, first)
		total += c
		if err != nil {
			return total, err
		}
		done += w
	}
	if done < n {
		c, err := fallback(addr+uint64(done), done, n)
		total += c
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Gatherer is an optional MemoryPort extension for scatter-gather bulk
// transfers: the runs — disjoint, ascending, chunk-aligned where the port
// requires it — travel as ONE pipelined stream, so the pipeline fill/drain
// cost is paid once per gather instead of once per run. buf/data pack the
// runs back to back in order. The Shield's stream engine implements it;
// Path ORAM uses it to move a whole root-to-leaf path per access.
type Gatherer interface {
	ReadGather(runs []Burst, buf []byte) (cycles uint64, err error)
	WriteGather(runs []Burst, data []byte) (cycles uint64, err error)
}

// checkGather validates what every gather implementation must hold: runs
// with positive lengths whose total matches the packed buffer. (Ports add
// their own constraints on top — the Shield also requires chunk-aligned,
// ascending, disjoint runs.)
func checkGather(runs []Burst, n int) error {
	total := 0
	for _, r := range runs {
		if r.Len <= 0 {
			return fmt.Errorf("axi: gather run %v has no length", r)
		}
		total += r.Len
	}
	if total != n {
		return fmt.Errorf("axi: gather buffer %d bytes, runs carry %d", n, total)
	}
	return nil
}

// ReadGatherAuto reads the runs through the port's gather engine when it
// has one, falling back to one ReadAuto per run.
func ReadGatherAuto(p MemoryPort, runs []Burst, buf []byte) (uint64, error) {
	if err := checkGather(runs, len(buf)); err != nil {
		return 0, err
	}
	if g, ok := p.(Gatherer); ok {
		return g.ReadGather(runs, buf)
	}
	var total uint64
	off := 0
	for _, r := range runs {
		c, err := ReadAuto(p, r.Addr, buf[off:off+r.Len])
		total += c
		if err != nil {
			return total, err
		}
		off += r.Len
	}
	return total, nil
}

// WriteGatherAuto writes the runs through the port's gather engine when it
// has one, falling back to one WriteAuto per run.
func WriteGatherAuto(p MemoryPort, runs []Burst, data []byte) (uint64, error) {
	if err := checkGather(runs, len(data)); err != nil {
		return 0, err
	}
	if g, ok := p.(Gatherer); ok {
		return g.WriteGather(runs, data)
	}
	var total uint64
	off := 0
	for _, r := range runs {
		c, err := WriteAuto(p, r.Addr, data[off:off+r.Len])
		total += c
		if err != nil {
			return total, err
		}
		off += r.Len
	}
	return total, nil
}

// ForEachRun groups ascending indices into maximal contiguous runs and
// invokes fn(i0, n) for each run of n consecutive indices starting at
// i0. Streaming ports use it to coalesce chunk fetches into batched
// transactions.
func ForEachRun(idx []int, fn func(i0, n int) error) error {
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && idx[j+1] == idx[j]+1 {
			j++
		}
		if err := fn(idx[i], j-i+1); err != nil {
			return err
		}
		i = j + 1
	}
	return nil
}

// ForEachRunCapped is ForEachRun with a ceiling on the run length: maximal
// contiguous runs longer than max indices are split into max-sized
// windows. Batched write-back uses it to bound how many chunks one
// pipelined store transaction carries. max < 1 means uncapped.
func ForEachRunCapped(idx []int, max int, fn func(i0, n int) error) error {
	return ForEachRun(idx, func(i0, n int) error {
		if max < 1 {
			return fn(i0, n)
		}
		for off := 0; off < n; off += max {
			w := n - off
			if w > max {
				w = max
			}
			if err := fn(i0+off, w); err != nil {
				return err
			}
		}
		return nil
	})
}

// BurstsFor is the number of AXI transactions a transfer of n bytes
// legalises into (MaxBurstBytes each): batched streams pay the request
// latency once per legal burst, not once per chunk.
func BurstsFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + MaxBurstBytes - 1) / MaxBurstBytes
}

// ReadAuto reads through the port's streaming path when it has one,
// falling back to a plain burst. Accelerators use it for bulk transfers
// so the same code runs shielded (pipelined) and bare.
func ReadAuto(p MemoryPort, addr uint64, buf []byte) (uint64, error) {
	if st, ok := p.(Streamer); ok {
		return st.ReadStream(addr, buf)
	}
	return p.ReadBurst(addr, buf)
}

// WriteAuto writes through the port's streaming path when it has one.
func WriteAuto(p MemoryPort, addr uint64, data []byte) (uint64, error) {
	if st, ok := p.(Streamer); ok {
		return st.WriteStream(addr, data)
	}
	return p.WriteBurst(addr, data)
}

// MaxBurstBytes is the largest legal AXI4 burst (256 beats of 64 bytes).
const MaxBurstBytes = 256 * 64

// SplitBurst decomposes an arbitrarily long transfer into legal AXI bursts
// that do not cross chunk boundaries of the given alignment. align == 0
// means only the AXI maximum applies.
func SplitBurst(addr uint64, n int, align int) []Burst {
	var out []Burst
	for n > 0 {
		take := n
		if take > MaxBurstBytes {
			take = MaxBurstBytes
		}
		if align > 0 {
			boundary := int(uint64(align) - addr%uint64(align))
			if take > boundary {
				take = boundary
			}
		}
		out = append(out, Burst{Addr: addr, Len: take})
		addr += uint64(take)
		n -= take
	}
	return out
}

// Burst is one AXI4 transaction.
type Burst struct {
	Addr uint64
	Len  int
}

func (b Burst) String() string { return fmt.Sprintf("[%#x +%d]", b.Addr, b.Len) }

// CheckedPort wraps a MemoryPort with address-range enforcement; the Shell
// uses it to fence accelerators into their allocated region, and tests use
// it to assert the Shield never touches memory outside its partitions.
type CheckedPort struct {
	Inner MemoryPort
	Base  uint64
	Limit uint64 // exclusive
}

// ReadBurst implements MemoryPort.
func (c *CheckedPort) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	if err := c.check(addr, len(buf)); err != nil {
		return 0, err
	}
	return c.Inner.ReadBurst(addr, buf)
}

// WriteBurst implements MemoryPort.
func (c *CheckedPort) WriteBurst(addr uint64, data []byte) (uint64, error) {
	if err := c.check(addr, len(data)); err != nil {
		return 0, err
	}
	return c.Inner.WriteBurst(addr, data)
}

// ReadStream implements Streamer by delegating to the inner port's
// streaming path when it has one, so fencing a Shield behind a CheckedPort
// does not silently degrade ReadAuto/WriteAuto to the chunked path.
func (c *CheckedPort) ReadStream(addr uint64, buf []byte) (uint64, error) {
	if err := c.check(addr, len(buf)); err != nil {
		return 0, err
	}
	return ReadAuto(c.Inner, addr, buf)
}

// WriteStream implements Streamer (see ReadStream).
func (c *CheckedPort) WriteStream(addr uint64, data []byte) (uint64, error) {
	if err := c.check(addr, len(data)); err != nil {
		return 0, err
	}
	return WriteAuto(c.Inner, addr, data)
}

// ReadGather implements Gatherer by delegating to the inner port (see
// ReadStream): every run is fenced individually.
func (c *CheckedPort) ReadGather(runs []Burst, buf []byte) (uint64, error) {
	for _, r := range runs {
		if err := c.check(r.Addr, r.Len); err != nil {
			return 0, err
		}
	}
	return ReadGatherAuto(c.Inner, runs, buf)
}

// WriteGather implements Gatherer (see ReadGather).
func (c *CheckedPort) WriteGather(runs []Burst, data []byte) (uint64, error) {
	for _, r := range runs {
		if err := c.check(r.Addr, r.Len); err != nil {
			return 0, err
		}
	}
	return WriteGatherAuto(c.Inner, runs, data)
}

func (c *CheckedPort) check(addr uint64, n int) error {
	if addr < c.Base || addr+uint64(n) > c.Limit {
		return fmt.Errorf("axi: access [%#x,+%d) outside window [%#x,%#x)", addr, n, c.Base, c.Limit)
	}
	return nil
}
