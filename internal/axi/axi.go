// Package axi defines the transaction-level model of the AXI4 and
// AXI4-Lite interfaces the Shell exposes to accelerators (paper §5.1).
//
// The Shield is "a wrapper module that transparently secures these
// interfaces": it presents the same MemoryPort/RegisterPort shapes to the
// accelerator that the Shell presents to it, so accelerators are oblivious
// to whether they run shielded or bare.
package axi

import "fmt"

// MemoryPort is the AXI4 full interface at transaction level: burst reads
// and writes against device memory. Implementations return the simulated
// cycle cost of the transaction.
type MemoryPort interface {
	// ReadBurst fills buf from addr.
	ReadBurst(addr uint64, buf []byte) (cycles uint64, err error)
	// WriteBurst stores data at addr.
	WriteBurst(addr uint64, data []byte) (cycles uint64, err error)
}

// RegisterPort is the AXI4-Lite interface: single-beat access to
// memory-mapped registers. Registers are 64-bit.
type RegisterPort interface {
	ReadReg(index int) (value uint64, cycles uint64, err error)
	WriteReg(index int, value uint64) (cycles uint64, err error)
}

// MaxBurstBytes is the largest legal AXI4 burst (256 beats of 64 bytes).
const MaxBurstBytes = 256 * 64

// SplitBurst decomposes an arbitrarily long transfer into legal AXI bursts
// that do not cross chunk boundaries of the given alignment. align == 0
// means only the AXI maximum applies.
func SplitBurst(addr uint64, n int, align int) []Burst {
	var out []Burst
	for n > 0 {
		take := n
		if take > MaxBurstBytes {
			take = MaxBurstBytes
		}
		if align > 0 {
			boundary := int(uint64(align) - addr%uint64(align))
			if take > boundary {
				take = boundary
			}
		}
		out = append(out, Burst{Addr: addr, Len: take})
		addr += uint64(take)
		n -= take
	}
	return out
}

// Burst is one AXI4 transaction.
type Burst struct {
	Addr uint64
	Len  int
}

func (b Burst) String() string { return fmt.Sprintf("[%#x +%d]", b.Addr, b.Len) }

// CheckedPort wraps a MemoryPort with address-range enforcement; the Shell
// uses it to fence accelerators into their allocated region, and tests use
// it to assert the Shield never touches memory outside its partitions.
type CheckedPort struct {
	Inner MemoryPort
	Base  uint64
	Limit uint64 // exclusive
}

// ReadBurst implements MemoryPort.
func (c *CheckedPort) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	if err := c.check(addr, len(buf)); err != nil {
		return 0, err
	}
	return c.Inner.ReadBurst(addr, buf)
}

// WriteBurst implements MemoryPort.
func (c *CheckedPort) WriteBurst(addr uint64, data []byte) (uint64, error) {
	if err := c.check(addr, len(data)); err != nil {
		return 0, err
	}
	return c.Inner.WriteBurst(addr, data)
}

func (c *CheckedPort) check(addr uint64, n int) error {
	if addr < c.Base || addr+uint64(n) > c.Limit {
		return fmt.Errorf("axi: access [%#x,+%d) outside window [%#x,%#x)", addr, n, c.Base, c.Limit)
	}
	return nil
}
