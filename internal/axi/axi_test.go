package axi

import (
	"testing"
	"testing/quick"

	"shef/internal/mem"
	"shef/internal/perf"
)

func TestSplitBurstCoversRange(t *testing.T) {
	f := func(addr uint32, n uint16, alignPow uint8) bool {
		align := 0
		if alignPow%4 != 0 {
			align = 1 << (6 + alignPow%6) // 64..2048
		}
		bursts := SplitBurst(uint64(addr), int(n), align)
		next := uint64(addr)
		total := 0
		for _, b := range bursts {
			if b.Addr != next || b.Len <= 0 || b.Len > MaxBurstBytes {
				return false
			}
			if align > 0 && b.Addr/uint64(align) != (b.Addr+uint64(b.Len)-1)/uint64(align) {
				return false // burst crosses an alignment boundary
			}
			next += uint64(b.Len)
			total += b.Len
		}
		return total == int(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitBurstZero(t *testing.T) {
	if got := SplitBurst(0x100, 0, 64); got != nil {
		t.Fatalf("SplitBurst of zero length = %v, want nil", got)
	}
}

func TestSplitBurstAligned(t *testing.T) {
	bursts := SplitBurst(0x10, 0x100, 64)
	// 0x10..0x40 (48), then 64-byte chunks, then remainder.
	if bursts[0].Len != 48 {
		t.Fatalf("first burst %v, want len 48 up to the 64B boundary", bursts[0])
	}
}

func TestCheckedPort(t *testing.T) {
	d := mem.NewDRAM(1<<20, perf.Default())
	p := &CheckedPort{Inner: d, Base: 0x1000, Limit: 0x2000}
	if _, err := p.WriteBurst(0x1000, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.WriteBurst(0x0FF0, make([]byte, 16)); err == nil {
		t.Fatal("write below window accepted")
	}
	if _, err := p.ReadBurst(0x1FF8, make([]byte, 16)); err == nil {
		t.Fatal("read straddling limit accepted")
	}
	if _, err := p.ReadBurst(0x1FF0, make([]byte, 16)); err != nil {
		t.Fatal("in-window read rejected")
	}
}

// streamSpy wraps a MemoryPort and records whether the streaming path ran.
type streamSpy struct {
	MemoryPort
	streamed bool
}

func (s *streamSpy) ReadStream(addr uint64, buf []byte) (uint64, error) {
	s.streamed = true
	return s.MemoryPort.ReadBurst(addr, buf)
}

func (s *streamSpy) WriteStream(addr uint64, data []byte) (uint64, error) {
	s.streamed = true
	return s.MemoryPort.WriteBurst(addr, data)
}

func TestReadWriteAutoDispatch(t *testing.T) {
	d := mem.NewDRAM(1<<20, perf.Default())
	// Plain port: falls back to bursts.
	if _, err := WriteAuto(d, 0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := ReadAuto(d, 0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 1 || buf[2] != 3 {
		t.Fatal("fallback roundtrip lost data")
	}
	// Streaming port: dispatches to the streamer.
	spy := &streamSpy{MemoryPort: d}
	if _, err := WriteAuto(spy, 0, []byte{9}); err != nil {
		t.Fatal(err)
	}
	if !spy.streamed {
		t.Fatal("WriteAuto ignored the streaming path")
	}
	spy.streamed = false
	if _, err := ReadAuto(spy, 0, buf[:1]); err != nil {
		t.Fatal(err)
	}
	if !spy.streamed {
		t.Fatal("ReadAuto ignored the streaming path")
	}
}

func TestForEachRunCapped(t *testing.T) {
	collect := func(idx []int, max int) [][2]int {
		var runs [][2]int
		if err := ForEachRunCapped(idx, max, func(i0, n int) error {
			runs = append(runs, [2]int{i0, n})
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return runs
	}
	cases := []struct {
		idx  []int
		max  int
		want [][2]int
	}{
		{nil, 4, nil},
		{[]int{7}, 4, [][2]int{{7, 1}}},
		// One long run splits into max-sized windows plus the remainder.
		{[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 4, [][2]int{{0, 4}, {4, 4}, {8, 2}}},
		// Gaps still delimit runs; the cap applies within each run.
		{[]int{1, 2, 3, 10, 11, 12, 13, 14, 20}, 3, [][2]int{{1, 3}, {10, 3}, {13, 2}, {20, 1}}},
		// max < 1 means uncapped: identical to ForEachRun.
		{[]int{5, 6, 7, 9}, 0, [][2]int{{5, 3}, {9, 1}}},
		// A cap of one degenerates to per-index calls.
		{[]int{3, 4, 5}, 1, [][2]int{{3, 1}, {4, 1}, {5, 1}}},
	}
	for i, c := range cases {
		got := collect(c.idx, c.max)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: runs %v, want %v", i, got, c.want)
		}
		for j := range got {
			if got[j] != c.want[j] {
				t.Fatalf("case %d: runs %v, want %v", i, got, c.want)
			}
		}
	}
}

// gatherSpy wraps a MemoryPort and records whether the gather path ran.
type gatherSpy struct {
	MemoryPort
	gathered bool
}

func (g *gatherSpy) ReadGather(runs []Burst, buf []byte) (uint64, error) {
	g.gathered = true
	return ReadGatherAuto(g.MemoryPort, runs, buf)
}

func (g *gatherSpy) WriteGather(runs []Burst, data []byte) (uint64, error) {
	g.gathered = true
	return WriteGatherAuto(g.MemoryPort, runs, data)
}

func TestGatherAutoDispatch(t *testing.T) {
	d := mem.NewDRAM(1<<20, perf.Default())
	runs := []Burst{{Addr: 0, Len: 4}, {Addr: 64, Len: 8}, {Addr: 256, Len: 4}}
	packed := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	// Plain port: one WriteAuto per run, scattered to the right addresses.
	if _, err := WriteGatherAuto(d, runs, packed); err != nil {
		t.Fatal(err)
	}
	var probe [8]byte
	if _, err := d.ReadBurst(64, probe[:]); err != nil {
		t.Fatal(err)
	}
	if probe[0] != 5 || probe[7] != 12 {
		t.Fatalf("scattered write misplaced: %v", probe)
	}
	// And gathered back in run order.
	got := make([]byte, len(packed))
	if _, err := ReadGatherAuto(d, runs, got); err != nil {
		t.Fatal(err)
	}
	for i := range packed {
		if got[i] != packed[i] {
			t.Fatalf("gather read byte %d: got %d want %d", i, got[i], packed[i])
		}
	}
	// Gather-capable port: dispatches to the gather engine.
	spy := &gatherSpy{MemoryPort: d}
	if _, err := WriteGatherAuto(spy, runs, packed); err != nil {
		t.Fatal(err)
	}
	if !spy.gathered {
		t.Fatal("WriteGatherAuto ignored the gather path")
	}
	spy.gathered = false
	if _, err := ReadGatherAuto(spy, runs, got); err != nil {
		t.Fatal(err)
	}
	if !spy.gathered {
		t.Fatal("ReadGatherAuto ignored the gather path")
	}
}

// TestCheckedPortStreamAndGather: fencing a streaming/gathering port keeps
// the fast paths (no silent degradation to chunked bursts) while every run
// is still bounds-checked.
func TestCheckedPortStreamAndGather(t *testing.T) {
	d := mem.NewDRAM(1<<20, perf.Default())
	spy := &gatherSpy{MemoryPort: d}
	cp := &CheckedPort{Inner: spy, Base: 0, Limit: 1 << 12}
	runs := []Burst{{Addr: 0, Len: 8}, {Addr: 128, Len: 8}}
	if _, err := cp.WriteGather(runs, make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	if !spy.gathered {
		t.Fatal("CheckedPort dropped the inner gather path")
	}
	bad := []Burst{{Addr: 0, Len: 8}, {Addr: 1 << 12, Len: 8}}
	if _, err := cp.ReadGather(bad, make([]byte, 16)); err == nil {
		t.Fatal("out-of-window gather run accepted")
	}
	// Streamer passthrough (ReadAuto sees a Streamer and must not lose it).
	sspy := &streamSpy{MemoryPort: d}
	scp := &CheckedPort{Inner: sspy, Base: 0, Limit: 1 << 12}
	if _, err := ReadAuto(scp, 0, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	if !sspy.streamed {
		t.Fatal("CheckedPort dropped the inner streaming path")
	}
	if _, err := scp.WriteStream(1<<12, make([]byte, 8)); err == nil {
		t.Fatal("out-of-window stream accepted")
	}
}
