// Package mem provides the simulated memory substrate: off-chip device
// DRAM (untrusted in ShEF's threat model) and on-chip BRAM/URAM (trusted,
// capacity-accounted).
//
// The DRAM stores real bytes — after the Shield is interposed those bytes
// are ciphertext plus MAC tags — and additionally exposes the attack
// surface the paper's adversary has: arbitrary reads (snooping), writes
// (spoofing/splicing), and snapshot/restore (replay). The Shield's security
// tests drive those hooks directly.
package mem

import (
	"fmt"
	"sync"

	"shef/internal/perf"
)

// DRAM is a byte-addressable off-chip memory with a bandwidth/latency cycle
// model. Storage is allocated page-wise on first touch so a 64 GB device
// memory can be declared without committing 64 GB of host RAM.
type DRAM struct {
	mu     sync.Mutex
	size   uint64
	pages  map[uint64][]byte
	params perf.Params

	// Statistics, for benchmarks and the DESIGN.md ablations.
	readBytes  uint64
	writeBytes uint64
	reads      uint64
	writes     uint64
}

const pageSize = 1 << 16

// NewDRAM creates a DRAM of the given byte size with the cycle parameters.
func NewDRAM(size uint64, params perf.Params) *DRAM {
	return &DRAM{size: size, pages: make(map[uint64][]byte), params: params}
}

// Size reports the memory capacity in bytes.
func (d *DRAM) Size() uint64 { return d.size }

// ReadBurst reads len(buf) bytes at addr and returns the simulated cycle
// cost of the burst.
func (d *DRAM) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	if err := d.check(addr, len(buf)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.copyOut(addr, buf)
	d.reads++
	d.readBytes += uint64(len(buf))
	d.mu.Unlock()
	return d.params.DRAMCycles(len(buf)), nil
}

// WriteBurst writes data at addr and returns the simulated cycle cost.
func (d *DRAM) WriteBurst(addr uint64, data []byte) (uint64, error) {
	if err := d.check(addr, len(data)); err != nil {
		return 0, err
	}
	d.mu.Lock()
	d.copyIn(addr, data)
	d.writes++
	d.writeBytes += uint64(len(data))
	d.mu.Unlock()
	return d.params.DRAMCycles(len(data)), nil
}

// RawRead performs an adversarial read: no cycle accounting, no statistics.
// This models physical bus probing or a malicious Shell (paper §2.5).
func (d *DRAM) RawRead(addr uint64, n int) ([]byte, error) {
	if err := d.check(addr, n); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	d.mu.Lock()
	d.copyOut(addr, buf)
	d.mu.Unlock()
	return buf, nil
}

// RawWrite performs an adversarial write (spoofing attack).
func (d *DRAM) RawWrite(addr uint64, data []byte) error {
	if err := d.check(addr, len(data)); err != nil {
		return err
	}
	d.mu.Lock()
	d.copyIn(addr, data)
	d.mu.Unlock()
	return nil
}

// Snapshot copies out a region so an adversary can later replay it.
func (d *DRAM) Snapshot(addr uint64, n int) ([]byte, error) {
	return d.RawRead(addr, n)
}

// Restore writes back a snapshot (replay attack).
func (d *DRAM) Restore(addr uint64, snap []byte) error {
	return d.RawWrite(addr, snap)
}

// Stats reports cumulative traffic counters.
func (d *DRAM) Stats() (reads, writes, readBytes, writeBytes uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.reads, d.writes, d.readBytes, d.writeBytes
}

// ResetStats zeroes the traffic counters.
func (d *DRAM) ResetStats() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.reads, d.writes, d.readBytes, d.writeBytes = 0, 0, 0, 0
}

func (d *DRAM) check(addr uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("mem: negative length %d", n)
	}
	if addr+uint64(n) > d.size || addr+uint64(n) < addr {
		return fmt.Errorf("mem: access [%#x, %#x) outside DRAM of size %#x", addr, addr+uint64(n), d.size)
	}
	return nil
}

func (d *DRAM) page(idx uint64) []byte {
	p, ok := d.pages[idx]
	if !ok {
		p = make([]byte, pageSize)
		d.pages[idx] = p
	}
	return p
}

func (d *DRAM) copyOut(addr uint64, buf []byte) {
	for off := 0; off < len(buf); {
		pidx := (addr + uint64(off)) / pageSize
		poff := (addr + uint64(off)) % pageSize
		n := copy(buf[off:], d.page(pidx)[poff:])
		off += n
	}
}

func (d *DRAM) copyIn(addr uint64, data []byte) {
	for off := 0; off < len(data); {
		pidx := (addr + uint64(off)) / pageSize
		poff := (addr + uint64(off)) % pageSize
		n := copy(d.page(pidx)[poff:], data[off:])
		off += n
	}
}
