// Package mem provides the simulated memory substrate: off-chip device
// DRAM (untrusted in ShEF's threat model) and on-chip BRAM/URAM (trusted,
// capacity-accounted).
//
// The DRAM stores real bytes — after the Shield is interposed those bytes
// are ciphertext plus MAC tags — and additionally exposes the attack
// surface the paper's adversary has: arbitrary reads (snooping), writes
// (spoofing/splicing), and snapshot/restore (replay). The Shield's security
// tests drive those hooks directly.
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"shef/internal/perf"
)

// DRAM is a byte-addressable off-chip memory with a bandwidth/latency cycle
// model. Storage is allocated page-wise on first touch so a 64 GB device
// memory can be declared without committing 64 GB of host RAM.
//
// Locking is striped by page, the software analogue of the device's
// channel/bank parallelism: engine sets whose regions live on different
// channels touch disjoint pages and therefore disjoint stripes, so they
// proceed without lock contention — matching Report.MemoryCycles, where
// regions on different channels do not contend for bandwidth. Traffic
// statistics are atomics for the same reason.
type DRAM struct {
	size    uint64
	params  perf.Params
	stripes [dramStripes]dramStripe

	// Statistics, for benchmarks and the DESIGN.md ablations.
	readBytes  atomic.Uint64
	writeBytes atomic.Uint64
	reads      atomic.Uint64
	writes     atomic.Uint64
}

type dramStripe struct {
	mu    sync.Mutex
	pages map[uint64][]byte
}

const (
	pageSize = 1 << 16
	// dramStripes is the lock-striping factor. 64 stripes over 64 KB pages
	// keeps adjacent regions on separate locks while the array of mutexes
	// stays trivially small.
	dramStripes = 64
)

// NewDRAM creates a DRAM of the given byte size with the cycle parameters.
func NewDRAM(size uint64, params perf.Params) *DRAM {
	d := &DRAM{size: size, params: params}
	for i := range d.stripes {
		d.stripes[i].pages = make(map[uint64][]byte)
	}
	return d
}

// Size reports the memory capacity in bytes.
func (d *DRAM) Size() uint64 { return d.size }

// ReadBurst reads len(buf) bytes at addr and returns the simulated cycle
// cost of the burst.
func (d *DRAM) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	if err := d.check(addr, len(buf)); err != nil {
		return 0, err
	}
	d.copyOut(addr, buf)
	d.reads.Add(1)
	d.readBytes.Add(uint64(len(buf)))
	return d.params.DRAMCycles(len(buf)), nil
}

// WriteBurst writes data at addr and returns the simulated cycle cost.
func (d *DRAM) WriteBurst(addr uint64, data []byte) (uint64, error) {
	if err := d.check(addr, len(data)); err != nil {
		return 0, err
	}
	d.copyIn(addr, data)
	d.writes.Add(1)
	d.writeBytes.Add(uint64(len(data)))
	return d.params.DRAMCycles(len(data)), nil
}

// RawRead performs an adversarial read: no cycle accounting, no statistics.
// This models physical bus probing or a malicious Shell (paper §2.5).
func (d *DRAM) RawRead(addr uint64, n int) ([]byte, error) {
	if err := d.check(addr, n); err != nil {
		return nil, err
	}
	buf := make([]byte, n)
	d.copyOut(addr, buf)
	return buf, nil
}

// RawReadInto is RawRead into a caller-owned buffer — the host DMA path
// of a serving loop, where a fresh allocation per transfer would be the
// loop's only garbage.
func (d *DRAM) RawReadInto(addr uint64, buf []byte) error {
	if err := d.check(addr, len(buf)); err != nil {
		return err
	}
	d.copyOut(addr, buf)
	return nil
}

// RawWrite performs an adversarial write (spoofing attack).
func (d *DRAM) RawWrite(addr uint64, data []byte) error {
	if err := d.check(addr, len(data)); err != nil {
		return err
	}
	d.copyIn(addr, data)
	return nil
}

// Snapshot copies out a region so an adversary can later replay it.
func (d *DRAM) Snapshot(addr uint64, n int) ([]byte, error) {
	return d.RawRead(addr, n)
}

// Restore writes back a snapshot (replay attack).
func (d *DRAM) Restore(addr uint64, snap []byte) error {
	return d.RawWrite(addr, snap)
}

// Stats reports cumulative traffic counters.
func (d *DRAM) Stats() (reads, writes, readBytes, writeBytes uint64) {
	return d.reads.Load(), d.writes.Load(), d.readBytes.Load(), d.writeBytes.Load()
}

// ResetStats zeroes the traffic counters.
func (d *DRAM) ResetStats() {
	d.reads.Store(0)
	d.writes.Store(0)
	d.readBytes.Store(0)
	d.writeBytes.Store(0)
}

func (d *DRAM) check(addr uint64, n int) error {
	if n < 0 {
		return fmt.Errorf("mem: negative length %d", n)
	}
	if addr+uint64(n) > d.size || addr+uint64(n) < addr {
		return fmt.Errorf("mem: access [%#x, %#x) outside DRAM of size %#x", addr, addr+uint64(n), d.size)
	}
	return nil
}

func (d *DRAM) stripe(pidx uint64) *dramStripe {
	return &d.stripes[pidx%dramStripes]
}

// page returns the backing storage for a page, allocating on first touch.
// Callers hold the page's stripe lock.
func (s *dramStripe) page(idx uint64) []byte {
	p, ok := s.pages[idx]
	if !ok {
		p = make([]byte, pageSize)
		s.pages[idx] = p
	}
	return p
}

func (d *DRAM) copyOut(addr uint64, buf []byte) {
	for off := 0; off < len(buf); {
		pidx := (addr + uint64(off)) / pageSize
		poff := (addr + uint64(off)) % pageSize
		st := d.stripe(pidx)
		st.mu.Lock()
		n := copy(buf[off:], st.page(pidx)[poff:])
		st.mu.Unlock()
		off += n
	}
}

func (d *DRAM) copyIn(addr uint64, data []byte) {
	for off := 0; off < len(data); {
		pidx := (addr + uint64(off)) / pageSize
		poff := (addr + uint64(off)) % pageSize
		st := d.stripe(pidx)
		st.mu.Lock()
		n := copy(st.page(pidx)[poff:], data[off:])
		st.mu.Unlock()
		off += n
	}
}
