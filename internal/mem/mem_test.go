package mem

import (
	"bytes"
	"testing"
	"testing/quick"

	"shef/internal/perf"
)

func newDRAM() *DRAM { return NewDRAM(1<<24, perf.Default()) }

func TestReadWriteRoundTrip(t *testing.T) {
	d := newDRAM()
	data := []byte("shielded ciphertext goes here")
	if _, err := d.WriteBurst(0x1000, data); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	if _, err := d.ReadBurst(0x1000, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestZeroInitialised(t *testing.T) {
	d := newDRAM()
	buf := make([]byte, 64)
	d.ReadBurst(0xF0000, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("fresh DRAM not zeroed")
		}
	}
}

func TestCrossPageAccess(t *testing.T) {
	d := newDRAM()
	addr := uint64(pageSize - 10)
	data := bytes.Repeat([]byte{0xAB}, 64) // spans two pages
	d.WriteBurst(addr, data)
	buf := make([]byte, 64)
	d.ReadBurst(addr, buf)
	if !bytes.Equal(buf, data) {
		t.Fatal("cross-page access corrupted data")
	}
}

func TestOutOfBounds(t *testing.T) {
	d := NewDRAM(1024, perf.Default())
	if _, err := d.WriteBurst(1020, make([]byte, 8)); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
	if _, err := d.ReadBurst(1<<40, make([]byte, 1)); err == nil {
		t.Fatal("out-of-bounds read accepted")
	}
	if err := d.RawWrite(1020, make([]byte, 8)); err == nil {
		t.Fatal("out-of-bounds raw write accepted")
	}
}

func TestCycleAccounting(t *testing.T) {
	d := newDRAM()
	p := perf.Default()
	cyc, _ := d.WriteBurst(0, make([]byte, 4096))
	if cyc != p.DRAMCycles(4096) {
		t.Errorf("write cycles = %d, want %d", cyc, p.DRAMCycles(4096))
	}
}

func TestRawAccessBypassesStats(t *testing.T) {
	d := newDRAM()
	d.RawWrite(0, []byte{1, 2, 3})
	d.RawRead(0, 3)
	r, w, rb, wb := d.Stats()
	if r+w+rb+wb != 0 {
		t.Fatal("adversarial access showed up in traffic stats")
	}
	d.WriteBurst(0, []byte{1})
	if _, w, _, _ := d.Stats(); w != 1 {
		t.Fatal("normal write not counted")
	}
	d.ResetStats()
	if r, w, _, _ := d.Stats(); r != 0 || w != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestSnapshotRestoreReplay(t *testing.T) {
	d := newDRAM()
	d.WriteBurst(0x100, []byte("old value"))
	snap, err := d.Snapshot(0x100, 9)
	if err != nil {
		t.Fatal(err)
	}
	d.WriteBurst(0x100, []byte("new value"))
	if err := d.Restore(0x100, snap); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 9)
	d.ReadBurst(0x100, buf)
	if string(buf) != "old value" {
		t.Fatal("replay did not restore old contents")
	}
}

// Property: DRAM behaves like a flat byte array for arbitrary aligned and
// unaligned writes.
func TestDRAMMatchesFlatArray(t *testing.T) {
	d := NewDRAM(1<<18, perf.Default())
	ref := make([]byte, 1<<18)
	f := func(ops []struct {
		Addr uint32
		Data []byte
	}) bool {
		for _, op := range ops {
			addr := uint64(op.Addr) % (1<<18 - 256)
			data := op.Data
			if len(data) > 256 {
				data = data[:256]
			}
			if _, err := d.WriteBurst(addr, data); err != nil {
				return false
			}
			copy(ref[addr:], data)
		}
		buf := make([]byte, 1<<12)
		for addr := uint64(0); addr < 1<<18; addr += 1 << 12 {
			if _, err := d.ReadBurst(addr, buf); err != nil {
				return false
			}
			if !bytes.Equal(buf, ref[addr:addr+1<<12]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestOCMBudget(t *testing.T) {
	o := NewOCM(8 * 1024) // 1 KB pool
	buf, err := o.Alloc(512)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 512 {
		t.Fatal("wrong allocation size")
	}
	if _, err := o.Alloc(513); err == nil {
		t.Fatal("over-allocation accepted")
	}
	if _, err := o.Alloc(512); err != nil {
		t.Fatal("exact-fit allocation rejected")
	}
	o.Free(512)
	if o.UsedBits() != 512*8 {
		t.Fatalf("used bits = %d after free", o.UsedBits())
	}
	if o.Utilization() != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", o.Utilization())
	}
	if _, err := o.Alloc(-1); err == nil {
		t.Fatal("negative allocation accepted")
	}
	o.Free(1 << 30) // over-free clamps to zero
	if o.UsedBits() != 0 {
		t.Fatal("over-free did not clamp")
	}
}
