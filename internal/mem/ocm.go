package mem

import (
	"fmt"
	"sync"
)

// OCM models the FPGA's on-chip memory pool (Block RAM + UltraRAM).
// UltraScale+ devices provide hundreds of megabits of on-chip RAM, which is
// exactly the resource ShEF leverages to hold Shield buffers and freshness
// counters instead of a Merkle tree (paper §5.2.2: "contemporary FPGAs
// provide much more on-chip memory via new technologies such as UltraRAM").
//
// OCM enforces a capacity budget: allocations beyond the device's pool fail
// the way an over-provisioned bitstream would fail placement. The pool is
// safe for concurrent use: sessions provisioning Shields in parallel (the
// multi-tenant serving path) race only on the budget counter.
type OCM struct {
	mu           sync.Mutex
	capacityBits uint64
	usedBits     uint64
}

// NewOCM creates an on-chip memory pool with the given capacity in bits.
func NewOCM(capacityBits uint64) *OCM {
	return &OCM{capacityBits: capacityBits}
}

// Alloc reserves nBytes of on-chip storage and returns the backing buffer.
// It fails when the device's on-chip pool is exhausted.
func (o *OCM) Alloc(nBytes int) ([]byte, error) {
	if nBytes < 0 {
		return nil, fmt.Errorf("mem: negative OCM allocation %d", nBytes)
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	bits := uint64(nBytes) * 8
	if o.usedBits+bits > o.capacityBits {
		return nil, fmt.Errorf("mem: OCM exhausted: need %d bits, %d of %d in use",
			bits, o.usedBits, o.capacityBits)
	}
	o.usedBits += bits
	return make([]byte, nBytes), nil
}

// Free returns capacity to the pool (used when a partial bitstream is
// cleared during reconfiguration).
func (o *OCM) Free(nBytes int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	bits := uint64(nBytes) * 8
	if bits > o.usedBits {
		o.usedBits = 0
		return
	}
	o.usedBits -= bits
}

// UsedBits reports the currently allocated on-chip bits.
func (o *OCM) UsedBits() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.usedBits
}

// CapacityBits reports the pool capacity.
func (o *OCM) CapacityBits() uint64 { return o.capacityBits }

// Utilization reports the fraction of on-chip memory in use.
func (o *OCM) Utilization() float64 {
	if o.capacityBits == 0 {
		return 0
	}
	return float64(o.UsedBits()) / float64(o.capacityBits)
}
