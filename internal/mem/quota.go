package mem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrQuotaExceeded is the sentinel behind every tenant quota rejection.
// Callers branch with errors.Is; the concrete *QuotaError carries the
// tenant identity and the resource that ran out.
var ErrQuotaExceeded = errors.New("mem: tenant quota exceeded")

// Quota bounds one tenant's footprint on the device. Zero fields are
// unlimited, so the zero Quota admits everything (the single-tenant
// compatibility default).
type Quota struct {
	// DRAMBytes caps the tenant's device-memory footprint: region data
	// plus the MAC tag shadow each region drags along.
	DRAMBytes uint64
	// OCMBytes caps the tenant's on-chip metadata budget: buffer lines,
	// freshness counters, and valid bits.
	OCMBytes uint64
}

// Usage is a tenant's current charge against its quota.
type Usage struct {
	DRAMBytes uint64
	OCMBytes  uint64
	// Regions counts live charges (one per protection zone).
	Regions int
}

// QuotaError reports which tenant hit which resource limit. It unwraps to
// ErrQuotaExceeded so serving tiers can classify it without string
// matching.
type QuotaError struct {
	Tenant   string
	Resource string // "dram" or "ocm"
	Need     uint64
	Used     uint64
	Limit    uint64
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("mem: tenant %q %s quota exceeded: need %d bytes, %d of %d in use",
		e.Tenant, e.Resource, e.Need, e.Used, e.Limit)
}

func (e *QuotaError) Unwrap() error { return ErrQuotaExceeded }

// Accountant meters per-tenant DRAM and OCM charges against quotas. It is
// the bookkeeping half of multi-tenant isolation: the Shield's region
// table asks it before carving a protection zone, so one tenant cannot
// squat on the whole device. Safe for concurrent use.
type Accountant struct {
	mu     sync.Mutex
	def    Quota
	quotas map[string]Quota
	usage  map[string]Usage
}

// NewAccountant builds an accountant whose tenants default to def (zero
// fields of def are unlimited).
func NewAccountant(def Quota) *Accountant {
	return &Accountant{
		def:    def,
		quotas: make(map[string]Quota),
		usage:  make(map[string]Usage),
	}
}

// SetQuota overrides the default quota for one tenant. It does not evict
// existing charges: a tenant already over the new limit keeps what it
// holds but cannot grow.
func (a *Accountant) SetQuota(tenant string, q Quota) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.quotas[tenant] = q
}

// quotaLocked resolves the effective quota for a tenant.
func (a *Accountant) quotaLocked(tenant string) Quota {
	if q, ok := a.quotas[tenant]; ok {
		return q
	}
	return a.def
}

// Charge reserves dramBytes and ocmBytes against tenant's quota,
// returning a *QuotaError (errors.Is ErrQuotaExceeded) if either
// resource would overflow. A successful charge must be paired with
// Release.
func (a *Accountant) Charge(tenant string, dramBytes, ocmBytes uint64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	q := a.quotaLocked(tenant)
	u := a.usage[tenant]
	if q.DRAMBytes > 0 && u.DRAMBytes+dramBytes > q.DRAMBytes {
		return &QuotaError{Tenant: tenant, Resource: "dram",
			Need: dramBytes, Used: u.DRAMBytes, Limit: q.DRAMBytes}
	}
	if q.OCMBytes > 0 && u.OCMBytes+ocmBytes > q.OCMBytes {
		return &QuotaError{Tenant: tenant, Resource: "ocm",
			Need: ocmBytes, Used: u.OCMBytes, Limit: q.OCMBytes}
	}
	u.DRAMBytes += dramBytes
	u.OCMBytes += ocmBytes
	u.Regions++
	a.usage[tenant] = u
	return nil
}

// Release returns a prior charge to the tenant's budget. Releasing more
// than is held clamps to zero (idempotent teardown).
func (a *Accountant) Release(tenant string, dramBytes, ocmBytes uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u := a.usage[tenant]
	if dramBytes > u.DRAMBytes {
		u.DRAMBytes = 0
	} else {
		u.DRAMBytes -= dramBytes
	}
	if ocmBytes > u.OCMBytes {
		u.OCMBytes = 0
	} else {
		u.OCMBytes -= ocmBytes
	}
	if u.Regions > 0 {
		u.Regions--
	}
	if u == (Usage{}) {
		delete(a.usage, tenant)
	} else {
		a.usage[tenant] = u
	}
}

// UsageFor reports a tenant's current charges (zero Usage if none).
func (a *Accountant) UsageFor(tenant string) Usage {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.usage[tenant]
}

// QuotaFor reports a tenant's effective quota.
func (a *Accountant) QuotaFor(tenant string) Quota {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.quotaLocked(tenant)
}

// Tenants returns the tenants with live charges, sorted for deterministic
// reporting.
func (a *Accountant) Tenants() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]string, 0, len(a.usage))
	for t := range a.usage {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
