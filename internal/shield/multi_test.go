package shield

import (
	"bytes"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// TestMultipleShieldsOneDevice models the paper's multiple-enclave setup
// (§3: "The IP Vendor can secure multiple accelerator modules with
// separate Shield modules, enabling multiple isolated execution
// environments"). Two Shields with separate keys share one DRAM; each
// serves its own accelerator, neither can read the other's data, and a
// cross-shield splice is detected.
func TestMultipleShieldsOneDevice(t *testing.T) {
	dram := mem.NewDRAM(1<<22, perf.Default())
	ocm := mem.NewOCM(1 << 30)

	mk := func(name string, base uint64, dekByte byte) (*Shield, []byte) {
		priv, _ := schnorr.GenerateKey(modp.TestGroup, nil)
		cfg := Config{Regions: []RegionConfig{{
			Name: name, Base: base, Size: 1 << 14, ChunkSize: 512,
			AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128,
			MAC: HMAC, BufferBytes: 1024, Freshness: true,
		}}}
		sh, err := New(cfg, priv, dram, ocm, perf.Default())
		if err != nil {
			t.Fatal(err)
		}
		dek := bytes.Repeat([]byte{dekByte}, 32)
		lk, _ := keywrap.Wrap(sh.PublicKey(), dek, nil)
		if err := sh.ProvisionLoadKey(lk); err != nil {
			t.Fatal(err)
		}
		return sh, dek
	}
	// Disjoint address windows; tag areas are derived from each shield's
	// own region end, so shield B's window must start past A's tags.
	shA, _ := mk("encA", 0, 0x11)
	shB, _ := mk("encB", 1<<20, 0x22)

	msgA := bytes.Repeat([]byte{0xAA}, 512)
	msgB := bytes.Repeat([]byte{0xBB}, 512)
	shA.WriteBurst(0, msgA)
	shB.WriteBurst(1<<20, msgB)
	shA.Flush()
	shB.Flush()

	// Each enclave reads its own data back.
	buf := make([]byte, 512)
	shA.InvalidateClean()
	shA.ReadBurst(0, buf)
	if !bytes.Equal(buf, msgA) {
		t.Fatal("enclave A lost its data")
	}

	// Neither shield will serve the other's address space.
	if _, err := shA.ReadBurst(1<<20, buf); err == nil {
		t.Fatal("enclave A read enclave B's region")
	}
	if _, err := shB.WriteBurst(0, buf); err == nil {
		t.Fatal("enclave B wrote enclave A's region")
	}

	// Splice B's ciphertext into A's region: A must reject it (different
	// DEK and region binding).
	ctB, _ := dram.RawRead(1<<20, 512)
	layoutB, _ := shB.Layout("encB")
	tagB, _ := dram.RawRead(layoutB.TagBase, TagSize)
	dram.RawWrite(0, ctB)
	layoutA, _ := shA.Layout("encA")
	dram.RawWrite(layoutA.TagBase, tagB)
	shA.InvalidateClean()
	if _, err := shA.ReadBurst(0, buf); err == nil {
		t.Fatal("cross-enclave splice accepted")
	}
}

// TestCryptoTimingDataIndependent: the Shield's simulated crypto cost must
// not depend on data values ("we ensure that the timing of Shield
// cryptographic engines does not depend on any confidential information",
// paper §5.2.2). Two shields processing all-zeros vs random data account
// identical cycles.
func TestCryptoTimingDataIndependent(t *testing.T) {
	run := func(fill byte, random bool) uint64 {
		rig := newRig(t, simpleConfig())
		data := make([]byte, 1<<14)
		if random {
			for i := range data {
				data[i] = byte(i*131 + 17)
			}
		} else {
			for i := range data {
				data[i] = fill
			}
		}
		rig.shield.WriteBurst(0, data)
		rig.shield.Flush()
		rig.shield.InvalidateClean()
		rig.shield.ReadBurst(0, data)
		return rig.shield.Report().MemoryCycles()
	}
	zeros := run(0, false)
	ones := run(0xFF, false)
	rnd := run(0, true)
	if zeros != ones || zeros != rnd {
		t.Fatalf("cycle cost depends on data: zeros=%d ones=%d random=%d", zeros, ones, rnd)
	}
}

// TestReportChannelComposition checks MemoryCycles' per-channel bound
// directly.
func TestReportChannelComposition(t *testing.T) {
	rep := Report{Regions: []RegionStats{
		{Name: "a", Channel: 0, BusyCycles: 100, DRAMCycles: 300},
		{Name: "b", Channel: 0, BusyCycles: 150, DRAMCycles: 300},
		{Name: "c", Channel: 1, BusyCycles: 120, DRAMCycles: 500},
	}}
	// Channel 0 carries 600 dram cycles, channel 1 carries 500; max busy
	// is 150. The bound is the busiest channel: 600.
	if got := rep.MemoryCycles(); got != 600 {
		t.Fatalf("MemoryCycles = %d, want 600", got)
	}
	rep.Regions[2].DRAMCycles = 50
	rep.Regions[0].DRAMCycles = 10
	rep.Regions[1].DRAMCycles = 20
	// Now busy dominates: 150.
	if got := rep.MemoryCycles(); got != 150 {
		t.Fatalf("MemoryCycles = %d, want 150", got)
	}
	if got := rep.TotalCycles(); got != 150 {
		t.Fatalf("TotalCycles = %d, want 150", got)
	}
}
