package shield

import (
	"errors"
	"fmt"
	"sync"

	"shef/internal/axi"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// Shield is the runtime security perimeter around one accelerator. It owns
// the private Shield Encryption Key the IP Vendor embedded in the
// bitstream, receives the Data Owner's Data Encryption Key via a Load Key,
// and from then on presents plaintext AXI interfaces to the accelerator
// while everything that leaves it — device memory and host register
// traffic — is encrypted and authenticated (paper §3 step 11, §5.1).
// A Shield is safe for concurrent use: the data path takes a read lock on
// the session state and per-engine-set locks, so accelerator ports driving
// different regions proceed in parallel (the hardware's per-set
// parallelism), while ProvisionLoadKey — a whole-session swap — excludes
// all traffic.
type Shield struct {
	cfg    Config
	params perf.Params
	priv   *schnorr.PrivateKey

	port axi.MemoryPort
	ocm  *mem.OCM

	// provMu serialises whole provisionings: two concurrent key rotations
	// would otherwise both build engine-set fleets (double-charging the
	// OCM pool) and the loser's fleet would leak its on-chip budget.
	provMu sync.Mutex

	// mu guards the session state below it: ProvisionLoadKey replaces the
	// region table and register file wholesale (key rotation), so the data
	// path holds the read side while a reprovision — or a zone teardown,
	// which must also quiesce in-flight bursts — holds the write side.
	mu          sync.RWMutex
	provisioned bool
	table       *RegionTable
	regs        *RegisterFile
	initExtra   uint64
	// dek is the armed Data Encryption Key, retained so runtime-created
	// zones and lazy materialisation can derive per-region keys after
	// provisioning.
	dek []byte

	// acct meters per-tenant DRAM and OCM charges; it outlives
	// provisionings so quota overrides survive key rotation.
	acct *mem.Accountant

	tagBase uint64
}

// tenantLabel renders a tenant identity for error text; the empty
// single-tenant session reads as "default".
func tenantLabel(tenant string) string {
	if tenant == "" {
		return "default"
	}
	return tenant
}

// New builds a Shield around cfg. priv is the private Shield Encryption
// Key (embedded in the bitstream by the IP Vendor); port is the Shell's
// AXI4 memory interface; ocm is the device on-chip memory pool that
// buffers and counters are charged against.
//
// The Shield is inert until ProvisionLoadKey delivers the Data Encryption
// Key: before that, all accelerator traffic is refused.
func New(cfg Config, priv *schnorr.PrivateKey, port axi.MemoryPort, ocm *mem.OCM, params perf.Params) (*Shield, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if priv == nil {
		return nil, errors.New("shield: missing Shield Encryption Key")
	}
	maxEnd := cfg.ArenaEnd
	for _, r := range cfg.Regions {
		if end := r.Base + r.Size; end > maxEnd {
			maxEnd = end
		}
	}
	const tagAlign = 4096
	s := &Shield{
		cfg:     cfg,
		params:  params,
		priv:    priv,
		port:    port,
		ocm:     ocm,
		acct:    mem.NewAccountant(cfg.DefaultTenantQuota),
		tagBase: (maxEnd + tagAlign - 1) / tagAlign * tagAlign,
	}
	return s, nil
}

// PublicKey returns the public Shield Encryption Key, which the IP Vendor
// publishes to Data Owners during attestation (paper Figure 3, step 7).
func (s *Shield) PublicKey() *schnorr.PublicKey { return &s.priv.PublicKey }

// ProvisionLoadKey decrypts the Load Key into the Data Encryption Key and
// arms the Shield: engine sets and the register file come alive with keys
// derived from the DEK. A second provisioning replaces all session state,
// which is how a new Data Owner session rotates keys: the old session's
// logic is cleared first — in-flight bursts drain, its on-chip budget
// returns to the pool — and then the new session loads. A load that fails
// midway leaves the Shield unprovisioned (the fabric was already
// cleared), refusing service until a successful provisioning.
func (s *Shield) ProvisionLoadKey(lk *keywrap.Wrapped) error {
	s.provMu.Lock()
	defer s.provMu.Unlock()
	dek, err := keywrap.Unwrap(s.priv, lk)
	if err != nil {
		return fmt.Errorf("shield: load key rejected: %w", err)
	}
	if len(dek) < 16 {
		return errors.New("shield: data encryption key too short")
	}
	// Clear the previous session. The write lock waits out every in-flight
	// burst (they hold the read side for their full duration), so this is
	// a quiescent point. Runtime-created zones die with the session: a key
	// rotation is a whole-device handover.
	s.mu.Lock()
	old := s.table
	s.table, s.regs, s.provisioned = nil, nil, false
	s.dek = nil
	s.mu.Unlock()
	if old != nil {
		old.releaseAll(s.ocm)
	}

	// The static Config.Regions are a compatibility shim over the virtual
	// layer: each becomes a session-tenant zone, inserted in config order
	// (preserving the fixed-array design's region IDs and tag layout) and
	// materialised eagerly so provisioning fails up front, DRAM shares
	// match the static counts, and the first burst pays no build cost.
	table := newRegionTable(s.tagBase, s.acct, s.params)
	fail := func(err error) error {
		table.releaseAll(s.ocm)
		return err
	}
	for _, rc := range s.cfg.Regions {
		rc.Tenant = s.cfg.Tenant
		r, err := table.create(rc, s.tagBase)
		if err != nil {
			return fail(err)
		}
		if _, err := table.materialize(r, dek, s.port, s.ocm, s.params); err != nil {
			return fail(err)
		}
	}
	regs, err := newRegisterFile(s.cfg, dek, s.params)
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	s.table = table
	s.regs = regs
	s.dek = dek
	s.provisioned = true
	s.initExtra = s.params.ShieldInitCycles
	s.mu.Unlock()
	return nil
}

// CreateRegion carves a new protection zone at runtime, owned by
// rc.Tenant and charged against that tenant's quota (a *mem.QuotaError —
// errors.Is(err, mem.ErrQuotaExceeded) — reports an over-budget tenant).
// The zone must fit below the tag shadow: static regions plus
// Config.ArenaEnd bound the usable address space. The zone starts idle —
// no engine set, worker pool, or on-chip memory — and materialises on
// first access.
func (s *Shield) CreateRegion(rc RegionConfig) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.provisioned {
		return errors.New("shield: not provisioned")
	}
	_, err := s.table.create(rc, s.tagBase)
	return err
}

// DestroyRegion tears down a tenant's zone: traffic quiesces, the engine
// set (if materialised) is retired with its dirty lines discarded — zone
// destruction is erasure, the ciphertext keys die with the descriptor —
// and the tenant's quota charge is returned. Cached translations for the
// zone are shot down.
func (s *Shield) DestroyRegion(tenant, region string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.provisioned {
		return errors.New("shield: not provisioned")
	}
	return s.table.destroy(tenant, region, s.ocm)
}

// ReclaimRegion retires an idle zone's engine set — dirty lines are
// written back, then the worker pool, buffer, and counters return to the
// device's on-chip pool — while the zone descriptor and its quota
// reservation stay, so the next access re-materialises transparently.
// Serving tiers call it when a tenant goes quiet.
func (s *Shield) ReclaimRegion(tenant, region string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.provisioned {
		return errors.New("shield: not provisioned")
	}
	r := s.table.named(tenant, region)
	if r == nil {
		return fmt.Errorf("shield: tenant %q: unknown region %q", tenantLabel(tenant), region)
	}
	return s.table.reclaim(r, s.ocm)
}

// SetTenantQuota overrides the default per-tenant quota for one tenant.
func (s *Shield) SetTenantQuota(tenant string, q mem.Quota) { s.acct.SetQuota(tenant, q) }

// TenantUsage reports a tenant's current quota charges.
func (s *Shield) TenantUsage(tenant string) mem.Usage { return s.acct.UsageFor(tenant) }

// Tenants lists tenants holding live zones, sorted.
func (s *Shield) Tenants() []string { return s.acct.Tenants() }

// Zones lists all protection zones in base order, flagging which
// currently hold a materialised engine set.
func (s *Shield) Zones() []TenantZoneStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.provisioned {
		return nil
	}
	return s.table.zoneStats()
}

// Provisioned reports whether a Data Encryption Key is armed.
func (s *Shield) Provisioned() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.provisioned
}

// Registers exposes the secured register file (nil before provisioning).
func (s *Shield) Registers() *RegisterFile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.regs
}

// setFor routes an address to its engine set through the region-lookup
// cache: a hit is a lock-free, allocation-free O(1) probe regardless of
// zone count; a miss walks the table and refills the cache. Idle zones
// materialise their engine set here, on first touch. Callers hold s.mu
// (either side); the returned set additionally serialises on its own
// mutex.
func (s *Shield) setFor(addr uint64) (*engineSet, error) {
	if !s.provisioned {
		return nil, errors.New("shield: not provisioned with a Data Encryption Key")
	}
	r := s.table.lookup(addr)
	if r == nil {
		return nil, fmt.Errorf("shield: address %#x outside all configured regions (isolation violation)", addr)
	}
	if set := r.set.Load(); set != nil {
		return set, nil
	}
	return s.table.materialize(r, s.dek, s.port, s.ocm, s.params)
}

// ReadBurst implements axi.MemoryPort for the accelerator: a plaintext
// view of shielded memory. Bursts may span chunks but not regions. The
// returned cycle count is the engine-set busy time the access cost
// (on-chip hits plus any chunk fetch/verify pipeline time).
//
// The session read lock is held for the whole access, so a concurrent
// ProvisionLoadKey cannot swap the engine sets mid-burst.
func (s *Shield) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.setFor(addr)
	if err != nil {
		return 0, err
	}
	if addr+uint64(len(buf)) > set.cfg.Base+set.cfg.Size {
		return 0, fmt.Errorf("shield: burst [%#x,+%d) crosses region %q boundary", addr, len(buf), set.cfg.Name)
	}
	return set.read(addr, buf)
}

// WriteBurst implements axi.MemoryPort for the accelerator. The returned
// cycle count is the engine-set busy time the access cost.
func (s *Shield) WriteBurst(addr uint64, data []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.setFor(addr)
	if err != nil {
		return 0, err
	}
	if addr+uint64(len(data)) > set.cfg.Base+set.cfg.Size {
		return 0, fmt.Errorf("shield: burst [%#x,+%d) crosses region %q boundary", addr, len(data), set.cfg.Name)
	}
	return set.write(addr, data)
}

// Flush writes back all dirty buffer lines. Callers flush at kernel
// completion so results reach (encrypted) DRAM before the host DMA reads
// them out.
//
// Engine sets flush on separate goroutines — the hardware's per-set
// parallelism made real — so wall-clock time follows the performance
// model's max-across-sets rather than the sum. Every set completes even
// if one fails (no region is left half-written); the per-set errors are
// joined.
func (s *Shield) Flush() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.provisioned {
		return errors.New("shield: not provisioned")
	}
	// Only materialised sets hold dirty lines; idle zones have nothing to
	// write back. The single-live-set case — every Real flush benchmark,
	// and any single-region session — completes without allocating.
	zones := s.table.snapshot()
	var only *engineSet
	live := 0
	for _, r := range zones {
		if set := r.set.Load(); set != nil {
			only = set
			live++
		}
	}
	switch live {
	case 0:
		return nil
	case 1:
		return only.flush()
	}
	sets := make([]*engineSet, 0, live)
	for _, r := range zones {
		if set := r.set.Load(); set != nil {
			sets = append(sets, set)
		}
	}
	errs := make([]error, len(sets))
	var wg sync.WaitGroup
	for i, set := range sets {
		wg.Add(1)
		go func(i int, set *engineSet) {
			defer wg.Done()
			errs[i] = set.flush()
		}(i, set)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// InvalidateClean drops clean buffer lines (used by tests to force
// re-fetch from DRAM and exercise the integrity path).
func (s *Shield) InvalidateClean() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.provisioned {
		return
	}
	for _, r := range s.table.snapshot() {
		if set := r.set.Load(); set != nil {
			set.invalidateClean()
		}
	}
}

// namedSet routes a tenant's region name to its engine set,
// materialising an idle zone on the way. Callers hold s.mu.
func (s *Shield) namedSet(tenant, region string) (*engineSet, error) {
	if !s.provisioned {
		return nil, errors.New("shield: not provisioned")
	}
	r := s.table.named(tenant, region)
	if r == nil {
		return nil, fmt.Errorf("shield: tenant %q: unknown region %q", tenantLabel(tenant), region)
	}
	if set := r.set.Load(); set != nil {
		return set, nil
	}
	return s.table.materialize(r, s.dek, s.port, s.ocm, s.params)
}

// FlushRegion writes back the dirty buffer lines of one region only.
// Serving paths that stage traffic through a scratch region (the SDP
// tls window) use it so a staging flush does not pay a fan-out over —
// or disturb the write-back schedule of — every other engine set.
func (s *Shield) FlushRegion(region string) error {
	return s.FlushTenantRegion(s.cfg.Tenant, region)
}

// FlushTenantRegion is FlushRegion for a runtime-created zone: the flush
// is keyed by the owning tenant, so two tenants may both name a region
// "store" without aliasing.
func (s *Shield) FlushTenantRegion(tenant, region string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.namedSet(tenant, region)
	if err != nil {
		return err
	}
	return set.flush()
}

// InvalidateCleanRegion drops the clean buffer lines of one region only,
// leaving every other region's residency intact. A host DMA that
// overwrites one region's ciphertext must invalidate that region's
// lines, but dropping the whole Shield's buffers (InvalidateClean)
// would needlessly evict hot lines of unrelated regions — exactly the
// aggregate on-chip residency a fleet of shards is supposed to build.
func (s *Shield) InvalidateCleanRegion(region string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.namedSet(s.cfg.Tenant, region)
	if err != nil {
		return err
	}
	set.invalidateClean()
	return nil
}

// RegionStats is the per-engine-set activity report.
type RegionStats struct {
	Name    string
	Channel int
	// Hits counts chunk accesses served from the on-chip buffer
	// (including the access that populated the line); Misses counts
	// demand fetches and zero fills.
	Hits, Misses          uint64
	Evictions, Writebacks uint64
	// BatchedWritebacks is the subset of Writebacks that travelled in
	// multi-chunk pipelined store windows (flush and bulk-eviction
	// batching) under the overlapped accounting; the remainder paid the
	// chunked per-chunk charge.
	BatchedWritebacks uint64
	// Streamed counts every chunk moved by the pipelined
	// ReadStream/WriteStream path — fetched from DRAM, served from a
	// resident line, or zero-filled — and StreamWindows counts the
	// pipeline windows those chunks travelled in.
	Streamed, StreamWindows uint64
	// Prefetched counts chunks the adaptive sequential prefetcher fetched
	// ahead of demand; PrefetchHits counts prefetched lines that later
	// served a demand access (each line counted once).
	Prefetched, PrefetchHits uint64
	BusyCycles               uint64
	DRAMCycles               uint64
}

// RegionLookupStats is the burst decoder's region-resolution activity:
// lookup-cache hits and misses, and the simulated cycles they cost
// (perf.Params.RegionLookupCycles). The counts are deterministic for a
// deterministic access sequence, which is what lets benchtab gate lookup
// overhead as a sim-* metric.
type RegionLookupStats struct {
	Hits, Misses uint64
	Cycles       uint64
}

// Report summarises simulated cost since provisioning.
type Report struct {
	Regions []RegionStats
	// RegisterCycles is time spent on secured AXI4-Lite traffic.
	RegisterCycles uint64
	// InitCycles is the one-time arming cost.
	InitCycles uint64
	// Lookup is the region-resolution cost on the burst-decode path.
	Lookup RegionLookupStats
}

// MemoryCycles is the simulated memory-path time: engine sets run in
// parallel, bounded below by the bus occupancy of the busiest off-chip
// channel (regions on different channels do not contend).
func (r Report) MemoryCycles() uint64 {
	var maxBusy uint64
	perChannel := make(map[int]uint64)
	for _, rs := range r.Regions {
		if rs.BusyCycles > maxBusy {
			maxBusy = rs.BusyCycles
		}
		perChannel[rs.Channel] += rs.DRAMCycles
	}
	best := maxBusy
	for _, dram := range perChannel {
		if dram > best {
			best = dram
		}
	}
	return best
}

// TotalCycles includes register traffic, region resolution, and
// initialisation.
func (r Report) TotalCycles() uint64 {
	return r.MemoryCycles() + r.RegisterCycles + r.InitCycles + r.Lookup.Cycles
}

// Report captures current counters.
func (s *Shield) Report() Report {
	s.mu.RLock()
	table, regs, initExtra := s.table, s.regs, s.initExtra
	s.mu.RUnlock()
	rep := Report{InitCycles: initExtra}
	if table != nil {
		for _, r := range table.snapshot() {
			if set := r.set.Load(); set != nil {
				rep.Regions = append(rep.Regions, set.stats())
			}
		}
		hits, misses := table.lookupStats()
		rep.Lookup = RegionLookupStats{
			Hits:   hits,
			Misses: misses,
			Cycles: s.params.RegionLookupCycles(hits, misses),
		}
	}
	if regs != nil {
		rep.RegisterCycles = regs.cyclesSnapshot()
	}
	return rep
}

// ResetStats zeroes activity counters (keeps keys and buffer contents).
func (s *Shield) ResetStats() {
	s.mu.Lock()
	table, regs := s.table, s.regs
	s.initExtra = 0
	s.mu.Unlock()
	if table != nil {
		for _, r := range table.snapshot() {
			if set := r.set.Load(); set != nil {
				set.resetStats()
			}
		}
		table.resetLookupStats()
	}
	if regs != nil {
		regs.resetCycles()
	}
}

// Config returns the Shield's configuration.
func (s *Shield) Config() Config { return s.cfg }
