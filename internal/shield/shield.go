package shield

import (
	"errors"
	"fmt"
	"sync"

	"shef/internal/axi"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// Shield is the runtime security perimeter around one accelerator. It owns
// the private Shield Encryption Key the IP Vendor embedded in the
// bitstream, receives the Data Owner's Data Encryption Key via a Load Key,
// and from then on presents plaintext AXI interfaces to the accelerator
// while everything that leaves it — device memory and host register
// traffic — is encrypted and authenticated (paper §3 step 11, §5.1).
// A Shield is safe for concurrent use: the data path takes a read lock on
// the session state and per-engine-set locks, so accelerator ports driving
// different regions proceed in parallel (the hardware's per-set
// parallelism), while ProvisionLoadKey — a whole-session swap — excludes
// all traffic.
type Shield struct {
	cfg    Config
	params perf.Params
	priv   *schnorr.PrivateKey

	port axi.MemoryPort
	ocm  *mem.OCM

	// provMu serialises whole provisionings: two concurrent key rotations
	// would otherwise both build engine-set fleets (double-charging the
	// OCM pool) and the loser's fleet would leak its on-chip budget.
	provMu sync.Mutex

	// mu guards the session state below it: ProvisionLoadKey replaces the
	// engine sets and register file wholesale (key rotation), so the data
	// path holds the read side while a reprovision holds the write side.
	mu          sync.RWMutex
	provisioned bool
	sets        []*engineSet
	regs        *RegisterFile
	initExtra   uint64

	tagBase uint64
}

// New builds a Shield around cfg. priv is the private Shield Encryption
// Key (embedded in the bitstream by the IP Vendor); port is the Shell's
// AXI4 memory interface; ocm is the device on-chip memory pool that
// buffers and counters are charged against.
//
// The Shield is inert until ProvisionLoadKey delivers the Data Encryption
// Key: before that, all accelerator traffic is refused.
func New(cfg Config, priv *schnorr.PrivateKey, port axi.MemoryPort, ocm *mem.OCM, params perf.Params) (*Shield, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if priv == nil {
		return nil, errors.New("shield: missing Shield Encryption Key")
	}
	var maxEnd uint64
	for _, r := range cfg.Regions {
		if end := r.Base + r.Size; end > maxEnd {
			maxEnd = end
		}
	}
	const tagAlign = 4096
	s := &Shield{
		cfg:     cfg,
		params:  params,
		priv:    priv,
		port:    port,
		ocm:     ocm,
		tagBase: (maxEnd + tagAlign - 1) / tagAlign * tagAlign,
	}
	return s, nil
}

// PublicKey returns the public Shield Encryption Key, which the IP Vendor
// publishes to Data Owners during attestation (paper Figure 3, step 7).
func (s *Shield) PublicKey() *schnorr.PublicKey { return &s.priv.PublicKey }

// ProvisionLoadKey decrypts the Load Key into the Data Encryption Key and
// arms the Shield: engine sets and the register file come alive with keys
// derived from the DEK. A second provisioning replaces all session state,
// which is how a new Data Owner session rotates keys: the old session's
// logic is cleared first — in-flight bursts drain, its on-chip budget
// returns to the pool — and then the new session loads. A load that fails
// midway leaves the Shield unprovisioned (the fabric was already
// cleared), refusing service until a successful provisioning.
func (s *Shield) ProvisionLoadKey(lk *keywrap.Wrapped) error {
	s.provMu.Lock()
	defer s.provMu.Unlock()
	dek, err := keywrap.Unwrap(s.priv, lk)
	if err != nil {
		return fmt.Errorf("shield: load key rejected: %w", err)
	}
	if len(dek) < 16 {
		return errors.New("shield: data encryption key too short")
	}
	// Clear the previous session. The write lock waits out every in-flight
	// burst (they hold the read side for their full duration), so this is
	// a quiescent point.
	s.mu.Lock()
	old := s.sets
	s.sets, s.regs, s.provisioned = nil, nil, false
	s.mu.Unlock()
	for _, set := range old {
		set.releaseOCM(s.ocm)
	}

	tagOff := s.tagBase
	perChannel := make(map[int]int)
	for _, rc := range s.cfg.Regions {
		perChannel[rc.Channel]++
	}
	sets := make([]*engineSet, 0, len(s.cfg.Regions))
	fail := func(err error) error {
		for _, set := range sets {
			set.releaseOCM(s.ocm)
		}
		return err
	}
	for i, rc := range s.cfg.Regions {
		set, err := newEngineSet(rc, uint32(i+1), dek, tagOff, s.port, s.ocm, s.params)
		if err != nil {
			return fail(err)
		}
		set.dramShare = perChannel[rc.Channel]
		sets = append(sets, set)
		tagOff += uint64(rc.Chunks() * TagSize)
	}
	regs, err := newRegisterFile(s.cfg, dek, s.params)
	if err != nil {
		return fail(err)
	}
	s.mu.Lock()
	s.sets = sets
	s.regs = regs
	s.provisioned = true
	s.initExtra = s.params.ShieldInitCycles
	s.mu.Unlock()
	return nil
}

// Provisioned reports whether a Data Encryption Key is armed.
func (s *Shield) Provisioned() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.provisioned
}

// Registers exposes the secured register file (nil before provisioning).
func (s *Shield) Registers() *RegisterFile {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.regs
}

// setFor routes an address to its engine set. Callers hold s.mu (either
// side); the returned set additionally serialises on its own mutex.
func (s *Shield) setFor(addr uint64) (*engineSet, error) {
	if !s.provisioned {
		return nil, errors.New("shield: not provisioned with a Data Encryption Key")
	}
	for _, set := range s.sets {
		if addr >= set.cfg.Base && addr < set.cfg.Base+set.cfg.Size {
			return set, nil
		}
	}
	return nil, fmt.Errorf("shield: address %#x outside all configured regions (isolation violation)", addr)
}

// ReadBurst implements axi.MemoryPort for the accelerator: a plaintext
// view of shielded memory. Bursts may span chunks but not regions. The
// returned cycle count is the engine-set busy time the access cost
// (on-chip hits plus any chunk fetch/verify pipeline time).
//
// The session read lock is held for the whole access, so a concurrent
// ProvisionLoadKey cannot swap the engine sets mid-burst.
func (s *Shield) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.setFor(addr)
	if err != nil {
		return 0, err
	}
	if addr+uint64(len(buf)) > set.cfg.Base+set.cfg.Size {
		return 0, fmt.Errorf("shield: burst [%#x,+%d) crosses region %q boundary", addr, len(buf), set.cfg.Name)
	}
	return set.read(addr, buf)
}

// WriteBurst implements axi.MemoryPort for the accelerator. The returned
// cycle count is the engine-set busy time the access cost.
func (s *Shield) WriteBurst(addr uint64, data []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.setFor(addr)
	if err != nil {
		return 0, err
	}
	if addr+uint64(len(data)) > set.cfg.Base+set.cfg.Size {
		return 0, fmt.Errorf("shield: burst [%#x,+%d) crosses region %q boundary", addr, len(data), set.cfg.Name)
	}
	return set.write(addr, data)
}

// Flush writes back all dirty buffer lines. Callers flush at kernel
// completion so results reach (encrypted) DRAM before the host DMA reads
// them out.
//
// Engine sets flush on separate goroutines — the hardware's per-set
// parallelism made real — so wall-clock time follows the performance
// model's max-across-sets rather than the sum. Every set completes even
// if one fails (no region is left half-written); the per-set errors are
// joined.
func (s *Shield) Flush() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.provisioned {
		return errors.New("shield: not provisioned")
	}
	if len(s.sets) == 1 {
		return s.sets[0].flush()
	}
	errs := make([]error, len(s.sets))
	var wg sync.WaitGroup
	for i, set := range s.sets {
		wg.Add(1)
		go func(i int, set *engineSet) {
			defer wg.Done()
			errs[i] = set.flush()
		}(i, set)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// InvalidateClean drops clean buffer lines (used by tests to force
// re-fetch from DRAM and exercise the integrity path).
func (s *Shield) InvalidateClean() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, set := range s.sets {
		set.invalidateClean()
	}
}

// namedSet routes a region name to its engine set. Callers hold s.mu.
func (s *Shield) namedSet(region string) (*engineSet, error) {
	if !s.provisioned {
		return nil, errors.New("shield: not provisioned")
	}
	for _, set := range s.sets {
		if set.cfg.Name == region {
			return set, nil
		}
	}
	return nil, fmt.Errorf("shield: unknown region %q", region)
}

// FlushRegion writes back the dirty buffer lines of one region only.
// Serving paths that stage traffic through a scratch region (the SDP
// tls window) use it so a staging flush does not pay a fan-out over —
// or disturb the write-back schedule of — every other engine set.
func (s *Shield) FlushRegion(region string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.namedSet(region)
	if err != nil {
		return err
	}
	return set.flush()
}

// InvalidateCleanRegion drops the clean buffer lines of one region only,
// leaving every other region's residency intact. A host DMA that
// overwrites one region's ciphertext must invalidate that region's
// lines, but dropping the whole Shield's buffers (InvalidateClean)
// would needlessly evict hot lines of unrelated regions — exactly the
// aggregate on-chip residency a fleet of shards is supposed to build.
func (s *Shield) InvalidateCleanRegion(region string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.namedSet(region)
	if err != nil {
		return err
	}
	set.invalidateClean()
	return nil
}

// RegionStats is the per-engine-set activity report.
type RegionStats struct {
	Name    string
	Channel int
	// Hits counts chunk accesses served from the on-chip buffer
	// (including the access that populated the line); Misses counts
	// demand fetches and zero fills.
	Hits, Misses          uint64
	Evictions, Writebacks uint64
	// BatchedWritebacks is the subset of Writebacks that travelled in
	// multi-chunk pipelined store windows (flush and bulk-eviction
	// batching) under the overlapped accounting; the remainder paid the
	// chunked per-chunk charge.
	BatchedWritebacks uint64
	// Streamed counts every chunk moved by the pipelined
	// ReadStream/WriteStream path — fetched from DRAM, served from a
	// resident line, or zero-filled — and StreamWindows counts the
	// pipeline windows those chunks travelled in.
	Streamed, StreamWindows uint64
	// Prefetched counts chunks the adaptive sequential prefetcher fetched
	// ahead of demand; PrefetchHits counts prefetched lines that later
	// served a demand access (each line counted once).
	Prefetched, PrefetchHits uint64
	BusyCycles               uint64
	DRAMCycles               uint64
}

// Report summarises simulated cost since provisioning.
type Report struct {
	Regions []RegionStats
	// RegisterCycles is time spent on secured AXI4-Lite traffic.
	RegisterCycles uint64
	// InitCycles is the one-time arming cost.
	InitCycles uint64
}

// MemoryCycles is the simulated memory-path time: engine sets run in
// parallel, bounded below by the bus occupancy of the busiest off-chip
// channel (regions on different channels do not contend).
func (r Report) MemoryCycles() uint64 {
	var maxBusy uint64
	perChannel := make(map[int]uint64)
	for _, rs := range r.Regions {
		if rs.BusyCycles > maxBusy {
			maxBusy = rs.BusyCycles
		}
		perChannel[rs.Channel] += rs.DRAMCycles
	}
	best := maxBusy
	for _, dram := range perChannel {
		if dram > best {
			best = dram
		}
	}
	return best
}

// TotalCycles includes register traffic and initialisation.
func (r Report) TotalCycles() uint64 {
	return r.MemoryCycles() + r.RegisterCycles + r.InitCycles
}

// Report captures current counters.
func (s *Shield) Report() Report {
	s.mu.RLock()
	sets, regs, initExtra := s.sets, s.regs, s.initExtra
	s.mu.RUnlock()
	rep := Report{InitCycles: initExtra}
	for _, set := range sets {
		rep.Regions = append(rep.Regions, set.stats())
	}
	if regs != nil {
		rep.RegisterCycles = regs.cyclesSnapshot()
	}
	return rep
}

// ResetStats zeroes activity counters (keeps keys and buffer contents).
func (s *Shield) ResetStats() {
	s.mu.Lock()
	sets, regs := s.sets, s.regs
	s.initExtra = 0
	s.mu.Unlock()
	for _, set := range sets {
		set.resetStats()
	}
	if regs != nil {
		regs.resetCycles()
	}
}

// Config returns the Shield's configuration.
func (s *Shield) Config() Config { return s.cfg }
