package shield

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"shef/internal/axi"
	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// This file covers the write side of the pipelined data path — batched
// flush write-back, bulk-eviction write combining, the intrusive LRU —
// and the adaptive sequential prefetcher, plus the acceptance benchmarks
// BenchmarkFlushBatched and BenchmarkSequentialChunkedRead.

// recordPort wraps a MemoryPort and records the address of every write
// transaction, so tests can assert DRAM write order and batching.
type recordPort struct {
	inner  axi.MemoryPort
	writes []uint64
	wsizes []int
}

func (p *recordPort) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	return p.inner.ReadBurst(addr, buf)
}

func (p *recordPort) WriteBurst(addr uint64, data []byte) (uint64, error) {
	p.writes = append(p.writes, addr)
	p.wsizes = append(p.wsizes, len(data))
	return p.inner.WriteBurst(addr, data)
}

// newBatchRig provisions a Shield over a recording port with the given
// config and params.
func newBatchRig(tb testing.TB, cfg Config, params perf.Params) (*Shield, *recordPort, *mem.DRAM) {
	tb.Helper()
	dram := mem.NewDRAM(16<<20, perf.Default())
	port := &recordPort{inner: dram}
	ocm := mem.NewOCM(1 << 30)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sh, err := New(cfg, priv, port, ocm, params)
	if err != nil {
		tb.Fatal(err)
	}
	dek := bytes.Repeat([]byte{0xC3}, 32)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		tb.Fatal(err)
	}
	return sh, port, dram
}

// flushBenchConfig is the acceptance configuration: one 1 MiB region,
// 512-byte chunks, a 16-engine pool with PMAC so sealing parallelises,
// freshness counters on, and a buffer large enough to hold every line
// dirty at once.
func flushBenchConfig(size uint64) Config {
	return Config{
		Regions: []RegionConfig{{
			Name: "bulk", Base: 0, Size: size, ChunkSize: 512,
			AESEngines: 16, SBox: aesx.SBox16x, KeySize: aesx.AES128,
			MAC: PMAC, BufferBytes: int(size), Freshness: true,
		}},
		Registers: 4,
	}
}

// dirtyFlushCycles dirties the whole region through full-chunk overwrites
// and returns the busy cycles the flush alone cost.
func dirtyFlushCycles(tb testing.TB, sh *Shield, img []byte) uint64 {
	tb.Helper()
	if _, err := sh.WriteBurst(0, img); err != nil {
		tb.Fatal(err)
	}
	sh.ResetStats()
	if err := sh.Flush(); err != nil {
		tb.Fatal(err)
	}
	return sh.Report().Regions[0].BusyCycles
}

// TestFlushBatchedSpeedup enforces the acceptance criterion: flushing a
// fully dirty 1 MiB region (512 B chunks, 16 engines) through the batched
// write-back pipeline is at least twice as fast, in simulated cycles, as
// the per-chunk accounting (WritebackBatchChunks = 1).
func TestFlushBatchedSpeedup(t *testing.T) {
	const size = 1 << 20
	img := make([]byte, size)
	rand.New(rand.NewSource(21)).Read(img)

	serialParams := perf.Default()
	serialParams.WritebackBatchChunks = 1
	shSerial, _, _ := newBatchRig(t, flushBenchConfig(size), serialParams)
	serial := dirtyFlushCycles(t, shSerial, img)

	shBatched, _, _ := newBatchRig(t, flushBenchConfig(size), perf.Default())
	batched := dirtyFlushCycles(t, shBatched, img)

	speedup := float64(serial) / float64(batched)
	t.Logf("1 MiB flush: per-chunk %d cyc, batched %d cyc, speedup %.2fx", serial, batched, speedup)
	if speedup < 2.0 {
		t.Fatalf("batched flush speedup %.2fx below the 2x acceptance bar", speedup)
	}

	// The batched flush must publish exactly the same plaintext.
	shBatched.InvalidateClean()
	got := make([]byte, size)
	if _, err := shBatched.ReadBurst(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("batched flush corrupted the region image")
	}
	// Exactly one freshness epoch per chunk, batched or not.
	snap, err := shBatched.CounterSnapshot("bulk")
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range snap.Counters {
		if c != 1 {
			t.Fatalf("chunk %d counter = %d, want 1 after one flush", i, c)
		}
	}
	rs := shBatched.Report().Regions[0]
	if rs.Writebacks != size/512 || rs.BatchedWritebacks != size/512 {
		t.Fatalf("writebacks %d batched %d, want %d each", rs.Writebacks, rs.BatchedWritebacks, size/512)
	}
}

// BenchmarkFlushBatched measures the batched flush of a fully dirty 1 MiB
// region and reports the simulated speedup over per-chunk accounting —
// the sim-flush-* metrics CI's benchmark gate tracks.
func BenchmarkFlushBatched(b *testing.B) {
	const size = 1 << 20
	img := make([]byte, size)
	rand.New(rand.NewSource(22)).Read(img)

	serialParams := perf.Default()
	serialParams.WritebackBatchChunks = 1
	shSerial, _, _ := newBatchRig(b, flushBenchConfig(size), serialParams)
	serial := dirtyFlushCycles(b, shSerial, img)

	sh, _, _ := newBatchRig(b, flushBenchConfig(size), perf.Default())
	batched := dirtyFlushCycles(b, sh, img)

	params := perf.Default()
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sh.WriteBurst(0, img); err != nil {
			b.Fatal(err)
		}
		if err := sh.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(serial)/float64(batched), "sim-flush-speedup-x")
	b.ReportMetric(float64(size)/(1<<20)/params.Seconds(batched), "sim-flush-MiB/s")
	b.Logf("per-chunk %d cyc vs batched %d cyc → %.2fx", serial, batched, float64(serial)/float64(batched))
}

// TestFlushDeterministic: flush used to iterate the line map in Go's
// random order; it must store chunks in ascending address order (stable
// DRAM write order, stable cycle accounting) run after run.
func TestFlushDeterministic(t *testing.T) {
	cfg := flushBenchConfig(1 << 16)
	var lastCycles uint64
	for trial := 0; trial < 3; trial++ {
		sh, port, _ := newBatchRig(t, cfg, perf.Default())
		img := make([]byte, 1<<16)
		rand.New(rand.NewSource(23)).Read(img)
		if _, err := sh.WriteBurst(0, img); err != nil {
			t.Fatal(err)
		}
		sh.ResetStats()
		port.writes = port.writes[:0]
		if err := sh.Flush(); err != nil {
			t.Fatal(err)
		}
		layout, err := sh.Layout("bulk")
		if err != nil {
			t.Fatal(err)
		}
		lastData, lastTag := -1, -1
		for i, addr := range port.writes {
			if addr < layout.TagBase {
				if int(addr) <= lastData {
					t.Fatalf("trial %d: data writes out of order: %#x after %#x (write %d)", trial, addr, lastData, i)
				}
				lastData = int(addr)
			} else {
				if int(addr) <= lastTag {
					t.Fatalf("trial %d: tag writes out of order: %#x after %#x (write %d)", trial, addr, lastTag, i)
				}
				lastTag = int(addr)
			}
		}
		cycles := sh.Report().Regions[0].BusyCycles
		if trial > 0 && cycles != lastCycles {
			t.Fatalf("trial %d: flush cost %d cycles, previous run %d (nondeterministic accounting)", trial, cycles, lastCycles)
		}
		lastCycles = cycles
	}
}

// churnConfig is a tiny 4-line buffer over a 32-chunk region, built to
// force eviction churn.
func churnConfig() Config {
	return Config{
		Regions: []RegionConfig{{
			Name: "churn", Base: 0, Size: 32 * 512, ChunkSize: 512,
			AESEngines: 4, SBox: aesx.SBox16x, KeySize: aesx.AES128,
			MAC: PMAC, BufferBytes: 4 * 512, Freshness: true,
		}},
		Registers: 4,
	}
}

// TestEvictionChurnLRUOrder overfills the buffer with dirty lines under
// WritebackBatchChunks=1 (every eviction stores exactly its victim), so
// the recorded DRAM write order IS the victim order — which must be
// strict LRU recency order as maintained by the intrusive list.
func TestEvictionChurnLRUOrder(t *testing.T) {
	params := perf.Default()
	params.WritebackBatchChunks = 1
	sh, port, _ := newBatchRig(t, churnConfig(), params)
	chunk := make([]byte, 512)

	// Dirty chunks 0..3 (buffer now full), then touch 1 and 0 so recency
	// is [0, 1, 3, 2] (most→least recent: victims come off the tail).
	for c := 0; c < 4; c++ {
		chunk[0] = byte(c)
		if _, err := sh.WriteBurst(uint64(c*512), chunk); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []int{1, 0} {
		if _, err := sh.ReadBurst(uint64(c*512), make([]byte, 8)); err != nil {
			t.Fatal(err)
		}
	}
	port.writes = port.writes[:0]

	// Six more dirty chunks evict, in strict LRU order: 2, 3, 1, 0, then
	// the newly inserted 8 and 9 (8 written before 9, touched in order).
	for c := 8; c < 14; c++ {
		chunk[0] = byte(c)
		if _, err := sh.WriteBurst(uint64(c*512), chunk); err != nil {
			t.Fatal(err)
		}
	}
	wantVictims := []int{2, 3, 1, 0, 8, 9}
	var gotVictims []int
	layout, _ := sh.Layout("churn")
	for _, addr := range port.writes {
		if addr < layout.TagBase { // data store, not the tag store
			gotVictims = append(gotVictims, int(addr/512))
		}
	}
	if fmt.Sprint(gotVictims) != fmt.Sprint(wantVictims) {
		t.Fatalf("victim write-back order %v, want strict LRU %v", gotVictims, wantVictims)
	}

	rs := sh.Report().Regions[0]
	if rs.Evictions != 6 {
		t.Fatalf("evictions = %d, want 6", rs.Evictions)
	}
	if rs.Writebacks != 6 || rs.BatchedWritebacks != 0 {
		t.Fatalf("writebacks = %d batched = %d, want 6 and 0 under batch size 1", rs.Writebacks, rs.BatchedWritebacks)
	}
}

// TestEvictionChurnBatchedStats cross-checks Evictions / Writebacks /
// BatchedWritebacks against a known access trace with write combining
// enabled: a dirty victim's contiguous dirty neighbours ride the same
// batched store and stay resident (clean).
func TestEvictionChurnBatchedStats(t *testing.T) {
	sh, port, _ := newBatchRig(t, churnConfig(), perf.Default())
	chunk := make([]byte, 512)
	// Dirty chunks 0..3; writing chunk 4 evicts LRU victim 0, and write
	// combining extends the store across dirty neighbours 1..3.
	for c := 0; c < 5; c++ {
		chunk[0] = byte(c)
		if _, err := sh.WriteBurst(uint64(c*512), chunk); err != nil {
			t.Fatal(err)
		}
	}
	rs := sh.Report().Regions[0]
	if rs.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1 (only the victim leaves)", rs.Evictions)
	}
	if rs.Writebacks != 4 || rs.BatchedWritebacks != 4 {
		t.Fatalf("writebacks = %d batched = %d, want 4 and 4 (one combined run)", rs.Writebacks, rs.BatchedWritebacks)
	}
	// One data store + one tag store for the whole run.
	layout, _ := sh.Layout("churn")
	var dataWrites int
	for i, addr := range port.writes {
		if addr < layout.TagBase {
			dataWrites++
			if port.wsizes[i] != 4*512 {
				t.Fatalf("combined store was %d bytes, want %d", port.wsizes[i], 4*512)
			}
		}
	}
	if dataWrites != 1 {
		t.Fatalf("data store transactions = %d, want 1 batched run", dataWrites)
	}
	// Chunks 1..3 stayed resident and clean: the flush stores only the
	// still-dirty chunk 4, not the lines write combining already cleaned.
	port.writes = port.writes[:0]
	if err := sh.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, addr := range port.writes {
		if addr < layout.TagBase && addr != 4*512 {
			t.Fatalf("flush re-stored chunk %d after write combining cleaned it", int(addr/512))
		}
	}
	// And the data still round-trips.
	sh.InvalidateClean()
	got := make([]byte, 512)
	for c := 0; c < 5; c++ {
		if _, err := sh.ReadBurst(uint64(c*512), got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(c) {
			t.Fatalf("chunk %d byte 0 = %d, want %d", c, got[0], c)
		}
	}
}

// prefetchConfig arms the sequential prefetcher over a preloadable region.
func prefetchConfig(size uint64, prefetch bool) Config {
	return Config{
		Regions: []RegionConfig{{
			Name: "bulk", Base: 0, Size: size, ChunkSize: 512,
			AESEngines: 16, SBox: aesx.SBox16x, KeySize: aesx.AES128,
			MAC: PMAC, BufferBytes: 32 * 512, SeqPrefetch: prefetch,
		}},
		Registers: 4,
	}
}

// newPrefetchRig preloads size bytes of sealed data (the Data Owner DMA
// path) behind a Shield with or without the prefetcher armed.
func newPrefetchRig(tb testing.TB, size uint64, prefetch bool) (*Shield, []byte) {
	tb.Helper()
	cfg := prefetchConfig(size, prefetch)
	dram := mem.NewDRAM(2*size+1<<20, perf.Default())
	ocm := mem.NewOCM(1 << 30)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sh, err := New(cfg, priv, dram, ocm, perf.Default())
	if err != nil {
		tb.Fatal(err)
	}
	dek := bytes.Repeat([]byte{0x7E}, 32)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		tb.Fatal(err)
	}
	img := make([]byte, size)
	rand.New(rand.NewSource(24)).Read(img)
	ct, tags, err := SealRegionData(cfg.Regions[0], 1, dek, img)
	if err != nil {
		tb.Fatal(err)
	}
	layout, err := sh.Layout("bulk")
	if err != nil {
		tb.Fatal(err)
	}
	if err := dram.RawWrite(layout.DataBase, ct); err != nil {
		tb.Fatal(err)
	}
	if err := dram.RawWrite(layout.TagBase, tags); err != nil {
		tb.Fatal(err)
	}
	if err := sh.MarkPreloaded("bulk"); err != nil {
		tb.Fatal(err)
	}
	return sh, img
}

// chunkAtATime reads the whole region through per-chunk ReadBursts — the
// access pattern of kernels that never issue bulk transfers — and returns
// the busy cycles.
func chunkAtATime(tb testing.TB, sh *Shield, img []byte) uint64 {
	tb.Helper()
	sh.InvalidateClean()
	sh.ResetStats()
	buf := make([]byte, 512)
	for off := 0; off < len(img); off += 512 {
		if _, err := sh.ReadBurst(uint64(off), buf); err != nil {
			tb.Fatal(err)
		}
		if !bytes.Equal(buf, img[off:off+512]) {
			tb.Fatalf("chunk at %d read wrong bytes", off)
		}
	}
	return sh.Report().Regions[0].BusyCycles
}

// TestSequentialPrefetchClosesStreamGap enforces the acceptance
// criterion: chunk-at-a-time sequential reads with the prefetcher armed
// close most of the gap to an explicit ReadStream of the same region.
func TestSequentialPrefetchClosesStreamGap(t *testing.T) {
	if testing.Short() {
		t.Skip("1 MiB crypto sweep in -short mode")
	}
	const size = 1 << 20
	shOff, img := newPrefetchRig(t, size, false)
	chunked := chunkAtATime(t, shOff, img)

	shOn, img2 := newPrefetchRig(t, size, true)
	prefetched := chunkAtATime(t, shOn, img2)
	rs := shOn.Report().Regions[0]
	if rs.Prefetched == 0 || rs.PrefetchHits == 0 {
		t.Fatalf("prefetcher never engaged: %+v", rs)
	}

	shOn.InvalidateClean()
	shOn.ResetStats()
	buf := make([]byte, size)
	if _, err := shOn.ReadStream(0, buf); err != nil {
		t.Fatal(err)
	}
	streamed := shOn.Report().Regions[0].BusyCycles

	t.Logf("1 MiB sequential: chunked %d cyc, prefetched %d cyc, streamed %d cyc", chunked, prefetched, streamed)
	if prefetched >= chunked {
		t.Fatalf("prefetcher did not help: %d >= %d cycles", prefetched, chunked)
	}
	// "Most of the gap": at least 70% of the chunked→streamed win.
	gapClosed := float64(chunked-prefetched) / float64(chunked-streamed)
	t.Logf("gap to ReadStream closed: %.0f%%", gapClosed*100)
	if gapClosed < 0.70 {
		t.Fatalf("prefetcher closed only %.0f%% of the stream gap, want ≥70%%", gapClosed*100)
	}
}

// BenchmarkSequentialChunkedRead measures chunk-at-a-time sequential
// reads with and without the adaptive prefetcher, against ReadStream —
// the sim-prefetch-* metrics CI's benchmark gate tracks.
func BenchmarkSequentialChunkedRead(b *testing.B) {
	const size = 1 << 20
	shOff, img := newPrefetchRig(b, size, false)
	chunked := chunkAtATime(b, shOff, img)

	sh, img2 := newPrefetchRig(b, size, true)
	prefetched := chunkAtATime(b, sh, img2)

	sh.InvalidateClean()
	sh.ResetStats()
	big := make([]byte, size)
	if _, err := sh.ReadStream(0, big); err != nil {
		b.Fatal(err)
	}
	streamed := sh.Report().Regions[0].BusyCycles

	params := perf.Default()
	b.SetBytes(size)
	b.ResetTimer()
	buf := make([]byte, 512)
	for i := 0; i < b.N; i++ {
		sh.InvalidateClean()
		for off := 0; off < len(img2); off += 512 {
			if _, err := sh.ReadBurst(uint64(off), buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(chunked)/float64(prefetched), "sim-prefetch-speedup-x")
	b.ReportMetric(float64(chunked-prefetched)/float64(chunked-streamed)*100, "sim-prefetch-gap-closed-pct")
	b.ReportMetric(float64(size)/(1<<20)/params.Seconds(prefetched), "sim-prefetch-MiB/s")
	b.Logf("chunked %d cyc, prefetched %d cyc (%.2fx), streamed %d cyc",
		chunked, prefetched, float64(chunked)/float64(prefetched), streamed)
}

// TestPrefetchServesCorrectData reads random unaligned spans with the
// prefetcher armed; every span must match the image, prefetched lines
// must serve later demand hits, and resident dirty lines must stay
// authoritative.
func TestPrefetchServesCorrectData(t *testing.T) {
	const size = 1 << 16
	sh, img := newPrefetchRig(t, size, true)
	rng := rand.New(rand.NewSource(25))

	// Sequential sweep to engage the prefetcher.
	buf := make([]byte, 512)
	for off := 0; off < size; off += 512 {
		if _, err := sh.ReadBurst(uint64(off), buf); err != nil {
			t.Fatal(err)
		}
	}
	rs := sh.Report().Regions[0]
	if rs.Prefetched == 0 {
		t.Fatal("sequential sweep never prefetched")
	}
	if rs.PrefetchHits > rs.Prefetched {
		t.Fatalf("prefetch hits %d exceed prefetched chunks %d", rs.PrefetchHits, rs.Prefetched)
	}

	// Dirty a line mid-region, then re-sweep: the dirty resident line is
	// authoritative even when the surrounding chunks prefetch.
	patch := []byte("dirty-resident-line-wins")
	if _, err := sh.WriteBurst(uint64(size/2+64), patch); err != nil {
		t.Fatal(err)
	}
	copy(img[size/2+64:], patch)
	sh.InvalidateClean()
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(4096)
		off := rng.Intn(size - n)
		span := make([]byte, n)
		if _, err := sh.ReadBurst(uint64(off), span); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(span, img[off:off+n]) {
			t.Fatalf("span [%d,+%d) read wrong bytes", off, n)
		}
	}
}

// TestPrefetchIntegrityTamperLatches: corruption inside a prefetched
// window is caught by the fan-out verify and latches the set.
func TestPrefetchIntegrityTamperLatches(t *testing.T) {
	const size = 1 << 14
	cfg := prefetchConfig(size, true)
	dram := mem.NewDRAM(2*size+1<<20, perf.Default())
	ocm := mem.NewOCM(1 << 30)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(cfg, priv, dram, ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	dek := bytes.Repeat([]byte{0x7E}, 32)
	lk, _ := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err := sh.ProvisionLoadKey(lk); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, size)
	rand.New(rand.NewSource(26)).Read(img)
	ct, tags, err := SealRegionData(cfg.Regions[0], 1, dek, img)
	if err != nil {
		t.Fatal(err)
	}
	layout, _ := sh.Layout("bulk")
	if err := dram.RawWrite(layout.DataBase, ct); err != nil {
		t.Fatal(err)
	}
	if err := dram.RawWrite(layout.TagBase, tags); err != nil {
		t.Fatal(err)
	}
	if err := sh.MarkPreloaded("bulk"); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in a chunk the prefetcher (not the demand miss) fetches.
	raw, err := dram.RawRead(10*512, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := dram.RawWrite(10*512, []byte{raw[0] ^ 1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 512)
	var gotErr error
	for off := 0; off < size; off += 512 {
		if _, gotErr = sh.ReadBurst(uint64(off), buf); gotErr != nil {
			break
		}
	}
	var ie *IntegrityError
	if !errors.As(gotErr, &ie) {
		t.Fatalf("tampered prefetch returned %v, want IntegrityError", gotErr)
	}
	if _, err := sh.ReadBurst(0, make([]byte, 16)); err == nil {
		t.Fatal("set served traffic after prefetch integrity fault")
	}
}
