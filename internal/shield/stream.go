package shield

import (
	"fmt"

	"shef/internal/axi"
)

// This file is the Shield's streaming data path: ReadStream/WriteStream
// move multi-chunk bursts through a three-stage pipeline instead of the
// chunk-at-a-time load/decrypt/verify/copy loop of ReadBurst/WriteBurst.
//
//	stage 1  fetch ciphertext + tags for a window of chunks from DRAM in
//	         one batched AXI transaction per contiguous run
//	stage 2  decrypt/verify the window across the engine pool, with
//	         goroutine fan-out bounded by the set's AESEngines
//	stage 3  merge into the caller's buffer (on-chip copy)
//
// Windows overlap in the performance model (perf.StreamWindowTime /
// StreamFillDrain): while window k is being verified, window k+1's fetch
// and CTR keystream precomputation are already in flight — CTR keystream
// depends only on the IV, never on the data, so the AES pool generates it
// during the DRAM round trip. The paper claims exactly this overlap for
// the engine set pipeline (§5.2.2); the chunked path cannot exploit it
// because it holds a single outstanding burst and releases data only
// after each MAC check (perf.Params.OverlapAlpha).
//
// Locking is window-granular: the engine-set mutex is taken per window,
// not for the whole stream, so chunked accesses and other streams to the
// same region interleave between windows. Resident buffer lines stay
// authoritative — streamed reads serve them from on-chip memory, and
// streamed full-chunk writes supersede them — so streams and cached
// traffic never diverge. The per-chunk hot path allocates nothing:
// staging buffers, buffer lines, and seal scratch are pooled (the
// remaining per-window cost is the bounded goroutine fan-out, dwarfed by
// the window's crypto work).

// streamWindowChunks is the pipeline window: how many chunks stage 1
// fetches per batched transaction and stage 2 decrypts per fan-out.
const streamWindowChunks = 16

// streamWindow is the preallocated staging state of one pipeline window,
// pooled per engine set so the hot path is allocation-free.
type streamWindow struct {
	ct   []byte
	tags []byte
	idx  [streamWindowChunks]int
	errs [streamWindowChunks]error
}

// fetchRun is the shared stage-1 fetch accounting: one batched AXI
// transaction for runChunks chunks starting at chunk0, ciphertext and
// tags landing in the window's staging at slot0, returning the busy-side
// and bus-side DRAM charges. Every windowed data path (stream, gather)
// uses it so the charge model lives in one place.
func (s *engineSet) fetchRun(win *streamWindow, slot0, chunk0, runChunks int) (dramBusy, dramBus uint64, err error) {
	cs := s.cfg.ChunkSize
	dataAddr, tagAddr := s.dramAddrs(chunk0)
	if _, err := s.port.ReadBurst(dataAddr, win.ct[slot0*cs:(slot0+runChunks)*cs]); err != nil {
		return 0, 0, err
	}
	if _, err := s.port.ReadBurst(tagAddr, win.tags[slot0*TagSize:(slot0+runChunks)*TagSize]); err != nil {
		return 0, 0, err
	}
	busy, bus := s.runCharge(runChunks)
	return busy, bus, nil
}

// storeRun is fetchRun's write-side twin: one batched store for the
// window's sealed ciphertext and tags at slot0.
func (s *engineSet) storeRun(win *streamWindow, slot0, chunk0, runChunks int) (dramBusy, dramBus uint64, err error) {
	cs := s.cfg.ChunkSize
	dataAddr, tagAddr := s.dramAddrs(chunk0)
	if _, err := s.port.WriteBurst(dataAddr, win.ct[slot0*cs:(slot0+runChunks)*cs]); err != nil {
		return 0, 0, err
	}
	if _, err := s.port.WriteBurst(tagAddr, win.tags[slot0*TagSize:(slot0+runChunks)*TagSize]); err != nil {
		return 0, 0, err
	}
	busy, bus := s.runCharge(runChunks)
	return busy, bus, nil
}

// runCharge prices one batched transaction of runChunks chunks plus their
// tags: requests amortise per legal AXI burst, bandwidth per byte.
func (s *engineSet) runCharge(runChunks int) (dramBusy, dramBus uint64) {
	runBytes := runChunks * (s.cfg.ChunkSize + TagSize)
	extraBursts := uint64(axi.BurstsFor(runBytes) - 1)
	return s.params.DRAMCyclesShared(runBytes, s.shareNow()) + extraBursts*s.params.DRAMRequestCycles,
		s.params.DRAMCycles(runBytes) + extraBursts*s.params.DRAMRequestCycles
}

// ReadStream reads like ReadBurst — same plaintext view, same region
// rules — but moves full chunks through the pipelined burst engine.
// Unaligned head and tail bytes fall back to the chunked path. The
// returned cycle count is the engine-set busy time under the overlapped
// pipeline model.
func (s *Shield) ReadStream(addr uint64, buf []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.setFor(addr)
	if err != nil {
		return 0, err
	}
	if addr+uint64(len(buf)) > set.cfg.Base+set.cfg.Size {
		return 0, fmt.Errorf("shield: stream [%#x,+%d) crosses region %q boundary", addr, len(buf), set.cfg.Name)
	}
	return set.readStream(addr, buf)
}

// WriteStream writes like WriteBurst but seals and stores full chunks
// through the pipelined burst engine: seal fan-out across the engine
// pool, then one batched AXI write per window. Full-chunk writes never
// fetch (the streaming write-once pattern); unaligned head and tail bytes
// fall back to the chunked read-modify-write path.
func (s *Shield) WriteStream(addr uint64, data []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.setFor(addr)
	if err != nil {
		return 0, err
	}
	if addr+uint64(len(data)) > set.cfg.Base+set.cfg.Size {
		return 0, fmt.Errorf("shield: stream [%#x,+%d) crosses region %q boundary", addr, len(data), set.cfg.Name)
	}
	return set.writeStream(addr, data)
}

// readStream implements the streamed read for one engine set.
func (s *engineSet) readStream(addr uint64, buf []byte) (uint64, error) {
	return axi.StreamWindows(s.cfg.Base, addr, len(buf), s.cfg.ChunkSize, streamWindowChunks,
		func(a uint64, lo, hi int) (uint64, error) { return s.read(a, buf[lo:hi]) },
		func(a uint64, lo, hi int, first bool) (uint64, error) { return s.readWindow(a, buf[lo:hi], first) })
}

// readWindow moves one chunk-aligned window: classify, batch-fetch,
// fan-out decrypt/verify, merge. addr is chunk-aligned and len(buf) is a
// multiple of ChunkSize, at most streamWindowChunks chunks.
func (s *engineSet) readWindow(addr uint64, buf []byte, first bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.integrityErr != nil {
		return 0, s.integrityErr
	}
	start := s.busyCycles
	cs := s.cfg.ChunkSize
	c0 := int((addr - s.cfg.Base) / uint64(cs))
	n := len(buf) / cs

	win := s.win
	fetch := win.idx[:0]
	for i := 0; i < n; i++ {
		chunk := c0 + i
		dst := buf[i*cs : (i+1)*cs]
		if ln, ok := s.lines[chunk]; ok {
			// Resident lines (clean or dirty) are authoritative.
			s.touchResident(ln)
			copy(dst, ln.data)
			s.hits++
		} else if !s.initialized[chunk] {
			// Virgin chunk: zeros from the on-chip valid bits.
			clear(dst)
		} else {
			fetch = append(fetch, i)
		}
	}

	// Stage 1: one batched fetch per contiguous run of chunks, tags
	// riding the same request window (as chargeChunk accounts them); runs
	// larger than the legal AXI burst pay one request per burst.
	var dramBusy, dramBus uint64
	err := axi.ForEachRun(fetch, func(i0, runChunks int) error {
		busy, bus, err := s.fetchRun(win, i0, c0+i0, runChunks)
		dramBusy += busy
		dramBus += bus
		return err
	})
	if err != nil {
		return s.busyCycles - start, err
	}

	// Stage 2: decrypt/verify fan-out across the engine pool.
	if err := s.openFanout(win, fetch, c0, cs, buf); err != nil {
		s.integrityErr = err
		return s.busyCycles - start, err
	}

	s.chargeWindow(len(fetch), n, len(buf), dramBusy, dramBus, first)
	return s.busyCycles - start, nil
}

// openFanout verifies and decrypts the fetched chunks of a window into
// buf through the engine pool's persistent workers (runJob). Callers hold
// s.mu, so worker reads of counters and the sealer are exclusive with all
// mutation.
func (s *engineSet) openFanout(win *streamWindow, fetch []int, c0, cs int, buf []byte) error {
	for k, i := range fetch {
		s.jobSlots[k], s.jobChunks[k], s.jobDsts[k] = i, c0+i, buf[i*cs:(i+1)*cs]
	}
	s.runJob(true, len(fetch))
	for k := range fetch {
		if err := win.errs[k]; err != nil {
			win.errs[k] = nil
			return err
		}
	}
	return nil
}

// writeStream implements the streamed write for one engine set.
func (s *engineSet) writeStream(addr uint64, data []byte) (uint64, error) {
	return axi.StreamWindows(s.cfg.Base, addr, len(data), s.cfg.ChunkSize, streamWindowChunks,
		func(a uint64, lo, hi int) (uint64, error) { return s.write(a, data[lo:hi]) },
		func(a uint64, lo, hi int, first bool) (uint64, error) { return s.writeWindow(a, data[lo:hi], first) })
}

// writeWindow seals one chunk-aligned window across the engine pool and
// stores ciphertext and tags in one batched AXI transaction each. Full
// windows are always contiguous, so there is exactly one run.
func (s *engineSet) writeWindow(addr uint64, data []byte, first bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.integrityErr != nil {
		return 0, s.integrityErr
	}
	start := s.busyCycles
	cs := s.cfg.ChunkSize
	c0 := int((addr - s.cfg.Base) / uint64(cs))
	n := len(data) / cs

	win := s.win

	// New write epoch for every chunk before sealing it.
	if s.cfg.Freshness {
		for i := 0; i < n; i++ {
			s.counters[c0+i]++
		}
	}

	// Stage 1: seal fan-out across the engine pool's persistent workers.
	for i := 0; i < n; i++ {
		s.jobSlots[i], s.jobChunks[i], s.jobDsts[i] = i, c0+i, data[i*cs:(i+1)*cs]
	}
	s.runJob(false, n)

	// Stage 2: one batched store for the window's ciphertext and tags.
	dramBusy, dramBus, err := s.storeRun(win, 0, c0, n)
	if err != nil {
		return s.busyCycles - start, err
	}

	// The stream write supersedes any resident lines wholesale: DRAM now
	// holds the authoritative ciphertext at the bumped epoch.
	for i := 0; i < n; i++ {
		chunk := c0 + i
		if ln, ok := s.lines[chunk]; ok {
			s.dropLine(ln)
		}
		s.initialized[chunk] = true
	}

	s.chargeWindow(n, n, len(data), dramBusy, dramBus, first)
	return s.busyCycles - start, nil
}

// ReadGather implements axi.Gatherer: the runs — disjoint ascending
// chunk-aligned whole-chunk ranges inside one region — travel as ONE
// pipelined stream. Chunks from consecutive runs pack into shared
// pipeline windows, so a scattered transfer (a Path ORAM root-to-leaf
// path) gets the same per-window amortisation as a contiguous stream and
// pays pipeline fill/drain once per gather, not once per run. Stage 1
// still issues one batched AXI transaction per contiguous chunk run.
func (s *Shield) ReadGather(runs []axi.Burst, buf []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.gatherSet(runs, len(buf))
	if err != nil {
		return 0, err
	}
	return set.gather(runs, buf, set.readWindowSlots)
}

// WriteGather implements axi.Gatherer for the write side: seal fan-out
// across the engine pool, one batched store per contiguous chunk run,
// windows overlapped, fill/drain once per gather. Runs are whole chunks,
// so stores never read-modify-write.
func (s *Shield) WriteGather(runs []axi.Burst, data []byte) (uint64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.gatherSet(runs, len(data))
	if err != nil {
		return 0, err
	}
	return set.gather(runs, data, set.writeWindowSlots)
}

// gatherSet validates a gather against the region layout: one engine set,
// chunk-aligned whole-chunk ascending disjoint runs, packed buffer.
func (s *Shield) gatherSet(runs []axi.Burst, n int) (*engineSet, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("shield: empty gather")
	}
	set, err := s.setFor(runs[0].Addr)
	if err != nil {
		return nil, err
	}
	cs := uint64(set.cfg.ChunkSize)
	total := 0
	prevEnd := uint64(0)
	for _, r := range runs {
		if r.Len <= 0 {
			return nil, fmt.Errorf("shield: gather run %v has no length", r)
		}
		if r.Addr < set.cfg.Base || r.Addr+uint64(r.Len) > set.cfg.Base+set.cfg.Size {
			return nil, fmt.Errorf("shield: gather run %v outside region %q", r, set.cfg.Name)
		}
		if (r.Addr-set.cfg.Base)%cs != 0 || uint64(r.Len)%cs != 0 {
			return nil, fmt.Errorf("shield: gather run %v not chunk-aligned (chunk %d)", r, cs)
		}
		if r.Addr < prevEnd {
			return nil, fmt.Errorf("shield: gather runs not ascending/disjoint at %v", r)
		}
		prevEnd = r.Addr + uint64(r.Len)
		total += r.Len
	}
	if total != n {
		return nil, fmt.Errorf("shield: gather buffer %d bytes, runs carry %d", n, total)
	}
	return set, nil
}

// gather walks the runs, packing chunks into pipeline windows of up to
// streamWindowChunks slots and handing each window to move (the read or
// write window implementation). Only the very first window pays
// fill/drain.
func (s *engineSet) gather(runs []axi.Burst,
	buf []byte, move func(chunks, offs []int, buf []byte, first bool) (uint64, error)) (uint64, error) {

	cs := s.cfg.ChunkSize
	var chunks, offs [streamWindowChunks]int
	var total uint64
	n, off := 0, 0
	first := true
	flush := func() error {
		if n == 0 {
			return nil
		}
		c, err := move(chunks[:n], offs[:n], buf, first)
		total += c
		first = false
		n = 0
		return err
	}
	for _, r := range runs {
		c0 := int((r.Addr - s.cfg.Base) / uint64(cs))
		for k := 0; k < r.Len/cs; k++ {
			chunks[n] = c0 + k
			offs[n] = off
			n++
			off += cs
			if n == streamWindowChunks {
				if err := flush(); err != nil {
					return total, err
				}
			}
		}
	}
	return total, flush()
}

// readWindowSlots is readWindow generalised to a gather window: slot i
// carries absolute chunk chunks[i], delivered at buf[offs[i]]. Fetches
// batch per contiguous chunk run among the missing slots.
func (s *engineSet) readWindowSlots(chunks, offs []int, buf []byte, first bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.integrityErr != nil {
		return 0, s.integrityErr
	}
	start := s.busyCycles
	cs := s.cfg.ChunkSize
	n := len(chunks)

	win := s.win
	fetch := win.idx[:0]
	for i := 0; i < n; i++ {
		chunk := chunks[i]
		dst := buf[offs[i] : offs[i]+cs]
		if ln, ok := s.lines[chunk]; ok {
			// Resident lines (clean or dirty) are authoritative.
			s.touchResident(ln)
			copy(dst, ln.data)
			s.hits++
		} else if !s.initialized[chunk] {
			clear(dst)
		} else {
			fetch = append(fetch, i)
		}
	}

	// Stage 1: one batched fetch per contiguous run of missing chunks
	// (adjacent slots carrying adjacent chunks), tags riding along.
	var dramBusy, dramBus uint64
	for i := 0; i < len(fetch); {
		j := i
		for j+1 < len(fetch) && fetch[j+1] == fetch[j]+1 && chunks[fetch[j+1]] == chunks[fetch[j]]+1 {
			j++
		}
		i0, runChunks := fetch[i], j-i+1
		busy, bus, err := s.fetchRun(win, i0, chunks[i0], runChunks)
		if err != nil {
			return s.busyCycles - start, err
		}
		dramBusy += busy
		dramBus += bus
		i = j + 1
	}

	// Stage 2: decrypt/verify fan-out into the scattered destinations.
	for k, i := range fetch {
		s.jobSlots[k], s.jobChunks[k], s.jobDsts[k] = i, chunks[i], buf[offs[i]:offs[i]+cs]
	}
	s.runJob(true, len(fetch))
	for k := range fetch {
		if err := win.errs[k]; err != nil {
			win.errs[k] = nil
			s.integrityErr = err
			return s.busyCycles - start, err
		}
	}

	s.chargeWindow(len(fetch), n, n*cs, dramBusy, dramBus, first)
	return s.busyCycles - start, nil
}

// writeWindowSlots is writeWindow generalised to a gather window: seal
// fan-out across the pool, then one batched store per contiguous chunk
// run. Full-chunk stores supersede resident lines and never fetch.
func (s *engineSet) writeWindowSlots(chunks, offs []int, data []byte, first bool) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.integrityErr != nil {
		return 0, s.integrityErr
	}
	start := s.busyCycles
	cs := s.cfg.ChunkSize
	n := len(chunks)

	win := s.win

	// New write epoch for every chunk before sealing it.
	if s.cfg.Freshness {
		for _, chunk := range chunks {
			s.counters[chunk]++
		}
	}

	// Stage 1: seal fan-out across the engine pool's persistent workers.
	for i := 0; i < n; i++ {
		s.jobSlots[i], s.jobChunks[i], s.jobDsts[i] = i, chunks[i], data[offs[i]:offs[i]+cs]
	}
	s.runJob(false, n)

	// Stage 2: one batched store per contiguous chunk run.
	var dramBusy, dramBus uint64
	for i := 0; i < n; {
		j := i
		for j+1 < n && chunks[j+1] == chunks[j]+1 {
			j++
		}
		busy, bus, err := s.storeRun(win, i, chunks[i], j-i+1)
		if err != nil {
			return s.busyCycles - start, err
		}
		dramBusy += busy
		dramBus += bus
		i = j + 1
	}

	// The gather write supersedes any resident lines wholesale: DRAM now
	// holds the authoritative ciphertext at the bumped epoch.
	for _, chunk := range chunks {
		if ln, ok := s.lines[chunk]; ok {
			s.dropLine(ln)
		}
		s.initialized[chunk] = true
	}

	s.chargeWindow(n, n, n*cs, dramBusy, dramBus, first)
	return s.busyCycles - start, nil
}

// chargeWindow accounts one pipeline window under the overlapped model:
// the window is paced by its slowest stage (DRAM, the AES pool, the
// serial HMAC core, or the on-chip merge), the first window additionally
// pays pipeline fill/drain, and the per-window issue cost replaces the
// chunked path's per-chunk issue cost.
//
// The AES pool stage bundles CTR keystream work with PMAC block work: for
// reads the keystream precomputes during the fetch of earlier windows,
// but the pool must still serve every block, so pool occupancy — not the
// per-chunk wave latency — is what paces a saturated stream.
//
// fetched is the number of chunks that actually crossed the crypto
// pipeline (reads served from resident lines or valid bits skip it);
// chunks is everything the window moved, which is what Streamed reports.
func (s *engineSet) chargeWindow(fetched, chunks, bytes int, dramBusy, dramBus uint64, first bool) {
	poolStage, hmacStage := s.cryptoStages(fetched)
	s.chargeOverlapped(dramBusy, dramBus, poolStage, hmacStage, uint64(bytes)/64, first)
	s.streamed += uint64(chunks)
	s.streamWindows++
}
