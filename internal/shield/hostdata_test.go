package shield

import (
	"bytes"
	"testing"
)

// TestPreloadPath exercises the full host input path: the Data Owner seals
// a region image, the (untrusted) host DMAs it into DRAM, the Shield is
// told the region is preloaded, and the accelerator reads plaintext.
func TestPreloadPath(t *testing.T) {
	rig := newRig(t, simpleConfig())
	cfg := rig.shield.Config().Regions[0]
	layout, err := rig.shield.Layout("data")
	if err != nil {
		t.Fatal(err)
	}
	image := make([]byte, cfg.Size)
	for i := range image {
		image[i] = byte(i * 7)
	}
	ct, tags, err := SealRegionData(cfg, layout.RegionID, rig.dek, image)
	if err != nil {
		t.Fatal(err)
	}
	// Host DMA (raw, untrusted path).
	rig.dram.RawWrite(layout.DataBase, ct)
	rig.dram.RawWrite(layout.TagBase, tags)
	if err := rig.shield.MarkPreloaded("data"); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, cfg.Size)
	if _, err := rig.shield.ReadBurst(cfg.Base, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, image) {
		t.Fatal("preloaded image did not decrypt correctly through the shield")
	}
}

// TestResultExportPath exercises the output direction: accelerator writes,
// Shield flushes, host DMAs ciphertext out, Data Owner opens it with the
// counter snapshot.
func TestResultExportPath(t *testing.T) {
	rig := newRig(t, simpleConfig())
	cfg := rig.shield.Config().Regions[0] // freshness-protected region
	layout, _ := rig.shield.Layout("data")

	result := bytes.Repeat([]byte("RESULT42"), int(cfg.Size)/8)
	if _, err := rig.shield.WriteBurst(cfg.Base, result); err != nil {
		t.Fatal(err)
	}
	if err := rig.shield.Flush(); err != nil {
		t.Fatal(err)
	}
	ct, _ := rig.dram.RawRead(layout.DataBase, int(layout.DataSize))
	tags, _ := rig.dram.RawRead(layout.TagBase, int(layout.TagSize))

	snap, err := rig.shield.CounterSnapshot("data")
	if err != nil {
		t.Fatal(err)
	}
	if !rig.shield.Registers().VerifyCounterSnapshot(snap) {
		t.Fatal("authentic counter snapshot rejected")
	}
	forged := snap
	forged.Counters = append([]uint32(nil), snap.Counters...)
	forged.Counters[0]++
	if rig.shield.Registers().VerifyCounterSnapshot(forged) {
		t.Fatal("forged counter snapshot accepted")
	}

	got, err := OpenRegionData(cfg, layout.RegionID, rig.dek, ct, tags, snap.Counters)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, result) {
		t.Fatal("exported result did not decrypt on the data owner side")
	}
}

func TestOpenRegionDataDetectsTamper(t *testing.T) {
	cfg := simpleConfig().Regions[1] // non-fresh region: nil counters
	dek := bytes.Repeat([]byte{9}, 32)
	image := make([]byte, cfg.Size)
	ct, tags, err := SealRegionData(cfg, 2, dek, image)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRegionData(cfg, 2, dek, ct, tags, nil); err != nil {
		t.Fatalf("clean image rejected: %v", err)
	}
	ct[0] ^= 1
	if _, err := OpenRegionData(cfg, 2, dek, ct, tags, nil); err == nil {
		t.Fatal("tampered export accepted")
	}
}

func TestSealRegionDataSizeChecks(t *testing.T) {
	cfg := simpleConfig().Regions[0]
	dek := bytes.Repeat([]byte{9}, 32)
	if _, _, err := SealRegionData(cfg, 1, dek, make([]byte, 10)); err == nil {
		t.Fatal("short image accepted")
	}
	if _, err := OpenRegionData(cfg, 1, dek, make([]byte, cfg.Size), nil, nil); err == nil {
		t.Fatal("missing tags accepted")
	}
	if _, err := OpenRegionData(cfg, 1, dek, make([]byte, cfg.Size), make([]byte, cfg.Chunks()*TagSize), make([]uint32, 1)); err == nil {
		t.Fatal("short counter array accepted")
	}
}

func TestLayoutUnknownRegion(t *testing.T) {
	rig := newRig(t, simpleConfig())
	if _, err := rig.shield.Layout("nope"); err == nil {
		t.Fatal("unknown region layout served")
	}
	if err := rig.shield.MarkPreloaded("nope"); err == nil {
		t.Fatal("unknown region preload accepted")
	}
	if _, err := rig.shield.CounterSnapshot("nope"); err == nil {
		t.Fatal("unknown region snapshot served")
	}
}
