package shield

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/kdf"
	"shef/internal/perf"
)

// regOpCycles is the simulated cost of one secured AXI4-Lite access: an
// AES block for the keystream, a short MAC, and the Lite handshake.
const regOpCycles = 120

// CommonRegAddr is the index carried on the wire when EncryptRegAddrs is
// enabled: every access targets this one address and the true index rides
// encrypted inside the payload (paper §5.1).
const CommonRegAddr = 0xFFFFFFFF

// SealedReg is one encrypted register message on the host <-> Shield wire.
// The host program moves these blobs without being able to read or forge
// them.
type SealedReg struct {
	// Index is the register number, or CommonRegAddr under address
	// encryption.
	Index uint32
	// Seq is the anti-replay sequence number; the Shield accepts only
	// strictly increasing values per direction.
	Seq uint64
	// Payload is AES-CTR ciphertext: 8 bytes of value, plus 4 bytes of
	// true index under address encryption.
	Payload []byte
	// Tag authenticates direction, index, seq, and payload.
	Tag [hmacx.TagSize]byte
}

// RegisterFile is the Shield's secured AXI4-Lite interface: a plaintext
// register file on the accelerator side, sealed messages on the host side.
//
// The server-side entry points (ReadReg/WriteReg for the accelerator,
// HostWrite/HostRead for the sealed host path) are safe for concurrent
// use; the hardware analogue is the AXI4-Lite interconnect serialising
// single-beat accesses. The client-side sealing helpers (SealWrite,
// SealReadRequest, OpenResponse) touch only immutable key material and
// need no locking — each host session owns its own sequence counter.
type RegisterFile struct {
	cfg    Config
	encKey []byte
	macKey []byte
	cipher *aesx.Cipher
	params perf.Params

	mu      sync.Mutex
	regs    []uint64
	lastSeq map[byte]uint64 // per-direction high-water mark
	cycles  uint64
}

// Message directions (domain separation for MACs and IVs).
const (
	dirHostWrite byte = 1
	dirHostRead  byte = 2
	dirResponse  byte = 3
)

func newRegisterFile(cfg Config, dek []byte, params perf.Params) (*RegisterFile, error) {
	encKey := kdf.Derive([]byte("shef/reg-enc"), dek, nil, 32)
	macKey := kdf.Derive([]byte("shef/reg-mac"), dek, nil, 32)
	cipher, err := aesx.NewCipher(encKey)
	if err != nil {
		return nil, err
	}
	n := cfg.Registers
	if n == 0 {
		n = 16
	}
	return &RegisterFile{
		cfg:     cfg,
		regs:    make([]uint64, n),
		encKey:  encKey,
		macKey:  macKey,
		cipher:  cipher,
		lastSeq: make(map[byte]uint64),
		params:  params,
	}, nil
}

// Len reports the register count.
func (rf *RegisterFile) Len() int { return len(rf.regs) }

// --- Accelerator side (plaintext, inside the perimeter) ---

// ReadReg implements axi.RegisterPort for the accelerator.
func (rf *RegisterFile) ReadReg(index int) (uint64, uint64, error) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if index < 0 || index >= len(rf.regs) {
		return 0, 0, fmt.Errorf("shield: register %d out of range", index)
	}
	return rf.regs[index], 1, nil
}

// WriteReg implements axi.RegisterPort for the accelerator.
func (rf *RegisterFile) WriteReg(index int, v uint64) (uint64, error) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	if index < 0 || index >= len(rf.regs) {
		return 0, fmt.Errorf("shield: register %d out of range", index)
	}
	rf.regs[index] = v
	return 1, nil
}

// cyclesSnapshot reads the accumulated AXI4-Lite cycle count.
func (rf *RegisterFile) cyclesSnapshot() uint64 {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	return rf.cycles
}

// resetCycles zeroes the AXI4-Lite cycle count.
func (rf *RegisterFile) resetCycles() {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.cycles = 0
}

// --- Host side (sealed) ---

func (rf *RegisterFile) iv(dir byte, seq uint64) [aesx.IVSize]byte {
	var iv [aesx.IVSize]byte
	// Byte 0 is reserved (zero) to keep register IVs disjoint from chunk
	// IVs, whose first bytes carry a nonzero region ID.
	iv[1] = dir
	binary.BigEndian.PutUint64(iv[2:10], seq)
	return iv
}

func (rf *RegisterFile) macMsg(dir byte, index uint32, seq uint64, payload []byte) []byte {
	msg := make([]byte, 13+len(payload))
	msg[0] = dir
	binary.BigEndian.PutUint32(msg[1:5], index)
	binary.BigEndian.PutUint64(msg[5:13], seq)
	copy(msg[13:], payload)
	return msg
}

// Seal builds a sealed message for the given direction. Exported through
// hostapp.RegClient; kept here so the sealing rules live in one place.
func (rf *RegisterFile) seal(dir byte, index uint32, seq uint64, plain []byte) SealedReg {
	wireIndex := index
	payload := plain
	if rf.cfg.EncryptRegAddrs && dir != dirResponse {
		wireIndex = CommonRegAddr
		payload = make([]byte, 4+len(plain))
		binary.BigEndian.PutUint32(payload[:4], index)
		copy(payload[4:], plain)
	}
	ct := make([]byte, len(payload))
	aesx.CTR(rf.cipher, rf.iv(dir, seq), ct, payload)
	return SealedReg{
		Index:   wireIndex,
		Seq:     seq,
		Payload: ct,
		Tag:     hmacx.Tag(rf.macKey, rf.macMsg(dir, wireIndex, seq, ct)),
	}
}

// open verifies and decrypts a sealed message, enforcing seq monotonicity.
// Callers hold rf.mu (the sequence high-water marks are shared state).
func (rf *RegisterFile) open(dir byte, m SealedReg) (index uint32, plain []byte, err error) {
	if !hmacx.Verify(rf.macKey, rf.macMsg(dir, m.Index, m.Seq, m.Payload), m.Tag) {
		return 0, nil, errors.New("shield: register message authentication failed")
	}
	if m.Seq <= rf.lastSeq[dir] {
		return 0, nil, fmt.Errorf("shield: register message replayed (seq %d <= %d)", m.Seq, rf.lastSeq[dir])
	}
	rf.lastSeq[dir] = m.Seq
	plain = make([]byte, len(m.Payload))
	aesx.CTR(rf.cipher, rf.iv(dir, m.Seq), plain, m.Payload)
	index = m.Index
	if rf.cfg.EncryptRegAddrs {
		if len(plain) < 4 {
			return 0, nil, errors.New("shield: sealed payload too short for encrypted address")
		}
		index = binary.BigEndian.Uint32(plain[:4])
		plain = plain[4:]
	}
	if int(index) >= len(rf.regs) {
		return 0, nil, fmt.Errorf("shield: register %d out of range", index)
	}
	return index, plain, nil
}

// HostWrite applies a sealed host write to the register file.
func (rf *RegisterFile) HostWrite(m SealedReg) error {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.cycles += regOpCycles
	index, plain, err := rf.open(dirHostWrite, m)
	if err != nil {
		return err
	}
	if len(plain) != 8 {
		return fmt.Errorf("shield: register write payload is %d bytes, want 8", len(plain))
	}
	rf.regs[index] = binary.BigEndian.Uint64(plain)
	return nil
}

// HostRead serves a sealed read request: it authenticates the request and
// returns the register value sealed for the response direction, tagged
// with the request's sequence number so responses cannot be swapped.
func (rf *RegisterFile) HostRead(m SealedReg) (SealedReg, error) {
	rf.mu.Lock()
	defer rf.mu.Unlock()
	rf.cycles += regOpCycles
	index, plain, err := rf.open(dirHostRead, m)
	if err != nil {
		return SealedReg{}, err
	}
	if len(plain) != 0 {
		return SealedReg{}, errors.New("shield: register read request carries a payload")
	}
	var value [8]byte
	binary.BigEndian.PutUint64(value[:], rf.regs[index])
	return rf.seal(dirResponse, index, m.Seq, value[:]), nil
}

// SealWrite and SealReadRequest are the client-side sealing entry points
// used by hostapp; they do not touch the register file state.
func (rf *RegisterFile) SealWrite(index uint32, value uint64, seq uint64) SealedReg {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], value)
	return rf.seal(dirHostWrite, index, seq, v[:])
}

// SealReadRequest builds a sealed read request.
func (rf *RegisterFile) SealReadRequest(index uint32, seq uint64) SealedReg {
	return rf.seal(dirHostRead, index, seq, nil)
}

// OpenResponse verifies and decodes a sealed read response on the client.
func (rf *RegisterFile) OpenResponse(m SealedReg, wantSeq uint64) (uint64, error) {
	if m.Seq != wantSeq {
		return 0, fmt.Errorf("shield: response seq %d does not match request %d", m.Seq, wantSeq)
	}
	if !hmacx.Verify(rf.macKey, rf.macMsg(dirResponse, m.Index, m.Seq, m.Payload), m.Tag) {
		return 0, errors.New("shield: register response authentication failed")
	}
	plain := make([]byte, len(m.Payload))
	aesx.CTR(rf.cipher, rf.iv(dirResponse, m.Seq), plain, m.Payload)
	if len(plain) != 8 {
		return 0, errors.New("shield: register response payload malformed")
	}
	return binary.BigEndian.Uint64(plain), nil
}
