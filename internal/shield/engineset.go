package shield

import (
	"fmt"
	"sync"

	"shef/internal/axi"
	"shef/internal/crypto/aesx"
	"shef/internal/crypto/sha256x"
	"shef/internal/mem"
	"shef/internal/perf"
)

// engineSet is the runtime of one configured memory region: the AES engine
// pool, the MAC engine, the on-chip buffer, and (optionally) the freshness
// counters. It is the unit of parallelism in the Shield: engine sets
// operate concurrently — in this reproduction as real goroutines — and the
// performance model takes the maximum busy time across sets (paper §5.2.2).
//
// All exported-to-Shield entry points (read, write, flush, the stats and
// maintenance accessors) take mu; the lower-case helpers below them assume
// it is held. One mutex per set means accesses to *different* regions run
// genuinely in parallel, mirroring the hardware where each engine set is
// its own pipeline, while accesses within a region serialise the way a
// single buffer/port pair would.
type engineSet struct {
	mu sync.Mutex

	cfg      RegionConfig
	regionID uint32
	params   perf.Params
	seal     *sealer

	// dramShare is the number of engine sets contending for this set's
	// off-chip channel; each sees 1/share of the channel bandwidth.
	dramShare int

	// DRAM layout: ciphertext is identity-mapped at cfg.Base; tags live in
	// a reserved area starting at tagBase.
	tagBase uint64
	port    axi.MemoryPort

	// On-chip state (allocated from the device OCM budget).
	lines    map[int]*bufLine // chunk index -> resident line
	lruTick  uint64
	capacity int

	// counters hold the per-chunk write counters when Freshness is on
	// (folded into IV and MAC; see sealer).
	counters []uint32

	// initialized marks chunks that carry valid ciphertext: written back
	// at least once, or preloaded by the host (MarkPreloaded). Reads of
	// never-written chunks return zeros without touching DRAM: the valid
	// bit lives on-chip, so an adversary cannot plant data in virgin
	// memory.
	initialized []bool

	// ocmBytes is the on-chip budget this set holds, returned to the pool
	// when a re-provisioning replaces the set.
	ocmBytes int

	// linePool recycles buffer lines so the chunked hot path allocates
	// nothing in steady state; windows holds the streaming path's batched
	// ciphertext/tag staging buffers for the same reason.
	linePool sync.Pool
	windows  sync.Pool

	// Performance accounting.
	busyCycles                          uint64 // accumulated engine-set busy time (chunk pipeline)
	dramCycles                          uint64 // this set's share of DRAM bus time
	hits, misses, evictions, writebacks uint64
	streamed, streamWindows             uint64 // chunks moved / windows issued by the stream path

	// integrityErr latches the first authentication failure; the Shield
	// refuses further service afterwards, modelling the hardware fault
	// latch that parks the accelerator.
	integrityErr error
}

// bufLine is one cache line of decrypted, authenticated plaintext.
type bufLine struct {
	data  []byte
	dirty bool
	tick  uint64
}

// newEngineSet builds the runtime for a region. Keys are derived from the
// Data Encryption Key per region so that regions are cryptographically
// isolated from one another.
func newEngineSet(cfg RegionConfig, regionID uint32, dek []byte, tagBase uint64,
	port axi.MemoryPort, ocm *mem.OCM, params perf.Params) (*engineSet, error) {

	seal, err := newSealer(cfg, regionID, dek)
	if err != nil {
		return nil, err
	}
	s := &engineSet{
		cfg:      cfg,
		regionID: regionID,
		params:   params,
		seal:     seal,
		tagBase:  tagBase,
		port:     port,
		lines:    make(map[int]*bufLine),
		capacity: cfg.bufferLines(),
	}
	s.linePool.New = func() any {
		return &bufLine{data: make([]byte, cfg.ChunkSize)}
	}
	s.windows.New = func() any {
		return &streamWindow{
			ct:   make([]byte, streamWindowChunks*cfg.ChunkSize),
			tags: make([]byte, streamWindowChunks*TagSize),
		}
	}
	// Charge on-chip memory: the buffer, counters, and valid bits.
	alloc := func(n int, what string) error {
		if _, err := ocm.Alloc(n); err != nil {
			return fmt.Errorf("shield: region %q %s: %w", cfg.Name, what, err)
		}
		s.ocmBytes += n
		return nil
	}
	if err := alloc(s.capacity*cfg.ChunkSize, "buffer"); err != nil {
		s.releaseOCM(ocm)
		return nil, err
	}
	if cfg.Freshness {
		if err := alloc(cfg.Chunks()*CounterSize, "counters"); err != nil {
			s.releaseOCM(ocm)
			return nil, err
		}
	}
	if err := alloc((cfg.Chunks()+7)/8, "valid bits"); err != nil {
		s.releaseOCM(ocm)
		return nil, err
	}
	s.counters = make([]uint32, cfg.Chunks())
	s.initialized = make([]bool, cfg.Chunks())
	return s, nil
}

// releaseOCM returns the set's on-chip budget to the pool (the partial
// reconfiguration that clears a replaced session's logic).
func (s *engineSet) releaseOCM(ocm *mem.OCM) {
	if s.ocmBytes > 0 {
		ocm.Free(s.ocmBytes)
		s.ocmBytes = 0
	}
}

// ctrBlocksPerChunk is the number of AES-CTR keystream blocks per chunk.
func (s *engineSet) ctrBlocksPerChunk() int {
	return (s.cfg.ChunkSize + aesx.BlockSize - 1) / aesx.BlockSize
}

// pmacBlocksPerChunk is the number of PMAC block computations per chunk
// (one per data block plus the tag block), all served by the AES pool.
func (s *engineSet) pmacBlocksPerChunk() int {
	return s.ctrBlocksPerChunk() + 1
}

// poolCycles is the AES engine pool's time to serve n blocks: waves of
// AESEngines blocks each at the engine's per-block latency.
func (s *engineSet) poolCycles(blocks int) uint64 {
	waves := uint64((blocks + s.cfg.AESEngines - 1) / s.cfg.AESEngines)
	return waves * s.seal.engine.CyclesPerBlock()
}

// hmacCyclesPerChunk is the serial HMAC core's time for one chunk: ipad
// block + message blocks + outer pass, one strictly serial stream.
func (s *engineSet) hmacCyclesPerChunk() uint64 {
	return uint64(3+(s.cfg.ChunkSize+sha256x.BlockSize-1)/sha256x.BlockSize) * hmacEngineCyclesPerBlock
}

// cryptoCycles is the engine-set crypto time for one chunk transfer. The
// AES pool serves the CTR blocks plus, under PMAC, the MAC blocks; an HMAC
// engine runs serially in parallel with decryption ("the engine set
// decrypts and authenticates the returned ciphertext in parallel",
// paper §5.2.2).
func (s *engineSet) cryptoCycles() uint64 {
	aesBlocks := s.ctrBlocksPerChunk()
	if s.cfg.MAC == PMAC {
		aesBlocks += s.pmacBlocksPerChunk()
	}
	aesCycles := s.poolCycles(aesBlocks)
	if s.cfg.MAC == PMAC {
		return aesCycles
	}
	if hmacCycles := s.hmacCyclesPerChunk(); hmacCycles > aesCycles {
		return hmacCycles
	}
	return aesCycles
}

// hmacEngineCyclesPerBlock is the Shield HMAC core's cost per 64-byte SHA
// block. The core is modestly unrolled (≈1.2 B/cycle) but strictly serial
// within a stream — which is why SDP saturates on it until PMAC replaces
// it (paper §6.2.3). Calibrated jointly with perf.Default (DESIGN.md §4).
const hmacEngineCyclesPerBlock = 54

// chargeChunk accounts one chunk movement (fetch or write-back): the DRAM
// burst for data plus its tag (fetched in the same request window) and the
// crypto stage, partially overlapped.
func (s *engineSet) chargeChunk() {
	// The set experiences its bandwidth share; the channel-occupancy bound
	// (Report.MemoryCycles) counts the bytes once at full channel rate.
	dram := s.params.DRAMCyclesShared(s.cfg.ChunkSize+TagSize, s.dramShare)
	crypto := s.cryptoCycles()
	s.busyCycles += s.params.ChunkTime(dram, crypto) + s.params.ChunkIssueCycles
	s.dramCycles += s.params.DRAMCycles(s.cfg.ChunkSize + TagSize)
}

// chargeHit accounts a buffer hit: on-chip access only.
func (s *engineSet) chargeHit(nBytes int) {
	s.busyCycles += 1 + uint64(nBytes)/64
}

// dramAddrs returns the ciphertext and tag addresses of a chunk.
func (s *engineSet) dramAddrs(chunk int) (data, tag uint64) {
	data = s.cfg.Base + uint64(chunk*s.cfg.ChunkSize)
	tag = s.tagBase + uint64(chunk*TagSize)
	return
}

// load makes a chunk resident, fetching/decrypting/verifying on miss.
// fill == false skips the DRAM fetch (full-chunk overwrite).
func (s *engineSet) load(chunk int, fill bool) (*bufLine, error) {
	if s.integrityErr != nil {
		return nil, s.integrityErr
	}
	if ln, ok := s.lines[chunk]; ok {
		s.lruTick++
		ln.tick = s.lruTick
		return ln, nil
	}
	if err := s.evictIfFull(); err != nil {
		return nil, err
	}
	ln := s.linePool.Get().(*bufLine)
	ln.dirty = false
	if fill && !s.initialized[chunk] {
		fill = false // virgin chunk: serve zeros from on-chip valid bits
	}
	if fill {
		dataAddr, tagAddr := s.dramAddrs(chunk)
		win := s.windows.Get().(*streamWindow)
		ct := win.ct[:s.cfg.ChunkSize]
		if _, err := s.port.ReadBurst(dataAddr, ct); err != nil {
			s.windows.Put(win)
			s.linePool.Put(ln)
			return nil, err
		}
		if _, err := s.port.ReadBurst(tagAddr, win.tags[:TagSize]); err != nil {
			s.windows.Put(win)
			s.linePool.Put(ln)
			return nil, err
		}
		var tag [TagSize]byte
		copy(tag[:], win.tags[:TagSize])
		err := s.seal.openChunkInto(ln.data, chunk, s.counters[chunk], ct, tag)
		s.windows.Put(win)
		if err != nil {
			s.linePool.Put(ln)
			s.integrityErr = err
			return nil, err
		}
		s.chargeChunk()
		s.misses++
	} else {
		// Zero-filled line: no DRAM traffic, only issue cost.
		clear(ln.data)
		s.busyCycles += s.params.ChunkIssueCycles
		s.misses++
	}
	s.lruTick++
	ln.tick = s.lruTick
	s.lines[chunk] = ln
	return ln, nil
}

// evictIfFull writes back the least recently used line when at capacity.
func (s *engineSet) evictIfFull() error {
	if len(s.lines) < s.capacity {
		return nil
	}
	victim, oldest := -1, ^uint64(0)
	for idx, ln := range s.lines {
		if ln.tick < oldest {
			victim, oldest = idx, ln.tick
		}
	}
	if victim < 0 {
		return nil
	}
	if err := s.writeback(victim); err != nil {
		return err
	}
	s.linePool.Put(s.lines[victim])
	delete(s.lines, victim)
	s.evictions++
	return nil
}

// writeback encrypts and MACs a dirty line and stores ciphertext + tag.
func (s *engineSet) writeback(chunk int) error {
	ln := s.lines[chunk]
	if ln == nil || !ln.dirty {
		return nil
	}
	if s.cfg.Freshness {
		s.counters[chunk]++ // bump before sealing the new epoch
	}
	ct, tag := s.seal.sealChunk(chunk, s.counters[chunk], ln.data)
	dataAddr, tagAddr := s.dramAddrs(chunk)
	if _, err := s.port.WriteBurst(dataAddr, ct); err != nil {
		return err
	}
	if _, err := s.port.WriteBurst(tagAddr, tag[:]); err != nil {
		return err
	}
	s.chargeChunk()
	s.writebacks++
	s.initialized[chunk] = true
	ln.dirty = false
	return nil
}

// read copies region bytes [addr, addr+len(buf)) into buf and returns the
// engine-set busy cycles the access cost.
func (s *engineSet) read(addr uint64, buf []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.busyCycles
	off := addr - s.cfg.Base
	for done := 0; done < len(buf); {
		chunk := int((off + uint64(done)) / uint64(s.cfg.ChunkSize))
		inOff := int((off + uint64(done)) % uint64(s.cfg.ChunkSize))
		ln, err := s.load(chunk, true)
		if err != nil {
			return s.busyCycles - start, err
		}
		n := copy(buf[done:], ln.data[inOff:])
		s.chargeHit(n)
		s.hits++
		done += n
	}
	return s.busyCycles - start, nil
}

// write stores data at addr and returns the busy cycles the access cost.
func (s *engineSet) write(addr uint64, data []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.busyCycles
	off := addr - s.cfg.Base
	for done := 0; done < len(data); {
		chunk := int((off + uint64(done)) / uint64(s.cfg.ChunkSize))
		inOff := int((off + uint64(done)) % uint64(s.cfg.ChunkSize))
		n := s.cfg.ChunkSize - inOff
		if n > len(data)-done {
			n = len(data) - done
		}
		// Full-chunk overwrites never fetch. Partial writes to virgin
		// chunks zero-fill via the valid bits inside load, which subsumes
		// the paper's ZeroFillWrites optimisation while staying correct
		// for partial rewrites.
		fullOverwrite := inOff == 0 && n == s.cfg.ChunkSize
		ln, err := s.load(chunk, !fullOverwrite)
		if err != nil {
			return s.busyCycles - start, err
		}
		copy(ln.data[inOff:], data[done:done+n])
		ln.dirty = true
		s.chargeHit(n)
		s.hits++
		done += n
	}
	return s.busyCycles - start, nil
}

// flush writes back every dirty line (end of kernel / result publication).
func (s *engineSet) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for idx := range s.lines {
		if err := s.writeback(idx); err != nil {
			return err
		}
	}
	return nil
}

// invalidateClean drops clean buffer lines.
func (s *engineSet) invalidateClean() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for idx, ln := range s.lines {
		if !ln.dirty {
			s.linePool.Put(ln)
			delete(s.lines, idx)
		}
	}
}

// stats snapshots the set's counters for Shield.Report.
func (s *engineSet) stats() RegionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return RegionStats{
		Name:          s.cfg.Name,
		Channel:       s.cfg.Channel,
		Hits:          s.hits,
		Misses:        s.misses,
		Evictions:     s.evictions,
		Writebacks:    s.writebacks,
		Streamed:      s.streamed,
		StreamWindows: s.streamWindows,
		BusyCycles:    s.busyCycles,
		DRAMCycles:    s.dramCycles,
	}
}

// resetStats zeroes the set's counters.
func (s *engineSet) resetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.busyCycles, s.dramCycles = 0, 0
	s.hits, s.misses, s.evictions, s.writebacks = 0, 0, 0, 0
	s.streamed, s.streamWindows = 0, 0
}

// markPreloaded sets every valid bit (host DMAed sealed data into DRAM).
func (s *engineSet) markPreloaded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.initialized {
		s.initialized[i] = true
	}
}

// counterSnapshot copies the freshness counters out under the lock.
func (s *engineSet) counterSnapshot() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint32(nil), s.counters...)
}

// IntegrityError reports a failed MAC verification: spoofed, spliced,
// replayed, or corrupted off-chip data.
type IntegrityError struct {
	Region string
	Chunk  int
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("shield: integrity violation in region %q chunk %d (off-chip data tampered or replayed)", e.Region, e.Chunk)
}
