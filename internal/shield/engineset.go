package shield

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"shef/internal/axi"
	"shef/internal/crypto/aesx"
	"shef/internal/crypto/engine"
	"shef/internal/crypto/sha256x"
	"shef/internal/mem"
	"shef/internal/perf"
	"shef/internal/profiling"
)

// engineSet is the runtime of one configured memory region: the AES engine
// pool, the MAC engine, the on-chip buffer, and (optionally) the freshness
// counters. It is the unit of parallelism in the Shield: engine sets
// operate concurrently — in this reproduction as real goroutines — and the
// performance model takes the maximum busy time across sets (paper §5.2.2).
//
// All exported-to-Shield entry points (read, write, flush, the stats and
// maintenance accessors) take mu; the lower-case helpers below them assume
// it is held. One mutex per set means accesses to *different* regions run
// genuinely in parallel, mirroring the hardware where each engine set is
// its own pipeline, while accesses within a region serialise the way a
// single buffer/port pair would.
type engineSet struct {
	mu sync.Mutex

	cfg      RegionConfig
	regionID uint32
	params   perf.Params
	seal     *sealer

	// share points at the region table's materialised-set counter for
	// this set's off-chip channel: each live set sees 1/share of the
	// channel bandwidth. The pointer is read atomically on every charge,
	// so contention tracks who is actually live — an idle tenant's
	// reclaimed zone stops costing its neighbours bandwidth.
	share *atomic.Int64

	// DRAM layout: ciphertext is identity-mapped at cfg.Base; tags live in
	// a reserved area starting at tagBase.
	tagBase uint64
	port    axi.MemoryPort

	// On-chip state (allocated from the device OCM budget). lines maps a
	// chunk index to its resident line for O(1) lookup; the lines
	// themselves are threaded on an intrusive doubly-linked list rooted at
	// lruRoot (lruRoot.next is most recent, lruRoot.prev the victim), so
	// eviction is O(1) instead of an O(capacity) map scan.
	lines    map[int]*bufLine
	lruRoot  bufLine
	capacity int

	// Sequential-stride detector driving the adaptive prefetcher: seqNext
	// is the chunk a continuing ascending miss pattern would touch next,
	// seqRun the length of the current ascending fetch-miss run, and
	// seqStreak whether the prefetch pipeline is already primed (windows
	// after the first skip the fill/drain charge).
	seqNext   int
	seqRun    int
	seqStreak bool

	// counters hold the per-chunk write counters when Freshness is on
	// (folded into IV and MAC; see sealer).
	counters []uint32

	// initialized marks chunks that carry valid ciphertext: written back
	// at least once, or preloaded by the host (MarkPreloaded). Reads of
	// never-written chunks return zeros without touching DRAM: the valid
	// bit lives on-chip, so an adversary cannot plant data in virgin
	// memory.
	initialized []bool

	// ocmBytes is the on-chip budget this set holds, returned to the pool
	// when a re-provisioning replaces the set. metaOCMBytes is the
	// durable-metadata slice of it (freshness counters and valid bits) —
	// an idle-zone reclaim keeps that slice resident so the zone's data
	// survives the engine set.
	ocmBytes     int
	metaOCMBytes int

	// linePool recycles buffer lines so the chunked hot path allocates
	// nothing in steady state.
	linePool sync.Pool

	// win is the set's single stream-window staging buffer (ciphertext +
	// tags for one pipeline window). Exactly one window is ever in flight
	// per set — every windowed path runs under mu and eviction write-backs
	// complete before a window is (re)used — so a dedicated buffer
	// replaces the old sync.Pool: unlike a pool, it cannot be drained by
	// a GC pass mid-stream, which is what makes the steady-state window
	// loop measurably zero-alloc.
	win *streamWindow

	// The persistent seal/open worker pool: the engine pool's goroutine
	// fan-out without per-window goroutine or closure allocations. A job
	// is described by the job* fields (set under mu), split into
	// contiguous spans of jobSpan items; workers receive span indices
	// over fanTasks and run spanWork. The channel send/receive pairs with
	// fanWG establish the happens-before edges, so workers never touch
	// mu. scratches holds one sealScratch per span slot — dedicated, not
	// pooled, for the same GC-drain reason as win.
	// inlineFan, sampled at provisioning time, records that the process
	// has a single P: fanning spans out to pool workers then buys no
	// parallelism, only a context switch per span, so runJob runs every
	// span inline instead. The simulated cycle accounting is unaffected —
	// poolCycles models the hardware engine pool analytically, not the
	// host's execution strategy.
	inlineFan bool

	jobOpen       bool
	jobN, jobSpan int
	jobSlots      [streamWindowChunks]int
	jobChunks     [streamWindowChunks]int
	jobDsts       [streamWindowChunks][]byte
	scratches     [streamWindowChunks]*sealScratch
	fanTasks      chan int
	fanWG         sync.WaitGroup
	fanWorkers    int

	// flushScratch is the reusable dirty-chunk list of flush.
	flushScratch []int

	// Performance accounting.
	busyCycles                          uint64 // accumulated engine-set busy time (chunk pipeline)
	dramCycles                          uint64 // this set's share of DRAM bus time
	hits, misses, evictions, writebacks uint64
	batchedWritebacks                   uint64 // chunks written back via multi-chunk pipelined windows
	streamed, streamWindows             uint64 // chunks moved / windows issued by the stream path
	prefetched, prefetchHits            uint64 // chunks fetched ahead / prefetched lines later demanded

	// integrityErr latches the first authentication failure; the Shield
	// refuses further service afterwards, modelling the hardware fault
	// latch that parks the accelerator.
	integrityErr error
}

// bufLine is one cache line of decrypted, authenticated plaintext. chunk
// and the prev/next links are the intrusive LRU state; prefetched marks
// lines brought in by the sequential prefetcher that have not yet served a
// demand access.
type bufLine struct {
	data       []byte
	dirty      bool
	prefetched bool
	chunk      int
	prev, next *bufLine
}

// newEngineSet builds the runtime for a region. Keys are derived from the
// Data Encryption Key per region so that regions are cryptographically
// isolated from one another.
func newEngineSet(cfg RegionConfig, regionID uint32, dek []byte, tagBase uint64,
	port axi.MemoryPort, ocm *mem.OCM, params perf.Params) (*engineSet, error) {

	kind, err := engine.ParseKind(params.CryptoEngine)
	if err != nil {
		return nil, fmt.Errorf("shield: region %q: %w", cfg.Name, err)
	}
	seal, err := newSealer(cfg, regionID, dek, kind)
	if err != nil {
		return nil, err
	}
	s := &engineSet{
		cfg:       cfg,
		regionID:  regionID,
		params:    params,
		seal:      seal,
		tagBase:   tagBase,
		port:      port,
		lines:     make(map[int]*bufLine),
		capacity:  cfg.bufferLines(),
		seqNext:   -1,
		inlineFan: runtime.GOMAXPROCS(0) == 1,
	}
	s.lruRoot.prev = &s.lruRoot
	s.lruRoot.next = &s.lruRoot
	s.linePool.New = func() any {
		return &bufLine{data: make([]byte, cfg.ChunkSize)}
	}
	s.win = &streamWindow{
		ct:   make([]byte, streamWindowChunks*cfg.ChunkSize),
		tags: make([]byte, streamWindowChunks*TagSize),
	}
	// Charge on-chip memory: the buffer, counters, and valid bits.
	alloc := func(n int, what string) error {
		if _, err := ocm.Alloc(n); err != nil {
			return fmt.Errorf("shield: region %q %s: %w", cfg.Name, what, err)
		}
		s.ocmBytes += n
		return nil
	}
	if err := alloc(s.capacity*cfg.ChunkSize, "buffer"); err != nil {
		s.releaseOCM(ocm)
		return nil, err
	}
	if cfg.Freshness {
		if err := alloc(cfg.Chunks()*CounterSize, "counters"); err != nil {
			s.releaseOCM(ocm)
			return nil, err
		}
		s.metaOCMBytes += cfg.Chunks() * CounterSize
	}
	if err := alloc((cfg.Chunks()+7)/8, "valid bits"); err != nil {
		s.releaseOCM(ocm)
		return nil, err
	}
	s.metaOCMBytes += (cfg.Chunks() + 7) / 8
	s.counters = make([]uint32, cfg.Chunks())
	s.initialized = make([]bool, cfg.Chunks())
	return s, nil
}

// adoptMeta restores durable metadata a reclaim preserved (the zone's
// freshness counters and valid bits). Called before the set is published,
// so no lock is needed.
func (s *engineSet) adoptMeta(counters []uint32, initialized []bool) {
	if counters != nil {
		s.counters = counters
	}
	if initialized != nil {
		s.initialized = initialized
	}
}

// detachMeta retires the set but keeps its durable metadata resident:
// the buffer and window budget returns to the pool, the counters and
// valid bits (still charged on-chip) transfer to the caller for the next
// materialisation.
func (s *engineSet) detachMeta(ocm *mem.OCM) (counters []uint32, initialized []bool, metaBytes int) {
	s.stopWorkers()
	metaBytes = s.metaOCMBytes
	if s.ocmBytes > metaBytes {
		ocm.Free(s.ocmBytes - metaBytes)
	}
	s.ocmBytes, s.metaOCMBytes = 0, 0
	return s.counters, s.initialized, metaBytes
}

// releaseOCM returns the set's on-chip budget to the pool (the partial
// reconfiguration that clears a replaced session's logic) and retires the
// seal/open worker pool.
func (s *engineSet) releaseOCM(ocm *mem.OCM) {
	s.stopWorkers()
	if s.ocmBytes > 0 {
		ocm.Free(s.ocmBytes)
		s.ocmBytes = 0
	}
}

// Intrusive LRU list operations. All assume s.mu is held.

// lruPush inserts ln at the most-recently-used end.
func (s *engineSet) lruPush(ln *bufLine) {
	ln.prev = &s.lruRoot
	ln.next = s.lruRoot.next
	ln.prev.next = ln
	ln.next.prev = ln
}

// lruRemove unlinks ln.
func (s *engineSet) lruRemove(ln *bufLine) {
	ln.prev.next = ln.next
	ln.next.prev = ln.prev
	ln.prev, ln.next = nil, nil
}

// lruTouch moves ln to the most-recently-used end.
//
//shef:hotpath
func (s *engineSet) lruTouch(ln *bufLine) {
	s.lruRemove(ln)
	s.lruPush(ln)
}

// lruVictim returns the least-recently-used line (nil when empty).
//
//shef:hotpath
func (s *engineSet) lruVictim() *bufLine {
	if s.lruRoot.prev == &s.lruRoot {
		return nil
	}
	return s.lruRoot.prev
}

// touchResident marks a demand access to a resident line: LRU update plus
// prefetch-hit accounting (a prefetched line proved useful; it is counted
// once, on its first demand access).
//
//shef:hotpath
func (s *engineSet) touchResident(ln *bufLine) {
	s.lruTouch(ln)
	if ln.prefetched {
		ln.prefetched = false
		s.prefetchHits++
	}
}

// dropLine evicts ln from the buffer (caller has written it back if dirty).
func (s *engineSet) dropLine(ln *bufLine) {
	s.lruRemove(ln)
	delete(s.lines, ln.chunk)
	ln.dirty, ln.prefetched = false, false
	s.linePool.Put(ln)
}

// insertLine makes ln resident for chunk at the MRU end.
func (s *engineSet) insertLine(chunk int, ln *bufLine) {
	ln.chunk = chunk
	s.lines[chunk] = ln
	s.lruPush(ln)
}

// ctrBlocksPerChunk is the number of AES-CTR keystream blocks per chunk.
func (s *engineSet) ctrBlocksPerChunk() int {
	return (s.cfg.ChunkSize + aesx.BlockSize - 1) / aesx.BlockSize
}

// pmacBlocksPerChunk is the number of PMAC block computations per chunk
// (one per data block plus the tag block), all served by the AES pool.
func (s *engineSet) pmacBlocksPerChunk() int {
	return s.ctrBlocksPerChunk() + 1
}

// poolCycles is the AES engine pool's time to serve n blocks: waves of
// AESEngines blocks each at the engine's per-block latency.
func (s *engineSet) poolCycles(blocks int) uint64 {
	waves := uint64((blocks + s.cfg.AESEngines - 1) / s.cfg.AESEngines)
	return waves * s.seal.engine.CyclesPerBlock()
}

// hmacCyclesPerChunk is the serial HMAC core's time for one chunk: ipad
// block + message blocks + outer pass, one strictly serial stream.
func (s *engineSet) hmacCyclesPerChunk() uint64 {
	return uint64(3+(s.cfg.ChunkSize+sha256x.BlockSize-1)/sha256x.BlockSize) * hmacEngineCyclesPerBlock
}

// cryptoCycles is the engine-set crypto time for one chunk transfer. The
// AES pool serves the CTR blocks plus, under PMAC, the MAC blocks; an HMAC
// engine runs serially in parallel with decryption ("the engine set
// decrypts and authenticates the returned ciphertext in parallel",
// paper §5.2.2).
func (s *engineSet) cryptoCycles() uint64 {
	aesBlocks := s.ctrBlocksPerChunk()
	if s.cfg.MAC == PMAC {
		aesBlocks += s.pmacBlocksPerChunk()
	}
	aesCycles := s.poolCycles(aesBlocks)
	if s.cfg.MAC == PMAC {
		return aesCycles
	}
	if hmacCycles := s.hmacCyclesPerChunk(); hmacCycles > aesCycles {
		return hmacCycles
	}
	return aesCycles
}

// hmacEngineCyclesPerBlock is the Shield HMAC core's cost per 64-byte SHA
// block. The core is modestly unrolled (≈1.2 B/cycle) but strictly serial
// within a stream — which is why SDP saturates on it until PMAC replaces
// it (paper §6.2.3). Calibrated jointly with perf.Default (DESIGN.md §4).
const hmacEngineCyclesPerBlock = 54

// chargeChunk accounts one chunk movement (fetch or write-back): the DRAM
// burst for data plus its tag (fetched in the same request window) and the
// crypto stage, partially overlapped.
//
// shareNow reads the channel's live materialised-set count for the
// bandwidth-share charge; an unwired set charges as the sole occupant.
//
//shef:hotpath
func (s *engineSet) shareNow() int {
	if s.share == nil {
		return 1
	}
	if n := s.share.Load(); n > 1 {
		return int(n)
	}
	return 1
}

//shef:hotpath
func (s *engineSet) chargeChunk() {
	// The set experiences its bandwidth share; the channel-occupancy bound
	// (Report.MemoryCycles) counts the bytes once at full channel rate.
	dram := s.params.DRAMCyclesShared(s.cfg.ChunkSize+TagSize, s.shareNow())
	crypto := s.cryptoCycles()
	s.busyCycles += s.params.ChunkTime(dram, crypto) + s.params.ChunkIssueCycles
	s.dramCycles += s.params.DRAMCycles(s.cfg.ChunkSize + TagSize)
}

// chargeHit accounts a buffer hit: on-chip access only.
//
//shef:hotpath
func (s *engineSet) chargeHit(nBytes int) {
	s.busyCycles += 1 + uint64(nBytes)/64
}

// dramAddrs returns the ciphertext and tag addresses of a chunk.
func (s *engineSet) dramAddrs(chunk int) (data, tag uint64) {
	data = s.cfg.Base + uint64(chunk*s.cfg.ChunkSize)
	tag = s.tagBase + uint64(chunk*TagSize)
	return
}

// batchChunks is the write-side pipeline window in chunks, bounded by the
// pooled staging buffers.
func (s *engineSet) batchChunks() int {
	n := s.params.WritebackBatchChunks
	if n < 1 {
		n = 1
	}
	if n > streamWindowChunks {
		n = streamWindowChunks
	}
	return n
}

// prefetchDegree is how many chunks one prefetch window may move, bounded
// by the staging buffers and the on-chip buffer capacity.
func (s *engineSet) prefetchDegree() int {
	n := s.params.PrefetchWindowChunks
	if n < 1 || n > streamWindowChunks {
		n = streamWindowChunks
	}
	if n > s.capacity {
		n = s.capacity
	}
	return n
}

// prefetchArmed reports whether the adaptive sequential prefetcher is
// configured for this set.
func (s *engineSet) prefetchArmed() bool {
	return s.cfg.SeqPrefetch && s.params.PrefetchMinMisses > 0 && s.capacity > 1
}

// load makes a chunk resident, fetching/decrypting/verifying on miss.
// fill == false skips the DRAM fetch (full-chunk overwrite).
func (s *engineSet) load(chunk int, fill bool) (*bufLine, error) {
	if s.integrityErr != nil {
		return nil, s.integrityErr
	}
	if ln, ok := s.lines[chunk]; ok {
		s.touchResident(ln)
		return ln, nil
	}
	if fill && !s.initialized[chunk] {
		fill = false // virgin chunk: serve zeros from on-chip valid bits
	}
	if fill {
		// Feed the sequential-stride detector: a fetch miss extends the
		// ascending run or starts a new one.
		if chunk == s.seqNext {
			s.seqRun++
		} else {
			s.seqRun, s.seqStreak = 1, false
		}
		s.seqNext = chunk + 1
		if s.prefetchArmed() && s.seqRun >= s.params.PrefetchMinMisses {
			// The detector fired: service the run through a pipelined
			// stream window instead of a chunk-at-a-time fetch.
			if err := s.prefetchRun(chunk); err != nil {
				return nil, err
			}
			ln := s.lines[chunk]
			s.lruTouch(ln)
			return ln, nil
		}
	}
	if err := s.evictFor(1); err != nil {
		return nil, err
	}
	ln := s.linePool.Get().(*bufLine)
	ln.dirty, ln.prefetched = false, false
	if fill {
		dataAddr, tagAddr := s.dramAddrs(chunk)
		win := s.win
		ct := win.ct[:s.cfg.ChunkSize]
		if _, err := s.port.ReadBurst(dataAddr, ct); err != nil {
			s.linePool.Put(ln)
			return nil, err
		}
		if _, err := s.port.ReadBurst(tagAddr, win.tags[:TagSize]); err != nil {
			s.linePool.Put(ln)
			return nil, err
		}
		s.jobSlots[0], s.jobChunks[0], s.jobDsts[0] = 0, chunk, ln.data
		s.runJob(true, 1)
		if err := win.errs[0]; err != nil {
			win.errs[0] = nil
			s.linePool.Put(ln)
			s.integrityErr = err
			return nil, err
		}
		s.chargeChunk()
		s.misses++
	} else {
		// Zero-filled line: no DRAM traffic, only issue cost.
		clear(ln.data)
		s.busyCycles += s.params.ChunkIssueCycles
		s.misses++
	}
	s.insertLine(chunk, ln)
	return ln, nil
}

// prefetchRun services a detected sequential run: the demand chunk plus up
// to prefetchDegree-1 chunks ahead move through one batched fetch and a
// decrypt/verify fan-out straight into buffer lines, charged with the
// overlapped stream-window accounting (the first window of a streak also
// pays pipeline fill/drain). The demand chunk is resident on return.
func (s *engineSet) prefetchRun(c0 int) error {
	cs := s.cfg.ChunkSize
	n := 1
	for max := s.prefetchDegree(); n < max; n++ {
		c := c0 + n
		if c >= s.cfg.Chunks() || !s.initialized[c] {
			break // a virgin or out-of-range chunk ends the run
		}
		if _, resident := s.lines[c]; resident {
			break // the fetch run must stay contiguous in DRAM
		}
	}
	if err := s.evictFor(n); err != nil {
		return err
	}

	win := s.win
	dataAddr, tagAddr := s.dramAddrs(c0)
	if _, err := s.port.ReadBurst(dataAddr, win.ct[:n*cs]); err != nil {
		return err
	}
	if _, err := s.port.ReadBurst(tagAddr, win.tags[:n*TagSize]); err != nil {
		return err
	}

	var lines [streamWindowChunks]*bufLine
	for i := 0; i < n; i++ {
		lines[i] = s.linePool.Get().(*bufLine)
		s.jobSlots[i], s.jobChunks[i], s.jobDsts[i] = i, c0+i, lines[i].data
	}
	s.runJob(true, n)
	for i := 0; i < n; i++ {
		if err := win.errs[i]; err != nil {
			win.errs[i] = nil
			for j := 0; j < n; j++ {
				s.linePool.Put(lines[j])
			}
			s.integrityErr = err
			return err
		}
	}
	for i := 0; i < n; i++ {
		ln := lines[i]
		ln.dirty = false
		ln.prefetched = i > 0 // the demand chunk is a plain miss
		s.insertLine(c0+i, ln)
	}

	s.misses++
	s.prefetched += uint64(n - 1)
	if n == 1 {
		// A window of one chunk is just the chunked fetch.
		s.chargeChunk()
	} else {
		runBytes := n * (cs + TagSize)
		extraBursts := uint64(axi.BurstsFor(runBytes) - 1)
		dramBusy := s.params.DRAMCyclesShared(runBytes, s.shareNow()) + extraBursts*s.params.DRAMRequestCycles
		dramBus := s.params.DRAMCycles(runBytes) + extraBursts*s.params.DRAMRequestCycles
		pool, hmac := s.cryptoStages(n)
		s.chargeOverlapped(dramBusy, dramBus, pool, hmac, uint64(n*cs)/64, !s.seqStreak)
		s.seqStreak = true
	}
	s.seqNext = c0 + n // a miss at the window's end continues the streak
	return nil
}

// evictFor makes room for n incoming lines, writing dirty victims back.
// Victims come off the LRU tail in strict recency order; their write-backs
// — extended with any resident dirty lines chunk-contiguous with a dirty
// victim, so one pipelined store covers the whole run (write combining) —
// go through writebackChunks in sorted chunk order.
//
//shef:deterministic
func (s *engineSet) evictFor(n int) error {
	need := len(s.lines) + n - s.capacity
	if need <= 0 {
		return nil
	}
	// Fast path: the steady-state chunked miss evicts one clean line —
	// O(1) off the list tail, no allocation (the common case the
	// intrusive LRU exists for).
	if need == 1 {
		if ln := s.lruVictim(); ln != nil && !ln.dirty {
			s.dropLine(ln)
			s.evictions++
			return nil
		}
	}
	victims := make([]*bufLine, 0, need)
	for ln := s.lruRoot.prev; ln != &s.lruRoot && len(victims) < need; ln = ln.prev {
		victims = append(victims, ln)
	}
	// Gather the dirty chunks to store: every dirty victim seeds a run
	// that write combining extends across resident dirty neighbours (the
	// neighbours stay resident, but leave clean).
	dirtySet := make(map[int]bool)
	limit := s.batchChunks()
	extend := func(from, step int) {
		for c, span := from, 1; span < limit; c, span = c+step, span+1 {
			if nb, ok := s.lines[c]; !ok || !nb.dirty || dirtySet[c] {
				return
			}
			dirtySet[c] = true
		}
	}
	for _, ln := range victims {
		if !ln.dirty {
			continue
		}
		dirtySet[ln.chunk] = true
		extend(ln.chunk-1, -1)
		extend(ln.chunk+1, +1)
	}
	if len(dirtySet) > 0 {
		dirty := make([]int, 0, len(dirtySet))
		//shef:ignore membership set collected into a slice and sorted before use
		for c := range dirtySet {
			dirty = append(dirty, c)
		}
		slices.Sort(dirty)
		// No fill/drain charge: eviction write-backs interleave with the
		// demand traffic that forced them, so the write pipeline is
		// already primed (contrast flush, which drains it).
		if err := s.writebackChunks(dirty, false); err != nil {
			return err
		}
	}
	for _, ln := range victims {
		s.dropLine(ln)
		s.evictions++
	}
	return nil
}

// writebackChunks seals and stores the given resident dirty chunks, which
// must be sorted ascending. Maximal contiguous runs move through pipelined
// windows of up to batchChunks: seal fan-out across the engine pool into
// pooled staging, then one AXI store transaction for the run's ciphertext
// and one for its tags, charged with the overlapped window accounting.
// Runs of a single chunk keep the chunked ChunkTime charge — batching
// cannot help them. Freshness counters bump exactly once per chunk before
// sealing, and valid bits are set exactly as the serial path would.
// fillDrain charges the one-time pipeline fill/drain on the first batched
// window (a flush drains the pipeline; eviction write-backs do not).
func (s *engineSet) writebackChunks(chunks []int, fillDrain bool) error {
	if s.integrityErr != nil {
		return s.integrityErr
	}
	first := fillDrain
	cs := s.cfg.ChunkSize
	return axi.ForEachRunCapped(chunks, s.batchChunks(), func(c0, n int) error {
		if s.cfg.Freshness {
			for i := 0; i < n; i++ {
				s.counters[c0+i]++ // bump before sealing the new epoch
			}
		}
		win := s.win
		for i := 0; i < n; i++ {
			s.jobSlots[i], s.jobChunks[i], s.jobDsts[i] = i, c0+i, s.lines[c0+i].data
		}
		s.runJob(false, n)
		dataAddr, tagAddr := s.dramAddrs(c0)
		if _, err := s.port.WriteBurst(dataAddr, win.ct[:n*cs]); err != nil {
			return err
		}
		if _, err := s.port.WriteBurst(tagAddr, win.tags[:n*TagSize]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			chunk := c0 + i
			s.initialized[chunk] = true
			s.lines[chunk].dirty = false
		}
		s.writebacks += uint64(n)
		if n == 1 {
			s.chargeChunk()
			return nil
		}
		runBytes := n * (cs + TagSize)
		extraBursts := uint64(axi.BurstsFor(runBytes) - 1)
		dramBusy := s.params.DRAMCyclesShared(runBytes, s.shareNow()) + extraBursts*s.params.DRAMRequestCycles
		dramBus := s.params.DRAMCycles(runBytes) + extraBursts*s.params.DRAMRequestCycles
		pool, hmac := s.cryptoStages(n)
		s.chargeOverlapped(dramBusy, dramBus, pool, hmac, uint64(n*cs)/64, first)
		first = false
		s.batchedWritebacks += uint64(n)
		return nil
	})
}

// runJob runs the seal (open=false) or open (open=true) job described by
// jobSlots/jobChunks/jobDsts[0..n-1] across the engine pool — the
// hardware's parallelism made real by persistent worker goroutines.
// Callers hold s.mu, so worker reads of counters and the sealer are
// exclusive with all mutation.
//
// The job splits into contiguous spans, one per participating worker, so
// each span is one batched engine call: a single scratch checkout (CTR
// state, HMAC streams, PMAC scratch, MAC message buffer) serves the whole
// run of chunks instead of a checkout per chunk. For open jobs, item k's
// verdict lands in win.errs[k].
//
//shef:hotpath
func (s *engineSet) runJob(open bool, n int) {
	if n <= 0 {
		return
	}
	s.jobOpen, s.jobN = open, n
	workers := s.cfg.AESEngines
	if workers > n {
		workers = n
	}
	if workers <= 1 || s.inlineFan {
		// One worker — or one P, where handing spans to pool goroutines
		// costs a context switch each and overlaps nothing. Run the whole
		// job on the caller's goroutine (span width n covers every item).
		s.jobSpan = n
		s.spanWork(0)
		s.clearJob(n)
		return
	}
	span := (n + workers - 1) / workers
	s.jobSpan = span
	nspans := (n + span - 1) / span
	s.ensureWorkers(nspans - 1)
	s.fanWG.Add(nspans - 1)
	for w := 1; w < nspans; w++ {
		s.fanTasks <- w
	}
	s.spanWork(0) // the caller is worker zero
	s.fanWG.Wait()
	s.clearJob(n)
}

// clearJob drops the job's buffer references so a finished window does
// not pin caller buffers until the next job.
func (s *engineSet) clearJob(n int) {
	for k := 0; k < n; k++ {
		s.jobDsts[k] = nil
	}
}

// spanWork processes job items [w*jobSpan, min((w+1)*jobSpan, jobN)) on
// the span's dedicated scratch. Runs on the caller's goroutine for span 0
// and on pool workers for the rest.
//
//shef:hotpath
func (s *engineSet) spanWork(w int) {
	lo := w * s.jobSpan
	hi := lo + s.jobSpan
	if hi > s.jobN {
		hi = s.jobN
	}
	sc := s.scratches[w]
	if sc == nil {
		sc = s.seal.newScratch()
		s.scratches[w] = sc
	}
	cs := s.cfg.ChunkSize
	win := s.win
	for k := lo; k < hi; k++ {
		slot, chunk := s.jobSlots[k], s.jobChunks[k]
		ct := win.ct[slot*cs : (slot+1)*cs]
		tag := win.tags[slot*TagSize : (slot+1)*TagSize]
		if s.jobOpen {
			win.errs[k] = s.seal.openChunkWith(sc, s.jobDsts[k], chunk, s.counters[chunk], ct, tag)
		} else {
			s.seal.sealChunkWith(sc, ct, tag, chunk, s.counters[chunk], s.jobDsts[k])
		}
	}
}

// ensureWorkers grows the persistent worker pool to at least k workers.
// Workers live until releaseOCM retires the set; in steady state a job
// costs no goroutine spawns and no closures.
func (s *engineSet) ensureWorkers(k int) {
	if s.fanTasks == nil {
		s.fanTasks = make(chan int, streamWindowChunks)
	}
	for s.fanWorkers < k {
		s.fanWorkers++
		go s.fanWorker()
	}
}

func (s *engineSet) fanWorker() {
	// The pool goroutine carries the engine set's profiling label for its
	// whole life, so a CPU profile attributes crypto fan-out work to the
	// region (store vs tls) it ran for. Workers spawned while no harness
	// is active take the direct branch and never touch the profiling
	// layer; harness runs build their clusters (and hence workers) after
	// Start, so sweeps are labelled.
	if profiling.Enabled() {
		profiling.Do(context.Background(), s.fanLoop, "engine-set", s.cfg.Name)
		return
	}
	s.fanLoop()
}

// fanLoop drains the task channel until stopWorkers closes it.
func (s *engineSet) fanLoop() {
	for w := range s.fanTasks {
		s.spanWork(w)
		s.fanWG.Done()
	}
}

// stopWorkers retires the worker pool (no job may be in flight).
func (s *engineSet) stopWorkers() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fanTasks != nil {
		close(s.fanTasks)
		s.fanTasks = nil
		s.fanWorkers = 0
	}
}

// cryptoStages returns the engine-pool occupancy and serial-HMAC stage
// times for a window of n chunks crossing the crypto pipeline.
func (s *engineSet) cryptoStages(n int) (poolStage, hmacStage uint64) {
	if n <= 0 {
		return 0, 0
	}
	pool := n * s.ctrBlocksPerChunk()
	if s.cfg.MAC == PMAC {
		pool += n * s.pmacBlocksPerChunk()
	} else {
		hmacStage = uint64(n) * s.hmacCyclesPerChunk()
	}
	return s.poolCycles(pool), hmacStage
}

// chargeOverlapped accounts one pipeline window under the overlapped
// model: the window is paced by its slowest stage (DRAM, the AES pool, the
// serial HMAC core, or the on-chip copy), the first window of a pipeline
// additionally pays fill/drain, and the per-window issue cost replaces the
// chunked path's per-chunk issue cost.
func (s *engineSet) chargeOverlapped(dramBusy, dramBus, poolStage, hmacStage, copyStage uint64, first bool) {
	s.busyCycles += s.params.StreamWindowTime(dramBusy, poolStage, hmacStage, copyStage) + s.params.ChunkIssueCycles
	if first {
		s.busyCycles += s.params.StreamFillDrain(dramBusy, poolStage, hmacStage, copyStage)
	}
	s.dramCycles += dramBus
}

// read copies region bytes [addr, addr+len(buf)) into buf and returns the
// engine-set busy cycles the access cost.
func (s *engineSet) read(addr uint64, buf []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.busyCycles
	off := addr - s.cfg.Base
	for done := 0; done < len(buf); {
		chunk := int((off + uint64(done)) / uint64(s.cfg.ChunkSize))
		inOff := int((off + uint64(done)) % uint64(s.cfg.ChunkSize))
		ln, err := s.load(chunk, true)
		if err != nil {
			return s.busyCycles - start, err
		}
		n := copy(buf[done:], ln.data[inOff:])
		s.chargeHit(n)
		s.hits++
		done += n
	}
	return s.busyCycles - start, nil
}

// write stores data at addr and returns the busy cycles the access cost.
func (s *engineSet) write(addr uint64, data []byte) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	start := s.busyCycles
	off := addr - s.cfg.Base
	for done := 0; done < len(data); {
		chunk := int((off + uint64(done)) / uint64(s.cfg.ChunkSize))
		inOff := int((off + uint64(done)) % uint64(s.cfg.ChunkSize))
		n := s.cfg.ChunkSize - inOff
		if n > len(data)-done {
			n = len(data) - done
		}
		// Full-chunk overwrites never fetch. Partial writes to virgin
		// chunks zero-fill via the valid bits inside load, which subsumes
		// the paper's ZeroFillWrites optimisation while staying correct
		// for partial rewrites.
		fullOverwrite := inOff == 0 && n == s.cfg.ChunkSize
		ln, err := s.load(chunk, !fullOverwrite)
		if err != nil {
			return s.busyCycles - start, err
		}
		copy(ln.data[inOff:], data[done:done+n])
		ln.dirty = true
		s.chargeHit(n)
		s.hits++
		done += n
	}
	return s.busyCycles - start, nil
}

// flush writes back every dirty line (end of kernel / result publication)
// in ascending chunk order — deterministic DRAM write order and cycle
// accounting — with contiguous runs batched through pipelined windows.
//
//shef:deterministic
func (s *engineSet) flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.flushScratch == nil {
		s.flushScratch = make([]int, 0, s.capacity)
	}
	dirty := s.flushScratch[:0]
	//shef:ignore dirty indices collected then sorted; write order is the sorted slice
	for idx, ln := range s.lines {
		if ln.dirty {
			dirty = append(dirty, idx)
		}
	}
	slices.Sort(dirty)
	s.flushScratch = dirty[:0]
	return s.writebackChunks(dirty, true)
}

// invalidateClean drops clean buffer lines.
func (s *engineSet) invalidateClean() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ln := range s.lines {
		if !ln.dirty {
			s.dropLine(ln)
		}
	}
}

// stats snapshots the set's counters for Shield.Report.
func (s *engineSet) stats() RegionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return RegionStats{
		Name:              s.cfg.Name,
		Channel:           s.cfg.Channel,
		Hits:              s.hits,
		Misses:            s.misses,
		Evictions:         s.evictions,
		Writebacks:        s.writebacks,
		BatchedWritebacks: s.batchedWritebacks,
		Streamed:          s.streamed,
		StreamWindows:     s.streamWindows,
		Prefetched:        s.prefetched,
		PrefetchHits:      s.prefetchHits,
		BusyCycles:        s.busyCycles,
		DRAMCycles:        s.dramCycles,
	}
}

// resetStats zeroes the set's counters.
func (s *engineSet) resetStats() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.busyCycles, s.dramCycles = 0, 0
	s.hits, s.misses, s.evictions, s.writebacks = 0, 0, 0, 0
	s.batchedWritebacks = 0
	s.streamed, s.streamWindows = 0, 0
	s.prefetched, s.prefetchHits = 0, 0
}

// markPreloaded sets every valid bit (host DMAed sealed data into DRAM).
func (s *engineSet) markPreloaded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.initialized {
		s.initialized[i] = true
	}
}

// markPreloadedChunks sets the valid bits of chunks [from, to) only, so a
// partial DMA leaves virgin chunks serving zeros (and never trusting
// uninitialised DRAM). It also drops resident clean lines in the range:
// their plaintext predates the DMA.
func (s *engineSet) markPreloadedChunks(from, to int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := from; c < to; c++ {
		s.initialized[c] = true
		if ln, ok := s.lines[c]; ok && !ln.dirty {
			s.dropLine(ln)
		}
	}
}

// counterSnapshot copies the freshness counters out under the lock.
func (s *engineSet) counterSnapshot() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint32(nil), s.counters...)
}

// IntegrityError reports a failed MAC verification: spoofed, spliced,
// replayed, or corrupted off-chip data.
type IntegrityError struct {
	Region string
	Chunk  int
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("shield: integrity violation in region %q chunk %d (off-chip data tampered or replayed)", e.Region, e.Chunk)
}
