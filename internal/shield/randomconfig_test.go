package shield

import (
	"bytes"
	"math/rand"
	"testing"

	"shef/internal/crypto/aesx"
)

// randomConfig generates a structurally valid Shield configuration with
// random geometry: region count, chunk sizes, buffers, MAC kinds,
// freshness, and channels.
func randomConfig(rng *rand.Rand) Config {
	nRegions := 1 + rng.Intn(5)
	sboxes := []aesx.SBoxParallelism{aesx.SBox1x, aesx.SBox2x, aesx.SBox4x, aesx.SBox8x, aesx.SBox16x}
	keys := []aesx.KeySize{aesx.AES128, aesx.AES256}
	var regions []RegionConfig
	base := uint64(0)
	for i := 0; i < nRegions; i++ {
		chunk := 16 << rng.Intn(8) // 16 B .. 2 KB
		chunks := 2 + rng.Intn(30)
		size := uint64(chunk * chunks)
		base = (base + uint64(chunk) - 1) / uint64(chunk) * uint64(chunk)
		mac := HMAC
		if rng.Intn(2) == 1 {
			mac = PMAC
		}
		regions = append(regions, RegionConfig{
			Name:        string(rune('p' + i)),
			Base:        base,
			Size:        size,
			ChunkSize:   chunk,
			AESEngines:  1 + rng.Intn(8),
			SBox:        sboxes[rng.Intn(len(sboxes))],
			KeySize:     keys[rng.Intn(len(keys))],
			MAC:         mac,
			BufferBytes: chunk * (1 + rng.Intn(6)),
			Freshness:   rng.Intn(2) == 1,
			SeqPrefetch: rng.Intn(2) == 1,
			Channel:     rng.Intn(3),
		})
		// Leave a random gap (or none) before the next region.
		base += size + uint64(rng.Intn(3))*uint64(chunk)
	}
	return Config{Regions: regions, Registers: 4 + rng.Intn(12), EncryptRegAddrs: rng.Intn(2) == 1}
}

// TestRandomConfigsBehaveLikeFlatMemory: for many random valid
// configurations, the flat-memory property holds under random operations,
// flushes, and invalidations.
func TestRandomConfigsBehaveLikeFlatMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		cfg := randomConfig(rng)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid config: %v", trial, err)
		}
		rig := newRig(t, cfg)
		ref := make(map[string][]byte)
		for _, r := range cfg.Regions {
			ref[r.Name] = make([]byte, r.Size)
		}
		for op := 0; op < 120; op++ {
			r := cfg.Regions[rng.Intn(len(cfg.Regions))]
			flat := ref[r.Name]
			maxN := int(r.Size)
			if maxN > 200 {
				maxN = 200
			}
			n := 1 + rng.Intn(maxN)
			off := rng.Intn(int(r.Size) - n + 1)
			addr := r.Base + uint64(off)
			switch rng.Intn(5) {
			case 0, 1, 2:
				data := make([]byte, n)
				rng.Read(data)
				if _, err := rig.shield.WriteBurst(addr, data); err != nil {
					t.Fatalf("trial %d op %d write: %v", trial, op, err)
				}
				copy(flat[off:], data)
			case 3:
				buf := make([]byte, n)
				if _, err := rig.shield.ReadBurst(addr, buf); err != nil {
					t.Fatalf("trial %d op %d read: %v", trial, op, err)
				}
				if !bytes.Equal(buf, flat[off:off+n]) {
					t.Fatalf("trial %d op %d: mismatch at %#x in %q", trial, op, addr, r.Name)
				}
			case 4:
				if err := rig.shield.Flush(); err != nil {
					t.Fatal(err)
				}
				rig.shield.InvalidateClean()
			}
		}
		// Full final verification through the DRAM path.
		if err := rig.shield.Flush(); err != nil {
			t.Fatal(err)
		}
		rig.shield.InvalidateClean()
		for _, r := range cfg.Regions {
			buf := make([]byte, r.Size)
			if _, err := rig.shield.ReadBurst(r.Base, buf); err != nil {
				t.Fatalf("trial %d final read %q: %v", trial, r.Name, err)
			}
			if !bytes.Equal(buf, ref[r.Name]) {
				t.Fatalf("trial %d: final state mismatch in %q", trial, r.Name)
			}
		}
	}
}

// TestRandomConfigsRejectTamper: for random configurations, flipping a
// random ciphertext bit in a written chunk is always detected.
func TestRandomConfigsRejectTamper(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		cfg := randomConfig(rng)
		rig := newRig(t, cfg)
		r := cfg.Regions[rng.Intn(len(cfg.Regions))]
		data := make([]byte, r.Size)
		rng.Read(data)
		if _, err := rig.shield.WriteBurst(r.Base, data); err != nil {
			t.Fatal(err)
		}
		rig.shield.Flush()
		rig.shield.InvalidateClean()
		// Flip one random bit of the region's ciphertext.
		victim := r.Base + uint64(rng.Intn(int(r.Size)))
		b, _ := rig.dram.RawRead(victim, 1)
		b[0] ^= 1 << uint(rng.Intn(8))
		rig.dram.RawWrite(victim, b)
		buf := make([]byte, r.Size)
		if _, err := rig.shield.ReadBurst(r.Base, buf); err == nil {
			t.Fatalf("trial %d: bit flip at %#x in %q undetected", trial, victim, r.Name)
		}
	}
}
