package shield

import (
	"fmt"

	"shef/internal/fpga"
)

// Component resource costs, transcribed from the paper's Table 1 ("Shield
// component utilization on AWS F1"). The three base modules exclude crypto
// engines and on-chip memory; engines and buffers are added per
// configuration.
var (
	// ControllerArea: one per Shield.
	ControllerArea = fpga.Resources{LUT: 2348, REG: 547}
	// EngineSetArea: per engine set, excluding engines and buffers.
	EngineSetArea = fpga.Resources{BRAM: 2, LUT: 1068, REG: 2508}
	// RegInterfaceArea: one per Shield (the secured AXI4-Lite path).
	RegInterfaceArea = fpga.Resources{LUT: 3251, REG: 1902}
	// AES4xArea and AES16xArea: per AES engine at the evaluated S-box
	// duplication factors.
	AES4xArea  = fpga.Resources{LUT: 2435, REG: 2347}
	AES16xArea = fpga.Resources{LUT: 2898, REG: 2347}
	// HMACArea: the serial SHA-256 HMAC engine.
	HMACArea = fpga.Resources{LUT: 3926, REG: 2636}
	// PMACArea: per PMAC engine.
	PMACArea = fpga.Resources{LUT: 2545, REG: 2570}
)

// bramBytes is the capacity of one BRAM36 tile (36 Kbit with parity; 32
// Kbit usable data = 4 KiB).
const bramBytes = 4096

// aesEngineArea interpolates engine area across S-box duplication factors.
// The paper reports the 4x and 16x points; other factors scale the S-box
// LUT cost linearly between them (the S-box table is the only part that
// duplicates).
func aesEngineArea(sbox int) fpga.Resources {
	switch {
	case sbox <= 4:
		// Below 4x the S-box share shrinks proportionally from the 4x point.
		perCopy := (AES16xArea.LUT - AES4xArea.LUT) / 12 // LUTs per extra S-box copy
		lut := AES4xArea.LUT - perCopy*uint64(4-sbox)
		return fpga.Resources{LUT: lut, REG: AES4xArea.REG}
	case sbox >= 16:
		return AES16xArea
	default:
		perCopy := (AES16xArea.LUT - AES4xArea.LUT) / 12
		lut := AES4xArea.LUT + perCopy*uint64(sbox-4)
		return fpga.Resources{LUT: lut, REG: AES4xArea.REG}
	}
}

// Area computes the Shield's inclusive resource utilisation for a
// configuration: controller + register interface (with its own AES and
// HMAC engine) + per-region engine sets with their engines, buffers, and
// counters. This regenerates the composition behind the paper's Tables 1
// and 3.
func Area(cfg Config) fpga.Resources {
	total := ControllerArea
	// Register interface ships with one AES and one HMAC engine to seal
	// AXI4-Lite traffic (paper §6.2.4, Bitcoin: "simply leveraging the
	// register interface, with one AES and one HMAC engine").
	total = total.Add(RegInterfaceArea).Add(AES4xArea).Add(HMACArea)
	for _, r := range cfg.Regions {
		set := EngineSetArea
		set = set.Add(aesEngineArea(int(r.SBox)).Scale(r.AESEngines))
		if r.MAC == PMAC {
			// The PMAC datapath pairs with each AES engine in the pool.
			set = set.Add(PMACArea.Scale(r.AESEngines))
		} else {
			set = set.Add(HMACArea)
		}
		// On-chip memory: buffer lines plus freshness counters, in BRAM36
		// tiles.
		ocmBytes := r.bufferLines() * r.ChunkSize
		if r.Freshness {
			ocmBytes += r.Chunks() * CounterSize
		}
		set = set.Add(fpga.Resources{BRAM: uint64((ocmBytes + bramBytes - 1) / bramBytes)})
		total = total.Add(set)
	}
	return total
}

// Utilization expresses res as percentages of a device budget, matching
// the way the paper reports Table 1 and Table 3.
type Utilization struct {
	BRAM, LUT, REG float64
}

// UtilizationOn computes percentage utilisation of res on model.
func UtilizationOn(res fpga.Resources, model fpga.Model) Utilization {
	pct := func(used, avail uint64) float64 {
		if avail == 0 {
			return 0
		}
		return 100 * float64(used) / float64(avail)
	}
	return Utilization{
		BRAM: pct(res.BRAM, model.Budget.BRAM),
		LUT:  pct(res.LUT, model.Budget.LUT),
		REG:  pct(res.REG, model.Budget.REG),
	}
}

func (u Utilization) String() string {
	return fmt.Sprintf("BRAM %.2f%% / LUT %.2f%% / REG %.2f%%", u.BRAM, u.LUT, u.REG)
}
