package shield

import (
	"bytes"
	"strings"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// testRig bundles a provisioned Shield over a small DRAM.
type testRig struct {
	shield *Shield
	dram   *mem.DRAM
	dek    []byte
}

func simpleConfig() Config {
	return Config{
		Regions: []RegionConfig{
			{
				Name: "data", Base: 0, Size: 1 << 16, ChunkSize: 512,
				AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128,
				MAC: HMAC, BufferBytes: 4 * 512, Freshness: true,
			},
			{
				Name: "stream", Base: 1 << 16, Size: 1 << 16, ChunkSize: 512,
				AESEngines: 2, SBox: aesx.SBox4x, KeySize: aesx.AES256,
				MAC: PMAC, BufferBytes: 2 * 512, ZeroFillWrites: true,
			},
		},
		Registers: 8,
	}
}

func newRig(t *testing.T, cfg Config) *testRig {
	t.Helper()
	dram := mem.NewDRAM(1<<22, perf.Default())
	ocm := mem.NewOCM(64 * 1000 * 1000)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(cfg, priv, dram, ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	dek := bytes.Repeat([]byte{0x5A}, 32)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		t.Fatal(err)
	}
	return &testRig{shield: sh, dram: dram, dek: dek}
}

func TestUnprovisionedRefusesService(t *testing.T) {
	dram := mem.NewDRAM(1<<20, perf.Default())
	ocm := mem.NewOCM(1 << 30)
	priv, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	sh, err := New(simpleConfig(), priv, dram, ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ReadBurst(0, make([]byte, 16)); err == nil {
		t.Fatal("unprovisioned shield served a read")
	}
	if err := sh.Flush(); err == nil {
		t.Fatal("unprovisioned shield flushed")
	}
}

func TestWrongLoadKeyRejected(t *testing.T) {
	dram := mem.NewDRAM(1<<20, perf.Default())
	ocm := mem.NewOCM(1 << 30)
	priv, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	other, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	sh, _ := New(simpleConfig(), priv, dram, ocm, perf.Default())
	lk, _ := keywrap.Wrap(&other.PublicKey, bytes.Repeat([]byte{1}, 32), nil)
	if err := sh.ProvisionLoadKey(lk); err == nil {
		t.Fatal("load key for a different shield accepted")
	}
	if sh.Provisioned() {
		t.Fatal("shield armed despite rejected key")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	rig := newRig(t, simpleConfig())
	msg := []byte("the accelerator's working set, which must survive the shield")
	if _, err := rig.shield.WriteBurst(100, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := rig.shield.ReadBurst(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("read-after-write mismatch (buffered)")
	}
	// Force the data through DRAM and back.
	if err := rig.shield.Flush(); err != nil {
		t.Fatal(err)
	}
	rig.shield.InvalidateClean()
	got2 := make([]byte, len(msg))
	if _, err := rig.shield.ReadBurst(100, got2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got2, msg) {
		t.Fatal("read-after-flush mismatch (through DRAM)")
	}
}

func TestDRAMHoldsOnlyCiphertext(t *testing.T) {
	rig := newRig(t, simpleConfig())
	secret := bytes.Repeat([]byte("TOPSECRET!"), 60)
	rig.shield.WriteBurst(0, secret)
	rig.shield.Flush()
	// Adversary dumps all of DRAM: the plaintext must not appear.
	dump, err := rig.dram.RawRead(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(dump, []byte("TOPSECRET!")) {
		t.Fatal("plaintext visible in off-chip memory")
	}
}

func TestSpoofingDetected(t *testing.T) {
	rig := newRig(t, simpleConfig())
	rig.shield.WriteBurst(0, bytes.Repeat([]byte{7}, 512))
	rig.shield.Flush()
	rig.shield.InvalidateClean()
	// Adversary flips a ciphertext bit in DRAM.
	ct, _ := rig.dram.RawRead(0, 512)
	ct[13] ^= 1
	rig.dram.RawWrite(0, ct)
	buf := make([]byte, 512)
	_, err := rig.shield.ReadBurst(0, buf)
	if err == nil {
		t.Fatal("spoofed ciphertext accepted")
	}
	var ie *IntegrityError
	if !errorsAs(err, &ie) {
		t.Fatalf("error is %T (%v), want IntegrityError", err, err)
	}
	// The shield latches: further accesses fail too.
	if _, err := rig.shield.ReadBurst(4096, buf); err == nil {
		t.Fatal("shield served reads after integrity violation in region")
	}
}

func TestSplicingDetected(t *testing.T) {
	rig := newRig(t, simpleConfig())
	rig.shield.WriteBurst(0, bytes.Repeat([]byte{1}, 512))
	rig.shield.WriteBurst(512, bytes.Repeat([]byte{2}, 512))
	rig.shield.Flush()
	rig.shield.InvalidateClean()
	// Copy chunk 0's ciphertext+tag over chunk 1 (splicing): the MAC binds
	// the address, so this must fail even though the tag is "valid".
	ct0, _ := rig.dram.RawRead(0, 512)
	rig.dram.RawWrite(512, ct0)
	tagBase := rig.shield.tagBase
	tag0, _ := rig.dram.RawRead(tagBase, TagSize)
	rig.dram.RawWrite(tagBase+TagSize, tag0)
	buf := make([]byte, 512)
	if _, err := rig.shield.ReadBurst(512, buf); err == nil {
		t.Fatal("spliced chunk accepted")
	}
}

func TestReplayDetectedWithFreshness(t *testing.T) {
	rig := newRig(t, simpleConfig())
	// Write v1, flush, snapshot ciphertext+tag, write v2, flush, restore v1.
	rig.shield.WriteBurst(0, bytes.Repeat([]byte{0xA1}, 512))
	rig.shield.Flush()
	snapData, _ := rig.dram.Snapshot(0, 512)
	snapTag, _ := rig.dram.Snapshot(rig.shield.tagBase, TagSize)

	rig.shield.WriteBurst(0, bytes.Repeat([]byte{0xB2}, 512))
	rig.shield.Flush()
	rig.shield.InvalidateClean()

	rig.dram.Restore(0, snapData)
	rig.dram.Restore(rig.shield.tagBase, snapTag)

	buf := make([]byte, 512)
	if _, err := rig.shield.ReadBurst(0, buf); err == nil {
		t.Fatal("replayed stale chunk accepted in freshness-protected region")
	}
}

// TestReplayUndetectedWithoutFreshness documents the deliberate trade-off
// the paper describes: streaming regions that skip counters are not
// replay-protected, in exchange for zero counter storage (§5.2.2).
func TestReplayUndetectedWithoutFreshness(t *testing.T) {
	cfg := simpleConfig()
	cfg.Regions = cfg.Regions[:1]
	cfg.Regions[0].Freshness = false
	rig := newRig(t, cfg)

	rig.shield.WriteBurst(0, bytes.Repeat([]byte{0xA1}, 512))
	rig.shield.Flush()
	snapData, _ := rig.dram.Snapshot(0, 512)
	snapTag, _ := rig.dram.Snapshot(rig.shield.tagBase, TagSize)

	rig.shield.WriteBurst(0, bytes.Repeat([]byte{0xB2}, 512))
	rig.shield.Flush()
	rig.shield.InvalidateClean()

	rig.dram.Restore(0, snapData)
	rig.dram.Restore(rig.shield.tagBase, snapTag)

	buf := make([]byte, 512)
	if _, err := rig.shield.ReadBurst(0, buf); err != nil {
		t.Fatalf("replay unexpectedly detected without counters: %v", err)
	}
	if buf[0] != 0xA1 {
		t.Fatal("replayed chunk did not decrypt to the stale value")
	}
}

func TestIsolationOutsideRegions(t *testing.T) {
	rig := newRig(t, simpleConfig())
	if _, err := rig.shield.ReadBurst(1<<20, make([]byte, 16)); err == nil {
		t.Fatal("access outside all regions served")
	}
	if _, err := rig.shield.WriteBurst(1<<17, make([]byte, 16)); err == nil {
		t.Fatal("write outside all regions served")
	}
}

func TestBurstMayNotCrossRegions(t *testing.T) {
	rig := newRig(t, simpleConfig())
	// A burst straddling the data/stream boundary must be rejected: each
	// burst maps to exactly one engine set (paper §5.2.2, burst decoder).
	if _, err := rig.shield.WriteBurst(1<<16-8, make([]byte, 16)); err == nil {
		t.Fatal("cross-region burst accepted")
	}
}

func TestRegionsCryptographicallyIsolated(t *testing.T) {
	rig := newRig(t, simpleConfig())
	data := bytes.Repeat([]byte{0xCC}, 512)
	rig.shield.WriteBurst(0, data)
	rig.shield.WriteBurst(1<<16, data)
	rig.shield.Flush()
	ct0, _ := rig.dram.RawRead(0, 512)
	ct1, _ := rig.dram.RawRead(1<<16, 512)
	if bytes.Equal(ct0, ct1) {
		t.Fatal("identical plaintext produced identical ciphertext across regions")
	}
}

func TestFreshnessRotatesCiphertext(t *testing.T) {
	rig := newRig(t, simpleConfig())
	data := bytes.Repeat([]byte{0xDD}, 512)
	rig.shield.WriteBurst(0, data)
	rig.shield.Flush()
	ct1, _ := rig.dram.RawRead(0, 512)
	rig.shield.WriteBurst(0, data)
	rig.shield.Flush()
	ct2, _ := rig.dram.RawRead(0, 512)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("rewriting the same plaintext reused the keystream (IV not rotated)")
	}
}

func TestEvictionWritesBack(t *testing.T) {
	cfg := simpleConfig()
	cfg.Regions = cfg.Regions[:1]
	cfg.Regions[0].BufferBytes = 2 * 512 // two lines only
	rig := newRig(t, cfg)
	// Touch four chunks; earlier ones must be evicted and written back.
	for i := 0; i < 4; i++ {
		rig.shield.WriteBurst(uint64(i*512), bytes.Repeat([]byte{byte(i + 1)}, 512))
	}
	rep := rig.shield.Report()
	if rep.Regions[0].Evictions == 0 {
		t.Fatal("no evictions despite exceeding buffer capacity")
	}
	// All four chunks must read back correctly.
	for i := 0; i < 4; i++ {
		buf := make([]byte, 512)
		rig.shield.ReadBurst(uint64(i*512), buf)
		if buf[0] != byte(i+1) {
			t.Fatalf("chunk %d corrupted after eviction", i)
		}
	}
}

func TestBufferHitsAvoidDRAM(t *testing.T) {
	rig := newRig(t, simpleConfig())
	buf := make([]byte, 64)
	rig.shield.ReadBurst(0, buf) // miss: fetch chunk 0
	rig.dram.ResetStats()
	for i := 0; i < 10; i++ {
		rig.shield.ReadBurst(uint64(i*32), buf[:32]) // all within chunk 0
	}
	if r, w, _, _ := rig.dram.Stats(); r+w != 0 {
		t.Fatalf("buffer hits generated %d DRAM accesses", r+w)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unaligned base", func(c *Config) { c.Regions[0].Base = 100 }},
		{"bad chunk", func(c *Config) { c.Regions[0].ChunkSize = 100 }},
		{"zero size", func(c *Config) { c.Regions[0].Size = 0 }},
		{"overlap", func(c *Config) { c.Regions[1].Base = c.Regions[0].Base + 512 }},
		{"no engines", func(c *Config) { c.Regions[0].AESEngines = 0 }},
		{"bad sbox", func(c *Config) { c.Regions[0].SBox = 5 }},
		{"bad keysize", func(c *Config) { c.Regions[0].KeySize = 24 }},
		{"bad mac", func(c *Config) { c.Regions[0].MAC = 9 }},
		{"negative regs", func(c *Config) { c.Registers = -1 }},
	}
	for _, tc := range cases {
		cfg := simpleConfig()
		tc.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: validation passed", tc.name)
		}
	}
	good := simpleConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestOCMBudgetEnforced(t *testing.T) {
	dram := mem.NewDRAM(1<<22, perf.Default())
	ocm := mem.NewOCM(8 * 1024) // 1 KB on-chip: far too small
	priv, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	cfg := simpleConfig()
	sh, err := New(cfg, priv, dram, ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	lk, _ := keywrap.Wrap(sh.PublicKey(), bytes.Repeat([]byte{1}, 32), nil)
	if err := sh.ProvisionLoadKey(lk); err == nil {
		t.Fatal("shield armed despite exceeding on-chip memory budget")
	} else if !strings.Contains(err.Error(), "OCM") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func errorsAs(err error, target **IntegrityError) bool {
	for err != nil {
		if ie, ok := err.(*IntegrityError); ok {
			*target = ie
			return true
		}
		type unwrapper interface{ Unwrap() error }
		u, ok := err.(unwrapper)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
