package shield

import (
	"fmt"
	"testing"
	"time"

	"shef/internal/crypto/engine"
	"shef/internal/perf"
)

// This file measures the Shield's *real* data-path throughput — wall-clock
// MB/s through the functional crypto engines — as opposed to the simulated
// cycle metrics (sim-*) the calibration benchmarks report. Every benchmark
// here runs once per crypto engine kind, and the steady-state window loop
// is asserted allocation-free: benchtab gates allocs/op at zero for any
// benchmark whose name contains "Real".

// realBenchBytes is the per-op transfer size: large enough that the
// per-call setup (lock, region routing) is noise against the per-window
// crypto work, small enough that -benchtime=1x CI runs stay instant.
const realBenchBytes = 1 << 20

// realEngines are the engine kinds the Real benchmarks pin via
// perf.Params.CryptoEngine. "hardware" first so the headline number leads.
var realEngines = []string{"hardware", "scalar"}

// realParams returns the default parameter set pinned to one engine kind.
func realParams(eng string) perf.Params {
	p := perf.Default()
	p.CryptoEngine = eng
	return p
}

// reportRealMBps attaches the real throughput metric benchtab records.
func reportRealMBps(b *testing.B, unit string, bytesPerOp int) {
	b.Helper()
	secs := b.Elapsed().Seconds()
	if secs <= 0 {
		return
	}
	b.ReportMetric(float64(bytesPerOp)*float64(b.N)/secs/1e6, unit)
}

// BenchmarkRealReadStream is the headline number: MB/s of authenticated
// decryption through ReadStream. The region's buffer holds only four
// lines and readWindow never inserts lines, so every op re-fetches and
// re-verifies the full image — pure fetch/open pipeline.
func BenchmarkRealReadStream(b *testing.B) {
	for _, eng := range realEngines {
		b.Run(eng, func(b *testing.B) {
			sh, _ := newStreamRigParams(b, streamBenchConfig(realBenchBytes), realBenchBytes, realParams(eng))
			buf := make([]byte, realBenchBytes)
			if _, err := sh.ReadStream(0, buf); err != nil { // prime pools and workers
				b.Fatal(err)
			}
			b.SetBytes(realBenchBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.ReadStream(0, buf); err != nil {
					b.Fatal(err)
				}
			}
			reportRealMBps(b, "real-stream-MB/s", realBenchBytes)
		})
	}
}

// BenchmarkRealWriteStream measures seal+store MB/s through WriteStream.
// Full-chunk stream writes never fetch and supersede resident lines, so
// every op seals the full image.
func BenchmarkRealWriteStream(b *testing.B) {
	for _, eng := range realEngines {
		b.Run(eng, func(b *testing.B) {
			sh, img := newStreamRigParams(b, streamBenchConfig(realBenchBytes), realBenchBytes, realParams(eng))
			if _, err := sh.WriteStream(0, img); err != nil { // prime pools and workers
				b.Fatal(err)
			}
			b.SetBytes(realBenchBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sh.WriteStream(0, img); err != nil {
					b.Fatal(err)
				}
			}
			reportRealMBps(b, "real-stream-MB/s", realBenchBytes)
		})
	}
}

// BenchmarkRealFlush measures the batched write-back: dirty the whole
// region through resident lines, then seal and store it in one flush. A
// single region takes Shield.Flush's direct path (no per-set goroutine or
// error-slice setup), and a buffer sized to the region keeps every line
// resident across ops, so the loop is re-dirty + flush only.
func BenchmarkRealFlush(b *testing.B) {
	for _, eng := range realEngines {
		b.Run(eng, func(b *testing.B) {
			cfg := streamBenchConfig(realBenchBytes)
			cfg.Regions[0].BufferBytes = realBenchBytes
			sh, img := newStreamRigParams(b, cfg, realBenchBytes, realParams(eng))
			dirty := func() {
				if _, err := sh.WriteBurst(0, img); err != nil {
					b.Fatal(err)
				}
			}
			dirty() // prime: populate every line
			if err := sh.Flush(); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(realBenchBytes)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dirty() // re-dirty resident lines (on-chip copy, untimed)
				b.StartTimer()
				if err := sh.Flush(); err != nil {
					b.Fatal(err)
				}
			}
			reportRealMBps(b, "real-flush-MB/s", realBenchBytes)
		})
	}
}

// measureReadStreamMBps times full-image ReadStream ops on a fresh rig
// pinned to eng and returns the best observed MB/s (min-of-reps filters
// scheduler noise the way the engine micro-benchmark does).
func measureReadStreamMBps(tb testing.TB, eng string, size uint64, reps int) float64 {
	tb.Helper()
	sh, _ := newStreamRigParams(tb, streamBenchConfig(size), size, realParams(eng))
	buf := make([]byte, size)
	if _, err := sh.ReadStream(0, buf); err != nil { // warm pools and workers
		tb.Fatal(err)
	}
	best := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		if _, err := sh.ReadStream(0, buf); err != nil {
			tb.Fatal(err)
		}
		if mbps := float64(size) / time.Since(start).Seconds() / 1e6; mbps > best {
			best = mbps
		}
	}
	return best
}

// TestEngineRealSpeedup is the acceptance gate on the engine layer: with
// AES-NI available, the hardware-backed engines must move at least twice
// the scalar reference's MB/s through Shield ReadStream. Skipped when the
// platform (or SHEF_CRYPTO_ENGINE) does not select the hardware engine,
// and under the race detector, whose instrumentation distorts wall-clock
// ratios.
func TestEngineRealSpeedup(t *testing.T) {
	if raceEnabled {
		t.Skip("wall-clock ratio not meaningful under the race detector")
	}
	if sel := engine.Select(); sel.AES != engine.Hardware {
		t.Skipf("hardware AES engine not selected on this platform (%v)", sel)
	}
	const size = 1 << 19
	const reps = 4
	hw := measureReadStreamMBps(t, "hardware", size, reps)
	sc := measureReadStreamMBps(t, "scalar", size, reps)
	ratio := hw / sc
	t.Logf("ReadStream real throughput: hardware %.1f MB/s, scalar %.1f MB/s (%.2fx)", hw, sc, ratio)
	if ratio < 2 {
		t.Errorf("hardware engine only %.2fx scalar (want >= 2x): hardware %.1f MB/s, scalar %.1f MB/s",
			ratio, hw, sc)
	}
}

// TestRealBenchZeroAlloc pins the zero-alloc claim as a plain test so it
// holds on every `go test` run, not only when benchmarks are invoked: a
// steady-state full-image ReadStream and WriteStream must not allocate.
func TestRealBenchZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	const size = 1 << 18
	for _, eng := range realEngines {
		t.Run(eng, func(t *testing.T) {
			sh, img := newStreamRigParams(t, streamBenchConfig(size), size, realParams(eng))
			buf := make([]byte, size)
			if _, err := sh.ReadStream(0, buf); err != nil {
				t.Fatal(err)
			}
			if _, err := sh.WriteStream(0, img); err != nil {
				t.Fatal(err)
			}
			// Averaging over many runs applies the same rounding -benchmem
			// does: the worker fan-out occasionally costs a runtime-internal
			// allocation (sudog churn under goroutine ping-pong), but any
			// *deterministic* per-op allocation shows up as >= 1.
			for name, op := range map[string]func(){
				"ReadStream":  func() { sh.ReadStream(0, buf) },
				"WriteStream": func() { sh.WriteStream(0, img) },
			} {
				if allocs := testing.AllocsPerRun(20, op); allocs >= 1 {
					t.Errorf("%s %s: %v allocs/op, want 0", name, eng, allocs)
				}
			}
		})
	}
}

// Example of the one-line engine log the daemons emit at startup; kept
// next to the benchmarks so the format stays in sync with Selection.String.
func ExampleSelection_log() {
	sel := engine.Selection{AES: engine.Scalar, SHA: engine.Scalar, Forced: true}
	fmt.Println(sel.String())
	// Output:
	// crypto engines: aes=scalar sha=scalar (aesni=false sha_ni=false, via env SHEF_CRYPTO_ENGINE)
}
