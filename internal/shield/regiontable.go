package shield

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"shef/internal/axi"
	"shef/internal/mem"
	"shef/internal/perf"
)

// This file is the virtual region layer: the Shield's regions are no
// longer a fixed array stamped out at provisioning time but rows in a
// RegionTable that tenants create and destroy at runtime. Three pieces
// make thousands of zones affordable on one device:
//
//   - a direct-mapped lookup cache on the burst-decode path (the TLB of
//     this address space), so per-access resolution is O(1) no matter how
//     many zones exist;
//   - lazy engine sets: a zone holds no worker pool, buffer lines, or
//     pooled scratch until its first access materialises them, and
//     reclamation hands them back, so idle tenants cost only a descriptor;
//   - per-tenant quota accounting (mem.Accountant) charged at creation
//     for the zone's DRAM footprint and worst-case OCM metadata, so one
//     tenant cannot squat on the device.
//
// The static Config.Regions path is a thin shim over this layer: a
// provisioning resets the table and inserts each configured region as an
// eagerly-materialised zone owned by the session tenant, preserving the
// region IDs, tag layout, and DRAM-share accounting of the fixed-array
// design bit for bit.

// vRegion is one protection zone: the descriptor half lives in the table
// for the lifetime of the zone, the engine-set half comes and goes with
// materialisation.
type vRegion struct {
	cfg    RegionConfig
	id     uint32
	tagOff uint64
	// dramBytes/ocmBytes are the quota charges held from CreateRegion to
	// DestroyRegion: data plus tag shadow, and worst-case on-chip
	// metadata (buffer, counters, valid bits). The charge is a
	// reservation — reclaiming the engine set returns real OCM to the
	// device pool but keeps the tenant's budget held, so a reclaimed
	// zone can always re-materialise.
	dramBytes uint64
	ocmBytes  uint64
	// set is the lazily-materialised engine set (nil while idle).
	set atomic.Pointer[engineSet]
	// Durable metadata preserved across an idle reclaim: the freshness
	// counters and valid bits stay resident on-chip (metaOCM bytes still
	// charged to the device pool) so the zone's flushed data survives the
	// engine set and the next materialisation can verify it.
	savedCounters []uint32
	savedInit     []bool
	metaOCM       int
	// share is the channel's materialised-set counter; the engine set
	// reads it on every charge so DRAM contention follows who is actually
	// live on the channel, not who merely holds a descriptor.
	share *atomic.Int64
}

func (r *vRegion) key() string { return r.cfg.Tenant + "\x00" + r.cfg.Name }

// end returns the first address past the zone.
func (r *vRegion) end() uint64 { return r.cfg.Base + r.cfg.Size }

// lookupEntry is one lookup-cache slot payload: the resolved zone and the
// epoch it was installed under. Entries are immutable once published.
type lookupEntry struct {
	base, end uint64
	epoch     uint64
	r         *vRegion
}

// lookupCache is the burst decoder's region TLB: direct-mapped, indexed
// by page number, invalidated wholesale by bumping the epoch (the
// shootdown a DestroyRegion performs). Slots are atomic.Pointers so the
// hit path is lock-free and allocation-free.
type lookupCache struct {
	slots []atomic.Pointer[lookupEntry]
	mask  uint64
	shift uint
}

func newLookupCache(entries, pageBytes int) *lookupCache {
	if entries <= 0 {
		entries = 1024
	}
	if pageBytes <= 0 {
		pageBytes = 4096
	}
	// Round both to powers of two: the slot index is a shift and mask.
	entries = 1 << bits.Len(uint(entries-1))
	pageBytes = 1 << bits.Len(uint(pageBytes-1))
	return &lookupCache{
		slots: make([]atomic.Pointer[lookupEntry], entries),
		mask:  uint64(entries - 1),
		shift: uint(bits.TrailingZeros(uint(pageBytes))),
	}
}

func (c *lookupCache) slot(addr uint64) *atomic.Pointer[lookupEntry] {
	return &c.slots[(addr>>c.shift)&c.mask]
}

// RegionTable owns the session's protection zones. All structural
// mutation (create/destroy/reset) happens under mu; the data path reads
// through the lookup cache and only falls back to mu.RLock on a miss.
type RegionTable struct {
	mu sync.RWMutex
	// byKey indexes zones by (tenant, name); sorted holds the same zones
	// ordered by base address for the binary-search slow path and for
	// deterministic iteration.
	byKey  map[string]*vRegion
	sorted []*vRegion
	// channels counts materialised engine sets per off-chip channel;
	// vRegion.share points into this map.
	channels map[int]*atomic.Int64
	acct     *mem.Accountant
	nextID   uint32
	// Tag-shadow allocator: static regions occupy [tagBase, tagCursor)
	// exactly as the fixed-array design laid them out; dynamic zones
	// carve from the cursor with an exact-fit free list so create/destroy
	// churn does not leak tag space.
	tagBase   uint64
	tagCursor uint64
	tagFree   map[uint64][]uint64 // span size -> free offsets

	cache *lookupCache
	// epoch versions the lookup cache: destroy/reset bump it, instantly
	// invalidating every installed entry.
	epoch atomic.Uint64
	// hits/misses are the deterministic resolution counters the sim cost
	// model charges (perf.Params.RegionLookupCycles).
	hits, misses atomic.Uint64
}

func newRegionTable(tagBase uint64, acct *mem.Accountant, params perf.Params) *RegionTable {
	return &RegionTable{
		byKey:     make(map[string]*vRegion),
		channels:  make(map[int]*atomic.Int64),
		acct:      acct,
		tagBase:   tagBase,
		tagCursor: tagBase,
		tagFree:   make(map[uint64][]uint64),
		cache:     newLookupCache(params.RegionLookupEntries, params.RegionLookupPageBytes),
	}
}

// channelCounter returns (creating if needed) the materialised-set
// counter for an off-chip channel. Callers hold t.mu.
func (t *RegionTable) channelCounter(ch int) *atomic.Int64 {
	c, ok := t.channels[ch]
	if !ok {
		c = new(atomic.Int64)
		t.channels[ch] = c
	}
	return c
}

// lookup resolves an address to its zone, counting a cache hit or miss.
// The hit path is lock-free and does not allocate.
func (t *RegionTable) lookup(addr uint64) *vRegion {
	slot := t.cache.slot(addr)
	epoch := t.epoch.Load()
	if e := slot.Load(); e != nil && e.epoch == epoch && addr >= e.base && addr < e.end {
		t.hits.Add(1)
		return e.r
	}
	t.misses.Add(1)
	t.mu.RLock()
	r := t.findLocked(addr)
	t.mu.RUnlock()
	if r == nil {
		return nil
	}
	slot.Store(&lookupEntry{base: r.cfg.Base, end: r.end(), epoch: epoch, r: r})
	return r
}

// findLocked binary-searches the base-sorted zones. Callers hold t.mu.
func (t *RegionTable) findLocked(addr uint64) *vRegion {
	i := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i].cfg.Base > addr })
	if i == 0 {
		return nil
	}
	if r := t.sorted[i-1]; addr < r.end() {
		return r
	}
	return nil
}

// named resolves a (tenant, name) pair to its zone.
func (t *RegionTable) named(tenant, name string) *vRegion {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.byKey[tenant+"\x00"+name]
}

// snapshot returns the zones in base order. t.sorted is copy-on-write
// (insert and remove publish a fresh slice), so the returned slice is
// immutable and handing it out allocation-free is safe — the data path
// (Flush, InvalidateClean) walks it per call. Callers must not mutate.
func (t *RegionTable) snapshot() []*vRegion {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.sorted
}

// lookupStats reads the resolution counters.
func (t *RegionTable) lookupStats() (hits, misses uint64) {
	return t.hits.Load(), t.misses.Load()
}

func (t *RegionTable) resetLookupStats() {
	t.hits.Store(0)
	t.misses.Store(0)
}

// regionQuotaFootprint computes the quota charges of a zone: DRAM is the
// data plus its tag shadow; OCM is the worst-case metadata an engine set
// will pin on-chip (buffer lines, freshness counters, valid bits) —
// mirroring newEngineSet's charges exactly so a zone that passed
// admission cannot fail materialisation on quota.
func regionQuotaFootprint(rc RegionConfig) (dram, ocm uint64) {
	chunks := uint64(rc.Chunks())
	dram = rc.Size + chunks*TagSize
	ocm = uint64(rc.bufferLines()*rc.ChunkSize) + (chunks+7)/8
	if rc.Freshness {
		ocm += chunks * CounterSize
	}
	return dram, ocm
}

// tagAlloc carves a tag-shadow span, reusing an exact-fit freed span
// when one exists.
func (t *RegionTable) tagAlloc(size uint64) uint64 {
	if free := t.tagFree[size]; len(free) > 0 {
		off := free[len(free)-1]
		t.tagFree[size] = free[:len(free)-1]
		return off
	}
	off := t.tagCursor
	t.tagCursor += size
	return off
}

func (t *RegionTable) tagRelease(off, size uint64) {
	if size == 0 {
		return
	}
	t.tagFree[size] = append(t.tagFree[size], off)
}

// insert validates rc against the live table and adds it as an idle
// zone, charging the tenant's quota. Callers hold t.mu.
func (t *RegionTable) insertLocked(rc RegionConfig, arenaEnd uint64) (*vRegion, error) {
	if rc.Name == "" {
		return nil, fmt.Errorf("shield: tenant %q: region needs a name", rc.Tenant)
	}
	if err := rc.validate(); err != nil {
		return nil, err
	}
	key := rc.Tenant + "\x00" + rc.Name
	if _, dup := t.byKey[key]; dup {
		return nil, fmt.Errorf("shield: tenant %q: region %q already exists", rc.Tenant, rc.Name)
	}
	if end := rc.Base + rc.Size; end > arenaEnd {
		return nil, fmt.Errorf("shield: tenant %q: region %q [%#x,+%d) exceeds the region arena (ends %#x)",
			rc.Tenant, rc.Name, rc.Base, rc.Size, arenaEnd)
	}
	// Overlap check against the base-sorted neighbours only.
	i := sort.Search(len(t.sorted), func(i int) bool { return t.sorted[i].cfg.Base > rc.Base })
	if i > 0 {
		if prev := t.sorted[i-1]; prev.end() > rc.Base {
			return nil, fmt.Errorf("shield: tenant %q: region %q overlaps %q (tenant %q)",
				rc.Tenant, rc.Name, prev.cfg.Name, prev.cfg.Tenant)
		}
	}
	if i < len(t.sorted) {
		if next := t.sorted[i]; rc.Base+rc.Size > next.cfg.Base {
			return nil, fmt.Errorf("shield: tenant %q: region %q overlaps %q (tenant %q)",
				rc.Tenant, rc.Name, next.cfg.Name, next.cfg.Tenant)
		}
	}
	dram, ocm := regionQuotaFootprint(rc)
	if err := t.acct.Charge(rc.Tenant, dram, ocm); err != nil {
		return nil, fmt.Errorf("shield: tenant %q: region %q rejected: %w", rc.Tenant, rc.Name, err)
	}
	t.nextID++
	r := &vRegion{
		cfg:       rc,
		id:        t.nextID,
		tagOff:    t.tagAlloc(uint64(rc.Chunks() * TagSize)),
		dramBytes: dram,
		ocmBytes:  ocm,
		share:     t.channelCounter(rc.Channel),
	}
	t.byKey[key] = r
	// Copy-on-write: publish a fresh sorted slice so snapshot() can hand
	// out the old one without copying.
	ns := make([]*vRegion, len(t.sorted)+1)
	copy(ns, t.sorted[:i])
	ns[i] = r
	copy(ns[i+1:], t.sorted[i:])
	t.sorted = ns
	return r, nil
}

// create validates and inserts a new idle zone.
func (t *RegionTable) create(rc RegionConfig, arenaEnd uint64) (*vRegion, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.insertLocked(rc, arenaEnd)
}

// destroy tears down a zone: the engine set is retired with dirty lines
// discarded (destruction is erasure), the quota charge returns to the
// tenant, and the lookup cache is shot down. Callers must have quiesced
// the data path (Shield.mu write side).
func (t *RegionTable) destroy(tenant, name string, ocm *mem.OCM) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.byKey[tenant+"\x00"+name]
	if r == nil {
		return fmt.Errorf("shield: tenant %q: unknown region %q", tenantLabel(tenant), name)
	}
	_ = t.reclaimLocked(r, ocm, false)
	t.removeLocked(r)
	return nil
}

// reclaim retires an idle zone's engine set after writing back its dirty
// lines, keeping the descriptor and quota reservation. Callers must have
// quiesced the data path.
func (t *RegionTable) reclaim(r *vRegion, ocm *mem.OCM) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reclaimLocked(r, ocm, true)
}

// releaseAll retires every zone without flushing — the session handover
// of a re-provisioning — returning all on-chip memory and quota charges.
func (t *RegionTable) releaseAll(ocm *mem.OCM) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, r := range t.sorted {
		_ = t.reclaimLocked(r, ocm, false)
		t.acct.Release(r.cfg.Tenant, r.dramBytes, r.ocmBytes)
	}
	t.byKey = make(map[string]*vRegion)
	t.sorted = nil
	t.epoch.Add(1)
}

// materialize builds the zone's engine set on first use. Callers do NOT
// hold t.mu.
func (t *RegionTable) materialize(r *vRegion, dek []byte, port axi.MemoryPort,
	ocm *mem.OCM, params perf.Params) (*engineSet, error) {

	t.mu.Lock()
	defer t.mu.Unlock()
	if set := r.set.Load(); set != nil { // lost the race: someone built it
		return set, nil
	}
	set, err := newEngineSet(r.cfg, r.id, dek, r.tagOff, port, ocm, params)
	if err != nil {
		return nil, fmt.Errorf("shield: tenant %q: region %q: %w", r.cfg.Tenant, r.cfg.Name, err)
	}
	if r.metaOCM > 0 {
		// A reclaim kept the durable metadata resident (and charged);
		// newEngineSet just charged it again, so return the stashed share
		// and hand the preserved state back to the set.
		ocm.Free(r.metaOCM)
		set.adoptMeta(r.savedCounters, r.savedInit)
		r.savedCounters, r.savedInit, r.metaOCM = nil, nil, 0
	}
	set.share = r.share
	r.share.Add(1)
	r.set.Store(set)
	return set, nil
}

// reclaimLocked retires a zone's engine set. An idle reclaim (flush
// true) writes dirty lines back and keeps the durable metadata resident
// so the zone's data survives; a destroy (flush false) discards
// everything — teardown is erasure. Callers hold t.mu and must have
// quiesced the data path.
func (t *RegionTable) reclaimLocked(r *vRegion, ocm *mem.OCM, flush bool) error {
	set := r.set.Load()
	if set == nil {
		if !flush && r.metaOCM > 0 {
			// Destroying a zone reclaimed earlier: drop its resident
			// metadata too.
			ocm.Free(r.metaOCM)
			r.savedCounters, r.savedInit, r.metaOCM = nil, nil, 0
		}
		return nil
	}
	var err error
	if flush {
		err = set.flush()
	}
	r.set.Store(nil)
	r.share.Add(-1)
	if flush {
		r.savedCounters, r.savedInit, r.metaOCM = set.detachMeta(ocm)
	} else {
		set.releaseOCM(ocm)
	}
	return err
}

// removeLocked unlinks a zone and returns its charges. Callers hold t.mu
// and have already reclaimed the engine set.
func (t *RegionTable) removeLocked(r *vRegion) {
	delete(t.byKey, r.key())
	for i, s := range t.sorted {
		if s == r {
			// Copy-on-write, as in insertLocked.
			ns := make([]*vRegion, 0, len(t.sorted)-1)
			ns = append(ns, t.sorted[:i]...)
			t.sorted = append(ns, t.sorted[i+1:]...)
			break
		}
	}
	t.tagRelease(r.tagOff, uint64(r.cfg.Chunks()*TagSize))
	t.acct.Release(r.cfg.Tenant, r.dramBytes, r.ocmBytes)
	t.epoch.Add(1) // shootdown: every cached translation is now stale
}

// TenantZoneStats is one zone's row in a tenant report.
type TenantZoneStats struct {
	Tenant string
	Name   string
	Base   uint64
	Size   uint64
	// Live reports whether the zone currently holds a materialised
	// engine set (idle zones hold only a descriptor).
	Live bool
}

// zoneStats lists all zones in base order.
func (t *RegionTable) zoneStats() []TenantZoneStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]TenantZoneStats, 0, len(t.sorted))
	for _, r := range t.sorted {
		out = append(out, TenantZoneStats{
			Tenant: r.cfg.Tenant,
			Name:   r.cfg.Name,
			Base:   r.cfg.Base,
			Size:   r.cfg.Size,
			Live:   r.set.Load() != nil,
		})
	}
	return out
}
