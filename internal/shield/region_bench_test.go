package shield

import (
	"fmt"
	"testing"

	"shef/internal/perf"
)

// BenchmarkRegionLookupScaling is the virtual-region layer's headline
// gate: a steady-state workload over one hot zone while a thousand idle
// tenant zones populate the region table. The TLB-style lookup cache
// must keep per-access resolution O(1) — the simulated lookup charge
// stays under 5% of the data-path cycles (sim-region-lookup-overhead-pct,
// ceiling-gated in benchtab -check) and the cache hit rate stays high
// (sim-region-lookup-hit-pct). Both metrics come from the deterministic
// cycle model, so they are immune to CI host noise.
func BenchmarkRegionLookupScaling(b *testing.B) {
	const (
		zones    = 1024
		zoneSize = 1 << 13
		accesses = 4096
	)
	params := perf.Default()
	arena := uint64(zones * zoneSize)
	rig := tenantRig(b, Config{Registers: 4, ArenaEnd: arena}, arena+(4<<20), params)
	sh := rig.shield
	for i := 0; i < zones; i++ {
		rc := zoneConfig(fmt.Sprintf("tenant-%04d", i), uint64(i)*zoneSize, zoneSize)
		if err := sh.CreateRegion(rc); err != nil {
			b.Fatal(err)
		}
	}
	buf := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.ResetStats()
		for a := 0; a < accesses; a++ {
			addr := uint64(a%(zoneSize/512)) * 512
			if _, err := sh.WriteBurst(addr, buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	rep := sh.Report()
	lk := rep.Lookup
	total := rep.TotalCycles()
	overheadPct := float64(lk.Cycles) / float64(total-lk.Cycles) * 100
	hitPct := float64(lk.Hits) / float64(lk.Hits+lk.Misses) * 100
	b.ReportMetric(overheadPct, "sim-region-lookup-overhead-pct")
	b.ReportMetric(hitPct, "sim-region-lookup-hit-pct")
	b.Logf("%d zones: %d hits / %d misses (%.2f%% hit), lookup %d of %d cycles → %.3f%% overhead",
		zones, lk.Hits, lk.Misses, hitPct, lk.Cycles, total, overheadPct)
}
