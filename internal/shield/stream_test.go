package shield

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// fillRegion writes img through the chunked path and pushes it to DRAM so
// subsequent reads exercise the fetch/verify pipeline.
func fillRegion(t *testing.T, rig *testRig, base uint64, img []byte) {
	t.Helper()
	if _, err := rig.shield.WriteBurst(base, img); err != nil {
		t.Fatal(err)
	}
	if err := rig.shield.Flush(); err != nil {
		t.Fatal(err)
	}
	rig.shield.InvalidateClean()
}

func TestStreamReadMatchesChunked(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<16)
	rand.New(rand.NewSource(7)).Read(img)
	fillRegion(t, rig, 0, img)

	got := make([]byte, len(img))
	if _, err := rig.shield.ReadStream(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("streamed read differs from written data")
	}
	// Unaligned offsets and lengths take the head/tail fallback but must
	// return identical bytes.
	for _, span := range [][2]int{{0, 1}, {13, 4099}, {511, 513}, {512, 512}, {1000, 30000}, {65535, 1}} {
		off, n := span[0], span[1]
		sub := make([]byte, n)
		if _, err := rig.shield.ReadStream(uint64(off), sub); err != nil {
			t.Fatalf("stream [%d,+%d): %v", off, n, err)
		}
		if !bytes.Equal(sub, img[off:off+n]) {
			t.Fatalf("stream [%d,+%d) returned wrong bytes", off, n)
		}
	}
}

func TestStreamWriteMatchesChunked(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<16)
	rand.New(rand.NewSource(8)).Read(img)
	// Unaligned stream write: head and tail ride the chunked path.
	if _, err := rig.shield.WriteStream(100, img[100:60000]); err != nil {
		t.Fatal(err)
	}
	if err := rig.shield.Flush(); err != nil { // flush the partial head/tail lines
		t.Fatal(err)
	}
	rig.shield.InvalidateClean()
	got := make([]byte, 60000-100)
	if _, err := rig.shield.ReadBurst(100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img[100:60000]) {
		t.Fatal("chunked read does not see streamed write")
	}
}

func TestStreamReadServesDirtyLines(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<14)
	rand.New(rand.NewSource(9)).Read(img)
	fillRegion(t, rig, 0, img)
	// Dirty a partial chunk without flushing: the resident line is newer
	// than DRAM and the stream must serve it from on-chip memory.
	patch := []byte("fresh-bytes-in-buffer")
	if _, err := rig.shield.WriteBurst(600, patch); err != nil {
		t.Fatal(err)
	}
	copy(img[600:], patch)
	got := make([]byte, len(img))
	if _, err := rig.shield.ReadStream(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("stream read did not serve the dirty resident line")
	}
}

func TestStreamWriteSupersedesDirtyLines(t *testing.T) {
	rig := newRig(t, simpleConfig())
	// Dirty a line, then stream a full-chunk overwrite across it: the
	// streamed epoch must win, and a later flush must not resurrect the
	// stale line.
	if _, err := rig.shield.WriteBurst(512, []byte("stale")); err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 4*512)
	rand.New(rand.NewSource(10)).Read(img)
	if _, err := rig.shield.WriteStream(0, img); err != nil {
		t.Fatal(err)
	}
	if err := rig.shield.Flush(); err != nil {
		t.Fatal(err)
	}
	rig.shield.InvalidateClean()
	got := make([]byte, len(img))
	if _, err := rig.shield.ReadBurst(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("stale dirty line survived a streamed overwrite")
	}
}

func TestStreamVirginChunksReadZero(t *testing.T) {
	rig := newRig(t, simpleConfig())
	got := make([]byte, 8192)
	for i := range got {
		got[i] = 0xFF
	}
	if _, err := rig.shield.ReadStream(0, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("virgin byte %d = %#x, want 0", i, b)
		}
	}
}

func TestStreamIntegrityTamperLatches(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<14)
	rand.New(rand.NewSource(11)).Read(img)
	fillRegion(t, rig, 0, img)
	// Adversary flips a ciphertext byte in DRAM.
	raw, err := rig.dram.RawRead(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.dram.RawWrite(1024, []byte{raw[0] ^ 1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(img))
	_, err = rig.shield.ReadStream(0, buf)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("tampered stream read returned %v, want IntegrityError", err)
	}
	// The fault latch parks the set for all subsequent traffic.
	if _, err := rig.shield.ReadBurst(0, make([]byte, 16)); err == nil {
		t.Fatal("set served chunked traffic after integrity fault")
	}
	if _, err := rig.shield.ReadStream(0, make([]byte, 512)); err == nil {
		t.Fatal("set served streamed traffic after integrity fault")
	}
}

func TestStreamFreshnessCountersAdvance(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 4*512)
	rand.New(rand.NewSource(12)).Read(img)
	if _, err := rig.shield.WriteStream(0, img); err != nil {
		t.Fatal(err)
	}
	snap, err := rig.shield.CounterSnapshot("data")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if snap.Counters[i] != 1 {
			t.Fatalf("chunk %d counter = %d, want 1 after one streamed epoch", i, snap.Counters[i])
		}
	}
	// Re-streaming bumps the epoch again; the old ciphertext must no
	// longer verify (replay protection).
	if _, err := rig.shield.WriteStream(0, img); err != nil {
		t.Fatal(err)
	}
	snap, _ = rig.shield.CounterSnapshot("data")
	if snap.Counters[0] != 2 {
		t.Fatalf("counter = %d, want 2", snap.Counters[0])
	}
	got := make([]byte, len(img))
	if _, err := rig.shield.ReadStream(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img) {
		t.Fatal("round trip through two streamed epochs failed")
	}
}

func TestStreamStatsReported(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<14) // 32 chunks
	rand.New(rand.NewSource(13)).Read(img)
	fillRegion(t, rig, 0, img)
	rig.shield.ResetStats()
	if _, err := rig.shield.ReadStream(0, img); err != nil {
		t.Fatal(err)
	}
	rep := rig.shield.Report()
	var rs RegionStats
	for _, r := range rep.Regions {
		if r.Name == "data" {
			rs = r
		}
	}
	if rs.Streamed != 32 {
		t.Fatalf("streamed chunks = %d, want 32", rs.Streamed)
	}
	if rs.StreamWindows != (32+streamWindowChunks-1)/streamWindowChunks {
		t.Fatalf("stream windows = %d", rs.StreamWindows)
	}
	if rs.BusyCycles == 0 || rs.DRAMCycles == 0 {
		t.Fatal("stream accounted no cycles")
	}
}

func TestStreamCheaperThanChunked(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<16)
	rand.New(rand.NewSource(14)).Read(img)
	fillRegion(t, rig, 0, img)

	rig.shield.ResetStats()
	if _, err := rig.shield.ReadBurst(0, img); err != nil {
		t.Fatal(err)
	}
	chunked := rig.shield.Report().Regions[0].BusyCycles
	rig.shield.InvalidateClean()
	rig.shield.ResetStats()
	if _, err := rig.shield.ReadStream(0, img); err != nil {
		t.Fatal(err)
	}
	streamed := rig.shield.Report().Regions[0].BusyCycles
	if streamed >= chunked {
		t.Fatalf("streamed read (%d cyc) not cheaper than chunked (%d cyc)", streamed, chunked)
	}
}

func TestStreamConcurrentWithChunkedTraffic(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<16)
	rand.New(rand.NewSource(15)).Read(img)
	fillRegion(t, rig, 0, img)
	img2 := make([]byte, 1<<16)
	rand.New(rand.NewSource(16)).Read(img2)
	fillRegion(t, rig, 1<<16, img2)

	var wg sync.WaitGroup
	errs := make([]error, 4)
	wg.Add(4)
	go func() { // streamed reads of region "data"
		defer wg.Done()
		buf := make([]byte, 1<<15)
		for i := 0; i < 8; i++ {
			if _, err := rig.shield.ReadStream(0, buf); err != nil {
				errs[0] = err
				return
			}
			if !bytes.Equal(buf, img[:1<<15]) {
				errs[0] = errors.New("stream saw torn data")
				return
			}
		}
	}()
	go func() { // chunked reads of the same region interleave between windows
		defer wg.Done()
		buf := make([]byte, 2048)
		for i := 0; i < 32; i++ {
			off := (i * 1536) % (1<<15 - 2048)
			if _, err := rig.shield.ReadBurst(uint64(off), buf); err != nil {
				errs[1] = err
				return
			}
			if !bytes.Equal(buf, img[off:off+2048]) {
				errs[1] = errors.New("chunked read saw torn data")
				return
			}
		}
	}()
	go func() { // streamed writes to the second region
		defer wg.Done()
		for i := 0; i < 8; i++ {
			if _, err := rig.shield.WriteStream(1<<16, img2[:1<<14]); err != nil {
				errs[2] = err
				return
			}
		}
	}()
	go func() { // streamed reads of the second region's tail
		defer wg.Done()
		buf := make([]byte, 1<<14)
		for i := 0; i < 8; i++ {
			if _, err := rig.shield.ReadStream(1<<16+1<<15, buf); err != nil {
				errs[3] = err
				return
			}
			if !bytes.Equal(buf, img2[1<<15:1<<15+1<<14]) {
				errs[3] = errors.New("stream saw torn data in region 2")
				return
			}
		}
	}()
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		t.Fatal(err)
	}
}

// streamBenchConfig is the paper-scale streaming configuration the
// acceptance benchmark uses: a wide AES pool with PMAC so authentication
// parallelises, 512-byte chunks, one region.
func streamBenchConfig(size uint64) Config {
	return Config{
		Regions: []RegionConfig{{
			Name: "bulk", Base: 0, Size: size, ChunkSize: 512,
			AESEngines: 16, SBox: aesx.SBox16x, KeySize: aesx.AES128,
			MAC: PMAC, BufferBytes: 4 * 512,
		}},
		Registers: 4,
	}
}

// newStreamRig provisions a shield with size bytes of sealed data
// preloaded in DRAM (the Data Owner DMA path), ready to fetch and verify.
func newStreamRig(tb testing.TB, size uint64) (*Shield, []byte) {
	return newStreamRigParams(tb, streamBenchConfig(size), size, perf.Default())
}

// newStreamRigParams is newStreamRig with the region config and perf
// parameters (notably CryptoEngine) chosen by the caller. cfg's first
// region must be named "bulk" with Base 0 and Size size.
func newStreamRigParams(tb testing.TB, cfg Config, size uint64, params perf.Params) (*Shield, []byte) {
	tb.Helper()
	dram := mem.NewDRAM(2*size+1<<20, params)
	ocm := mem.NewOCM(1 << 30)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		tb.Fatal(err)
	}
	sh, err := New(cfg, priv, dram, ocm, params)
	if err != nil {
		tb.Fatal(err)
	}
	dek := bytes.Repeat([]byte{0xA5}, 32)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		tb.Fatal(err)
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		tb.Fatal(err)
	}
	img := make([]byte, size)
	rand.New(rand.NewSource(17)).Read(img)
	ct, tags, err := SealRegionData(cfg.Regions[0], 1, dek, img)
	if err != nil {
		tb.Fatal(err)
	}
	layout, err := sh.Layout("bulk")
	if err != nil {
		tb.Fatal(err)
	}
	if err := dram.RawWrite(layout.DataBase, ct); err != nil {
		tb.Fatal(err)
	}
	if err := dram.RawWrite(layout.TagBase, tags); err != nil {
		tb.Fatal(err)
	}
	if err := sh.MarkPreloaded("bulk"); err != nil {
		tb.Fatal(err)
	}
	return sh, img
}

// streamSpeedup measures the simulated busy-cycle ratio of the chunked
// path over the streamed path for one full-region read.
func streamSpeedup(tb testing.TB, sh *Shield, img []byte) (speedup float64, chunked, streamed uint64) {
	tb.Helper()
	buf := make([]byte, len(img))
	sh.InvalidateClean()
	sh.ResetStats()
	if _, err := sh.ReadBurst(0, buf); err != nil {
		tb.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		tb.Fatal("chunked read wrong")
	}
	chunked = sh.Report().Regions[0].BusyCycles
	sh.InvalidateClean()
	sh.ResetStats()
	if _, err := sh.ReadStream(0, buf); err != nil {
		tb.Fatal(err)
	}
	if !bytes.Equal(buf, img) {
		tb.Fatal("streamed read wrong")
	}
	streamed = sh.Report().Regions[0].BusyCycles
	return float64(chunked) / float64(streamed), chunked, streamed
}

// TestStreamSpeedupAtScale enforces the acceptance criterion: streamed
// 1 MiB+ bursts sustain at least twice the simulated throughput of the
// chunk-at-a-time path.
func TestStreamSpeedupAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("1 MiB crypto sweep in -short mode")
	}
	sh, img := newStreamRig(t, 1<<20)
	speedup, chunked, streamed := streamSpeedup(t, sh, img)
	t.Logf("1 MiB read: chunked %d cyc, streamed %d cyc, speedup %.2fx", chunked, streamed, speedup)
	if speedup < 2.0 {
		t.Fatalf("streamed speedup %.2fx below the 2x acceptance bar", speedup)
	}
}

// BenchmarkStreamVsChunked is the repo's headline data-path benchmark:
// one full-region streamed read per iteration, with the simulated
// speedup over the chunked path and the simulated streamed bandwidth as
// metrics. CI's benchmark gate tracks sim-speedup-x across PRs.
func BenchmarkStreamVsChunked(b *testing.B) {
	for _, mib := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dMiB", mib), func(b *testing.B) {
			size := uint64(mib) << 20
			sh, img := newStreamRig(b, size)
			speedup, chunked, streamed := streamSpeedup(b, sh, img)
			params := perf.Default()
			b.SetBytes(int64(size))
			b.ResetTimer()
			buf := make([]byte, size)
			for i := 0; i < b.N; i++ {
				sh.InvalidateClean()
				if _, err := sh.ReadStream(0, buf); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			_ = img
			b.ReportMetric(speedup, "sim-speedup-x")
			simMBps := float64(size) / (1 << 20) / params.Seconds(streamed)
			b.ReportMetric(simMBps, "sim-stream-MiB/s")
			b.Logf("chunked %d cyc vs streamed %d cyc → %.2fx, %.0f simulated MiB/s",
				chunked, streamed, speedup, simMBps)
		})
	}
}
