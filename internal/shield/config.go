// Package shield implements the ShEF Shield (paper §5): a configurable
// security wrapper that interposes on the AXI interfaces between an
// accelerator and the untrusted Shell, providing authenticated encryption
// for device memory and the host register path, optional replay protection
// via on-chip freshness counters, and on-chip buffering.
//
// The Shield is the paper's primary contribution. Its defining property is
// customisability: each memory region gets its own engine set whose chunk
// size, engine count, S-box parallelism, key size, MAC algorithm, buffer
// capacity, and freshness protection are chosen by the IP Vendor to fit
// the accelerator's access pattern and threat model (paper §5.2).
package shield

import (
	"errors"
	"fmt"
	"sort"

	"shef/internal/crypto/aesx"
	"shef/internal/mem"
)

// MACKind selects the authentication engine of an engine set.
type MACKind int

// Supported MAC engines (paper Table 1 lists both).
const (
	// HMAC is the default SHA-256 HMAC engine. It is serial: one chunk's
	// MAC cannot be split across engines, so MAC throughput does not scale
	// within a stream (paper §6.2.3).
	HMAC MACKind = iota
	// PMAC is the parallelisable AES-based MAC. Its block computations
	// run on the engine set's AES engine pool, so adding engines raises
	// both encryption and authentication bandwidth.
	PMAC
)

func (m MACKind) String() string {
	if m == PMAC {
		return "PMAC"
	}
	return "HMAC"
}

// TagSize is the per-chunk MAC tag stored in DRAM (paper §5.2.2).
const TagSize = 16

// CounterSize is the per-chunk freshness counter width in bytes.
const CounterSize = 4

// RegionConfig describes one memory region and the engine set that secures
// it. Regions are expressed in the accelerator's (plaintext) address space.
type RegionConfig struct {
	// Name labels the region in reports ("weights", "featuremaps", ...).
	Name string
	// Tenant is the protection zone's owner. Static Config.Regions leave
	// it empty and inherit the session tenant (Config.Tenant); zones
	// created at runtime through Shield.CreateRegion name their owner
	// here, and all lifecycle operations (flush, destroy, reclaim) are
	// keyed by the (tenant, name) pair.
	Tenant string
	// Base and Size delimit the region. Base must be ChunkSize-aligned and
	// Size a multiple of ChunkSize.
	Base uint64
	Size uint64
	// ChunkSize is Cmem: the authenticated-encryption granularity. Larger
	// chunks amortise tag traffic and MAC finalisation; smaller chunks
	// avoid transferring unneeded bytes on random access (paper §5.2.1).
	ChunkSize int
	// AESEngines is the engine-pool size of this set. The pool serves CTR
	// keystream generation, and PMAC block computations when MAC == PMAC.
	AESEngines int
	// SBox is the per-engine S-box duplication factor.
	SBox aesx.SBoxParallelism
	// KeySize selects AES-128 or AES-256.
	KeySize aesx.KeySize
	// MAC selects the authentication engine.
	MAC MACKind
	// BufferBytes is the on-chip plaintext buffer (cache) capacity. Zero
	// selects a single-chunk staging buffer.
	BufferBytes int
	// Freshness enables on-chip counters that defeat replay attacks. It
	// costs CounterSize bytes of on-chip RAM per chunk and one counter
	// fold per MAC (paper §5.2.2, "Advanced integrity verification").
	Freshness bool
	// ZeroFillWrites declares streaming-write behaviour: on a write miss
	// the buffer line is zeroed instead of fetched, avoiding a
	// read-modify-write when chunks are written exactly once.
	ZeroFillWrites bool
	// SeqPrefetch arms the adaptive sequential prefetcher: after
	// perf.Params.PrefetchMinMisses consecutive ascending chunk misses,
	// the engine set fetches ahead through pipelined stream windows, so
	// chunk-at-a-time sequential access patterns get the streaming path's
	// overlapped accounting without the accelerator calling ReadStream.
	// IP Vendors enable it for regions with sequential phases; leave it
	// off for genuinely random access, where fetched-ahead lines only
	// pollute the buffer.
	SeqPrefetch bool
	// Channel is the off-chip interface this region's traffic uses (the
	// F1 device has four DDR4 channels; SDP's storage and TLS interfaces
	// are distinct ports). Regions on different channels do not contend
	// for bandwidth in the performance model.
	Channel int
}

// Chunks returns the number of chunks in the region.
func (r RegionConfig) Chunks() int { return int(r.Size) / r.ChunkSize }

// bufferLines returns the cache capacity in lines (at least one).
func (r RegionConfig) bufferLines() int {
	n := r.BufferBytes / r.ChunkSize
	if n < 1 {
		n = 1
	}
	return n
}

// Config is a complete Shield configuration.
type Config struct {
	// Regions lists the memory partitions. The burst decoder routes each
	// accelerator address to the engine set of its region; accesses
	// outside every region are rejected (isolation).
	Regions []RegionConfig
	// Registers is the size of the secured register file (64-bit words).
	Registers int
	// EncryptRegAddrs hides which register the host touches by accepting
	// all traffic at a common address with the index sealed inside the
	// payload (paper §5.1).
	EncryptRegAddrs bool
	// Tenant names the session owner. It labels the static regions and
	// the Shield's error text so multi-tenant failures are attributable;
	// empty means the single-tenant default session.
	Tenant string
	// ArenaEnd extends the address space available to runtime-created
	// protection zones past the last static region: zones must fit below
	// the tag shadow, which starts at the page-aligned maximum of the
	// static regions' end and ArenaEnd. Zero leaves only the static
	// footprint (no headroom for dynamic zones beyond it).
	ArenaEnd uint64
	// DefaultTenantQuota bounds each tenant's DRAM and on-chip metadata
	// footprint (zero fields are unlimited); Shield.SetTenantQuota
	// overrides it per tenant.
	DefaultTenantQuota mem.Quota
}

// Validate checks structural soundness: aligned, non-overlapping regions,
// sane engine parameters.
func (c Config) Validate() error {
	if c.Registers < 0 {
		return errors.New("shield: negative register count")
	}
	regs := append([]RegionConfig(nil), c.Regions...)
	sort.Slice(regs, func(i, j int) bool { return regs[i].Base < regs[j].Base })
	for i, r := range regs {
		if err := r.validate(); err != nil {
			return err
		}
		if i > 0 && regs[i-1].Base+regs[i-1].Size > r.Base {
			return fmt.Errorf("shield: regions %q and %q overlap", regs[i-1].Name, r.Name)
		}
	}
	return nil
}

// validate checks one region's structural soundness (alignment and engine
// parameters); overlap is the container's concern (Config.Validate for
// the static set, RegionTable for runtime-created zones).
func (r RegionConfig) validate() error {
	if r.ChunkSize <= 0 || r.ChunkSize%aesx.BlockSize != 0 {
		return fmt.Errorf("shield: region %q: chunk size %d must be a positive multiple of %d",
			r.Name, r.ChunkSize, aesx.BlockSize)
	}
	if r.Size == 0 || r.Size%uint64(r.ChunkSize) != 0 {
		return fmt.Errorf("shield: region %q: size %d not a multiple of chunk size %d",
			r.Name, r.Size, r.ChunkSize)
	}
	if r.Base%uint64(r.ChunkSize) != 0 {
		return fmt.Errorf("shield: region %q: base %#x not chunk-aligned", r.Name, r.Base)
	}
	if r.AESEngines < 1 {
		return fmt.Errorf("shield: region %q: needs at least one AES engine", r.Name)
	}
	if !r.SBox.Valid() {
		return fmt.Errorf("shield: region %q: invalid S-box parallelism %d", r.Name, r.SBox)
	}
	if r.KeySize != aesx.AES128 && r.KeySize != aesx.AES256 {
		return fmt.Errorf("shield: region %q: invalid key size %d", r.Name, r.KeySize)
	}
	if r.MAC != HMAC && r.MAC != PMAC {
		return fmt.Errorf("shield: region %q: invalid MAC kind %d", r.Name, r.MAC)
	}
	return nil
}

// RegionFor returns the region containing addr, or nil.
func (c *Config) RegionFor(addr uint64) *RegionConfig {
	for i := range c.Regions {
		r := &c.Regions[i]
		if addr >= r.Base && addr < r.Base+r.Size {
			return r
		}
	}
	return nil
}
