package shield

import (
	"bytes"
	"math/rand"
	"testing"

	"shef/internal/axi"
)

// gatherRuns builds chunk-aligned runs over the data region plus the
// packed image the runs carry out of img.
func gatherRuns(img []byte, spans [][2]int) ([]axi.Burst, []byte) {
	var runs []axi.Burst
	var packed []byte
	for _, s := range spans {
		runs = append(runs, axi.Burst{Addr: uint64(s[0]), Len: s[1]})
		packed = append(packed, img[s[0]:s[0]+s[1]]...)
	}
	return runs, packed
}

func TestGatherReadMatchesChunked(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<16)
	rand.New(rand.NewSource(17)).Read(img)
	fillRegion(t, rig, 0, img)

	// Scattered runs, including adjacent ones that merge into one window
	// and a run longer than one window.
	runs, want := gatherRuns(img, [][2]int{{0, 512}, {512, 1024}, {4096, 512}, {16384, 16 * 1024}})
	got := make([]byte, len(want))
	if _, err := rig.shield.ReadGather(runs, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gather read differs from chunked contents")
	}
}

func TestGatherWriteVisibleToChunked(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 1<<16)
	rand.New(rand.NewSource(18)).Read(img)
	fillRegion(t, rig, 0, img)

	runs, packed := gatherRuns(img, [][2]int{{1024, 512}, {2048, 1536}, {60416, 512}})
	for i := range packed {
		packed[i] ^= 0x5a
	}
	if _, err := rig.shield.WriteGather(runs, packed); err != nil {
		t.Fatal(err)
	}
	rig.shield.InvalidateClean()
	off := 0
	for _, r := range runs {
		got := make([]byte, r.Len)
		if _, err := rig.shield.ReadBurst(r.Addr, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, packed[off:off+r.Len]) {
			t.Fatalf("chunked read does not see gather write at %#x", r.Addr)
		}
		off += r.Len
	}
	// Untouched chunks keep their old contents.
	got := make([]byte, 512)
	if _, err := rig.shield.ReadBurst(0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, img[:512]) {
		t.Fatal("gather write disturbed an untouched chunk")
	}
}

// TestGatherServesResidentDirtyLines: buffer lines stay authoritative for
// gathers exactly as they do for streams.
func TestGatherServesResidentDirtyLines(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 4096)
	rand.New(rand.NewSource(19)).Read(img)
	fillRegion(t, rig, 0, img)
	// Dirty one chunk through the chunked path, unflushed.
	dirty := bytes.Repeat([]byte{0xEE}, 512)
	if _, err := rig.shield.WriteBurst(512, dirty); err != nil {
		t.Fatal(err)
	}
	runs := []axi.Burst{{Addr: 0, Len: 2048}}
	got := make([]byte, 2048)
	if _, err := rig.shield.ReadGather(runs, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[512:1024], dirty) {
		t.Fatal("gather read bypassed the resident dirty line")
	}
	if !bytes.Equal(got[:512], img[:512]) || !bytes.Equal(got[1024:2048], img[1024:2048]) {
		t.Fatal("gather read corrupted clean chunks")
	}
}

func TestGatherValidation(t *testing.T) {
	rig := newRig(t, simpleConfig())
	buf := make([]byte, 4096)
	cases := []struct {
		name string
		runs []axi.Burst
		n    int
	}{
		{"empty", nil, 0},
		{"unaligned addr", []axi.Burst{{Addr: 100, Len: 512}}, 512},
		{"partial chunk", []axi.Burst{{Addr: 0, Len: 100}}, 100},
		{"descending runs", []axi.Burst{{Addr: 1024, Len: 512}, {Addr: 0, Len: 512}}, 1024},
		{"overlapping runs", []axi.Burst{{Addr: 0, Len: 1024}, {Addr: 512, Len: 512}}, 1536},
		{"outside region", []axi.Burst{{Addr: 1 << 20, Len: 512}}, 512},
		{"buffer mismatch", []axi.Burst{{Addr: 0, Len: 512}}, 1024},
	}
	for _, tc := range cases {
		if _, err := rig.shield.ReadGather(tc.runs, buf[:tc.n]); err == nil {
			t.Fatalf("%s: gather accepted", tc.name)
		}
	}
}

// TestGatherAmortizesFillDrain is the accounting contract that makes the
// ORAM batched path worthwhile: one gather over N scattered runs is
// cheaper than N separate streams, because fill/drain is paid once and
// window slots pack across runs.
func TestGatherAmortizesFillDrain(t *testing.T) {
	cfg := simpleConfig()
	cfg.Regions[0].AESEngines = 8
	rig := newRig(t, cfg)
	img := make([]byte, 1<<16)
	rand.New(rand.NewSource(20)).Read(img)
	fillRegion(t, rig, 0, img)

	spans := [][2]int{}
	for i := 0; i < 13; i++ {
		spans = append(spans, [2]int{i * 4096, 1024})
	}
	runs, want := gatherRuns(img, spans)
	got := make([]byte, len(want))
	gatherCycles, err := rig.shield.ReadGather(runs, got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("gather read returned wrong bytes")
	}
	rig.shield.InvalidateClean()
	var streamCycles uint64
	off := 0
	for _, r := range runs {
		c, err := rig.shield.ReadStream(r.Addr, got[off:off+r.Len])
		if err != nil {
			t.Fatal(err)
		}
		streamCycles += c
		off += r.Len
	}
	if gatherCycles >= streamCycles {
		t.Fatalf("gather %d cycles not cheaper than %d per-run stream cycles", gatherCycles, streamCycles)
	}
}

// TestGatherTamperLatches: corrupting ciphertext under a gather fails the
// window and latches the integrity error like every other data path.
func TestGatherTamperLatches(t *testing.T) {
	rig := newRig(t, simpleConfig())
	img := make([]byte, 8192)
	rand.New(rand.NewSource(21)).Read(img)
	fillRegion(t, rig, 0, img)
	raw, err := rig.dram.RawRead(512, 16)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 1
	if err := rig.dram.RawWrite(512, raw); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := rig.shield.ReadGather([]axi.Burst{{Addr: 0, Len: 4096}}, got); err == nil {
		t.Fatal("tampered gather window verified")
	}
	if _, err := rig.shield.ReadBurst(4096, make([]byte, 512)); err == nil {
		t.Fatal("integrity error did not latch the engine set")
	}
}
