package shield

import (
	"errors"
	"fmt"
	"sync"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/engine"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/kdf"
	"shef/internal/crypto/pmacx"
)

// sealer is the chunk cryptography of one region: key derivation, IVs, and
// the encrypt-then-MAC chunk format. Both the on-FPGA engine set and the
// Data Owner's host library use it, which is what lets the Data Owner
// pre-encrypt inputs into exactly the layout the Shield expects and
// decrypt results coming back (paper §3 step 11).
//
// The sealer splits its crypto in two: engine (aesx.Engine) is the *cycle
// model* of the FPGA engine pool — simulated cost only, identical on
// every host — while block and the per-scratch HMAC/PMAC states are the
// *functional* implementations that actually move bytes, selected between
// scalar reference and hardware-backed stdlib code by
// internal/crypto/engine. Ciphertext and tags are bit-identical whichever
// functional engine runs (FuzzEngineParity).
type sealer struct {
	cfg      RegionConfig
	regionID uint32
	engine   *aesx.Engine
	block    aesx.Block
	shaNew   func() hmacx.Hash
	macKey   []byte
	pmac     *pmacx.MAC

	// scratch pools the per-chunk working state for the convenience
	// entry points (sealChunkInto/openChunkInto); the engine set's hot
	// path holds dedicated per-worker scratches instead, because a GC
	// pass may drain a sync.Pool mid-stream and reintroduce allocations.
	scratch sync.Pool
}

// sealScratch is one in-flight chunk's working state: the MAC message
// buffer, the CTR counter-block/keystream state, a reusable HMAC state
// (persistent key pads and hash streams), and the PMAC block scratch.
type sealScratch struct {
	msg  []byte
	ctr  aesx.CTRStream
	hmac *hmacx.State
	pmac pmacx.Scratch
}

func newSealer(cfg RegionConfig, regionID uint32, dek []byte, kind engine.Kind) (*sealer, error) {
	encKey := kdf.Derive([]byte("shef/region-enc"), dek, []byte(cfg.Name), int(cfg.KeySize))
	macKey := kdf.Derive([]byte("shef/region-mac"), dek, []byte(cfg.Name), 32)
	eng, err := aesx.NewEngine(encKey, cfg.SBox)
	if err != nil {
		return nil, fmt.Errorf("shield: region %q: %w", cfg.Name, err)
	}
	blk, err := engine.NewAES(encKey, kind)
	if err != nil {
		return nil, fmt.Errorf("shield: region %q: %w", cfg.Name, err)
	}
	s := &sealer{
		cfg:      cfg,
		regionID: regionID,
		engine:   eng,
		block:    blk,
		shaNew:   engine.NewSHA(kind),
		macKey:   macKey,
	}
	s.scratch.New = func() any { return s.newScratch() }
	if cfg.MAC == PMAC {
		macBlock, err := engine.NewAES(macKey[:16], kind)
		if err != nil {
			return nil, err
		}
		s.pmac = pmacx.NewWithBlock(macBlock)
	}
	return s, nil
}

// newScratch builds one worker's chunk-crypto working state.
func (s *sealer) newScratch() *sealScratch {
	sc := &sealScratch{msg: make([]byte, 0, 12+s.cfg.ChunkSize)}
	if s.cfg.MAC == HMAC {
		sc.hmac = hmacx.NewState(s.macKey, s.shaNew)
	}
	return sc
}

// iv derives the CTR IV for a chunk at a write epoch. Counter zero is the
// initial (preload) epoch; regions without freshness stay at zero.
func (s *sealer) iv(chunk int, counter uint32) [aesx.IVSize]byte {
	version := uint32(0)
	if s.cfg.Freshness {
		version = counter
	}
	return aesx.ChunkIV(s.regionID, uint32(chunk), version)
}

// macInputInto assembles the authenticated message into dst[:0]: region ||
// chunk index || counter (if fresh) || ciphertext. Binding the address
// defeats splicing; binding the counter defeats replay (paper
// §5.2.1-5.2.2).
func (s *sealer) macInputInto(dst []byte, chunk int, counter uint32, ct []byte) []byte {
	var hdr [12]byte
	be32(hdr[0:], s.regionID)
	be32(hdr[4:], uint32(chunk))
	if s.cfg.Freshness {
		be32(hdr[8:], counter)
	}
	return append(append(dst, hdr[:]...), ct...)
}

func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// sealChunk encrypts plaintext and computes its tag for a write epoch.
func (s *sealer) sealChunk(chunk int, counter uint32, plain []byte) (ct []byte, tag [TagSize]byte) {
	ct = make([]byte, len(plain))
	s.sealChunkInto(ct, &tag, chunk, counter, plain)
	return ct, tag
}

// sealChunkInto encrypts plain into ct (same length) and writes the tag,
// using pooled scratch. Safe for concurrent use: the streamed write path
// fans consecutive chunks out across the engine pool.
func (s *sealer) sealChunkInto(ct []byte, tag *[TagSize]byte, chunk int, counter uint32, plain []byte) {
	sc := s.scratch.Get().(*sealScratch)
	s.sealChunkWith(sc, ct, tag[:], chunk, counter, plain)
	s.scratch.Put(sc)
}

// sealChunkWith is the allocation-free core of sealChunkInto: the caller
// owns sc exclusively for the duration of the call. tagOut receives the
// TagSize-byte tag (typically a slice of the window's staging buffer).
//
//shef:hotpath
func (s *sealer) sealChunkWith(sc *sealScratch, ct, tagOut []byte, chunk int, counter uint32, plain []byte) {
	sc.ctr.XORKeyStream(s.block, s.iv(chunk, counter), ct, plain)
	msg := s.macInputInto(sc.msg[:0], chunk, counter, ct)
	var tag [TagSize]byte
	if s.cfg.MAC == PMAC {
		tag = s.pmac.SumWith(&sc.pmac, msg)
	} else {
		sc.hmac.Tag(msg, &tag)
	}
	copy(tagOut, tag[:])
	sc.msg = msg[:0]
}

// openChunk verifies and decrypts a chunk at a write epoch.
func (s *sealer) openChunk(chunk int, counter uint32, ct []byte, tag [TagSize]byte) ([]byte, error) {
	plain := make([]byte, len(ct))
	if err := s.openChunkInto(plain, chunk, counter, ct, tag); err != nil {
		return nil, err
	}
	return plain, nil
}

// openChunkInto verifies ct and decrypts it into dst (same length), using
// pooled scratch. Safe for concurrent use by the stream pipeline's
// decrypt/verify fan-out.
func (s *sealer) openChunkInto(dst []byte, chunk int, counter uint32, ct []byte, tag [TagSize]byte) error {
	sc := s.scratch.Get().(*sealScratch)
	err := s.openChunkWith(sc, dst, chunk, counter, ct, tag[:])
	s.scratch.Put(sc)
	return err
}

// openChunkWith is the allocation-free core of openChunkInto: the caller
// owns sc exclusively for the duration of the call. tag is the
// TagSize-byte stored tag (typically a slice of the window's staging
// buffer).
//
//shef:hotpath
func (s *sealer) openChunkWith(sc *sealScratch, dst []byte, chunk int, counter uint32, ct, tag []byte) error {
	msg := s.macInputInto(sc.msg[:0], chunk, counter, ct)
	var t [TagSize]byte
	copy(t[:], tag)
	ok := false
	if s.cfg.MAC == PMAC {
		ok = s.pmac.VerifyWith(&sc.pmac, msg, t)
	} else {
		ok = sc.hmac.Verify(msg, t)
	}
	sc.msg = msg[:0]
	if !ok {
		//shef:ignore tamper path: the latch trips and the op fails, allocation cost is irrelevant
		return &IntegrityError{Region: s.cfg.Name, Chunk: chunk}
	}
	sc.ctr.XORKeyStream(s.block, s.iv(chunk, counter), dst, ct)
	return nil
}

// RegionLayout describes where a region's ciphertext and tags live in
// device DRAM, so the (untrusted) host program can DMA sealed data in and
// out without understanding it.
type RegionLayout struct {
	Name     string
	RegionID uint32
	DataBase uint64 // ciphertext, identity-mapped at the region base
	DataSize uint64
	TagBase  uint64
	TagSize  uint64
	Chunk    int
}

// Layout reports the DRAM layout of a configured region.
func (s *Shield) Layout(region string) (RegionLayout, error) {
	tagOff := s.tagBase
	for i, rc := range s.cfg.Regions {
		if rc.Name == region {
			return RegionLayout{
				Name:     rc.Name,
				RegionID: uint32(i + 1),
				DataBase: rc.Base,
				DataSize: rc.Size,
				TagBase:  tagOff,
				TagSize:  uint64(rc.Chunks() * TagSize),
				Chunk:    rc.ChunkSize,
			}, nil
		}
		tagOff += uint64(rc.Chunks() * TagSize)
	}
	return RegionLayout{}, fmt.Errorf("shield: unknown region %q", region)
}

// SealRegionData encrypts a full region image in the Shield's chunk format
// at epoch zero. The Data Owner runs this in a secure location before
// handing the ciphertext and tags to the untrusted host program for DMA.
func SealRegionData(cfg RegionConfig, regionID uint32, dek, data []byte) (ct, tags []byte, err error) {
	if uint64(len(data)) != cfg.Size {
		return nil, nil, fmt.Errorf("shield: region %q image is %d bytes, want %d", cfg.Name, len(data), cfg.Size)
	}
	s, err := newSealer(cfg, regionID, dek, engine.Auto)
	if err != nil {
		return nil, nil, err
	}
	ct = make([]byte, 0, len(data))
	tags = make([]byte, 0, cfg.Chunks()*TagSize)
	for c := 0; c < cfg.Chunks(); c++ {
		chunkCT, tag := s.sealChunk(c, 0, data[c*cfg.ChunkSize:(c+1)*cfg.ChunkSize])
		ct = append(ct, chunkCT...)
		tags = append(tags, tag[:]...)
	}
	return ct, tags, nil
}

// OpenRegionData verifies and decrypts a full region image DMAed out of
// device DRAM. counters supplies the per-chunk write epochs for
// freshness-protected regions (from Shield.CounterSnapshot, relayed over
// an authenticated channel); nil means epoch zero everywhere.
func OpenRegionData(cfg RegionConfig, regionID uint32, dek, ct, tags []byte, counters []uint32) ([]byte, error) {
	if uint64(len(ct)) != cfg.Size {
		return nil, fmt.Errorf("shield: ciphertext is %d bytes, want %d", len(ct), cfg.Size)
	}
	if len(tags) != cfg.Chunks()*TagSize {
		return nil, errors.New("shield: tag array has wrong size")
	}
	if counters != nil && len(counters) != cfg.Chunks() {
		return nil, errors.New("shield: counter array has wrong size")
	}
	s, err := newSealer(cfg, regionID, dek, engine.Auto)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(ct))
	for c := 0; c < cfg.Chunks(); c++ {
		var tag [TagSize]byte
		copy(tag[:], tags[c*TagSize:])
		ctr := uint32(0)
		if counters != nil {
			ctr = counters[c]
		}
		plain, err := s.openChunk(c, ctr, ct[c*cfg.ChunkSize:(c+1)*cfg.ChunkSize], tag)
		if err != nil {
			return nil, err
		}
		out = append(out, plain...)
	}
	return out, nil
}

// MarkPreloaded tells the Shield that the host has DMAed sealed data into
// a region (at epoch zero): the valid bits are set so reads fetch and
// verify the preloaded ciphertext instead of serving zeros.
func (s *Shield) MarkPreloaded(region string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.namedSet(s.cfg.Tenant, region)
	if err != nil {
		return err
	}
	set.markPreloaded()
	return nil
}

// MarkPreloadedRange is MarkPreloaded for a partial DMA: only the chunks
// overlapping bytes [off, off+n) of the region become valid, and any
// resident clean lines for those chunks are dropped (their plaintext
// predates the DMA). Serving paths that stage variable-sized payloads
// through a large scratch region use it so one request's DMA does not
// vouch for — or invalidate — the rest of the region.
func (s *Shield) MarkPreloadedRange(region string, off, n uint64) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.namedSet(s.cfg.Tenant, region)
	if err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	if off+n > set.cfg.Size {
		return fmt.Errorf("shield: preload range [%#x,+%d) outside region %q", off, n, region)
	}
	cs := uint64(set.cfg.ChunkSize)
	set.markPreloadedChunks(int(off/cs), int((off+n+cs-1)/cs))
	return nil
}

// RegionSealer is the Data Owner's persistent chunk-cryptography handle
// for one region: the same key schedule, MAC state, and scratch reused
// across calls, instead of SealRegionData/OpenRegionData's
// rebuild-per-call. A RegionSealer is NOT safe for concurrent use — it
// owns one scratch; callers wanting parallelism hold one per goroutine.
type RegionSealer struct {
	s  *sealer
	sc *sealScratch
}

// NewRegionSealer builds a persistent sealer for a region. cfg and
// regionID must match the Shield-side region (see Layout for the
// region's ID and chunk geometry).
func NewRegionSealer(cfg RegionConfig, regionID uint32, dek []byte) (*RegionSealer, error) {
	s, err := newSealer(cfg, regionID, dek, engine.Auto)
	if err != nil {
		return nil, err
	}
	return &RegionSealer{s: s, sc: s.newScratch()}, nil
}

// ChunkSize returns the region's chunk size in bytes.
func (rs *RegionSealer) ChunkSize() int { return rs.s.cfg.ChunkSize }

// SealChunk encrypts plain (exactly one chunk) into ct and writes the
// TagSize-byte tag, at the given write epoch, allocating nothing.
func (rs *RegionSealer) SealChunk(chunk int, counter uint32, ct, tag, plain []byte) {
	rs.s.sealChunkWith(rs.sc, ct, tag, chunk, counter, plain)
}

// OpenChunk verifies ct (exactly one chunk) against tag and decrypts it
// into dst, at the given write epoch, allocating nothing.
func (rs *RegionSealer) OpenChunk(chunk int, counter uint32, dst, ct, tag []byte) error {
	return rs.s.openChunkWith(rs.sc, dst, chunk, counter, ct, tag)
}

// SealRange seals plain — whose length must be a whole number of chunks
// — as chunks [chunk0, chunk0+k) at epoch counter, appending ciphertext
// and tags into ct and tags (chunk i's tag at i*TagSize).
func (rs *RegionSealer) SealRange(chunk0 int, counter uint32, ct, tags, plain []byte) error {
	cs := rs.s.cfg.ChunkSize
	if len(plain)%cs != 0 || len(plain) == 0 {
		return fmt.Errorf("shield: seal range of %d bytes is not whole %d-byte chunks", len(plain), cs)
	}
	k := len(plain) / cs
	if len(ct) < len(plain) || len(tags) < k*TagSize {
		return errors.New("shield: seal range output buffers too short")
	}
	for i := 0; i < k; i++ {
		rs.s.sealChunkWith(rs.sc, ct[i*cs:(i+1)*cs], tags[i*TagSize:(i+1)*TagSize],
			chunk0+i, counter, plain[i*cs:(i+1)*cs])
	}
	return nil
}

// OpenRange verifies and decrypts chunks [chunk0, chunk0+k) at epoch
// counter from ct/tags into dst (k = len(dst)/ChunkSize).
func (rs *RegionSealer) OpenRange(chunk0 int, counter uint32, dst, ct, tags []byte) error {
	cs := rs.s.cfg.ChunkSize
	if len(dst)%cs != 0 || len(dst) == 0 {
		return fmt.Errorf("shield: open range of %d bytes is not whole %d-byte chunks", len(dst), cs)
	}
	k := len(dst) / cs
	if len(ct) < len(dst) || len(tags) < k*TagSize {
		return errors.New("shield: open range input buffers too short")
	}
	for i := 0; i < k; i++ {
		if err := rs.s.openChunkWith(rs.sc, dst[i*cs:(i+1)*cs], chunk0+i, counter,
			ct[i*cs:(i+1)*cs], tags[i*TagSize:(i+1)*TagSize]); err != nil {
			return err
		}
	}
	return nil
}

// CounterSnapshot exports a region's freshness counters, authenticated
// under the session's register MAC key so the untrusted host cannot forge
// them in transit to the Data Owner.
type CounterSnapshot struct {
	Region   string
	Counters []uint32
	Tag      [16]byte
}

// CounterSnapshot captures the current counters of a region.
func (s *Shield) CounterSnapshot(region string) (CounterSnapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set, err := s.namedSet(s.cfg.Tenant, region)
	if err != nil {
		return CounterSnapshot{}, err
	}
	snap := CounterSnapshot{Region: region, Counters: set.counterSnapshot()}
	snap.Tag = s.regs.macSnapshot(region, snap.Counters)
	return snap, nil
}

// VerifyCounterSnapshot checks a snapshot on the Data Owner side, given
// the register file keys derived from the same DEK.
func (rf *RegisterFile) VerifyCounterSnapshot(snap CounterSnapshot) bool {
	return rf.macSnapshot(snap.Region, snap.Counters) == snap.Tag
}

func (rf *RegisterFile) macSnapshot(region string, counters []uint32) [16]byte {
	msg := make([]byte, 0, len(region)+4*len(counters))
	msg = append(msg, region...)
	for _, c := range counters {
		var b [4]byte
		be32(b[:], c)
		msg = append(msg, b[:]...)
	}
	return hmacx.Tag(rf.macKey, append([]byte("counter-snapshot:"), msg...))
}
