package shield

import (
	"errors"
	"fmt"
	"sync"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/kdf"
	"shef/internal/crypto/pmacx"
)

// sealer is the chunk cryptography of one region: key derivation, IVs, and
// the encrypt-then-MAC chunk format. Both the on-FPGA engine set and the
// Data Owner's host library use it, which is what lets the Data Owner
// pre-encrypt inputs into exactly the layout the Shield expects and
// decrypt results coming back (paper §3 step 11).
type sealer struct {
	cfg      RegionConfig
	regionID uint32
	engine   *aesx.Engine
	macKey   []byte
	pmac     *pmacx.MAC

	// scratch pools the per-chunk working state (MAC message buffer and
	// CTR counter-block/keystream state) so the streamed data path is
	// allocation-free and safe for the engine pool's goroutine fan-out:
	// each in-flight chunk checks out its own scratch.
	scratch sync.Pool
}

// sealScratch is one in-flight chunk's working state.
type sealScratch struct {
	msg []byte
	ctr aesx.CTRStream
}

func newSealer(cfg RegionConfig, regionID uint32, dek []byte) (*sealer, error) {
	encKey := kdf.Derive([]byte("shef/region-enc"), dek, []byte(cfg.Name), int(cfg.KeySize))
	macKey := kdf.Derive([]byte("shef/region-mac"), dek, []byte(cfg.Name), 32)
	eng, err := aesx.NewEngine(encKey, cfg.SBox)
	if err != nil {
		return nil, fmt.Errorf("shield: region %q: %w", cfg.Name, err)
	}
	s := &sealer{cfg: cfg, regionID: regionID, engine: eng, macKey: macKey}
	s.scratch.New = func() any {
		return &sealScratch{msg: make([]byte, 0, 12+cfg.ChunkSize)}
	}
	if cfg.MAC == PMAC {
		pm, err := pmacx.New(macKey[:16])
		if err != nil {
			return nil, err
		}
		s.pmac = pm
	}
	return s, nil
}

// iv derives the CTR IV for a chunk at a write epoch. Counter zero is the
// initial (preload) epoch; regions without freshness stay at zero.
func (s *sealer) iv(chunk int, counter uint32) [aesx.IVSize]byte {
	version := uint32(0)
	if s.cfg.Freshness {
		version = counter
	}
	return aesx.ChunkIV(s.regionID, uint32(chunk), version)
}

// macInputInto assembles the authenticated message into dst[:0]: region ||
// chunk index || counter (if fresh) || ciphertext. Binding the address
// defeats splicing; binding the counter defeats replay (paper
// §5.2.1-5.2.2).
func (s *sealer) macInputInto(dst []byte, chunk int, counter uint32, ct []byte) []byte {
	var hdr [12]byte
	be32(hdr[0:], s.regionID)
	be32(hdr[4:], uint32(chunk))
	if s.cfg.Freshness {
		be32(hdr[8:], counter)
	}
	return append(append(dst, hdr[:]...), ct...)
}

func be32(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// sealChunk encrypts plaintext and computes its tag for a write epoch.
func (s *sealer) sealChunk(chunk int, counter uint32, plain []byte) (ct []byte, tag [TagSize]byte) {
	ct = make([]byte, len(plain))
	s.sealChunkInto(ct, &tag, chunk, counter, plain)
	return ct, tag
}

// sealChunkInto encrypts plain into ct (same length) and writes the tag,
// using pooled scratch. Safe for concurrent use: the streamed write path
// fans consecutive chunks out across the engine pool.
func (s *sealer) sealChunkInto(ct []byte, tag *[TagSize]byte, chunk int, counter uint32, plain []byte) {
	sc := s.scratch.Get().(*sealScratch)
	sc.ctr.XORKeyStream(s.engine.Cipher(), s.iv(chunk, counter), ct, plain)
	msg := s.macInputInto(sc.msg[:0], chunk, counter, ct)
	if s.cfg.MAC == PMAC {
		*tag = s.pmac.Sum(msg)
	} else {
		*tag = hmacx.Tag(s.macKey, msg)
	}
	sc.msg = msg[:0]
	s.scratch.Put(sc)
}

// openChunk verifies and decrypts a chunk at a write epoch.
func (s *sealer) openChunk(chunk int, counter uint32, ct []byte, tag [TagSize]byte) ([]byte, error) {
	plain := make([]byte, len(ct))
	if err := s.openChunkInto(plain, chunk, counter, ct, tag); err != nil {
		return nil, err
	}
	return plain, nil
}

// openChunkInto verifies ct and decrypts it into dst (same length), using
// pooled scratch. Safe for concurrent use by the stream pipeline's
// decrypt/verify fan-out.
func (s *sealer) openChunkInto(dst []byte, chunk int, counter uint32, ct []byte, tag [TagSize]byte) error {
	sc := s.scratch.Get().(*sealScratch)
	msg := s.macInputInto(sc.msg[:0], chunk, counter, ct)
	ok := false
	if s.cfg.MAC == PMAC {
		ok = s.pmac.Verify(msg, tag)
	} else {
		ok = hmacx.Verify(s.macKey, msg, tag)
	}
	sc.msg = msg[:0]
	if !ok {
		s.scratch.Put(sc)
		return &IntegrityError{Region: s.cfg.Name, Chunk: chunk}
	}
	sc.ctr.XORKeyStream(s.engine.Cipher(), s.iv(chunk, counter), dst, ct)
	s.scratch.Put(sc)
	return nil
}

// RegionLayout describes where a region's ciphertext and tags live in
// device DRAM, so the (untrusted) host program can DMA sealed data in and
// out without understanding it.
type RegionLayout struct {
	Name     string
	RegionID uint32
	DataBase uint64 // ciphertext, identity-mapped at the region base
	DataSize uint64
	TagBase  uint64
	TagSize  uint64
	Chunk    int
}

// Layout reports the DRAM layout of a configured region.
func (s *Shield) Layout(region string) (RegionLayout, error) {
	tagOff := s.tagBase
	for i, rc := range s.cfg.Regions {
		if rc.Name == region {
			return RegionLayout{
				Name:     rc.Name,
				RegionID: uint32(i + 1),
				DataBase: rc.Base,
				DataSize: rc.Size,
				TagBase:  tagOff,
				TagSize:  uint64(rc.Chunks() * TagSize),
				Chunk:    rc.ChunkSize,
			}, nil
		}
		tagOff += uint64(rc.Chunks() * TagSize)
	}
	return RegionLayout{}, fmt.Errorf("shield: unknown region %q", region)
}

// SealRegionData encrypts a full region image in the Shield's chunk format
// at epoch zero. The Data Owner runs this in a secure location before
// handing the ciphertext and tags to the untrusted host program for DMA.
func SealRegionData(cfg RegionConfig, regionID uint32, dek, data []byte) (ct, tags []byte, err error) {
	if uint64(len(data)) != cfg.Size {
		return nil, nil, fmt.Errorf("shield: region %q image is %d bytes, want %d", cfg.Name, len(data), cfg.Size)
	}
	s, err := newSealer(cfg, regionID, dek)
	if err != nil {
		return nil, nil, err
	}
	ct = make([]byte, 0, len(data))
	tags = make([]byte, 0, cfg.Chunks()*TagSize)
	for c := 0; c < cfg.Chunks(); c++ {
		chunkCT, tag := s.sealChunk(c, 0, data[c*cfg.ChunkSize:(c+1)*cfg.ChunkSize])
		ct = append(ct, chunkCT...)
		tags = append(tags, tag[:]...)
	}
	return ct, tags, nil
}

// OpenRegionData verifies and decrypts a full region image DMAed out of
// device DRAM. counters supplies the per-chunk write epochs for
// freshness-protected regions (from Shield.CounterSnapshot, relayed over
// an authenticated channel); nil means epoch zero everywhere.
func OpenRegionData(cfg RegionConfig, regionID uint32, dek, ct, tags []byte, counters []uint32) ([]byte, error) {
	if uint64(len(ct)) != cfg.Size {
		return nil, fmt.Errorf("shield: ciphertext is %d bytes, want %d", len(ct), cfg.Size)
	}
	if len(tags) != cfg.Chunks()*TagSize {
		return nil, errors.New("shield: tag array has wrong size")
	}
	if counters != nil && len(counters) != cfg.Chunks() {
		return nil, errors.New("shield: counter array has wrong size")
	}
	s, err := newSealer(cfg, regionID, dek)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(ct))
	for c := 0; c < cfg.Chunks(); c++ {
		var tag [TagSize]byte
		copy(tag[:], tags[c*TagSize:])
		ctr := uint32(0)
		if counters != nil {
			ctr = counters[c]
		}
		plain, err := s.openChunk(c, ctr, ct[c*cfg.ChunkSize:(c+1)*cfg.ChunkSize], tag)
		if err != nil {
			return nil, err
		}
		out = append(out, plain...)
	}
	return out, nil
}

// MarkPreloaded tells the Shield that the host has DMAed sealed data into
// a region (at epoch zero): the valid bits are set so reads fetch and
// verify the preloaded ciphertext instead of serving zeros.
func (s *Shield) MarkPreloaded(region string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.provisioned {
		return errors.New("shield: not provisioned")
	}
	for _, set := range s.sets {
		if set.cfg.Name == region {
			set.markPreloaded()
			return nil
		}
	}
	return fmt.Errorf("shield: unknown region %q", region)
}

// CounterSnapshot exports a region's freshness counters, authenticated
// under the session's register MAC key so the untrusted host cannot forge
// them in transit to the Data Owner.
type CounterSnapshot struct {
	Region   string
	Counters []uint32
	Tag      [16]byte
}

// CounterSnapshot captures the current counters of a region.
func (s *Shield) CounterSnapshot(region string) (CounterSnapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if !s.provisioned {
		return CounterSnapshot{}, errors.New("shield: not provisioned")
	}
	for _, set := range s.sets {
		if set.cfg.Name == region {
			snap := CounterSnapshot{Region: region, Counters: set.counterSnapshot()}
			snap.Tag = s.regs.macSnapshot(region, snap.Counters)
			return snap, nil
		}
	}
	return CounterSnapshot{}, fmt.Errorf("shield: unknown region %q", region)
}

// VerifyCounterSnapshot checks a snapshot on the Data Owner side, given
// the register file keys derived from the same DEK.
func (rf *RegisterFile) VerifyCounterSnapshot(snap CounterSnapshot) bool {
	return rf.macSnapshot(snap.Region, snap.Counters) == snap.Tag
}

func (rf *RegisterFile) macSnapshot(region string, counters []uint32) [16]byte {
	msg := make([]byte, 0, len(region)+4*len(counters))
	msg = append(msg, region...)
	for _, c := range counters {
		var b [4]byte
		be32(b[:], c)
		msg = append(msg, b[:]...)
	}
	return hmacx.Tag(rf.macKey, append([]byte("counter-snapshot:"), msg...))
}
