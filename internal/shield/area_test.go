package shield

import (
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/fpga"
)

// TestTable1Percentages checks that the component areas reproduce the
// utilisation percentages of the paper's Table 1 on the F1 device model.
func TestTable1Percentages(t *testing.T) {
	cases := []struct {
		name           string
		res            fpga.Resources
		bram, lut, reg float64 // paper-reported percentages
	}{
		{"Controller", ControllerArea, 0, 0.26, 0.03},
		{"Engine Set", EngineSetArea, 0.12, 0.12, 0.14},
		{"Reg. Interface", RegInterfaceArea, 0, 0.36, 0.11},
		{"AES-4x", AES4xArea, 0, 0.27, 0.13},
		{"AES-16x", AES16xArea, 0, 0.32, 0.13},
		{"HMAC", HMACArea, 0, 0.44, 0.15},
		{"PMAC", PMACArea, 0, 0.28, 0.14},
	}
	const tol = 0.02 // rounding to two decimals in the paper
	for _, c := range cases {
		u := UtilizationOn(c.res, fpga.VU9P)
		if diff(u.BRAM, c.bram) > tol || diff(u.LUT, c.lut) > tol || diff(u.REG, c.reg) > tol {
			t.Errorf("%s: got %v, want %.2f/%.2f/%.2f", c.name, u, c.bram, c.lut, c.reg)
		}
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestAreaComposition(t *testing.T) {
	cfg := Config{
		Regions: []RegionConfig{{
			Name: "r", Base: 0, Size: 1 << 16, ChunkSize: 512,
			AESEngines: 2, SBox: aesx.SBox16x, KeySize: aesx.AES128,
			MAC: HMAC, BufferBytes: 16 << 10,
		}},
	}
	a := Area(cfg)
	// Manual composition: controller + reg iface (+AES+HMAC) + set base +
	// 2 AES-16x + HMAC + buffer BRAM.
	want := ControllerArea.
		Add(RegInterfaceArea).Add(AES4xArea).Add(HMACArea).
		Add(EngineSetArea).Add(AES16xArea.Scale(2)).Add(HMACArea).
		Add(fpga.Resources{BRAM: 4}) // 16 KB buffer = 4 BRAM36
	if a != want {
		t.Fatalf("Area = %+v, want %+v", a, want)
	}
}

func TestAreaGrowsWithEngines(t *testing.T) {
	base := Config{Regions: []RegionConfig{{
		Name: "r", Base: 0, Size: 1 << 16, ChunkSize: 512,
		AESEngines: 1, SBox: aesx.SBox4x, KeySize: aesx.AES128, MAC: HMAC,
	}}}
	more := base
	more.Regions = append([]RegionConfig(nil), base.Regions...)
	more.Regions[0].AESEngines = 8
	if Area(more).LUT <= Area(base).LUT {
		t.Fatal("more engines did not cost more LUTs")
	}

	hi := base
	hi.Regions = append([]RegionConfig(nil), base.Regions...)
	hi.Regions[0].SBox = aesx.SBox16x
	if Area(hi).LUT <= Area(base).LUT {
		t.Fatal("higher S-box parallelism did not cost more LUTs")
	}
}

func TestFreshnessCostsBRAM(t *testing.T) {
	mk := func(fresh bool) Config {
		return Config{Regions: []RegionConfig{{
			Name: "r", Base: 0, Size: 1 << 20, ChunkSize: 64,
			AESEngines: 1, SBox: aesx.SBox4x, KeySize: aesx.AES128,
			MAC: HMAC, BufferBytes: 64 << 10, Freshness: fresh,
		}}}
	}
	with := Area(mk(true))
	without := Area(mk(false))
	if with.BRAM <= without.BRAM {
		t.Fatal("freshness counters did not consume on-chip memory")
	}
	// 1 MB / 64 B chunks = 16384 counters * 4 B = 64 KB = 16 BRAM36.
	if with.BRAM-without.BRAM != 16 {
		t.Fatalf("counter BRAM = %d tiles, want 16", with.BRAM-without.BRAM)
	}
}

func TestAESEngineAreaInterpolation(t *testing.T) {
	a1 := aesEngineArea(1)
	a4 := aesEngineArea(4)
	a8 := aesEngineArea(8)
	a16 := aesEngineArea(16)
	if !(a1.LUT < a4.LUT && a4.LUT < a8.LUT && a8.LUT < a16.LUT) {
		t.Fatalf("engine area not monotone in S-box copies: %d %d %d %d",
			a1.LUT, a4.LUT, a8.LUT, a16.LUT)
	}
	if a4 != AES4xArea || a16 != AES16xArea {
		t.Fatal("anchor points drifted from Table 1")
	}
}
