package shield

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// TestParallelDistinctRegions drives the two regions of simpleConfig from
// separate goroutine pools at once — the paper's per-engine-set
// parallelism as real Go parallelism. Run under -race this is the primary
// data-path concurrency check for the Shield.
func TestParallelDistinctRegions(t *testing.T) {
	rig := newRig(t, simpleConfig())
	regions := rig.shield.Config().Regions
	const workers = 4
	const iters = 16
	var wg sync.WaitGroup
	errCh := make(chan error, 2*workers)
	for _, rc := range regions {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(rc RegionConfig, w int) {
				defer wg.Done()
				// Each worker owns a disjoint chunk-aligned window.
				base := rc.Base + uint64(w*4*rc.ChunkSize)
				want := bytes.Repeat([]byte{byte(w + 1)}, 3*rc.ChunkSize)
				for i := 0; i < iters; i++ {
					if _, err := rig.shield.WriteBurst(base, want); err != nil {
						errCh <- fmt.Errorf("region %q worker %d: %v", rc.Name, w, err)
						return
					}
					got := make([]byte, len(want))
					if _, err := rig.shield.ReadBurst(base, got); err != nil {
						errCh <- fmt.Errorf("region %q worker %d: %v", rc.Name, w, err)
						return
					}
					if !bytes.Equal(got, want) {
						errCh <- fmt.Errorf("region %q worker %d: data corrupted", rc.Name, w)
						return
					}
				}
			}(rc, w)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Everything written is still intact after a (parallel) flush and a
	// cold re-read through the integrity path.
	if err := rig.shield.Flush(); err != nil {
		t.Fatal(err)
	}
	rig.shield.InvalidateClean()
	for _, rc := range regions {
		for w := 0; w < workers; w++ {
			base := rc.Base + uint64(w*4*rc.ChunkSize)
			want := bytes.Repeat([]byte{byte(w + 1)}, 3*rc.ChunkSize)
			got := make([]byte, len(want))
			if _, err := rig.shield.ReadBurst(base, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("region %q worker %d window corrupted after flush", rc.Name, w)
			}
		}
	}
}

// TestBurstCyclesMeaningful: ReadBurst/WriteBurst report the engine-set
// busy time of the access instead of zero, and a cold miss costs more
// than a buffered hit.
func TestBurstCyclesMeaningful(t *testing.T) {
	rig := newRig(t, simpleConfig())
	data := make([]byte, 512)
	wc, err := rig.shield.WriteBurst(0, data)
	if err != nil {
		t.Fatal(err)
	}
	if wc == 0 {
		t.Fatal("WriteBurst reported zero cycles")
	}
	if err := rig.shield.Flush(); err != nil {
		t.Fatal(err)
	}
	rig.shield.InvalidateClean()
	missCycles, err := rig.shield.ReadBurst(0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	hitCycles, err := rig.shield.ReadBurst(0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if missCycles == 0 || hitCycles == 0 {
		t.Fatalf("zero cycle report: miss=%d hit=%d", missCycles, hitCycles)
	}
	if missCycles <= hitCycles {
		t.Fatalf("cold miss (%d cycles) not costlier than buffered hit (%d cycles)", missCycles, hitCycles)
	}
}

// TestConcurrentReportAndTraffic reads stats while the data path is busy:
// Report/ResetStats must be safe against in-flight bursts.
func TestConcurrentReportAndTraffic(t *testing.T) {
	rig := newRig(t, simpleConfig())
	done := make(chan struct{})
	var wg wgWrap
	wg.Go(func() {
		buf := make([]byte, 2048)
		for i := 0; i < 64; i++ {
			if _, err := rig.shield.WriteBurst(0, buf); err != nil {
				return
			}
			if _, err := rig.shield.ReadBurst(0, buf); err != nil {
				return
			}
		}
		close(done)
	})
	wg.Go(func() {
		for {
			select {
			case <-done:
				return
			default:
			}
			rep := rig.shield.Report()
			_ = rep.TotalCycles()
		}
	})
	wg.Wait()
	rep := rig.shield.Report()
	if rep.Regions[0].Hits == 0 {
		t.Fatal("no traffic accounted")
	}
}

// TestReprovisionReturnsOCM: key rotation replaces the engine sets; the
// cleared session's buffers/counters must give their on-chip budget back,
// or an OCM sized for one session exhausts after a few rotations.
func TestReprovisionReturnsOCM(t *testing.T) {
	dram := mem.NewDRAM(1<<22, perf.Default())
	// Enough for one simpleConfig session (~29k bits) but not two.
	ocm := mem.NewOCM(40_000)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(simpleConfig(), priv, dram, ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	var used uint64
	for i := 0; i < 5; i++ {
		dek := bytes.Repeat([]byte{byte(0x10 + i)}, 32)
		lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := sh.ProvisionLoadKey(lk); err != nil {
			t.Fatalf("rotation %d: %v (OCM leak across reprovisioning?)", i, err)
		}
		if i == 0 {
			used = ocm.UsedBits()
		} else if got := ocm.UsedBits(); got != used {
			t.Fatalf("rotation %d: OCM usage drifted from %d to %d bits", i, used, got)
		}
		// The fresh session must serve traffic.
		if _, err := sh.WriteBurst(0, make([]byte, 512)); err != nil {
			t.Fatalf("rotation %d: %v", i, err)
		}
	}

	// Concurrent rotations serialise on the provisioning lock; whoever
	// wins, exactly one session's budget stays allocated.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dek := bytes.Repeat([]byte{byte(0x80 + i)}, 32)
			lk, _ := keywrap.Wrap(sh.PublicKey(), dek, nil)
			if err := sh.ProvisionLoadKey(lk); err != nil {
				t.Errorf("concurrent rotation %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if got := ocm.UsedBits(); got != used {
		t.Fatalf("after concurrent rotations: OCM usage %d bits, want %d", got, used)
	}
	if _, err := sh.WriteBurst(0, make([]byte, 512)); err != nil {
		t.Fatal(err)
	}
}

// wgWrap is a tiny WaitGroup helper (Go 1.24 has no wg.Go yet).
type wgWrap struct{ wg sync.WaitGroup }

func (w *wgWrap) Go(f func()) {
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		f()
	}()
}
func (w *wgWrap) Wait() { w.wg.Wait() }
