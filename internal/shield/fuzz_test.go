package shield

import (
	"bytes"
	"errors"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/engine"
)

// fuzzSealers builds HMAC and PMAC sealers over a fixed region shape for
// every engine kind — scalar reference and hardware-backed — so the seal/
// open corpus exercises both functional crypto paths in one run; the
// fuzzer varies chunk index, write counter, and payload.
func fuzzSealers(t testing.TB) []*sealer {
	cfg := RegionConfig{
		Name: "fuzz", Base: 0, Size: 1 << 16, ChunkSize: 512,
		AESEngines: 2, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		Freshness: true,
	}
	dek := bytes.Repeat([]byte{0x42}, 32)
	var out []*sealer
	for _, mac := range []MACKind{HMAC, PMAC} {
		for _, kind := range []engine.Kind{engine.Scalar, engine.Hardware} {
			c := cfg
			c.MAC = mac
			s, err := newSealer(c, 3, dek, kind)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, s)
		}
	}
	return out
}

// FuzzSealOpenRoundtrip drives the chunk AEAD through arbitrary chunk
// indices, write epochs, and payloads: every seal must open back to the
// plaintext, and any single-byte corruption of ciphertext or tag must be
// rejected as an IntegrityError — for both MAC engines.
func FuzzSealOpenRoundtrip(f *testing.F) {
	f.Add(0, uint32(0), []byte("hello shield"), uint16(0))
	f.Add(127, uint32(1), make([]byte, 512), uint16(3))
	f.Add(1, uint32(0xFFFF_FFFF), []byte{0}, uint16(999))
	f.Add(63, uint32(7), bytes.Repeat([]byte{0xA5}, 129), uint16(42))
	sealers := fuzzSealers(f)
	f.Fuzz(func(t *testing.T, chunk int, counter uint32, data []byte, flip uint16) {
		if chunk < 0 {
			chunk = -(chunk + 1)
		}
		chunk %= 1 << 20
		if len(data) > 4096 {
			data = data[:4096]
		}
		for _, s := range sealers {
			ct, tag := s.sealChunk(chunk, counter, data)
			if len(ct) != len(data) {
				t.Fatalf("%v: ciphertext length %d, want %d", s.cfg.MAC, len(ct), len(data))
			}
			plain, err := s.openChunk(chunk, counter, ct, tag)
			if err != nil {
				t.Fatalf("%v: roundtrip rejected: %v", s.cfg.MAC, err)
			}
			if !bytes.Equal(plain, data) {
				t.Fatalf("%v: roundtrip mutated data", s.cfg.MAC)
			}
			// Corrupt one ciphertext byte (when there is one): must fail.
			if len(ct) > 0 {
				bad := append([]byte(nil), ct...)
				bad[int(flip)%len(bad)] ^= 1
				if _, err := s.openChunk(chunk, counter, bad, tag); !isIntegrity(err) {
					t.Fatalf("%v: corrupted ciphertext accepted (err=%v)", s.cfg.MAC, err)
				}
			}
			// Corrupt the tag: must fail.
			badTag := tag
			badTag[int(flip)%TagSize] ^= 1
			if _, err := s.openChunk(chunk, counter, ct, badTag); !isIntegrity(err) {
				t.Fatalf("%v: corrupted tag accepted (err=%v)", s.cfg.MAC, err)
			}
			// Splicing to a different chunk index or replaying an older
			// epoch must fail.
			if _, err := s.openChunk(chunk+1, counter, ct, tag); !isIntegrity(err) {
				t.Fatalf("%v: spliced chunk accepted (err=%v)", s.cfg.MAC, err)
			}
			if _, err := s.openChunk(chunk, counter+1, ct, tag); !isIntegrity(err) {
				t.Fatalf("%v: replayed epoch accepted (err=%v)", s.cfg.MAC, err)
			}
		}
	})
}

func isIntegrity(err error) bool {
	var ie *IntegrityError
	return errors.As(err, &ie)
}

// FuzzEngineParity is the differential anchor of the engine-selection
// layer: over arbitrary chunk indices, write epochs, and payloads, the
// scalar reference engines and the hardware-backed stdlib engines must
// produce byte-identical ciphertext and tags (for AES-CTR with both HMAC-
// SHA256 and PMAC), each must open what the other sealed, and both must
// reject the corruption, splice, and replay cases the seal/open corpus
// checks.
func FuzzEngineParity(f *testing.F) {
	f.Add(0, uint32(0), []byte("engine parity"), uint16(0))
	f.Add(511, uint32(9), make([]byte, 512), uint16(77))
	f.Add(2, uint32(0xFFFF_FFFF), bytes.Repeat([]byte{0x5A}, 100), uint16(5))
	cfg := RegionConfig{
		Name: "parity", Base: 0, Size: 1 << 16, ChunkSize: 512,
		AESEngines: 2, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		Freshness: true,
	}
	dek := bytes.Repeat([]byte{0x7E}, 32)
	type pair struct{ scalar, hardware *sealer }
	var pairs []pair
	for _, mac := range []MACKind{HMAC, PMAC} {
		c := cfg
		c.MAC = mac
		sc, err := newSealer(c, 5, dek, engine.Scalar)
		if err != nil {
			f.Fatal(err)
		}
		hw, err := newSealer(c, 5, dek, engine.Hardware)
		if err != nil {
			f.Fatal(err)
		}
		pairs = append(pairs, pair{sc, hw})
	}
	f.Fuzz(func(t *testing.T, chunk int, counter uint32, data []byte, flip uint16) {
		if chunk < 0 {
			chunk = -(chunk + 1)
		}
		chunk %= 1 << 20
		if len(data) > 4096 {
			data = data[:4096]
		}
		for _, p := range pairs {
			mac := p.scalar.cfg.MAC
			ctS, tagS := p.scalar.sealChunk(chunk, counter, data)
			ctH, tagH := p.hardware.sealChunk(chunk, counter, data)
			if !bytes.Equal(ctS, ctH) {
				t.Fatalf("%v: ciphertext diverges between engines", mac)
			}
			if tagS != tagH {
				t.Fatalf("%v: tag diverges between engines", mac)
			}
			// Cross-open: each engine must accept the other's output.
			plain, err := p.scalar.openChunk(chunk, counter, ctH, tagH)
			if err != nil || !bytes.Equal(plain, data) {
				t.Fatalf("%v: scalar engine rejected hardware seal (err=%v)", mac, err)
			}
			plain, err = p.hardware.openChunk(chunk, counter, ctS, tagS)
			if err != nil || !bytes.Equal(plain, data) {
				t.Fatalf("%v: hardware engine rejected scalar seal (err=%v)", mac, err)
			}
			// Both engines must reject the same tampering.
			for _, s := range []*sealer{p.scalar, p.hardware} {
				if len(ctS) > 0 {
					bad := append([]byte(nil), ctS...)
					bad[int(flip)%len(bad)] ^= 1
					if _, err := s.openChunk(chunk, counter, bad, tagS); !isIntegrity(err) {
						t.Fatalf("%v: corrupted ciphertext accepted (err=%v)", mac, err)
					}
				}
				badTag := tagS
				badTag[int(flip)%TagSize] ^= 1
				if _, err := s.openChunk(chunk, counter, ctS, badTag); !isIntegrity(err) {
					t.Fatalf("%v: corrupted tag accepted (err=%v)", mac, err)
				}
				if _, err := s.openChunk(chunk+1, counter, ctS, tagS); !isIntegrity(err) {
					t.Fatalf("%v: spliced chunk accepted (err=%v)", mac, err)
				}
				if _, err := s.openChunk(chunk, counter+1, ctS, tagS); !isIntegrity(err) {
					t.Fatalf("%v: replayed epoch accepted (err=%v)", mac, err)
				}
			}
		}
	})
}
