package shield

import (
	"testing"
)

func regRig(t *testing.T, encAddrs bool) *testRig {
	cfg := simpleConfig()
	cfg.EncryptRegAddrs = encAddrs
	return newRig(t, cfg)
}

func TestRegisterHostWriteAcceleratorRead(t *testing.T) {
	rig := regRig(t, false)
	rf := rig.shield.Registers()
	m := rf.SealWrite(3, 0xDEADBEEF, 1)
	if err := rf.HostWrite(m); err != nil {
		t.Fatal(err)
	}
	v, _, err := rf.ReadReg(3)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xDEADBEEF {
		t.Fatalf("register = %#x", v)
	}
}

func TestRegisterAcceleratorWriteHostRead(t *testing.T) {
	rig := regRig(t, false)
	rf := rig.shield.Registers()
	rf.WriteReg(5, 42)
	req := rf.SealReadRequest(5, 7)
	resp, err := rf.HostRead(req)
	if err != nil {
		t.Fatal(err)
	}
	v, err := rf.OpenResponse(resp, 7)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("host read %d, want 42", v)
	}
}

func TestRegisterReplayRejected(t *testing.T) {
	rig := regRig(t, false)
	rf := rig.shield.Registers()
	m := rf.SealWrite(1, 10, 1)
	if err := rf.HostWrite(m); err != nil {
		t.Fatal(err)
	}
	if err := rf.HostWrite(m); err == nil {
		t.Fatal("replayed register write accepted")
	}
	// Older sequence numbers are also rejected.
	m3 := rf.SealWrite(1, 30, 3)
	if err := rf.HostWrite(m3); err != nil {
		t.Fatal(err)
	}
	m2 := rf.SealWrite(1, 20, 2)
	if err := rf.HostWrite(m2); err == nil {
		t.Fatal("stale register write accepted")
	}
}

func TestRegisterTamperRejected(t *testing.T) {
	rig := regRig(t, false)
	rf := rig.shield.Registers()
	m := rf.SealWrite(1, 10, 1)
	m.Payload[0] ^= 1
	if err := rf.HostWrite(m); err == nil {
		t.Fatal("tampered payload accepted")
	}
	m2 := rf.SealWrite(1, 10, 2)
	m2.Index = 2 // redirect to another register
	if err := rf.HostWrite(m2); err == nil {
		t.Fatal("redirected register write accepted")
	}
}

func TestRegisterOutOfRange(t *testing.T) {
	rig := regRig(t, false)
	rf := rig.shield.Registers()
	if err := rf.HostWrite(rf.SealWrite(1000, 1, 1)); err == nil {
		t.Fatal("out-of-range register write accepted")
	}
	if _, _, err := rf.ReadReg(-1); err == nil {
		t.Fatal("negative register read accepted")
	}
	if _, err := rf.WriteReg(99, 0); err != nil {
		if _, _, err2 := rf.ReadReg(99); err2 == nil {
			t.Fatal("inconsistent range checks")
		}
	}
}

func TestEncryptedRegisterAddresses(t *testing.T) {
	rig := regRig(t, true)
	rf := rig.shield.Registers()
	m := rf.SealWrite(4, 77, 1)
	// The wire must not reveal the register index.
	if m.Index != CommonRegAddr {
		t.Fatalf("wire index %#x leaks the register number", m.Index)
	}
	if err := rf.HostWrite(m); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := rf.ReadReg(4); v != 77 {
		t.Fatalf("register 4 = %d, want 77", v)
	}
}

func TestResponseSeqBinding(t *testing.T) {
	rig := regRig(t, false)
	rf := rig.shield.Registers()
	rf.WriteReg(1, 11)
	rf.WriteReg(2, 22)
	r1, err := rf.HostRead(rf.SealReadRequest(1, 5))
	if err != nil {
		t.Fatal(err)
	}
	// A response for seq 5 must not be accepted for a request with seq 6.
	if _, err := rf.OpenResponse(r1, 6); err == nil {
		t.Fatal("response accepted for wrong request sequence")
	}
	if v, err := rf.OpenResponse(r1, 5); err != nil || v != 11 {
		t.Fatalf("valid response rejected: %v %d", err, v)
	}
}

func TestRegisterCyclesAccounted(t *testing.T) {
	rig := regRig(t, false)
	rf := rig.shield.Registers()
	rf.HostWrite(rf.SealWrite(0, 1, 1))
	rf.HostWrite(rf.SealWrite(0, 2, 2))
	rep := rig.shield.Report()
	if rep.RegisterCycles != 2*regOpCycles {
		t.Fatalf("register cycles = %d, want %d", rep.RegisterCycles, 2*regOpCycles)
	}
}
