//go:build race

package shield

// raceEnabled reports whether the race detector is compiled in; the real
// (wall-clock) performance assertions skip under it.
const raceEnabled = true
