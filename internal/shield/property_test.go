package shield

import (
	"bytes"
	"math/rand"
	"testing"

	"shef/internal/crypto/aesx"
)

// TestShieldMatchesFlatMemory is the central functional property: from the
// accelerator's point of view, shielded memory is indistinguishable from a
// flat byte array, across random op sequences, chunk straddling, evictions
// and flush/invalidate cycles.
func TestShieldMatchesFlatMemory(t *testing.T) {
	configs := map[string]Config{
		"hmac+fresh+smallbuf": {
			Regions: []RegionConfig{{
				Name: "r", Base: 0, Size: 1 << 14, ChunkSize: 256,
				AESEngines: 1, SBox: aesx.SBox4x, KeySize: aesx.AES128,
				MAC: HMAC, BufferBytes: 2 * 256, Freshness: true,
			}},
		},
		"pmac+nofresh": {
			Regions: []RegionConfig{{
				Name: "r", Base: 0, Size: 1 << 14, ChunkSize: 1024,
				AESEngines: 4, SBox: aesx.SBox16x, KeySize: aesx.AES256,
				MAC: PMAC, BufferBytes: 4 * 1024,
			}},
		},
		"two-regions": simpleConfig(),
	}
	for name, cfg := range configs {
		t.Run(name, func(t *testing.T) {
			rig := newRig(t, cfg)
			rng := rand.New(rand.NewSource(42))
			// Reference flat memory covering all regions.
			ref := make(map[uint64][]byte)
			for _, r := range cfg.Regions {
				ref[r.Base] = make([]byte, r.Size)
			}
			for op := 0; op < 600; op++ {
				r := cfg.Regions[rng.Intn(len(cfg.Regions))]
				flat := ref[r.Base]
				off := uint64(rng.Intn(int(r.Size) - 300))
				n := 1 + rng.Intn(300)
				addr := r.Base + off
				switch rng.Intn(4) {
				case 0, 1: // write
					data := make([]byte, n)
					rng.Read(data)
					if _, err := rig.shield.WriteBurst(addr, data); err != nil {
						t.Fatalf("op %d write: %v", op, err)
					}
					copy(flat[off:], data)
				case 2: // read + compare
					buf := make([]byte, n)
					if _, err := rig.shield.ReadBurst(addr, buf); err != nil {
						t.Fatalf("op %d read: %v", op, err)
					}
					if !bytes.Equal(buf, flat[off:off+uint64(n)]) {
						t.Fatalf("op %d: read mismatch at %#x", op, addr)
					}
				case 3: // flush + invalidate: force the DRAM path
					if err := rig.shield.Flush(); err != nil {
						t.Fatal(err)
					}
					rig.shield.InvalidateClean()
				}
			}
			// Final sweep: everything must match after a full flush.
			if err := rig.shield.Flush(); err != nil {
				t.Fatal(err)
			}
			rig.shield.InvalidateClean()
			for _, r := range cfg.Regions {
				flat := ref[r.Base]
				buf := make([]byte, r.Size)
				if _, err := rig.shield.ReadBurst(r.Base, buf); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf, flat) {
					t.Fatalf("final sweep mismatch in region %q", r.Name)
				}
			}
		})
	}
}

// TestCounterMonotonicity: freshness counters never decrease, and bump
// exactly on write-backs.
func TestCounterMonotonicity(t *testing.T) {
	rig := newRig(t, simpleConfig())
	set := rig.shield.table.snapshot()[0].set.Load()
	prev := make([]uint32, len(set.counters))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		addr := uint64(rng.Intn(1 << 15))
		rig.shield.WriteBurst(addr, []byte{byte(i)})
		if i%10 == 0 {
			rig.shield.Flush()
		}
		for c, v := range set.counters {
			if v < prev[c] {
				t.Fatalf("counter %d decreased %d -> %d", c, prev[c], v)
			}
			prev[c] = v
		}
	}
}
