package shield

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
)

// tenantRig provisions a Shield with no static regions and an arena left
// open for runtime-created zones.
func tenantRig(t testing.TB, cfg Config, dramBytes uint64, params perf.Params) *testRig {
	t.Helper()
	dram := mem.NewDRAM(dramBytes, params)
	ocm := mem.NewOCM(256 * 1000 * 1000)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := New(cfg, priv, dram, ocm, params)
	if err != nil {
		t.Fatal(err)
	}
	dek := bytes.Repeat([]byte{0x5A}, 32)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		t.Fatal(err)
	}
	return &testRig{shield: sh, dram: dram, dek: dek}
}

// zoneConfig is a small tenant zone at base.
func zoneConfig(tenant string, base, size uint64) RegionConfig {
	return RegionConfig{
		Name: "zone", Tenant: tenant, Base: base, Size: size, ChunkSize: 512,
		AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		MAC: HMAC, BufferBytes: 2 * 512,
	}
}

func TestCreateDestroyRegion(t *testing.T) {
	rig := tenantRig(t, Config{Registers: 4, ArenaEnd: 1 << 20}, 1<<22, perf.Default())
	sh := rig.shield
	if err := sh.CreateRegion(zoneConfig("alice", 0, 1<<14)); err != nil {
		t.Fatal(err)
	}
	msg := []byte("alice's secret")
	if _, err := sh.WriteBurst(0x100, msg); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := sh.ReadBurst(0x100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("read back %q, want %q", buf, msg)
	}
	if err := sh.FlushTenantRegion("alice", "zone"); err != nil {
		t.Fatal(err)
	}
	if err := sh.DestroyRegion("alice", "zone"); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ReadBurst(0x100, buf); err == nil {
		t.Fatal("destroyed zone still served a read")
	}
	// The address range and tag shadow are reusable by another tenant,
	// and the destroyed data must not resurface.
	if err := sh.CreateRegion(zoneConfig("bob", 0, 1<<14)); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ReadBurst(0x100, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, make([]byte, len(msg))) {
		t.Fatal("bob's fresh zone leaked alice's plaintext")
	}
}

func TestTenantQuotaTypedError(t *testing.T) {
	cfg := Config{
		Registers:          4,
		ArenaEnd:           1 << 20,
		DefaultTenantQuota: mem.Quota{DRAMBytes: 20 << 10},
	}
	rig := tenantRig(t, cfg, 1<<22, perf.Default())
	sh := rig.shield
	if err := sh.CreateRegion(zoneConfig("mallory", 0, 1<<14)); err != nil {
		t.Fatal(err)
	}
	err := sh.CreateRegion(RegionConfig{
		Name: "zone2", Tenant: "mallory", Base: 1 << 14, Size: 1 << 14, ChunkSize: 512,
		AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128, MAC: HMAC,
	})
	if !errors.Is(err, mem.ErrQuotaExceeded) {
		t.Fatalf("over-quota create = %v, want ErrQuotaExceeded", err)
	}
	var qe *mem.QuotaError
	if !errors.As(err, &qe) || qe.Tenant != "mallory" || qe.Resource != "dram" {
		t.Fatalf("quota error %+v not attributable", err)
	}
	// A different tenant still has budget, and a raised quota unblocks.
	if err := sh.CreateRegion(zoneConfig("honest", 1<<15, 1<<14)); err != nil {
		t.Fatal(err)
	}
	sh.SetTenantQuota("mallory", mem.Quota{DRAMBytes: 1 << 20})
	if err := sh.CreateRegion(RegionConfig{
		Name: "zone2", Tenant: "mallory", Base: 1 << 14, Size: 1 << 14, ChunkSize: 512,
		AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128, MAC: HMAC,
	}); err != nil {
		t.Fatal(err)
	}
	if got := sh.TenantUsage("mallory").Regions; got != 2 {
		t.Fatalf("mallory holds %d regions, want 2", got)
	}
}

func TestTenantErrorTextAttributable(t *testing.T) {
	rig := newRig(t, simpleConfig())
	err := rig.shield.FlushRegion("nope")
	if err == nil || !strings.Contains(err.Error(), `tenant "default"`) {
		t.Fatalf("default-session error not attributable: %v", err)
	}
	cfg := simpleConfig()
	cfg.Tenant = "acme"
	rig = newRig(t, cfg)
	err = rig.shield.FlushRegion("nope")
	if err == nil || !strings.Contains(err.Error(), `tenant "acme"`) ||
		!strings.Contains(err.Error(), `unknown region "nope"`) {
		t.Fatalf("session error not attributable: %v", err)
	}
}

func TestLazyMaterializationAndReclaim(t *testing.T) {
	rig := tenantRig(t, Config{Registers: 4, ArenaEnd: 1 << 20}, 1<<22, perf.Default())
	sh := rig.shield
	ocmBefore := sh.ocm.UsedBits()
	if err := sh.CreateRegion(zoneConfig("idle", 0, 1<<14)); err != nil {
		t.Fatal(err)
	}
	if got := sh.ocm.UsedBits(); got != ocmBefore {
		t.Fatalf("idle zone pinned on-chip memory: %d -> %d bits", ocmBefore, got)
	}
	if z := sh.Zones(); len(z) != 1 || z[0].Live {
		t.Fatalf("idle zone reported live: %+v", z)
	}
	msg := []byte("survives reclaim")
	if _, err := sh.WriteBurst(0, msg); err != nil {
		t.Fatal(err)
	}
	if z := sh.Zones(); !z[0].Live {
		t.Fatal("touched zone not materialised")
	}
	ocmLive := sh.ocm.UsedBits()
	if ocmLive == ocmBefore {
		t.Fatal("materialised zone holds no on-chip memory")
	}
	if err := sh.ReclaimRegion("idle", "zone"); err != nil {
		t.Fatal(err)
	}
	// Reclaim returns the buffer and window budget; only the durable
	// metadata (valid bits — no freshness here) stays resident.
	chunks := (1 << 14) / 512
	metaBits := uint64((chunks+7)/8) * 8
	if got := sh.ocm.UsedBits(); got != ocmBefore+metaBits {
		t.Fatalf("reclaim kept %d bits on-chip, want %d (was %d live)",
			got-ocmBefore, metaBits, ocmLive-ocmBefore)
	}
	if z := sh.Zones(); z[0].Live {
		t.Fatal("reclaimed zone still live")
	}
	// The quota reservation survives reclaim, so re-materialisation can
	// never fail admission — and the flushed data comes back intact.
	if got := sh.TenantUsage("idle").Regions; got != 1 {
		t.Fatalf("reclaim dropped the quota reservation (%d regions)", got)
	}
	buf := make([]byte, len(msg))
	if _, err := sh.ReadBurst(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatalf("reclaimed zone lost data: %q", buf)
	}
}

func TestRegionLookupCacheCounts(t *testing.T) {
	params := perf.Default()
	rig := tenantRig(t, Config{Registers: 4, ArenaEnd: 1 << 20}, 1<<22, params)
	sh := rig.shield
	if err := sh.CreateRegion(zoneConfig("hot", 0, 1<<14)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	const accesses = 64
	for i := 0; i < accesses; i++ {
		if _, err := sh.ReadBurst(uint64(i*32), buf); err != nil {
			t.Fatal(err)
		}
	}
	rep := sh.Report()
	lk := rep.Lookup
	if lk.Hits+lk.Misses != accesses {
		t.Fatalf("lookup counted %d+%d resolutions, want %d", lk.Hits, lk.Misses, accesses)
	}
	// The zone spans 4 pages of the default 4 KiB geometry: at most one
	// compulsory miss per page, everything else O(1) hits.
	if lk.Misses > 4 {
		t.Fatalf("%d lookup misses for a 4-page zone", lk.Misses)
	}
	if want := params.RegionLookupCycles(lk.Hits, lk.Misses); lk.Cycles != want {
		t.Fatalf("lookup cycles %d, want %d", lk.Cycles, want)
	}
	if rep.TotalCycles() <= rep.MemoryCycles()+rep.RegisterCycles+rep.InitCycles {
		t.Fatal("TotalCycles does not charge region resolution")
	}
	// Destroying any zone is a shootdown: the next access misses again.
	if err := sh.CreateRegion(zoneConfig("other", 1<<15, 1<<14)); err != nil {
		t.Fatal(err)
	}
	if err := sh.DestroyRegion("other", "zone"); err != nil {
		t.Fatal(err)
	}
	sh.ResetStats()
	if _, err := sh.ReadBurst(0, buf); err != nil {
		t.Fatal(err)
	}
	if lk := sh.Report().Lookup; lk.Misses != 1 {
		t.Fatalf("post-shootdown access recorded %d misses, want 1", lk.Misses)
	}
}

// TestTenantChurn1k is the multi-tenant scaling gauntlet: 1k+ tenants
// create, use, and destroy protection zones concurrently (run under
// -race in CI).
func TestTenantChurn1k(t *testing.T) {
	const (
		workers          = 64
		tenantsPerWorker = 16 // 1024 tenants total
		zoneSize         = 1 << 13
	)
	arena := uint64(workers * tenantsPerWorker * zoneSize)
	rig := tenantRig(t, Config{Registers: 4, ArenaEnd: arena}, arena+(4<<20), perf.Default())
	sh := rig.shield
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 64)
			for i := 0; i < tenantsPerWorker; i++ {
				tenant := fmt.Sprintf("tenant-%d-%d", w, i)
				base := uint64(w*tenantsPerWorker+i) * zoneSize
				rc := zoneConfig(tenant, base, zoneSize)
				if err := sh.CreateRegion(rc); err != nil {
					errs[w] = err
					return
				}
				want := []byte(tenant)
				if _, err := sh.WriteBurst(base+64, want); err != nil {
					errs[w] = err
					return
				}
				if _, err := sh.ReadBurst(base+64, buf[:len(want)]); err != nil {
					errs[w] = err
					return
				}
				if !bytes.Equal(buf[:len(want)], want) {
					errs[w] = fmt.Errorf("tenant %s read back %q", tenant, buf[:len(want)])
					return
				}
				if i%2 == 0 {
					if err := sh.DestroyRegion(tenant, "zone"); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Half the zones survive; every destroyed tenant released its quota.
	zones := sh.Zones()
	if want := workers * tenantsPerWorker / 2; len(zones) != want {
		t.Fatalf("%d zones survive churn, want %d", len(zones), want)
	}
	if got := len(sh.Tenants()); got != workers*tenantsPerWorker/2 {
		t.Fatalf("%d tenants hold charges, want %d", got, workers*tenantsPerWorker/2)
	}
}
