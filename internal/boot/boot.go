// Package boot implements ShEF's secure boot chain (paper §3 steps 1-2 and
// 6-7, §4 "Secure Boot"): Manufacturer key provisioning, the BootROM →
// SPB-firmware → Security-Kernel measured boot, and the derivation of the
// device- and kernel-bound Attestation Key.
//
// The chain reproduces the paper's dataflow exactly:
//
//	e-fuse AES key ──decrypts──► SPB firmware (carries DeviceKey_priv)
//	firmware ──hashes──► Security Kernel image ──► H(SecKrnl)
//	seed = Sign_DeviceKey(H(SecKrnl)) ──► AttestKey pair (deterministic)
//	σ_SecKrnl = Sign_DeviceKey(H(SecKrnl) ‖ AttestKey_pub)
//
// The Security Kernel itself contains no secrets and never sees the device
// keys; it only receives the Attestation Key and certificate (paper §3:
// "preventing attackers from leaking the device keys via an illegitimate
// Security Kernel").
package boot

import (
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"math/big"

	"shef/internal/crypto/modp"
	"shef/internal/crypto/rsax"
	"shef/internal/crypto/schnorr"
	"shef/internal/crypto/sha256x"
	"shef/internal/fpga"
)

// Manufacturer is the FPGA maker: the only party that ever has the device
// keys in the clear, inside its secure facility.
type Manufacturer struct {
	// Group is the discrete-log group for attestation keys.
	Group *modp.Group
	// KeyBits is the RSA modulus size for device keys.
	KeyBits int
}

// firmwareImage is the plaintext content of the SPB firmware: the private
// device key, serialised. It exists only inside SealBlob ciphertext and
// SPB-internal memory.
type firmwareImage struct {
	N *big.Int `json:"n"`
	E int      `json:"e"`
	D *big.Int `json:"d"`
	P *big.Int `json:"p"`
	Q *big.Int `json:"q"`
}

// ProvisionedDevice is what leaves the factory: the fused device plus the
// encrypted firmware that ships on its boot medium, and the public device
// key the Manufacturer registers with a certificate authority.
type ProvisionedDevice struct {
	Device       *fpga.Device
	FirmwareBlob []byte
	DevicePublic *rsax.PublicKey
}

// Provision burns keys into a fresh device (paper §3 steps 1-2): an AES
// device key into the e-fuses (PUF-wrapped), and the RSA private device
// key into AES-encrypted firmware.
func (m *Manufacturer) Provision(dev *fpga.Device) (*ProvisionedDevice, error) {
	if m.KeyBits == 0 {
		m.KeyBits = 2048
	}
	aesKey := make([]byte, 32)
	if _, err := rand.Read(aesKey); err != nil {
		return nil, fmt.Errorf("boot: sampling device AES key: %w", err)
	}
	deviceKey, err := rsax.GenerateKey(nil, m.KeyBits)
	if err != nil {
		return nil, fmt.Errorf("boot: generating device key pair: %w", err)
	}
	wrapped := fpga.WrapKeyForEFuse(dev.PUF(), aesKey)
	if err := dev.BurnEFuse(wrapped, true); err != nil {
		return nil, err
	}
	fw, err := json.Marshal(firmwareImage{
		N: deviceKey.N, E: deviceKey.E, D: deviceKey.D, P: deviceKey.P, Q: deviceKey.Q,
	})
	if err != nil {
		return nil, err
	}
	blob, err := fpga.SealBlob(aesKey, fw)
	if err != nil {
		return nil, err
	}
	return &ProvisionedDevice{
		Device:       dev,
		FirmwareBlob: blob,
		DevicePublic: &deviceKey.PublicKey,
	}, nil
}

// KernelImage is a Security Kernel binary. Its hash is the measurement
// that attestation reports; IP Vendors maintain an allowlist of known-good
// hashes (paper §4, Remote Attestation).
type KernelImage struct {
	Name    string
	Version string
	Code    []byte
}

// Hash is H(SecKrnl).
func (k KernelImage) Hash() [sha256x.Size]byte {
	h := sha256x.New()
	h.Write([]byte(k.Name))
	h.Write([]byte{0})
	h.Write([]byte(k.Version))
	h.Write([]byte{0})
	h.Write(k.Code)
	return h.Sum()
}

// ReferenceKernel is the Security Kernel image this repository ships; its
// hash is what IP Vendors allowlist.
var ReferenceKernel = KernelImage{
	Name:    "shef-security-kernel",
	Version: "1.0.0",
	Code:    []byte("shef security kernel reference build: attest, mediate fabric, monitor ports"),
}

// SecurityKernel is the booted kernel running on the dedicated processor.
// It holds the Attestation Key (delivered by the SPB firmware through
// private on-chip memory) and mediates all fabric access.
type SecurityKernel struct {
	dev        *fpga.Device
	group      *modp.Group
	attestKey  *schnorr.PrivateKey
	certSK     []byte // σ_SecKrnl: device-key signature binding kernel hash and attest key
	kernelHash [sha256x.Size]byte
}

// certMessage is the byte string the device key signs to certify the
// kernel and its attestation key.
func certMessage(kernelHash [sha256x.Size]byte, attestPub *schnorr.PublicKey) []byte {
	msg := append([]byte("shef/seckrnl-cert:"), kernelHash[:]...)
	return append(msg, attestPub.Bytes()...)
}

// Boot runs the measured boot chain on a provisioned device: BootROM
// decrypts the firmware via the SPB, the firmware hashes the kernel image,
// derives the Attestation Key, certifies it, and starts the kernel.
func Boot(pd *ProvisionedDevice, kernel KernelImage, group *modp.Group) (*SecurityKernel, error) {
	if group == nil {
		group = modp.Group14
	}
	spb := fpga.NewSPB(pd.Device)
	fwPlain, err := spb.DecryptBlob(pd.FirmwareBlob)
	if err != nil {
		return nil, fmt.Errorf("boot: BootROM firmware decryption failed: %w", err)
	}
	var fw firmwareImage
	if err := json.Unmarshal(fwPlain, &fw); err != nil {
		return nil, fmt.Errorf("boot: firmware image corrupt: %w", err)
	}
	deviceKey := &rsax.PrivateKey{
		PublicKey: rsax.PublicKey{N: fw.N, E: fw.E},
		D:         fw.D, P: fw.P, Q: fw.Q,
	}
	kh := kernel.Hash()
	// seed = Sign_DeviceKey(H(SecKrnl)): binds the attestation key to this
	// device (only it can produce the signature) and this kernel binary.
	seed, err := deviceKey.Sign(append([]byte("shef/attest-seed:"), kh[:]...))
	if err != nil {
		return nil, err
	}
	attestKey := schnorr.KeyFromSeed(group, seed)
	cert, err := deviceKey.Sign(certMessage(kh, &attestKey.PublicKey))
	if err != nil {
		return nil, err
	}
	return &SecurityKernel{
		dev:        pd.Device,
		group:      group,
		attestKey:  attestKey,
		certSK:     cert,
		kernelHash: kh,
	}, nil
}

// VerifyKernelCert checks σ_SecKrnl against a device public key obtained
// from the Manufacturer's certificate authority. IP Vendors run this
// during attestation (Figure 3 step 5).
func VerifyKernelCert(devicePub *rsax.PublicKey, kernelHash [sha256x.Size]byte,
	attestPub *schnorr.PublicKey, cert []byte) bool {
	return rsax.Verify(devicePub, certMessage(kernelHash, attestPub), cert)
}

// AttestKey exposes the kernel's attestation key pair. The private half
// never leaves the kernel; this accessor exists for the attestation
// endpoint in the same trust domain.
func (k *SecurityKernel) AttestKey() *schnorr.PrivateKey { return k.attestKey }

// KernelCert returns σ_SecKrnl.
func (k *SecurityKernel) KernelCert() []byte { return append([]byte(nil), k.certSK...) }

// KernelHash returns H(SecKrnl).
func (k *SecurityKernel) KernelHash() [sha256x.Size]byte { return k.kernelHash }

// Group returns the attestation group.
func (k *SecurityKernel) Group() *modp.Group { return k.group }

// Device returns the FPGA the kernel controls.
func (k *SecurityKernel) Device() *fpga.Device { return k.dev }

// MonitorPorts performs one runtime scan of the programming and debug
// ports (paper §3 step 9). Detected tampering clears the user design: the
// accelerator must not keep executing next to an open backdoor.
func (k *SecurityKernel) MonitorPorts() []fpga.TamperEvent {
	events := k.dev.ScanPorts()
	if len(events) > 0 {
		k.dev.ClearPartial()
	}
	return events
}

// ErrNoShell reports partial programming before the Shell is resident.
var ErrNoShell = errors.New("boot: shell must be loaded before the accelerator")
