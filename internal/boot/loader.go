package boot

import (
	"fmt"

	"shef/internal/bitstream"
)

// LoadAccelerator is the Security Kernel's fabric-mediation path (paper §3
// step 9): after attestation delivers the Bitstream Encryption Key, the
// kernel decrypts the accelerator image in on-chip memory, validates it,
// and programs the partial-reconfiguration region.
//
// The returned Manifest — including the embedded private Shield Encryption
// Key — conceptually never leaves the fabric; callers represent the
// programmed logic and must treat it accordingly.
func (k *SecurityKernel) LoadAccelerator(enc *bitstream.Encrypted, bitstreamKey []byte) (*bitstream.Manifest, error) {
	if !k.shellLoaded() {
		return nil, ErrNoShell
	}
	m, err := bitstream.Decrypt(enc, bitstreamKey)
	if err != nil {
		return nil, fmt.Errorf("boot: accelerator bitstream rejected: %w", err)
	}
	if err := k.dev.LoadPartial(enc.Name, m.Resources); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadShell programs the CSP's Shell into the static region. The CSP
// drives this through the Security Kernel, which is open source and holds
// no secrets, so the CSP can audit the loading path (paper §3).
func (k *SecurityKernel) LoadShell(name string) error {
	return k.dev.LoadStatic(name)
}

func (k *SecurityKernel) shellLoaded() bool {
	static, _, _ := k.dev.FabricState()
	return static != ""
}

// BootStage is one phase of the power-on sequence with its modelled
// duration, used to reproduce the paper's §6.1 boot-time measurement.
type BootStage struct {
	Name    string
	Seconds float64
}

// Timeline reproduces the Ultra96 end-to-end measurement: power-on to
// accelerator-bitstream-loaded in 5.1 s (paper §6.1). Stage splits follow
// the prototype's description: BootROM + firmware decryption on the SPB,
// Security Kernel hash/load onto the R5 core, attestation-key derivation
// (an RSA signature plus group exponentiation), port lockdown, and partial
// bitstream decrypt + ICAP programming.
var Timeline = []BootStage{
	{"bootrom-exec", 0.35},
	{"spb-firmware-decrypt-load", 0.85},
	{"security-kernel-hash-load", 1.15},
	{"attestation-key-derivation", 0.65},
	{"port-lockdown", 0.15},
	{"bitstream-decrypt-load", 1.95},
}

// TotalBootSeconds sums the timeline (≈ 5.1 s, §6.1).
func TotalBootSeconds() float64 {
	var t float64
	for _, s := range Timeline {
		t += s.Seconds
	}
	return t
}

// F1 reference points the paper compares against (§6.1).
const (
	// VMBootSeconds is the commonly-observed CSP VM instance boot time.
	VMBootSeconds = 40.0
	// F1BitstreamLoadSeconds is the observed F1 partial-bitstream load.
	F1BitstreamLoadSeconds = 6.2
)
