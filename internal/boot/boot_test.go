package boot

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"shef/internal/bitstream"
	"shef/internal/crypto/aesx"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/fpga"
	"shef/internal/perf"
	"shef/internal/shield"
)

// Provisioning uses 1024-bit RSA in tests for speed.
var (
	provOnce sync.Once
	provDev  *ProvisionedDevice
	provErr  error
)

func provisioned(t *testing.T) *ProvisionedDevice {
	t.Helper()
	provOnce.Do(func() {
		dev := fpga.New(fpga.Ultra96, "u96-test", perf.Default(), 1<<20)
		m := &Manufacturer{Group: modp.TestGroup, KeyBits: 1024}
		provDev, provErr = m.Provision(dev)
	})
	if provErr != nil {
		t.Fatal(provErr)
	}
	return provDev
}

func bootKernel(t *testing.T) *SecurityKernel {
	t.Helper()
	k, err := Boot(provisioned(t), ReferenceKernel, modp.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestBootProducesCertifiedAttestKey(t *testing.T) {
	pd := provisioned(t)
	k := bootKernel(t)
	if !VerifyKernelCert(pd.DevicePublic, k.KernelHash(), &k.AttestKey().PublicKey, k.KernelCert()) {
		t.Fatal("kernel certificate does not verify under the device public key")
	}
}

func TestAttestKeyDeterministicPerKernel(t *testing.T) {
	k1 := bootKernel(t)
	k2, err := Boot(provisioned(t), ReferenceKernel, modp.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	if k1.AttestKey().X.Cmp(k2.AttestKey().X) != 0 {
		t.Fatal("same device+kernel produced different attestation keys across boots")
	}
}

func TestAttestKeyBoundToKernelBinary(t *testing.T) {
	k1 := bootKernel(t)
	modified := ReferenceKernel
	modified.Code = append([]byte(nil), ReferenceKernel.Code...)
	modified.Code[0] ^= 1
	k2, err := Boot(provisioned(t), modified, modp.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	if k1.AttestKey().X.Cmp(k2.AttestKey().X) == 0 {
		t.Fatal("modified kernel binary yielded the same attestation key")
	}
	// A certificate for the modified kernel must not validate against the
	// reference hash.
	if VerifyKernelCert(provisioned(t).DevicePublic, ReferenceKernel.Hash(),
		&k2.AttestKey().PublicKey, k2.KernelCert()) {
		t.Fatal("certificate for modified kernel accepted for reference hash")
	}
}

func TestIllegitimateKernelCannotForgeCert(t *testing.T) {
	pd := provisioned(t)
	// An attacker with their own key pair (no device key) cannot produce a
	// valid σ_SecKrnl.
	fake, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	forged := make([]byte, 128)
	if VerifyKernelCert(pd.DevicePublic, ReferenceKernel.Hash(), &fake.PublicKey, forged) {
		t.Fatal("forged kernel certificate accepted")
	}
}

func TestBootFailsOnCorruptFirmware(t *testing.T) {
	pd := provisioned(t)
	bad := &ProvisionedDevice{
		Device:       pd.Device,
		FirmwareBlob: append([]byte(nil), pd.FirmwareBlob...),
		DevicePublic: pd.DevicePublic,
	}
	bad.FirmwareBlob[5] ^= 1
	if _, err := Boot(bad, ReferenceKernel, modp.TestGroup); err == nil {
		t.Fatal("boot succeeded with corrupted firmware")
	}
}

func TestKernelHashCoversNameVersionCode(t *testing.T) {
	base := ReferenceKernel.Hash()
	k := ReferenceKernel
	k.Version = "9.9.9"
	if k.Hash() == base {
		t.Fatal("hash ignores version")
	}
	k = ReferenceKernel
	k.Name = "evil"
	if k.Hash() == base {
		t.Fatal("hash ignores name")
	}
}

func TestLoadAcceleratorRequiresShell(t *testing.T) {
	dev := fpga.New(fpga.VU9P, "f1-x", perf.Default(), 1<<20)
	m := &Manufacturer{Group: modp.TestGroup, KeyBits: 1024}
	pd, err := m.Provision(dev)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Boot(pd, ReferenceKernel, modp.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	key := bytes.Repeat([]byte{1}, 32)
	enc := testBitstream(t, key)
	if _, err := k.LoadAccelerator(enc, key); err == nil {
		t.Fatal("accelerator loaded without a shell")
	}
	if err := k.LoadShell("aws-shell"); err != nil {
		t.Fatal(err)
	}
	man, err := k.LoadAccelerator(enc, key)
	if err != nil {
		t.Fatal(err)
	}
	if man.Design != "noop" {
		t.Fatal("wrong manifest")
	}
	if !k.Device().PartialLoaded() {
		t.Fatal("fabric not programmed")
	}
	// Wrong bitstream key must fail and leave the fabric untouched.
	k.Device().ClearPartial()
	if _, err := k.LoadAccelerator(enc, bytes.Repeat([]byte{2}, 32)); err == nil {
		t.Fatal("bitstream decrypted with wrong key")
	}
	if k.Device().PartialLoaded() {
		t.Fatal("fabric programmed despite failed decryption")
	}
}

func testBitstream(t *testing.T, key []byte) *bitstream.Encrypted {
	t.Helper()
	sk, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	man := &bitstream.Manifest{
		Design: "noop", Version: "1",
		Shield: shield.Config{Regions: []shield.RegionConfig{{
			Name: "r", Base: 0, Size: 4096, ChunkSize: 512,
			AESEngines: 1, SBox: aesx.SBox4x, KeySize: aesx.AES128, MAC: shield.HMAC,
		}}},
		ShieldPrivKey: sk.X.Bytes(),
		Resources:     fpga.Resources{LUT: 1000},
	}
	enc, err := bitstream.Compile("noop-afi", man, key, nil)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestMonitorPortsClearsFabricOnTamper(t *testing.T) {
	dev := fpga.New(fpga.VU9P, "f1-y", perf.Default(), 1<<20)
	m := &Manufacturer{Group: modp.TestGroup, KeyBits: 1024}
	pd, _ := m.Provision(dev)
	k, _ := Boot(pd, ReferenceKernel, modp.TestGroup)
	k.LoadShell("shell")
	key := bytes.Repeat([]byte{1}, 32)
	if _, err := k.LoadAccelerator(testBitstream(t, key), key); err != nil {
		t.Fatal(err)
	}
	if ev := k.MonitorPorts(); len(ev) != 0 {
		t.Fatal("clean device reported tamper")
	}
	dev.OpenPort(fpga.PortJTAG)
	ev := k.MonitorPorts()
	if len(ev) != 1 {
		t.Fatalf("got %d tamper events, want 1", len(ev))
	}
	if dev.PartialLoaded() {
		t.Fatal("accelerator left running after JTAG tamper")
	}
}

func TestBootTimeline(t *testing.T) {
	total := TotalBootSeconds()
	if math.Abs(total-5.1) > 0.01 {
		t.Fatalf("boot timeline sums to %.2f s, want 5.1 s (paper §6.1)", total)
	}
	// ShEF boot must beat VM boot and be comparable to F1 bitstream load.
	if total >= VMBootSeconds {
		t.Fatal("secure boot slower than VM boot")
	}
	for _, s := range Timeline {
		if s.Seconds <= 0 {
			t.Fatalf("stage %s has nonpositive duration", s.Name)
		}
	}
}
