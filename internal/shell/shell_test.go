package shell

import (
	"bytes"
	"testing"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/fpga"
	"shef/internal/mem"
	"shef/internal/perf"
	"shef/internal/shield"
)

func newShell(t *testing.T) *Shell {
	t.Helper()
	dev := fpga.New(fpga.VU9P, "s-1", perf.Default(), 1<<22)
	sh, err := New("aws-shell-v1", dev)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

func TestDMARoundTrip(t *testing.T) {
	sh := newShell(t)
	data := []byte("encrypted payload moving through the shell")
	if err := sh.DMAWrite(0x2000, data); err != nil {
		t.Fatal(err)
	}
	got, err := sh.DMARead(0x2000, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("DMA round trip failed")
	}
}

func TestShellSeesAllTraffic(t *testing.T) {
	sh := newShell(t)
	sh.DMAWrite(0, make([]byte, 100))
	port := sh.MemPort()
	port.ReadBurst(0, make([]byte, 50))
	port.WriteBurst(0, make([]byte, 25))
	if got := sh.SnoopedBytes(); got != 175 {
		t.Fatalf("snooped %d bytes, want 175", got)
	}
}

func TestInterposeCorruptsTraffic(t *testing.T) {
	sh := newShell(t)
	sh.DMAWrite(0, bytes.Repeat([]byte{0xAA}, 64))
	sh.Interpose(func(addr uint64, data []byte, isWrite bool) {
		if !isWrite {
			data[0] ^= 0xFF
		}
	})
	buf := make([]byte, 64)
	sh.MemPort().ReadBurst(0, buf)
	if buf[0] == 0xAA {
		t.Fatal("tamperer did not corrupt the read")
	}
	// The stored copy is intact; only the in-flight view changed.
	raw, _ := sh.Device().DRAM.RawRead(0, 1)
	if raw[0] != 0xAA {
		t.Fatal("read-path tamper leaked into DRAM")
	}
	sh.Interpose(nil)
	sh.MemPort().ReadBurst(0, buf)
	if buf[0] != 0xAA {
		t.Fatal("clearing the tamperer did not restore clean reads")
	}
}

func TestInterposeWritePathCorruption(t *testing.T) {
	sh := newShell(t)
	sh.Interpose(func(addr uint64, data []byte, isWrite bool) {
		if isWrite {
			data[0] = 0x00
		}
	})
	src := []byte{0xBB, 0xBB}
	sh.MemPort().WriteBurst(0, src)
	if src[0] != 0xBB {
		t.Fatal("tamperer mutated the caller's buffer")
	}
	raw, _ := sh.Device().DRAM.RawRead(0, 2)
	if raw[0] != 0x00 || raw[1] != 0xBB {
		t.Fatalf("write-path corruption not applied: %v", raw)
	}
}

// TestShieldOverMaliciousShell is the integration check of the threat
// model: a Shield mounted on a corrupting Shell detects the interference
// instead of returning wrong data.
func TestShieldOverMaliciousShell(t *testing.T) {
	sh := newShell(t)
	priv, _ := schnorr.GenerateKey(modp.TestGroup, nil)
	cfg := shield.Config{
		Regions: []shield.RegionConfig{{
			Name: "r", Base: 0, Size: 1 << 14, ChunkSize: 512,
			AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128,
			MAC: shield.HMAC, BufferBytes: 1024, Freshness: true,
		}},
	}
	ocm := mem.NewOCM(fpga.VU9P.OCMBits)
	sd, err := shield.New(cfg, priv, sh.MemPort(), ocm, perf.Default())
	if err != nil {
		t.Fatal(err)
	}
	dek := bytes.Repeat([]byte{3}, 32)
	lk, _ := keywrap.Wrap(sd.PublicKey(), dek, nil)
	if err := sd.ProvisionLoadKey(lk); err != nil {
		t.Fatal(err)
	}
	// Write through the shield, flush, drop buffers.
	sd.WriteBurst(0, bytes.Repeat([]byte{0x42}, 512))
	sd.Flush()
	sd.InvalidateClean()
	// Malicious shell corrupts read data in flight.
	sh.Interpose(func(addr uint64, data []byte, isWrite bool) {
		if !isWrite && addr == 0 {
			data[7] ^= 0x80
		}
	})
	buf := make([]byte, 512)
	if _, err := sd.ReadBurst(0, buf); err == nil {
		t.Fatal("shield returned data corrupted by the shell")
	}
}
