// Package shell models the CSP's Shell: the persistent, untrusted static
// logic that owns all of the FPGA's I/O (paper §2.3). The Shell is the
// operating system of the fabric — and, in ShEF's threat model, an
// adversary: it can observe, corrupt, and replay every transaction that
// crosses it (paper §2.5: "the adversary is able to control privileged
// FPGA logic, such as the AWS F1 Shell").
//
// The Shield attaches to the Shell's memory port; the host program drives
// the Shell's DMA engine. Adversarial behaviour is injected with Interpose.
package shell

import (
	"sync"

	"shef/internal/axi"
	"shef/internal/fpga"
)

// Shell is the static-region logic instance bound to one device.
type Shell struct {
	Name string
	dev  *fpga.Device

	mu       sync.Mutex
	tamperer Tamperer
	snooped  uint64 // bytes observed crossing the Shell
}

// Tamperer mutates traffic in flight. data is the transaction payload
// (post-read or pre-write); the function may modify it in place.
type Tamperer func(addr uint64, data []byte, isWrite bool)

// New loads a Shell onto the device's static region.
func New(name string, dev *fpga.Device) (*Shell, error) {
	if err := dev.LoadStatic(name); err != nil {
		return nil, err
	}
	return &Shell{Name: name, dev: dev}, nil
}

// Device returns the underlying FPGA.
func (s *Shell) Device() *fpga.Device { return s.dev }

// Interpose installs (or clears, with nil) an adversarial traffic mutator.
func (s *Shell) Interpose(t Tamperer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tamperer = t
}

// SnoopedBytes reports how much traffic the Shell has observed — all of
// it, which is exactly why the Shield must encrypt everything.
func (s *Shell) SnoopedBytes() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snooped
}

// MemPort returns the AXI4 memory interface the Shell exposes to the user
// partial region (where the Shield attaches). All traffic through it is
// visible to, and corruptible by, the Shell.
func (s *Shell) MemPort() axi.MemoryPort { return &shellPort{s} }

type shellPort struct{ s *Shell }

func (p *shellPort) ReadBurst(addr uint64, buf []byte) (uint64, error) {
	cycles, err := p.s.dev.DRAM.ReadBurst(addr, buf)
	if err != nil {
		return cycles, err
	}
	p.s.mu.Lock()
	p.s.snooped += uint64(len(buf))
	t := p.s.tamperer
	p.s.mu.Unlock()
	if t != nil {
		t(addr, buf, false)
	}
	return cycles, nil
}

func (p *shellPort) WriteBurst(addr uint64, data []byte) (uint64, error) {
	p.s.mu.Lock()
	p.s.snooped += uint64(len(data))
	t := p.s.tamperer
	p.s.mu.Unlock()
	if t != nil {
		// The Shell sees (and may corrupt) the data before it reaches DRAM.
		tampered := append([]byte(nil), data...)
		t(addr, tampered, true)
		data = tampered
	}
	return p.s.dev.DRAM.WriteBurst(addr, data)
}

// DMAWrite is the host-program data path into device memory (encrypted
// payloads only — the host never holds plaintext in ShEF).
func (s *Shell) DMAWrite(addr uint64, data []byte) error {
	_, err := s.dev.DRAM.WriteBurst(addr, data)
	s.mu.Lock()
	s.snooped += uint64(len(data))
	s.mu.Unlock()
	return err
}

// DMARead is the host-program data path out of device memory.
func (s *Shell) DMARead(addr uint64, n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := s.dev.DRAM.ReadBurst(addr, buf); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.snooped += uint64(n)
	s.mu.Unlock()
	return buf, nil
}
