package attest

import (
	"bytes"
	"math/big"
	"net"
	"testing"
	"time"
)

// These tests exercise the protocol endpoints against malformed and
// adversarial wire input: nothing may panic, and every malformation must
// be rejected.

func TestWireRejectsOversizedHeader(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // 4 GB claimed length
	var v challenge
	if err := readMsg(&buf, &v); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestWireRejectsTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 100})
	buf.WriteString("short")
	var v challenge
	if err := readMsg(&buf, &v); err == nil {
		t.Fatal("truncated message accepted")
	}
}

func TestWireRejectsGarbageJSON(t *testing.T) {
	var buf bytes.Buffer
	writeMsg(&buf, "just a string")
	var v challenge
	if err := readMsg(&buf, &v); err == nil {
		t.Fatal("type-mismatched message accepted")
	}
	buf.Reset()
	buf.Write([]byte{0, 0, 0, 3})
	buf.WriteString("{{{")
	if err := readMsg(&buf, &v); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestKernelRejectsBadChallenge: short nonces and invalid DH elements are
// refused before any signing happens.
func TestKernelRejectsBadChallenge(t *testing.T) {
	w := getWorld(t)
	cases := []challenge{
		{Nonce: []byte("short"), VerifPub: big.NewInt(4).Bytes()},
		{Nonce: bytes.Repeat([]byte{1}, 32), VerifPub: []byte{1}}, // identity element
		{Nonce: bytes.Repeat([]byte{1}, 32), VerifPub: nil},
	}
	for i, ch := range cases {
		vc, kc := net.Pipe()
		errc := make(chan error, 1)
		go func() {
			_, err := ServeKernel(kc, w.kernel, w.enc)
			errc <- err
			kc.Close()
		}()
		if err := writeMsg(vc, ch); err != nil {
			t.Fatal(err)
		}
		select {
		case err := <-errc:
			if err == nil {
				t.Errorf("case %d: kernel accepted a bad challenge", i)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("case %d: kernel hung", i)
		}
		vc.Close()
	}
}

// TestVendorSurvivesKernelDisconnect: a kernel that hangs up mid-protocol
// yields an error, not a hang or panic.
func TestVendorSurvivesKernelDisconnect(t *testing.T) {
	w := getWorld(t)
	vc, kc := net.Pipe()
	go func() {
		var ch challenge
		readMsg(kc, &ch)
		kc.Close() // hang up before sending the report
	}()
	done := make(chan error, 1)
	go func() {
		_, err := w.vendor.RunVendor(vc, "vecadd")
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("vendor succeeded against a disconnected kernel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("vendor hung on disconnect")
	}
	vc.Close()
}

// TestVendorRejectsGarbageReport: a random blob in place of the report
// message fails cleanly.
func TestVendorRejectsGarbageReport(t *testing.T) {
	w := getWorld(t)
	vc, kc := net.Pipe()
	go func() {
		var ch challenge
		readMsg(kc, &ch)
		writeMsg(kc, reportMsg{Report: Report{
			Nonce:      ch.Nonce,
			AttestPub:  []byte{0},
			KernelHash: make([]byte, 32),
		}})
		var verdict vendorError
		readMsg(kc, &verdict)
		kc.Close()
	}()
	if _, err := w.vendor.RunVendor(vc, "vecadd"); err == nil {
		t.Fatal("garbage report accepted")
	}
	vc.Close()
}

// TestSessionSealTamper: the session-channel AEAD rejects flipped bits.
func TestSessionSealTamper(t *testing.T) {
	key := bytes.Repeat([]byte{7}, 32)
	d, err := sealSession(key, []byte("bitstream key material"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := openSession(key, d); err != nil {
		t.Fatalf("clean payload rejected: %v", err)
	}
	d.Ciphertext[0] ^= 1
	if _, err := openSession(key, d); err == nil {
		t.Fatal("tampered session payload accepted")
	}
	d.Ciphertext[0] ^= 1
	d.Tag[0] ^= 1
	if _, err := openSession(key, d); err == nil {
		t.Fatal("tampered session tag accepted")
	}
	other := bytes.Repeat([]byte{8}, 32)
	d.Tag[0] ^= 1
	if _, err := openSession(other, d); err == nil {
		t.Fatal("session payload opened under wrong key")
	}
}

// TestCAISolation: looking up before registering fails; re-registration
// overwrites (manufacturer key rotation).
func TestCARegistry(t *testing.T) {
	ca := NewCA()
	if _, err := ca.Lookup("x"); err == nil {
		t.Fatal("unknown device resolved")
	}
	pub1, _ := rsaxGenerate(t)
	ca.Register("x", pub1)
	got, err := ca.Lookup("x")
	if err != nil || got.N.Cmp(pub1.N) != 0 {
		t.Fatal("lookup mismatch")
	}
}
