package attest

import (
	"errors"
	"fmt"
	"io"
	"math/big"
	"time"

	"shef/internal/bitstream"
	"shef/internal/boot"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/rsax"
	"shef/internal/crypto/schnorr"
)

// ErrBusy is returned by the owner-side helpers when the vendor shed the
// connection under load. The wrapped error carries the server's
// retry-after hint; callers should back off at least that long.
var ErrBusy = errors.New("attest: vendor busy")

func bigFromBytes(b []byte) *big.Int { return new(big.Int).SetBytes(b) }

// Request kinds on the Data Owner channel.
const (
	// KindProvision asks the vendor to attest the FPGA instance and hand
	// back the public Shield Encryption Key (Figure 3 steps 1 and 7).
	KindProvision = "provision"
	// KindFetch downloads the (public) encrypted bitstream, as a
	// marketplace would serve it.
	KindFetch = "fetch"
	// KindRegister records a device public key with the vendor's CA view.
	// In production the Manufacturer does this through a certificate
	// authority; the demo CLI exercises the same data flow directly.
	KindRegister = "register"
	// KindZoneCreate asks the serving tier to carve a protection zone for
	// the requesting tenant (quota permitting); KindZoneDestroy tears the
	// tenant's zone down and releases its budget.
	KindZoneCreate  = "zone-create"
	KindZoneDestroy = "zone-destroy"
)

// ZoneHandler is the serving tier's tenant-lifecycle hook: zone-create
// and zone-destroy requests land here. Implementations enforce tenant
// quotas and return typed errors for over-budget requests.
type ZoneHandler interface {
	CreateZone(tenant string, bytes uint64) error
	DestroyZone(tenant string) error
}

// OwnerRequest is Data Owner → IP Vendor over the TLS channel of Figure 3
// step 1.
type OwnerRequest struct {
	Kind    string `json:"kind"`
	Product string `json:"product"`
	// Tenant identifies the requesting tenant for multi-tenant serving:
	// zone lifecycle requests require it, and the server's weighted-fair
	// admission sheds per tenant when it is present. Empty is the legacy
	// single-tenant client.
	Tenant string `json:"tenant,omitempty"`
	// ZoneBytes is the requested zone footprint (KindZoneCreate).
	ZoneBytes uint64 `json:"zone_bytes,omitempty"`
	// Registration payload (KindRegister).
	DeviceSerial string `json:"device_serial,omitempty"`
	DeviceKeyN   []byte `json:"device_key_n,omitempty"`
	DeviceKeyE   int    `json:"device_key_e,omitempty"`
}

// OwnerResponse returns the request outcome.
type OwnerResponse struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Busy marks an admission-control shed: the server refused the
	// session before reading the request. RetryAfterMS is the server's
	// backoff hint.
	Busy          bool                 `json:"busy,omitempty"`
	RetryAfterMS  int64                `json:"retry_after_ms,omitempty"`
	ShieldPub     []byte               `json:"shield_pub,omitempty"`
	BitstreamHash []byte               `json:"bitstream_hash,omitempty"`
	DeviceSerial  string               `json:"device_serial,omitempty"`
	KernelHash    []byte               `json:"kernel_hash,omitempty"`
	Bitstream     *bitstream.Encrypted `json:"bitstream,omitempty"`
}

// WriteBusy sends the admission-control shed response on a connection the
// server is about to close: a terminal "come back later" that owner-side
// helpers surface as ErrBusy. It is written before any request is read —
// shedding must not cost the server a protocol round-trip.
func WriteBusy(w io.Writer, retryAfter time.Duration) error {
	return writeMsg(w, OwnerResponse{
		Busy:         true,
		Error:        "vendor busy",
		RetryAfterMS: retryAfter.Milliseconds(),
	})
}

// busyError maps a shed response to ErrBusy (nil for anything else).
func busyError(resp *OwnerResponse) error {
	if !resp.Busy {
		return nil
	}
	return fmt.Errorf("%w: retry after %dms", ErrBusy, resp.RetryAfterMS)
}

// HandleOwner serves one Data Owner request on conn. The owner connection
// is assumed to be TLS-protected (step 1); the model treats the stream as
// confidential.
//
// For provision requests the host program on the client side proxies the
// Security Kernel: the Figure 3 challenge/report/key-delivery messages run
// over the same connection, interleaved between the request and the final
// response — exactly the paper's topology, where all kernel traffic
// crosses the untrusted host CPU.
func (v *Vendor) HandleOwner(ownerConn io.ReadWriter) error {
	req, err := ReadOwnerRequest(ownerConn)
	if err != nil {
		return err
	}
	return v.HandleOwnerRequest(ownerConn, req)
}

// ReadOwnerRequest reads the one request a Data Owner connection opens
// with. Multi-tenant servers read it before admission so the fair gate
// knows which tenant is asking.
func ReadOwnerRequest(r io.Reader) (*OwnerRequest, error) {
	var req OwnerRequest
	if err := readMsg(r, &req); err != nil {
		return nil, err
	}
	return &req, nil
}

// HandleOwnerRequest dispatches an already-read owner request on conn
// (the second half of HandleOwner).
func (v *Vendor) HandleOwnerRequest(ownerConn io.ReadWriter, req *OwnerRequest) error {
	switch req.Kind {
	case KindZoneCreate, KindZoneDestroy:
		if v.Zones == nil {
			return writeMsg(ownerConn, OwnerResponse{OK: false, Error: "vendor has no zone manager"})
		}
		if req.Tenant == "" {
			return writeMsg(ownerConn, OwnerResponse{OK: false, Error: "zone request needs a tenant"})
		}
		var err error
		if req.Kind == KindZoneCreate {
			err = v.Zones.CreateZone(req.Tenant, req.ZoneBytes)
		} else {
			err = v.Zones.DestroyZone(req.Tenant)
		}
		if err != nil {
			return writeMsg(ownerConn, OwnerResponse{OK: false, Error: err.Error()})
		}
		return writeMsg(ownerConn, OwnerResponse{OK: true})
	}
	switch req.Kind {
	case KindRegister:
		if req.DeviceSerial == "" || len(req.DeviceKeyN) == 0 {
			return writeMsg(ownerConn, OwnerResponse{OK: false, Error: "malformed registration"})
		}
		v.CA.Register(req.DeviceSerial, &rsax.PublicKey{
			N: bigFromBytes(req.DeviceKeyN), E: req.DeviceKeyE,
		})
		return writeMsg(ownerConn, OwnerResponse{OK: true, DeviceSerial: req.DeviceSerial})
	case KindFetch:
		p, ok := v.Bitstreams[req.Product]
		if !ok {
			return writeMsg(ownerConn, OwnerResponse{OK: false, Error: fmt.Sprintf("unknown product %q", req.Product)})
		}
		hash := p.Encrypted.Hash()
		return writeMsg(ownerConn, OwnerResponse{OK: true, Bitstream: p.Encrypted, BitstreamHash: hash[:]})
	case KindProvision, "": // empty kind keeps old clients working
		p, ok := v.Bitstreams[req.Product]
		if !ok {
			return writeMsg(ownerConn, OwnerResponse{OK: false, Error: fmt.Sprintf("unknown product %q", req.Product)})
		}
		res, err := v.RunVendor(ownerConn, req.Product)
		if err != nil {
			return writeMsg(ownerConn, OwnerResponse{OK: false, Error: err.Error()})
		}
		hash := p.Encrypted.Hash()
		return writeMsg(ownerConn, OwnerResponse{
			OK:            true,
			ShieldPub:     p.ShieldPub.Bytes(),
			BitstreamHash: hash[:],
			DeviceSerial:  res.Report.DeviceSerial,
			KernelHash:    res.Report.KernelHash,
		})
	default:
		return writeMsg(ownerConn, OwnerResponse{OK: false, Error: fmt.Sprintf("unknown request kind %q", req.Kind)})
	}
}

// ProvisionViaHost runs the Data Owner + host-proxy side of a provision
// request on one connection: it sends the request, lets the resident
// Security Kernel answer the interleaved Figure 3 exchange, and returns
// the vendor's verdict, the public Shield Encryption Key, and the
// Bitstream Encryption Key the kernel received.
func ProvisionViaHost(vendorConn io.ReadWriter, product string, group *modp.Group,
	k *boot.SecurityKernel, enc *bitstream.Encrypted) (*OwnerResponse, *schnorr.PublicKey, []byte, error) {
	if err := writeMsg(vendorConn, OwnerRequest{Kind: KindProvision, Product: product}); err != nil {
		return nil, nil, nil, err
	}
	bitKey, kerr := ServeKernel(vendorConn, k, enc)
	var resp OwnerResponse
	if err := readMsg(vendorConn, &resp); err != nil {
		if kerr != nil {
			return nil, nil, nil, kerr
		}
		return nil, nil, nil, err
	}
	if err := busyError(&resp); err != nil {
		return &resp, nil, nil, err
	}
	if !resp.OK {
		return &resp, nil, nil, fmt.Errorf("attest: vendor refused provisioning: %s", resp.Error)
	}
	if kerr != nil {
		return &resp, nil, nil, kerr
	}
	pub, err := schnorr.PublicKeyFromBytes(group, resp.ShieldPub)
	if err != nil {
		return &resp, nil, nil, fmt.Errorf("attest: bad shield key from vendor: %w", err)
	}
	return &resp, pub, bitKey, nil
}

// FetchBitstream downloads the encrypted bitstream for a product.
func FetchBitstream(vendorConn io.ReadWriter, product string) (*bitstream.Encrypted, error) {
	if err := writeMsg(vendorConn, OwnerRequest{Kind: KindFetch, Product: product}); err != nil {
		return nil, err
	}
	var resp OwnerResponse
	if err := readMsg(vendorConn, &resp); err != nil {
		return nil, err
	}
	if err := busyError(&resp); err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("attest: fetch refused: %s", resp.Error)
	}
	if resp.Bitstream == nil {
		return nil, fmt.Errorf("attest: fetch returned no bitstream")
	}
	return resp.Bitstream, nil
}

// CreateZone asks the vendor's serving tier to carve a protection zone
// of the given byte footprint for tenant. Quota rejections come back as
// protocol errors with the server's typed error text.
func CreateZone(vendorConn io.ReadWriter, tenant string, bytes uint64) error {
	return zoneRequest(vendorConn, OwnerRequest{Kind: KindZoneCreate, Tenant: tenant, ZoneBytes: bytes})
}

// DestroyZone tears down tenant's zone and releases its budget.
func DestroyZone(vendorConn io.ReadWriter, tenant string) error {
	return zoneRequest(vendorConn, OwnerRequest{Kind: KindZoneDestroy, Tenant: tenant})
}

func zoneRequest(vendorConn io.ReadWriter, req OwnerRequest) error {
	if err := writeMsg(vendorConn, req); err != nil {
		return err
	}
	var resp OwnerResponse
	if err := readMsg(vendorConn, &resp); err != nil {
		return err
	}
	if err := busyError(&resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("attest: %s refused: %s", req.Kind, resp.Error)
	}
	return nil
}

// RegisterDevice records a device public key with the vendor's CA view
// (demo convenience standing in for the Manufacturer's CA publication).
func RegisterDevice(vendorConn io.ReadWriter, serial string, pub *rsax.PublicKey) error {
	err := writeMsg(vendorConn, OwnerRequest{
		Kind:         KindRegister,
		DeviceSerial: serial,
		DeviceKeyN:   pub.N.Bytes(),
		DeviceKeyE:   pub.E,
	})
	if err != nil {
		return err
	}
	var resp OwnerResponse
	if err := readMsg(vendorConn, &resp); err != nil {
		return err
	}
	if err := busyError(&resp); err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("attest: registration refused: %s", resp.Error)
	}
	return nil
}
