package attest

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"shef/internal/bitstream"
	"shef/internal/boot"
	"shef/internal/crypto/aesx"
	"shef/internal/crypto/hmacx"
	"shef/internal/crypto/kdf"
	"shef/internal/crypto/rsax"
	"shef/internal/crypto/schnorr"
	"shef/internal/crypto/sha256x"
	"shef/internal/profiling"
)

// CA is the Manufacturer's certificate authority: it maps device serial
// numbers to registered device public keys (paper §3: "the Manufacturer
// must also register and publish the public device key via a trusted
// certificate authority").
//
// A CA is safe for concurrent use: shefd serves each Data Owner connection
// on its own goroutine, and registrations race with attestation lookups.
type CA struct {
	mu      sync.RWMutex
	devices map[string]*rsax.PublicKey
}

// NewCA builds an empty registry.
func NewCA() *CA { return &CA{devices: make(map[string]*rsax.PublicKey)} }

// Register records a device public key at manufacturing time. The write
// is wrapped in the profiling taxonomy (attest-op=ca-register): the CA is
// the one piece of shared mutable state every session touches, so if its
// lock ever serialises the serving tier, the harness's off-CPU table
// names it directly.
func (c *CA) Register(serial string, pub *rsax.PublicKey) {
	if profiling.Enabled() {
		profiling.Region(context.Background(), "attest.CA.Register", func() {
			profiling.Do(context.Background(), func() { c.register(serial, pub) }, "attest-op", "ca-register")
		})
		return
	}
	c.register(serial, pub)
}

func (c *CA) register(serial string, pub *rsax.PublicKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.devices[serial] = pub
}

// Lookup resolves a serial to its registered key (labelled
// attest-op=ca-lookup under a harness, like Register).
func (c *CA) Lookup(serial string) (*rsax.PublicKey, error) {
	if profiling.Enabled() {
		var pub *rsax.PublicKey
		var err error
		profiling.Do(context.Background(), func() {
			profiling.Region(context.Background(), "attest.CA.Lookup", func() { pub, err = c.lookup(serial) })
		}, "attest-op", "ca-lookup")
		return pub, err
	}
	return c.lookup(serial)
}

func (c *CA) lookup(serial string) (*rsax.PublicKey, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	pub, ok := c.devices[serial]
	if !ok {
		return nil, fmt.Errorf("attest: device %q not registered with the CA", serial)
	}
	return pub, nil
}

// Vendor is the IP Vendor's attestation server state: trust anchors and
// the bitstreams it distributes.
type Vendor struct {
	// CA verifies device certificates.
	CA *CA
	// KernelAllowlist is the public list of trusted Security Kernel
	// hashes.
	KernelAllowlist [][sha256x.Size]byte
	// Bitstreams maps product names to their distribution records.
	Bitstreams map[string]*Product
	// Zones handles tenant zone lifecycle requests (nil refuses them).
	// The serving tier (hostapp.TenantRegistry) installs itself here so
	// zone-create/zone-destroy RPCs share the owner channel.
	Zones ZoneHandler
}

// Product is one accelerator offering: the encrypted bitstream as
// distributed, the Bitstream Encryption Key (vendor-secret), and the
// public Shield Encryption Key handed to Data Owners.
type Product struct {
	Encrypted    *bitstream.Encrypted
	BitstreamKey []byte
	ShieldPub    *schnorr.PublicKey
}

// sessionBinding is the transcript bound by σ_SessionKey.
func sessionBinding(sessionKey, nonce []byte) []byte {
	msg := append([]byte("shef/session-binding:"), nonce...)
	return append(msg, sessionKey...)
}

// sealSession encrypts-then-MACs a payload under the session key.
func sealSession(sessionKey, payload []byte) (keyDelivery, error) {
	c, err := aesx.NewCipher(sessionKey)
	if err != nil {
		return keyDelivery{}, err
	}
	ct := make([]byte, len(payload))
	var iv [aesx.IVSize]byte
	iv[0] = 0xA7 // session-channel domain
	aesx.CTR(c, iv, ct, payload)
	return keyDelivery{Ciphertext: ct, Tag: hmacx.Tag(sessionKey, ct)}, nil
}

func openSession(sessionKey []byte, d keyDelivery) ([]byte, error) {
	if !hmacx.Verify(sessionKey, d.Ciphertext, d.Tag) {
		return nil, errors.New("attest: session payload authentication failed")
	}
	c, err := aesx.NewCipher(sessionKey)
	if err != nil {
		return nil, err
	}
	pt := make([]byte, len(d.Ciphertext))
	var iv [aesx.IVSize]byte
	iv[0] = 0xA7
	aesx.CTR(c, iv, pt, d.Ciphertext)
	return pt, nil
}

// Result is what the IP Vendor learns from a successful attestation.
type Result struct {
	Report     Report
	SessionKey []byte
}

// RunVendor executes the IP Vendor's side of Figure 3 over conn (which
// reaches the Security Kernel through the untrusted host). On success the
// Bitstream Encryption Key for product has been delivered to the kernel.
func (v *Vendor) RunVendor(conn io.ReadWriter, product string) (*Result, error) {
	p, ok := v.Bitstreams[product]
	if !ok {
		return nil, fmt.Errorf("attest: unknown product %q", product)
	}
	// Step 2: nonce + ephemeral Verification Key.
	nonce := make([]byte, 32)
	if _, err := rand.Read(nonce); err != nil {
		return nil, err
	}
	group := p.ShieldPub.Group
	verifKey, err := schnorr.GenerateKey(group, nil)
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, challenge{Nonce: nonce, VerifPub: verifKey.PublicKey.Bytes()}); err != nil {
		return nil, err
	}
	// Step 4: receive α, σ_α, σ_SessionKey.
	var rm reportMsg
	if err := readMsg(conn, &rm); err != nil {
		return nil, err
	}
	rep := rm.Report
	fail := func(format string, args ...any) (*Result, error) {
		err := fmt.Errorf(format, args...)
		_ = writeMsg(conn, vendorError{OK: false, Error: err.Error()})
		return nil, err
	}
	// Step 5a: σ_SecKrnl proves a legitimate FPGA generated the report.
	devicePub, err := v.CA.Lookup(rep.DeviceSerial)
	if err != nil {
		return fail("attest: %v", err)
	}
	attestPub, err := schnorr.PublicKeyFromBytes(group, rep.AttestPub)
	if err != nil {
		return fail("attest: bad attestation key in report: %v", err)
	}
	var kh [sha256x.Size]byte
	copy(kh[:], rep.KernelHash)
	if !boot.VerifyKernelCert(devicePub, kh, attestPub, rep.KernelCert) {
		return fail("attest: kernel certificate invalid: report not from a legitimate device")
	}
	// Step 5b: the Security Kernel hash must be on the public allowlist.
	if !v.kernelAllowed(kh) {
		return fail("attest: security kernel hash %x not in allowlist", kh[:8])
	}
	// Step 5c: σ_α under the attestation key.
	sig := schnorr.Signature{E: bigFromBytes(rm.SigE), S: bigFromBytes(rm.SigS)}
	if !schnorr.Verify(attestPub, rep.canonical(), sig) {
		return fail("attest: report signature invalid")
	}
	// Step 5d: nonce freshness.
	if !bytes.Equal(rep.Nonce, nonce) {
		return fail("attest: nonce mismatch (replayed report)")
	}
	// Step 5e: the loaded bitstream is the one we distribute.
	wantHash := p.Encrypted.Hash()
	if !bytes.Equal(rep.BitstreamHash, wantHash[:]) {
		return fail("attest: bitstream hash mismatch: kernel holds a different image")
	}
	// Step 5f: derive the same session key and check σ_SessionKey.
	shared, err := verifKey.SharedSecret(attestPub)
	if err != nil {
		return fail("attest: %v", err)
	}
	sessionKey := kdf.SessionKey(shared.Bytes(), nonce)
	sessionSig := schnorr.Signature{E: bigFromBytes(rm.SessionSigE), S: bigFromBytes(rm.SessionSigS)}
	if !schnorr.Verify(attestPub, sessionBinding(sessionKey, nonce), sessionSig) {
		return fail("attest: session key certificate invalid (man-in-the-middle?)")
	}
	// Step 6: deliver the Bitstream Encryption Key under the session key.
	delivery, err := sealSession(sessionKey, p.BitstreamKey)
	if err != nil {
		return nil, err
	}
	if err := writeMsg(conn, vendorError{OK: true}); err != nil {
		return nil, err
	}
	if err := writeMsg(conn, delivery); err != nil {
		return nil, err
	}
	return &Result{Report: rep, SessionKey: sessionKey}, nil
}

func (v *Vendor) kernelAllowed(h [sha256x.Size]byte) bool {
	for _, k := range v.KernelAllowlist {
		if k == h {
			return true
		}
	}
	return false
}

// ServeKernel executes the Security Kernel's side of Figure 3 over conn:
// it answers one challenge for the given resident encrypted bitstream and
// returns the Bitstream Encryption Key received in step 6.
func ServeKernel(conn io.ReadWriter, k *boot.SecurityKernel, enc *bitstream.Encrypted) ([]byte, error) {
	var ch challenge
	if err := readMsg(conn, &ch); err != nil {
		return nil, err
	}
	if len(ch.Nonce) < 16 {
		return nil, errors.New("attest: vendor nonce too short")
	}
	group := k.Group()
	verifPub, err := schnorr.PublicKeyFromBytes(group, ch.VerifPub)
	if err != nil {
		return nil, fmt.Errorf("attest: bad verification key: %w", err)
	}
	// Step 3: hash the encrypted bitstream, derive the session key, sign.
	bsHash := enc.Hash()
	shared, err := k.AttestKey().SharedSecret(verifPub)
	if err != nil {
		return nil, err
	}
	sessionKey := kdf.SessionKey(shared.Bytes(), ch.Nonce)
	sessionSig := k.AttestKey().Sign(sessionBinding(sessionKey, ch.Nonce))
	kh := k.KernelHash()
	rep := Report{
		Nonce:         ch.Nonce,
		BitstreamHash: bsHash[:],
		AttestPub:     k.AttestKey().PublicKey.Bytes(),
		KernelHash:    kh[:],
		KernelCert:    k.KernelCert(),
		DeviceSerial:  k.Device().Serial,
	}
	sig := k.AttestKey().Sign(rep.canonical())
	msg := reportMsg{
		Report:      rep,
		SigE:        sig.E.Bytes(),
		SigS:        sig.S.Bytes(),
		SessionSigE: sessionSig.E.Bytes(),
		SessionSigS: sessionSig.S.Bytes(),
	}
	if err := writeMsg(conn, msg); err != nil {
		return nil, err
	}
	// Vendor verdict, then (on success) the key delivery.
	var verdict vendorError
	if err := readMsg(conn, &verdict); err != nil {
		return nil, err
	}
	if !verdict.OK {
		return nil, fmt.Errorf("attest: vendor rejected attestation: %s", verdict.Error)
	}
	var delivery keyDelivery
	if err := readMsg(conn, &delivery); err != nil {
		return nil, err
	}
	return openSession(sessionKey, delivery)
}
