package attest

import (
	"bytes"
	"net"
	"sync"
	"testing"

	"shef/internal/bitstream"
	"shef/internal/boot"
	"shef/internal/crypto/aesx"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/rsax"
	"shef/internal/crypto/schnorr"
	"shef/internal/fpga"
	"shef/internal/perf"
	"shef/internal/shield"
)

// world is a full attestation fixture: a provisioned, booted device and a
// vendor distributing one bitstream.
type world struct {
	pd        *boot.ProvisionedDevice
	kernel    *boot.SecurityKernel
	vendor    *Vendor
	enc       *bitstream.Encrypted
	bitKey    []byte
	shieldKey *schnorr.PrivateKey
}

var (
	worldOnce sync.Once
	theWorld  *world
	worldErr  error
)

func buildWorld() (*world, error) {
	dev := fpga.New(fpga.VU9P, "f1-attest", perf.Default(), 1<<20)
	m := &boot.Manufacturer{Group: modp.TestGroup, KeyBits: 1024}
	pd, err := m.Provision(dev)
	if err != nil {
		return nil, err
	}
	kernel, err := boot.Boot(pd, boot.ReferenceKernel, modp.TestGroup)
	if err != nil {
		return nil, err
	}
	shieldKey, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		return nil, err
	}
	man := &bitstream.Manifest{
		Design: "vecadd", Version: "1",
		Shield: shield.Config{Regions: []shield.RegionConfig{{
			Name: "r", Base: 0, Size: 4096, ChunkSize: 512,
			AESEngines: 1, SBox: aesx.SBox4x, KeySize: aesx.AES128, MAC: shield.HMAC,
		}}},
		ShieldPrivKey: shieldKey.X.Bytes(),
		Resources:     fpga.Resources{LUT: 5000},
	}
	bitKey := bytes.Repeat([]byte{0x42}, 32)
	enc, err := bitstream.Compile("vecadd-afi", man, bitKey, nil)
	if err != nil {
		return nil, err
	}
	ca := NewCA()
	ca.Register(dev.Serial, pd.DevicePublic)
	vendor := &Vendor{
		CA:              ca,
		KernelAllowlist: [][32]byte{boot.ReferenceKernel.Hash()},
		Bitstreams: map[string]*Product{
			"vecadd": {Encrypted: enc, BitstreamKey: bitKey, ShieldPub: &shieldKey.PublicKey},
		},
	}
	return &world{pd: pd, kernel: kernel, vendor: vendor, enc: enc, bitKey: bitKey, shieldKey: shieldKey}, nil
}

func getWorld(t *testing.T) *world {
	t.Helper()
	worldOnce.Do(func() { theWorld, worldErr = buildWorld() })
	if worldErr != nil {
		t.Fatal(worldErr)
	}
	return theWorld
}

// runExchange wires vendor and kernel over an in-memory pipe and runs one
// attestation, returning both outcomes.
func runExchange(t *testing.T, w *world, product string, enc *bitstream.Encrypted) (vres *Result, verr error, key []byte, kerr error) {
	t.Helper()
	vc, kc := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		key, kerr = ServeKernel(kc, w.kernel, enc)
		kc.Close()
	}()
	vres, verr = w.vendor.RunVendor(vc, product)
	vc.Close()
	<-done
	return
}

func TestAttestationSuccess(t *testing.T) {
	w := getWorld(t)
	vres, verr, key, kerr := runExchange(t, w, "vecadd", w.enc)
	if verr != nil {
		t.Fatalf("vendor: %v", verr)
	}
	if kerr != nil {
		t.Fatalf("kernel: %v", kerr)
	}
	if !bytes.Equal(key, w.bitKey) {
		t.Fatal("kernel received wrong bitstream key")
	}
	if vres.Report.DeviceSerial != "f1-attest" {
		t.Fatal("report carries wrong serial")
	}
	// The delivered key actually decrypts the bitstream.
	if _, err := bitstream.Decrypt(w.enc, key); err != nil {
		t.Fatalf("delivered key does not decrypt the bitstream: %v", err)
	}
}

func TestAttestationRejectsWrongBitstream(t *testing.T) {
	w := getWorld(t)
	// Kernel holds a different (e.g. trojaned) image than the vendor ships.
	other := *w.enc
	other.Blob = append([]byte(nil), w.enc.Blob...)
	other.Blob[0] ^= 1
	_, verr, _, kerr := runExchange(t, w, "vecadd", &other)
	if verr == nil {
		t.Fatal("vendor accepted a mismatched bitstream hash")
	}
	if kerr == nil {
		t.Fatal("kernel got a key despite rejection")
	}
}

func TestAttestationRejectsUnknownDevice(t *testing.T) {
	w := getWorld(t)
	// A device whose key was never registered with the CA.
	dev := fpga.New(fpga.VU9P, "rogue-device", perf.Default(), 1<<20)
	m := &boot.Manufacturer{Group: modp.TestGroup, KeyBits: 1024}
	pd, err := m.Provision(dev)
	if err != nil {
		t.Fatal(err)
	}
	rogue, err := boot.Boot(pd, boot.ReferenceKernel, modp.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	vc, kc := net.Pipe()
	go func() {
		ServeKernel(kc, rogue, w.enc)
		kc.Close()
	}()
	_, verr := w.vendor.RunVendor(vc, "vecadd")
	vc.Close()
	if verr == nil {
		t.Fatal("vendor attested an unregistered device")
	}
}

func TestAttestationRejectsUnknownKernel(t *testing.T) {
	w := getWorld(t)
	evil := boot.ReferenceKernel
	evil.Code = append([]byte("evil"), boot.ReferenceKernel.Code...)
	k2, err := boot.Boot(w.pd, evil, modp.TestGroup)
	if err != nil {
		t.Fatal(err)
	}
	vc, kc := net.Pipe()
	go func() {
		ServeKernel(kc, k2, w.enc)
		kc.Close()
	}()
	_, verr := w.vendor.RunVendor(vc, "vecadd")
	vc.Close()
	if verr == nil {
		t.Fatal("vendor accepted a kernel hash outside the allowlist")
	}
}

// TestReplayedReportRejected: a man in the middle replaying a previous
// (valid) report fails the nonce check.
func TestReplayedReportRejected(t *testing.T) {
	w := getWorld(t)
	// First, capture a legitimate report by recording the kernel's answer.
	var recorded reportMsg
	vc, kc := net.Pipe()
	go func() {
		var ch challenge
		readMsg(kc, &ch)
		// Run the real kernel against this challenge via a nested pipe.
		ivc, ikc := net.Pipe()
		go func() {
			ServeKernel(ikc, w.kernel, w.enc)
			ikc.Close()
		}()
		// Forward the challenge, capture the report.
		writeMsg(ivc, ch)
		readMsg(ivc, &recorded)
		ivc.Close()
		writeMsg(kc, recorded) // deliver to this session (same nonce: fine)
		var verdict vendorError
		readMsg(kc, &verdict)
		if verdict.OK {
			var d keyDelivery
			readMsg(kc, &d) // drain the key delivery
		}
		kc.Close()
	}()
	if _, err := w.vendor.RunVendor(vc, "vecadd"); err != nil {
		t.Fatalf("pass-through session should succeed: %v", err)
	}
	vc.Close()

	// Now replay the recorded report against a fresh vendor session, which
	// uses a fresh nonce.
	vc2, kc2 := net.Pipe()
	go func() {
		var ch challenge
		readMsg(kc2, &ch) // ignore the fresh nonce
		writeMsg(kc2, recorded)
		var verdict vendorError
		readMsg(kc2, &verdict)
		kc2.Close()
	}()
	if _, err := w.vendor.RunVendor(vc2, "vecadd"); err == nil {
		t.Fatal("vendor accepted a replayed attestation report")
	}
	vc2.Close()
}

// TestForgedSessionKeyRejected: an attacker who substitutes their own DH
// key cannot produce σ_SessionKey under the attestation key.
func TestForgedSessionKeyRejected(t *testing.T) {
	w := getWorld(t)
	vc, kc := net.Pipe()
	go func() {
		var ch challenge
		readMsg(kc, &ch)
		// Forward to the real kernel but tamper with the session signature.
		ivc, ikc := net.Pipe()
		go func() {
			ServeKernel(ikc, w.kernel, w.enc)
			ikc.Close()
		}()
		writeMsg(ivc, ch)
		var rm reportMsg
		readMsg(ivc, &rm)
		ivc.Close()
		rm.SessionSigS[0] ^= 1
		writeMsg(kc, rm)
		var verdict vendorError
		readMsg(kc, &verdict)
		kc.Close()
	}()
	if _, err := w.vendor.RunVendor(vc, "vecadd"); err == nil {
		t.Fatal("vendor accepted a forged session-key certificate")
	}
	vc.Close()
}

func TestUnknownProduct(t *testing.T) {
	w := getWorld(t)
	vc, _ := net.Pipe()
	defer vc.Close()
	if _, err := w.vendor.RunVendor(vc, "nonexistent"); err == nil {
		t.Fatal("vendor served unknown product")
	}
}

func TestOwnerProvisioningFlow(t *testing.T) {
	w := getWorld(t)
	ownerV, ownerC := net.Pipe()
	go func() {
		w.vendor.HandleOwner(ownerV)
		ownerV.Close()
	}()
	resp, shieldPub, bitKey, err := ProvisionViaHost(ownerC, "vecadd", modp.TestGroup, w.kernel, w.enc)
	ownerC.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !resp.OK || resp.DeviceSerial != "f1-attest" {
		t.Fatalf("bad response: %+v", resp)
	}
	if shieldPub.Y.Cmp(w.shieldKey.Y) != 0 {
		t.Fatal("owner received wrong shield key")
	}
	if !bytes.Equal(bitKey, w.bitKey) {
		t.Fatal("kernel received wrong bitstream key through the proxied flow")
	}
	wantHash := w.enc.Hash()
	if !bytes.Equal(resp.BitstreamHash, wantHash[:]) {
		t.Fatal("owner received wrong bitstream hash")
	}
}

func TestOwnerUnknownProduct(t *testing.T) {
	w := getWorld(t)
	ownerV, ownerC := net.Pipe()
	go func() {
		w.vendor.HandleOwner(ownerV)
		ownerV.Close()
	}()
	_, _, _, err := ProvisionViaHost(ownerC, "nope", modp.TestGroup, w.kernel, w.enc)
	ownerC.Close()
	if err == nil {
		t.Fatal("owner provisioned unknown product")
	}
}

func TestOwnerFetchAndRegister(t *testing.T) {
	w := getWorld(t)
	serve := func() net.Conn {
		ownerV, ownerC := net.Pipe()
		go func() {
			w.vendor.HandleOwner(ownerV)
			ownerV.Close()
		}()
		return ownerC
	}
	c := serve()
	enc, err := FetchBitstream(c, "vecadd")
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if enc.Hash() != w.enc.Hash() {
		t.Fatal("fetched bitstream differs")
	}
	c = serve()
	if _, err := FetchBitstream(c, "nope"); err == nil {
		t.Fatal("fetched unknown product")
	}
	c.Close()

	other, _ := rsaxGenerate(t)
	c = serve()
	if err := RegisterDevice(c, "new-device", other); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := w.vendor.CA.Lookup("new-device"); err != nil {
		t.Fatal("registration did not reach the CA")
	}
}

func TestWireMessageLimit(t *testing.T) {
	var buf bytes.Buffer
	big := struct{ X []byte }{X: make([]byte, maxMsgBytes)}
	if err := writeMsg(&buf, big); err == nil {
		t.Fatal("oversized message written")
	}
}

// rsaxGenerate creates a small RSA key for registration tests.
func rsaxGenerate(t *testing.T) (*rsax.PublicKey, *rsax.PrivateKey) {
	t.Helper()
	k, err := rsax.GenerateKey(nil, 1024)
	if err != nil {
		t.Fatal(err)
	}
	return &k.PublicKey, k
}
