// Package attest implements ShEF's remote attestation protocol (paper
// Figure 3 and §4): the three-party exchange between the Data Owner, the
// IP Vendor, and the Security Kernel that proves device and bitstream
// authenticity, establishes a session key, and provisions the Bitstream
// Encryption Key and public Shield Encryption Key.
//
// All messages travel over ordinary net.Conn-style streams as
// length-prefixed JSON. The channel between the Security Kernel and the IP
// Vendor crosses the untrusted host CPU; the protocol's signatures and the
// DH-derived session key are what make that safe (paper §3: "while the
// Security Kernel relies on the host CPU to communicate with the IP
// Vendor, this channel is authenticated and encrypted").
package attest

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// maxMsgBytes bounds a single protocol message (defence against a
// malicious peer streaming garbage).
const maxMsgBytes = 1 << 20

// writeMsg sends v as length-prefixed JSON.
func writeMsg(w io.Writer, v any) error {
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("attest: encoding message: %w", err)
	}
	if len(body) > maxMsgBytes {
		return fmt.Errorf("attest: message of %d bytes exceeds limit", len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readMsg receives a length-prefixed JSON message into v.
func readMsg(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxMsgBytes {
		return fmt.Errorf("attest: message of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("attest: decoding message: %w", err)
	}
	return nil
}

// challenge is IP Vendor → Security Kernel (Figure 3 step 2): the nonce
// and the ephemeral Verification public key.
type challenge struct {
	Nonce    []byte `json:"nonce"`
	VerifPub []byte `json:"verif_pub"`
}

// reportMsg is Security Kernel → IP Vendor (step 4): the attestation
// report α, its signature σ_α, and the session-key certificate
// σ_SessionKey.
type reportMsg struct {
	Report      Report `json:"report"`
	SigE        []byte `json:"sig_e"`
	SigS        []byte `json:"sig_s"`
	SessionSigE []byte `json:"session_sig_e"`
	SessionSigS []byte `json:"session_sig_s"`
}

// Report is the attestation report α of Figure 3: the nonce, the encrypted
// bitstream hash, the attestation public key, the Security Kernel hash,
// and σ_SecKrnl.
type Report struct {
	Nonce         []byte `json:"nonce"`
	BitstreamHash []byte `json:"bitstream_hash"`
	AttestPub     []byte `json:"attest_pub"`
	KernelHash    []byte `json:"kernel_hash"`
	KernelCert    []byte `json:"kernel_cert"`
	DeviceSerial  string `json:"device_serial"`
}

// canonical returns the deterministic byte encoding of the report that
// gets signed. JSON with sorted keys via Marshal of a fixed struct is
// stable for our fixed field set.
func (r Report) canonical() []byte {
	b, err := json.Marshal(r)
	if err != nil {
		panic("attest: report encoding cannot fail: " + err.Error())
	}
	return append([]byte("shef/report:"), b...)
}

// keyDelivery is IP Vendor → Security Kernel (step 6): the Bitstream
// Encryption Key sealed under the session key.
type keyDelivery struct {
	Ciphertext []byte   `json:"ciphertext"`
	Tag        [16]byte `json:"tag"`
}

// vendorError carries a protocol rejection to the peer before closing.
type vendorError struct {
	Error string `json:"error,omitempty"`
	OK    bool   `json:"ok"`
}
