package experiments

import (
	"bytes"
	"fmt"
	"time"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/perf"
	"shef/internal/shield"
)

// TenantRow is one point of the tenant-scaling sweep: a fixed workload
// over one hot zone while Zones-1 idle tenant zones populate the region
// table. OverheadPct is the simulated region-resolution charge relative
// to the rest of the data path — the number the sim-region-lookup-
// overhead-pct ceiling gates at 5% — and HitPct is the lookup cache's
// hit rate. NsPerOp is the host wall-clock per access, for trend-
// watching only.
type TenantRow struct {
	Zones        int
	NsPerOp      float64
	HitPct       float64
	OverheadPct  float64
	LookupCycles uint64
}

// tenantZoneSize keeps each swept zone small: the sweep measures table
// scaling, not data-path bandwidth.
const tenantZoneSize = 1 << 13

// TenantSweep measures region-lookup behaviour as the tenant count
// grows. The flat-table failure mode this exists to catch: per-access
// resolution cost growing with the number of resident zones.
func TenantSweep(scale Scale) ([]TenantRow, error) {
	counts := []int{1, 16, 128}
	accesses := 2048
	if scale == Paper {
		counts = []int{1, 16, 256, 1024}
		accesses = 8192
	}
	params := perf.Default()
	out := make([]TenantRow, 0, len(counts))
	for _, zones := range counts {
		arena := uint64(zones) * tenantZoneSize
		dram := mem.NewDRAM(arena+(4<<20), params)
		ocm := mem.NewOCM(256 * 1000 * 1000)
		priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
		if err != nil {
			return nil, err
		}
		sh, err := shield.New(shield.Config{Registers: 4, ArenaEnd: arena}, priv, dram, ocm, params)
		if err != nil {
			return nil, err
		}
		dek := bytes.Repeat([]byte{0x5A}, 32)
		lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
		if err != nil {
			return nil, err
		}
		if err := sh.ProvisionLoadKey(lk); err != nil {
			return nil, err
		}
		for z := 0; z < zones; z++ {
			rc := shield.RegionConfig{
				Name: "zone", Tenant: fmt.Sprintf("tenant-%04d", z),
				Base: uint64(z) * tenantZoneSize, Size: tenantZoneSize, ChunkSize: 512,
				AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128,
				MAC: shield.HMAC, BufferBytes: 2 * 512,
			}
			if err := sh.CreateRegion(rc); err != nil {
				return nil, err
			}
		}
		buf := make([]byte, 512)
		sh.ResetStats()
		start := time.Now()
		for a := 0; a < accesses; a++ {
			addr := uint64(a%(tenantZoneSize/512)) * 512
			if _, err := sh.WriteBurst(addr, buf); err != nil {
				return nil, err
			}
		}
		elapsed := time.Since(start)
		rep := sh.Report()
		lk2 := rep.Lookup
		total := rep.TotalCycles()
		out = append(out, TenantRow{
			Zones:        zones,
			NsPerOp:      float64(elapsed.Nanoseconds()) / float64(accesses),
			HitPct:       float64(lk2.Hits) / float64(lk2.Hits+lk2.Misses) * 100,
			OverheadPct:  float64(lk2.Cycles) / float64(total-lk2.Cycles) * 100,
			LookupCycles: lk2.Cycles,
		})
	}
	return out, nil
}
