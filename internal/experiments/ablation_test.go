package experiments

import "testing"

// TestAblationChunkSize: the §5.2.1 trade-off must materialise — for
// streaming, larger chunks are cheaper per byte; for sparse random access,
// past the access granularity they get more expensive.
func TestAblationChunkSize(t *testing.T) {
	streaming, random, err := AblationChunkSize()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range streaming {
		t.Logf("streaming %-10s %8.0f cycles/KB (hits %d misses %d)", r.Label, r.CyclesPerKB, r.Hits, r.Misses)
		if i > 0 && r.CyclesPerKB > streaming[i-1].CyclesPerKB*1.02 {
			t.Errorf("streaming cost rose with chunk size at %s", r.Label)
		}
	}
	for _, r := range random {
		t.Logf("random    %-10s %8.0f cycles/KB (hits %d misses %d)", r.Label, r.CyclesPerKB, r.Hits, r.Misses)
	}
	// Random sparse 64B accesses: the 4 KB chunk must cost more per byte
	// than the 64 B chunk (unneeded bytes transferred + bigger MACs).
	if random[len(random)-1].CyclesPerKB <= random[0].CyclesPerKB {
		t.Errorf("random access: Cmem=4096 (%0.f) not more expensive than Cmem=64 (%0.f)",
			random[len(random)-1].CyclesPerKB, random[0].CyclesPerKB)
	}
}

// TestAblationBufferSize: once the buffer covers the 64 KB working set,
// cost collapses and stays flat.
func TestAblationBufferSize(t *testing.T) {
	rows, err := AblationBufferSize()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-14s %8.0f cycles/KB (hits %d misses %d, ocm %d bits)",
			r.Label, r.CyclesPerKB, r.Hits, r.Misses, r.OCMBits)
	}
	small := rows[0].CyclesPerKB  // 1 KB buffer: thrashing
	large := rows[3].CyclesPerKB  // 64 KB buffer: working set resident
	larger := rows[4].CyclesPerKB // 256 KB: no further gain
	if large > small/2 {
		t.Errorf("buffer at working-set size did not collapse cost: %.0f vs %.0f", large, small)
	}
	if larger < large*0.5 {
		t.Errorf("oversized buffer gained too much: %.0f vs %.0f (model suspicious)", larger, large)
	}
	if rows[4].OCMBits <= rows[0].OCMBits {
		t.Error("bigger buffer did not consume more on-chip memory")
	}
}

// TestAblationFreshness: counters cost on-chip memory and a little time,
// and buy replay protection (security checked in the shield tests).
func TestAblationFreshness(t *testing.T) {
	rows, err := AblationFreshness()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		t.Logf("%-26s %8.0f cycles/KB, ocm %d bits", r.Label, r.CyclesPerKB, r.OCMBits)
	}
	noFresh, fresh := rows[0], rows[1]
	if fresh.OCMBits <= noFresh.OCMBits {
		t.Error("freshness counters consumed no on-chip memory")
	}
	// 1 MB region at 64 B chunks: 16384 counters * 32 bits = 512 Kbit.
	if diff := fresh.OCMBits - noFresh.OCMBits; diff != 16384*32 {
		t.Errorf("counter storage = %d bits, want %d", diff, 16384*32)
	}
	if fresh.CyclesPerKB < noFresh.CyclesPerKB*0.95 {
		t.Error("freshness made the shield faster (model inconsistent)")
	}
}
