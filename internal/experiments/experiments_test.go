package experiments

import (
	"math"
	"testing"

	"shef/internal/accel"
)

// These tests assert that the reproduction preserves the *shape* of the
// paper's results — who wins, by roughly what factor, where the crossovers
// fall — at Quick scale. EXPERIMENTS.md records the paper-vs-measured
// values at Paper scale.

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	if len(rows) != 7 {
		t.Fatalf("Table 1 has %d rows, want 7", len(rows))
	}
	// Paper-reported percentages (BRAM, LUT, REG).
	want := map[string][3]float64{
		"Controller":     {0, 0.26, 0.03},
		"Engine Set":     {0.12, 0.12, 0.14},
		"Reg. Interface": {0, 0.36, 0.11},
		"AES-4x":         {0, 0.27, 0.13},
		"AES-16x":        {0, 0.32, 0.13},
		"HMAC":           {0, 0.44, 0.15},
		"PMAC":           {0, 0.28, 0.14},
	}
	for _, r := range rows {
		w := want[r.Component]
		if math.Abs(r.Util.BRAM-w[0]) > 0.02 || math.Abs(r.Util.LUT-w[1]) > 0.02 || math.Abs(r.Util.REG-w[2]) > 0.02 {
			t.Errorf("%s: %v, want %.2f/%.2f/%.2f", r.Component, r.Util, w[0], w[1], w[2])
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	rows, err := Figure5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string][]float64{}
	for _, r := range rows {
		byVariant[r.Variant.String()] = append(byVariant[r.Variant.String()], r.Overhead)
	}
	v4 := byVariant[accel.V128x4.String()]
	v16 := byVariant[accel.V128x16.String()]
	if len(v4) != len(v16) || len(v4) < 3 {
		t.Fatalf("unexpected row shape: %v", byVariant)
	}
	for i := range v4 {
		// 16x is never slower than 4x; all overheads >= ~1.
		if v16[i] > v4[i]+0.02 {
			t.Errorf("size %d: 16x (%.2f) slower than 4x (%.2f)", i, v16[i], v4[i])
		}
		if v4[i] < 0.98 || v16[i] < 0.98 {
			t.Errorf("size %d: overhead below 1 (%.2f / %.2f)", i, v4[i], v16[i])
		}
	}
	// 4x overhead grows with vector size (crypto-bound regime); 16x stays
	// below 1.6x everywhere ("drops below 50% for all vector sizes" with
	// model tolerance).
	if !(v4[len(v4)-1] > v4[0]) {
		t.Errorf("AES/4x overhead does not grow with size: %v", v4)
	}
	if v4[len(v4)-1] < 1.5 {
		t.Errorf("AES/4x large-size overhead %.2f, want crypto-bound (>1.5)", v4[len(v4)-1])
	}
	for i, o := range v16 {
		if o > 1.6 {
			t.Errorf("AES/16x overhead %.2f at size %d exceeds 1.6", o, i)
		}
	}
}

func TestMatMulLessPronounced(t *testing.T) {
	mm, err := MatMulOverhead(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// Paper §6.2.2: max 1.26x for AES/4x — far below vecadd's 4x point.
	if mm < 1.02 || mm > 1.6 {
		t.Errorf("matmul AES/4x overhead %.2f outside [1.02, 1.6] (paper: 1.26)", mm)
	}
	rows, err := Figure5(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var vecaddLargest float64
	for _, r := range rows {
		if r.Variant == accel.V128x4 && r.Overhead > vecaddLargest {
			vecaddLargest = r.Overhead
		}
	}
	if mm >= vecaddLargest {
		t.Errorf("matmul (%.2f) not lower than vecadd 4x (%.2f): compute density lost", mm, vecaddLargest)
	}
}

// figure6Bands holds per-workload overhead bands at Quick scale, centred
// on the paper's Figure 6 values with model tolerance. Deviations are
// documented in EXPERIMENTS.md.
var figure6Bands = map[string][2]float64{
	"conv":      {1.05, 2.10}, // paper: 1.20-1.35
	"digitrec":  {1.70, 4.50}, // paper: 1.85-3.15
	"affine":    {1.20, 1.95}, // paper: 1.41-2.22 (streamed output rows cheapen the bare baseline, raising relative overhead)
	"dnnweaver": {2.70, 4.30}, // paper: 3.20-3.83 (HMAC bars)
	"bitcoin":   {0.99, 1.10}, // paper: ~1.0
}

func TestFigure6Shape(t *testing.T) {
	rows, err := Figure6(Quick)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]map[string]float64{}
	for _, r := range rows {
		if got[r.Workload] == nil {
			got[r.Workload] = map[string]float64{}
		}
		got[r.Workload][r.Variant.String()] = r.Overhead
		t.Logf("%-10s %-16s %.2fx", r.Workload, r.Variant, r.Overhead)
	}
	for wl, band := range figure6Bands {
		for v, o := range got[wl] {
			if v == accel.V128x16PMAC.String() {
				continue // checked separately below
			}
			lo, hi := band[0], band[1]
			// The 4x bars may exceed the nominal band for mem-bound
			// workloads; apply the wide bound only to the 16x bars.
			if v == accel.V128x16.String() || v == accel.V256x16.String() {
				if o < lo || o > hi {
					t.Errorf("%s %s overhead %.2f outside [%.2f, %.2f]", wl, v, o, lo, hi)
				}
			} else if o < lo-0.05 || o > hi*2.2 {
				t.Errorf("%s %s overhead %.2f wildly outside band [%.2f, %.2f]", wl, v, o, lo, hi)
			}
		}
	}
	// Orderings the paper reports.
	for wl, vs := range got {
		if vs[accel.V128x4.String()]+0.02 < vs[accel.V128x16.String()] {
			t.Errorf("%s: 4x faster than 16x", wl)
		}
		if vs[accel.V256x16.String()]+0.02 < vs[accel.V128x16.String()] {
			t.Errorf("%s: AES-256 faster than AES-128", wl)
		}
	}
	// DNNWeaver: PMAC substantially beats HMAC (paper: 3.20 -> 2.31).
	dw := got["dnnweaver"]
	hmac := dw[accel.V128x16.String()]
	pmac := dw[accel.V128x16PMAC.String()]
	if pmac >= hmac-0.5 {
		t.Errorf("dnnweaver PMAC (%.2f) does not substantially improve on HMAC (%.2f)", pmac, hmac)
	}
	if pmac < 1.2 || pmac > 2.9 {
		t.Errorf("dnnweaver PMAC overhead %.2f outside [1.2, 2.9] (paper: 2.31)", pmac)
	}
	// Bitcoin is the near-zero-overhead register workload; conv the lowest
	// of the memory workloads (compute dense).
	if got["bitcoin"][accel.V128x16.String()] > got["conv"][accel.V128x16.String()] {
		t.Error("bitcoin overhead exceeds conv")
	}
	if got["conv"][accel.V128x16.String()] > got["dnnweaver"][accel.V128x16.String()] {
		t.Error("conv overhead exceeds dnnweaver (compute density inverted)")
	}
}

func TestTable3MatchesPaperShape(t *testing.T) {
	rows, err := Table3(Quick)
	if err != nil {
		t.Fatal(err)
	}
	util := map[string]float64{}
	for _, r := range rows {
		util[r.Workload] = r.Util.LUT
		// Paper: all single-digit-ish percentages (max 11% LUT).
		if r.Util.LUT > 13 || r.Util.BRAM > 5 || r.Util.REG > 7 {
			t.Errorf("%s: utilisation too high: %v", r.Workload, r.Util)
		}
	}
	// Paper's ordering: conv and affine are the largest (≈11% LUT each),
	// bitcoin the smallest (1.4%).
	if !(util["bitcoin"] < util["digitrec"] && util["digitrec"] < util["conv"]) {
		t.Errorf("LUT ordering wrong: %v", util)
	}
	if util["bitcoin"] > 2 {
		t.Errorf("bitcoin shield uses %.1f%% LUT, want ~1.4%%", util["bitcoin"])
	}
	if util["conv"] < 9 || util["affine"] < 9 {
		t.Errorf("conv/affine should be ~11%% LUT: %v", util)
	}
}

func TestBootTimelineExperiment(t *testing.T) {
	stages, total, vm, f1 := BootTimeline()
	if len(stages) == 0 {
		t.Fatal("no boot stages")
	}
	if math.Abs(total-5.1) > 0.01 {
		t.Errorf("boot total %.2f s, want 5.1 s", total)
	}
	if total >= vm {
		t.Error("secure boot not faster than VM boot")
	}
	if f1 <= 0 {
		t.Error("missing F1 reference")
	}
}

func TestTable2ViaExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("1MB sweep in -short mode")
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 2 has %d rows", len(rows))
	}
}
