package experiments

import (
	"fmt"
	"sync"
	"time"

	"shef/internal/crypto/aesx"
	"shef/internal/sdp"
	"shef/internal/shield"
)

// ---------------------------------------------------------------------
// Cluster throughput: the §6.2.3 SDP case study grown to a serving fleet.
// Not a paper table — this is the ROADMAP's "millions of users" direction:
// aggregate ops/sec across sharded Storage Nodes, swept over shard count
// (fleet size) and goroutine count (offered load).

// ClusterRow is one point of the throughput sweep.
type ClusterRow struct {
	Shards  int
	Workers int
	Ops     int
	// Elapsed is host wall-clock for the measured window; OpsPerSec is the
	// real (not simulated) aggregate rate, which is what scales with the
	// fleet once the data path runs on goroutines.
	Elapsed   time.Duration
	OpsPerSec float64
	// SimMaxBusy is the busiest shard's simulated busy cycles — the fleet
	// analogue of the Shield's max-across-engine-sets wall-clock model.
	// SimOpsPerSec is the corresponding simulated aggregate rate
	// (ops / SimMaxBusy at the Storage Node line-rate clock): on a
	// single-core CI host real ops/sec cannot exceed one shard's rate, but
	// the simulated rate still shows how the fleet scales.
	SimMaxBusy   uint64
	SimOpsPerSec float64
}

// clusterNodeConfig sizes the per-shard Storage Node for the sweep: PMAC
// engines (the paper's fast configuration) and enough slots that hash skew
// cannot overflow a shard.
func clusterNodeConfig() sdp.NodeConfig {
	return sdp.NodeConfig{
		Slots: 64, SlotBytes: 16 << 10, AuthBlock: 4096,
		Engines: 4, SBox: aesx.SBox16x, MAC: shield.PMAC,
		BufferBytes: 16 << 10,
	}
}

// runClusterLoad builds a cluster and drives workers concurrent
// Put/Get pairs against it, returning the measured row.
func runClusterLoad(shards, workers, opsPerWorker, payloadBytes int) (ClusterRow, error) {
	c, err := sdp.NewCluster(sdp.ClusterConfig{Shards: shards, Node: clusterNodeConfig()})
	if err != nil {
		return ClusterRow{}, err
	}
	if err := c.RegisterUser("load", []byte("load-key")); err != nil {
		return ClusterRow{}, err
	}
	payload := make([]byte, payloadBytes)
	for i := range payload {
		payload[i] = byte(i)
	}
	// Warm one file per worker so the measured window is steady-state.
	for w := 0; w < workers; w++ {
		if err := c.Put("load", fmt.Sprintf("w%d", w), payload); err != nil {
			return ClusterRow{}, err
		}
	}
	c.ResetStats()
	errs := make([]error, workers)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("w%d", w)
			for i := 0; i < opsPerWorker; i++ {
				if err := c.Put("load", name, payload); err != nil {
					errs[w] = err
					return
				}
				if _, err := c.Get("load", name); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ClusterRow{}, err
		}
	}
	ops := workers * opsPerWorker * 2
	row := ClusterRow{
		Shards:     shards,
		Workers:    workers,
		Ops:        ops,
		Elapsed:    elapsed,
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		SimMaxBusy: c.Stats().MaxBusy,
	}
	if row.SimMaxBusy > 0 {
		row.SimOpsPerSec = float64(ops) / sdp.LineRateParams().Seconds(row.SimMaxBusy)
	}
	return row, nil
}

func clusterOps(scale Scale) (opsPerWorker, payload int) {
	if scale == Paper {
		return 32, 8 << 10
	}
	return 8, 4 << 10
}

// ClusterThroughput sweeps fleet size at a fixed offered load (eight
// client goroutines): aggregate ops/sec should grow with shards until the
// client count is the limit.
func ClusterThroughput(scale Scale) ([]ClusterRow, error) {
	ops, payload := clusterOps(scale)
	var rows []ClusterRow
	for _, shards := range []int{1, 2, 4, 8} {
		row, err := runClusterLoad(shards, 8, ops, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ClusterWorkerSweep sweeps offered load (client goroutines) over a fixed
// four-shard fleet: throughput should rise until workers saturate the
// shards they hash onto.
func ClusterWorkerSweep(scale Scale) ([]ClusterRow, error) {
	ops, payload := clusterOps(scale)
	var rows []ClusterRow
	for _, workers := range []int{1, 2, 4, 8, 16} {
		row, err := runClusterLoad(4, workers, ops, payload)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
