package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"shef/internal/crypto/aesx"
	"shef/internal/sdp"
	"shef/internal/shield"
)

// ---------------------------------------------------------------------
// Cluster throughput: the §6.2.3 SDP case study grown to a serving fleet.
// Not a paper table — this is the ROADMAP's "millions of users" direction:
// aggregate ops/sec across sharded Storage Nodes, swept over shard count
// (fleet size) and goroutine count (offered load).

// ClusterRow is one point of the throughput sweep.
type ClusterRow struct {
	Shards  int
	Workers int
	Ops     int
	// Elapsed is host wall-clock for the measured window; OpsPerSec is the
	// real (not simulated) aggregate rate, which is what scales with the
	// fleet once the data path runs on goroutines.
	Elapsed   time.Duration
	OpsPerSec float64
	// SimMaxBusy is the busiest shard's simulated busy cycles — the fleet
	// analogue of the Shield's max-across-engine-sets wall-clock model.
	// SimOpsPerSec is the corresponding simulated aggregate rate
	// (ops / SimMaxBusy at the Storage Node line-rate clock): on a
	// single-core CI host real ops/sec cannot exceed one shard's rate, but
	// the simulated rate still shows how the fleet scales.
	SimMaxBusy   uint64
	SimOpsPerSec float64
}

// TimerControl is the subset of testing.B the sweeps use to exclude
// cluster construction, sealed key-DB provisioning, and cache warm-up
// from the measured window. A nil TimerControl is ignored (the benchtab
// path, which reports wall-clock per row itself).
type TimerControl interface {
	StopTimer()
	StartTimer()
}

// Fleet-sweep workload geometry. The file set is larger than any single
// shard's on-chip capacity but fits the eight-shard fleet's aggregate:
// at clusterPayload = 8 KB (two 4 KB auth blocks) the 16-file working
// set needs 32 buffer lines and ~132 KB of sealed responses, against a
// per-shard store buffer of 4 lines and a 24 KB response cache. One
// shard thrashes both (every Get refetches and re-seals); spread over
// eight shards each node holds its two files' store lines and sealed
// responses resident. That aggregate-capacity cliff — not goroutine
// parallelism, which a one-core CI host cannot provide — is what makes
// real ops/sec scale with the fleet.
const (
	clusterFiles    = 16
	clusterPayload  = 8 << 10
	clusterGetsPut  = 3 // measured mix: 1 Put : 3 Gets, the serving shape
	clusterWorkers8 = 8
)

// clusterNodeConfig sizes the per-shard Storage Node for the sweep: PMAC
// engines (the paper's fast configuration), slots for the whole file set
// (any shard may be asked for any file), the serving-tier WriteBack
// policy, and the sealed-response cache sized to hold the home files of
// a balanced eight-shard placement.
func clusterNodeConfig() sdp.NodeConfig {
	return sdp.NodeConfig{
		Slots: 64, SlotBytes: 16 << 10, AuthBlock: 4096,
		Engines: 4, SBox: aesx.SBox16x, MAC: shield.PMAC,
		BufferBytes:        16 << 10,
		WriteBack:          true,
		ResponseCacheBytes: 24 << 10,
	}
}

// clusterFileSet picks file names whose FNV routing is balanced at eight
// shards (exactly two files per shard, which also balances the 2- and
// 4-shard sweeps since those fold shard pairs together). Skew would let
// one overloaded shard cap the whole fleet's measured rate.
func clusterFileSet() []string {
	names := make([]string, 0, clusterFiles)
	perShard := make([]int, 8)
	for i := 0; len(names) < clusterFiles; i++ {
		name := fmt.Sprintf("f%03d", i)
		if s := sdp.ShardIndex(name, 8); perShard[s] < clusterFiles/8 {
			perShard[s]++
			names = append(names, name)
		}
	}
	return names
}

// clusterFile is one file of the shared working set: its name, distinct
// payload, and the pre-sealed Put image workers replay (GetSealed reuses
// the session staging buffers, so the image keeps its own copy).
type clusterFile struct {
	name    string
	payload []byte
	putCT   []byte
	putTags []byte
}

// runClusterLoad builds a cluster and drives workers goroutines over the
// shared file set: each worker strides the files from its own phase,
// issuing one Put per clusterGetsPut+1 operations. Striding (instead of
// each worker camping on one file) is what a serving tier sees — the
// request stream interleaves tenants — and it is what defeats a single
// shard's caches while leaving a balanced fleet's residency intact.
func runClusterLoad(tc TimerControl, shards, workers, opsPerWorker int) (ClusterRow, error) {
	if tc != nil {
		tc.StopTimer()
		defer tc.StartTimer()
	}
	c, err := sdp.NewCluster(sdp.ClusterConfig{Shards: shards, Node: clusterNodeConfig()})
	if err != nil {
		return ClusterRow{}, err
	}
	if err := c.RegisterUser("load", []byte("load-key")); err != nil {
		return ClusterRow{}, err
	}
	// Provision the working set before the window opens: seal each file's
	// Put image once on a Data-Owner session, store it, and serve it once
	// so first-touch fetches land outside the window.
	seeder, err := c.NewClient()
	if err != nil {
		return ClusterRow{}, err
	}
	files := make([]*clusterFile, clusterFiles)
	for i, name := range clusterFileSet() {
		payload := make([]byte, clusterPayload)
		for j := range payload {
			payload[j] = byte(j + i*37)
		}
		ct, tags, err := seeder.Session(name).Seal(payload)
		if err != nil {
			return ClusterRow{}, err
		}
		files[i] = &clusterFile{
			name:    name,
			payload: payload,
			putCT:   append([]byte(nil), ct...),
			putTags: append([]byte(nil), tags...),
		}
		if err := seeder.PutSealed("load", name, len(payload), ct, tags); err != nil {
			return ClusterRow{}, err
		}
		if _, _, err := seeder.GetSealed("load", name); err != nil {
			return ClusterRow{}, err
		}
	}
	clients := make([]*sdp.Client, workers)
	for w := range clients {
		if clients[w], err = c.NewClient(); err != nil {
			return ClusterRow{}, err
		}
	}
	c.ResetStats()
	errs := make([]error, workers)
	if tc != nil {
		tc.StartTimer()
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			phase := w * clusterFiles / workers
			for i := 0; i < opsPerWorker; i++ {
				f := files[(phase+i)%clusterFiles]
				if i%(clusterGetsPut+1) == 0 {
					if err := cl.PutSealed("load", f.name, len(f.payload), f.putCT, f.putTags); err != nil {
						errs[w] = err
						return
					}
				} else if _, _, err := cl.GetSealed("load", f.name); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if tc != nil {
		tc.StopTimer()
	}
	for _, err := range errs {
		if err != nil {
			return ClusterRow{}, err
		}
	}
	// Post-window correctness: open every file on the client side — through
	// whatever mix of response cache and full data path serves it — and
	// check the distinct payloads round-trip, then drain dirty store lines.
	for _, f := range files {
		size, sess, err := seeder.GetSealed("load", f.name)
		if err != nil {
			return ClusterRow{}, err
		}
		ct, tags := sess.Buffers()
		got, err := sess.Open(nil, ct, tags, size)
		if err != nil {
			return ClusterRow{}, err
		}
		if !bytes.Equal(got, f.payload) {
			return ClusterRow{}, fmt.Errorf("experiments: %s corrupted through the sealed serving path", f.name)
		}
	}
	if err := c.Sync(); err != nil {
		return ClusterRow{}, err
	}
	ops := workers * opsPerWorker
	row := ClusterRow{
		Shards:     shards,
		Workers:    workers,
		Ops:        ops,
		Elapsed:    elapsed,
		OpsPerSec:  float64(ops) / elapsed.Seconds(),
		SimMaxBusy: c.Stats().MaxBusy,
	}
	if row.SimMaxBusy > 0 {
		row.SimOpsPerSec = float64(ops) / sdp.LineRateParams().Seconds(row.SimMaxBusy)
	}
	return row, nil
}

// clusterOps returns ops per worker: enough iterations at Paper scale for
// a steady-state window, trimmed for Quick. (The payload is fixed — the
// working-set-to-buffer geometry above is the experiment.)
func clusterOps(scale Scale) int {
	if scale == Paper {
		return 256
	}
	return 64
}

// ClusterThroughput sweeps fleet size at a fixed offered load (eight
// client goroutines): aggregate ops/sec should grow with shards until the
// client count is the limit.
func ClusterThroughput(tc TimerControl, scale Scale) ([]ClusterRow, error) {
	ops := clusterOps(scale)
	var rows []ClusterRow
	for _, shards := range []int{1, 2, 4, 8} {
		row, err := runClusterLoad(tc, shards, clusterWorkers8, ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ClusterWorkerSweep sweeps offered load (client goroutines) over a fixed
// four-shard fleet: throughput should rise until workers saturate the
// shards they hash onto.
func ClusterWorkerSweep(tc TimerControl, scale Scale) ([]ClusterRow, error) {
	ops := clusterOps(scale)
	var rows []ClusterRow
	for _, workers := range []int{1, 2, 4, 8, 16} {
		row, err := runClusterLoad(tc, 4, workers, ops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}
