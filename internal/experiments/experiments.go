// Package experiments regenerates every table and figure of the paper's
// evaluation (§6) from the simulated ShEF stack. Each experiment returns
// structured rows; cmd/benchtab renders them as text and bench_test.go
// wraps them in testing.B benchmarks. EXPERIMENTS.md records paper-vs-
// measured values.
package experiments

import (
	"fmt"

	"shef/internal/accel"
	"shef/internal/boot"
	"shef/internal/fpga"
	"shef/internal/perf"
	"shef/internal/sdp"
	"shef/internal/shield"
)

// Scale selects experiment sizing: Quick keeps functional runs fast for
// unit tests; Paper uses the paper's workload dimensions.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota
	Paper
)

// ---------------------------------------------------------------------
// Table 1: Shield component utilisation on AWS F1.

// Table1Row is one component line of Table 1.
type Table1Row struct {
	Component string
	Res       fpga.Resources
	Util      shield.Utilization
}

// Table1 regenerates the component table from the area model.
func Table1() []Table1Row {
	rows := []struct {
		name string
		res  fpga.Resources
	}{
		{"Controller", shield.ControllerArea},
		{"Engine Set", shield.EngineSetArea},
		{"Reg. Interface", shield.RegInterfaceArea},
		{"AES-4x", shield.AES4xArea},
		{"AES-16x", shield.AES16xArea},
		{"HMAC", shield.HMACArea},
		{"PMAC", shield.PMACArea},
	}
	out := make([]Table1Row, 0, len(rows))
	for _, r := range rows {
		out = append(out, Table1Row{
			Component: r.name,
			Res:       r.res,
			Util:      shield.UtilizationOn(r.res, fpga.VU9P),
		})
	}
	return out
}

// ---------------------------------------------------------------------
// Figure 5: vector add (and §6.2.2 matmul) throughput overhead.

// Fig5Row is one (size, variant) point of Figure 5.
type Fig5Row struct {
	InputKB  int
	Variant  accel.Variant
	Overhead float64
}

// Figure5Sizes returns the vector sizes swept, in bytes.
func Figure5Sizes(scale Scale) []int {
	if scale == Paper {
		// The paper's x-axis: 8 KB to 80 MB per input vector.
		return []int{8 << 10, 80 << 10, 800 << 10, 8 << 20, 80 << 20}
	}
	return []int{8 << 10, 80 << 10, 800 << 10}
}

// Figure5 sweeps vecadd sizes for the AES/4x and AES/16x configurations.
func Figure5(scale Scale) ([]Fig5Row, error) {
	params := perf.Default()
	var rows []Fig5Row
	for _, size := range Figure5Sizes(scale) {
		p := map[string]string{"bytes": fmt.Sprint(size)}
		mk := func() (accel.Workload, error) { return accel.New("vecadd", p) }
		w, err := mk()
		if err != nil {
			return nil, err
		}
		bare, err := accel.RunBare(w, params, 11)
		if err != nil {
			return nil, err
		}
		for _, v := range []accel.Variant{accel.V128x4, accel.V128x16} {
			w2, _ := mk()
			sec, err := accel.RunShielded(w2, v, params, 11)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig5Row{
				InputKB:  size >> 10,
				Variant:  v,
				Overhead: accel.Overhead(sec, bare),
			})
		}
	}
	return rows, nil
}

// MatMulOverhead reproduces the §6.2.2 remark: matrix multiply peaks at
// 1.26x for AES/4x because it computes more per byte.
func MatMulOverhead(scale Scale) (float64, error) {
	params := perf.Default()
	// n=256 with a 32-lane MAC array puts the compute/memory balance in
	// the regime the paper describes (more computation per byte than
	// vecadd); size is scale-independent.
	_ = scale
	p := map[string]string{"n": "256"}
	w, err := accel.New("matmul", p)
	if err != nil {
		return 0, err
	}
	bare, err := accel.RunBare(w, params, 12)
	if err != nil {
		return 0, err
	}
	w2, _ := accel.New("matmul", p)
	sec, err := accel.RunShielded(w2, accel.V128x4, params, 12)
	if err != nil {
		return 0, err
	}
	return accel.Overhead(sec, bare), nil
}

// ---------------------------------------------------------------------
// Table 2: SDP Shield configuration sweep (delegated to package sdp).

// Table2 regenerates the SDP overhead sweep.
func Table2() ([]sdp.Table2Row, error) { return sdp.Table2() }

// ---------------------------------------------------------------------
// Figure 6: five workloads across Shield engine configurations.

// Fig6Row is one bar of Figure 6.
type Fig6Row struct {
	Workload string
	Variant  accel.Variant
	Overhead float64
	Shielded accel.RunResult
	Bare     accel.RunResult
}

// Figure6Workloads lists the workloads of Figure 6 in paper order.
var Figure6Workloads = []string{"conv", "digitrec", "affine", "dnnweaver", "bitcoin"}

// figure6Params sizes each workload per scale.
func figure6Params(name string, scale Scale) map[string]string {
	if scale == Paper {
		switch name {
		case "conv":
			// The paper's layer: 27×27×96 in, 5×5 filters, 27×27×256 out.
			// The 640-lane MAC array matches the compute density the
			// paper's batched implementation achieves.
			return map[string]string{"cin": "96", "cout": "256", "batch": "1", "lanes": "640"}
		case "digitrec":
			return map[string]string{"train": "16384", "tests": "192", "units": "16"}
		case "affine":
			return map[string]string{"dim": "512"}
		case "dnnweaver":
			return map[string]string{"batch": "48"}
		case "bitcoin":
			return map[string]string{"difficulty": "18"}
		}
		return nil
	}
	switch name {
	case "conv":
		return map[string]string{"cin": "32", "cout": "96", "batch": "1", "lanes": "1024"}
	case "digitrec":
		return map[string]string{"train": "8192", "tests": "64"}
	case "affine":
		return map[string]string{"dim": "256"}
	case "dnnweaver":
		return map[string]string{"batch": "24"}
	case "bitcoin":
		return map[string]string{"difficulty": "15"}
	}
	return nil
}

// Figure6Variants lists the engine configurations per workload: the four
// AES variants everywhere, plus the PMAC bar for DNNWeaver (§6.2.4).
func Figure6VariantsFor(name string) []accel.Variant {
	vs := append([]accel.Variant(nil), accel.Figure6Variants...)
	if name == "dnnweaver" {
		vs = append(vs, accel.V128x16PMAC)
	}
	return vs
}

// Figure6 runs the full grid.
func Figure6(scale Scale) ([]Fig6Row, error) {
	params := perf.Default()
	var rows []Fig6Row
	for _, name := range Figure6Workloads {
		p := figure6Params(name, scale)
		w, err := accel.New(name, p)
		if err != nil {
			return nil, err
		}
		bare, err := accel.RunBare(w, params, 21)
		if err != nil {
			return nil, fmt.Errorf("%s bare: %w", name, err)
		}
		for _, v := range Figure6VariantsFor(name) {
			w2, _ := accel.New(name, p)
			sec, err := accel.RunShielded(w2, v, params, 21)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", name, v, err)
			}
			rows = append(rows, Fig6Row{
				Workload: name,
				Variant:  v,
				Overhead: accel.Overhead(sec, bare),
				Shielded: sec,
				Bare:     bare,
			})
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table 3: inclusive resource utilisation of the largest Shield config.

// Table3Row is one accelerator column of Table 3.
type Table3Row struct {
	Workload string
	Res      fpga.Resources
	Util     shield.Utilization
}

// Table3 computes the area of each workload's largest (AES/16x) Shield.
func Table3(scale Scale) ([]Table3Row, error) {
	var rows []Table3Row
	for _, name := range Figure6Workloads {
		w, err := accel.New(name, figure6Params(name, Paper))
		if err != nil {
			return nil, err
		}
		cfg := w.ShieldConfig(accel.V128x16)
		res := shield.Area(cfg)
		rows = append(rows, Table3Row{
			Workload: name,
			Res:      res,
			Util:     shield.UtilizationOn(res, fpga.VU9P),
		})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// §6.1: end-to-end secure boot time.

// BootRow is one stage of the boot timeline.
type BootRow struct {
	Stage   string
	Seconds float64
}

// BootTimeline reports the modelled Ultra96 boot stages and references.
func BootTimeline() (stages []BootRow, total, vmBoot, f1Load float64) {
	for _, s := range boot.Timeline {
		stages = append(stages, BootRow{Stage: s.Name, Seconds: s.Seconds})
	}
	return stages, boot.TotalBootSeconds(), boot.VMBootSeconds, boot.F1BitstreamLoadSeconds
}
