package experiments

import (
	"math/rand"

	"shef/internal/crypto/aesx"
	"shef/internal/oram"
	"shef/internal/shield"
)

// ---------------------------------------------------------------------
// ORAM path cost: the §5.2.2 oblivious-access extension measured on the
// serving-tier Shield configuration. Serial is the per-bucket chunked
// baseline; batched gathers the root-to-leaf path into one pipelined
// scatter-gather stream. Both are deterministic simulated-cycle numbers,
// so benchtab gates them (sim-oram-*).

// ORAMPoint is one controller mode's measured cost.
type ORAMPoint struct {
	Mode            string
	Blocks          int // tree size the point was measured at
	BlockSize       int
	CyclesPerAccess float64
	Amplification   float64
}

// oramExperimentShield builds a provisioned one-region Shield sized for
// the configuration: 16 AES engines, PMAC, 512 B chunks — the streaming
// headline engine set.
func oramExperimentShield(cfg oram.Config) (*shield.Shield, error) {
	foot := cfg.FootprintBytes()
	regionSize := (foot + 511) / 512 * 512
	sh, _, err := buildShield(shield.RegionConfig{
		Name: "oram", Base: 0, Size: regionSize, ChunkSize: 512,
		AESEngines: 16, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		MAC: shield.PMAC, BufferBytes: 8 << 10, Freshness: true,
	})
	return sh, err
}

// oramDrive runs a deterministic read/write mix and returns the point.
func oramDrive(cfg oram.Config, mode string, ops int) (ORAMPoint, error) {
	sh, err := oramExperimentShield(cfg)
	if err != nil {
		return ORAMPoint{}, err
	}
	o, err := oram.NewWithConfig(sh, cfg)
	if err != nil {
		return ORAMPoint{}, err
	}
	rng := rand.New(rand.NewSource(77))
	data := make([]byte, cfg.BlockSize)
	for i := 0; i < ops; i++ {
		b := rng.Intn(cfg.Blocks)
		if i%2 == 0 {
			rng.Read(data)
			if err := o.Write(b, data); err != nil {
				return ORAMPoint{}, err
			}
		} else if _, err := o.Read(b); err != nil {
			return ORAMPoint{}, err
		}
	}
	return ORAMPoint{
		Mode:            mode,
		Blocks:          cfg.Blocks,
		BlockSize:       cfg.BlockSize,
		CyclesPerAccess: float64(o.Cycles()) / float64(ops),
		Amplification:   o.Amplification(),
	}, nil
}

// ORAMPathSweep measures the serial per-bucket path against the batched
// scatter-gather path at the acceptance geometry (4096 blocks × 512 B at
// paper scale, 1024 × 512 at quick scale).
func ORAMPathSweep(scale Scale) (serial, batched ORAMPoint, err error) {
	blocks := 1024
	if scale == Paper {
		blocks = 4096
	}
	const bs, ops = 512, 40
	serialCfg := oram.Config{Blocks: blocks, BlockSize: bs, Seed: 5, Serial: true}
	batchedCfg := oram.Config{Blocks: blocks, BlockSize: bs, Seed: 5, ChunkAlign: 512}
	if serial, err = oramDrive(serialCfg, "serial per-bucket", ops); err != nil {
		return serial, batched, err
	}
	if batched, err = oramDrive(batchedCfg, "batched gather", ops); err != nil {
		return serial, batched, err
	}
	return serial, batched, nil
}
