package experiments

import (
	"fmt"
	"math/rand"

	"shef/internal/crypto/aesx"
	"shef/internal/crypto/keywrap"
	"shef/internal/crypto/modp"
	"shef/internal/crypto/schnorr"
	"shef/internal/mem"
	"shef/internal/oram"
	"shef/internal/perf"
	"shef/internal/shield"
)

// The ablations quantify the design choices DESIGN.md calls out: chunk
// size (Cmem) against access pattern, on-chip buffer capacity against
// working-set size, and the price of freshness counters. They drive a
// single-region Shield directly with synthetic traffic.

// AblationRow is one configuration point.
type AblationRow struct {
	Label string
	// CyclesPerKB is simulated memory-path cost per KB of accelerator
	// traffic.
	CyclesPerKB float64
	// Hits and Misses describe buffer behaviour.
	Hits, Misses uint64
	// OCMBits is on-chip memory consumed by the engine set.
	OCMBits uint64
}

// buildShield provisions a one-region Shield over fresh DRAM/OCM — the
// shared boilerplate for every single-region experiment.
func buildShield(region shield.RegionConfig) (*shield.Shield, *mem.OCM, error) {
	cfg := shield.Config{Regions: []shield.RegionConfig{region}}
	params := perf.Default()
	dram := mem.NewDRAM(region.Size*2+1<<20, params)
	ocm := mem.NewOCM(1 << 31)
	priv, err := schnorr.GenerateKey(modp.TestGroup, nil)
	if err != nil {
		return nil, nil, err
	}
	sh, err := shield.New(cfg, priv, dram, ocm, params)
	if err != nil {
		return nil, nil, err
	}
	dek := make([]byte, 32)
	lk, err := keywrap.Wrap(sh.PublicKey(), dek, nil)
	if err != nil {
		return nil, nil, err
	}
	if err := sh.ProvisionLoadKey(lk); err != nil {
		return nil, nil, err
	}
	return sh, ocm, nil
}

// ablationShield builds a one-region Shield with the given knobs.
func ablationShield(chunk, bufBytes int, mac shield.MACKind, fresh bool, size uint64) (*shield.Shield, *mem.OCM, error) {
	return buildShield(shield.RegionConfig{
		Name: "r", Base: 0, Size: size, ChunkSize: chunk,
		AESEngines: 1, SBox: aesx.SBox16x, KeySize: aesx.AES128,
		MAC: mac, BufferBytes: bufBytes, Freshness: fresh,
	})
}

// AblationChunkSize sweeps Cmem for two access patterns: sequential
// streaming (large chunks amortise tags and MAC finalisation) and sparse
// random 64-byte reads (large chunks transfer unneeded bytes). This is the
// paper's §5.2.1 trade-off made quantitative.
func AblationChunkSize() ([]AblationRow, []AblationRow, error) {
	const size = 1 << 20
	chunks := []int{64, 256, 512, 1024, 4096}
	var streaming, random []AblationRow
	for _, c := range chunks {
		// Streaming: write the region once, read it once.
		sh, _, err := ablationShield(c, 4*c, shield.HMAC, false, size)
		if err != nil {
			return nil, nil, err
		}
		buf := make([]byte, 4096)
		for off := uint64(0); off < size; off += 4096 {
			if _, err := sh.WriteBurst(off, buf); err != nil {
				return nil, nil, err
			}
		}
		sh.Flush()
		for off := uint64(0); off < size; off += 4096 {
			if _, err := sh.ReadBurst(off, buf); err != nil {
				return nil, nil, err
			}
		}
		rep := sh.Report()
		streaming = append(streaming, AblationRow{
			Label:       fmt.Sprintf("Cmem=%d", c),
			CyclesPerKB: float64(rep.MemoryCycles()) / (2 * size / 1024),
			Hits:        rep.Regions[0].Hits,
			Misses:      rep.Regions[0].Misses,
		})

		// Random: sparse 64-byte writes then reads scattered over the
		// region — the graph-processing pattern of §5.2.1.
		sh2, _, err := ablationShield(c, 8*c, shield.HMAC, false, size)
		if err != nil {
			return nil, nil, err
		}
		rng := rand.New(rand.NewSource(5))
		small := make([]byte, 64)
		var traffic uint64
		for i := 0; i < 4096; i++ {
			addr := uint64(rng.Intn(size/64)) * 64
			if i%2 == 0 {
				_, err = sh2.WriteBurst(addr, small)
			} else {
				_, err = sh2.ReadBurst(addr, small)
			}
			if err != nil {
				return nil, nil, err
			}
			traffic += 64
		}
		if err := sh2.Flush(); err != nil {
			return nil, nil, err
		}
		rep2 := sh2.Report()
		random = append(random, AblationRow{
			Label:       fmt.Sprintf("Cmem=%d", c),
			CyclesPerKB: float64(rep2.MemoryCycles()) / (float64(traffic) / 1024),
			Hits:        rep2.Regions[0].Hits,
			Misses:      rep2.Regions[0].Misses,
		})
	}
	return streaming, random, nil
}

// AblationBufferSize sweeps the on-chip buffer against a fixed random
// working set, showing the miss-rate knee the paper exploits for
// DNNWeaver's feature maps.
func AblationBufferSize() ([]AblationRow, error) {
	const size = 1 << 18 // 256 KB region
	const chunk = 64
	var rows []AblationRow
	for _, buf := range []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10} {
		sh, ocm, err := ablationShield(chunk, buf, shield.HMAC, true, size)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(9))
		word := make([]byte, 64)
		// Working set: 64 KB of hot chunks, accessed 8192 times.
		for i := 0; i < 8192; i++ {
			addr := uint64(rng.Intn(64<<10/64)) * 64
			if i%2 == 0 {
				sh.ReadBurst(addr, word)
			} else {
				sh.WriteBurst(addr, word)
			}
		}
		rep := sh.Report()
		rows = append(rows, AblationRow{
			Label:       fmt.Sprintf("buffer=%dKB", buf>>10),
			CyclesPerKB: float64(rep.MemoryCycles()) / (8192 * 64 / 1024),
			Hits:        rep.Regions[0].Hits,
			Misses:      rep.Regions[0].Misses,
			OCMBits:     ocm.UsedBits(),
		})
	}
	return rows, nil
}

// AblationFreshness compares a read-write region with and without replay
// counters: the security/area trade-off of §5.2.2.
func AblationFreshness() ([]AblationRow, error) {
	const size = 1 << 20
	const chunk = 64
	var rows []AblationRow
	for _, fresh := range []bool{false, true} {
		sh, ocm, err := ablationShield(chunk, 16<<10, shield.HMAC, fresh, size)
		if err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(3))
		word := make([]byte, 64)
		for i := 0; i < 8192; i++ {
			addr := uint64(rng.Intn(size/64)) * 64
			if i%2 == 0 {
				sh.ReadBurst(addr, word)
			} else {
				sh.WriteBurst(addr, word)
			}
		}
		sh.Flush()
		rep := sh.Report()
		label := "no-counters (replayable)"
		if fresh {
			label = "freshness counters"
		}
		rows = append(rows, AblationRow{
			Label:       label,
			CyclesPerKB: float64(rep.MemoryCycles()) / (8192 * 64 / 1024),
			OCMBits:     ocm.UsedBits(),
		})
	}
	return rows, nil
}

// ORAMAmplification measures the Path ORAM extension's bandwidth blow-up
// over a shielded region (the cost of hiding addresses, §5.2.2).
func ORAMAmplification() (float64, error) {
	const blocks, bs = 128, 64
	foot := oram.FootprintBytes(blocks, bs)
	regionSize := (foot + 511) / 512 * 512
	sh, _, err := ablationShield(512, 8192, shield.HMAC, true, regionSize)
	if err != nil {
		return 0, err
	}
	o, err := oram.New(sh, 0, blocks, bs, 17)
	if err != nil {
		return 0, err
	}
	data := make([]byte, bs)
	for i := 0; i < 512; i++ {
		if i%2 == 0 {
			if err := o.Write(i%blocks, data); err != nil {
				return 0, err
			}
		} else if _, err := o.Read(i % blocks); err != nil {
			return 0, err
		}
	}
	return o.Amplification(), nil
}
