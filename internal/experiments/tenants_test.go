package experiments

import "testing"

// TestTenantSweepFlat: the lookup cache keeps per-access resolution flat
// as the zone count grows — the overhead stays under the 5% ceiling at
// every swept point, and the simulated lookup charge does not scale with
// the table.
func TestTenantSweepFlat(t *testing.T) {
	rows, err := TenantSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("sweep returned %d points", len(rows))
	}
	for _, r := range rows {
		if r.OverheadPct >= 5 {
			t.Fatalf("%d zones: lookup overhead %.2f%% breaches the 5%% ceiling", r.Zones, r.OverheadPct)
		}
		if r.HitPct < 99 {
			t.Fatalf("%d zones: hit rate %.2f%%, want ≥99%%", r.Zones, r.HitPct)
		}
	}
	// O(1): the most crowded table charges the same simulated lookup
	// cycles as the single-zone one.
	if first, last := rows[0], rows[len(rows)-1]; last.LookupCycles != first.LookupCycles {
		t.Fatalf("lookup cycles scale with zones: %d @ %d zones vs %d @ %d zones",
			first.LookupCycles, first.Zones, last.LookupCycles, last.Zones)
	}
}
